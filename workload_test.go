package rackni

import (
	"fmt"
	"math"
	"testing"

	rmc "rackni/internal/core"
	"rackni/internal/sim"
)

// zipfNextReference is the original O(objects) ZipfReads issue path —
// per-request math.Pow scan over the cumulative mass — retained so the
// table-driven sampler can be equivalence-tested bit for bit against it.
// It consumes the RNG exactly like the original: one Float64 for the
// object, one Uint64 for the local slot.
func zipfNextReference(rnd *sim.Rand, size, objects int, theta float64, core int) (uint64, uint64) {
	var zeta float64
	for i := 1; i <= objects; i++ {
		zeta += 1 / math.Pow(float64(i), theta)
	}
	u := rnd.Float64() * zeta
	var cum float64
	obj := objects - 1
	for i := 1; i <= objects; i++ {
		cum += 1 / math.Pow(float64(i), theta)
		if cum >= u {
			obj = i - 1
			break
		}
	}
	remote := SourceBase + uint64(obj)*uint64(size)
	local := LocalBufferOf(core) + (rnd.Uint64()%(LocalStride/uint64(size)))*uint64(size)
	return remote, local
}

// TestZipfReadsMatchesLinearReference: the precomputed-table binary-search
// sampler must reproduce the original linear scan's address stream bit for
// bit (same partial-sum order, same first-crossing semantics).
func TestZipfReadsMatchesLinearReference(t *testing.T) {
	const (
		size    = 256
		objects = 2000
		theta   = 0.99
		seed    = 42
		core    = 7
	)
	z, err := NewZipfReads(size, objects, theta, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	refRnd := sim.NewRand(seed)
	for i := uint64(0); i < 5000; i++ {
		op, remote, local, sz, ok := z.Next(core, i)
		if !ok || op != rmc.OpRead || sz != size {
			t.Fatalf("bad op/size/ok at %d", i)
		}
		wantRemote, wantLocal := zipfNextReference(refRnd, size, objects, theta, core)
		if remote != wantRemote || local != wantLocal {
			t.Fatalf("sample %d diverges: got (%#x,%#x), reference (%#x,%#x)",
				i, remote, local, wantRemote, wantLocal)
		}
	}
}

// TestZipfReadsSkew: with strong skew, the most popular object must
// dominate; with theta=0 the distribution must be near-uniform.
func TestZipfReadsSkew(t *testing.T) {
	count := func(theta float64) map[uint64]int {
		z, err := NewZipfReads(64, 100, theta, 0, 7)
		if err != nil {
			t.Fatal(err)
		}
		c := map[uint64]int{}
		for i := uint64(0); i < 20_000; i++ {
			_, remote, _, _, _ := z.Next(0, i)
			c[remote]++
		}
		return c
	}
	skewed := count(0.99)
	if top := skewed[SourceBase]; top < 2000 {
		t.Fatalf("Zipf(0.99) head object drew %d of 20000, want >2000", top)
	}
	uniform := count(0)
	for obj, n := range uniform {
		if n > 500 {
			t.Fatalf("theta=0 object %#x drew %d of 20000, want near-uniform (~200)", obj, n)
		}
	}
}

// TestZipfReadsUsesCoreID: local placement must follow the coreID passed
// to Next (the old implementation ignored it for a stored field).
func TestZipfReadsUsesCoreID(t *testing.T) {
	z, err := NewZipfReads(64, 100, 0.99, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, core := range []int{0, 13, 63} {
		_, _, local, _, _ := z.Next(core, 0)
		base := LocalBufferOf(core)
		if local < base || local >= base+LocalStride {
			t.Fatalf("core %d local %#x outside its buffer [%#x,%#x)", core, local, base, base+LocalStride)
		}
	}
}

// TestZipfReadsValidation: broken geometry is rejected at construction
// (the old code divided by LocalStride/Size, which is 0 for Size >
// LocalStride, and faulted at issue time).
func TestZipfReadsValidation(t *testing.T) {
	cases := []struct {
		name    string
		size    int
		objects int
		theta   float64
	}{
		{"zero size", 0, 100, 0.99},
		{"negative size", -64, 100, 0.99},
		{"size exceeds local buffer", int(LocalStride) + 64, 100, 0.99},
		{"zero objects", 64, 0, 0.99},
		{"keyspace exceeds source region", 1 << 20, 1 << 20, 0.99},
		{"negative skew", 64, 100, -1},
	}
	for _, tc := range cases {
		if _, err := NewZipfReads(tc.size, tc.objects, tc.theta, 0, 1); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
	if _, err := NewZipfReads(64, 100, 0.99, 0, 1); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

// BenchmarkZipfNext shows the per-request cost is O(log objects): growing
// the keyspace 100x (1k -> 100k objects) must not grow ns/op with it (the
// pre-table implementation was O(objects): ~100x slower at 100k).
func BenchmarkZipfNext(b *testing.B) {
	for _, objects := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			z, err := NewZipfReads(64, objects, 0.99, 0, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				z.Next(0, uint64(i))
			}
		})
	}
}

// TestSharedZipfTableBitIdentical: the process-wide interned table must
// sample exactly like a privately built per-node table (same cumulative
// sums, same binary search), and repeated lookups must return the one
// cached instance rather than rebuilding per node/core.
func TestSharedZipfTableBitIdentical(t *testing.T) {
	const objects, theta = 5_000, 0.99
	shared := sharedZipfTable(objects, theta)
	if again := sharedZipfTable(objects, theta); again != shared {
		t.Fatal("second lookup rebuilt the table instead of interning it")
	}
	fresh := newZipfTable(objects, theta)
	a, b := sim.NewRand(42), sim.NewRand(42)
	for i := 0; i < 20_000; i++ {
		if got, want := shared.sample(a), fresh.sample(b); got != want {
			t.Fatalf("draw %d: shared table sampled %d, fresh reference %d", i, got, want)
		}
	}
	if other := sharedZipfTable(objects, 0.5); other == shared {
		t.Fatal("distinct skew must intern a distinct table")
	}
}
