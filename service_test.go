package rackni

import (
	"reflect"
	"strings"
	"testing"
)

// serviceTestCfg is the reduced study chip (4x2 mesh, 2 MiB LLC) the
// service tests share, with a cycle budget generous enough for saturated
// open-loop points to drain.
func serviceTestCfg() Config {
	cfg := quickClusterCfg()
	cfg.MeshWidth = 4
	cfg.MeshHeight = 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0
	cfg.WindowCycles = 20_000
	cfg.MaxCycles = 2_000_000
	return cfg
}

// TestServiceSweepParallelMatchesSerial: service points are independent
// simulations like any other, so a sweep spanning the Arrivals and Hedges
// axes must produce byte-identical Results — Format and CSV — serially
// and on a worker pool. Wired into the CI race job.
func TestServiceSweepParallelMatchesSerial(t *testing.T) {
	sweep := NewSweep(serviceTestCfg()).
		Designs(NISplit).
		Arrivals(ArrivalSpec{Kind: "poisson", Rate: 2}, ArrivalSpec{Kind: "bursty", Rate: 2}).
		Hedges(0, 1200).
		Nodes(2)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(par) != 4 {
		t.Fatalf("point counts: serial %d, parallel %d, want 4", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Point, par[i].Point) {
			t.Fatalf("point %d metadata differs under parallelism", i)
		}
		if !reflect.DeepEqual(serial[i].SVC, par[i].SVC) {
			t.Fatalf("point %d service results differ under parallelism", i)
		}
	}
	if serial.Format() != par.Format() {
		t.Fatalf("Format differs:\nserial:\n%s\nparallel:\n%s", serial.Format(), par.Format())
	}
	if serial.CSV() != par.CSV() {
		t.Fatalf("CSV differs:\nserial:\n%s\nparallel:\n%s", serial.CSV(), par.CSV())
	}
}

// TestServiceHedgeAccounting: on a lossless fabric the hedge bookkeeping
// must balance exactly — every arrival completes once (no double retire:
// a completion with no outstanding entry is counted cancelled, never
// completed), every hedged request's loser attempt eventually lands and
// is cancelled via its stale generation tag, and hedge wins are a subset
// of hedges.
func TestServiceHedgeAccounting(t *testing.T) {
	cfg := serviceTestCfg()
	c, err := NewCluster(cfg, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// An aggressive hedge delay forces plenty of hedges without waiting
	// for a genuine tail.
	res, err := c.RunService(ServiceSpec{
		Arrival: ArrivalSpec{Kind: "poisson", Rate: 2},
		Hedge:   900,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Drained {
		t.Fatalf("service run did not drain: %+v", res)
	}
	want := int64(4 * res.Clients * 64) // nodes x clients x default requests
	if res.Arrivals != want {
		t.Fatalf("arrivals %d, want %d", res.Arrivals, want)
	}
	if res.Failed != 0 || res.Completed != res.Arrivals {
		t.Fatalf("lossless run lost requests: completed %d failed %d of %d",
			res.Completed, res.Failed, res.Arrivals)
	}
	if res.Hedged == 0 {
		t.Fatal("900-cycle hedge delay produced no hedges")
	}
	if res.Cancelled != res.Hedged {
		t.Fatalf("cancelled %d != hedged %d: a loser attempt double-retired or never landed",
			res.Cancelled, res.Hedged)
	}
	if res.HedgeWins > res.Hedged {
		t.Fatalf("hedge wins %d exceed hedged %d", res.HedgeWins, res.Hedged)
	}
	if res.Goodput <= 0 || res.P999 < res.P99 || res.P99 < res.P50 {
		t.Fatalf("implausible latency summary: %+v", res)
	}

	// Without hedging the same run must report zero hedge activity.
	plain, err := c.RunService(ServiceSpec{
		Arrival: ArrivalSpec{Kind: "poisson", Rate: 2},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hedged != 0 || plain.HedgeWins != 0 || plain.Cancelled != 0 {
		t.Fatalf("hedging disabled but hedge counters moved: %+v", plain)
	}
	if plain.Completed != plain.Arrivals || !plain.Drained {
		t.Fatalf("unhedged run incomplete: %+v", plain)
	}
}

// TestServiceSessionReuseMatchesFresh: the run lifecycle must make a
// service run on a reused cluster bit-identical to the same run on a
// fresh cluster, including after an interleaved run with different
// arrival shape and hedging.
func TestServiceSessionReuseMatchesFresh(t *testing.T) {
	cfg := serviceTestCfg()
	spec := ServiceSpec{Arrival: ArrivalSpec{Kind: "bursty", Rate: 2}, Hedge: 1200}
	other := ServiceSpec{Arrival: ArrivalSpec{Kind: "poisson", Rate: 4}}

	reused, err := NewCluster(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := reused.RunService(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.RunService(other, 0); err != nil {
		t.Fatal(err)
	}
	again, err := reused.RunService(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("reused cluster diverged from its own first run:\nfirst: %+v\nagain: %+v", first, again)
	}

	fresh, err := NewCluster(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fresh.RunService(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, ref) {
		t.Fatalf("reused cluster differs from fresh:\nreused: %+v\nfresh: %+v", first, ref)
	}
}

// TestServiceAxisRenderers: the arrival and hedge columns appear exactly
// when a result set contains service points, keeping service-free output
// byte-identical to its pre-service form.
func TestServiceAxisRenderers(t *testing.T) {
	cfg := quickClusterCfg()
	plain, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{plain.Format(), plain.CSV()} {
		if strings.Contains(out, "arrival") || strings.Contains(out, "hedge") {
			t.Fatalf("service-free result set grew service columns:\n%s", out)
		}
	}
	blob, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"arrival"`) || strings.Contains(string(blob), `"service"`) {
		t.Fatalf("service-free JSON carries service fields:\n%s", blob)
	}

	svc, err := NewSweep(serviceTestCfg()).
		Designs(NISplit).
		Arrivals(ArrivalSpec{Kind: "poisson", Rate: 2}).
		Nodes(2).
		Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(svc) != 1 || svc[0].SVC == nil {
		t.Fatalf("service sweep did not produce a service result: %+v", svc)
	}
	if !strings.Contains(svc.Format(), "arrival") || !strings.Contains(svc.CSV(), "arrival,rate,hedge,") {
		t.Fatalf("service result set missing its columns:\nformat:\n%s\ncsv:\n%s", svc.Format(), svc.CSV())
	}
	if !strings.Contains(svc.CSV(), "goodput") {
		t.Fatalf("service CSV missing metric columns:\n%s", svc.CSV())
	}
	blob, err = svc.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"arrival": "poisson"`, `"rate": 2`, `"service"`} {
		if !strings.Contains(string(blob), field) {
			t.Fatalf("service JSON missing %s:\n%s", field, blob)
		}
	}
}

// TestServiceSweepValidation: bad service axes must fail fast in check().
func TestServiceSweepValidation(t *testing.T) {
	bad := [][]Point{
		NewSweep(serviceTestCfg()).Arrivals(ArrivalSpec{Kind: "sawtooth", Rate: 1}).Nodes(2).Points(),
		NewSweep(serviceTestCfg()).Arrivals(ArrivalSpec{Kind: "poisson", Rate: 0}).Nodes(2).Points(),
		NewSweep(serviceTestCfg()).Arrivals(ArrivalSpec{Kind: "poisson", Rate: 1}).Hedges(-1).Nodes(2).Points(),
	}
	for i, pts := range bad {
		if err := CheckSweepPoints(pts); err == nil {
			t.Errorf("bad service sweep %d passed validation", i)
		}
	}
}

// TestServiceCurveTrends is the headline acceptance property on a
// paper-scale rack slice: goodput saturates past the knee while hedged
// requests measurably cut p99.9 at moderate load for a small hedge
// volume, and turn into self-inflicted overload past the knee. Skipped
// in -short; the CI service-smoke job runs it explicitly at 64 nodes.
func TestServiceCurveTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run service study")
	}
	res, err := RunServiceCurve(serviceTestCfg(), 64, []float64{0.5, 4}, []int64{0, 2400}, []RoutePolicy{RouteDOR})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points=%d, want 4", len(res.Points))
	}
	pt := map[[2]int64]ServiceCurvePoint{}
	for _, p := range res.Points {
		if !p.Drained {
			t.Fatalf("hedge %d rate %g did not drain", p.Hedge, p.Rate)
		}
		pt[[2]int64{p.Hedge, int64(p.Rate * 2)}] = p
	}
	low, high := pt[[2]int64{0, 1}], pt[[2]int64{0, 8}]
	hlow, hhigh := pt[[2]int64{2400, 1}], pt[[2]int64{2400, 8}]
	// Goodput saturation: 8x the offered load returns well under 8x (or
	// even 4x) the goodput, but the service keeps serving.
	if high.Goodput >= 4*low.Goodput {
		t.Errorf("no saturation: goodput %.2f at rate 4 vs %.2f at rate 0.5", high.Goodput, low.Goodput)
	}
	if high.Goodput <= low.Goodput {
		t.Errorf("goodput collapsed past the knee: %.2f at rate 4 vs %.2f at rate 0.5", high.Goodput, low.Goodput)
	}
	// The unhedged tail at moderate load sits at the fabric-hiccup
	// latency; hedging pulls it back under half of that while hedging
	// only a small fraction of requests, without hurting goodput.
	if low.P999 < 10_000 {
		t.Errorf("unhedged p99.9 %d does not show the hiccup tail", low.P999)
	}
	if hlow.P999 >= low.P999/2 {
		t.Errorf("hedging did not cut p99.9 at moderate load: %d vs %d", hlow.P999, low.P999)
	}
	if hlow.HedgeWins == 0 {
		t.Error("hedging cut the tail but recorded no wins")
	}
	if frac := float64(hlow.Hedged) / float64(res.Nodes*res.Clients*serviceCurveRequests); frac > 0.05 {
		t.Errorf("hedge volume %.1f%% at moderate load; want < 5%%", 100*frac)
	}
	if hlow.Goodput < 0.95*low.Goodput {
		t.Errorf("hedging regressed goodput at moderate load: %.2f < %.2f", hlow.Goodput, low.Goodput)
	}
	// Past the knee hedging is self-inflicted overload: most requests
	// outlast the delay, the duplicates eat capacity.
	if hhigh.Goodput >= high.Goodput {
		t.Errorf("over-hedging past the knee did not cost goodput: %.2f >= %.2f", hhigh.Goodput, high.Goodput)
	}
	out := res.Format()
	if !strings.Contains(out, "hiccups") || !strings.Contains(out, "p99.9") {
		t.Fatalf("Format missing expected headers:\n%s", out)
	}
	if _, err := RunServiceCurve(serviceTestCfg(), 1, nil, nil, nil); err == nil {
		t.Error("single-node service curve accepted")
	}
	if _, err := RunServiceCurve(serviceTestCfg(), 4, []float64{-1}, nil, nil); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := RunServiceCurve(serviceTestCfg(), 4, nil, []int64{-1}, nil); err == nil {
		t.Error("negative hedge accepted")
	}
}
