package rackni

import (
	"strings"
	"testing"
)

// faultSweepCfg arms a short timeout so dropped blocks recover quickly
// inside reduced test budgets.
func faultSweepCfg() Config {
	cfg := quickClusterCfg()
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 400_000
	return cfg
}

// TestFaultSweepDeterminism: fault-injected points are as deterministic
// as lossless ones — a sweep spanning the Faults and Windows axes renders
// byte-identically run serially and on a worker pool. Wired into the CI
// race job alongside the cluster sweep.
func TestFaultSweepDeterminism(t *testing.T) {
	sweep := NewSweep(faultSweepCfg()).
		Designs(NISplit).
		Modes(Latency).
		Workloads("kv").
		Sizes(64).
		Nodes(2).
		Faults(0.02).
		Windows(0, 4)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(par) != 4 {
		t.Fatalf("point counts: serial %d, parallel %d, want 4", len(serial), len(par))
	}
	if serial.Format() != par.Format() {
		t.Fatalf("Format differs under parallelism:\nserial:\n%s\nparallel:\n%s",
			serial.Format(), par.Format())
	}
	if serial.CSV() != par.CSV() {
		t.Fatalf("CSV differs under parallelism:\nserial:\n%s\nparallel:\n%s",
			serial.CSV(), par.CSV())
	}
	// The workload points must actually have exercised the fault plane.
	var retries int64
	for _, r := range serial {
		if r.WL != nil {
			retries += r.WL.Retries
		}
	}
	if retries == 0 {
		t.Fatal("2% drop sweep never retried a block")
	}
}

// TestFaultAxisRenderers: the drop/window columns appear exactly when a
// result set contains faulty or windowed points, keeping fault-free
// output byte-identical to its pre-fault form.
func TestFaultAxisRenderers(t *testing.T) {
	cfg := quickClusterCfg()
	clean, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.Format(), "drop") || strings.Contains(clean.Format(), "win") {
		t.Fatalf("fault-free result set grew fault columns:\n%s", clean.Format())
	}
	if strings.Contains(clean.CSV(), "drop_rate") || strings.Contains(clean.CSV(), "window") {
		t.Fatalf("fault-free CSV grew fault columns:\n%s", clean.CSV())
	}
	blob, err := clean.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"drop_rate"`) || strings.Contains(string(blob), `"window"`) {
		t.Fatalf("fault-free JSON carries fault fields:\n%s", blob)
	}

	faulty, err := NewSweep(faultSweepCfg()).
		Designs(NISplit).Modes(Latency).Sizes(64).Nodes(2).Faults(0.02).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(faulty.Format(), "drop") || !strings.Contains(faulty.CSV(), "drop_rate,window,") {
		t.Fatalf("faulty result set missing its fault columns:\n%s\n%s", faulty.Format(), faulty.CSV())
	}
	blob, err = faulty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"drop_rate": 0.02`) {
		t.Fatalf("faulty JSON missing drop_rate:\n%s", blob)
	}

	// A credit-window axis alone (no faults, single node) also surfaces —
	// the window is part of the point's identity.
	windowed, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Windows(4).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(windowed.Format(), "win") {
		t.Fatalf("windowed result set missing its win column:\n%s", windowed.Format())
	}
	blob, err = windowed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"window": 4`) {
		t.Fatalf("windowed JSON missing window field:\n%s", blob)
	}
}

// TestParseFaultFlags: the -drop and -window list parsers accept what
// the fault plane accepts and nothing else.
func TestParseFaultFlags(t *testing.T) {
	rates, err := ParseDropRates("0,0.01,0.5")
	if err != nil || len(rates) != 3 || rates[1] != 0.01 {
		t.Fatalf("ParseDropRates: %v %v", rates, err)
	}
	for _, bad := range []string{"", "x", "-0.1", "1", "1.5"} {
		if _, err := ParseDropRates(bad); err == nil {
			t.Fatalf("ParseDropRates(%q) accepted", bad)
		}
	}
	wins, err := ParseWindows("0,1,128")
	if err != nil || len(wins) != 3 || wins[2] != 128 {
		t.Fatalf("ParseWindows: %v %v", wins, err)
	}
	for _, bad := range []string{"", "x", "-1", "1.5"} {
		if _, err := ParseWindows(bad); err == nil {
			t.Fatalf("ParseWindows(%q) accepted", bad)
		}
	}
}

// TestCheckSweepPoints: the up-front validation racksim runs before any
// simulation starts — bad fault/window/shape combinations fail with the
// offending point named.
func TestCheckSweepPoints(t *testing.T) {
	cfg := QuickConfig()
	ok := NewSweep(cfg).Designs(NISplit).Modes(Latency, Bandwidth).Sizes(64).
		Workloads("kv").Nodes(2).Faults(0.01).Windows(4).Points()
	if err := CheckSweepPoints(ok); err != nil {
		t.Fatalf("valid point list rejected: %v", err)
	}
	bad := []struct {
		name string
		pts  []Point
	}{
		{"faults on a single node", NewSweep(cfg).Modes(Latency).Sizes(64).Faults(0.5).Points()},
		{"drop rate out of range", NewSweep(cfg).Modes(Latency).Sizes(64).Nodes(2).Faults(1).Points()},
		{"negative window", NewSweep(cfg).Modes(Latency).Sizes(64).Windows(-1).Points()},
		{"negative hops", NewSweep(cfg).Modes(Latency).Sizes(64).Hops(-1).Points()},
		{"beyond addressing limit", NewSweep(cfg).Modes(Latency).Sizes(64).Nodes(5000).Points()},
		{"beyond torus capacity", NewSweep(cfg).Modes(Latency).Sizes(64).Nodes(1000).
			TorusPlacement(true).Points()},
		{"unknown scenario", NewSweep(cfg).Workloads("nosuch").Points()},
		{"bad size", NewSweep(cfg).Modes(Latency).Sizes(63).Points()},
		{"core out of range", NewSweep(cfg).Modes(Latency).Sizes(64).Cores(10_000).Points()},
	}
	for _, c := range bad {
		if err := CheckSweepPoints(c.pts); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), "point 0") {
			t.Errorf("%s: error does not name the point: %v", c.name, err)
		}
	}
}

// TestClusterScenariosCompleteUnderDrops: the headline robustness
// acceptance — on a 64-node rack of reduced chips with a lossy fabric,
// every library scenario still drains to completion through timeout and
// retransmission: no hangs, no permanent failures, bounded retries
// surfaced in the results. Referenced by the CI fault smoke job.
func TestClusterScenariosCompleteUnderDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node fault smoke skipped in -short")
	}
	cfg := QuickConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0
	// The timeout must sit well above the congested tail latency, or slow
	// — not lost — responses get retransmitted until the retry budget
	// fails them: the stream scenario saturates this rack to a fault-free
	// p99 around 150k cycles, so the first deadline starts above that and
	// exponential backoff gives later attempts even more headroom.
	cfg.ReqTimeout = 200_000
	cfg.MaxCycles = 6_000_000
	cl, err := NewCluster(cfg, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SetFaults(&FaultSpec{Seed: 11, DropProb: 0.001}); err != nil {
		t.Fatal(err)
	}
	var retries int64
	for _, name := range Scenarios() {
		sc, err := ParseScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.RunScenario(sc, 0)
		if err != nil {
			t.Fatalf("scenario %q under 0.1%% drops: %v", name, err)
		}
		if !res.Aggregate.AllExhausted {
			t.Fatalf("scenario %q did not drain under 0.1%% drops (completed %d)",
				name, res.Aggregate.Completed)
		}
		if res.Aggregate.Failed != 0 {
			t.Fatalf("scenario %q had %d permanent failures under 0.1%% drops",
				name, res.Aggregate.Failed)
		}
		retries += res.Aggregate.Retries
	}
	if retries == 0 {
		t.Fatal("no scenario ever retried a block — fault plane inactive?")
	}
}
