// The tail-at-scale study: goodput and high percentiles of the open-loop
// replicated KV service versus offered load, with hedged requests off and
// on, under both link-level fabric routing policies. The closed-loop
// scenarios cannot express this curve — open-loop clients keep arriving on
// their own clock while the service saturates, so queueing delay compounds
// into the tail instead of throttling the offered load.
//
// The study runs on a fabric with rare transient hiccups (a small per-leg
// probability of a fixed extra delay — the GC pause / interrupt / deep
// queue of the tail-at-scale literature): with homogeneous nodes and no
// component-level variability, a hedge can never beat its original below
// the knee (the original would have to outlast the hedge delay plus a
// whole fresh request), so a loss-free rack would show hedging as pure
// overhead. Against hiccups the trade-off is real and measurable: hedges
// rescue delayed requests at low load and turn into self-inflicted
// overload past the knee. Like faultexp.go and congestexp.go, this is a
// reusable entry point with a Format renderer, consumed by cmd/rackbench
// (-exp service) and the README table.
package rackni

import (
	"fmt"
	"strings"
)

const (
	// Per-client request budget for curve points: enough samples per point
	// that the cluster-wide p99.9 is resolved, small enough that a full
	// curve stays tractable in CI.
	serviceCurveRequests = 128
	// The hiccup plane: each inter-node leg is independently late by
	// serviceCurveHiccup cycles with probability serviceCurveHiccupProb.
	// ~0.4% of requests (two legs each way) hit a hiccup — above the
	// p99.9 quantile, so the unhedged tail sits at the hiccup latency.
	serviceCurveHiccupProb = 0.002
	serviceCurveHiccup     = 20_000
	// Default hedge delay: just past the uncongested p99 (~2.3k cycles on
	// the study chip), so below the knee only genuine stragglers hedge.
	serviceCurveHedge = 2400
)

// ServiceCurvePoint is one (routing, hedge, rate) setting of the study.
type ServiceCurvePoint struct {
	Routing   RoutePolicy // fabric routing policy (RouteNone = lump-sum baseline)
	Hedge     int64       // hedge delay in cycles; 0 = hedging off
	Rate      float64     // offered load per client, requests per 1000 cycles
	Offered   float64     // measured cluster-wide arrivals per 1000 cycles
	Goodput   float64     // cluster-wide completions per 1000 cycles
	P50       int64       // end-to-end latency percentiles, cycles
	P99       int64
	P999      int64
	QueueP99  int64 // arrival-to-issue queueing delay p99
	Hedged    int64
	HedgeWins int64
	Drained   bool
}

// ServiceCurveResult is the service study across routings, hedges, rates.
type ServiceCurveResult struct {
	Nodes   int
	Clients int // client cores per node
	Points  []ServiceCurvePoint
}

// RunServiceCurve sweeps the open-loop KV service on an n-node cluster
// whose fabric suffers rare fixed-length hiccups: for each fabric routing
// policy it builds one cluster (reused across settings; the session
// lifecycle makes every run bit-identical to a fresh build) and, for each
// hedge delay and offered rate, drives Poisson arrivals through the
// replicated service and records goodput and the latency tail. Nil rates,
// hedges and routings select the defaults: rates doubling from 0.5 to 8
// req/kcycle per client, hedging off vs a delay just past the uncongested
// p99, and dor vs adaptive routing.
func RunServiceCurve(cfg Config, nodes int, rates []float64, hedges []int64, routings []RoutePolicy) (ServiceCurveResult, error) {
	if nodes < 2 {
		return ServiceCurveResult{}, fmt.Errorf("rackni: service curve needs at least 2 nodes for replication, got %d", nodes)
	}
	if len(rates) == 0 {
		rates = []float64{0.5, 1, 2, 4, 8}
	}
	if len(hedges) == 0 {
		hedges = []int64{0, serviceCurveHedge}
	}
	if len(routings) == 0 {
		routings = []RoutePolicy{RouteDOR, RouteAdaptive}
	}
	for _, r := range rates {
		if r <= 0 {
			return ServiceCurveResult{}, fmt.Errorf("rackni: non-positive service rate %g", r)
		}
	}
	for _, h := range hedges {
		if h < 0 {
			return ServiceCurveResult{}, fmt.Errorf("rackni: negative hedge delay %d", h)
		}
	}
	out := ServiceCurveResult{Nodes: nodes, Clients: scenarioClients(&cfg)}
	for _, rp := range routings {
		cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, FabricRouting: rp,
			Faults: &FaultSpec{DelayProb: serviceCurveHiccupProb, DelayCycles: serviceCurveHiccup}})
		if err != nil {
			return out, err
		}
		for _, h := range hedges {
			for _, rate := range rates {
				res, err := cl.RunService(ServiceSpec{
					Arrival:  ArrivalSpec{Kind: "poisson", Rate: rate},
					Requests: serviceCurveRequests,
					Hedge:    h,
				}, 0)
				if err != nil {
					return out, fmt.Errorf("%v hedge %d rate %g: %w", rp, h, rate, err)
				}
				out.Points = append(out.Points, ServiceCurvePoint{
					Routing:   rp,
					Hedge:     h,
					Rate:      rate,
					Offered:   res.Offered,
					Goodput:   res.Goodput,
					P50:       res.P50,
					P99:       res.P99,
					P999:      res.P999,
					QueueP99:  res.QueueP99,
					Hedged:    res.Hedged,
					HedgeWins: res.HedgeWins,
					Drained:   res.Drained,
				})
			}
		}
	}
	return out, nil
}

// Format renders the service study.
func (r ServiceCurveResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Open-loop KV service: %d nodes x %d clients, Poisson arrivals, %d requests/client, 3-way replication, %d-cycle fabric hiccups (p=%g/leg)\n",
		r.Nodes, r.Clients, serviceCurveRequests, int64(serviceCurveHiccup), serviceCurveHiccupProb)
	fmt.Fprintf(&b, "%8s %6s %6s %9s %9s %7s %7s %7s %7s %7s %6s %8s\n",
		"fabric", "hedge", "rate", "offered", "goodput", "p50", "p99", "p99.9",
		"queue99", "hedged", "wins", "drained")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8s %6d %6.2f %9.2f %9.2f %7d %7d %7d %7d %7d %6d %8v\n",
			p.Routing, p.Hedge, p.Rate, p.Offered, p.Goodput, p.P50, p.P99, p.P999,
			p.QueueP99, p.Hedged, p.HedgeWins, p.Drained)
	}
	return b.String()
}
