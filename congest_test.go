// Tests for the link-level congestion fabric: per-link conservation
// invariants, zero-load equivalence with the lump-sum fast path, renderer
// gating for the FabricRoutings axis, and the incast study's headline
// trends (goodput saturation, victim tail inflation, adaptive relief).
package rackni

import (
	"reflect"
	"strings"
	"testing"
)

// congestTestCfg is the reduced chip the congestion tests run multi-node
// clusters with: small mesh, fixed cycle budget big enough that saturated
// incast runs still drain.
func congestTestCfg() Config {
	cfg := quickClusterCfg()
	cfg.MeshWidth = 4
	cfg.MeshHeight = 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0
	cfg.WindowCycles = 20_000
	cfg.MaxCycles = 2_000_000
	return cfg
}

// TestCongestionZeroLoadMatchesLumpSum: cut-through semantics mean an
// unloaded hop costs exactly NetHopCycles, so a single window-1
// single-block flow — which can never contend with itself, even at a
// serializer — must time out bit-identically on the congested fabric and
// the lump-sum dense-table fast path. (Multi-block requests differ by
// design: the lump-sum fabric has infinite inter-node bandwidth, the
// serializer does not.)
func TestCongestionZeroLoadMatchesLumpSum(t *testing.T) {
	cfg := congestTestCfg()
	cfg.TorusRadix = 2 // 8-node torus; node 7 is 3 hops from node 0
	const nodes = 8
	app := func(nodeIdx, core int) App {
		if nodeIdx != 7 || core != 0 {
			return nil
		}
		return TargetRemote(NewMixedUpdate(1, 32, 64, 1<<12, 0, 7), 0)
	}
	identity := make([]int, nodes)
	for i := range identity {
		identity[i] = i
	}
	lump, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, Placement: identity})
	if err != nil {
		t.Fatal(err)
	}
	want, err := lump.RunApp(app, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Aggregate.AllExhausted || want.Aggregate.Completed != 32 {
		t.Fatalf("lump-sum run: %d ops, drained=%v", want.Aggregate.Completed, want.Aggregate.AllExhausted)
	}
	for _, rp := range []RoutePolicy{RouteDOR, RouteAdaptive} {
		cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, FabricRouting: rp})
		if err != nil {
			t.Fatal(err)
		}
		got, err := cl.RunApp(app, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: zero-load congested run differs from lump-sum:\ngot  %+v\nwant %+v",
				rp, got.Aggregate, want.Aggregate)
		}
	}
}

// TestLinkConservationInvariants: after a drained fault-free congested
// run, every credit granted must have been returned (zero residual
// occupancy), occupancy high-waters must respect the credit pool, the
// per-node queued/blocked ledgers must sum to the per-link ones, and —
// because both policies route minimally — total link grants must equal
// the nominal hop charge (HopCycles / NetHopCycles).
func TestLinkConservationInvariants(t *testing.T) {
	cfg := congestTestCfg()
	sc, err := ParseScenario("incast")
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range []RoutePolicy{RouteDOR, RouteAdaptive} {
		cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: 16, FabricRouting: rp})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.RunScenario(sc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Aggregate.AllExhausted {
			t.Fatalf("%v: incast run did not drain within %d cycles", rp, cfg.MaxCycles)
		}
		checkLinkConservation(t, cl, cfg, 16, rp)
	}
}

// checkLinkConservation asserts the post-run link-ledger invariants on a
// drained fault-free congested cluster: every credit granted was returned,
// occupancy high-waters respect the credit pool, per-node queued/blocked
// ledgers sum to the per-link ones, and — because both policies route
// minimally — total grants equal the nominal hop charge.
func checkLinkConservation(t *testing.T, cl *Cluster, cfg Config, nodes int, rp RoutePolicy) {
	t.Helper()
	inter := cl.Interconnect()
	ledgers := inter.LinkLedgers()
	if len(ledgers) == 0 {
		t.Fatalf("%v: congested run recorded no link activity", rp)
	}
	var granted, queued, blocked int64
	for _, l := range ledgers {
		if l.Granted != l.Returned {
			t.Errorf("%v: link (%d dim %d dir %+d): %d granted, %d returned — residual occupancy",
				rp, l.Coord, l.Dim, l.Dir, l.Granted, l.Returned)
		}
		if l.OccupancyHW < 1 || int(l.OccupancyHW) > DefaultConfig().LinkCredits {
			t.Errorf("%v: link (%d dim %d dir %+d): occupancy high-water %d outside [1, %d]",
				rp, l.Coord, l.Dim, l.Dir, l.OccupancyHW, DefaultConfig().LinkCredits)
		}
		granted += l.Granted
		queued += l.QueuedCycles
		blocked += l.BlockedCycles
	}
	var hopCharge, nodeQueued, nodeBlocked int64
	for i := 0; i < nodes; i++ {
		hopCharge += inter.Counters[i].HopCycles
		nodeQueued += inter.Counters[i].FabricQueued
		nodeBlocked += inter.Counters[i].FabricBlocked
	}
	if hop := cfg.NetHopCycles(); granted*hop != hopCharge {
		t.Errorf("%v: %d link grants x %d cycles/hop = %d, but nominal hop charge is %d — a non-minimal path",
			rp, granted, hop, granted*hop, hopCharge)
	}
	if nodeQueued != queued || nodeBlocked != blocked {
		t.Errorf("%v: per-node queued/blocked (%d/%d) disagree with per-link (%d/%d)",
			rp, nodeQueued, nodeBlocked, queued, blocked)
	}
	if blocked == 0 && queued == 0 {
		t.Errorf("%v: run produced no congestion at all", rp)
	}
}

// TestCongestion64NodeConservation: the conservation invariants and
// adaptive-routing determinism hold at rack scale — a 64-node torus
// section runs the kv scenario's uniform Zipf traffic over the adaptive
// congested fabric, then repeats the run on the same (session-reused)
// cluster and must reproduce every result field and link ledger bit for
// bit. Skipped in -short; the CI congestion-smoke job runs it explicitly.
func TestCongestion64NodeConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node congested rack")
	}
	cfg := congestTestCfg()
	sc, err := ParseScenario("kv")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: 64, FabricRouting: RouteAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.RunScenario(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggregate.AllExhausted {
		t.Fatalf("64-node kv run did not drain within %d cycles", cfg.MaxCycles)
	}
	checkLinkConservation(t, cl, cfg, 64, RouteAdaptive)
	ledgers := cl.Interconnect().LinkLedgers()

	again, err := cl.RunScenario(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, res) {
		t.Errorf("reused 64-node congested cluster diverged from its first run")
	}
	if !reflect.DeepEqual(cl.Interconnect().LinkLedgers(), ledgers) {
		t.Errorf("reused 64-node congested cluster reproduced different link ledgers")
	}
}

// TestCongestionRepeatDeterminism: two fresh clusters running the same
// congested scenario must agree on every result field and every link
// ledger — the congestion model is a pure function of the point.
func TestCongestionRepeatDeterminism(t *testing.T) {
	cfg := congestTestCfg()
	sc, err := ParseScenario("incast")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (ClusterWorkloadResult, []LinkLedger) {
		cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: 8, FabricRouting: RouteAdaptive})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.RunScenario(sc, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res, cl.Interconnect().LinkLedgers()
	}
	r1, l1 := run()
	r2, l2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ between identical congested runs")
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Errorf("link ledgers differ between identical congested runs")
	}
}

// TestCongestedSweepParallelMatchesSerial: congested points are
// independent simulations like any other, so a sweep spanning the
// FabricRoutings axis must render byte-identically serially and on a
// worker pool. Wired into the CI race job alongside the cluster sweep.
func TestCongestedSweepParallelMatchesSerial(t *testing.T) {
	sweep := NewSweep(congestTestCfg()).
		Designs(NISplit).
		Workloads("incast").
		Nodes(8).
		FabricRoutings(RouteDOR, RouteAdaptive)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != par.Format() {
		t.Fatalf("Format differs:\nserial:\n%s\nparallel:\n%s", serial.Format(), par.Format())
	}
	if serial.CSV() != par.CSV() {
		t.Fatalf("CSV differs:\nserial:\n%s\nparallel:\n%s", serial.CSV(), par.CSV())
	}
}

// TestFabricAxisRenderers: the fabric column appears exactly when a
// result set contains congested points, keeping uncongested output
// byte-identical to its pre-congestion form.
func TestFabricAxisRenderers(t *testing.T) {
	clean, err := NewSweep(quickClusterCfg()).Designs(NISplit).Modes(Latency).Sizes(64).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.Format(), "fabric") || strings.Contains(clean.CSV(), "fabric_routing") {
		t.Fatalf("uncongested result set grew a fabric column:\n%s\n%s", clean.Format(), clean.CSV())
	}
	blob, err := clean.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"fabric_routing"`) {
		t.Fatalf("uncongested JSON carries a fabric field:\n%s", blob)
	}

	congested, err := NewSweep(congestTestCfg()).
		Designs(NISplit).Modes(Latency).Sizes(64).Cores(0).Nodes(2).
		FabricRoutings(RouteDOR).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(congested.Format(), "fabric") || !strings.Contains(congested.Format(), "dor") {
		t.Fatalf("congested result set missing its fabric column:\n%s", congested.Format())
	}
	if !strings.Contains(congested.CSV(), "fabric_routing,") || !strings.Contains(congested.CSV(), "dor,") {
		t.Fatalf("congested CSV missing its fabric column:\n%s", congested.CSV())
	}
	blob, err = congested.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"fabric_routing": "dor"`) {
		t.Fatalf("congested JSON missing fabric_routing:\n%s", blob)
	}
}

// TestParseFabricRoutings: the CLI vocabulary round-trips, unknown names
// fail loudly.
func TestParseFabricRoutings(t *testing.T) {
	got, err := ParseFabricRoutings("off, DOR ,adaptive")
	if err != nil {
		t.Fatal(err)
	}
	want := []RoutePolicy{RouteNone, RouteDOR, RouteAdaptive}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseFabricRoutings = %v, want %v", got, want)
	}
	if _, err := ParseFabricRoutings("dor,minimal"); err == nil ||
		!strings.Contains(err.Error(), "minimal") {
		t.Fatalf("bad routing name not rejected: %v", err)
	}
}

// TestCheckSweepPointsFabric: bad fabric-axis combinations are rejected up
// front, named by point.
func TestCheckSweepPointsFabric(t *testing.T) {
	cfg := congestTestCfg()
	single := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).
		FabricRoutings(RouteDOR).Points()
	err := CheckSweepPoints(single)
	if err == nil || !strings.Contains(err.Error(), "point 0") ||
		!strings.Contains(err.Error(), "multi-node") {
		t.Fatalf("single-node congested point not rejected: %v", err)
	}
	big := cfg
	big.TorusRadix = 2 // 8-node torus
	overflow := NewSweep(big).Designs(NISplit).Modes(Latency).Sizes(64).
		Nodes(9).FabricRoutings(RouteAdaptive).Points()
	err = CheckSweepPoints(overflow)
	if err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("over-capacity congested point not rejected: %v", err)
	}
}

// TestIncastSmoke: the smallest legal incast study (4 nodes, fan-in 1,
// one routing) runs end to end in short mode — the study drains, records
// a hot link, and renders; malformed geometries are rejected up front.
func TestIncastSmoke(t *testing.T) {
	if _, err := RunIncast(congestTestCfg(), 3, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "at least 4 nodes") {
		t.Fatalf("3-node incast not rejected: %v", err)
	}
	if _, err := RunIncast(congestTestCfg(), 4, []int{3}, nil); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("fan-in 3 on 4 nodes not rejected: %v", err)
	}
	res, err := RunIncast(congestTestCfg(), 4, []int{1}, []RoutePolicy{RouteDOR})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points, want 1", len(res.Points))
	}
	p := res.Points[0]
	if !p.Drained || p.Completed == 0 || p.ServedGBps <= 0 {
		t.Fatalf("smoke point did not run to completion: %+v", p)
	}
	if p.HotLink == "" || p.HotQueued+p.HotBlocked == 0 {
		t.Fatalf("smoke point recorded no hot link: %+v", p)
	}
	out := res.Format()
	for _, want := range []string{"fan-in", "dor", "victim p99", p.HotLink} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestIncastStudyTrends is the headline acceptance property: as fan-in
// grows the hot node's goodput saturates (per-flow goodput collapses) and
// the victim flow's p99 inflates under DOR; adaptive routing relieves the
// victim at the same fan-in. Skipped in -short; the CI congestion-smoke
// job runs it explicitly.
func TestIncastStudyTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run incast study")
	}
	res, err := RunIncast(congestTestCfg(), 16, []int{1, 8}, []RoutePolicy{RouteDOR, RouteAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	pts := map[string]IncastPoint{}
	for _, p := range res.Points {
		if !p.Drained {
			t.Fatalf("%v fan-in %d did not drain", p.Routing, p.FanIn)
		}
		pts[p.Routing.String()+"/"+string(rune('0'+p.FanIn))] = p
	}
	dor1, dor8 := pts["dor/1"], pts["dor/8"]
	ada8 := pts["adaptive/8"]
	// Goodput saturation: the hot node serves 8 flows at well under 8x the
	// single-flow rate (per-flow goodput collapse).
	if dor8.ServedGBps >= 4*dor1.ServedGBps {
		t.Errorf("no goodput saturation: fan-in 8 served %.2f GB/s vs fan-in 1 %.2f",
			dor8.ServedGBps, dor1.ServedGBps)
	}
	// Victim tail inflation under DOR.
	if dor8.VictimP99 <= dor1.VictimP99 {
		t.Errorf("victim p99 did not inflate with fan-in: %d (fan-in 8) <= %d (fan-in 1)",
			dor8.VictimP99, dor1.VictimP99)
	}
	// Adaptive relief: at the same fan-in the victim's tail shrinks and
	// served goodput does not regress.
	if ada8.VictimP99 >= dor8.VictimP99 {
		t.Errorf("adaptive did not relieve the victim: p99 %d (adaptive) >= %d (dor)",
			ada8.VictimP99, dor8.VictimP99)
	}
	if ada8.ServedGBps < dor8.ServedGBps {
		t.Errorf("adaptive regressed goodput: %.2f < %.2f GB/s", ada8.ServedGBps, dor8.ServedGBps)
	}
	// Congestion left its fingerprints: the hot link blocked for real time.
	if dor8.HotBlocked == 0 || dor8.HotLink == "" {
		t.Errorf("fan-in 8 recorded no hot link blocking: %+v", dor8)
	}
}
