package rackni

import (
	"reflect"
	"strings"
	"testing"
)

// TestOverloadCurveWindowBoundsInFlight: the credit window is real
// admission control — the fabric's peak live in-flight record count never
// exceeds window x QPs x blocks-per-transfer, goodput grows with the
// window until saturation, and the uncapped point equals the WQ-depth
// bound. This quick 2-node curve is the CI overload smoke.
func TestOverloadCurveWindowBoundsInFlight(t *testing.T) {
	cfg := quickClusterCfg()
	cfg.WindowCycles = 10_000
	cfg.MaxCycles = 60_000
	res, err := RunOverloadCurve(cfg, 2, 256, []int{1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points=%d, want 3", len(res.Points))
	}
	blocks := 256 / cfg.BlockBytes // blocks per transfer
	qps := 2 * cfg.Tiles()         // both nodes issue on every core
	for _, p := range res.Points {
		cap := p.EffWindow * qps * blocks
		if p.PeakInFlight > cap {
			t.Fatalf("window %d: peak in-flight %d exceeds window bound %d",
				p.Window, p.PeakInFlight, cap)
		}
		if p.Completed == 0 || p.AppGBps <= 0 {
			t.Fatalf("window %d delivered nothing: %+v", p.Window, p)
		}
	}
	if res.Points[0].AppGBps >= res.Points[1].AppGBps {
		t.Fatalf("window 1 goodput %.2f not below window 4 goodput %.2f — the cap isn't throttling",
			res.Points[0].AppGBps, res.Points[1].AppGBps)
	}
	if res.Points[2].EffWindow != cfg.WQEntries {
		t.Fatalf("uncapped effective window %d, want WQ depth %d",
			res.Points[2].EffWindow, cfg.WQEntries)
	}
	if _, err := RunOverloadCurve(cfg, 2, 256, []int{-1}); err == nil {
		t.Fatal("negative window accepted")
	}
	out := res.Format()
	if !strings.Contains(out, "uncapped") || !strings.Contains(out, "peak in-flight") {
		t.Fatalf("Format missing expected columns:\n%s", out)
	}
}

// TestDegradedModeRecoversAndIsolates: the degraded-mode study on one
// reused cluster — lossless baseline, a recoverable drop rate, and a dead
// link. Low loss recovers everything by retransmission; the dead link
// produces permanent failures on exactly the traffic that crosses it,
// while the rest of the rack keeps working.
func TestDegradedModeRecoversAndIsolates(t *testing.T) {
	cfg := quickClusterCfg()
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 2_000_000
	res, err := RunDegradedMode(cfg, 3, "kv", []float64{0, 0.002}, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points=%d, want 3", len(res.Points))
	}
	clean, lossy, dead := res.Points[0], res.Points[1], res.Points[2]
	if clean.Drops != 0 || clean.Retries != 0 || clean.Failed != 0 || !clean.Drained {
		t.Fatalf("lossless baseline not clean: %+v", clean)
	}
	if lossy.Drops == 0 || lossy.Retries == 0 {
		t.Fatalf("0.2%% drops left no trace: %+v", lossy)
	}
	if lossy.Failed != 0 || !lossy.Drained {
		t.Fatalf("0.2%% drops did not fully recover by retransmission: %+v", lossy)
	}
	if dead.Failed == 0 {
		t.Fatalf("dead link produced no permanent failures: %+v", dead)
	}
	if dead.Completed == 0 {
		t.Fatalf("dead link between two nodes killed the whole rack: %+v", dead)
	}
	out := res.Format()
	if !strings.Contains(out, "link 0<->1 down") || !strings.Contains(out, "drop=0.002") {
		t.Fatalf("Format missing fault labels:\n%s", out)
	}
	if _, err := RunDegradedMode(cfg, 3, "nosuch", nil, false, 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := RunDegradedMode(cfg, 3, "kv", []float64{1.5}, false, 1); err == nil {
		t.Fatal("out-of-range drop rate accepted")
	}
	// The sharded study is the same study: the degraded-mode points are
	// bit-identical whether the cluster runs on one engine or three.
	sharded, err := RunDegradedMode(cfg, 3, "kv", []float64{0, 0.002}, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, sharded) {
		t.Fatalf("3-shard degraded study diverged from single-engine:\n%+v\nvs\n%+v", sharded, res)
	}
}
