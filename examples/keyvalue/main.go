// Key-value store scenario (§2.1 motivation): closed-loop clients fetch
// small objects (16–512 B, the sizes typical of Memcached-class
// deployments) from a partner node's memory with one-sided remote reads,
// under a Zipf-skewed popularity distribution, spending think time on each
// value before the next GET — the v2 App contract makes the client a real
// closed loop instead of a blind request script. The example compares the
// three NI designs on the latencies that matter to a KV frontend: the mean
// and, above all, the tail (p95/p99), reported from deterministic
// fixed-bucket histograms.
package main

import (
	"fmt"
	"log"

	"rackni"
)

const (
	objectSize = 256     // typical KV object (Atikoglu et al.: 16-512B)
	objects    = 100_000 // keyspace mapped across the source region
	perCore    = 200     // GETs per client
	clients    = 16      // client cores
	thinkCyc   = 300     // per-value service time before the next GET
)

func main() {
	fmt.Printf("KV lookup: %d closed-loop clients x %d GETs of %dB objects, Zipf(0.99), %d-cycle think\n",
		clients, perCore, objectSize, thinkCyc)
	for _, d := range []rackni.Design{rackni.NIEdge, rackni.NIPerTile, rackni.NISplit} {
		cfg := rackni.QuickConfig()
		cfg.Design = d
		node, err := rackni.NewNode(cfg, 3) // a rack neighbor 3 hops away
		if err != nil {
			log.Fatal(err)
		}
		res, err := node.RunApp(func(core int) rackni.App {
			if core >= clients {
				return nil
			}
			return rackni.NewKVClient(perCore, objectSize, objects, 0.99,
				thinkCyc, cfg.Seed+uint64(core)*7919+1)
		}, 20_000_000)
		if err != nil {
			log.Fatal(err)
		}
		ns := cfg.NsPerCycle()
		fmt.Printf("  %-12v mean GET %.0f ns | p50 %.0f  p95 %.0f  p99 %.0f ns  (%d GETs, %.2f MGET/s aggregate)\n",
			d,
			res.MeanLatency*ns,
			float64(res.P50)*ns, float64(res.P95)*ns, float64(res.P99)*ns,
			res.Completed,
			float64(res.Completed)/(float64(res.Cycles)*ns/1e3))
	}
	fmt.Println("\nExpected shape (paper §6.1): per-tile ~ split << edge for fine-grain objects,")
	fmt.Println("with the edge design's queuing inflating the tail fastest.")
}
