// Key-value store scenario (§2.1 motivation): clients on every core fetch
// small objects (16–512 B, the sizes typical of Memcached-class
// deployments) from a partner node's memory with one-sided remote reads,
// under a Zipf-skewed popularity distribution. The example compares the
// three NI designs on the latency that matters to a KV client: mean
// request latency under a modest offered load.
package main

import (
	"fmt"
	"log"

	"rackni"
)

const (
	objectSize = 256     // typical KV object (Atikoglu et al.: 16-512B)
	objects    = 100_000 // keyspace mapped across the source region
	perCore    = 200     // requests per core
	clients    = 16      // client cores
)

func main() {
	fmt.Printf("KV lookup: %d clients x %d GETs of %dB objects, Zipf(0.99)\n",
		clients, perCore, objectSize)
	for _, d := range []rackni.Design{rackni.NIEdge, rackni.NIPerTile, rackni.NISplit} {
		cfg := rackni.QuickConfig()
		cfg.Design = d
		node, err := rackni.NewNode(cfg, 3) // a rack neighbor 3 hops away
		if err != nil {
			log.Fatal(err)
		}
		res, err := node.RunWorkload(func(core int) rackni.Workload {
			if core >= clients {
				return nil
			}
			return rackni.NewZipfReads(core, objectSize, objects, 0.99,
				perCore, uint64(1000+core))
		}, 20_000_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v mean GET %.0f ns  (%d GETs in %.0f us, %.2f MGET/s aggregate)\n",
			d,
			res.MeanLatency*cfg.NsPerCycle(),
			res.Completed,
			float64(res.Cycles)*cfg.NsPerCycle()/1e3,
			float64(res.Completed)/(float64(res.Cycles)*cfg.NsPerCycle()/1e3))
	}
	fmt.Println("\nExpected shape (paper §6.1): per-tile ~ split << edge for fine-grain objects.")
}
