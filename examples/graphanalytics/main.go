// Graph-analytics scenario (§1/§2.1 motivation): partitioned graph engines
// pull whole adjacency segments of remote partitions — coarse-grained,
// bandwidth-bound transfers whose cost grows with the system size. Every
// core streams 4 KB edge segments from the partner node; the example
// compares the designs on aggregate streaming bandwidth, where the paper
// shows the per-tile design collapsing and the split design matching edge.
package main

import (
	"fmt"
	"log"

	"rackni"
)

const segmentBytes = 4096 // one adjacency-list segment

func main() {
	fmt.Printf("Graph partition scan: 64 cores streaming %dB segments\n", segmentBytes)
	type row struct {
		d   rackni.Design
		app float64
		noc float64
	}
	var rows []row
	for _, d := range []rackni.Design{rackni.NIEdge, rackni.NIPerTile, rackni.NISplit} {
		cfg := rackni.QuickConfig()
		cfg.Design = d
		node, err := rackni.NewNode(cfg, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := node.RunBandwidth(segmentBytes)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{d, res.AppGBps, res.NOCGBps})
	}
	fmt.Printf("%-14s %16s %18s\n", "design", "app BW (GB/s)", "NOC agg (GB/s)")
	for _, r := range rows {
		fmt.Printf("%-14v %16.1f %18.1f\n", r.d, r.app, r.noc)
	}
	fmt.Println("\nExpected shape (paper Fig. 7): edge ~ split >> per-tile for bulk transfers.")
}
