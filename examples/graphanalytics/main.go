// Graph-analytics scenario (§1/§2.1 motivation): partitioned graph engines
// pull whole adjacency segments of remote partitions — coarse-grained,
// bandwidth-bound transfers whose cost grows with the system size. Every
// core runs the v2 double-buffered Streamer: two outstanding 4 KB segment
// reads into alternating buffers, refilled the moment a transfer lands, so
// compute could overlap transfer without unbounded queues. The example
// compares the designs on aggregate streaming bandwidth, where the paper
// shows the per-tile design collapsing and the split design matching edge.
package main

import (
	"fmt"
	"log"

	"rackni"
)

const (
	segmentBytes = 4096 // one adjacency-list segment
	segments     = 48   // segments per core
)

func main() {
	fmt.Printf("Graph partition scan: 64 cores double-buffer-streaming %dx%dB segments\n",
		segments, segmentBytes)
	type row struct {
		d   rackni.Design
		gbs float64
		p99 float64
	}
	var rows []row
	for _, d := range []rackni.Design{rackni.NIEdge, rackni.NIPerTile, rackni.NISplit} {
		cfg := rackni.QuickConfig()
		cfg.Design = d
		node, err := rackni.NewNode(cfg, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := node.RunApp(func(core int) rackni.App {
			return rackni.NewStreamer(segments, segmentBytes, 2)
		}, 20_000_000)
		if err != nil {
			log.Fatal(err)
		}
		ns := cfg.NsPerCycle()
		rows = append(rows, row{
			d:   d,
			gbs: float64(res.AppBytes) / (float64(res.Cycles) * ns), // B/ns = GB/s
			p99: float64(res.P99) * ns,
		})
	}
	fmt.Printf("%-14s %16s %18s\n", "design", "app BW (GB/s)", "p99 segment (ns)")
	for _, r := range rows {
		fmt.Printf("%-14v %16.1f %18.0f\n", r.d, r.gbs, r.p99)
	}
	fmt.Println("\nExpected shape (paper Fig. 7): edge ~ split >> per-tile for bulk transfers.")
}
