// Quickstart: build a node with the paper's proposed NIsplit design and
// issue a few one-sided remote reads, printing the end-to-end latency —
// the 20-line "hello world" of the library.
package main

import (
	"fmt"
	"log"

	"rackni"
)

func main() {
	cfg := rackni.DefaultConfig()
	cfg.Design = rackni.NISplit
	node, err := rackni.NewNode(cfg, 1) // one network hop to the peer node
	if err != nil {
		log.Fatal(err)
	}
	res, err := node.RunSyncLatency(64, 27) // 64-byte reads from core (3,3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote 64B read through %v: %.0f cycles = %.0f ns\n",
		cfg.Design, res.MeanCycles, res.MeanNS)
	fmt.Printf("  of which QP interaction: WQ %.0f + CQ %.0f cycles\n",
		res.Breakdown.WQWrite+res.Breakdown.WQRead,
		res.Breakdown.CQWrite+res.Breakdown.CQRead)
}
