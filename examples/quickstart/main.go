// Quickstart: sweep the paper's three NI designs across two transfer sizes
// with the declarative Sweep/Runner API, running points in parallel, then
// print the structured results — the "hello world" of the library.
//
// For a single hand-built simulation, NewNode + RunSyncLatency remain
// available (see the other examples).
package main

import (
	"fmt"
	"log"
	"runtime"

	"rackni"
)

func main() {
	cfg := rackni.QuickConfig() // short windows; DefaultConfig() for paper fidelity

	// The cross product of every axis becomes one independent simulation
	// point: 3 designs x 2 sizes = 6 points, run on one worker per core.
	results, err := rackni.NewSweep(cfg).
		Designs(rackni.NIEdge, rackni.NIPerTile, rackni.NISplit).
		Sizes(64, 4096).
		Run(rackni.Options{Parallel: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(results.Format())

	// Results are ordered like the sweep's cross product, so positional
	// access is deterministic; each result carries its full Point metadata.
	best := results[len(results)-1]
	fmt.Printf("\n%v at %dB: %.0f cycles = %.0f ns\n",
		best.Point.Config.Design, best.Point.Size,
		best.Sync.MeanCycles, best.Sync.MeanNS)
}
