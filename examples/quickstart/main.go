// Quickstart: sweep the paper's three NI designs across two transfer sizes
// and a closed-loop scenario with the declarative Sweep/Runner API, running
// points in parallel, then print the structured results — the "hello
// world" of the library.
//
// For a single hand-built simulation, NewNode + RunSyncLatency / RunApp
// remain available (see the other examples).
package main

import (
	"fmt"
	"log"
	"runtime"

	"rackni"
)

func main() {
	cfg := rackni.QuickConfig() // short windows; DefaultConfig() for paper fidelity

	// The cross product of every axis becomes one independent simulation
	// point: 3 designs x (2 latency sizes + 1 workload scenario) = 9
	// points, run on one worker per CPU. The "kv" workload is a v2
	// closed-loop scenario; its rows report mean and p50/p95/p99 tail
	// latency from deterministic fixed-bucket histograms.
	results, err := rackni.NewSweep(cfg).
		Designs(rackni.NIEdge, rackni.NIPerTile, rackni.NISplit).
		Modes(rackni.Latency).
		Workloads("kv").
		Sizes(64, 4096).
		Run(rackni.Options{Parallel: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(results.Format())

	// Results are ordered like the sweep's cross product, so positional
	// access is deterministic; each result carries its full Point metadata.
	for _, r := range results {
		if r.WL != nil && r.Point.Config.Design == rackni.NISplit {
			fmt.Printf("\n%v kv clients: p99 GET %d cycles (%.0f ns) over %d GETs\n",
				r.Point.Config.Design, r.WL.P99,
				float64(r.WL.P99)*cfg.NsPerCycle(), r.WL.Completed)
			break
		}
	}
}
