// Latency tomography: reproduce the paper's Table 3 view interactively —
// where every cycle of a one-sided remote read goes, for each NI design —
// project it across the rack with Fig. 5's methodology, and show how
// dependent reads stack those anatomies end to end: a k-deep pointer chase
// (v2 closed-loop PointerChase scenario) costs ~k times the single read,
// which is exactly why remote-access latency is the paper's headline
// metric.
package main

import (
	"fmt"
	"log"

	"rackni"
)

const chaseDepth = 8

func main() {
	cfg := rackni.QuickConfig()

	t3, err := rackni.RunTable3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Zero-load single-block remote read, 1 network hop:")
	fmt.Println(t3.Format())

	f5, err := rackni.RunFig5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Projected across a %d-hop-diameter 512-node 3D torus (avg %.1f hops):\n",
		f5.MaxHops, f5.AvgHops)
	for _, h := range []int{1, 6, 12} {
		p := f5.Points[h]
		fmt.Printf("  %2d hops: NUMA %4.0f ns | split %4.0f ns (+%.1f%%) | edge %4.0f ns (+%.1f%%)\n",
			p.Hops, p.NUMANS, p.SplitNS, p.SplitOverPct, p.EdgeNS, p.EdgeOverPct)
	}

	// Dependent reads stack the whole anatomy serially: a chase can never
	// overlap its own reads, so chase latency ~= depth x single read.
	cfg.Design = rackni.NISplit
	n, err := rackni.NewNode(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	chase := rackni.NewPointerChase(chaseDepth, 24, 64, 1<<16, cfg.Seed)
	res, err := n.RunApp(func(core int) rackni.App {
		if core != 27 {
			return nil
		}
		return chase
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	ns := cfg.NsPerCycle()
	fmt.Printf("\nDependent reads (NIsplit, %d-deep pointer chase):\n", chaseDepth)
	fmt.Printf("  single read %4.0f ns | %d-deep chase %5.0f ns (%.2fx the single read, depth %d)\n",
		res.MeanLatency*ns, chaseDepth, chase.ChaseLat.Mean()*ns,
		chase.ChaseLat.Mean()/res.MeanLatency, chaseDepth)
}
