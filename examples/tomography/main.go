// Latency tomography: reproduce the paper's Table 3 view interactively —
// where every cycle of a one-sided remote read goes, for each NI design —
// and project it across the rack with Fig. 5's methodology.
package main

import (
	"fmt"
	"log"

	"rackni"
)

func main() {
	cfg := rackni.QuickConfig()

	t3, err := rackni.RunTable3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Zero-load single-block remote read, 1 network hop:")
	fmt.Println(t3.Format())

	f5, err := rackni.RunFig5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Projected across a %d-hop-diameter 512-node 3D torus (avg %.1f hops):\n",
		f5.MaxHops, f5.AvgHops)
	for _, h := range []int{1, 6, 12} {
		p := f5.Points[h]
		fmt.Printf("  %2d hops: NUMA %4.0f ns | split %4.0f ns (+%.1f%%) | edge %4.0f ns (+%.1f%%)\n",
			p.Hops, p.NUMANS, p.SplitNS, p.SplitOverPct, p.EdgeNS, p.EdgeOverPct)
	}
}
