// CLI-facing string↔enum conversions, shared by cmd/racksim, cmd/rackbench
// and sweep definitions built from user input.
package rackni

import (
	"fmt"
	"strconv"
	"strings"

	"rackni/internal/load"
	"rackni/internal/place"
)

// ParseDesign converts a design name (edge, pertile, per-tile, split) to
// its enumerator.
func ParseDesign(s string) (Design, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "edge":
		return NIEdge, nil
	case "pertile", "per-tile":
		return NIPerTile, nil
	case "split":
		return NISplit, nil
	}
	return 0, fmt.Errorf("rackni: unknown design %q (want edge|pertile|split)", s)
}

// ParseTopology converts a topology name (mesh, nocout, noc-out) to its
// enumerator.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "mesh":
		return Mesh, nil
	case "nocout", "noc-out":
		return NOCOut, nil
	}
	return 0, fmt.Errorf("rackni: unknown topology %q (want mesh|nocout)", s)
}

// ParseRouting converts a routing-policy name (xy, yx, o1turn, cdr, cdrni,
// cdr+ni) to its enumerator.
func ParseRouting(s string) (Routing, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "xy":
		return RoutingXY, nil
	case "yx":
		return RoutingYX, nil
	case "o1turn":
		return RoutingO1Turn, nil
	case "cdr":
		return RoutingCDR, nil
	case "cdrni", "cdr+ni":
		return RoutingCDRNI, nil
	}
	return 0, fmt.Errorf("rackni: unknown routing %q (want xy|yx|o1turn|cdr|cdrni)", s)
}

// ParseMode converts a microbenchmark name (latency, bandwidth) to its
// enumerator.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "latency":
		return Latency, nil
	case "bandwidth":
		return Bandwidth, nil
	}
	return 0, fmt.Errorf("rackni: unknown mode %q (want latency|bandwidth)", s)
}

// parseList splits a comma-separated flag value and parses each element.
func parseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, tok := range strings.Split(s, ",") {
		v, err := parse(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseDesigns parses a comma-separated design list ("edge,split").
func ParseDesigns(s string) ([]Design, error) { return parseList(s, ParseDesign) }

// ParseTopologies parses a comma-separated topology list.
func ParseTopologies(s string) ([]Topology, error) { return parseList(s, ParseTopology) }

// ParseRoutings parses a comma-separated routing-policy list.
func ParseRoutings(s string) ([]Routing, error) { return parseList(s, ParseRouting) }

// ParseModes parses a comma-separated microbenchmark list.
func ParseModes(s string) ([]Mode, error) { return parseList(s, ParseMode) }

// ParseScenarios parses a comma-separated scenario-name list
// ("kv,pointerchase"), validating each against the library, and returns
// the canonical names for the Sweep's Workloads axis.
func ParseScenarios(s string) ([]string, error) {
	return parseList(s, func(tok string) (string, error) {
		sc, err := ParseScenario(tok)
		if err != nil {
			return "", err
		}
		return sc.Name, nil
	})
}

// ParseSizes parses a comma-separated list of positive transfer sizes in
// bytes ("64,4096").
func ParseSizes(s string) ([]int, error) {
	return parseList(s, func(tok string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("rackni: bad size %q", tok)
		}
		return v, nil
	})
}

// ParseHops parses a comma-separated list of non-negative hop counts
// ("1,3,6"); 0 means the configuration's default.
func ParseHops(s string) ([]int, error) {
	return parseList(s, func(tok string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("rackni: bad hop count %q", tok)
		}
		return v, nil
	})
}

// ParseCores parses a comma-separated list of non-negative core indices
// ("5,27,40").
func ParseCores(s string) ([]int, error) {
	return parseList(s, func(tok string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("rackni: bad core %q", tok)
		}
		return v, nil
	})
}

// ParseNodeCounts parses a comma-separated list of positive node counts
// ("1,2,4"); 1 runs the single detailed node against the emulated rack,
// n > 1 a real n-node Cluster.
func ParseNodeCounts(s string) ([]int, error) {
	return parseList(s, func(tok string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return 0, fmt.Errorf("rackni: bad node count %q", tok)
		}
		return v, nil
	})
}

// ParseShards parses a comma-separated list of positive shard counts
// ("1,2,4"); 1 runs a cluster on a single engine, k > 1 partitions its
// nodes across k engines synchronized at conservative window barriers.
func ParseShards(s string) ([]int, error) {
	return parseList(s, func(tok string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 1 {
			return 0, fmt.Errorf("rackni: bad shard count %q", tok)
		}
		return v, nil
	})
}

// ParseDropRates parses a comma-separated list of fabric drop
// probabilities in [0, 1) ("0.001,0.01"); 0 means no fault injection.
func ParseDropRates(s string) ([]float64, error) {
	return parseList(s, func(tok string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || v < 0 || v >= 1 {
			return 0, fmt.Errorf("rackni: bad drop rate %q (want [0, 1))", tok)
		}
		return v, nil
	})
}

// ParseWindows parses a comma-separated list of non-negative QP credit
// windows ("1,4,16,0"); 0 means uncapped (WQ-depth bound only).
func ParseWindows(s string) ([]int, error) {
	return parseList(s, func(tok string) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v < 0 {
			return 0, fmt.Errorf("rackni: bad QP window %q", tok)
		}
		return v, nil
	})
}

// ParseFabricRouting converts a fabric routing-policy name (off, dor,
// adaptive) to its enumerator; "off" (or "none") is the lump-sum fabric.
func ParseFabricRouting(s string) (RoutePolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "none":
		return RouteNone, nil
	case "dor":
		return RouteDOR, nil
	case "adaptive":
		return RouteAdaptive, nil
	}
	return 0, fmt.Errorf("rackni: unknown fabric routing %q (want off|dor|adaptive)", s)
}

// ParseFabricRoutings parses a comma-separated fabric routing-policy list
// ("dor,adaptive") for the Sweep's FabricRoutings axis.
func ParseFabricRoutings(s string) ([]RoutePolicy, error) {
	return parseList(s, ParseFabricRouting)
}

// ParsePlacement converts a placement-policy name to its PlacementPolicy.
// "uniform" (or "none") is the zero policy — the fixed-hop model; "torus"
// is a deprecated alias for "identity", the coordinates the old
// TorusPlacement flag assigned.
func ParsePlacement(s string) (PlacementPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "uniform", "none":
		return PlacementPolicy{}, nil
	case "torus":
		return PlaceIdentity, nil
	}
	p, err := place.Parse(s)
	if err != nil {
		return PlacementPolicy{}, fmt.Errorf("rackni: unknown placement %q (want uniform|identity|clustered|scattered|random:<seed>)", s)
	}
	return p, nil
}

// ParsePlacements parses a comma-separated placement-policy list
// ("identity,clustered,scattered") for the Sweep's Placements axis.
func ParsePlacements(s string) ([]PlacementPolicy, error) {
	return parseList(s, ParsePlacement)
}

// ParseArrivalKind converts an arrival-process name (poisson, bursty,
// diurnal) to its canonical form for ArrivalSpec.Kind.
func ParseArrivalKind(s string) (string, error) {
	k, err := load.ParseKind(s)
	if err != nil {
		return "", fmt.Errorf("rackni: unknown arrival kind %q (want %s)",
			s, strings.Join(load.Kinds(), "|"))
	}
	return k.String(), nil
}

// ParseArrivalKinds parses a comma-separated arrival-process list
// ("poisson,bursty") for the Sweep's Arrivals axis.
func ParseArrivalKinds(s string) ([]string, error) { return parseList(s, ParseArrivalKind) }

// ParseRates parses a comma-separated list of positive offered-load rates
// in requests per 1000 cycles per client ("0.5,2,8").
func ParseRates(s string) ([]float64, error) {
	return parseList(s, func(tok string) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("rackni: bad arrival rate %q (want > 0 req/kcycle)", tok)
		}
		return v, nil
	})
}

// ParseHedges parses a comma-separated list of non-negative hedge delays
// in cycles ("0,2000"); 0 disables hedging.
func ParseHedges(s string) ([]int64, error) {
	return parseList(s, func(tok string) (int64, error) {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("rackni: bad hedge delay %q (want >= 0 cycles)", tok)
		}
		return v, nil
	})
}

// ParseSeeds parses a comma-separated list of simulation seeds ("1,2,3").
func ParseSeeds(s string) ([]uint64, error) {
	return parseList(s, func(tok string) (uint64, error) {
		v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("rackni: bad seed %q", tok)
		}
		return v, nil
	})
}
