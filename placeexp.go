// The congested-placement study: the experiment the placement layer
// exists for. Communicating groups of nodes exchange windowed remote
// reads over the link-level fabric under each named placement policy;
// clustered placement keeps every flow inside a 2x2x2 sub-cube (short
// paths, traffic concentrated on few links) while scattered placement
// stretches the same flows near the torus diameter (long paths spread
// over many links), and the per-link occupancy ledgers quantify the
// locality/hot-spot trade-off between them. Like congestexp.go, this is
// a reusable entry point with a Format renderer, consumed by
// cmd/rackbench (-exp placement) and the README table.
package rackni

import (
	"fmt"
	"strings"

	"rackni/internal/stats"
)

// Group-traffic parameters: consecutive nodes form groups of
// placeGroupSize, and each node's client cores read from distinct peers
// of their own group with the mixed-update scenario's shape (window-4
// 256B operations). Placement decides where a group's members physically
// sit, which is the entire experiment.
const (
	placeGroupSize = 8
	placeWindow    = 4
	placeOps       = 256
	placeSize      = 256
	placeObjects   = 1 << 15
)

// PlacementPoint is one (placement, routing) setting of the study.
type PlacementPoint struct {
	Placement  PlacementPolicy // named placement under test
	Routing    RoutePolicy     // fabric routing policy
	AvgHops    float64         // mean torus distance over all client flows
	Completed  int64           // ops completed across the whole cluster
	MeanLat    float64         // mean request latency, cycles
	P50        int64           // request latency percentiles, cycles
	P99        int64
	GoodGBps   float64 // cluster goodput: payload bytes per run cycle
	Queued     int64   // serializer-queued cycles summed over all links
	Blocked    int64   // credit-blocked cycles summed over all links
	Links      int     // links that carried at least one flit
	HotLink    string  // hottest link (most queued+blocked cycles)
	HotQueued  int64   // serializer-queued cycles on the hottest link
	HotBlocked int64   // credit-blocked cycles on the hottest link
	Drained    bool    // every client ran to completion within the budget
}

// PlacementResult is the placement study across policies and routings.
type PlacementResult struct {
	Nodes   int // cluster size
	Groups  int // communicating groups of placeGroupSize nodes
	Clients int // client cores per node
	Points  []PlacementPoint
}

// placementPeer returns the group-local peer node core's flow targets:
// nodes pair off within their placeGroupSize-node group, each core
// striding to a different group member so a group's traffic is all-to-all
// rather than a single ring. ok is false when the node's group is too
// small to have a peer (a trailing group of one).
func placementPeer(nodes, nodeIdx, core int) (int, bool) {
	base := nodeIdx / placeGroupSize * placeGroupSize
	gsize := placeGroupSize
	if base+gsize > nodes {
		gsize = nodes - base
	}
	if gsize < 2 {
		return 0, false
	}
	off := 1 + core%(gsize-1)
	return base + (nodeIdx-base+off)%gsize, true
}

// placementApp builds the per-core app factory: every node's client cores
// run windowed mixed-update clients against their group peers.
func placementApp(cfg *Config, nodes int) func(nodeIdx, core int) App {
	clients := scenarioClients(cfg)
	return func(nodeIdx, core int) App {
		if core >= clients {
			return nil
		}
		peer, ok := placementPeer(nodes, nodeIdx, core)
		if !ok {
			return nil
		}
		seed := scenarioSeed(clusterNodeSeed(cfg.Seed, nodeIdx), core)
		return TargetRemote(NewMixedUpdate(placeWindow, placeOps, placeSize,
			placeObjects, 0, seed), peer)
	}
}

// RunPlacementStudy measures the locality/hot-spot trade-off on an n-node
// congested cluster: for each named placement policy and routing policy it
// builds one cluster, drives the group traffic, and reports flow distance,
// latency, goodput and per-link occupancy. Nil policies and routings
// select the defaults: identity vs clustered vs scattered, and dor vs
// adaptive.
func RunPlacementStudy(cfg Config, nodes int, policies []PlacementPolicy, routings []RoutePolicy) (PlacementResult, error) {
	if nodes < 2 {
		return PlacementResult{}, fmt.Errorf("rackni: the placement study needs at least 2 nodes (one communicating pair), got %d", nodes)
	}
	if len(policies) == 0 {
		policies = []PlacementPolicy{PlaceIdentity, PlaceClustered, PlaceScattered}
	}
	if len(routings) == 0 {
		routings = []RoutePolicy{RouteDOR, RouteAdaptive}
	}
	for _, pol := range policies {
		if pol.IsZero() {
			return PlacementResult{}, fmt.Errorf("rackni: the placement study compares named placements; the uniform fixed-hop model has no geometry to place")
		}
	}
	for _, rp := range routings {
		if rp == RouteNone {
			return PlacementResult{}, fmt.Errorf("rackni: the placement study needs the congestion fabric (dor or adaptive); placement only matters once links contend")
		}
	}
	out := PlacementResult{Nodes: nodes, Groups: (nodes + placeGroupSize - 1) / placeGroupSize, Clients: scenarioClients(&cfg)}
	for _, pol := range policies {
		for _, rp := range routings {
			cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, FabricRouting: rp, Place: pol})
			if err != nil {
				return out, fmt.Errorf("%s/%v: %w", pol, rp, err)
			}
			res, err := cl.RunApp(placementApp(&cfg, nodes), 0)
			if err != nil {
				return out, fmt.Errorf("%s/%v: %w", pol, rp, err)
			}
			agg := res.Aggregate
			pt := PlacementPoint{
				Placement: pol,
				Routing:   rp,
				Completed: agg.Completed,
				MeanLat:   agg.MeanLatency,
				P50:       agg.P50,
				P99:       agg.P99,
				GoodGBps:  stats.GBps(float64(agg.AppBytes)/float64(agg.Cycles), cfg.ClockGHz),
				Drained:   agg.AllExhausted,
			}
			var flows, hops int
			for nodeIdx := 0; nodeIdx < nodes; nodeIdx++ {
				for core := 0; core < out.Clients; core++ {
					if peer, ok := placementPeer(nodes, nodeIdx, core); ok {
						hops += cl.Interconnect().Dist(nodeIdx, peer)
						flows++
					}
				}
			}
			if flows > 0 {
				pt.AvgHops = float64(hops) / float64(flows)
			}
			for _, l := range cl.Interconnect().LinkLedgers() {
				if l.Flits > 0 {
					pt.Links++
				}
				pt.Queued += l.QueuedCycles
				pt.Blocked += l.BlockedCycles
				if hot := l.QueuedCycles + l.BlockedCycles; hot > pt.HotQueued+pt.HotBlocked {
					pt.HotLink, pt.HotQueued, pt.HotBlocked = linkLabel(l), l.QueuedCycles, l.BlockedCycles
				}
			}
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

// Format renders the placement study.
func (r PlacementResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Congested placement: %d nodes in %d groups of %d, %d clients/node (window %d, %dB ops) within-group\n",
		r.Nodes, r.Groups, placeGroupSize, r.Clients, placeWindow, placeSize)
	fmt.Fprintf(&b, "%-10s %8s %8s %9s %8s %8s %13s %6s %10s %10s %8s %10s %8s\n",
		"placement", "fabric", "avghops", "completed", "mean", "p99",
		"goodput(GB/s)", "links", "queued", "blocked", "hot", "hotcycles", "drained")
	for _, p := range r.Points {
		hot := p.HotLink
		if hot == "" {
			hot = "-"
		}
		fmt.Fprintf(&b, "%-10s %8s %8.2f %9d %8.0f %8d %13.2f %6d %10d %10d %8s %10d %8v\n",
			p.Placement, p.Routing, p.AvgHops, p.Completed, p.MeanLat, p.P99,
			p.GoodGBps, p.Links, p.Queued, p.Blocked, hot, p.HotQueued+p.HotBlocked, p.Drained)
	}
	return b.String()
}
