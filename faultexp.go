// First-class robustness experiments: the overload-control curve (goodput
// vs offered load under a QP credit window) and the degraded-mode study
// (scenario throughput and tail latency under fabric faults). These are
// the fault plane's equivalents of the paper-figure sweeps in
// experiments.go: reusable entry points with Format renderers, consumed by
// the README tables and BENCH_cluster.json.
package rackni

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Overload control: goodput vs offered load under a QP credit window.
// ---------------------------------------------------------------------------

// OverloadPoint is one credit-window setting of the overload curve. The
// window caps each QP's in-flight requests (admission control at the issue
// boundary), so it is the experiment's offered-load knob: small windows
// under-subscribe the fabric, large ones saturate it, and PeakInFlight
// shows the cap bounding the live in-flight record population.
type OverloadPoint struct {
	Window       int     // requested QP credit window (0 = WQ-depth bound only)
	EffWindow    int     // bound actually applied: min(Window, WQEntries)
	AppGBps      float64 // goodput: application bandwidth actually delivered
	PeakInFlight int     // high-water live in-flight records on the inter-node fabric
	Completed    int64
	Stable       bool
}

// OverloadCurveResult is a goodput-vs-offered-load curve over QP credit
// windows on a fixed-size cluster.
type OverloadCurveResult struct {
	Nodes  int
	Size   int
	Points []OverloadPoint
}

// RunOverloadCurve measures goodput versus offered load on an n-node
// cluster: for each QP credit window (in the given order; 0 = uncapped)
// it builds a fresh cluster — the window is a construction-time bound —
// runs the all-cores asynchronous bandwidth microbenchmark at the given
// transfer size, and records the delivered bandwidth alongside the
// fabric's peak in-flight record count, the direct evidence of the window
// bounding the live population.
func RunOverloadCurve(cfg Config, nodes, size int, windows []int) (OverloadCurveResult, error) {
	if len(windows) == 0 {
		windows = []int{1, 2, 4, 8, 16, 32, 0}
	}
	out := OverloadCurveResult{Nodes: nodes, Size: size}
	for _, w := range windows {
		if w < 0 {
			return out, fmt.Errorf("rackni: negative QP window %d", w)
		}
		c := cfg
		c.QPWindow = w
		cl, err := NewCluster(c, nodes, 1)
		if err != nil {
			return out, err
		}
		res, err := cl.RunBandwidth(size)
		if err != nil {
			return out, err
		}
		eff := cfg.WQEntries
		if w > 0 && w < eff {
			eff = w
		}
		out.Points = append(out.Points, OverloadPoint{
			Window:       w,
			EffWindow:    eff,
			AppGBps:      res.Aggregate.AppGBps,
			PeakInFlight: cl.Interconnect().PeakInFlight(),
			Completed:    res.Aggregate.Completed,
			Stable:       res.Aggregate.Stable,
		})
	}
	return out, nil
}

// Format renders the overload curve.
func (r OverloadCurveResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Goodput vs offered load (%d nodes, %dB transfers, window = per-QP in-flight cap)\n", r.Nodes, r.Size)
	fmt.Fprintf(&b, "%8s %10s %12s %14s %12s %8s\n",
		"window", "effective", "app (GB/s)", "peak in-flight", "completed", "stable")
	for _, p := range r.Points {
		win := fmt.Sprintf("%d", p.Window)
		if p.Window == 0 {
			win = "uncapped"
		}
		fmt.Fprintf(&b, "%8s %10d %12.2f %14d %12d %8v\n",
			win, p.EffWindow, p.AppGBps, p.PeakInFlight, p.Completed, p.Stable)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Degraded mode: scenario behavior under fabric faults.
// ---------------------------------------------------------------------------

// DegradedPoint is one fault setting of the degraded-mode study.
type DegradedPoint struct {
	Label       string  // "drop=0.01", "link 0<->1 down", ...
	DropRate    float64 // per-leg drop probability (0 for outage-only points)
	Completed   int64   // ops that completed successfully
	Failed      int64   // ops that failed permanently (retries exhausted)
	Retries     int64   // retransmissions issued
	Drops       int64   // blocks the fabric dropped
	MeanLatency float64 // successful-op mean (cycles)
	P99         int64   // successful-op p99 (cycles)
	Drained     bool    // every client ran to completion
}

// DegradedModeResult is a scenario's behavior across fault settings.
type DegradedModeResult struct {
	Nodes    int
	Scenario string
	Points   []DegradedPoint
}

// RunDegradedMode studies a library scenario on an n-node cluster under
// increasing fabric drop rates, plus (when deadLink is set) one
// permanently dead link between nodes 0 and 1. The request timeout is
// armed (DefaultReqTimeout when the config leaves it 0), so drops recover
// by bounded retransmission; requests that exhaust their retries — every
// block crossing a dead link does — surface as permanent failures, not
// hangs. One cluster serves all settings: SetFaults swaps plans between
// runs and the session lifecycle makes each run bit-identical to a fresh
// build. shards > 1 partitions the cluster across that many parallel
// engines — results are bit-identical, only wall-clock changes.
func RunDegradedMode(cfg Config, nodes int, scenario string, dropRates []float64, deadLink bool, shards int) (DegradedModeResult, error) {
	sc, err := ParseScenario(scenario)
	if err != nil {
		return DegradedModeResult{}, err
	}
	if len(dropRates) == 0 {
		dropRates = []float64{0, 0.001, 0.01, 0.05}
	}
	if cfg.ReqTimeout == 0 {
		cfg.ReqTimeout = DefaultReqTimeout
	}
	out := DegradedModeResult{Nodes: nodes, Scenario: sc.Name}
	cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, Hops: 1, Shards: shards})
	if err != nil {
		return out, err
	}
	type setting struct {
		label string
		rate  float64
		spec  *FaultSpec
	}
	var settings []setting
	for _, rate := range dropRates {
		if rate < 0 || rate >= 1 {
			return out, fmt.Errorf("rackni: drop rate %g out of range [0, 1)", rate)
		}
		settings = append(settings, setting{
			label: fmt.Sprintf("drop=%g", rate),
			rate:  rate,
			spec:  &FaultSpec{Seed: cfg.Seed, DropProb: rate},
		})
	}
	if deadLink {
		settings = append(settings, setting{
			label: "link 0<->1 down",
			spec: &FaultSpec{Seed: cfg.Seed, LinkDown: []LinkOutage{
				{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, // Until 0 = forever
			}},
		})
	}
	for _, s := range settings {
		if err := cl.SetFaults(s.spec); err != nil {
			return out, err
		}
		res, err := cl.RunScenario(sc, 0)
		if err != nil {
			return out, fmt.Errorf("%s: %w", s.label, err)
		}
		var drops int64
		for i := 0; i < nodes; i++ {
			drops += cl.Interconnect().Counters[i].Drops
		}
		agg := res.Aggregate
		out.Points = append(out.Points, DegradedPoint{
			Label:       s.label,
			DropRate:    s.rate,
			Completed:   agg.Completed,
			Failed:      agg.Failed,
			Retries:     agg.Retries,
			Drops:       drops,
			MeanLatency: agg.MeanLatency,
			P99:         agg.P99,
			Drained:     agg.AllExhausted,
		})
	}
	return out, nil
}

// Format renders the degraded-mode study.
func (r DegradedModeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degraded mode: %s scenario on %d nodes (timeout/retry armed)\n", r.Scenario, r.Nodes)
	fmt.Fprintf(&b, "%-16s %10s %8s %8s %8s %11s %9s %8s\n",
		"fault", "completed", "failed", "retries", "drops", "mean (cyc)", "p99 (cyc)", "drained")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-16s %10d %8d %8d %8d %11.0f %9d %8v\n",
			p.Label, p.Completed, p.Failed, p.Retries, p.Drops, p.MeanLatency, p.P99, p.Drained)
	}
	return b.String()
}
