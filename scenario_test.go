package rackni

import (
	"reflect"
	"strings"
	"testing"
)

// scenarioTestCfg shortens runs; scenarios are request-bounded, so only
// MaxCycles matters as a safety net.
func scenarioTestCfg() Config {
	return QuickConfig()
}

// TestPointerChaseDependentReads: a k-deep chase serializes k remote
// reads, so its mean latency must be ~k times the run's single-read mean —
// the dependent-read behavior the v1 open-loop API could not express.
func TestPointerChaseDependentReads(t *testing.T) {
	const depth = 8
	cfg := scenarioTestCfg()
	cfg.Design = NISplit
	n, err := NewNode(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	chase := NewPointerChase(depth, 24, 64, 1<<16, cfg.Seed)
	res, err := n.RunApp(func(core int) App {
		if core != 27 {
			return nil
		}
		return chase
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllExhausted || res.Completed != depth*24 {
		t.Fatalf("chase run incomplete: %+v", res)
	}
	if chase.ChaseLat.Count() != 24 {
		t.Fatalf("recorded %d chases, want 24", chase.ChaseLat.Count())
	}
	ratio := chase.ChaseLat.Mean() / res.MeanLatency
	if ratio < depth*0.9 || ratio > depth*1.1 {
		t.Fatalf("chase mean %.0f cyc is %.2fx the single read (%.0f cyc), want ~%dx",
			chase.ChaseLat.Mean(), ratio, res.MeanLatency, depth)
	}
}

// TestScatterGatherGathersAll: every query must gather its full fan-out
// before the next query starts, and the whole-query latency (max of the
// fan-out) must exceed the mean single-read latency.
func TestScatterGatherGathersAll(t *testing.T) {
	const fanout, queries = 8, 16
	cfg := scenarioTestCfg()
	n, err := NewNode(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sg := NewScatterGather(fanout, queries, 128, 1<<16, 100, cfg.Seed)
	res, err := n.RunApp(func(core int) App {
		if core != 27 {
			return nil
		}
		return sg
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != fanout*queries || sg.QueryLat.Count() != queries {
		t.Fatalf("completed=%d queries=%d, want %d/%d", res.Completed, sg.QueryLat.Count(), fanout*queries, queries)
	}
	if sg.QueryLat.Mean() <= res.MeanLatency {
		t.Fatalf("query latency %.0f must exceed single-read mean %.0f (gather waits for the slowest)",
			sg.QueryLat.Mean(), res.MeanLatency)
	}
}

// TestScenarioLibraryDeterminism: every library scenario is seed-stable —
// two fresh nodes with the same configuration produce deeply equal
// results, percentiles and per-core breakdowns included.
func TestScenarioLibraryDeterminism(t *testing.T) {
	for _, name := range Scenarios() {
		if testing.Short() && name != "kv" && name != "pointerchase" {
			continue
		}
		sc, err := ParseScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() WorkloadResult {
			cfg := scenarioTestCfg()
			n, err := NewNode(cfg, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := n.RunScenario(sc, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return res
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed diverged:\na: %+v\nb: %+v", name, a, b)
		}
		if !a.AllExhausted || a.Completed == 0 || a.P99 < a.P50 {
			t.Fatalf("%s: implausible result %+v", name, a)
		}
	}
}

// TestWorkloadSweepParallelMatchesSerial: scenario points on the worker
// pool are bit-identical to a serial run, like every other mode.
func TestWorkloadSweepParallelMatchesSerial(t *testing.T) {
	sweep := NewSweep(scenarioTestCfg()).
		Designs(NIEdge, NISplit).
		Workloads("kv", "pointerchase")
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(par) != 4 {
		t.Fatalf("point counts: %d/%d, want 4", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].WL, par[i].WL) {
			t.Fatalf("point %d workload results differ under parallelism", i)
		}
	}
	if serial.Format() != par.Format() || serial.CSV() != par.CSV() {
		t.Fatal("rendered workload results differ under parallelism")
	}
}

// TestWorkloadSweepAxis: the Workloads axis expands alongside modes,
// pins the size/core axes, and flows percentiles through the renderers.
func TestWorkloadSweepAxis(t *testing.T) {
	cfg := DefaultConfig()
	pts := NewSweep(cfg).
		Designs(NIEdge, NISplit).
		Modes(Latency).
		Workloads("kv").
		Sizes(64, 4096).
		Points()
	// Per design: 2 latency sizes + 1 kv point (scenario points don't span
	// the Size axis).
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	var kv, lat int
	for _, p := range pts {
		switch p.Mode {
		case WorkloadMode:
			kv++
			if p.Scenario != "kv" || p.Size != 0 {
				t.Fatalf("bad scenario point: %+v", p)
			}
		case Latency:
			lat++
		}
	}
	if kv != 2 || lat != 4 {
		t.Fatalf("kinds: %d kv, %d latency, want 2/4", kv, lat)
	}

	// Workloads alone replaces the default latency point.
	only := NewSweep(cfg).Workloads("stream").Points()
	if len(only) != 1 || only[0].Mode != WorkloadMode || only[0].Scenario != "stream" {
		t.Fatalf("workloads-only sweep wrong: %+v", only)
	}

	// Renderers carry the scenario name and percentile columns.
	res, err := NewSweep(scenarioTestCfg()).Workloads("kv").Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Format(), "p50/p95/p99") || !strings.Contains(res.Format(), " kv ") {
		t.Fatalf("Format missing workload columns:\n%s", res.Format())
	}
	csv := res.CSV()
	if !strings.Contains(csv, "wl_p99") || !strings.Contains(csv, ",kv,") {
		t.Fatalf("CSV missing workload columns:\n%s", csv)
	}
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scenario": "kv"`, `"workload"`, `"P99"`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("JSON missing %s:\n%s", want, blob)
		}
	}
}

// TestScenarioConstructorsClampDegenerateGeometry: scenario constructors
// are traffic generators, not input parsers — zero/negative sizes, object
// counts, windows and fan-outs are clamped to legal values instead of
// faulting at Step time (divide-by-zero) or spilling past the core's
// local-buffer slice.
func TestScenarioConstructorsClampDegenerateGeometry(t *testing.T) {
	apps := []App{
		NewPointerChase(0, 2, 0, 0, 1),
		NewScatterGather(0, 2, -5, 0, 0, 1),
		NewScatterGather(1<<20, 1, 4096, 16, 0, 1), // fan-out must fit the local slice
		NewMixedUpdate(-1, 8, 0, -3, 0, 1),
		NewKVClient(4, 0, 0, -1, 0, 1),
		NewStreamer(4, 0, 0),
	}
	for _, app := range apps {
		for step := 0; step < 64; step++ {
			app.Step(3, int64(step), 0) // must not panic
		}
	}
	if sg := NewScatterGather(1<<20, 1, 4096, 16, 0, 1); uint64(sg.Fanout)*uint64(sg.Size) > LocalStride {
		t.Fatalf("fan-out footprint %d exceeds the local-buffer slice", sg.Fanout*sg.Size)
	}
	if st := NewStreamer(4, 1<<30, 3); uint64(st.SegBytes) > LocalStride {
		t.Fatalf("segment size %d exceeds the local-buffer slice", st.SegBytes)
	}
}

// TestParseScenarioHelpers: names resolve case-insensitively, lists
// validate, unknown names enumerate the library.
func TestParseScenarioHelpers(t *testing.T) {
	for _, name := range Scenarios() {
		sc, err := ParseScenario(strings.ToUpper(name))
		if err != nil || sc.Name != name {
			t.Fatalf("ParseScenario(%q) = %+v, %v", name, sc, err)
		}
		if sc.New == nil || sc.Summary == "" {
			t.Fatalf("scenario %q lacks constructor or summary", name)
		}
	}
	if _, err := ParseScenario("bogus"); err == nil || !strings.Contains(err.Error(), "kv") {
		t.Fatalf("unknown scenario error must list the library, got %v", err)
	}
	names, err := ParseScenarios("kv, POINTERCHASE")
	if err != nil || !reflect.DeepEqual(names, []string{"kv", "pointerchase"}) {
		t.Fatalf("ParseScenarios = %v, %v", names, err)
	}
	if _, err := ParseScenarios("kv,nope"); err == nil {
		t.Fatal("ParseScenarios accepted an unknown name")
	}
}

// TestMixedUpdateWritesLand: the mixed scenario's writes must reach the
// remote side (it exercises the write pipeline, not just reads).
func TestMixedUpdateWritesLand(t *testing.T) {
	cfg := scenarioTestCfg()
	n, err := NewNode(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunApp(func(core int) App {
		if core >= 4 {
			return nil
		}
		return NewMixedUpdate(8, 64, 256, 1<<15, 4, cfg.Seed+uint64(core))
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4*64 || !res.AllExhausted {
		t.Fatalf("mixed run incomplete: %+v", res)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("per-core breakdowns: %d, want 4", len(res.PerCore))
	}
	for _, c := range res.PerCore {
		if c.Completed != 64 || c.P99 < c.P50 {
			t.Fatalf("core %d stats implausible: %+v", c.Core, c)
		}
	}
}
