package rackni

import (
	"fmt"
	"sort"
	"strings"

	"rackni/internal/analytic"
	"rackni/internal/config"
	"rackni/internal/fabric"
)

// Fig6Sizes are the transfer sizes of the latency sweeps (Figs. 6 and 9).
var Fig6Sizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// Fig7Sizes are the transfer sizes of the bandwidth sweeps (Figs. 7, 10).
var Fig7Sizes = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// measureCore is the tile used for single-core latency runs: (3,3), a
// centrally located core whose distances to the NI and MC edges are close
// to the chip average.
const measureCore = 27

// toComponents converts a measured breakdown to the analytic form.
func toComponents(b Breakdown) analytic.Components {
	return analytic.Components{
		WQWrite: b.WQWrite, WQRead: b.WQRead, Dispatch: b.Dispatch,
		Generate: b.Generate, NetOut: b.NetOut, Remote: b.Remote,
		NetBack: b.NetBack, Complete: b.Complete, CQWrite: b.CQWrite,
		CQRead: b.CQRead,
	}
}

// ---------------------------------------------------------------------------
// Tables 1 and 3: zero-load single-block latency tomography.
// ---------------------------------------------------------------------------

// BreakdownRow is one design's column of Table 3 (or Table 1).
type BreakdownRow struct {
	Design      Design
	Breakdown   Breakdown
	TotalCycles float64
	OverheadPct float64 // over the NUMA projection
}

// Table3Result reproduces Table 3: per-design breakdowns plus the NUMA
// projection derived (as in the paper) from the NIsplit components.
type Table3Result struct {
	Rows       []BreakdownRow
	NUMACycles float64
}

// RunTable3 measures the zero-load single-block (64 B) remote-read latency
// breakdown for all three NI designs at one network hop and projects the
// NUMA baseline.
func RunTable3(cfg Config) (Table3Result, error) { return RunTable3Opts(cfg, Options{}) }

// RunTable3Opts is RunTable3 with runner options (parallelism,
// cancellation, progress).
func RunTable3Opts(cfg Config, opts Options) (Table3Result, error) {
	var out Table3Result
	res, err := NewSweep(cfg).
		Designs(NIEdge, NIPerTile, NISplit).
		Sizes(cfg.BlockBytes).
		Hops(1).
		Run(opts)
	if err != nil {
		return out, err
	}
	var splitComp analytic.Components
	for _, r := range res {
		d := r.Point.Config.Design
		out.Rows = append(out.Rows, BreakdownRow{Design: d, Breakdown: r.Sync.Breakdown, TotalCycles: r.Sync.MeanCycles})
		if d == NISplit {
			splitComp = toComponents(r.Sync.Breakdown)
		}
	}
	out.NUMACycles = splitComp.NUMATotal(&cfg)
	for i := range out.Rows {
		out.Rows[i].OverheadPct = 100 * (out.Rows[i].TotalCycles - out.NUMACycles) / out.NUMACycles
	}
	return out, nil
}

// Format renders the result as a paper-style table.
func (t Table3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "Latency component (cycles)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%14s", r.Design)
	}
	fmt.Fprintf(&b, "%14s\n", "NUMA proj.")
	row := func(name string, f func(Breakdown) float64, numa string) {
		fmt.Fprintf(&b, "%-28s", name)
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "%14.0f", f(r.Breakdown))
		}
		fmt.Fprintf(&b, "%14s\n", numa)
	}
	row("WQ write (sw + coherence)", func(x Breakdown) float64 { return x.WQWrite }, "1")
	row("WQ read / frontend", func(x Breakdown) float64 { return x.WQRead }, "-")
	row("Frontend->backend transfer", func(x Breakdown) float64 { return x.Dispatch }, "23")
	row("Request generation", func(x Breakdown) float64 { return x.Generate }, "-")
	row("Intra-rack network (out)", func(x Breakdown) float64 { return x.NetOut }, "70")
	row("Remote service (RRPP)", func(x Breakdown) float64 { return x.Remote }, "208")
	row("Intra-rack network (back)", func(x Breakdown) float64 { return x.NetBack }, "70")
	row("Completion (data write)", func(x Breakdown) float64 { return x.Complete }, "-")
	row("CQ write", func(x Breakdown) float64 { return x.CQWrite }, "23")
	row("CQ read (sw + coherence)", func(x Breakdown) float64 { return x.CQRead }, "-")
	fmt.Fprintf(&b, "%-28s", "Total (2GHz cycles)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%14.0f", r.TotalCycles)
	}
	fmt.Fprintf(&b, "%14.0f\n", t.NUMACycles)
	fmt.Fprintf(&b, "%-28s", "Overhead over NUMA")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%13.1f%%", r.OverheadPct)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// Table1Result reproduces Table 1: the QP-based model (NIedge) against the
// NUMA projection.
type Table1Result struct {
	QP          BreakdownRow
	NUMACycles  float64
	OverheadPct float64
}

// RunTable1 measures the QP-based model's latency (NIedge placement, the
// conventional integrated NI) against the NUMA projection.
func RunTable1(cfg Config) (Table1Result, error) { return RunTable1Opts(cfg, Options{}) }

// RunTable1Opts is RunTable1 with runner options.
func RunTable1Opts(cfg Config, opts Options) (Table1Result, error) {
	t3, err := RunTable3Opts(cfg, opts)
	if err != nil {
		return Table1Result{}, err
	}
	out := Table1Result{NUMACycles: t3.NUMACycles}
	for _, r := range t3.Rows {
		if r.Design == NIEdge {
			out.QP = r
		}
	}
	out.OverheadPct = out.QP.OverheadPct
	return out, nil
}

// Format renders Table 1.
func (t Table1Result) Format() string {
	b := t.QP.Breakdown
	var s strings.Builder
	fmt.Fprintf(&s, "%-34s %10s    %-34s %10s\n", "QP-based model", "cycles", "NUMA", "cycles")
	line := func(l string, lv float64, r string, rv float64) {
		fmt.Fprintf(&s, "%-34s %10.0f    %-34s %10.0f\n", l, lv, r, rv)
	}
	defCfg := config.Default()
	edgeT := analytic.NUMAEdgeTraversal(&defCfg)
	line("A1) WQ write (core)", b.WQWrite, "B1) Exec. of load instruction", 1)
	line("A2) WQ read + generation (NI)", b.WQRead+b.Dispatch+b.Generate, "B2) Transfer req. to chip edge", edgeT)
	line("A3) Intra-rack network", b.NetOut, "B3) Intra-rack network", b.NetOut)
	line("A4) Read data from memory", b.Remote, "B4) Read data from memory", b.Remote)
	line("A5) Intra-rack network", b.NetBack, "B5) Intra-rack network", b.NetBack)
	line("A6) CQ write (NI)", b.Complete+b.CQWrite, "B6) Transfer reply to core", edgeT)
	line("A7) CQ read (core)", b.CQRead, "", 0)
	fmt.Fprintf(&s, "%-34s %10.0f    %-34s %10.0f\n", "Total (2GHz cycles)", t.QP.TotalCycles, "Total (2GHz cycles)", t.NUMACycles)
	fmt.Fprintf(&s, "Overhead over NUMA: %.1f%%\n", t.OverheadPct)
	return s.String()
}

// ---------------------------------------------------------------------------
// Fig. 5: latency vs hop count projection.
// ---------------------------------------------------------------------------

// Fig5Result is the hop-count projection plus the torus statistics that
// anchor it.
type Fig5Result struct {
	Points   []analytic.HopPoint
	AvgHops  float64
	MaxHops  int
	Measured Table3Result
}

// RunFig5 reproduces Fig. 5: measures the Table 3 breakdowns, then projects
// end-to-end latency and overhead-over-NUMA for 0..12 intra-rack hops (the
// diameter of the 512-node 3D torus).
func RunFig5(cfg Config) (Fig5Result, error) { return RunFig5Opts(cfg, Options{}) }

// RunFig5Opts is RunFig5 with runner options.
func RunFig5Opts(cfg Config, opts Options) (Fig5Result, error) {
	t3, err := RunTable3Opts(cfg, opts)
	if err != nil {
		return Fig5Result{}, err
	}
	var edge, split analytic.Components
	for _, r := range t3.Rows {
		switch r.Design {
		case NIEdge:
			edge = toComponents(r.Breakdown)
		case NISplit:
			split = toComponents(r.Breakdown)
		}
	}
	torus := fabric.NewTorus3D(cfg.TorusRadix)
	pts := analytic.ProjectHops(&cfg, edge, split, 1, torus.MaxHops())
	return Fig5Result{Points: pts, AvgHops: torus.AvgHops(), MaxHops: torus.MaxHops(), Measured: t3}, nil
}

// Format renders the Fig. 5 series.
func (f Fig5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "512-node 3D torus: avg hops %.1f, max hops %d\n", f.AvgHops, f.MaxHops)
	fmt.Fprintf(&b, "%5s %12s %12s %12s %16s %16s\n",
		"hops", "NUMA (ns)", "split (ns)", "edge (ns)", "split ovhd (%)", "edge ovhd (%)")
	for _, p := range f.Points {
		fmt.Fprintf(&b, "%5d %12.0f %12.0f %12.0f %16.1f %16.1f\n",
			p.Hops, p.NUMANS, p.SplitNS, p.EdgeNS, p.SplitOverPct, p.EdgeOverPct)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figs. 6 and 9: synchronous latency vs transfer size.
// ---------------------------------------------------------------------------

// LatencyPoint is one (design, size) latency sample.
type LatencyPoint struct {
	Design Design
	Size   int
	NS     float64
}

// LatencySweepResult holds a full latency-vs-size sweep plus the NUMA
// projection per size (derived from NIsplit, §6.1.3).
type LatencySweepResult struct {
	Topology Topology
	Points   []LatencyPoint
	NUMA     map[int]float64 // size -> projected ns
}

// RunFig6 reproduces Fig. 6 (mesh) — and Fig. 9 when cfg.Topology is
// NOCOut: unloaded synchronous remote-read latency across transfer sizes
// for the three designs, plus the NUMA projection.
func RunFig6(cfg Config, sizes []int) (LatencySweepResult, error) {
	return RunFig6Opts(cfg, sizes, Options{})
}

// RunFig6Opts is RunFig6 with runner options.
func RunFig6Opts(cfg Config, sizes []int, opts Options) (LatencySweepResult, error) {
	if len(sizes) == 0 {
		sizes = Fig6Sizes
	}
	out := LatencySweepResult{Topology: cfg.Topology, NUMA: make(map[int]float64)}
	res, err := NewSweep(cfg).
		Designs(NIEdge, NISplit, NIPerTile).
		Sizes(sizes...).
		Hops(1).
		Run(opts)
	if err != nil {
		return out, err
	}
	var splitBase analytic.Components
	splitBySize := make(map[int]float64)
	for _, r := range res {
		d, size := r.Point.Config.Design, r.Point.Size
		out.Points = append(out.Points, LatencyPoint{Design: d, Size: size, NS: r.Sync.MeanNS})
		if d == NISplit {
			splitBySize[size] = r.Sync.MeanCycles
			if size == sizes[0] {
				splitBase = toComponents(r.Sync.Breakdown)
			}
		}
	}
	for _, size := range sizes {
		numaCycles := analytic.NUMALatencyForSize(&cfg, splitBase, splitBySize[size])
		out.NUMA[size] = numaCycles * cfg.NsPerCycle()
	}
	return out, nil
}

// RunFig9 is RunFig6 on the NOC-Out topology.
func RunFig9(cfg Config, sizes []int) (LatencySweepResult, error) {
	return RunFig9Opts(cfg, sizes, Options{})
}

// RunFig9Opts is RunFig9 with runner options.
func RunFig9Opts(cfg Config, sizes []int, opts Options) (LatencySweepResult, error) {
	cfg.Topology = NOCOut
	return RunFig6Opts(cfg, sizes, opts)
}

// Format renders the sweep as a size-by-design table.
func (l LatencySweepResult) Format() string {
	designs := []Design{NIEdge, NISplit, NIPerTile}
	bySize := map[int]map[Design]float64{}
	var sizes []int
	for _, p := range l.Points {
		m, ok := bySize[p.Size]
		if !ok {
			m = map[Design]float64{}
			bySize[p.Size] = m
			sizes = append(sizes, p.Size)
		}
		m[p.Design] = p.NS
	}
	sort.Ints(sizes)
	var b strings.Builder
	fmt.Fprintf(&b, "Latency (ns) on %v\n%10s", l.Topology, "size (B)")
	for _, d := range designs {
		fmt.Fprintf(&b, "%14s", d)
	}
	fmt.Fprintf(&b, "%14s\n", "NUMA proj.")
	for _, s := range sizes {
		fmt.Fprintf(&b, "%10d", s)
		for _, d := range designs {
			fmt.Fprintf(&b, "%14.0f", bySize[s][d])
		}
		fmt.Fprintf(&b, "%14.0f\n", l.NUMA[s])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figs. 7 and 10: application bandwidth vs transfer size.
// ---------------------------------------------------------------------------

// BandwidthPoint is one (design, size) bandwidth sample.
type BandwidthPoint struct {
	Design Design
	Size   int
	Result BWResult
}

// BandwidthSweepResult holds a bandwidth-vs-size sweep.
type BandwidthSweepResult struct {
	Topology Topology
	Points   []BandwidthPoint
}

// RunFig7 reproduces Fig. 7 (mesh) — and Fig. 10 when cfg.Topology is
// NOCOut: aggregate application bandwidth of asynchronous remote reads,
// all 64 cores issuing, across transfer sizes and designs.
func RunFig7(cfg Config, sizes []int) (BandwidthSweepResult, error) {
	return RunFig7Opts(cfg, sizes, Options{})
}

// RunFig7Opts is RunFig7 with runner options.
func RunFig7Opts(cfg Config, sizes []int, opts Options) (BandwidthSweepResult, error) {
	if len(sizes) == 0 {
		sizes = Fig7Sizes
	}
	out := BandwidthSweepResult{Topology: cfg.Topology}
	res, err := NewSweep(cfg).
		Designs(NIEdge, NISplit, NIPerTile).
		Modes(Bandwidth).
		Sizes(sizes...).
		Hops(1).
		Run(opts)
	if err != nil {
		return out, err
	}
	for _, r := range res {
		out.Points = append(out.Points, BandwidthPoint{Design: r.Point.Config.Design, Size: r.Point.Size, Result: *r.BW})
	}
	return out, nil
}

// RunFig10 is RunFig7 on the NOC-Out topology.
func RunFig10(cfg Config, sizes []int) (BandwidthSweepResult, error) {
	return RunFig10Opts(cfg, sizes, Options{})
}

// RunFig10Opts is RunFig10 with runner options.
func RunFig10Opts(cfg Config, sizes []int, opts Options) (BandwidthSweepResult, error) {
	cfg.Topology = NOCOut
	return RunFig7Opts(cfg, sizes, opts)
}

// Peak returns the highest application bandwidth a design reached.
func (r BandwidthSweepResult) Peak(d Design) float64 {
	best := 0.0
	for _, p := range r.Points {
		if p.Design == d && p.Result.AppGBps > best {
			best = p.Result.AppGBps
		}
	}
	return best
}

// At returns the bandwidth of a design at a size (0 if absent).
func (r BandwidthSweepResult) At(d Design, size int) float64 {
	for _, p := range r.Points {
		if p.Design == d && p.Size == size {
			return p.Result.AppGBps
		}
	}
	return 0
}

// Format renders the sweep.
func (r BandwidthSweepResult) Format() string {
	designs := []Design{NIEdge, NISplit, NIPerTile}
	bySize := map[int]map[Design]float64{}
	var sizes []int
	for _, p := range r.Points {
		m, ok := bySize[p.Size]
		if !ok {
			m = map[Design]float64{}
			bySize[p.Size] = m
			sizes = append(sizes, p.Size)
		}
		m[p.Design] = p.Result.AppGBps
	}
	sort.Ints(sizes)
	var b strings.Builder
	fmt.Fprintf(&b, "Application bandwidth (GB/s) on %v\n%10s", r.Topology, "size (B)")
	for _, d := range designs {
		fmt.Fprintf(&b, "%14s", d)
	}
	fmt.Fprintf(&b, "\n")
	for _, s := range sizes {
		fmt.Fprintf(&b, "%10d", s)
		for _, d := range designs {
			fmt.Fprintf(&b, "%14.1f", bySize[s][d])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// §6.2 routing ablation: CDR roughly doubles the achievable peak.
// ---------------------------------------------------------------------------

// RoutingPoint is one routing policy's peak-bandwidth measurement.
type RoutingPoint struct {
	Routing Routing
	Result  BWResult
}

// RoutingAblationResult compares routing policies at a peak-bandwidth
// configuration (NIsplit, large transfers).
type RoutingAblationResult struct {
	Size   int
	Points []RoutingPoint
}

// RunRoutingAblation reproduces the §6.2 observation that without CDR the
// peak bandwidth is less than half of that achievable with it.
func RunRoutingAblation(cfg Config, size int) (RoutingAblationResult, error) {
	return RunRoutingAblationOpts(cfg, size, Options{})
}

// RunRoutingAblationOpts is RunRoutingAblation with runner options.
func RunRoutingAblationOpts(cfg Config, size int, opts Options) (RoutingAblationResult, error) {
	if size == 0 {
		size = 4096
	}
	out := RoutingAblationResult{Size: size}
	cfg.Design = NISplit
	res, err := NewSweep(cfg).
		Routings(RoutingXY, RoutingO1Turn, RoutingCDR, RoutingCDRNI).
		Modes(Bandwidth).
		Sizes(size).
		Hops(1).
		Run(opts)
	if err != nil {
		return out, err
	}
	for _, r := range res {
		out.Points = append(out.Points, RoutingPoint{Routing: r.Point.Config.Routing, Result: *r.BW})
	}
	return out, nil
}

// Format renders the ablation.
func (r RoutingAblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Routing ablation (NI_split, %dB transfers)\n", r.Size)
	fmt.Fprintf(&b, "%10s %14s %16s %16s\n", "policy", "app (GB/s)", "NOC agg (GB/s)", "bisection (GB/s)")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10s %14.1f %16.1f %16.1f\n",
			p.Routing, p.Result.AppGBps, p.Result.NOCGBps, p.Result.BisectionGBps)
	}
	return b.String()
}
