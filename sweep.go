// Declarative design-space sweeps. The paper's evaluation is a cross
// product — NI placement × topology × routing × transfer size × hop count —
// and this file provides the three concepts that make such sweeps (and ones
// the paper never ran) first-class: a Point (one fully-specified
// simulation), a Sweep builder that composes axes into a cross product, and
// a Runner that executes points on a worker pool. Every point is an
// independent deterministic simulation with its own event engine, so
// parallelism across points is race-free and results are bit-identical to a
// serial run.
package rackni

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"time"

	"rackni/internal/fabric"
	"rackni/internal/load"
)

// Mode selects which §5 microbenchmark one sweep point runs.
type Mode int

const (
	// Latency is the synchronous latency microbenchmark: one core issues
	// blocking remote reads of the point's size.
	Latency Mode = iota
	// Bandwidth is the asynchronous bandwidth microbenchmark: all cores
	// issue async remote reads until the windowed rate stabilizes.
	Bandwidth
	// WorkloadMode runs a named closed-loop scenario from the library
	// (Point.Scenario); set through the Sweep's Workloads axis.
	WorkloadMode
	// ServiceMode runs the open-loop replicated KV service (service.go)
	// under the point's arrival process and hedge delay; set through the
	// Sweep's Arrivals axis. Service points always run the Cluster path,
	// even single-node ones.
	ServiceMode
)

func (m Mode) String() string {
	switch m {
	case Latency:
		return "latency"
	case Bandwidth:
		return "bandwidth"
	case WorkloadMode:
		return "workload"
	case ServiceMode:
		return "service"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Point is one fully-specified simulation: a complete Config (with design,
// topology, routing and seed already applied) plus the microbenchmark mode,
// transfer size, one-way intra-rack hop count, issuing core (latency mode
// only), scenario name (workload mode only; its library defaults define
// sizes and participating cores, so the Size and Core axes don't apply to
// workload points), and node count. Nodes <= 1 runs one detailed node
// against the paper's emulated rack (the fast path); Nodes > 1 builds a
// real Cluster of that many detailed nodes, every pair Hops apart, and
// reports the cross-node aggregate. Points are value types; build them
// with a Sweep or directly.
type Point struct {
	Config   Config
	Mode     Mode
	Size     int
	Hops     int
	Core     int
	Scenario string
	Nodes    int
	// TorusPlacement places the point's cluster nodes at coordinates
	// 0..Nodes-1 of the rack's 3D torus (real pairwise hop distances, the
	// paper's 512-node rack geometry) instead of the uniform fixed-hop
	// model. Requires Nodes ≤ TorusRadix³; single-node points ignore it.
	//
	// Deprecated: equivalent to Placement = PlaceIdentity, which the
	// Sweep's Placements axis and racksim -placement set; kept so old
	// callers keep working.
	TorusPlacement bool
	// Placement, when non-zero, places the point's cluster nodes on the
	// rack's 3D torus under the named policy (identity, clustered,
	// scattered, random:<seed>) — real pairwise hop distances instead of
	// the uniform fixed-hop model. Requires a multi-node point that fits
	// the torus (Nodes ≤ TorusRadix³).
	Placement PlacementPolicy
	// Faults, when > 0, drops each inter-node fabric leg with this
	// probability (deterministic, seeded from Config.Seed). Requires a
	// multi-node point; if Config.ReqTimeout is unarmed the point arms it
	// with DefaultReqTimeout so drops recover by retransmission.
	Faults float64
	// Window, when > 0, caps each QP's in-flight requests at this credit
	// window (Config.QPWindow); 0 keeps the WQ-depth-only bound.
	Window int
	// FabricRouting, when not RouteNone, routes every inter-node block
	// hop-by-hop over the rack torus through per-link credit queues (the
	// congestion-faithful fabric) with this routing policy. Requires a
	// multi-node point that fits the torus; RouteNone keeps the lump-sum
	// fast path, bit-identical to a sweep without the axis.
	FabricRouting RoutePolicy
	// Shards partitions a multi-node point's cluster across this many
	// event engines, one goroutine each, under conservative-window
	// synchronization (ClusterSpec.Shards). A pure wall-clock knob:
	// results are bit-identical at every shard count. 0 or 1 is the
	// classic single engine; requires a multi-node workload or service
	// point (the microbenchmarks coordinate cluster-wide on one engine).
	// Geometries without conservative lookahead — the congestion fabric,
	// zero per-hop delay — fall back to one engine.
	Shards int
	// Arrival is the open-loop arrival process of a ServiceMode point
	// (kind and per-client rate); unused in other modes.
	Arrival ArrivalSpec
	// Hedge is the ServiceMode hedge delay in cycles (0 = no hedging);
	// unused in other modes.
	Hedge int64
}

// nodeCount normalizes the point's node count (0 means single-node).
func (p Point) nodeCount() int {
	if p.Nodes < 1 {
		return 1
	}
	return p.Nodes
}

// placement resolves the point's effective placement policy: the named
// Placement if set, else the identity policy when the deprecated
// TorusPlacement flag is up on a multi-node point, else the zero policy
// (the uniform fixed-hop model).
func (p Point) placement() PlacementPolicy {
	if !p.Placement.IsZero() {
		return p.Placement
	}
	if p.TorusPlacement && p.nodeCount() > 1 {
		return PlaceIdentity
	}
	return PlacementPolicy{}
}

// modeLabel names the point's run kind for tables: the scenario name for
// workload points, the microbenchmark otherwise.
func (p Point) modeLabel() string {
	if p.Scenario != "" {
		return p.Scenario
	}
	return p.Mode.String()
}

// label is the point's compact identity, used in errors and progress lines.
func (p Point) label() string {
	l := fmt.Sprintf("%v/%v/%v/%v/%dB@%dhops/seed%d",
		p.Config.Design, p.Config.Topology, p.Config.Routing, p.modeLabel(),
		p.Size, p.Hops, p.Config.Seed)
	if p.nodeCount() > 1 {
		l += fmt.Sprintf("/%dnodes", p.nodeCount())
		if pol := p.placement(); !pol.IsZero() {
			l += "-" + pol.String()
		}
		if p.Shards > 1 {
			l += fmt.Sprintf("/%dshards", p.Shards)
		}
	}
	if p.Faults > 0 {
		l += fmt.Sprintf("/drop%g", p.Faults)
	}
	if p.Window > 0 {
		l += fmt.Sprintf("/win%d", p.Window)
	}
	if p.FabricRouting != RouteNone {
		l += "/" + p.FabricRouting.String()
	}
	if p.Mode == ServiceMode {
		l += "/" + p.Arrival.String()
		if p.Hedge > 0 {
			l += fmt.Sprintf("/hedge%d", p.Hedge)
		}
	}
	return l
}

// Sweep composes axes into a cross product of Points.
//
// Axis setters return the sweep for chaining; an axis left unset
// contributes a single value taken from the base configuration (and for
// axes with no Config field: Latency mode, the block size, DefaultHops,
// the central measurement core, one node, the uniform placement, no
// faults, an uncapped window, and the lump-sum fabric). Points enumerate
// in a fixed nesting order — Designs ▸ Topologies ▸ Routings ▸ Hops ▸
// Nodes ▸ Placements ▸ Faults ▸ Windows ▸ FabricRoutings ▸ run kinds
// (Modes, then Workloads) ▸ Shards ▸ Sizes ▸ Seeds ▸ Cores, first axis
// outermost — so a sweep's point list is deterministic and stable across
// runs.
// Workload points pin the Size and Core axes to 0 (the scenario defines
// both), contributing one point per
// design/topology/routing/hops/nodes/faults/window/seed combination.
type Sweep struct {
	base        Config
	designs     []Design
	topos       []Topology
	routings    []Routing
	modes       []Mode
	workloads   []string
	sizes       []int
	hops        []int
	seeds       []uint64
	cores       []int
	nodes       []int
	shards      []int
	faults      []float64
	windows     []int
	froutings   []RoutePolicy
	arrivals    []ArrivalSpec
	hedges      []int64
	placements  []PlacementPolicy
	torusPlaced bool
}

// NewSweep starts a sweep over the given base configuration.
func NewSweep(base Config) *Sweep { return &Sweep{base: base} }

// Designs sets the NI-placement axis.
func (s *Sweep) Designs(ds ...Design) *Sweep {
	s.designs = append(s.designs[:0], ds...)
	return s
}

// Topologies sets the on-chip interconnect axis.
func (s *Sweep) Topologies(ts ...Topology) *Sweep {
	s.topos = append(s.topos[:0], ts...)
	return s
}

// Routings sets the mesh-routing-policy axis.
func (s *Sweep) Routings(rs ...Routing) *Sweep {
	s.routings = append(s.routings[:0], rs...)
	return s
}

// Modes sets the microbenchmark axis.
func (s *Sweep) Modes(ms ...Mode) *Sweep {
	s.modes = append(s.modes[:0], ms...)
	return s
}

// Workloads adds named closed-loop scenarios ("kv", "pointerchase", ...;
// see Scenarios) to the run-kind axis. Scenario points ride the same cross
// product as the microbenchmark modes: every scenario runs for every
// design x topology x routing x hops x seed combination. Set alone, only
// the scenarios run; combined with Modes, both do.
func (s *Sweep) Workloads(names ...string) *Sweep {
	s.workloads = append(s.workloads[:0], names...)
	return s
}

// Sizes sets the transfer-size axis (bytes).
func (s *Sweep) Sizes(sizes ...int) *Sweep {
	s.sizes = append(s.sizes[:0], sizes...)
	return s
}

// Hops sets the one-way intra-rack hop-count axis.
func (s *Sweep) Hops(hops ...int) *Sweep {
	s.hops = append(s.hops[:0], hops...)
	return s
}

// Seeds sets the simulation-seed axis.
func (s *Sweep) Seeds(seeds ...uint64) *Sweep {
	s.seeds = append(s.seeds[:0], seeds...)
	return s
}

// Cores sets the issuing-core axis (latency mode).
func (s *Sweep) Cores(cores ...int) *Sweep {
	s.cores = append(s.cores[:0], cores...)
	return s
}

// Nodes sets the node-count axis: 1 runs the single detailed node against
// the paper's emulated rack; n > 1 builds a real n-node Cluster (every
// pair Hops apart) and reports the cross-node aggregate.
func (s *Sweep) Nodes(nodes ...int) *Sweep {
	s.nodes = append(s.nodes[:0], nodes...)
	return s
}

// Shards sets the engine-shard axis for multi-node workload and service
// points (Point.Shards): each count K > 1 runs the point's cluster on K
// engines in parallel under conservative-window synchronization —
// bit-identical results, shorter wall clock. 0 and 1 both mean the
// classic single engine.
func (s *Sweep) Shards(ks ...int) *Sweep {
	s.shards = append(s.shards[:0], ks...)
	return s
}

// Faults sets the fabric drop-rate axis: each rate > 0 drops every
// inter-node leg with that probability (deterministic, seeded from the
// point's Config.Seed). Faulty points require a multi-node (Cluster) node
// count; rate 0 contributes a fault-free point. When the base Config
// leaves ReqTimeout unarmed, faulty points arm it with DefaultReqTimeout
// so drops recover by retransmission.
func (s *Sweep) Faults(rates ...float64) *Sweep {
	s.faults = append(s.faults[:0], rates...)
	return s
}

// Windows sets the per-QP credit-window axis (Config.QPWindow): each
// window > 0 caps a QP's in-flight requests at that many; 0 keeps the
// WQ-depth-only bound.
func (s *Sweep) Windows(windows ...int) *Sweep {
	s.windows = append(s.windows[:0], windows...)
	return s
}

// FabricRoutings sets the congestion-fabric routing-policy axis: each
// policy other than RouteNone routes the point's inter-node blocks
// hop-by-hop through per-link credit queues (DOR or adaptive-minimal)
// instead of the lump-sum delay model. Congested points require a
// multi-node node count that fits the rack torus (TorusRadix³);
// RouteNone contributes an uncongested point.
func (s *Sweep) FabricRoutings(rs ...RoutePolicy) *Sweep {
	s.froutings = append(s.froutings[:0], rs...)
	return s
}

// Arrivals adds open-loop service run kinds to the run-kind axis: one
// ServiceMode point per arrival process (kind + per-client rate) for
// every design/topology/routing/hops/nodes/faults/window/fabric/seed
// combination, crossed with the Hedges axis. Like Workloads, service
// points pin the Size and Core axes (the service spec defines both).
func (s *Sweep) Arrivals(as ...ArrivalSpec) *Sweep {
	s.arrivals = append(s.arrivals[:0], as...)
	return s
}

// Hedges sets the service hedge-delay axis in cycles (0 = no hedging).
// It spans only the ServiceMode points contributed by Arrivals;
// microbenchmark and workload points ignore it.
func (s *Sweep) Hedges(hs ...int64) *Sweep {
	s.hedges = append(s.hedges[:0], hs...)
	return s
}

// Placements sets the node-placement axis: each named policy places
// every multi-node point's nodes at its coordinates on the rack's 3D
// torus (real pairwise hop distances from Torus3D); the zero policy
// contributes a uniform fixed-hop point. Node counts must fit the torus
// (TorusRadix³). Single-node points collapse the axis to the uniform
// model — the emulated rack has no torus to place nodes on.
func (s *Sweep) Placements(ps ...PlacementPolicy) *Sweep {
	s.placements = append(s.placements[:0], ps...)
	return s
}

// TorusPlacement makes every multi-node point place its nodes at real
// coordinates of the rack's 3D torus (identity placement, pairwise
// distances from Torus3D) instead of the uniform fixed-hop model — the
// geometry of the paper's full 512-node rack. Node counts must not exceed
// the torus size (TorusRadix³).
//
// Deprecated: TorusPlacement(true) is an alias for
// Placements(PlaceIdentity), consulted only when no Placements axis is
// set; the two expand to identical point lists.
func (s *Sweep) TorusPlacement(on bool) *Sweep {
	s.torusPlaced = on
	return s
}

// Points expands the sweep into its cross product, in nesting order.
func (s *Sweep) Points() []Point {
	designs := s.designs
	if len(designs) == 0 {
		designs = []Design{s.base.Design}
	}
	topos := s.topos
	if len(topos) == 0 {
		topos = []Topology{s.base.Topology}
	}
	routings := s.routings
	if len(routings) == 0 {
		routings = []Routing{s.base.Routing}
	}
	hops := s.hops
	if len(hops) == 0 {
		hops = []int{s.base.DefaultHops}
	}
	// The run-kind axis merges the microbenchmark modes, the named
	// scenarios and the open-loop arrival processes; with none set, a
	// single latency run is the default.
	type runKind struct {
		mode     Mode
		scenario string
		arrival  ArrivalSpec
	}
	var kinds []runKind
	for _, m := range s.modes {
		kinds = append(kinds, runKind{mode: m})
	}
	for _, w := range s.workloads {
		kinds = append(kinds, runKind{mode: WorkloadMode, scenario: w})
	}
	for _, a := range s.arrivals {
		kinds = append(kinds, runKind{mode: ServiceMode, arrival: a})
	}
	if len(kinds) == 0 {
		kinds = []runKind{{mode: Latency}}
	}
	hedges := s.hedges
	if len(hedges) == 0 {
		hedges = []int64{0}
	}
	sizes := s.sizes
	if len(sizes) == 0 {
		sizes = []int{s.base.BlockBytes}
	}
	seeds := s.seeds
	if len(seeds) == 0 {
		seeds = []uint64{s.base.Seed}
	}
	cores := s.cores
	if len(cores) == 0 {
		cores = []int{measureCore}
	}
	nodes := s.nodes
	if len(nodes) == 0 {
		nodes = []int{1}
	}
	placements := s.placements
	if len(placements) == 0 {
		// The deprecated TorusPlacement flag is the identity policy by
		// another name; absent both, points keep the uniform fixed-hop model.
		if s.torusPlaced {
			placements = []PlacementPolicy{PlaceIdentity}
		} else {
			placements = []PlacementPolicy{{}}
		}
	}
	faults := s.faults
	if len(faults) == 0 {
		faults = []float64{0}
	}
	windows := s.windows
	if len(windows) == 0 {
		windows = []int{s.base.QPWindow}
	}
	froutings := s.froutings
	if len(froutings) == 0 {
		froutings = []RoutePolicy{RouteNone}
	}
	shards := s.shards
	if len(shards) == 0 {
		shards = []int{1}
	}
	pts := make([]Point, 0,
		len(designs)*len(topos)*len(routings)*len(hops)*len(nodes)*len(placements)*len(shards)*
			len(faults)*len(windows)*len(froutings)*len(kinds)*len(sizes)*len(seeds)*len(cores))
	for _, d := range designs {
		for _, tp := range topos {
			for _, rt := range routings {
				for _, h := range hops {
					if h == 0 {
						// Resolve "default" now so the point's metadata
						// (label, Format, CSV, JSON) reports the hop count
						// actually simulated.
						h = s.base.DefaultHops
					}
					for _, nn := range nodes {
						if nn < 1 {
							nn = 1
						}
						// Single-node points run the emulated rack — no
						// torus to place nodes on. The legacy TorusPlacement
						// knob always ignored them silently, so its derived
						// axis collapses to the uniform model; an explicit
						// Placements axis instead carries the named policy
						// through so check() can reject the combination.
						pls := placements
						if nn <= 1 && len(s.placements) == 0 {
							pls = []PlacementPolicy{{}}
						}
						for _, pl := range pls {
							for _, fr := range faults {
								for _, win := range windows {
									for _, fab := range froutings {
										for _, k := range kinds {
											// Scenario and service points don't span the Size and
											// Core axes (the scenario or service spec defines
											// both), so they collapse to one point per
											// design/topology/routing/hops/seed combination; the
											// hedge axis spans only service points, and the shard
											// axis only multi-node workload/service points (the
											// only run kinds whose cluster can shard).
											szs, crs := sizes, cores
											hds := []int64{0}
											ks := []int{1}
											if k.mode == WorkloadMode || k.mode == ServiceMode {
												szs, crs = []int{0}, []int{0}
												if nn > 1 {
													ks = shards
												}
											}
											if k.mode == ServiceMode {
												hds = hedges
											}
											for _, sh := range ks {
												if sh < 1 {
													sh = 1
												}
												for _, hd := range hds {
													for _, sz := range szs {
														for _, sd := range seeds {
															for _, c := range crs {
																cfg := s.base
																cfg.Design, cfg.Topology, cfg.Routing, cfg.Seed = d, tp, rt, sd
																pts = append(pts, Point{Config: cfg, Mode: k.mode, Size: sz,
																	Hops: h, Core: c, Scenario: k.scenario, Nodes: nn,
																	Placement: pl,
																	Faults:    fr, Window: win, FabricRouting: fab,
																	Shards: sh, Arrival: k.arrival, Hedge: hd})
															}
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Run expands the sweep and executes it; shorthand for
// NewRunner(opts).Run(s.Points()).
func (s *Sweep) Run(opts Options) (Results, error) {
	return NewRunner(opts).Run(s.Points())
}

// Options configures a Runner.
type Options struct {
	// Parallel is the requested worker-pool size; values below 2 run
	// points serially. The effective pool is min(Parallel,
	// runtime.NumCPU(), number of points): simulation points are pure
	// CPU work, so workers beyond the machine's cores only add scheduler
	// overhead — on a single-core container an oversubscribed pool ran
	// ~20% slower than serial. Points are independent simulations, so
	// any degree of parallelism yields bit-identical results in the same
	// order.
	Parallel int
	// Uncapped skips the core-count cap on Parallel: exactly that many
	// workers run (still at most one per point) even beyond the
	// machine's cores. Simulation gains nothing from oversubscription —
	// the override exists for callers whose Progress callbacks block on
	// external coordination and need that many points genuinely
	// in flight at once.
	Uncapped bool
	// Context, when non-nil, cancels the run: in-flight simulations abort
	// at their next cancellation poll and not-yet-started points are
	// skipped. Run returns the context's error.
	Context context.Context
	// Progress, when non-nil, is invoked after each point completes with
	// the completed count, the total, and that point's result. The done
	// count is a consistent snapshot, but calls are NOT serialized: under
	// parallelism they may arrive concurrently and out of done order — a
	// slow callback must not be able to stall the other workers'
	// simulations behind a lock.
	Progress func(done, total int, r Result)
}

// Result is one executed point and its outcome. Exactly one of Sync, BW,
// WL and SVC is set on success (matching the point's mode); a point
// skipped because the run was cancelled before it started has all of them
// and Err nil.
type Result struct {
	Point Point
	Sync  *SyncResult
	BW    *BWResult
	WL    *WorkloadResult
	SVC   *ServiceResult
	Err   error
	Wall  time.Duration
}

// skipped reports whether the point never produced a result or error.
func (r Result) skipped() bool {
	return r.Sync == nil && r.BW == nil && r.WL == nil && r.SVC == nil && r.Err == nil
}

// Results is an ordered collection of point outcomes: index i holds point i
// of the executed list regardless of completion order.
type Results []Result

// Runner executes sweep points, optionally on a worker pool.
type Runner struct {
	opts Options
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner { return &Runner{opts: opts} }

// Run executes the points and returns their outcomes in point order. A
// point failure fails fast: remaining points are abandoned (in-flight ones
// abort at their next cancellation poll) and Run returns the first point
// error in point order. Cancellation through Options.Context returns the
// context's error — unless every point had already completed, in which
// case the full result set stands. The Results are returned alongside any
// error so callers can inspect partial outcomes.
func (r *Runner) Run(points []Point) (Results, error) {
	ctx := r.opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// runCtx additionally cancels on the first point failure so a long
	// sweep does not keep simulating doomed work (fail-fast, matching the
	// serial loops the sweep API replaced).
	runCtx, abort := context.WithCancel(ctx)
	defer abort()
	res := make(Results, len(points))
	for i := range res {
		res[i].Point = points[i]
	}
	cores := runtime.NumCPU()
	if r.opts.Uncapped {
		cores = math.MaxInt
	}
	workers := effectiveWorkers(r.opts.Parallel, len(points), cores)
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range points {
			select {
			case idx <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res[i] = runPoint(runCtx, points[i])
				if res[i].Err != nil {
					abort()
				}
				// Snapshot the count under the lock, invoke the callback
				// outside it: a blocking Progress must stall only its own
				// worker, never serialize the whole pool.
				mu.Lock()
				done++
				dn := done
				mu.Unlock()
				if r.opts.Progress != nil {
					r.opts.Progress(dn, len(points), res[i])
				}
			}
		}()
	}
	wg.Wait()
	for i := range res {
		if res[i].Err != nil {
			return res, fmt.Errorf("rackni: point %d (%s): %w", i, points[i].label(), res[i].Err)
		}
	}
	if err := ctx.Err(); err != nil {
		// Report the cancellation only if it actually cost us a point; a
		// deadline landing after the last point completed should not
		// discard a whole result set.
		for i := range res {
			if res[i].skipped() {
				return res, err
			}
		}
	}
	return res, nil
}

// effectiveWorkers resolves the requested pool size against the machine:
// at least 1, at most the core count, at most one worker per point.
// CPU-bound work gains nothing from more workers than cores; on a
// single-core machine an oversubscribed pool is measurably SLOWER than
// serial (goroutine churn between simulation points — the ~20% regression
// BENCH_paperrepro.json carried since PR 2).
func effectiveWorkers(requested, points, cores int) int {
	w := requested
	if w < 1 {
		w = 1
	}
	if w > cores {
		w = cores
	}
	if w > points {
		w = points
	}
	if w < 1 {
		w = 1
	}
	return w
}

// check validates the point's fault/window knobs against the rest of its
// shape; it is the per-point core of CheckSweepPoints.
func (p Point) check() error {
	switch {
	case p.Faults < 0 || p.Faults >= 1:
		return fmt.Errorf("rackni: drop rate %g out of range [0, 1)", p.Faults)
	case p.Faults > 0 && p.nodeCount() <= 1:
		return fmt.Errorf("rackni: fault injection (drop rate %g) requires a multi-node point (-nodes > 1); the single-node rack emulation has no inter-node fabric to fault", p.Faults)
	case p.Window < 0:
		return fmt.Errorf("rackni: negative QP window %d", p.Window)
	case p.FabricRouting != RouteNone && p.nodeCount() <= 1:
		return fmt.Errorf("rackni: fabric routing %v requires a multi-node point (-nodes > 1); the single-node rack emulation has no inter-node links to congest", p.FabricRouting)
	case !p.Placement.IsZero() && p.nodeCount() <= 1:
		return fmt.Errorf("rackni: the %s placement requires a multi-node point (-nodes > 1); the single-node rack emulation has no torus to place nodes on", p.Placement)
	case p.Hedge < 0:
		return fmt.Errorf("rackni: negative hedge delay %d", p.Hedge)
	case p.Shards < 0:
		return fmt.Errorf("rackni: negative shard count %d", p.Shards)
	case p.Shards > 1 && p.nodeCount() <= 1:
		return fmt.Errorf("rackni: %d engine shards require a multi-node point (-nodes > 1); the single-node rack emulation runs one engine", p.Shards)
	case p.Shards > 1 && p.Mode != WorkloadMode && p.Mode != ServiceMode:
		return fmt.Errorf("rackni: %d engine shards require a workload or service point; the %v microbenchmark coordinates cluster-wide on one engine", p.Shards, p.Mode)
	}
	if p.Mode == ServiceMode {
		if _, err := load.ParseKind(p.Arrival.Kind); err != nil {
			return err
		}
		if p.Arrival.Rate <= 0 {
			return fmt.Errorf("rackni: service arrival rate %g must be positive (requests per 1000 cycles per client)", p.Arrival.Rate)
		}
	}
	return nil
}

// materialize resolves the point's fault/window knobs into the Config the
// run will use: Window > 0 caps QPWindow, and a faulty point with no
// configured request timeout arms DefaultReqTimeout so drops recover by
// retransmission.
func (p Point) materialize() (Config, error) {
	if err := p.check(); err != nil {
		return p.Config, err
	}
	cfg := p.Config
	if p.Window > 0 {
		cfg.QPWindow = p.Window
	}
	if p.Faults > 0 && cfg.ReqTimeout == 0 {
		cfg.ReqTimeout = DefaultReqTimeout
	}
	return cfg, nil
}

// faultSpec builds the point's deterministic fault plan (nil when the
// point is fault-free). The plan's RNG is seeded from the point's
// simulation seed, so the fault schedule — like everything else about a
// point — is a pure function of the point.
func (p Point) faultSpec() *FaultSpec {
	if p.Faults <= 0 {
		return nil
	}
	return &FaultSpec{Seed: p.Config.Seed, DropProb: p.Faults}
}

// CheckSweepPoints validates a point list up front — fault/window knob
// ranges, torus capacity, node counts, core and size bounds, scenario
// names — returning the first problem with its point's index and label.
// Runners applying the points would surface the same errors, but only
// after every earlier point had simulated; front-loading the check lets
// CLIs reject a bad flag combination before burning minutes of work.
func CheckSweepPoints(pts []Point) error {
	for i, p := range pts {
		if err := p.checkShape(); err != nil {
			return fmt.Errorf("point %d (%s): %w", i, p.label(), err)
		}
	}
	return nil
}

// checkShape is the full up-front validation of one point: the fault and
// window knobs plus the structural checks NewNode/NewClusterSpec and the
// run entry points would otherwise only raise mid-sweep.
func (p Point) checkShape() error {
	if err := p.check(); err != nil {
		return err
	}
	cfg := p.Config
	if err := cfg.Validate(); err != nil {
		return err
	}
	if p.Hops < 0 {
		return fmt.Errorf("rackni: negative hop count %d", p.Hops)
	}
	if p.Nodes > fabric.MaxNodes {
		return fmt.Errorf("rackni: %d nodes exceeds the %d-node addressing limit", p.Nodes, fabric.MaxNodes)
	}
	pol := p.placement()
	if !pol.IsZero() || p.FabricRouting != RouteNone {
		// Both real torus placement and the congestion fabric (which routes
		// hop-by-hop over torus coordinates) need every node on the torus.
		if cube := cfg.TorusRadix * cfg.TorusRadix * cfg.TorusRadix; p.nodeCount() > cube {
			return fmt.Errorf("rackni: %d nodes exceed the %d-node torus (radix %d)",
				p.nodeCount(), cube, cfg.TorusRadix)
		}
	}
	if !pol.IsZero() {
		// Reject malformed policies (an unknown kind, say) by name before
		// the sweep burns cycles; capacity was already checked above.
		if _, err := pol.Coordinates(p.nodeCount(), cfg.TorusRadix); err != nil {
			return err
		}
	}
	switch p.Mode {
	case Latency:
		if p.Core < 0 || p.Core >= cfg.Tiles() {
			return fmt.Errorf("rackni: core %d out of range [0, %d)", p.Core, cfg.Tiles())
		}
		return checkSize(&cfg, p.Size)
	case Bandwidth:
		return checkSize(&cfg, p.Size)
	case WorkloadMode:
		_, err := ParseScenario(p.Scenario)
		return err
	case ServiceMode:
		return nil // arrival and hedge were validated in check above
	}
	return fmt.Errorf("rackni: unknown mode %v", p.Mode)
}

// runPoint executes one point: builds its node (or, for Nodes > 1, its
// cluster), attaches the context, and runs the point's microbenchmark.
func runPoint(ctx context.Context, p Point) Result {
	out := Result{Point: p}
	if err := ctx.Err(); err != nil {
		return out // cancelled before start: leave the point skipped
	}
	t0 := time.Now()
	// Service points always run the Cluster path (replica placement and
	// explicit node targeting need the real fabric), even at one node.
	if p.nodeCount() > 1 || p.Mode == ServiceMode {
		runClusterPoint(ctx, p, &out)
		if errors.Is(out.Err, context.Canceled) || errors.Is(out.Err, context.DeadlineExceeded) {
			out.Sync, out.BW, out.WL, out.SVC, out.Err = nil, nil, nil, nil, nil
		}
		out.Wall = time.Since(t0)
		return out
	}
	cfg, err := p.materialize()
	if err != nil {
		out.Err = err
		out.Wall = time.Since(t0)
		return out
	}
	n, err := NewNode(cfg, p.Hops)
	if err != nil {
		out.Err = err
		out.Wall = time.Since(t0)
		return out
	}
	n.SetContext(ctx)
	switch p.Mode {
	case Latency:
		r, err := n.RunSyncLatency(p.Size, p.Core)
		if err != nil {
			out.Err = err
		} else {
			out.Sync = &r
		}
	case Bandwidth:
		r, err := n.RunBandwidth(p.Size)
		if err != nil {
			out.Err = err
		} else {
			out.BW = &r
		}
	case WorkloadMode:
		sc, err := ParseScenario(p.Scenario)
		if err != nil {
			out.Err = err
			break
		}
		r, err := n.RunScenario(sc, 0)
		if err != nil {
			out.Err = err
		} else {
			out.WL = &r
		}
	default:
		out.Err = fmt.Errorf("rackni: unknown mode %v", p.Mode)
	}
	if errors.Is(out.Err, context.Canceled) || errors.Is(out.Err, context.DeadlineExceeded) {
		// A cancelled in-flight run has no result worth keeping; mark it
		// skipped so renderers drop it. Genuine point errors (bad config,
		// unstable run) are preserved even if cancellation raced them.
		out.Sync, out.BW, out.WL, out.SVC, out.Err = nil, nil, nil, nil, nil
	}
	out.Wall = time.Since(t0)
	return out
}

// runClusterPoint executes a multi-node point on a real Cluster,
// reporting the cross-node aggregate.
func runClusterPoint(ctx context.Context, p Point, out *Result) {
	cfg, err := p.materialize()
	if err != nil {
		out.Err = err
		return
	}
	spec := ClusterSpec{Nodes: p.nodeCount(), Hops: p.Hops, Faults: p.faultSpec(),
		FabricRouting: p.FabricRouting, Shards: p.Shards, Place: p.placement()}
	c, err := NewClusterSpec(cfg, spec)
	if err != nil {
		out.Err = err
		return
	}
	c.SetContext(ctx)
	switch p.Mode {
	case Latency:
		r, err := c.RunSyncLatency(p.Size, p.Core)
		if err != nil {
			out.Err = err
		} else {
			out.Sync = &r.Aggregate
		}
	case Bandwidth:
		r, err := c.RunBandwidth(p.Size)
		if err != nil {
			out.Err = err
		} else {
			out.BW = &r.Aggregate
		}
	case WorkloadMode:
		sc, err := ParseScenario(p.Scenario)
		if err != nil {
			out.Err = err
			return
		}
		r, err := c.RunScenario(sc, 0)
		if err != nil {
			out.Err = err
		} else {
			out.WL = &r.Aggregate
		}
	case ServiceMode:
		r, err := c.RunService(ServiceSpec{Arrival: p.Arrival, Hedge: p.Hedge}, 0)
		if err != nil {
			out.Err = err
		} else {
			out.SVC = &r
		}
	default:
		out.Err = fmt.Errorf("rackni: unknown mode %v", p.Mode)
	}
}

// hasMultiNode reports whether any point of the set runs a real cluster.
// Renderers add a nodes column only then, so single-node result sets stay
// byte-identical to their pre-cluster form.
func (rs Results) hasMultiNode() bool {
	for _, r := range rs {
		if r.Point.nodeCount() > 1 {
			return true
		}
	}
	return false
}

// hasPlacement reports whether any point of the set places its nodes
// under a named placement policy (the deprecated TorusPlacement flag
// resolves to the identity policy). Renderers add a placement column only
// then, so placement-free result sets stay byte-identical to their
// pre-placement form.
func (rs Results) hasPlacement() bool {
	for _, r := range rs {
		if !r.Point.placement().IsZero() {
			return true
		}
	}
	return false
}

// hasSharded reports whether any point of the set runs its cluster on
// more than one engine shard. Renderers add a shards column only then, so
// unsharded result sets stay byte-identical to their pre-sharding form.
func (rs Results) hasSharded() bool {
	for _, r := range rs {
		if r.Point.Shards > 1 {
			return true
		}
	}
	return false
}

// hasFaults reports whether any point of the set injects faults or caps
// the QP credit window. Renderers add the drop/window columns only then,
// so fault-free result sets stay byte-identical to their pre-fault form.
func (rs Results) hasFaults() bool {
	for _, r := range rs {
		if r.Point.Faults > 0 || r.Point.Window > 0 {
			return true
		}
	}
	return false
}

// hasFabricRouting reports whether any point of the set runs the
// congestion-faithful fabric. Renderers add a fabric column only then, so
// uncongested result sets stay byte-identical to their pre-congestion form.
func (rs Results) hasFabricRouting() bool {
	for _, r := range rs {
		if r.Point.FabricRouting != RouteNone {
			return true
		}
	}
	return false
}

// hasService reports whether any point of the set runs the open-loop
// service. Renderers add arrival/hedge columns only then, so service-free
// result sets stay byte-identical to their pre-service form.
func (rs Results) hasService() bool {
	for _, r := range rs {
		if r.Point.Mode == ServiceMode {
			return true
		}
	}
	return false
}

// Format renders the results as an aligned table, one row per point.
// Workload points report ops, mean and tail percentiles; skipped points
// render as "-"; failed points show their error. A nodes column appears
// when the set contains multi-node (Cluster) points, drop/window columns
// when any point injects faults or caps the QP window (workload rows then
// also report their retry and permanent-failure counts), and a fabric
// column when any point runs the congestion-faithful fabric.
func (rs Results) Format() string {
	var b strings.Builder
	multi := rs.hasMultiNode()
	placed := rs.hasPlacement()
	sharded := rs.hasSharded()
	faulty := rs.hasFaults()
	congested := rs.hasFabricRouting()
	service := rs.hasService()
	nodesHdr, nodesFmt := "", ""
	if multi {
		nodesHdr = fmt.Sprintf(" %5s", "nodes")
	}
	placeHdr, placeFmt := "", ""
	if placed {
		placeHdr = fmt.Sprintf(" %-10s", "placement")
	}
	shardHdr, shardFmt := "", ""
	if sharded {
		shardHdr = fmt.Sprintf(" %6s", "shards")
	}
	faultHdr, faultFmt := "", ""
	if faulty {
		faultHdr = fmt.Sprintf(" %6s %4s", "drop", "win")
	}
	fabricHdr, fabricFmt := "", ""
	if congested {
		fabricHdr = fmt.Sprintf(" %8s", "fabric")
	}
	svcHdr, svcFmt := "", ""
	if service {
		svcHdr = fmt.Sprintf(" %-13s %6s", "arrival", "hedge")
	}
	fmt.Fprintf(&b, "%-12s %-8s %-7s %-13s %8s %5s %5s %6s"+nodesHdr+placeHdr+shardHdr+faultHdr+fabricHdr+svcHdr+"  %s\n",
		"design", "topology", "routing", "mode", "size(B)", "hops", "core", "seed", "result")
	for _, r := range rs {
		p := r.Point
		if multi {
			nodesFmt = fmt.Sprintf(" %5d", p.nodeCount())
		}
		if placed {
			placeFmt = fmt.Sprintf(" %-10s", p.placement())
		}
		if sharded {
			k := p.Shards
			if k < 1 {
				k = 1
			}
			shardFmt = fmt.Sprintf(" %6d", k)
		}
		if faulty {
			faultFmt = fmt.Sprintf(" %6g %4d", p.Faults, p.Window)
		}
		if congested {
			fabricFmt = fmt.Sprintf(" %8s", p.FabricRouting)
		}
		if service {
			arr := "-"
			if p.Mode == ServiceMode {
				arr = p.Arrival.String()
			}
			svcFmt = fmt.Sprintf(" %-13s %6d", arr, p.Hedge)
		}
		fmt.Fprintf(&b, "%-12v %-8v %-7v %-13v %8d %5d %5d %6d%s%s%s%s%s%s  ",
			p.Config.Design, p.Config.Topology, p.Config.Routing, p.modeLabel(),
			p.Size, p.Hops, p.Core, p.Config.Seed, nodesFmt, placeFmt, shardFmt, faultFmt, fabricFmt, svcFmt)
		switch {
		case r.Err != nil:
			fmt.Fprintf(&b, "error: %v\n", r.Err)
		case r.Sync != nil:
			fmt.Fprintf(&b, "%.0f cycles (%.0f ns)\n", r.Sync.MeanCycles, r.Sync.MeanNS)
		case r.BW != nil:
			fmt.Fprintf(&b, "app %.1f GB/s (NOC %.1f, bisection %.1f, stable=%v)\n",
				r.BW.AppGBps, r.BW.NOCGBps, r.BW.BisectionGBps, r.BW.Stable)
		case r.SVC != nil:
			fmt.Fprintf(&b, "offered %.2f goodput %.2f req/kcyc, p99/p99.9 %d/%d cyc, hedged %d (wins %d), drained=%v\n",
				r.SVC.Offered, r.SVC.Goodput, r.SVC.P99, r.SVC.P999,
				r.SVC.Hedged, r.SVC.HedgeWins, r.SVC.Drained)
		case r.WL != nil:
			fmt.Fprintf(&b, "%d ops, mean %.0f cyc, p50/p95/p99 %d/%d/%d, drained=%v",
				r.WL.Completed, r.WL.MeanLatency, r.WL.P50, r.WL.P95, r.WL.P99,
				r.WL.AllExhausted)
			if faulty {
				fmt.Fprintf(&b, ", retries=%d, failed=%d", r.WL.Retries, r.WL.Failed)
			}
			b.WriteString("\n")
		default:
			fmt.Fprintf(&b, "-\n")
		}
	}
	return b.String()
}

// CSV renders the results as a comma-separated table with a header row.
// Metric columns not applicable to a point's mode are left empty. The CSV
// carries simulation results only (no wall-clock timing), so it is
// deterministic: identical runs — serial or parallel — diff clean. A
// nodes column follows seed when the set contains multi-node points,
// drop_rate/window columns follow it when any point injects faults or
// caps the QP window, and a fabric_routing column follows those when any
// point runs the congestion-faithful fabric.
func (rs Results) CSV() string {
	var b strings.Builder
	multi := rs.hasMultiNode()
	placed := rs.hasPlacement()
	sharded := rs.hasSharded()
	faulty := rs.hasFaults()
	congested := rs.hasFabricRouting()
	service := rs.hasService()
	nodesHdr := ""
	if multi {
		nodesHdr = "nodes,"
	}
	placeHdr := ""
	if placed {
		placeHdr = "placement,"
	}
	shardHdr := ""
	if sharded {
		shardHdr = "shards,"
	}
	faultHdr := ""
	if faulty {
		faultHdr = "drop_rate,window,"
	}
	fabricHdr := ""
	if congested {
		fabricHdr = "fabric_routing,"
	}
	svcHdr, svcMetricHdr := "", ""
	if service {
		svcHdr = "arrival,rate,hedge,"
		svcMetricHdr = "offered,goodput,svc_mean,svc_p50,svc_p99,svc_p999,hedged,hedge_wins,cancelled,svc_failed,svc_drained,"
	}
	b.WriteString("design,topology,routing,mode,size_bytes,hops,core,seed," + nodesHdr + placeHdr + shardHdr + faultHdr + fabricHdr + svcHdr +
		"latency_cycles,latency_ns,app_gbps,noc_gbps,bisection_gbps,stable," +
		"completed,wl_mean_cycles,wl_p50,wl_p95,wl_p99,wl_drained," + svcMetricHdr + "error\n")
	for _, r := range rs {
		p := r.Point
		nodesCol := ""
		if multi {
			nodesCol = fmt.Sprintf("%d,", p.nodeCount())
		}
		placeCol := ""
		if placed {
			placeCol = fmt.Sprintf("%s,", p.placement())
		}
		shardCol := ""
		if sharded {
			k := p.Shards
			if k < 1 {
				k = 1
			}
			shardCol = fmt.Sprintf("%d,", k)
		}
		faultCol := ""
		if faulty {
			faultCol = fmt.Sprintf("%g,%d,", p.Faults, p.Window)
		}
		fabricCol := ""
		if congested {
			fabricCol = fmt.Sprintf("%s,", p.FabricRouting)
		}
		svcCol := ""
		if service {
			if p.Mode == ServiceMode {
				svcCol = fmt.Sprintf("%s,%g,%d,", p.Arrival.Kind, p.Arrival.Rate, p.Hedge)
			} else {
				svcCol = ",,,"
			}
		}
		fmt.Fprintf(&b, "%v,%v,%v,%v,%d,%d,%d,%d,%s%s%s%s%s%s",
			p.Config.Design, p.Config.Topology, p.Config.Routing, p.modeLabel(),
			p.Size, p.Hops, p.Core, p.Config.Seed, nodesCol, placeCol, shardCol, faultCol, fabricCol, svcCol)
		switch {
		case r.Sync != nil:
			fmt.Fprintf(&b, "%.2f,%.2f,,,,,,,,,,,", r.Sync.MeanCycles, r.Sync.MeanNS)
		case r.BW != nil:
			fmt.Fprintf(&b, ",,%.3f,%.3f,%.3f,%v,,,,,,,", r.BW.AppGBps, r.BW.NOCGBps,
				r.BW.BisectionGBps, r.BW.Stable)
		case r.WL != nil:
			fmt.Fprintf(&b, ",,,,,,%d,%.2f,%d,%d,%d,%v,", r.WL.Completed,
				r.WL.MeanLatency, r.WL.P50, r.WL.P95, r.WL.P99, r.WL.AllExhausted)
		default:
			b.WriteString(",,,,,,,,,,,,")
		}
		if service {
			if r.SVC != nil {
				fmt.Fprintf(&b, "%.4f,%.4f,%.2f,%d,%d,%d,%d,%d,%d,%d,%v,",
					r.SVC.Offered, r.SVC.Goodput, r.SVC.MeanE2E, r.SVC.P50, r.SVC.P99,
					r.SVC.P999, r.SVC.Hedged, r.SVC.HedgeWins, r.SVC.Cancelled,
					r.SVC.Failed, r.SVC.Drained)
			} else {
				b.WriteString(",,,,,,,,,,,")
			}
		}
		if r.Err != nil {
			// RFC-4180 quoting: wrap in quotes, double embedded quotes.
			fmt.Fprintf(&b, `"%s"`, strings.ReplaceAll(r.Err.Error(), `"`, `""`))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// resultJSON is the machine-readable per-point record emitted by JSON.
type resultJSON struct {
	Design    string          `json:"design"`
	Topology  string          `json:"topology"`
	Routing   string          `json:"routing"`
	Mode      string          `json:"mode"`
	Scenario  string          `json:"scenario,omitempty"`
	SizeBytes int             `json:"size_bytes"`
	Hops      int             `json:"hops"`
	Core      int             `json:"core"`
	Seed      uint64          `json:"seed"`
	Nodes     int             `json:"nodes,omitempty"`          // > 1: a real Cluster ran this point
	Shards    int             `json:"shards,omitempty"`         // > 1: the cluster ran on this many parallel engines
	Placement string          `json:"placement,omitempty"`      // named policy ("identity", "clustered", ...): real 3D-torus coordinates
	DropRate  float64         `json:"drop_rate,omitempty"`      // > 0: fabric fault injection was active
	Window    int             `json:"window,omitempty"`         // > 0: QP credit window cap
	Fabric    string          `json:"fabric_routing,omitempty"` // "dor"/"adaptive": congestion fabric active
	Arrival   string          `json:"arrival,omitempty"`        // service points: arrival-process kind
	Rate      float64         `json:"rate,omitempty"`           // service points: arrivals per kcycle per client
	Hedge     int64           `json:"hedge,omitempty"`          // service points: hedge delay in cycles
	Latency   *SyncResult     `json:"latency,omitempty"`
	Bandwidth *BWResult       `json:"bandwidth,omitempty"`
	Workload  *WorkloadResult `json:"workload,omitempty"`
	Service   *ServiceResult  `json:"service,omitempty"`
	WallMS    float64         `json:"wall_ms"`
	Skipped   bool            `json:"skipped,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// JSON renders the results as an indented JSON array, one record per
// point. Unlike Format and CSV, each record includes wall_ms — per-point
// wall-clock execution time, the one field that varies between otherwise
// identical runs.
func (rs Results) JSON() ([]byte, error) {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		p := r.Point
		out[i] = resultJSON{
			Design:    p.Config.Design.String(),
			Topology:  p.Config.Topology.String(),
			Routing:   p.Config.Routing.String(),
			Mode:      p.Mode.String(),
			Scenario:  p.Scenario,
			SizeBytes: p.Size,
			Hops:      p.Hops,
			Core:      p.Core,
			Seed:      p.Config.Seed,
			Latency:   r.Sync,
			Bandwidth: r.BW,
			Workload:  r.WL,
			WallMS:    float64(r.Wall.Microseconds()) / 1000,
			Skipped:   r.skipped(),
		}
		if n := p.nodeCount(); n > 1 {
			out[i].Nodes = n
			if pol := p.placement(); !pol.IsZero() {
				out[i].Placement = pol.String()
			}
			if p.Shards > 1 {
				out[i].Shards = p.Shards
			}
		}
		out[i].DropRate = p.Faults
		out[i].Window = p.Window
		if p.FabricRouting != RouteNone {
			out[i].Fabric = p.FabricRouting.String()
		}
		if p.Mode == ServiceMode {
			out[i].Arrival = p.Arrival.Kind
			out[i].Rate = p.Arrival.Rate
			out[i].Hedge = p.Hedge
			out[i].Service = r.SVC
		}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
