package rackni

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sweepTestCfg is a reduced configuration so runner tests finish quickly.
func sweepTestCfg() Config {
	cfg := QuickConfig()
	cfg.WindowCycles = 30_000
	cfg.MaxCycles = 250_000
	cfg.MeasureReqs = 8
	cfg.WarmupRequests = 2
	return cfg
}

func TestSweepDefaults(t *testing.T) {
	cfg := DefaultConfig()
	pts := NewSweep(cfg).Points()
	if len(pts) != 1 {
		t.Fatalf("default sweep has %d points, want 1", len(pts))
	}
	p := pts[0]
	if p.Config.Design != cfg.Design || p.Config.Topology != cfg.Topology ||
		p.Config.Routing != cfg.Routing || p.Config.Seed != cfg.Seed {
		t.Fatalf("default point does not inherit base config: %+v", p)
	}
	if p.Mode != Latency || p.Size != cfg.BlockBytes || p.Hops != cfg.DefaultHops || p.Core != measureCore {
		t.Fatalf("default axes wrong: mode=%v size=%d hops=%d core=%d", p.Mode, p.Size, p.Hops, p.Core)
	}
}

func TestSweepCrossProductOrder(t *testing.T) {
	cfg := DefaultConfig()
	pts := NewSweep(cfg).
		Designs(NIEdge, NISplit).
		Hops(1, 3).
		Sizes(64, 128).
		Points()
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	// Nesting order: Designs outermost, then Hops, then Sizes.
	want := []struct {
		d    Design
		hops int
		size int
	}{
		{NIEdge, 1, 64}, {NIEdge, 1, 128}, {NIEdge, 3, 64}, {NIEdge, 3, 128},
		{NISplit, 1, 64}, {NISplit, 1, 128}, {NISplit, 3, 64}, {NISplit, 3, 128},
	}
	for i, w := range want {
		p := pts[i]
		if p.Config.Design != w.d || p.Hops != w.hops || p.Size != w.size {
			t.Fatalf("point %d = %v/%dB@%dhops, want %v/%dB@%dhops",
				i, p.Config.Design, p.Size, p.Hops, w.d, w.size, w.hops)
		}
	}
	// Seeds become part of each point's config.
	pts = NewSweep(cfg).Seeds(7, 9).Points()
	if pts[0].Config.Seed != 7 || pts[1].Config.Seed != 9 {
		t.Fatalf("seed axis not applied: %d, %d", pts[0].Config.Seed, pts[1].Config.Seed)
	}
	// Hop count 0 ("use the default") resolves at expansion time so point
	// metadata reports the hop count actually simulated.
	pts = NewSweep(cfg).Hops(0, 3).Points()
	if pts[0].Hops != cfg.DefaultHops || pts[1].Hops != 3 {
		t.Fatalf("hops axis: got %d,%d, want %d,3", pts[0].Hops, pts[1].Hops, cfg.DefaultHops)
	}
}

func TestRunnerParallelMatchesSerial(t *testing.T) {
	sweep := NewSweep(sweepTestCfg()).
		Designs(NIEdge, NISplit).
		Sizes(64, 256).
		Hops(1)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(par) != 4 {
		t.Fatalf("point counts: serial %d, parallel %d, want 4", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Point, par[i].Point) {
			t.Fatalf("point %d metadata differs under parallelism", i)
		}
		if !reflect.DeepEqual(serial[i].Sync, par[i].Sync) {
			t.Fatalf("point %d results differ: serial %+v parallel %+v", i, serial[i].Sync, par[i].Sync)
		}
	}
	if serial.Format() != par.Format() {
		t.Fatalf("Format differs:\nserial:\n%s\nparallel:\n%s", serial.Format(), par.Format())
	}
	if serial.CSV() != par.CSV() {
		t.Fatalf("CSV differs:\nserial:\n%s\nparallel:\n%s", serial.CSV(), par.CSV())
	}
}

// TestRunnerWorkerClamp: the worker pool never oversubscribes the
// machine — requested counts cap at the core count (the PR 2-era default
// of trusting -parallel verbatim ran ~20% slower than serial on
// single-core containers) and at one worker per point, while in-range
// explicit requests are honored verbatim.
func TestRunnerWorkerClamp(t *testing.T) {
	cases := []struct {
		requested, points, cores, want int
	}{
		{0, 10, 8, 1},             // below 1: serial
		{-3, 10, 8, 1},            // negative: serial
		{1, 10, 8, 1},             // explicit serial honored
		{4, 10, 8, 4},             // in range: honored verbatim
		{8, 10, 8, 8},             // exactly the core count: honored
		{64, 10, 8, 8},            // oversubscribed: capped at cores
		{64, 10, 1, 1},            // single-core container: serial
		{4, 2, 8, 2},              // more workers than points: one per point
		{4, 0, 8, 1},              // empty sweep: degenerate pool of 1
		{1 << 30, 3, 2, 2},        // absurd request: min(cores, points)
		{64, 10, math.MaxInt, 10}, // Uncapped lifts the core cap, not the point cap
		{4, 100, math.MaxInt, 4},  // Uncapped still honors the request verbatim
	}
	for _, c := range cases {
		if got := effectiveWorkers(c.requested, c.points, c.cores); got != c.want {
			t.Errorf("effectiveWorkers(%d, %d, %d) = %d, want %d",
				c.requested, c.points, c.cores, got, c.want)
		}
	}
}

func TestRunnerFailFast(t *testing.T) {
	// 96 is invalid (not a multiple of the block size); the failure must
	// abandon the rest of the sweep instead of simulating it.
	res, err := NewSweep(sweepTestCfg()).Sizes(96, 64, 128).Run(Options{})
	if err == nil {
		t.Fatal("bad point accepted")
	}
	if res[0].Err == nil {
		t.Fatal("failing point's Err not recorded")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Sync != nil || res[i].BW != nil || res[i].Err != nil {
			t.Fatalf("point %d ran after the sweep failed: %+v", i, res[i])
		}
	}
}

func TestRunnerCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewSweep(sweepTestCfg()).Designs(NIEdge, NISplit).Run(Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2 (skipped)", len(res))
	}
	for i, r := range res {
		if r.Sync != nil || r.BW != nil || r.Err != nil {
			t.Fatalf("point %d not skipped cleanly: %+v", i, r)
		}
	}
}

func TestRunnerCancelsInFlightRun(t *testing.T) {
	// A bandwidth run that would simulate two billion cycles (hours of wall
	// clock) must abort within the cancellation-poll latency.
	cfg := sweepTestCfg()
	cfg.MaxCycles = 2_000_000_000
	cfg.StableDelta = -1 // stability never triggers
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	res, err := NewSweep(cfg).Modes(Bandwidth).Sizes(1024).Run(Options{Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if wall := time.Since(t0); wall > 30*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", wall)
	}
	if res[0].Sync != nil || res[0].BW != nil || res[0].Err != nil {
		t.Fatalf("cancelled in-flight point must be marked skipped, got %+v", res[0])
	}
}

func TestNodeContextReattach(t *testing.T) {
	// After a run aborts on a cancelled context, a fresh context attached
	// to the same node must arm a new watchdog (regression: the disarmed
	// watchdog used to stay marked armed forever).
	cfg := sweepTestCfg()
	cfg.MaxCycles = 2_000_000_000
	cfg.StableDelta = -1
	n, err := NewNode(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	cancel1()
	n.SetContext(ctx1)
	if _, err := n.RunBandwidth(1024); !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: err = %v, want context.Canceled", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	n.SetContext(ctx2)
	t0 := time.Now()
	if _, err := n.RunBandwidth(1024); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second run: err = %v, want context.DeadlineExceeded", err)
	}
	if wall := time.Since(t0); wall > 30*time.Second {
		t.Fatalf("reattached context not honored promptly (took %v)", wall)
	}
}

func TestNodeContextDetach(t *testing.T) {
	// A watchdog armed by a run that completes uncancelled leaves a pending
	// tick in the engine; detaching the context must not panic the next
	// run (regression: the stale tick dereferenced a nil context).
	cfg := sweepTestCfg()
	n, err := NewNode(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n.SetContext(ctx)
	if _, err := n.RunSyncLatency(64, 27); err != nil {
		t.Fatal(err)
	}
	n.SetContext(nil)
	if _, err := n.RunSyncLatency(64, 27); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerPointError(t *testing.T) {
	// 96 is not a multiple of the 64-byte block size, so the point fails.
	res, err := NewSweep(sweepTestCfg()).Sizes(96).Run(Options{})
	if err == nil {
		t.Fatal("bad point accepted")
	}
	if !strings.Contains(err.Error(), "point 0") {
		t.Fatalf("error does not identify the failing point: %v", err)
	}
	if res[0].Err == nil {
		t.Fatal("failing point's Err not recorded")
	}
}

func TestRunnerProgress(t *testing.T) {
	// Callbacks are no longer serialized (a slow one must not stall the
	// pool), so collect under a lock and check the done counts as a set.
	var mu sync.Mutex
	var dones []int
	res, err := NewSweep(sweepTestCfg()).Sizes(64, 128).Run(Options{
		Parallel: 2,
		Progress: func(done, total int, r Result) {
			if total != 2 {
				t.Errorf("total = %d, want 2", total)
			}
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(dones)
	if len(res) != 2 || !reflect.DeepEqual(dones, []int{1, 2}) {
		t.Fatalf("progress done counts %v, want {1,2}", dones)
	}
}

// TestRunnerProgressDoesNotStallWorkers: a Progress callback that blocks
// must stall only its own worker. The first arriving callbacks block
// until every point's callback has been entered — possible only if the
// runner invokes Progress outside its bookkeeping lock (the pre-fix
// worker held the lock across the callback, serializing the pool and
// deadlocking this test). The rendezvous needs all four points genuinely
// in flight at once regardless of the machine's core count, so this is
// also the Options.Uncapped override's test: without it the core clamp
// would run one worker on a single-core container and deadlock here.
func TestRunnerProgressDoesNotStallWorkers(t *testing.T) {
	const points = 4
	var arrived atomic.Int32
	release := make(chan struct{})
	fail := time.After(60 * time.Second)
	_, err := NewSweep(sweepTestCfg()).Seeds(1, 2, 3, 4).Run(Options{
		Parallel: points,
		Uncapped: true,
		Progress: func(done, total int, r Result) {
			if arrived.Add(1) == points {
				close(release)
				return
			}
			select {
			case <-release:
			case <-fail:
				t.Error("progress callbacks serialized: blocked callback stalled the other workers")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := arrived.Load(); got != points {
		t.Fatalf("%d progress calls, want %d", got, points)
	}
}

func TestResultsRenderers(t *testing.T) {
	res, err := NewSweep(sweepTestCfg()).Sizes(64).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Format(), "cycles") {
		t.Fatalf("Format missing latency result:\n%s", res.Format())
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "design,topology,routing,mode,size_bytes,") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", lines)
	}
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"design": "NI_split"`, `"mode": "latency"`, `"latency"`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("JSON missing %s:\n%s", want, blob)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Design
	}{{"edge", NIEdge}, {"pertile", NIPerTile}, {"per-tile", NIPerTile}, {"split", NISplit}, {" SPLIT ", NISplit}} {
		d, err := ParseDesign(tc.in)
		if err != nil || d != tc.want {
			t.Fatalf("ParseDesign(%q) = %v, %v", tc.in, d, err)
		}
	}
	if _, err := ParseDesign("numa"); err == nil {
		t.Fatal("ParseDesign accepted numa (analytic baseline, not simulable)")
	}
	for _, tc := range []struct {
		in   string
		want Topology
	}{{"mesh", Mesh}, {"nocout", NOCOut}, {"noc-out", NOCOut}} {
		tp, err := ParseTopology(tc.in)
		if err != nil || tp != tc.want {
			t.Fatalf("ParseTopology(%q) = %v, %v", tc.in, tp, err)
		}
	}
	for _, tc := range []struct {
		in   string
		want Routing
	}{{"xy", RoutingXY}, {"yx", RoutingYX}, {"o1turn", RoutingO1Turn}, {"cdr", RoutingCDR}, {"cdrni", RoutingCDRNI}, {"cdr+ni", RoutingCDRNI}} {
		r, err := ParseRouting(tc.in)
		if err != nil || r != tc.want {
			t.Fatalf("ParseRouting(%q) = %v, %v", tc.in, r, err)
		}
	}
	for _, bad := range []string{"ring", ""} {
		if _, err := ParseRouting(bad); err == nil {
			t.Fatalf("ParseRouting(%q) accepted", bad)
		}
	}
	m, err := ParseMode("bandwidth")
	if err != nil || m != Bandwidth {
		t.Fatalf("ParseMode(bandwidth) = %v, %v", m, err)
	}
	ds, err := ParseDesigns("edge,split")
	if err != nil || !reflect.DeepEqual(ds, []Design{NIEdge, NISplit}) {
		t.Fatalf("ParseDesigns = %v, %v", ds, err)
	}
	sizes, err := ParseSizes("64, 4096")
	if err != nil || !reflect.DeepEqual(sizes, []int{64, 4096}) {
		t.Fatalf("ParseSizes = %v, %v", sizes, err)
	}
	if _, err := ParseSizes("64,-1"); err == nil {
		t.Fatal("ParseSizes accepted a negative size")
	}
	hops, err := ParseHops("0,3")
	if err != nil || !reflect.DeepEqual(hops, []int{0, 3}) {
		t.Fatalf("ParseHops = %v, %v", hops, err)
	}
	if _, err := ParseHops("-2"); err == nil {
		t.Fatal("ParseHops accepted a negative hop count")
	}
}
