package rackni

import (
	"math"

	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/node"
	"rackni/internal/sim"
)

// Memory-map landmarks of the simulated node, exported so custom workloads
// can place their data the way the microbenchmarks do: the source region
// stands in for remote memory (the rack emulation services remote reads
// against it), and each core owns a local-buffer slice.
const (
	// SourceBase is the start of the remote/source data region (128 MB,
	// larger than the LLC so data accesses reach DRAM).
	SourceBase = node.SourceBase
	// SourceSpan is the size of the source region.
	SourceSpan = node.SourceSpan
	// LocalBase is the start of the local-buffer region.
	LocalBase = node.LocalBase
	// LocalStride is each core's local-buffer slice size.
	LocalStride = node.LocalStride
)

// LocalBufferOf returns the base of a core's local-buffer slice.
func LocalBufferOf(core int) uint64 {
	return LocalBase + uint64(core)*LocalStride
}

// FixedOp is one scripted operation of a FixedOps workload.
type FixedOp struct {
	Op     Op
	Remote uint64
	Local  uint64
	Size   int
}

// FixedOps replays a fixed operation list, then stops. Useful for tests and
// deterministic application kernels.
type FixedOps struct {
	Ops []FixedOp
}

// Next implements Workload.
func (f FixedOps) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if int(seq) >= len(f.Ops) {
		return 0, 0, 0, 0, false
	}
	op := f.Ops[seq]
	return op.Op, op.Remote, op.Local, op.Size, true
}

// UniformReads returns the paper's microbenchmark workload for one core:
// fixed-size remote reads at uniformly random addresses of the shared
// source region, landing in the core's local-buffer slice. max=0 issues
// forever.
func UniformReads(core, size int, max uint64, seed uint64) Workload {
	return cpu.NewUniformReads(size, SourceBase, SourceSpan,
		LocalBufferOf(core), LocalStride, max, seed)
}

// ZipfReads issues remote reads whose object popularity follows a
// Zipf-like distribution — the skewed access pattern typical of key-value
// workloads (§2.1). Objects are size-aligned slots of the source region.
type ZipfReads struct {
	Size    int
	Objects int
	Theta   float64 // skew: 0 = uniform, ~0.99 = typical KV skew
	Max     uint64
	core    int
	rnd     *sim.Rand
	zeta    float64
}

// NewZipfReads builds the skewed workload for one core.
func NewZipfReads(core, size, objects int, theta float64, max uint64, seed uint64) *ZipfReads {
	z := &ZipfReads{Size: size, Objects: objects, Theta: theta, Max: max,
		core: core, rnd: sim.NewRand(seed)}
	for i := 1; i <= objects; i++ {
		z.zeta += 1 / math.Pow(float64(i), theta)
	}
	return z
}

// Next implements Workload.
func (z *ZipfReads) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if z.Max > 0 && seq >= z.Max {
		return 0, 0, 0, 0, false
	}
	// Inverse-CDF sampling over the truncated Zipf.
	u := z.rnd.Float64() * z.zeta
	var cum float64
	obj := z.Objects - 1
	for i := 1; i <= z.Objects; i++ {
		cum += 1 / math.Pow(float64(i), z.Theta)
		if cum >= u {
			obj = i - 1
			break
		}
	}
	remote := SourceBase + uint64(obj)*uint64(z.Size)
	local := LocalBufferOf(z.core) + (z.rnd.Uint64()%(LocalStride/uint64(z.Size)))*uint64(z.Size)
	return rmc.OpRead, remote, local, z.Size, true
}
