package rackni

import (
	"fmt"
	"math"
	"sort"
	"sync"

	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/node"
	"rackni/internal/sim"
)

// Memory-map landmarks of the simulated node, exported so custom workloads
// can place their data the way the microbenchmarks do: the source region
// stands in for remote memory (the rack emulation services remote reads
// against it), and each core owns a local-buffer slice.
const (
	// SourceBase is the start of the remote/source data region (128 MB,
	// larger than the LLC so data accesses reach DRAM).
	SourceBase = node.SourceBase
	// SourceSpan is the size of the source region.
	SourceSpan = node.SourceSpan
	// LocalBase is the start of the local-buffer region.
	LocalBase = node.LocalBase
	// LocalStride is each core's local-buffer slice size.
	LocalStride = node.LocalStride
)

// LocalBufferOf returns the base of a core's local-buffer slice.
func LocalBufferOf(core int) uint64 {
	return LocalBase + uint64(core)*LocalStride
}

// FixedOp is one scripted operation of a FixedOps workload.
type FixedOp struct {
	Op     Op
	Remote uint64
	Local  uint64
	Size   int
}

// FixedOps replays a fixed operation list, then stops. Useful for tests and
// deterministic application kernels.
type FixedOps struct {
	Ops []FixedOp
}

// Next implements Workload.
func (f FixedOps) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if int(seq) >= len(f.Ops) {
		return 0, 0, 0, 0, false
	}
	op := f.Ops[seq]
	return op.Op, op.Remote, op.Local, op.Size, true
}

// UniformReads returns the paper's microbenchmark workload for one core:
// fixed-size remote reads at uniformly random addresses of the shared
// source region, landing in the core's local-buffer slice. max=0 issues
// forever.
func UniformReads(core, size int, max uint64, seed uint64) Workload {
	return cpu.NewUniformReads(size, SourceBase, SourceSpan,
		LocalBufferOf(core), LocalStride, max, seed)
}

// zipfTable is a precomputed cumulative table for inverse-CDF sampling of
// a truncated Zipf distribution. Building it is O(objects) once; each
// sample is a binary search, O(log objects) — versus the O(objects)
// math.Pow scan per request the naive formulation costs.
type zipfTable struct {
	cum   []float64
	theta float64
}

// newZipfTable builds the cumulative table for the given skew. The partial
// sums accumulate in the same index order as the naive per-request scan,
// so sampling is bit-identical to it.
func newZipfTable(objects int, theta float64) *zipfTable {
	cum := make([]float64, objects)
	var z float64
	for i := 1; i <= objects; i++ {
		z += 1 / math.Pow(float64(i), theta)
		cum[i-1] = z
	}
	return &zipfTable{cum: cum, theta: theta}
}

// zipfKey identifies one precomputed popularity table.
type zipfKey struct {
	objects int
	theta   float64
}

// zipfCache interns zipfTables process-wide. A 512-node rack would
// otherwise build hundreds of identical 100k-entry cumulative tables at
// cluster construction; tables are read-only after newZipfTable returns,
// so sharing one per (objects, theta) is safe and sampling from it is
// bit-identical to a privately built table.
var zipfCache sync.Map // zipfKey -> *zipfTable

// sharedZipfTable returns the interned table for (objects, theta),
// building it at most once per distinct shape (a racing duplicate build is
// discarded, never published).
func sharedZipfTable(objects int, theta float64) *zipfTable {
	k := zipfKey{objects, theta}
	if t, ok := zipfCache.Load(k); ok {
		return t.(*zipfTable)
	}
	t, _ := zipfCache.LoadOrStore(k, newZipfTable(objects, theta))
	return t.(*zipfTable)
}

// sample draws one object index in [0, objects).
func (t *zipfTable) sample(rnd *sim.Rand) int {
	u := rnd.Float64() * t.cum[len(t.cum)-1]
	// First index whose cumulative mass reaches u — exactly the object the
	// linear scan would have stopped at.
	i := sort.SearchFloat64s(t.cum, u)
	if i >= len(t.cum) {
		i = len(t.cum) - 1
	}
	return i
}

// ZipfReads issues remote reads whose object popularity follows a
// Zipf-like distribution — the skewed access pattern typical of key-value
// workloads (§2.1). Objects are size-aligned slots of the source region.
type ZipfReads struct {
	Size    int
	Objects int
	Theta   float64 // skew: 0 = uniform, ~0.99 = typical KV skew
	Max     uint64
	rnd     *sim.Rand
	table   *zipfTable
}

// NewZipfReads builds the skewed workload; local placement follows the
// coreID each Next call receives, so one value can serve any core (seed it
// per core for decorrelated streams). Invalid geometry (non-positive size
// or object count, a size exceeding the per-core local buffer, a keyspace
// exceeding the source region, negative skew) is rejected here rather
// than faulting in the issue path.
func NewZipfReads(size, objects int, theta float64, max uint64, seed uint64) (*ZipfReads, error) {
	switch {
	case size <= 0:
		return nil, fmt.Errorf("rackni: ZipfReads size %d must be positive", size)
	case uint64(size) > LocalStride:
		return nil, fmt.Errorf("rackni: ZipfReads size %d exceeds the per-core local buffer (%d bytes)", size, LocalStride)
	case objects <= 0:
		return nil, fmt.Errorf("rackni: ZipfReads needs a positive object count, got %d", objects)
	case uint64(objects)*uint64(size) > SourceSpan:
		return nil, fmt.Errorf("rackni: ZipfReads keyspace %d x %dB exceeds the source region (%d bytes)", objects, size, uint64(SourceSpan))
	case theta < 0:
		return nil, fmt.Errorf("rackni: ZipfReads skew %g must be non-negative", theta)
	}
	return &ZipfReads{Size: size, Objects: objects, Theta: theta, Max: max,
		rnd: sim.NewRand(seed), table: sharedZipfTable(objects, theta)}, nil
}

// Next implements Workload.
func (z *ZipfReads) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if z.Max > 0 && seq >= z.Max {
		return 0, 0, 0, 0, false
	}
	obj := z.table.sample(z.rnd)
	remote := SourceBase + uint64(obj)*uint64(z.Size)
	local := LocalBufferOf(coreID) + (z.rnd.Uint64()%(LocalStride/uint64(z.Size)))*uint64(z.Size)
	return rmc.OpRead, remote, local, z.Size, true
}
