// The incast/hot-spot study: the congestion experiment the lump-sum fabric
// cannot express. M aggressor nodes hammer one server node with windowed
// remote reads while a victim flow crosses the congested region; with the
// link-level fabric enabled, goodput collapse at the hot node and victim
// tail inflation emerge from per-link occupancy instead of being scripted.
// Like faultexp.go, this is a reusable entry point with a Format renderer,
// consumed by cmd/rackbench (-exp incast) and the README table.
package rackni

import (
	"fmt"
	"strings"

	"rackni/internal/stats"
)

// Aggressor and victim flow parameters. The aggressors use the incast
// library scenario's shape (window-4 256B reads); the victim is a
// single-core window-1 64B read loop from the far corner of the rack to
// node 1, so its packets cross links the aggressor flows load without the
// victim itself contributing meaningful load.
const (
	incastAggressorWindow = 4
	incastAggressorOps    = 256
	incastAggressorSize   = 256
	incastVictimOps       = 128
	incastVictimSize      = 64
	incastObjects         = 1 << 15
)

// IncastPoint is one (routing, fan-in) setting of the incast study.
type IncastPoint struct {
	Routing    RoutePolicy // fabric routing policy (RouteNone = lump-sum baseline)
	FanIn      int         // aggressor node count M (nodes 1..M all read from node 0)
	ServedGBps float64     // hot-node goodput: payload bytes node 0 served per run cycle
	VictimP50  int64       // victim-flow request latency percentiles, in cycles
	VictimP99  int64
	Completed  int64  // ops completed across the whole cluster
	Retries    int64  // timeout retransmissions (congestion pushing past ReqTimeout)
	HotLink    string // hottest link (most queued+blocked cycles), "" when uncongested
	HotQueued  int64  // serializer-queued cycles on the hottest link
	HotBlocked int64  // credit-blocked cycles on the hottest link
	Drained    bool   // every client ran to completion within the cycle budget
}

// IncastResult is the incast study across routing policies and fan-ins.
type IncastResult struct {
	Nodes   int // cluster size (node 0 serves, node Nodes-1 hosts the victim)
	Clients int // client cores per aggressor node
	Points  []IncastPoint
}

// RunIncast measures hot-spot behavior on an n-node cluster: for each
// routing policy it builds one cluster (reused across fan-ins; the session
// lifecycle makes every run bit-identical to a fresh build) and, for each
// fan-in M, drives M aggressor nodes' clients at node 0's memory plus one
// victim flow from node n-1 to node 1. Fan-ins must fit [1, n-2] so the
// victim node never doubles as an aggressor. Nil fanIns and routings
// select the defaults: doubling fan-ins up to n-2, and dor vs adaptive.
func RunIncast(cfg Config, nodes int, fanIns []int, routings []RoutePolicy) (IncastResult, error) {
	if nodes < 4 {
		return IncastResult{}, fmt.Errorf("rackni: incast needs at least 4 nodes (server, victim, victim's target, one aggressor), got %d", nodes)
	}
	if len(fanIns) == 0 {
		for m := 1; m < nodes-2; m *= 2 {
			fanIns = append(fanIns, m)
		}
		fanIns = append(fanIns, nodes-2)
	}
	if len(routings) == 0 {
		routings = []RoutePolicy{RouteDOR, RouteAdaptive}
	}
	for _, m := range fanIns {
		if m < 1 || m > nodes-2 {
			return IncastResult{}, fmt.Errorf("rackni: incast fan-in %d out of range [1, %d] for %d nodes", m, nodes-2, nodes)
		}
	}
	out := IncastResult{Nodes: nodes, Clients: scenarioClients(&cfg)}
	for _, rp := range routings {
		cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, FabricRouting: rp})
		if err != nil {
			return out, err
		}
		for _, m := range fanIns {
			res, err := cl.RunApp(incastApp(&cfg, nodes, m), 0)
			if err != nil {
				return out, fmt.Errorf("%v fan-in %d: %w", rp, m, err)
			}
			agg := res.Aggregate
			pt := IncastPoint{
				Routing:    rp,
				FanIn:      m,
				ServedGBps: stats.GBps(float64(res.PerNode[0].AppBytes)/float64(agg.Cycles), cfg.ClockGHz),
				VictimP50:  res.PerNode[nodes-1].P50,
				VictimP99:  res.PerNode[nodes-1].P99,
				Completed:  agg.Completed,
				Retries:    agg.Retries,
				Drained:    agg.AllExhausted,
			}
			for _, l := range cl.Interconnect().LinkLedgers() {
				if hot := l.QueuedCycles + l.BlockedCycles; hot > pt.HotQueued+pt.HotBlocked {
					pt.HotLink, pt.HotQueued, pt.HotBlocked = linkLabel(l), l.QueuedCycles, l.BlockedCycles
				}
			}
			out.Points = append(out.Points, pt)
		}
	}
	return out, nil
}

// incastApp builds the per-core app factory for one fan-in: node 0 serves
// (no apps), nodes 1..fanIn run aggressor clients aimed at node 0, and
// node nodes-1's core 0 runs the victim flow aimed at node 1.
func incastApp(cfg *Config, nodes, fanIn int) func(nodeIdx, core int) App {
	clients := scenarioClients(cfg)
	return func(nodeIdx, core int) App {
		seed := scenarioSeed(clusterNodeSeed(cfg.Seed, nodeIdx), core)
		if nodeIdx == nodes-1 {
			if core != 0 {
				return nil
			}
			return TargetRemote(NewMixedUpdate(1, incastVictimOps, incastVictimSize,
				incastObjects, 0, seed), 1)
		}
		if nodeIdx == 0 || nodeIdx > fanIn || core >= clients {
			return nil
		}
		return TargetRemote(NewMixedUpdate(incastAggressorWindow, incastAggressorOps,
			incastAggressorSize, incastObjects, 0, seed), 0)
	}
}

// linkLabel names a directed torus link compactly: "5+x" is coordinate 5's
// outgoing link in the +x direction.
func linkLabel(l LinkLedger) string {
	sign := byte('+')
	if l.Dir < 0 {
		sign = '-'
	}
	return fmt.Sprintf("%d%c%c", l.Coord, sign, 'x'+byte(l.Dim))
}

// Format renders the incast study.
func (r IncastResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Incast hot-spot: fan-in x %d clients (window %d, %dB reads) -> node 0; victim node %d -> node 1 (%dB, window 1)\n",
		r.Clients, incastAggressorWindow, incastAggressorSize, r.Nodes-1, incastVictimSize)
	fmt.Fprintf(&b, "%8s %6s %14s %11s %11s %9s %8s %8s %10s %11s %8s\n",
		"fabric", "fan-in", "served (GB/s)", "victim p50", "victim p99",
		"completed", "retries", "hot link", "queued", "blocked", "drained")
	for _, p := range r.Points {
		hot := p.HotLink
		if hot == "" {
			hot = "-"
		}
		fmt.Fprintf(&b, "%8s %6d %14.2f %11d %11d %9d %8d %8s %10d %11d %8v\n",
			p.Routing, p.FanIn, p.ServedGBps, p.VictimP50, p.VictimP99,
			p.Completed, p.Retries, hot, p.HotQueued, p.HotBlocked, p.Drained)
	}
	return b.String()
}
