package rackni

import (
	"strings"
	"testing"
)

// TestPlacementStudyValidation: malformed study requests fail fast with
// the reason named.
func TestPlacementStudyValidation(t *testing.T) {
	cfg := serviceTestCfg()
	if _, err := RunPlacementStudy(cfg, 1, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "at least 2 nodes") {
		t.Fatalf("1-node study not rejected: %v", err)
	}
	if _, err := RunPlacementStudy(cfg, 8, []PlacementPolicy{{}}, nil); err == nil ||
		!strings.Contains(err.Error(), "no geometry") {
		t.Fatalf("uniform placement not rejected: %v", err)
	}
	if _, err := RunPlacementStudy(cfg, 8, nil, []RoutePolicy{RouteNone}); err == nil ||
		!strings.Contains(err.Error(), "links contend") {
		t.Fatalf("uncongested routing not rejected: %v", err)
	}
}

// TestPlacementStudySmoke: the smallest useful study (one pair-heavy
// 4-node group, one policy, one routing) runs end to end in short mode —
// it drains, measures real flow distance, records a hot link, renders.
func TestPlacementStudySmoke(t *testing.T) {
	res, err := RunPlacementStudy(serviceTestCfg(), 4, []PlacementPolicy{PlaceClustered}, []RoutePolicy{RouteDOR})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Groups != 1 {
		t.Fatalf("got %d points in %d groups, want 1 in 1", len(res.Points), res.Groups)
	}
	p := res.Points[0]
	if !p.Drained || p.Completed == 0 || p.GoodGBps <= 0 || p.AvgHops <= 0 {
		t.Fatalf("smoke point did not run to completion: %+v", p)
	}
	if p.HotLink == "" || p.Links == 0 {
		t.Fatalf("smoke point recorded no link activity: %+v", p)
	}
	out := res.Format()
	for _, want := range []string{"placement", "clustered", "dor", "avghops", p.HotLink} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

// TestPlacementStudyTrends is the headline acceptance property: clustered
// placement keeps group flows short and beats identity (whose consecutive
// nodes share single torus rows, concentrating every flow on few links);
// scattered placement stretches flows near the torus diameter across many
// links and is the placement that adaptive routing rescues — its path
// diversity cuts credit blocking by an order of magnitude versus DOR.
// Skipped in -short; the CI placement-smoke job runs it explicitly.
func TestPlacementStudyTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run placement study")
	}
	res, err := RunPlacementStudy(serviceTestCfg(), 16, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points=%d, want 6 (3 placements x 2 routings)", len(res.Points))
	}
	pts := map[string]PlacementPoint{}
	for _, p := range res.Points {
		if !p.Drained {
			t.Fatalf("%s/%v did not drain", p.Placement, p.Routing)
		}
		if p.Completed != res.Points[0].Completed {
			t.Fatalf("%s/%v completed %d, others %d — placement changed the workload",
				p.Placement, p.Routing, p.Completed, res.Points[0].Completed)
		}
		pts[p.Placement.String()+"/"+p.Routing.String()] = p
	}
	idn, clu, sca := pts["identity/adaptive"], pts["clustered/adaptive"], pts["scattered/adaptive"]
	scaDOR := pts["scattered/dor"]
	// Geometry: clustered keeps group flows inside 2x2x2 sub-cubes (≤ 2
	// hops), scattered stretches them toward the torus diameter.
	if clu.AvgHops > 2 {
		t.Errorf("clustered flows average %.2f hops; sub-cube locality lost", clu.AvgHops)
	}
	if sca.AvgHops < 2*clu.AvgHops {
		t.Errorf("scattered flows average %.2f hops vs clustered %.2f; no dispersion", sca.AvgHops, clu.AvgHops)
	}
	// Footprint: identity concentrates all flows on the fewest links,
	// scattered spreads them over the most.
	if !(idn.Links < clu.Links && clu.Links < sca.Links) {
		t.Errorf("link footprint not ordered: identity %d, clustered %d, scattered %d",
			idn.Links, clu.Links, sca.Links)
	}
	// The hot-spot cost: identity's shared rows block for far longer than
	// scattered's dispersed paths, and clustered beats identity on both
	// latency and goodput.
	if idn.Blocked < 4*sca.Blocked {
		t.Errorf("identity blocking %d not >> scattered %d", idn.Blocked, sca.Blocked)
	}
	if clu.MeanLat >= idn.MeanLat {
		t.Errorf("clustered mean %.0f did not beat identity %.0f", clu.MeanLat, idn.MeanLat)
	}
	if clu.GoodGBps <= idn.GoodGBps {
		t.Errorf("clustered goodput %.2f did not beat identity %.2f", clu.GoodGBps, idn.GoodGBps)
	}
	// Adaptive rescue: scattered's long paths have the diversity adaptive
	// routing exploits — blocking collapses and latency improves vs DOR.
	if sca.Blocked >= scaDOR.Blocked/4 {
		t.Errorf("adaptive did not relieve scattered blocking: %d vs %d under dor", sca.Blocked, scaDOR.Blocked)
	}
	if sca.MeanLat > scaDOR.MeanLat {
		t.Errorf("adaptive regressed scattered latency: %.0f vs %.0f", sca.MeanLat, scaDOR.MeanLat)
	}
	for _, p := range res.Points {
		if p.HotLink == "" || p.HotQueued+p.HotBlocked == 0 {
			t.Errorf("%s/%v recorded no hot link", p.Placement, p.Routing)
		}
	}
}

// TestPlacement64NodeConservation: the credit-conservation invariants hold
// at rack scale under a non-identity placement — 64 clustered nodes fill
// the whole-torus link ledger and every grant is returned. Skipped in
// -short; the CI placement-smoke job runs it explicitly.
func TestPlacement64NodeConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node congested run")
	}
	cfg := serviceTestCfg()
	const nodes = 64
	cl, err := NewClusterSpec(cfg, ClusterSpec{Nodes: nodes, Place: PlaceClustered, FabricRouting: RouteAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.RunApp(placementApp(&cfg, nodes), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggregate.AllExhausted {
		t.Fatalf("64-node clustered run did not drain within %d cycles", cfg.MaxCycles)
	}
	checkLinkConservation(t, cl, cfg, nodes, RouteAdaptive)
}
