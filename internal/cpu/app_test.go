package cpu

import (
	"testing"

	rmc "rackni/internal/core"
)

// scriptWL is a minimal v1 workload for adapter tests.
type scriptWL struct{ n int }

func (s scriptWL) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if int(seq) >= s.n {
		return 0, 0, 0, 0, false
	}
	return rmc.OpRead, 0x1000 + seq*64, 0x2000 + seq*64, 64, true
}

// TestLegacyAdapterStepSequence: the adapter replays the script as Issue
// actions in order, then Done — and keeps answering Done once exhausted.
func TestLegacyAdapterStepSequence(t *testing.T) {
	app := Legacy(scriptWL{n: 3})
	for i := 0; i < 3; i++ {
		act := app.Step(5, int64(i), 0)
		if act.kind != actIssue {
			t.Fatalf("step %d: kind %d, want issue", i, act.kind)
		}
		if act.req.Remote != 0x1000+uint64(i)*64 || act.req.Size != 64 || act.req.Op != rmc.OpRead {
			t.Fatalf("step %d: wrong request %+v", i, act.req)
		}
	}
	for i := 0; i < 2; i++ {
		if act := app.Step(5, 100, 0); act.kind != actDone {
			t.Fatalf("exhausted adapter returned kind %d, want done", act.kind)
		}
	}
}

// TestLegacyAdapterPassesCoreID: the adapter forwards the driver's coreID
// to Next (workloads may place buffers by it).
func TestLegacyAdapterPassesCoreID(t *testing.T) {
	seen := -1
	app := Legacy(workloadFunc(func(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
		seen = coreID
		return 0, 0, 0, 0, false
	}))
	app.Step(42, 0, 0)
	if seen != 42 {
		t.Fatalf("Next saw coreID %d, want 42", seen)
	}
}

type workloadFunc func(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool)

func (f workloadFunc) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	return f(coreID, seq)
}

// TestActionConstructors: the action builders carry their payloads.
func TestActionConstructors(t *testing.T) {
	r := Request{Op: rmc.OpWrite, Remote: 1, Local: 2, Size: 64, Tag: 9}
	if a := Issue(r); a.kind != actIssue || a.req != r {
		t.Fatalf("Issue: %+v", a)
	}
	if a := Wait(); a.kind != actWait {
		t.Fatalf("Wait: %+v", a)
	}
	if a := Think(70); a.kind != actThink || a.think != 70 {
		t.Fatalf("Think: %+v", a)
	}
	if a := Done(); a.kind != actDone {
		t.Fatalf("Done: %+v", a)
	}
}

// TestZeroActionIsInvalid: the zero Action must not decode as Issue — a
// buggy app returning Action{} gets the invalid-action error branch.
func TestZeroActionIsInvalid(t *testing.T) {
	var zero Action
	for _, a := range []Action{Issue(Request{}), Wait(), Think(1), Done()} {
		if a.kind == zero.kind {
			t.Fatalf("constructor produced the zero action kind %d", a.kind)
		}
	}
}
