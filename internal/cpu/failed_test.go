package cpu

import (
	"testing"

	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/sim"
)

// recordingApp captures OnComplete deliveries.
type recordingApp struct {
	got []Request
}

func (a *recordingApp) Step(coreID int, now int64, inflight int) Action { return Done() }
func (a *recordingApp) OnComplete(coreID int, req Request, issued, done int64) {
	a.got = append(a.got, req)
}

// TestAppDriverRetiresFailedRequests: a permanently failed request reaches
// the app flagged Failed, counts in the driver's failure tally, and stays
// out of every success-side statistic — completions, latency samples, the
// histogram — so fault runs don't poison latency percentiles with retry
// budgets.
func TestAppDriverRetiresFailedRequests(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default()
	st := rmc.NewStats()
	app := &recordingApp{}
	d := NewAppDriver(eng, &cfg, 3, nil, nil, st, app)

	bad := &rmc.Request{ID: 1, Op: rmc.OpRead, RemoteAddr: 0x1000, Size: 64, Failed: true}
	good := &rmc.Request{ID: 2, Op: rmc.OpRead, RemoteAddr: 0x2000, Size: 64}
	bad.T.IssueStart, good.T.IssueStart = 5, 5
	resumed := false
	d.retire([]*rmc.Request{bad, good}, func() { resumed = true })
	eng.RunAll()

	if !resumed {
		t.Fatal("retire never continued")
	}
	if d.Failed() != 1 {
		t.Fatalf("Failed()=%d, want 1", d.Failed())
	}
	if d.completed != 1 || st.Completed != 1 {
		t.Fatalf("completed=%d stats.Completed=%d, want 1/1 (failure must not count)", d.completed, st.Completed)
	}
	if n := st.ReqLat.Count(); n != 1 {
		t.Fatalf("latency samples=%d, want 1 (failed request must not contribute)", n)
	}
	if len(app.got) != 2 {
		t.Fatalf("app saw %d completions, want 2", len(app.got))
	}
	if !app.got[0].Failed || app.got[0].Remote != 0x1000 {
		t.Fatalf("failed request not flagged to the app: %+v", app.got[0])
	}
	if app.got[1].Failed {
		t.Fatalf("successful request flagged failed: %+v", app.got[1])
	}
}
