// Package cpu models the cores' interaction with the RMC: building WQ
// entries, polling the CQ, and the microbenchmarks of §5. Cores are state
// machines with the paper's measured instruction-execution overheads
// (~13 cycles to build a WQ entry, ~10 to consume a CQ entry); every QP
// load and store goes through the simulated coherence protocol, which is
// where the designs differ.
package cpu

import (
	"rackni/internal/coherence"
	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/sim"
)

// Mode selects the microbenchmark issue discipline (§5).
type Mode int

const (
	// Sync issues one remote read at a time, waiting for its completion —
	// the latency microbenchmark.
	Sync Mode = iota
	// Async keeps enqueueing while WQ space remains, occasionally polling
	// the CQ; with a full WQ it spins on the CQ — the bandwidth
	// microbenchmark.
	Async
)

// Workload generates the operations a core issues; implement it to run
// application-like scenarios (see the examples) instead of the built-in
// uniform microbenchmark.
type Workload interface {
	// Next returns the next operation for this core, or ok=false when the
	// core should stop issuing.
	Next(coreID int, seq uint64) (op rmc.Op, remoteAddr uint64, localAddr uint64, size int, ok bool)
}

// UniformReads is the paper's remote-read microbenchmark: fixed-size reads
// at uniformly random block-aligned addresses of a source region that
// exceeds the aggregate cache capacity.
type UniformReads struct {
	Size       int
	RemoteBase uint64
	RemoteSpan uint64
	LocalBase  uint64
	LocalSpan  uint64
	Max        uint64 // 0 = unbounded
	rnd        *sim.Rand
}

// NewUniformReads builds the microbenchmark workload for one core.
func NewUniformReads(size int, remoteBase, remoteSpan, localBase, localSpan uint64, max uint64, seed uint64) *UniformReads {
	return &UniformReads{
		Size: size, RemoteBase: remoteBase, RemoteSpan: remoteSpan,
		LocalBase: localBase, LocalSpan: localSpan, Max: max,
		rnd: sim.NewRand(seed),
	}
}

// Next implements Workload.
func (u *UniformReads) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if u.Max > 0 && seq >= u.Max {
		return 0, 0, 0, 0, false
	}
	sz := uint64(u.Size)
	slots := u.RemoteSpan / sz
	remote := u.RemoteBase + (u.rnd.Uint64()%slots)*sz
	lslots := u.LocalSpan / sz
	local := u.LocalBase + (u.rnd.Uint64()%lslots)*sz
	return rmc.OpRead, remote, local, u.Size, true
}

// Driver is one core running a workload against its queue pair.
type Driver struct {
	eng   *sim.Engine
	cfg   *config.Config
	id    int
	agent *coherence.Agent
	qp    *rmc.QueuePair
	stats *rmc.Stats
	wl    Workload
	mode  Mode

	// PollEvery controls how often the async loop checks the CQ between
	// enqueues ("occasionally polling", §5).
	PollEvery int

	seq       uint64
	issued    uint64
	completed uint64
	failed    uint64
	sincePoll int
	stopped   bool

	// Prebuilt callbacks for the steady-state issue/poll loops, so a core
	// spinning on its CQ schedules no new closures.
	stepFn        func()
	spinSyncFn    func() // re-arm spinCQ(true)
	spinAsyncFn   func() // re-arm spinCQ(false)
	spinSyncDone  func() // CQ read completion, sync mode
	spinAsyncDone func() // CQ read completion, async mode
	afterIssueFn  func() // async continuation after one enqueue
	pollDoneFn    func() // pollOnce completion (non-blocking check)
	drainFn       func()
	drainDoneFn   func()

	// retireBuf is the driver-owned copy of an in-flight retirement batch;
	// PopCQ's return value aliases the QP's reused buffer and must not be
	// held across the deferred CQ-read charge.
	retireBuf []*rmc.Request

	// Completed requests retained for latency tomography (sync runs).
	Retired []*rmc.Request

	// OnIdle fires when a sync driver has exhausted its workload.
	OnIdle func()
}

// NewDriver builds a driver for core id.
func NewDriver(eng *sim.Engine, cfg *config.Config, id int, agent *coherence.Agent,
	qp *rmc.QueuePair, st *rmc.Stats, wl Workload, mode Mode) *Driver {
	d := &Driver{
		eng: eng, cfg: cfg, id: id, agent: agent, qp: qp, stats: st,
		wl: wl, mode: mode, PollEvery: 4,
	}
	d.stepFn = d.step
	d.spinSyncFn = func() { d.spinCQ(true) }
	d.spinAsyncFn = func() { d.spinCQ(false) }
	d.spinSyncDone = func() { d.onSpinRead(true) }
	d.spinAsyncDone = func() { d.onSpinRead(false) }
	d.afterIssueFn = d.afterIssue
	d.pollDoneFn = d.onPollRead
	d.drainFn = d.drain
	d.drainDoneFn = d.onDrainRead
	return d
}

// Start launches the core's issue loop.
func (d *Driver) Start() {
	d.eng.Schedule(0, d.stepFn)
}

// Stop makes the driver stop issuing new requests (in-flight ones
// finish). A stopped driver's queued callbacks die silently — each checks
// d.stopped on entry — so a driver abandoned by a cut-short run cannot
// touch the queue pair or stats under a later run on the same node. The
// guards are inert during a live run: a driver only stops when it
// finishes or the run ends, after which it schedules nothing for itself.
func (d *Driver) Stop() { d.stopped = true }

// Completed returns the number of successfully retired requests.
func (d *Driver) Completed() uint64 { return d.completed }

// Failed returns the number of requests retired as permanently failed.
func (d *Driver) Failed() uint64 { return d.failed }

// Issued returns the number of issued requests.
func (d *Driver) Issued() uint64 { return d.issued }

func (d *Driver) step() {
	if d.stopped {
		return
	}
	switch d.mode {
	case Sync:
		d.issueOne(d.spinSyncFn)
	case Async:
		if d.qp.Full() {
			d.spinCQ(false)
			return
		}
		d.issueOne(d.afterIssueFn)
	}
}

// afterIssue continues the async loop after one enqueue: occasionally poll
// the CQ, otherwise issue again.
func (d *Driver) afterIssue() {
	if d.stopped {
		return
	}
	d.sincePoll++
	if d.sincePoll >= d.PollEvery {
		d.sincePoll = 0
		d.agent.Read(d.qp.CQTailAddr(), d.pollDoneFn)
		return
	}
	d.step()
}

// issueOne builds a WQ entry (WQWriteExec cycles of instructions plus the
// coherent store) and publishes it.
func (d *Driver) issueOne(then func()) {
	op, remote, local, size, ok := d.wl.Next(d.id, d.seq)
	if !ok {
		if d.mode == Async && d.qp.InFlight() > 0 {
			d.drainFn()
			return
		}
		d.stopped = true
		if d.OnIdle != nil {
			d.OnIdle()
		}
		return
	}
	d.seq++
	r := &rmc.Request{
		ID:         uint64(d.id)<<32 | d.seq,
		Core:       d.id,
		Op:         op,
		RemoteAddr: remote,
		LocalAddr:  local,
		Size:       size,
	}
	r.T.IssueStart = d.eng.Now()
	d.eng.Schedule(int64(d.cfg.WQWriteExec), func() {
		if d.stopped {
			return
		}
		d.agent.Write(d.qp.WQHeadAddr(), func() {
			if d.stopped {
				return
			}
			r.T.WQWritten = d.eng.Now()
			d.qp.PushWQ(r)
			d.issued++
			then()
		})
	})
}

// spinCQ polls the CQ until at least one completion is consumed; sync mode
// then loops back to issue, async mode resumes enqueueing.
func (d *Driver) spinCQ(syncNext bool) {
	if d.stopped {
		return
	}
	if syncNext {
		d.agent.Read(d.qp.CQTailAddr(), d.spinSyncDone)
	} else {
		d.agent.Read(d.qp.CQTailAddr(), d.spinAsyncDone)
	}
}

// onSpinRead handles a spinCQ read completion.
func (d *Driver) onSpinRead(syncNext bool) {
	if d.stopped {
		return
	}
	done := d.qp.PopCQ()
	if len(done) == 0 {
		if syncNext {
			d.eng.Schedule(int64(d.cfg.PollPeriod), d.spinSyncFn)
		} else {
			d.eng.Schedule(int64(d.cfg.PollPeriod), d.spinAsyncFn)
		}
		return
	}
	d.retire(done, d.stepFn)
}

// onPollRead handles a non-blocking poll's read completion.
func (d *Driver) onPollRead() {
	if d.stopped {
		return
	}
	done := d.qp.PopCQ()
	if len(done) == 0 {
		d.step()
		return
	}
	d.retire(done, d.stepFn)
}

// drain consumes remaining completions after the workload is exhausted,
// then reports idle.
func (d *Driver) drain() {
	if d.stopped {
		return
	}
	if d.qp.InFlight() == 0 {
		d.stopped = true
		if d.OnIdle != nil {
			d.OnIdle()
		}
		return
	}
	d.agent.Read(d.qp.CQTailAddr(), d.drainDoneFn)
}

// onDrainRead handles a drain read completion.
func (d *Driver) onDrainRead() {
	if d.stopped {
		return
	}
	done := d.qp.PopCQ()
	if len(done) == 0 {
		d.eng.Schedule(int64(d.cfg.PollPeriod), d.drainFn)
		return
	}
	d.retire(done, d.drainFn)
}

// retire consumes completions, charging CQReadExec cycles per entry.
func (d *Driver) retire(popped []*rmc.Request, then func()) {
	// Copy out of the QP's pop buffer: the batch is consumed cost cycles
	// from now, and the QP buffer must be free for whoever polls next.
	done := append(d.retireBuf[:0], popped...)
	d.retireBuf = done
	cost := int64(len(done)) * int64(d.cfg.CQReadExec)
	d.eng.Schedule(cost, func() {
		if d.stopped {
			return
		}
		now := d.eng.Now()
		for _, r := range done {
			r.T.Done = now
			if r.Failed {
				// Permanently failed: no latency sample, no tomography
				// record — the entry only frees its WQ slot.
				d.failed++
				continue
			}
			d.completed++
			d.stats.Completed++
			d.stats.ReqLat.Add(now - r.T.IssueStart)
			if len(d.Retired) < 4096 {
				d.Retired = append(d.Retired, r)
			}
			if d.stats.Done != nil {
				d.stats.Done(r)
			}
		}
		then()
	})
}
