// The v2 application API: closed-loop workloads as completion-driven state
// machines. The v1 Workload interface is a blind open-loop script — Next
// can never observe a completion, so dependent pointer chases,
// scatter-gather fan-outs, think-time clients and bounded-window streaming
// are inexpressible with it. Under v2 the driver delivers every retirement
// to the application (OnComplete) and asks it for its next action (Issue,
// Wait, Think, Done), so applications choose what to do with full knowledge
// of what has completed. v1 workloads keep running through Legacy, whose
// driver discipline is bit-identical to the old open-loop driver.
package cpu

import (
	"fmt"

	"rackni/internal/coherence"
	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// Request is one application-level one-sided operation in the v2 API. Tag
// is a caller-chosen identifier echoed back in OnComplete, for matching
// completions to application state (e.g. which partition of a
// scatter-gather fan-out answered).
type Request struct {
	Op     rmc.Op
	Remote uint64
	Local  uint64
	Size   int
	Tag    uint64

	// Failed is set in OnComplete deliveries when the request was
	// permanently abandoned — its retry budget ran out, or the fabric
	// dropped it with retries disabled. Failed requests carry no data and
	// are excluded from latency statistics; the app decides whether to
	// reissue, degrade, or give up.
	Failed bool
}

// actionKind discriminates the App's possible next moves.
type actionKind uint8

const (
	// The zero actionKind is deliberately invalid so a zero Action{} from
	// a buggy app hits the driver's error branch instead of issuing a
	// zero-valued request.
	actIssue actionKind = iota + 1
	actWait
	actThink
	actDone
)

// Action is an App's answer to Step: what the core should do next. Build
// actions with Issue, Wait, Think and Done.
type Action struct {
	kind  actionKind
	req   Request
	think int64
}

// Issue asks the driver to issue req. The request is a commitment: if the
// WQ is full the driver blocks on the CQ and issues it as soon as space
// frees up; the app is not asked again until the request is published.
func Issue(req Request) Action { return Action{kind: actIssue, req: req} }

// Wait blocks the core on its CQ until at least one in-flight request
// completes (delivered through OnComplete), then asks the app again.
// Waiting with nothing in flight is a deadlock; the driver stops the core
// and reports it as an error.
func Wait() Action { return Action{kind: actWait} }

// Think idles the core for the given number of cycles — per-request service
// time, inter-arrival gaps of a closed-loop client — then asks the app
// again. Completions arriving during think time are delivered when the core
// next polls. Non-positive durations count as one cycle.
func Think(cycles int64) Action { return Action{kind: actThink, think: cycles} }

// Done declares the workload exhausted. The driver drains in-flight
// requests (their OnComplete calls still arrive), then parks the core.
func Done() Action { return Action{kind: actDone} }

// MapIssue returns the action with f applied to its request if it is an
// Issue; other action kinds pass through untouched. It lets wrappers
// (e.g. cluster-wide sharding of an app's remote addresses) transform
// issued requests without access to the Action's internals.
func (a Action) MapIssue(f func(Request) Request) Action {
	if a.kind == actIssue {
		a.req = f(a.req)
	}
	return a
}

// App is the v2 workload contract: a closed-loop state machine driven by
// its core. The driver calls Step whenever the core is free to act — at
// start, after each issue is published, after completions are delivered,
// and after think time elapses — and delivers every retirement through
// OnComplete (in retirement order, before the next Step). Apps are
// per-core and single-threaded; determinism requires only that an App be
// deterministic given its construction parameters.
type App interface {
	// Step returns the core's next action. now is the current cycle;
	// inflight is the core's outstanding request count.
	Step(coreID int, now int64, inflight int) Action
	// OnComplete delivers one retired request with its issue and
	// completion cycles.
	OnComplete(coreID int, req Request, issuedCycle, doneCycle int64)
}

// OpenLooper marks an App that issues on an arrival clock instead of on
// completion — an open-loop client whose Think durations are "sleep until
// the next arrival or deadline". For such apps a long uninterrupted think
// would starve completion delivery (hedge deadlines and cancellations
// depend on seeing responses promptly), so the driver slices thinks: it
// sleeps at most OpenLoopPoll cycles at a time, polls the CQ, delivers
// any completions, and asks the app again. The contract is that the app
// recomputes its remaining think from now on every Step (wake-time minus
// now), which every arrival-clock app does naturally; fixed-duration
// thinks would stretch under slicing.
type OpenLooper interface {
	// OpenLoopPoll returns the maximum cycles the driver may sleep on one
	// Think before polling for completions (<= 0 disables slicing).
	OpenLoopPoll() int64
}

// legacyApp adapts a v1 open-loop Workload to the App contract: always
// issue the next scripted operation, never wait, stop when the script
// ends. On the driver's open-loop discipline this reproduces the old
// async driver's event sequence bit for bit (equivalence-tested in
// internal/node).
type legacyApp struct {
	wl   Workload
	seq  uint64
	done bool
}

// Legacy adapts a v1 Workload to the v2 App contract.
func Legacy(wl Workload) App { return &legacyApp{wl: wl} }

func (l *legacyApp) Step(coreID int, now int64, inflight int) Action {
	if l.done {
		return Done()
	}
	op, remote, local, size, ok := l.wl.Next(coreID, l.seq)
	if !ok {
		l.done = true
		return Done()
	}
	l.seq++
	return Issue(Request{Op: op, Remote: remote, Local: local, Size: size})
}

func (l *legacyApp) OnComplete(int, Request, int64, int64) {}

// AppDriver is one core running a v2 App against its queue pair. Its issue
// and poll machinery mirrors the open-loop Driver's async discipline —
// WQWriteExec cycles to build an entry, a non-blocking CQ check every
// PollEvery issues, CQReadExec cycles per consumed completion — so legacy
// workloads behave identically; the difference is that the App, not the
// driver, decides what happens after every publish and every retirement.
type AppDriver struct {
	eng   *sim.Engine
	cfg   *config.Config
	id    int
	agent *coherence.Agent
	qp    *rmc.QueuePair
	stats *rmc.Stats
	app   App

	// PollEvery controls how often the issue loop checks the CQ between
	// consecutive enqueues ("occasionally polling", §5).
	PollEvery int

	// ThinkPoll, when positive, slices Think sleeps that exceed it while
	// requests are in flight: sleep ThinkPoll cycles, poll the CQ, deliver
	// completions, re-Step. Set automatically from apps implementing
	// OpenLooper; zero (the default) keeps the classic uninterrupted
	// think, so closed-loop runs are untouched.
	ThinkPoll int64

	// CheckAddr, when non-nil, validates every issued request's remote
	// address before it enters the queue pair. Cluster members install the
	// fabric's addressing-contract check here so an app that manufactures
	// an address with stray target-selector bits fails its run loudly
	// (through Err) instead of being silently mis-routed to another node.
	CheckAddr func(remote uint64) error

	seq       uint64
	issued    uint64
	completed uint64
	failed    uint64
	sincePoll int
	stopped   bool
	err       error

	// pending is a committed Issue waiting for WQ space (the driver spins
	// on the CQ until a slot frees, then publishes it).
	pending *rmc.Request

	// Hist accumulates this core's request latencies (count, mean,
	// percentiles); it uses the shared latency shape so per-core
	// histograms merge into node totals.
	Hist *stats.Histogram

	// Prebuilt callbacks so the steady-state loops schedule no new
	// closures beyond the two per issue the coherent publish needs.
	stepFn      func()
	thinkPollFn func()
	resumeFn    func()
	spinFn      func()
	spinDoneFn  func()
	afterIssue  func()
	pollDoneFn  func()
	drainFn     func()
	drainDoneFn func()

	// retireBuf is the driver-owned copy of an in-flight retirement batch
	// (PopCQ's return aliases the QP's reused buffer).
	retireBuf []*rmc.Request

	// OnIdle fires once the app is done and all in-flight requests have
	// drained (or the app deadlocked; see Err).
	OnIdle func()
}

// NewAppDriver builds a v2 driver for core id.
func NewAppDriver(eng *sim.Engine, cfg *config.Config, id int, agent *coherence.Agent,
	qp *rmc.QueuePair, st *rmc.Stats, app App) *AppDriver {
	d := &AppDriver{
		eng: eng, cfg: cfg, id: id, agent: agent, qp: qp, stats: st,
		app: app, PollEvery: 4,
		Hist: stats.NewLatencyHistogram(),
	}
	if ol, ok := app.(OpenLooper); ok {
		d.ThinkPoll = ol.OpenLoopPoll()
	}
	d.stepFn = d.step
	d.thinkPollFn = d.thinkPoll
	d.resumeFn = d.resume
	d.spinFn = d.spin
	d.spinDoneFn = d.onSpinRead
	d.afterIssue = d.onAfterIssue
	d.pollDoneFn = d.onPollRead
	d.drainFn = d.drain
	d.drainDoneFn = d.onDrainRead
	return d
}

// Start launches the core's loop.
func (d *AppDriver) Start() { d.eng.Schedule(0, d.stepFn) }

// Stop silences the driver: every queued callback of its issue/poll/drain
// chains returns without touching the queue pair, the stats sink or the
// app, so a stopped driver from a cut-short run cannot corrupt a later
// run on the same node. In-flight requests are abandoned to the engine.
func (d *AppDriver) Stop() { d.stopped = true }

// ID returns the driver's core index.
func (d *AppDriver) ID() int { return d.id }

// Completed returns the number of successfully retired requests.
func (d *AppDriver) Completed() uint64 { return d.completed }

// Failed returns the number of requests retired as permanently failed.
func (d *AppDriver) Failed() uint64 { return d.failed }

// Issued returns the number of published requests.
func (d *AppDriver) Issued() uint64 { return d.issued }

// Err reports a contract violation by the app (waiting with nothing in
// flight), or nil.
func (d *AppDriver) Err() error { return d.err }

// step consults the app for the core's next action.
func (d *AppDriver) step() {
	if d.stopped {
		return
	}
	act := d.app.Step(d.id, d.eng.Now(), d.qp.InFlight())
	switch act.kind {
	case actIssue:
		if d.CheckAddr != nil {
			if err := d.CheckAddr(act.req.Remote); err != nil {
				d.err = fmt.Errorf("cpu: core %d issued an invalid remote address: %w", d.id, err)
				d.finish()
				return
			}
		}
		d.seq++
		d.pending = &rmc.Request{
			ID:         uint64(d.id)<<32 | d.seq,
			Core:       d.id,
			Op:         act.req.Op,
			RemoteAddr: act.req.Remote,
			LocalAddr:  act.req.Local,
			Size:       act.req.Size,
			Tag:        act.req.Tag,
		}
		if d.qp.Full() {
			d.spin() // publish the commitment once a slot frees
			return
		}
		d.issuePending(d.afterIssue)
	case actWait:
		if d.qp.InFlight() == 0 {
			// Fires both for the classic contract violation and when every
			// in-flight request was dropped and retired as failed (the app
			// kept waiting for data that will never come).
			if d.failed > 0 {
				d.err = fmt.Errorf("cpu: core %d app waits with no requests in flight (%d permanently failed)", d.id, d.failed)
			} else {
				d.err = fmt.Errorf("cpu: core %d app waits with no requests in flight", d.id)
			}
			d.finish()
			return
		}
		d.spin()
	case actThink:
		t := act.think
		if t < 1 {
			t = 1
		}
		// Open-loop slicing: with responses pending, cap the sleep so
		// completions are delivered on the ThinkPoll cadence instead of
		// after the whole think. With nothing in flight no completion can
		// arrive, so the full sleep is exact.
		if d.ThinkPoll > 0 && t > d.ThinkPoll && d.qp.InFlight() > 0 {
			d.eng.Schedule(d.ThinkPoll, d.thinkPollFn)
			return
		}
		d.eng.Schedule(t, d.stepFn)
	case actDone:
		if d.qp.InFlight() > 0 {
			d.drain()
			return
		}
		d.finish()
	default:
		d.err = fmt.Errorf("cpu: core %d app returned an invalid action", d.id)
		d.finish()
	}
}

// The d.stopped guards at the head of every callback below are inert
// during a live run (a driver stops only when it finishes or the run
// tears it down, after which it schedules nothing for itself) — they
// exist so callbacks still queued in the engine when a run is cut short
// by maxCycles or cancellation die silently instead of mutating the
// queue pair, stats or app under a later run on the same node.

// issuePending publishes the committed request: WQWriteExec cycles of
// instructions plus the coherent store.
func (d *AppDriver) issuePending(then func()) {
	r := d.pending
	d.pending = nil
	r.T.IssueStart = d.eng.Now()
	d.eng.Schedule(int64(d.cfg.WQWriteExec), func() {
		if d.stopped {
			return
		}
		d.agent.Write(d.qp.WQHeadAddr(), func() {
			if d.stopped {
				return
			}
			r.T.WQWritten = d.eng.Now()
			d.qp.PushWQ(r)
			d.issued++
			then()
		})
	})
}

// onAfterIssue continues after one publish: occasionally poll the CQ,
// otherwise ask the app again.
func (d *AppDriver) onAfterIssue() {
	if d.stopped {
		return
	}
	d.sincePoll++
	if d.sincePoll >= d.PollEvery {
		d.sincePoll = 0
		d.agent.Read(d.qp.CQTailAddr(), d.pollDoneFn)
		return
	}
	d.step()
}

// thinkPoll wakes mid-think and checks the CQ; onPollRead re-Steps the
// app (which recomputes its remaining think) whether or not anything
// completed.
func (d *AppDriver) thinkPoll() {
	if d.stopped {
		return
	}
	d.agent.Read(d.qp.CQTailAddr(), d.pollDoneFn)
}

// onPollRead handles a non-blocking poll's read completion.
func (d *AppDriver) onPollRead() {
	if d.stopped {
		return
	}
	done := d.qp.PopCQ()
	if len(done) == 0 {
		d.step()
		return
	}
	d.retire(done, d.resumeFn)
}

// spin polls the CQ until at least one completion is consumed.
func (d *AppDriver) spin() {
	if d.stopped {
		return
	}
	d.agent.Read(d.qp.CQTailAddr(), d.spinDoneFn)
}

// onSpinRead handles a spin read completion.
func (d *AppDriver) onSpinRead() {
	if d.stopped {
		return
	}
	done := d.qp.PopCQ()
	if len(done) == 0 {
		d.eng.Schedule(int64(d.cfg.PollPeriod), d.spinFn)
		return
	}
	d.retire(done, d.resumeFn)
}

// resume continues after a retirement: publish a committed request first,
// otherwise ask the app.
func (d *AppDriver) resume() {
	if d.stopped {
		return
	}
	if d.pending != nil {
		if d.qp.Full() {
			d.spin()
			return
		}
		d.issuePending(d.afterIssue)
		return
	}
	d.step()
}

// drain consumes remaining completions after the app is done, then parks.
func (d *AppDriver) drain() {
	if d.stopped {
		return
	}
	if d.qp.InFlight() == 0 {
		d.finish()
		return
	}
	d.agent.Read(d.qp.CQTailAddr(), d.drainDoneFn)
}

// onDrainRead handles a drain read completion.
func (d *AppDriver) onDrainRead() {
	if d.stopped {
		return
	}
	done := d.qp.PopCQ()
	if len(done) == 0 {
		d.eng.Schedule(int64(d.cfg.PollPeriod), d.drainFn)
		return
	}
	d.retire(done, d.drainFn)
}

// finish parks the core and reports idle.
func (d *AppDriver) finish() {
	d.stopped = true
	if d.OnIdle != nil {
		d.OnIdle()
	}
}

// retire consumes completions, charging CQReadExec cycles per entry, then
// delivers them to the app and continues with then.
func (d *AppDriver) retire(popped []*rmc.Request, then func()) {
	done := append(d.retireBuf[:0], popped...)
	d.retireBuf = done
	cost := int64(len(done)) * int64(d.cfg.CQReadExec)
	d.eng.Schedule(cost, func() {
		if d.stopped {
			return
		}
		now := d.eng.Now()
		for _, r := range done {
			r.T.Done = now
			if r.Failed {
				// A permanently failed request still reaches the app (so it
				// can reissue or degrade) but contributes no latency sample:
				// its "latency" is the retry budget, not a service time.
				d.failed++
				d.app.OnComplete(d.id, Request{
					Op: r.Op, Remote: r.RemoteAddr, Local: r.LocalAddr,
					Size: r.Size, Tag: r.Tag, Failed: true,
				}, r.T.IssueStart, now)
				continue
			}
			d.completed++
			d.stats.Completed++
			lat := now - r.T.IssueStart
			d.stats.ReqLat.Add(lat)
			d.Hist.Add(lat)
			if d.stats.Done != nil {
				d.stats.Done(r)
			}
			d.app.OnComplete(d.id, Request{
				Op: r.Op, Remote: r.RemoteAddr, Local: r.LocalAddr,
				Size: r.Size, Tag: r.Tag,
			}, r.T.IssueStart, now)
		}
		then()
	})
}
