package cpu

import (
	"testing"

	rmc "rackni/internal/core"
)

func TestUniformReadsBounds(t *testing.T) {
	u := NewUniformReads(256, 0x1000_0000, 0x100_0000, 0x2000_0000, 0x10_0000, 100, 7)
	for i := uint64(0); ; i++ {
		op, remote, local, size, ok := u.Next(0, i)
		if !ok {
			if i != 100 {
				t.Fatalf("stopped at %d, want 100", i)
			}
			break
		}
		if op != rmc.OpRead || size != 256 {
			t.Fatalf("bad op/size: %v %d", op, size)
		}
		if remote < 0x1000_0000 || remote+256 > 0x1000_0000+0x100_0000 {
			t.Fatalf("remote out of region: %#x", remote)
		}
		if remote%256 != 0 {
			t.Fatalf("remote not size-aligned: %#x", remote)
		}
		if local < 0x2000_0000 || local+256 > 0x2000_0000+0x10_0000 {
			t.Fatalf("local out of region: %#x", local)
		}
	}
}

func TestUniformReadsUnbounded(t *testing.T) {
	u := NewUniformReads(64, 0x1000_0000, 0x100_0000, 0x2000_0000, 0x10_0000, 0, 7)
	for i := uint64(0); i < 10_000; i++ {
		if _, _, _, _, ok := u.Next(0, i); !ok {
			t.Fatal("unbounded workload stopped")
		}
	}
}

func TestUniformReadsDeterminism(t *testing.T) {
	a := NewUniformReads(64, 0x1000_0000, 0x100_0000, 0x2000_0000, 0x10_0000, 0, 42)
	b := NewUniformReads(64, 0x1000_0000, 0x100_0000, 0x2000_0000, 0x10_0000, 0, 42)
	for i := uint64(0); i < 100; i++ {
		_, r1, l1, _, _ := a.Next(0, i)
		_, r2, l2, _, _ := b.Next(0, i)
		if r1 != r2 || l1 != l2 {
			t.Fatal("same seed diverged")
		}
	}
}
