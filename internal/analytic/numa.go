// Package analytic provides the paper's two analytic models: the idealized
// hardware-NUMA baseline ("NUMA projection") and the hop-count latency
// projection of Fig. 5. Both are derived from measured simulator
// components, exactly the way the paper derives them from its Table 3
// (§6.1.1: "The last column of the table is a projection of the
// performance of an ideal NUMA machine"; §6.1.3: "We project the latency
// of an ideal NUMA machine by subtracting the latencies associated with QP
// interactions in the NIsplit design").
package analytic

import "rackni/internal/config"

// Components is a design's zero-load single-block latency tomography in
// cycles (a distilled view of node.Breakdown).
type Components struct {
	WQWrite  float64
	WQRead   float64
	Dispatch float64
	Generate float64
	NetOut   float64
	Remote   float64
	NetBack  float64
	Complete float64
	CQWrite  float64
	CQRead   float64
}

// Total sums all components.
func (c Components) Total() float64 {
	return c.WQWrite + c.WQRead + c.Dispatch + c.Generate +
		c.NetOut + c.Remote + c.NetBack + c.Complete + c.CQWrite + c.CQRead
}

// QPOverhead returns the cycles attributable to the QP-based messaging
// model: everything except issuing a load, reaching the chip edge, network
// and remote memory access.
func (c Components) QPOverhead(cfg *config.Config) float64 {
	// The NUMA machine still pays: 1 cycle to issue the load, a request
	// traversal to the chip's edge, the network, the remote read, and the
	// reply traversal back to the core. The QP model's overhead is the
	// rest: software entry construction beyond one instruction, WQ/CQ
	// coherence transfers, and pipeline processing.
	return c.Total() - c.NUMATotal(cfg)
}

// NUMATotal projects the ideal NUMA machine's latency from this design's
// measured components (paper Table 1, right column): a 1-cycle load issue,
// the same chip-edge traversals, network hops and remote service.
func (c Components) NUMATotal(cfg *config.Config) float64 {
	return 1 + NUMAEdgeTraversal(cfg) + c.NetOut + c.Remote + c.NetBack + NUMAEdgeTraversal(cfg)
}

// NUMAEdgeTraversal is the average on-chip traversal between a core and
// the chip's edge interface for the NUMA baseline (Table 1 entry B2/B6:
// 23 cycles at the paper's parameters): the mean x-distance to the edge
// column, plus the mean y-distance to the (address-interleaved) interface
// row, times the per-hop latency, plus the ejection cycle.
func NUMAEdgeTraversal(cfg *config.Config) float64 {
	w, h := float64(cfg.MeshWidth), float64(cfg.MeshHeight)
	avgX := (w + 1) / 2                            // mean distance from a tile to the edge column
	avgY := (h*h - 1) / (3 * h)                    // mean distance between two uniform rows
	return (avgX+avgY)*float64(cfg.HopLatency) + 1 // + ejection port
}

// HopPoint is one point of the Fig. 5 projection.
type HopPoint struct {
	Hops         int
	NUMANS       float64
	SplitNS      float64
	EdgeNS       float64
	SplitOverPct float64 // NIsplit overhead over NUMA, percent
	EdgeOverPct  float64 // NIedge overhead over NUMA, percent
}

// ProjectHops reproduces Fig. 5: end-to-end latency of a single-block
// remote read versus intra-rack hop count, projected from measured
// breakdowns at a reference hop count, with cfg.NetHopCycles() per hop per
// direction added or removed.
func ProjectHops(cfg *config.Config, edge, split Components, measuredHops, maxHops int) []HopPoint {
	perHop := float64(cfg.NetHopCycles())
	nsPer := cfg.NsPerCycle()
	base := 2 * perHop * float64(measuredHops)
	var out []HopPoint
	for h := 0; h <= maxHops; h++ {
		net := 2 * perHop * float64(h)
		e := edge.Total() - base + net
		s := split.Total() - base + net
		n := split.NUMATotal(cfg) - base + net
		out = append(out, HopPoint{
			Hops:         h,
			NUMANS:       n * nsPer,
			SplitNS:      s * nsPer,
			EdgeNS:       e * nsPer,
			SplitOverPct: 100 * (s - n) / n,
			EdgeOverPct:  100 * (e - n) / n,
		})
	}
	return out
}

// NUMALatencyForSize projects the NUMA machine's latency for a transfer of
// the given size from the NIsplit measured latency for that size, by
// subtracting the QP interaction components (§6.1.3). For multi-block
// transfers the QP cost is paid once, so the same subtraction applies.
func NUMALatencyForSize(cfg *config.Config, split Components, splitTotalForSize float64) float64 {
	return splitTotalForSize - (split.Total() - split.NUMATotal(cfg))
}
