package analytic

import (
	"math"
	"testing"

	"rackni/internal/config"
)

// paperSplit approximates the paper's Table 3 NIsplit column.
func paperSplit() Components {
	return Components{
		WQWrite: 13 + 5, WQRead: 4, Dispatch: 23, Generate: 4,
		NetOut: 70, Remote: 208, NetBack: 70,
		Complete: 4 + 23, CQWrite: 8 + 5, CQRead: 10,
	}
}

func paperEdge() Components {
	return Components{
		WQWrite: 104, WQRead: 95, Dispatch: 0, Generate: 0,
		NetOut: 70, Remote: 208, NetBack: 70,
		Complete: 0, CQWrite: 79, CQRead: 84,
	}
}

func TestNUMAEdgeTraversalMatchesPaper(t *testing.T) {
	cfg := config.Default()
	got := NUMAEdgeTraversal(&cfg)
	// Paper Table 1: 23 cycles.
	if math.Abs(got-23) > 3 {
		t.Fatalf("edge traversal = %.1f cycles, paper uses 23", got)
	}
}

func TestNUMAProjectionMatchesPaperTable(t *testing.T) {
	cfg := config.Default()
	n := paperSplit().NUMATotal(&cfg)
	// Paper: 395 cycles.
	if math.Abs(n-395) > 15 {
		t.Fatalf("NUMA projection = %.0f cycles, paper reports 395", n)
	}
}

func TestPaperComponentsReproduceHeadlineOverheads(t *testing.T) {
	cfg := config.Default()
	e, s := paperEdge(), paperSplit()
	numa := s.NUMATotal(&cfg)
	edgeOver := 100 * (e.Total() - numa) / numa
	splitOver := 100 * (s.Total() - numa) / numa
	// Paper: 79.7% and 13.2% at one network hop.
	if edgeOver < 60 || edgeOver > 95 {
		t.Fatalf("edge overhead %.1f%%, paper 79.7%%", edgeOver)
	}
	if splitOver < 5 || splitOver > 20 {
		t.Fatalf("split overhead %.1f%%, paper 13.2%%", splitOver)
	}
}

func TestProjectHopsShape(t *testing.T) {
	cfg := config.Default()
	pts := ProjectHops(&cfg, paperEdge(), paperSplit(), 1, 12)
	if len(pts) != 13 {
		t.Fatalf("want 13 points, got %d", len(pts))
	}
	// Overheads must decrease monotonically with hop count (Fig. 5).
	for i := 1; i < len(pts); i++ {
		if pts[i].EdgeOverPct >= pts[i-1].EdgeOverPct && pts[i-1].Hops > 0 {
			t.Fatalf("edge overhead not decreasing at %d hops: %.1f -> %.1f",
				pts[i].Hops, pts[i-1].EdgeOverPct, pts[i].EdgeOverPct)
		}
	}
	// Paper quotes ~28.6% (edge) and ~4.7% (split) at 6 hops,
	// ~16.2% / 2.6% at 12.
	p6, p12 := pts[6], pts[12]
	if p6.EdgeOverPct < 20 || p6.EdgeOverPct > 38 {
		t.Fatalf("edge overhead at 6 hops = %.1f%%, paper 28.6%%", p6.EdgeOverPct)
	}
	if p6.SplitOverPct < 2 || p6.SplitOverPct > 9 {
		t.Fatalf("split overhead at 6 hops = %.1f%%, paper 4.7%%", p6.SplitOverPct)
	}
	if p12.EdgeOverPct < 10 || p12.EdgeOverPct > 22 {
		t.Fatalf("edge overhead at 12 hops = %.1f%%, paper 16.2%%", p12.EdgeOverPct)
	}
	if p12.SplitOverPct < 1 || p12.SplitOverPct > 6 {
		t.Fatalf("split overhead at 12 hops = %.1f%%, paper 2.6%%", p12.SplitOverPct)
	}
	// Latency at 0 hops should be near the on-chip-only cost.
	if pts[0].NUMANS <= 0 || pts[0].NUMANS >= pts[12].NUMANS {
		t.Fatal("latency must grow with hops")
	}
}

func TestNUMALatencyForSizeSubtractsConstantQPCost(t *testing.T) {
	cfg := config.Default()
	s := paperSplit()
	small := NUMALatencyForSize(&cfg, s, s.Total())
	if math.Abs(small-s.NUMATotal(&cfg)) > 0.001 {
		t.Fatal("projection at the measured size must equal the NUMA total")
	}
	big := NUMALatencyForSize(&cfg, s, s.Total()+1000)
	if math.Abs((big-small)-1000) > 0.001 {
		t.Fatal("QP subtraction must be size-independent")
	}
}
