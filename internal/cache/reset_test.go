package cache

import "testing"

// TestReset: a reset array is empty and its LRU clock rewinds, so the
// same insertion sequence evicts the same victims as on a fresh array.
func TestReset(t *testing.T) {
	s := NewSetAssoc(4*64, 2, 64) // 2 sets x 2 ways
	fill := func(a *SetAssoc) (victims []uint64) {
		for i := uint64(0); i < 6; i++ {
			if v, ev := a.Insert(i*128, i%2 == 0); ev {
				victims = append(victims, v.Addr)
			}
		}
		return
	}
	want := fill(s)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("reset array holds %d blocks", s.Len())
	}
	if s.Contains(0) {
		t.Fatal("reset array still contains block 0")
	}
	got := fill(s)
	if len(want) != len(got) {
		t.Fatalf("victim count after reset: %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("victim %d after reset: %#x, want %#x (LRU clock not rewound)", i, got[i], want[i])
		}
	}
}
