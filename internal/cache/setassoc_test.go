package cache

import (
	"testing"
	"testing/quick"
)

func TestInsertAndContains(t *testing.T) {
	c := NewSetAssoc(1024, 2, 64) // 16 blocks, 8 sets
	if c.Contains(0) {
		t.Fatal("empty cache claims residency")
	}
	if _, ev := c.Insert(0x40, false); ev {
		t.Fatal("eviction from empty set")
	}
	if !c.Contains(0x40) || !c.Contains(0x7F) {
		t.Fatal("inserted block not resident (any byte of the block must hit)")
	}
	if c.Contains(0x80) {
		t.Fatal("wrong block resident")
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewSetAssoc(2*64, 2, 64) // one set, two ways
	c.Insert(0x0000, false)
	c.Insert(0x1000, false)
	c.Touch(0x0000) // make 0x1000 the LRU
	v, ev := c.Insert(0x2000, false)
	if !ev || v.Addr != 0x1000 {
		t.Fatalf("evicted %#x (ev=%v), want 0x1000", v.Addr, ev)
	}
	if !c.Contains(0x0000) || !c.Contains(0x2000) || c.Contains(0x1000) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyPropagation(t *testing.T) {
	c := NewSetAssoc(2*64, 2, 64)
	c.Insert(0x0, false)
	if !c.SetDirty(0x0) {
		t.Fatal("SetDirty missed resident block")
	}
	c.Insert(0x1000, false)
	c.Touch(0x1000)
	c.Touch(0x1000)
	// 0x0 is LRU now.
	v, ev := c.Insert(0x2000, false)
	if !ev || v.Addr != 0 || !v.Dirty {
		t.Fatalf("dirty victim lost: %+v ev=%v", v, ev)
	}
}

func TestReinsertIsIdempotent(t *testing.T) {
	c := NewSetAssoc(2*64, 2, 64)
	c.Insert(0x0, false)
	if _, ev := c.Insert(0x0, true); ev {
		t.Fatal("reinsert evicted")
	}
	if c.Len() != 1 {
		t.Fatalf("len=%d want 1", c.Len())
	}
	v, _ := c.Remove(0x0)
	if !v.Dirty {
		t.Fatal("reinsert with dirty=true did not OR the dirty bit")
	}
}

func TestRemove(t *testing.T) {
	c := NewSetAssoc(1024, 2, 64)
	c.Insert(0x40, true)
	ln, ok := c.Remove(0x40)
	if !ok || ln.Addr != 0x40 || !ln.Dirty {
		t.Fatalf("remove returned %+v ok=%v", ln, ok)
	}
	if _, ok := c.Remove(0x40); ok {
		t.Fatal("double remove succeeded")
	}
}

// Property: capacity is never exceeded and an inserted block is resident
// until evicted or removed.
func TestPropertyCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := NewSetAssoc(4096, 4, 64) // 64 blocks
		for _, a := range addrs {
			c.Insert(uint64(a)<<6, a%2 == 0)
			if c.Len() > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: within one set, the most recently inserted block is never the
// eviction victim.
func TestPropertyMRUNotVictim(t *testing.T) {
	f := func(seq []uint8) bool {
		c := NewSetAssoc(4*64, 4, 64) // one set, four ways
		var last uint64
		hasLast := false
		for _, a := range seq {
			addr := uint64(a) << 6
			v, ev := c.Insert(addr, false)
			if ev && hasLast && v.Addr == last && last != addr {
				return false
			}
			last = addr
			hasLast = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
