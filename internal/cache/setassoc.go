// Package cache provides the storage structures shared by the simulated
// cache hierarchy: set-associative arrays with LRU replacement and dirty
// tracking. Timing and coherence live in the coherence package; this
// package answers only presence/placement/victim questions.
package cache

import "fmt"

// Line is one resident cache block.
type Line struct {
	Addr  uint64 // block-aligned address
	Dirty bool
	lru   uint64
}

// SetAssoc is a set-associative array of cache blocks.
type SetAssoc struct {
	sets      [][]Line
	numSets   int
	ways      int
	blockBits uint
	tick      uint64
}

// NewSetAssoc builds an array with the given total capacity in bytes.
func NewSetAssoc(sizeBytes, ways, blockBytes int) *SetAssoc {
	if sizeBytes <= 0 || ways <= 0 || blockBytes <= 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d ways=%d block=%d", sizeBytes, ways, blockBytes))
	}
	blocks := sizeBytes / blockBytes
	numSets := blocks / ways
	if numSets == 0 {
		numSets = 1
	}
	bb := uint(0)
	for 1<<bb < blockBytes {
		bb++
	}
	if 1<<bb != blockBytes {
		panic("cache: block size must be a power of two")
	}
	s := &SetAssoc{numSets: numSets, ways: ways, blockBits: bb}
	s.sets = make([][]Line, numSets)
	return s
}

// NumSets returns the number of sets.
func (s *SetAssoc) NumSets() int { return s.numSets }

// Ways returns the associativity.
func (s *SetAssoc) Ways() int { return s.ways }

func (s *SetAssoc) setOf(addr uint64) int {
	return int((addr >> s.blockBits) % uint64(s.numSets))
}

// Contains reports whether the block holding addr is resident.
func (s *SetAssoc) Contains(addr uint64) bool {
	set := s.sets[s.setOf(addr)]
	base := s.blockOf(addr)
	for i := range set {
		if set[i].Addr == base {
			return true
		}
	}
	return false
}

func (s *SetAssoc) blockOf(addr uint64) uint64 {
	return addr &^ ((1 << s.blockBits) - 1)
}

// Touch updates LRU state for a resident block; it reports whether the
// block was found.
func (s *SetAssoc) Touch(addr uint64) bool {
	set := s.sets[s.setOf(addr)]
	base := s.blockOf(addr)
	for i := range set {
		if set[i].Addr == base {
			s.tick++
			set[i].lru = s.tick
			return true
		}
	}
	return false
}

// SetDirty marks a resident block dirty; it reports whether the block was
// found.
func (s *SetAssoc) SetDirty(addr uint64) bool {
	set := s.sets[s.setOf(addr)]
	base := s.blockOf(addr)
	for i := range set {
		if set[i].Addr == base {
			set[i].Dirty = true
			return true
		}
	}
	return false
}

// Insert makes the block holding addr resident, evicting the LRU victim if
// the set is full. It returns the victim (if any). Inserting a block that
// is already resident just touches it (and ORs the dirty bit).
func (s *SetAssoc) Insert(addr uint64, dirty bool) (victim Line, evicted bool) {
	si := s.setOf(addr)
	set := s.sets[si]
	base := s.blockOf(addr)
	s.tick++
	for i := range set {
		if set[i].Addr == base {
			set[i].lru = s.tick
			set[i].Dirty = set[i].Dirty || dirty
			return Line{}, false
		}
	}
	if len(set) < s.ways {
		s.sets[si] = append(set, Line{Addr: base, Dirty: dirty, lru: s.tick})
		return Line{}, false
	}
	// Evict LRU.
	vi := 0
	for i := 1; i < len(set); i++ {
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim = set[vi]
	set[vi] = Line{Addr: base, Dirty: dirty, lru: s.tick}
	return victim, true
}

// Remove drops the block holding addr if resident, returning it.
func (s *SetAssoc) Remove(addr uint64) (Line, bool) {
	si := s.setOf(addr)
	set := s.sets[si]
	base := s.blockOf(addr)
	for i := range set {
		if set[i].Addr == base {
			ln := set[i]
			set[i] = set[len(set)-1]
			s.sets[si] = set[:len(set)-1]
			return ln, true
		}
	}
	return Line{}, false
}

// Reset empties the array (and rewinds the LRU clock), returning it to
// its just-built state; set backing arrays are kept.
func (s *SetAssoc) Reset() {
	for i := range s.sets {
		s.sets[i] = s.sets[i][:0]
	}
	s.tick = 0
}

// Len returns the number of resident blocks.
func (s *SetAssoc) Len() int {
	n := 0
	for _, set := range s.sets {
		n += len(set)
	}
	return n
}
