package core

import "rackni/internal/noc"

// RCPBackend is the Request Completion Pipeline's backend: it receives
// response packets from the network, updates in-flight request state,
// stores read payloads into local memory, and — when a request's last
// block has landed — notifies the frontend (Fig. 4b).
type RCPBackend struct {
	env        *Env
	id         noc.NodeID
	procLat    int64
	data       *DataPath
	complete   func(*Request)
	rcpBytesFn func() // prebuilt WriteBlock completion accounting
}

// NewRCPBackend builds a backend; complete is the Frontend-Backend
// Interface toward the RCP frontend (latch or NOC packet sender).
func NewRCPBackend(env *Env, id noc.NodeID, procLat int64, data *DataPath, complete func(*Request)) *RCPBackend {
	b := &RCPBackend{env: env, id: id, procLat: procLat, data: data, complete: complete}
	b.rcpBytesFn = func() { b.env.Stats.RCPBytes += int64(b.env.Cfg.BlockBytes) }
	return b
}

// HandleResponse consumes one KNetResponse packet (and releases it; the
// per-block NetReq context is released when the block retires).
func (b *RCPBackend) HandleResponse(m *noc.Message) {
	nr := m.Meta.(*NetReq)
	if nr.Req.T.RespFirst == 0 {
		nr.Req.T.RespFirst = b.env.Now()
	}
	b.env.Eng.Post(b.procLat, rcpRespEv, b, nr, 0)
	noc.Release(m)
}

// rcpRespEv retires one response block after the backend processing
// latency.
func rcpRespEv(a, bb any, _ int64) {
	b := a.(*RCPBackend)
	nr := bb.(*NetReq)
	r := nr.Req
	if nr.Nacked {
		// Fabric-synthesized NACK (drop with retries disabled): fail the
		// request instead of letting the application wait forever.
		releaseNetReq(nr)
		b.FailRequest(r)
		return
	}
	if nr.Ret != nil && !nr.Ret.Ack(nr.RetryID) {
		// Response to a superseded or cancelled attempt — a retransmission
		// owns this block now, or the request already failed. Discard.
		releaseNetReq(nr)
		return
	}
	if r.Failed || r.blocksLeft <= 0 {
		// Straggler for a request that already failed; its state is final.
		releaseNetReq(nr)
		return
	}
	if r.Op == OpRead {
		blockB := uint64(b.env.Cfg.BlockBytes)
		local := (r.LocalAddr &^ (blockB - 1)) + uint64(nr.Seq)*blockB
		// The home LLC bank is the point of ordering: the request is
		// complete once the store is issued toward it; the ack only
		// retires the buffer slot (and the bandwidth accounting).
		b.data.WriteBlock(local, b.rcpBytesFn)
	}
	releaseNetReq(nr)
	b.finishBlock(r) // write acks carry no payload
}

// FailRequest completes r as permanently failed through the normal CQ
// path, exactly once; duplicate failure signals (sibling blocks, late
// NACKs) and failures racing a legitimate completion are ignored.
func (b *RCPBackend) FailRequest(r *Request) {
	if r.Failed || r.blocksLeft <= 0 {
		return
	}
	r.Failed = true
	r.T.DataDone = b.env.Now()
	b.env.Stats.FailedOps++
	b.complete(r)
}

func (b *RCPBackend) finishBlock(r *Request) {
	r.blocksLeft--
	if r.blocksLeft > 0 {
		return
	}
	r.T.DataDone = b.env.Now()
	b.complete(r)
}

// RCPFrontend notifies the application of completions by writing CQ
// entries through the NI cache; the core's CQ polling then observes them
// via the normal coherence mechanisms.
type RCPFrontend struct {
	env     *Env
	cache   QPCache
	procLat int64
	qpOf    func(core int) *QueuePair
}

// NewRCPFrontend builds a frontend. qpOf resolves a core's queue pair.
func NewRCPFrontend(env *Env, cache QPCache, procLat int64, qpOf func(int) *QueuePair) *RCPFrontend {
	return &RCPFrontend{env: env, cache: cache, procLat: procLat, qpOf: qpOf}
}

// Complete publishes the request's completion to its core's CQ.
func (f *RCPFrontend) Complete(r *Request) {
	f.env.Eng.Post(f.procLat, rcpCompleteEv, f, r, 0)
}

// rcpCompleteEv reserves the CQ slot and issues the coherent CQ store.
func rcpCompleteEv(a, b any, _ int64) {
	f := a.(*RCPFrontend)
	r := b.(*Request)
	qp := f.qpOf(r.Core)
	slot := qp.ReserveCQ()
	f.cache.Write(qp.CQSlotAddr(slot), func() {
		qp.PushCQAt(slot, r)
		r.T.CQWritten = f.env.Now()
	})
}
