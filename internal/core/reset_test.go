package core

import (
	"testing"

	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// TestQueuePairReset: a reset queue pair is empty with rewound pointers,
// and a replayed push/pop sequence touches the same slot addresses as on
// a fresh pair.
func TestQueuePairReset(t *testing.T) {
	q, _ := qp(t)
	head0 := q.WQHeadAddr()
	for i := 0; i < 5; i++ {
		q.PushWQ(req(uint64(i)))
	}
	q.PopWQ()
	q.PushCQ(req(100))
	q.PopCQ()
	q.Reset()
	if q.InFlight() != 0 || q.EverQueued() != 0 {
		t.Fatalf("reset QP: inFlight=%d everQueued=%d", q.InFlight(), q.EverQueued())
	}
	if q.WQHeadAddr() != head0 || q.WQTailAddr() != head0 {
		t.Fatal("reset QP pointers not rewound")
	}
	if q.WQBlockHasNew() || len(q.PopCQ()) != 0 {
		t.Fatal("reset QP still holds entries")
	}
	q.PushWQ(req(7))
	if got := q.PopWQ(); len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("post-reset push/pop broken: %v", got)
	}
}

// dpEnv builds a minimal Env with a mesh, one home-side consumer and a
// memory controller — enough to drive a DataPath and an RRPP.
func dpEnv(t *testing.T) (*Env, *noc.Mesh) {
	t.Helper()
	cfg := config.Default()
	eng := sim.NewEngine()
	mesh := noc.NewMesh(eng, &cfg)
	env := &Env{Eng: eng, Cfg: &cfg, Net: mesh, Stats: NewStats(),
		HomeOf: func(addr uint64) noc.NodeID {
			return noc.NodeID((addr / uint64(cfg.BlockBytes)) % uint64(cfg.Tiles()))
		}}
	return env, mesh
}

// TestDataPathReset: outstanding accesses are dropped (their transaction
// ids recycle from scratch) and a fresh access demuxes correctly.
func TestDataPathReset(t *testing.T) {
	env, mesh := dpEnv(t)
	ni := noc.NIID(0)
	dp := NewDataPath(env, ni)
	// Echo every home-bound NI read straight back as its response.
	for tile := 0; tile < env.Cfg.Tiles(); tile++ {
		id := noc.NodeID(tile)
		mesh.Register(id, func(m *noc.Message) {
			resp := noc.NewMessage()
			resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
			resp.Src, resp.Dst = id, ni
			resp.Flits, resp.Kind = 1, 0
			resp.Addr, resp.Txn = m.Addr, m.Txn
			resp.Kind = kNIReadResp
			mesh.Send(resp)
			noc.Release(m)
		})
	}
	done := 0
	mesh.Register(ni, func(m *noc.Message) { dp.Handle(m) })
	dp.ReadBlock(0x100, func() { done++ })
	dp.ReadBlock(0x200, func() { done++ }) // left outstanding across the reset
	dp.Reset()
	env.Eng.Reset()
	mesh.Reset()
	dp.ReadBlock(0x300, func() { done += 10 })
	env.Eng.RunAll()
	if done != 10 {
		t.Fatalf("post-reset completions=%d, want exactly the fresh access (10)", done)
	}
}

// kNIReadResp mirrors coherence.KNIReadResp without importing the package
// (the DataPath demuxes on Txn; the kind only routes in the node
// assembly, and the test delivers directly).
const kNIReadResp = 30

// TestRGPBackendAndRRPPReset: queued unroll jobs and counters clear.
func TestRGPBackendAndRRPPReset(t *testing.T) {
	env, _ := dpEnv(t)
	ni := noc.NIID(0)
	dp := NewDataPath(env, ni)
	b := NewRGPBackend(env, ni, noc.NetID(0), ni, 1, dp)
	r := &Request{ID: 1, Core: 0, Op: OpRead, RemoteAddr: 0x1000, Size: 256}
	b.Accept(r)
	b.Reset()
	if b.Unrolled != 0 || b.unrolling || len(b.q) != 0 || b.qhead != 0 {
		t.Fatalf("reset backend not idle: unrolled=%d q=%d", b.Unrolled, len(b.q))
	}

	p := NewRRPP(env, ni, noc.NetID(0), dp)
	p.Serviced = 7
	p.Reset()
	if p.Serviced != 0 {
		t.Fatal("reset RRPP keeps its service count")
	}
}

// TestRGPFrontendRestartPolling: after an engine reset dropped the poll
// chains, RestartPolling re-arms one poll event per registered WQ.
func TestRGPFrontendRestartPolling(t *testing.T) {
	env, _ := dpEnv(t)
	cfg := env.Cfg
	polls := 0
	cache := countingCache{reads: &polls}
	f := NewRGPFrontend(env, cache, 0, func(*Request) {})
	f.AddQP(NewQueuePair(cfg, 0, 0x4000_0000, 0x4000_8000))
	f.AddQP(NewQueuePair(cfg, 1, 0x4100_0000, 0x4100_8000))
	if env.Eng.Pending() != 2 {
		t.Fatalf("AddQP armed %d poll events, want 2", env.Eng.Pending())
	}
	env.Eng.Reset()
	if env.Eng.Pending() != 0 {
		t.Fatal("engine reset left events pending")
	}
	f.RestartPolling()
	if env.Eng.Pending() != 2 {
		t.Fatalf("RestartPolling armed %d poll events, want 2", env.Eng.Pending())
	}
}

// countingCache counts QP-cache reads without completing them (the poll
// chains park on the first read).
type countingCache struct{ reads *int }

func (c countingCache) Read(addr uint64, done func())  { *c.reads++ }
func (c countingCache) Write(addr uint64, done func()) { done() }
