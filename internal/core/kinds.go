package core

import (
	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// RMC message kinds (range 200+; coherence uses 0..99, memory 100..119).
const (
	// KWQDispatch carries a valid WQ entry from an RGP frontend to its
	// backend — the NIsplit Frontend-Backend Interface packet (§4.2).
	KWQDispatch = 200
	// KCQDispatch carries a completion from an RCP backend to its
	// frontend (NIsplit).
	KCQDispatch = 201
	// KNetRequest is a cache-block-sized request packet headed off-chip.
	KNetRequest = 202
	// KNetResponse is a response packet delivered on-chip to an RCP
	// backend (or to the issuing tile's NI in the per-tile design).
	KNetResponse = 203
	// KNetInbound is a remote node's request arriving at an RRPP.
	KNetInbound = 204
	// KNetOutbound is an RRPP's response headed off-chip.
	KNetOutbound = 205
)

// RMCKind reports whether a message kind belongs to the RMC.
func RMCKind(k int) bool { return k >= 200 && k <= 205 }

// NetReq is the per-block context carried by request/response packets.
type NetReq struct {
	Req      *Request
	Seq      int
	ReturnTo noc.NodeID
	Op       Op
}

// Env bundles what every RMC component needs.
type Env struct {
	Eng    *sim.Engine
	Cfg    *config.Config
	Net    noc.Fabric
	HomeOf func(addr uint64) noc.NodeID
	Stats  *Stats
}

// Now returns the current cycle.
func (e *Env) Now() int64 { return e.Eng.Now() }

// Stats aggregates the RMC-level measurements the experiments report.
type Stats struct {
	// RCPBytes counts payload bytes written into local buffers by RCP
	// backends for locally initiated requests; RRPPBytes counts payload
	// bytes sent out by RRPPs for remote requests. Their sum is the
	// paper's "application bandwidth" (§6.2).
	RCPBytes  int64
	RRPPBytes int64

	Completed int64
	ReqLat    *stats.LatencyAccum
	RRPPLat   *stats.LatencyAccum

	// Done observes request completions (used by drivers); may be nil.
	Done func(*Request)
}

// NewStats builds the stats sink.
func NewStats() *Stats {
	return &Stats{
		ReqLat:  stats.NewLatencyAccum(4096),
		RRPPLat: stats.NewLatencyAccum(4096),
	}
}

// QPCache abstracts the NI cache an RGP/RCP frontend uses for its QP
// interactions: the NI side of a tile's cache complex (per-tile/split) or
// a standalone edge NI cache (edge).
type QPCache interface {
	Read(addr uint64, done func())
	Write(addr uint64, done func())
}

// outbox serializes a component's NOC injections with retry-on-full.
type outbox struct {
	env     *Env
	id      noc.NodeID
	q       []*noc.Message
	waiting bool
}

func newOutbox(env *Env, id noc.NodeID) *outbox { return &outbox{env: env, id: id} }

func (o *outbox) send(m *noc.Message) {
	o.q = append(o.q, m)
	o.pump()
}

func (o *outbox) pump() {
	if o.waiting {
		return
	}
	for len(o.q) > 0 {
		if !o.env.Net.Send(o.q[0]) {
			o.waiting = true
			o.env.Net.WhenFree(o.id, func() { o.waiting = false; o.pump() })
			return
		}
		o.q = o.q[1:]
	}
}
