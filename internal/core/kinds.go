package core

import (
	"sync"

	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// RMC message kinds (range 200+; coherence uses 0..99, memory 100..119).
const (
	// KWQDispatch carries a valid WQ entry from an RGP frontend to its
	// backend — the NIsplit Frontend-Backend Interface packet (§4.2).
	KWQDispatch = 200
	// KCQDispatch carries a completion from an RCP backend to its
	// frontend (NIsplit).
	KCQDispatch = 201
	// KNetRequest is a cache-block-sized request packet headed off-chip.
	KNetRequest = 202
	// KNetResponse is a response packet delivered on-chip to an RCP
	// backend (or to the issuing tile's NI in the per-tile design).
	KNetResponse = 203
	// KNetInbound is a remote node's request arriving at an RRPP.
	KNetInbound = 204
	// KNetOutbound is an RRPP's response headed off-chip.
	KNetOutbound = 205
)

// RMCKind reports whether a message kind belongs to the RMC.
func RMCKind(k int) bool { return k >= 200 && k <= 205 }

// NetReq is the per-block context carried by request/response packets.
// Records are pooled: the RGP backend acquires one per block transfer and
// the RCP backend releases it when the block's response retires.
type NetReq struct {
	Req      *Request
	Seq      int
	ReturnTo noc.NodeID
	Op       Op

	// Ret, when non-nil, is the retrier tracking this attempt; RetryID
	// names the tracked entry and its generation so a late response to a
	// superseded attempt is recognized and discarded. Both are zero when
	// timeouts are disabled.
	Ret     *Retrier
	RetryID uint64
	// Nacked marks a synthesized fabric NACK: the block was dropped and
	// retries are disabled, so the request must fail instead of hang.
	Nacked bool
}

var netReqPool = sync.Pool{New: func() interface{} { return new(NetReq) }}

func newNetReq() *NetReq { return netReqPool.Get().(*NetReq) }

func releaseNetReq(nr *NetReq) {
	*nr = NetReq{}
	netReqPool.Put(nr)
}

// Env bundles what every RMC component needs.
type Env struct {
	Eng    *sim.Engine
	Cfg    *config.Config
	Net    noc.Fabric
	HomeOf func(addr uint64) noc.NodeID
	Stats  *Stats
}

// Now returns the current cycle.
func (e *Env) Now() int64 { return e.Eng.Now() }

// Stats aggregates the RMC-level measurements the experiments report.
type Stats struct {
	// RCPBytes counts payload bytes written into local buffers by RCP
	// backends for locally initiated requests; RRPPBytes counts payload
	// bytes sent out by RRPPs for remote requests. Their sum is the
	// paper's "application bandwidth" (§6.2).
	RCPBytes  int64
	RRPPBytes int64

	Completed int64
	ReqLat    *stats.LatencyAccum
	RRPPLat   *stats.LatencyAccum

	// Retries counts block retransmissions; FailedOps counts requests
	// completed as permanently failed after exhausting their retry budget.
	Retries   int64
	FailedOps int64

	// Done observes request completions (used by drivers); may be nil.
	Done func(*Request)
}

// statsSampleCap is the raw-sample reservoir of the latency accumulators.
const statsSampleCap = 4096

// NewStats builds the stats sink.
func NewStats() *Stats {
	s := &Stats{}
	s.Reset()
	return s
}

// Reset zeroes the counters and replaces the accumulators, so a run on a
// reused node reports per-run statistics. Components reach the sink only
// through the shared *Stats at event time, so swapping the accumulators is
// safe between runs; the Done observer is preserved. On a fresh node Reset
// is a no-op.
func (s *Stats) Reset() {
	s.RCPBytes, s.RRPPBytes, s.Completed = 0, 0, 0
	s.Retries, s.FailedOps = 0, 0
	s.ReqLat = stats.NewLatencyAccum(statsSampleCap)
	s.RRPPLat = stats.NewLatencyAccum(statsSampleCap)
}

// QPCache abstracts the NI cache an RGP/RCP frontend uses for its QP
// interactions: the NI side of a tile's cache complex (per-tile/split) or
// a standalone edge NI cache (edge).
type QPCache interface {
	Read(addr uint64, done func())
	Write(addr uint64, done func())
}

// newOutbox wires a noc.Outbox (the shared retry-on-full injector) for a
// component at endpoint id.
func newOutbox(env *Env, id noc.NodeID) *noc.Outbox {
	return noc.NewOutbox(env.Net, id)
}
