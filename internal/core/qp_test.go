package core

import (
	"testing"
	"testing/quick"

	"rackni/internal/config"
)

func qp(t *testing.T) (*QueuePair, *config.Config) {
	t.Helper()
	cfg := config.Default()
	return NewQueuePair(&cfg, 0, 0x4000_0000, 0x4000_8000), &cfg
}

func req(id uint64) *Request {
	return &Request{ID: id, Size: 64, Op: OpRead}
}

func TestWQAddressesAdvanceByEntrySize(t *testing.T) {
	q, cfg := qp(t)
	a0 := q.WQHeadAddr()
	q.PushWQ(req(1))
	a1 := q.WQHeadAddr()
	if a1-a0 != uint64(cfg.WQEntryB) {
		t.Fatalf("head advanced %d bytes, want %d", a1-a0, cfg.WQEntryB)
	}
}

func TestPopWQStopsAtBlockBoundary(t *testing.T) {
	q, cfg := qp(t)
	perBlock := cfg.BlockBytes / cfg.WQEntryB // 4
	for i := 0; i < perBlock+2; i++ {
		q.PushWQ(req(uint64(i)))
	}
	first := q.PopWQ()
	if len(first) != perBlock {
		t.Fatalf("one block read must yield %d entries, got %d", perBlock, len(first))
	}
	second := q.PopWQ()
	if len(second) != 2 {
		t.Fatalf("second block read must yield the remaining 2, got %d", len(second))
	}
	if len(q.PopWQ()) != 0 {
		t.Fatal("empty WQ must pop nothing")
	}
}

func TestWQFullAndCompletionFreesSlots(t *testing.T) {
	q, cfg := qp(t)
	for i := 0; i < cfg.WQEntries; i++ {
		q.PushWQ(req(uint64(i)))
	}
	if !q.Full() {
		t.Fatal("WQ must be full at 128 outstanding")
	}
	reqs := q.PopWQ() // NI consumes entries; slots stay busy until CQ read
	if q.Full() != true {
		t.Fatal("consuming WQ entries must not free slots (completion does)")
	}
	for _, r := range reqs {
		q.PushCQ(r)
	}
	got := q.PopCQ()
	if len(got) == 0 {
		t.Fatal("completions not visible")
	}
	if q.Full() {
		t.Fatal("consumed completions must free WQ slots")
	}
	if q.InFlight() != cfg.WQEntries-len(got) {
		t.Fatalf("inFlight=%d want %d", q.InFlight(), cfg.WQEntries-len(got))
	}
}

func TestWQOverflowPanics(t *testing.T) {
	q, cfg := qp(t)
	for i := 0; i < cfg.WQEntries; i++ {
		q.PushWQ(req(uint64(i)))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overflow must panic (driver bug guard)")
		}
	}()
	q.PushWQ(req(999))
}

func TestCQReserveOutOfOrderPublish(t *testing.T) {
	q, _ := qp(t)
	q.PushWQ(req(1))
	q.PushWQ(req(2))
	rs := q.PopWQ()
	s1 := q.ReserveCQ()
	s2 := q.ReserveCQ()
	// Second completion lands first: the core must not consume past the
	// unpublished first slot.
	q.PushCQAt(s2, rs[1])
	if len(q.PopCQ()) != 0 {
		t.Fatal("consumed past an unpublished CQ slot")
	}
	q.PushCQAt(s1, rs[0])
	got := q.PopCQ()
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("completion order wrong: %v", got)
	}
}

func TestRequestBlocks(t *testing.T) {
	cases := []struct{ size, want int }{
		{1, 1}, {64, 1}, {65, 2}, {128, 2}, {8192, 128}, {16384, 256},
	}
	for _, c := range cases {
		r := &Request{Size: c.size}
		if got := r.Blocks(64); got != c.want {
			t.Fatalf("Blocks(%d)=%d want %d", c.size, got, c.want)
		}
	}
}

// Property: push/pop through wrap-around keeps FIFO order and conserves
// requests.
func TestPropertyQPWrapAroundFIFO(t *testing.T) {
	f := func(batches []uint8) bool {
		cfg := config.Default()
		q := NewQueuePair(&cfg, 0, 0, 0x8000)
		next := uint64(0)
		expect := uint64(0)
		for _, raw := range batches {
			n := int(raw%8) + 1
			for i := 0; i < n && !q.Full(); i++ {
				next++
				q.PushWQ(req(next))
			}
			for {
				rs := q.PopWQ()
				if len(rs) == 0 {
					break
				}
				for _, r := range rs {
					expect++
					if r.ID != expect {
						return false
					}
					q.PushCQ(r)
				}
			}
			for {
				cs := q.PopCQ()
				if len(cs) == 0 {
					break
				}
			}
		}
		return q.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
