package core

import "rackni/internal/noc"

// RGPFrontend is the Request Generation Pipeline's frontend: it selects
// among its registered WQs, computes the WQ tail address, loads the WQ head
// block through the NI cache, and hands valid entries to the backend
// (Fig. 4a). While the WQ is idle the poll is a cheap NI-cache hit; when
// the core publishes an entry the NI's copy has been invalidated and the
// next poll pays a coherent re-fetch — the interaction the paper measures.
type RGPFrontend struct {
	env      *Env
	cache    QPCache
	procLat  int64
	dispatch func(*Request)
	pollers  []*wqPoller // in AddQP order, for RestartPolling
}

// NewRGPFrontend builds a frontend; dispatch is the Frontend-Backend
// Interface — a latch (direct call) in NIedge/NIper-tile or a NOC packet
// sender in NIsplit.
func NewRGPFrontend(env *Env, cache QPCache, procLat int64, dispatch func(*Request)) *RGPFrontend {
	return &RGPFrontend{env: env, cache: cache, procLat: procLat, dispatch: dispatch}
}

// wqPoller is the per-WQ polling loop. Its callbacks are built once at
// AddQP so the steady-state poll cycle (read -> empty -> re-arm) schedules
// nothing but pre-existing func values.
type wqPoller struct {
	f          *RGPFrontend
	qp         *QueuePair
	pollFn     func()
	readDoneFn func()
}

// AddQP registers a WQ with this frontend and starts polling it.
func (f *RGPFrontend) AddQP(qp *QueuePair) {
	p := &wqPoller{f: f, qp: qp}
	p.pollFn = p.poll
	p.readDoneFn = p.onRead
	f.pollers = append(f.pollers, p)
	f.env.Eng.Schedule(0, p.pollFn)
}

// RestartPolling re-arms every registered WQ's poll chain, in AddQP order.
// The run lifecycle calls it after an engine reset (which dropped the
// previous chains' events), reproducing the event sequence a fresh
// frontend schedules at construction.
func (f *RGPFrontend) RestartPolling() {
	for _, p := range f.pollers {
		f.env.Eng.Schedule(0, p.pollFn)
	}
}

func (p *wqPoller) poll() {
	p.f.cache.Read(p.qp.WQTailAddr(), p.readDoneFn)
}

// rgpDispatchEv hands one WQ entry to the Frontend-Backend Interface.
func rgpDispatchEv(a, b any, _ int64) {
	a.(*RGPFrontend).dispatch(b.(*Request))
}

func (p *wqPoller) onRead() {
	f := p.f
	reqs := p.qp.PopWQ()
	if len(reqs) == 0 {
		f.env.Eng.Schedule(int64(f.env.Cfg.PollPeriod), p.pollFn)
		return
	}
	now := f.env.Now()
	var delay int64
	for _, r := range reqs {
		r.T.WQSeen = now
		f.env.Eng.Post(f.procLat+delay, rgpDispatchEv, f, r, 0)
		delay++ // one entry per cycle through the pipeline
	}
	// More entries may sit in the next block; re-poll immediately.
	f.env.Eng.Schedule(delay, p.pollFn)
}

// RGPBackend is the Request Generation Pipeline's backend: it initializes
// request-tracking state, unrolls multi-block requests into cache-block
// transfers at one per cycle (§3.1), loads write payloads from local
// memory, and injects request packets into the network router.
type RGPBackend struct {
	env      *Env
	id       noc.NodeID
	netPort  noc.NodeID
	returnTo noc.NodeID
	procLat  int64
	data     *DataPath
	out      *noc.Outbox
	stepFn   func()
	ret      *Retrier // non-nil only when Config.ReqTimeout > 0

	q         []unrollJob // by value; popped via qhead so the array is reused
	qhead     int
	unrolling bool

	// Unrolled counts block requests injected (tests/metrics).
	Unrolled int64
}

type unrollJob struct {
	req *Request
	seq int
}

// NewRGPBackend builds a backend that injects packets toward netPort and
// asks for responses to be returned to returnTo (the paired RCP backend's
// endpoint: the same edge NI in NIedge/NIsplit, the issuing tile in
// NIper-tile).
func NewRGPBackend(env *Env, id, netPort, returnTo noc.NodeID, procLat int64, data *DataPath) *RGPBackend {
	b := &RGPBackend{
		env: env, id: id, netPort: netPort, returnTo: returnTo,
		procLat: procLat, data: data, out: newOutbox(env, id),
	}
	b.stepFn = b.step
	if env.Cfg.ReqTimeout > 0 {
		b.ret = newRetrier(env, b)
	}
	return b
}

// OnFail wires the permanent-failure sink — the paired RCP backend's
// FailRequest — that the retrier invokes when a block exhausts its retry
// budget. A no-op when timeouts are disabled.
func (b *RGPBackend) OnFail(f func(*Request)) {
	if b.ret != nil {
		b.ret.fail = f
	}
}

// Retrier exposes the backend's retrier (nil when timeouts are disabled).
func (b *RGPBackend) Retrier() *Retrier { return b.ret }

// Reset drops queued unroll jobs (their requests are abandoned with the
// engine's events), idles the pipeline and zeroes the counters.
func (b *RGPBackend) Reset() {
	for i := range b.q {
		b.q[i] = unrollJob{}
	}
	b.q = b.q[:0]
	b.qhead = 0
	b.unrolling = false
	b.Unrolled = 0
	b.out.Reset()
	if b.ret != nil {
		b.ret.Reset()
	}
}

// rgpAcceptEv enqueues a dispatched WQ entry after the backend's
// processing latency.
func rgpAcceptEv(a, b any, _ int64) {
	bk := a.(*RGPBackend)
	bk.q = append(bk.q, unrollJob{req: b.(*Request)})
	bk.kick()
}

// Accept receives a WQ entry from the frontend (latch or NOC packet).
func (b *RGPBackend) Accept(r *Request) {
	r.T.Dispatched = b.env.Now()
	r.blocksLeft = r.Blocks(b.env.Cfg.BlockBytes)
	b.env.Eng.Post(b.procLat, rgpAcceptEv, b, r, 0)
}

func (b *RGPBackend) kick() {
	if b.unrolling || b.qhead == len(b.q) {
		return
	}
	b.unrolling = true
	b.env.Eng.Schedule(1, b.stepFn)
}

// step unrolls one cache-block transfer per cycle (UnrollPerCycle).
func (b *RGPBackend) step() {
	if b.qhead == len(b.q) {
		b.unrolling = false
		return
	}
	job := &b.q[b.qhead]
	r := job.req
	if r.Failed {
		// A sibling block exhausted its retry budget while this request
		// was still unrolling: abandon the remaining blocks (the request
		// already completed as failed through the CQ).
		job.req = nil
		b.qhead++
		if b.qhead == len(b.q) {
			b.q = b.q[:0]
			b.qhead = 0
		}
		b.env.Eng.Schedule(int64(b.env.Cfg.UnrollPerCycle), b.stepFn)
		return
	}
	seq := job.seq
	blockB := uint64(b.env.Cfg.BlockBytes)
	addr := (r.RemoteAddr &^ (blockB - 1)) + uint64(seq)*blockB
	job.seq++
	if job.seq >= r.Blocks(b.env.Cfg.BlockBytes) {
		job.req = nil
		b.qhead++
		if b.qhead == len(b.q) {
			b.q = b.q[:0]
			b.qhead = 0
		}
	}
	b.Unrolled++
	nr := newNetReq()
	nr.Req, nr.Seq, nr.ReturnTo, nr.Op = r, seq, b.returnTo, r.Op
	switch r.Op {
	case OpRead:
		b.inject(nr, addr, b.env.Cfg.ReqHeaderFlits)
	case OpWrite:
		// Load the write payload from local memory first (Fig. 4a:
		// "Memory Read"), then inject header+data.
		local := (r.LocalAddr &^ (blockB - 1)) + uint64(seq)*blockB
		b.data.ReadBlock(local, func() {
			b.inject(nr, addr, b.env.Cfg.ReqHeaderFlits+b.env.Cfg.BlockBytes/b.env.Cfg.LinkBytes)
		})
	}
	b.env.Eng.Schedule(int64(b.env.Cfg.UnrollPerCycle), b.stepFn)
}

func (b *RGPBackend) inject(nr *NetReq, addr uint64, flits int) {
	if nr.Req.T.Injected == 0 {
		nr.Req.T.Injected = b.env.Now()
	}
	if b.ret != nil && nr.Ret == nil {
		// First transmission of this block: start its timeout. Retransmits
		// arrive here already tracked (the retrier pre-sets nr.Ret).
		b.ret.Track(nr, addr, flits)
	}
	m := noc.NewMessage()
	m.VN, m.Class = noc.VNReq, noc.ClassRequest
	m.Src, m.Dst = b.id, b.netPort
	m.Flits, m.Kind, m.Addr, m.Meta = flits, KNetRequest, addr, nr
	b.out.Send(m)
}
