package core

import "rackni/internal/noc"

// RGPFrontend is the Request Generation Pipeline's frontend: it selects
// among its registered WQs, computes the WQ tail address, loads the WQ head
// block through the NI cache, and hands valid entries to the backend
// (Fig. 4a). While the WQ is idle the poll is a cheap NI-cache hit; when
// the core publishes an entry the NI's copy has been invalidated and the
// next poll pays a coherent re-fetch — the interaction the paper measures.
type RGPFrontend struct {
	env      *Env
	cache    QPCache
	procLat  int64
	dispatch func(*Request)
}

// NewRGPFrontend builds a frontend; dispatch is the Frontend-Backend
// Interface — a latch (direct call) in NIedge/NIper-tile or a NOC packet
// sender in NIsplit.
func NewRGPFrontend(env *Env, cache QPCache, procLat int64, dispatch func(*Request)) *RGPFrontend {
	return &RGPFrontend{env: env, cache: cache, procLat: procLat, dispatch: dispatch}
}

// AddQP registers a WQ with this frontend and starts polling it.
func (f *RGPFrontend) AddQP(qp *QueuePair) {
	f.env.Eng.Schedule(0, func() { f.poll(qp) })
}

func (f *RGPFrontend) poll(qp *QueuePair) {
	f.cache.Read(qp.WQTailAddr(), func() {
		reqs := qp.PopWQ()
		if len(reqs) == 0 {
			f.env.Eng.Schedule(int64(f.env.Cfg.PollPeriod), func() { f.poll(qp) })
			return
		}
		now := f.env.Now()
		var delay int64
		for _, r := range reqs {
			r.T.WQSeen = now
			req := r
			f.env.Eng.Schedule(f.procLat+delay, func() { f.dispatch(req) })
			delay++ // one entry per cycle through the pipeline
		}
		// More entries may sit in the next block; re-poll immediately.
		f.env.Eng.Schedule(delay, func() { f.poll(qp) })
	})
}

// RGPBackend is the Request Generation Pipeline's backend: it initializes
// request-tracking state, unrolls multi-block requests into cache-block
// transfers at one per cycle (§3.1), loads write payloads from local
// memory, and injects request packets into the network router.
type RGPBackend struct {
	env      *Env
	id       noc.NodeID
	netPort  noc.NodeID
	returnTo noc.NodeID
	procLat  int64
	data     *DataPath
	out      *outbox

	q         []*unrollJob
	unrolling bool

	// Unrolled counts block requests injected (tests/metrics).
	Unrolled int64
}

type unrollJob struct {
	req *Request
	seq int
}

// NewRGPBackend builds a backend that injects packets toward netPort and
// asks for responses to be returned to returnTo (the paired RCP backend's
// endpoint: the same edge NI in NIedge/NIsplit, the issuing tile in
// NIper-tile).
func NewRGPBackend(env *Env, id, netPort, returnTo noc.NodeID, procLat int64, data *DataPath) *RGPBackend {
	return &RGPBackend{
		env: env, id: id, netPort: netPort, returnTo: returnTo,
		procLat: procLat, data: data, out: newOutbox(env, id),
	}
}

// Accept receives a WQ entry from the frontend (latch or NOC packet).
func (b *RGPBackend) Accept(r *Request) {
	r.T.Dispatched = b.env.Now()
	r.blocksLeft = r.Blocks(b.env.Cfg.BlockBytes)
	b.env.Eng.Schedule(b.procLat, func() {
		b.q = append(b.q, &unrollJob{req: r})
		b.kick()
	})
}

func (b *RGPBackend) kick() {
	if b.unrolling || len(b.q) == 0 {
		return
	}
	b.unrolling = true
	b.env.Eng.Schedule(1, b.step)
}

// step unrolls one cache-block transfer per cycle (UnrollPerCycle).
func (b *RGPBackend) step() {
	if len(b.q) == 0 {
		b.unrolling = false
		return
	}
	job := b.q[0]
	r := job.req
	seq := job.seq
	blockB := uint64(b.env.Cfg.BlockBytes)
	addr := (r.RemoteAddr &^ (blockB - 1)) + uint64(seq)*blockB
	job.seq++
	if job.seq >= r.Blocks(b.env.Cfg.BlockBytes) {
		b.q = b.q[1:]
	}
	b.Unrolled++
	nr := &NetReq{Req: r, Seq: seq, ReturnTo: b.returnTo, Op: r.Op}
	switch r.Op {
	case OpRead:
		b.inject(nr, addr, b.env.Cfg.ReqHeaderFlits)
	case OpWrite:
		// Load the write payload from local memory first (Fig. 4a:
		// "Memory Read"), then inject header+data.
		local := (r.LocalAddr &^ (blockB - 1)) + uint64(seq)*blockB
		b.data.ReadBlock(local, func() {
			b.inject(nr, addr, b.env.Cfg.ReqHeaderFlits+b.env.Cfg.BlockBytes/b.env.Cfg.LinkBytes)
		})
	}
	b.env.Eng.Schedule(int64(b.env.Cfg.UnrollPerCycle), b.step)
}

func (b *RGPBackend) inject(nr *NetReq, addr uint64, flits int) {
	if nr.Req.T.Injected == 0 {
		nr.Req.T.Injected = b.env.Now()
	}
	m := &noc.Message{
		VN: noc.VNReq, Class: noc.ClassRequest,
		Src: b.id, Dst: b.netPort,
		Flits: flits, Kind: KNetRequest, Addr: addr, Meta: nr,
	}
	b.out.send(m)
}
