package core

// Retrier gives an RGP backend per-block request timeouts and bounded
// retransmission: every injected block request is tracked with a cycle
// deadline, a periodic scan (scheduled only while attempts are live, woken
// at the earliest pending deadline) retransmits expired attempts with
// deterministic exponential backoff, and a block whose retry budget runs
// out fails its whole request through the paired RCP backend.
//
// Each retransmission carries a fresh NetReq and a bumped generation: a
// late response to a superseded attempt fails the Ack generation check in
// rcpRespEv and is discarded, so a delayed-then-retransmitted block can
// never retire twice. Retransmitted writes re-send the payload captured at
// first injection without re-reading local memory — the RMC is modeled as
// holding the block in a retransmit buffer until it is acked.
//
// A backend owns at most one Retrier, constructed only when
// Config.ReqTimeout > 0, so lossless configurations schedule no scan
// events and stay bit-identical to builds without this file.
type Retrier struct {
	env        *Env
	b          *RGPBackend
	fail       func(*Request) // permanent-failure sink (RCPBackend.FailRequest)
	timeout    int64
	maxRetries int
	backoffMax int

	// Tracked attempts live by value; free slots recycle LIFO. A slot's
	// generation survives recycling, which is what keeps RetryIDs unique.
	ents   []retryEnt
	free   []int32
	live   int
	wakeAt int64 // earliest scheduled scan, 0 = none pending
	scanFn func()
}

// retryEnt is one tracked in-flight block attempt.
type retryEnt struct {
	nr       *NetReq
	addr     uint64
	flits    int
	deadline int64
	attempt  int // transmissions so far (1 = the original send)
	gen      uint32
	active   bool
}

// newRetrier builds the backend's retrier from the shared configuration.
func newRetrier(env *Env, b *RGPBackend) *Retrier {
	t := &Retrier{
		env: env, b: b,
		timeout:    env.Cfg.ReqTimeout,
		maxRetries: env.Cfg.MaxRetries,
		backoffMax: env.Cfg.RetryBackoffMax,
	}
	t.scanFn = t.scan
	return t
}

// Track registers a freshly injected block attempt and arms the scan.
func (t *Retrier) Track(nr *NetReq, addr uint64, flits int) {
	var slot int32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.ents = append(t.ents, retryEnt{})
		slot = int32(len(t.ents) - 1)
	}
	e := &t.ents[slot]
	gen := e.gen + 1
	deadline := t.env.Now() + t.timeout
	*e = retryEnt{nr: nr, addr: addr, flits: flits, deadline: deadline, attempt: 1, gen: gen, active: true}
	nr.Ret, nr.RetryID = t, retryID(slot, gen)
	t.live++
	t.arm(deadline)
}

// Ack retires the attempt named by id. It reports false — the response
// must be discarded — when the attempt was superseded by a retransmission
// or cancelled by its request's failure.
func (t *Retrier) Ack(id uint64) bool {
	slot, gen := int32(id>>32), uint32(id)
	if int(slot) >= len(t.ents) {
		return false
	}
	e := &t.ents[slot]
	if !e.active || e.gen != gen {
		return false
	}
	t.release(slot, e)
	return true
}

// Live returns the number of tracked in-flight attempts (tests).
func (t *Retrier) Live() int { return t.live }

// Reset returns the retrier to its just-built emptiness: tracked attempts
// dropped (their events are cleared with the engine by the run lifecycle),
// slot generations rewound so a reused node replays a fresh node's
// RetryIDs exactly.
func (t *Retrier) Reset() {
	for i := range t.ents {
		t.ents[i] = retryEnt{}
	}
	t.ents = t.ents[:0]
	t.free = t.free[:0]
	t.live = 0
	t.wakeAt = 0
}

func retryID(slot int32, gen uint32) uint64 {
	return uint64(uint32(slot))<<32 | uint64(gen)
}

func (t *Retrier) release(slot int32, e *retryEnt) {
	e.active = false
	e.nr = nil
	t.free = append(t.free, slot)
	t.live--
}

// arm schedules a scan at absolute cycle at, unless one is already pending
// no later than that. Deadlines grow monotonically under a fixed timeout,
// so steady-state tracking arms at most one scan at a time.
func (t *Retrier) arm(at int64) {
	now := t.env.Now()
	if t.wakeAt != 0 && t.wakeAt <= at && t.wakeAt > now {
		return
	}
	t.wakeAt = at
	d := at - now
	if d < 1 {
		d = 1
	}
	t.env.Eng.Schedule(d, t.scanFn)
}

// scan walks the tracked attempts, retransmitting the expired and failing
// those out of budget, then re-arms at the earliest surviving deadline.
func (t *Retrier) scan() {
	t.wakeAt = 0
	if t.live == 0 {
		return
	}
	now := t.env.Now()
	var next int64
	for slot := range t.ents {
		e := &t.ents[slot]
		if !e.active {
			continue
		}
		if e.deadline > now {
			if next == 0 || e.deadline < next {
				next = e.deadline
			}
			continue
		}
		if e.attempt > t.maxRetries {
			r := e.nr.Req
			t.release(int32(slot), e)
			t.cancelReq(r)
			if t.fail == nil {
				panic("core: retrier has no failure sink (RGPBackend.OnFail was never wired)")
			}
			t.fail(r)
			continue
		}
		// Retransmit under a new generation; the old attempt's response,
		// if it ever arrives, fails the Ack check and is discarded.
		old := e.nr
		nr := newNetReq()
		nr.Req, nr.Seq, nr.ReturnTo, nr.Op = old.Req, old.Seq, old.ReturnTo, old.Op
		e.gen++
		e.nr = nr
		shift := e.attempt - 1
		if shift > t.backoffMax {
			shift = t.backoffMax
		}
		e.attempt++
		e.deadline = now + t.timeout<<shift
		nr.Ret, nr.RetryID = t, retryID(int32(slot), e.gen)
		t.env.Stats.Retries++
		t.b.inject(nr, e.addr, e.flits)
		if next == 0 || e.deadline < next {
			next = e.deadline
		}
	}
	if next > 0 {
		t.arm(next)
	}
}

// cancelReq deactivates every attempt still tracking a block of r; called
// when one block exhausts its budget so sibling blocks stop retrying a
// request that is already failing.
func (t *Retrier) cancelReq(r *Request) {
	for slot := range t.ents {
		e := &t.ents[slot]
		if e.active && e.nr.Req == r {
			t.release(int32(slot), e)
		}
	}
}
