package core

import (
	"fmt"

	"rackni/internal/coherence"
	"rackni/internal/noc"
)

// DataPath is the NI's non-QP memory interface: block reads and writes that
// bypass the NI cache (§3.1) and are serviced by the home LLC bank of the
// target address (filling from / writing back to memory as needed). One
// DataPath is shared by all RMC components at a NOC endpoint; responses are
// demultiplexed by transaction id.
type DataPath struct {
	env     *Env
	id      noc.NodeID
	seq     uint64
	pending map[uint64]func()
	out     *noc.Outbox
}

// NewDataPath builds the data path for the component(s) at endpoint id.
func NewDataPath(env *Env, id noc.NodeID) *DataPath {
	return &DataPath{env: env, id: id, pending: make(map[uint64]func()), out: newOutbox(env, id)}
}

// ReadBlock fetches one cache block from local memory (through its home
// LLC bank); done runs when the data is at the NI.
func (d *DataPath) ReadBlock(addr uint64, done func()) {
	txn := d.next()
	d.pending[txn] = done
	m := noc.NewMessage()
	m.VN, m.Class = noc.VNReq, noc.ClassRequest
	m.Src, m.Dst = d.id, d.env.HomeOf(addr)
	m.Flits, m.Kind, m.Addr, m.Txn = 1, coherence.KNIRead, addr, txn
	d.out.Send(m)
}

// WriteBlock stores one cache block to local memory (allocating in the home
// LLC bank); done runs when the write is acknowledged.
func (d *DataPath) WriteBlock(addr uint64, done func()) {
	txn := d.next()
	d.pending[txn] = done
	m := noc.NewMessage()
	m.VN, m.Class = noc.VNReq, noc.ClassRequest
	m.Src, m.Dst = d.id, d.env.HomeOf(addr)
	m.Flits, m.Kind, m.Addr, m.Txn = d.env.Cfg.BlockFlits(), coherence.KNIWrite, addr, txn
	d.out.Send(m)
}

// Handle consumes (and releases) KNIReadResp/KNIWriteAck messages for this
// endpoint.
func (d *DataPath) Handle(m *noc.Message) {
	done, ok := d.pending[m.Txn]
	if !ok {
		panic(fmt.Sprintf("datapath %d: unmatched txn %d", d.id, m.Txn))
	}
	delete(d.pending, m.Txn)
	noc.Release(m)
	done()
}

func (d *DataPath) next() uint64 {
	d.seq++
	return d.seq
}
