package core

import (
	"fmt"

	"rackni/internal/coherence"
	"rackni/internal/noc"
)

// DataPath is the NI's non-QP memory interface: block reads and writes that
// bypass the NI cache (§3.1) and are serviced by the home LLC bank of the
// target address (filling from / writing back to memory as needed). One
// DataPath is shared by all RMC components at a NOC endpoint; responses are
// demultiplexed by transaction id.
//
// The data path sits on the per-block hot path of every transfer, so the
// demux table is a pooled slice indexed by a recycling transaction id
// (slot+1, 0 invalid) rather than a map: no hashing, no per-transaction
// allocation, and the table stays dense at the working-set size.
type DataPath struct {
	env     *Env
	id      noc.NodeID
	pending []func()
	free    []uint64
	out     *noc.Outbox
}

// NewDataPath builds the data path for the component(s) at endpoint id.
func NewDataPath(env *Env, id noc.NodeID) *DataPath {
	return &DataPath{env: env, id: id, out: newOutbox(env, id)}
}

// ReadBlock fetches one cache block from local memory (through its home
// LLC bank); done runs when the data is at the NI.
func (d *DataPath) ReadBlock(addr uint64, done func()) {
	txn := d.next(done)
	m := noc.NewMessage()
	m.VN, m.Class = noc.VNReq, noc.ClassRequest
	m.Src, m.Dst = d.id, d.env.HomeOf(addr)
	m.Flits, m.Kind, m.Addr, m.Txn = 1, coherence.KNIRead, addr, txn
	d.out.Send(m)
}

// WriteBlock stores one cache block to local memory (allocating in the home
// LLC bank); done runs when the write is acknowledged.
func (d *DataPath) WriteBlock(addr uint64, done func()) {
	txn := d.next(done)
	m := noc.NewMessage()
	m.VN, m.Class = noc.VNReq, noc.ClassRequest
	m.Src, m.Dst = d.id, d.env.HomeOf(addr)
	m.Flits, m.Kind, m.Addr, m.Txn = d.env.Cfg.BlockFlits(), coherence.KNIWrite, addr, txn
	d.out.Send(m)
}

// Handle consumes (and releases) KNIReadResp/KNIWriteAck messages for this
// endpoint.
func (d *DataPath) Handle(m *noc.Message) {
	txn := m.Txn
	if txn == 0 || txn > uint64(len(d.pending)) || d.pending[txn-1] == nil {
		panic(fmt.Sprintf("datapath %d: unmatched txn %d", d.id, txn))
	}
	done := d.pending[txn-1]
	d.pending[txn-1] = nil
	d.free = append(d.free, txn)
	noc.Release(m)
	done()
}

// next parks done in a free demux slot and returns its transaction id.
func (d *DataPath) next(done func()) uint64 {
	if n := len(d.free); n > 0 {
		txn := d.free[n-1]
		d.free = d.free[:n-1]
		d.pending[txn-1] = done
		return txn
	}
	d.pending = append(d.pending, done)
	return uint64(len(d.pending))
}

// Reset drops every outstanding access (their completion events are
// cleared with the engine by the run lifecycle that calls this), restarts
// the transaction ids and drains the injection port.
func (d *DataPath) Reset() {
	for i := range d.pending {
		d.pending[i] = nil
	}
	d.pending = d.pending[:0]
	d.free = d.free[:0]
	d.out.Reset()
}
