// Package core implements the paper's primary contribution: the soNUMA
// Remote Memory Controller (RMC) and its three manycore placements —
// NIedge, NIper-tile and NIsplit (§3, §4).
//
// The RMC consists of three independent pipelines (§4.1):
//
//   - RGP, the Request Generation Pipeline: polls the Work Queues (WQs),
//     unrolls multi-block requests into cache-block-sized transfers, and
//     injects request packets into the network router.
//   - RCP, the Request Completion Pipeline: receives response packets,
//     stores remote data into local memory, and notifies the application
//     through the Completion Queue (CQ) when a request's last block lands.
//   - RRPP, the Remote Request Processing Pipeline: services incoming
//     remote requests against local memory.
//
// The RGP and RCP are each split into a frontend (QP interaction) and a
// backend (data handling). In NIedge and NIper-tile the two halves are
// connected by a pipeline latch; in NIsplit the Frontend-Backend Interface
// is a NOC packet (§4.2), which is what lets the frontends sit next to the
// cores while the backends scale across the chip's edge.
package core

import (
	"fmt"

	"rackni/internal/config"
)

// Op is the one-sided operation type of a WQ entry.
type Op uint8

const (
	// OpRead is a one-sided remote read.
	OpRead Op = iota
	// OpWrite is a one-sided remote write.
	OpWrite
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Times collects the per-request timestamps used to reproduce the latency
// tomography of Tables 1 and 3.
type Times struct {
	IssueStart int64 // core starts building the WQ entry
	WQWritten  int64 // the WQ store is globally visible
	WQSeen     int64 // the RGP frontend has read the entry
	Dispatched int64 // the RGP backend holds the entry (post Frontend-Backend Interface)
	Injected   int64 // first request packet handed to the network router
	RespFirst  int64 // first response packet back on chip
	DataDone   int64 // last payload block written to local memory
	CQWritten  int64 // CQ entry visible to the core
	Done       int64 // core consumed the completion
}

// Request is one application-level one-sided operation, possibly spanning
// many cache blocks.
type Request struct {
	ID         uint64
	Core       int
	Op         Op
	RemoteAddr uint64
	LocalAddr  uint64
	Size       int
	Tag        uint64 // application-chosen identifier, echoed at completion

	// Failed marks a request whose transfer was abandoned after exhausting
	// its retry budget (or NACKed by the fabric with retries disabled). A
	// failed request still completes through the CQ so the application can
	// observe the failure instead of waiting forever.
	Failed bool

	T Times

	blocksLeft int
	wqSlot     int
}

// Blocks returns the number of cache-block transfers the request unrolls
// into.
func (r *Request) Blocks(blockBytes int) int {
	n := r.Size / blockBytes
	if r.Size%blockBytes != 0 || n == 0 {
		n++
	}
	return n
}

// WQEntry is the logical content of a Work Queue slot. Its on-chip
// visibility is governed by the simulated coherence protocol: the producer
// publishes it when its store completes, the RGP frontend observes it when
// its coherent read of the containing block completes.
type WQEntry struct {
	Valid bool
	Req   *Request
}

// CQEntry is the logical content of a Completion Queue slot.
type CQEntry struct {
	Valid bool
	Req   *Request
}

// QueuePair is one core's WQ/CQ pair: the in-memory control structures
// through which cores and the RMC communicate (§2.2). Entries are logical
// records; the queue's memory footprint (entry sizes, blocks spanned) is
// what the coherence protocol sees.
type QueuePair struct {
	CoreID int
	WQBase uint64
	CQBase uint64

	cfg        *config.Config
	wq         []WQEntry
	cq         []CQEntry
	wqHead     int // producer (core)
	wqTail     int // consumer (RGP frontend)
	cqHead     int // producer (RCP frontend)
	cqTail     int // consumer (core)
	inFlight   int
	window     int // in-flight credit cap (≤ WQ depth)
	everQueued uint64

	// wqBuf/cqBuf back the slices PopWQ/PopCQ return, reused across calls;
	// each consumer finishes with a batch before polling again.
	wqBuf []*Request
	cqBuf []*Request
}

// NewQueuePair builds a QP with the configured WQ/CQ geometry at the given
// base addresses.
func NewQueuePair(cfg *config.Config, coreID int, wqBase, cqBase uint64) *QueuePair {
	window := cfg.WQEntries
	if cfg.QPWindow > 0 && cfg.QPWindow < window {
		window = cfg.QPWindow
	}
	return &QueuePair{
		CoreID: coreID,
		WQBase: wqBase,
		CQBase: cqBase,
		cfg:    cfg,
		wq:     make([]WQEntry, cfg.WQEntries),
		cq:     make([]CQEntry, cfg.WQEntries),
		window: window,
	}
}

// WQSlotAddr returns the byte address of a WQ slot.
func (q *QueuePair) WQSlotAddr(i int) uint64 {
	return q.WQBase + uint64(i)*uint64(q.cfg.WQEntryB)
}

// CQSlotAddr returns the byte address of a CQ slot.
func (q *QueuePair) CQSlotAddr(i int) uint64 {
	return q.CQBase + uint64(i)*uint64(q.cfg.CQEntryB)
}

// WQHeadAddr is the address the producer will store to next.
func (q *QueuePair) WQHeadAddr() uint64 { return q.WQSlotAddr(q.wqHead) }

// WQTailAddr is the address the RGP frontend polls.
func (q *QueuePair) WQTailAddr() uint64 { return q.WQSlotAddr(q.wqTail) }

// CQTailAddr is the address the core polls for completions.
func (q *QueuePair) CQTailAddr() uint64 { return q.CQSlotAddr(q.cqTail) }

// Full reports whether the QP can admit no further request: either the WQ
// has no free slot (128 outstanding, §5) or the configured credit window
// (Config.QPWindow) is exhausted. Issuers check Full before PushWQ, so the
// window is admission control at the issue boundary.
func (q *QueuePair) Full() bool { return q.inFlight >= q.window }

// Window returns the QP's in-flight credit cap (the WQ depth when no
// tighter window is configured).
func (q *QueuePair) Window() int { return q.window }

// InFlight returns the number of requests issued but not yet consumed from
// the CQ.
func (q *QueuePair) InFlight() int { return q.inFlight }

// PushWQ publishes a new WQ entry; call when the producing store completes.
func (q *QueuePair) PushWQ(r *Request) {
	if q.Full() {
		panic(fmt.Sprintf("qp %d: WQ overflow", q.CoreID))
	}
	r.wqSlot = q.wqHead
	q.wq[q.wqHead] = WQEntry{Valid: true, Req: r}
	q.wqHead = (q.wqHead + 1) % len(q.wq)
	q.inFlight++
	q.everQueued++
}

// WQBlockHasNew reports whether the block containing the consumer tail has
// an unconsumed valid entry (what a frontend's coherent read of the tail
// block can observe).
func (q *QueuePair) WQBlockHasNew() bool {
	return q.wq[q.wqTail].Valid
}

// PopWQ consumes entries visible in the block the frontend just read; it
// returns the consumed requests (possibly several per block, one of the
// NIedge small-transfer effects of §6.2).
func (q *QueuePair) PopWQ() []*Request {
	blk := q.WQTailAddr() &^ uint64(q.cfg.BlockBytes-1)
	out := q.wqBuf[:0]
	for q.wq[q.wqTail].Valid {
		slotBlk := q.WQSlotAddr(q.wqTail) &^ uint64(q.cfg.BlockBytes-1)
		if slotBlk != blk {
			break // next block: requires another coherent read
		}
		e := q.wq[q.wqTail]
		q.wq[q.wqTail] = WQEntry{}
		out = append(out, e.Req)
		q.wqTail = (q.wqTail + 1) % len(q.wq)
	}
	q.wqBuf = out
	return out
}

// PushCQ publishes a completion; call when the RCP frontend's CQ store
// completes.
func (q *QueuePair) PushCQ(r *Request) {
	q.PushCQAt(q.ReserveCQ(), r)
}

// ReserveCQ allocates the next CQ slot for an in-flight completion store,
// so concurrent completions do not collide on the head pointer.
func (q *QueuePair) ReserveCQ() int {
	s := q.cqHead
	q.cqHead = (q.cqHead + 1) % len(q.cq)
	return s
}

// PushCQAt publishes a completion into a previously reserved slot.
func (q *QueuePair) PushCQAt(slot int, r *Request) {
	q.cq[slot] = CQEntry{Valid: true, Req: r}
}

// PopCQ consumes completions visible in the block the core just read.
func (q *QueuePair) PopCQ() []*Request {
	blk := q.CQTailAddr() &^ uint64(q.cfg.BlockBytes-1)
	out := q.cqBuf[:0]
	for q.cq[q.cqTail].Valid {
		slotBlk := q.CQSlotAddr(q.cqTail) &^ uint64(q.cfg.BlockBytes-1)
		if slotBlk != blk {
			break
		}
		e := q.cq[q.cqTail]
		q.cq[q.cqTail] = CQEntry{}
		out = append(out, e.Req)
		q.cqTail = (q.cqTail + 1) % len(q.cq)
		q.inFlight--
	}
	q.cqBuf = out
	return out
}

// EverQueued returns the total number of requests ever enqueued (tests).
func (q *QueuePair) EverQueued() uint64 { return q.everQueued }

// Reset returns the queue pair to its just-built emptiness: all entries
// dropped (in-flight requests are abandoned — their pipeline events are
// cleared with the engine by the run lifecycle that calls this), head and
// tail pointers rewound, the in-flight count zeroed.
func (q *QueuePair) Reset() {
	for i := range q.wq {
		q.wq[i] = WQEntry{}
	}
	for i := range q.cq {
		q.cq[i] = CQEntry{}
	}
	q.wqHead, q.wqTail, q.cqHead, q.cqTail = 0, 0, 0, 0
	q.inFlight = 0
	q.everQueued = 0
}
