package core

import (
	"testing"

	"rackni/internal/config"
	"rackni/internal/noc"
)

// retryEnv builds an Env with timeouts armed plus an RGP backend whose
// network port swallows outbound traffic — enough to drive the retrier's
// track/ack/timeout machinery without a remote end.
func retryEnv(t *testing.T, timeout int64, maxRetries, backoffMax int) (*Env, *RGPBackend) {
	t.Helper()
	env, mesh := dpEnv(t)
	env.Cfg.ReqTimeout = timeout
	env.Cfg.MaxRetries = maxRetries
	env.Cfg.RetryBackoffMax = backoffMax
	ni := noc.NIID(0)
	b := NewRGPBackend(env, ni, noc.NetID(0), ni, 1, NewDataPath(env, ni))
	mesh.Register(noc.NetID(0), func(m *noc.Message) { noc.Release(m) })
	mesh.Register(ni, func(m *noc.Message) { noc.Release(m) })
	return env, b
}

// TestRetrierTrackAck: a tracked attempt acks exactly once under its
// RetryID; the slot recycles LIFO with a bumped generation so a stale id
// can never retire a successor.
func TestRetrierTrackAck(t *testing.T) {
	_, b := retryEnv(t, 1000, 3, 4)
	tr := b.Retrier()
	if tr == nil {
		t.Fatal("ReqTimeout > 0 but the backend built no retrier")
	}
	nr := newNetReq()
	nr.Req = &Request{ID: 1}
	tr.Track(nr, 0x100, 2)
	if tr.Live() != 1 || nr.Ret != tr {
		t.Fatalf("tracked attempt not live: live=%d ret=%v", tr.Live(), nr.Ret)
	}
	id := nr.RetryID
	if !tr.Ack(id) {
		t.Fatal("first Ack rejected")
	}
	if tr.Ack(id) {
		t.Fatal("second Ack of the same attempt accepted")
	}
	if tr.Live() != 0 {
		t.Fatalf("live=%d after ack", tr.Live())
	}
	// The freed slot recycles with a higher generation: the old id is dead.
	nr2 := newNetReq()
	nr2.Req = &Request{ID: 2}
	tr.Track(nr2, 0x200, 2)
	if nr2.RetryID == id {
		t.Fatal("recycled slot reissued the retired RetryID")
	}
	if tr.Ack(id) {
		t.Fatal("stale RetryID acked the recycled slot")
	}
	if !tr.Ack(nr2.RetryID) {
		t.Fatal("fresh attempt failed to ack")
	}
	if tr.Ack(retryID(99, 1)) {
		t.Fatal("out-of-range slot acked")
	}
}

// TestRetrierTimeoutRetransmitAndFail: an unacked block is retransmitted
// MaxRetries times with exponential backoff, then the request fails
// permanently through the OnFail sink — total transmissions 1+MaxRetries,
// deterministic deadlines, no events left once everything is dead.
func TestRetrierTimeoutRetransmitAndFail(t *testing.T) {
	env, b := retryEnv(t, 100, 2, 4)
	var failed []*Request
	b.OnFail(func(r *Request) { failed = append(failed, r) })
	r := &Request{ID: 7, Core: 0, Op: OpRead, RemoteAddr: 0x1000, Size: 64}
	b.Accept(r)
	env.Eng.RunAll()
	// Timeline: inject @~0, retransmit @100 (backoff 100<<1=200), retransmit
	// @300 (backoff 400), fail @700. Two retransmissions = MaxRetries.
	if env.Stats.Retries != 2 {
		t.Fatalf("Retries=%d, want 2", env.Stats.Retries)
	}
	if len(failed) != 1 || failed[0] != r {
		t.Fatalf("OnFail saw %v, want exactly the accepted request", failed)
	}
	if b.Retrier().Live() != 0 {
		t.Fatalf("failed request left %d live attempts", b.Retrier().Live())
	}
	if env.Eng.Pending() != 0 {
		t.Fatalf("%d events still pending after permanent failure", env.Eng.Pending())
	}
}

// TestRetrierMultiBlockCancel: when one block of a request exhausts its
// budget, its sibling attempts are cancelled too — the request fails once
// and stops consuming fabric, and later scans don't re-fail it.
func TestRetrierMultiBlockCancel(t *testing.T) {
	env, b := retryEnv(t, 100, 1, 4)
	var fails int
	b.OnFail(func(*Request) { fails++ })
	r := &Request{ID: 9, Core: 0, Op: OpRead, RemoteAddr: 0x1000, Size: 256} // 4 blocks
	b.Accept(r)
	env.Eng.RunAll()
	if fails != 1 {
		t.Fatalf("request failed %d times, want once", fails)
	}
	if b.Retrier().Live() != 0 {
		t.Fatalf("cancelled request left %d live attempts", b.Retrier().Live())
	}
}

// TestRetrierReset: Reset drops all tracked attempts AND rewinds slot
// generations, so a reused node hands out the same RetryIDs as a fresh
// one — the bit-identity the Session lifecycle demands.
func TestRetrierReset(t *testing.T) {
	_, b := retryEnv(t, 1000, 3, 4)
	tr := b.Retrier()
	first := make([]uint64, 3)
	for i := range first {
		nr := newNetReq()
		nr.Req = &Request{ID: uint64(i)}
		tr.Track(nr, uint64(0x100*i), 1)
		first[i] = nr.RetryID
	}
	b.Reset()
	if tr.Live() != 0 {
		t.Fatalf("reset retrier still tracks %d attempts", tr.Live())
	}
	for i := range first {
		nr := newNetReq()
		nr.Req = &Request{ID: uint64(i)}
		tr.Track(nr, uint64(0x100*i), 1)
		if nr.RetryID != first[i] {
			t.Fatalf("post-reset RetryID %d = %#x, fresh run had %#x", i, nr.RetryID, first[i])
		}
	}
}

// TestNoRetrierWithoutTimeout: ReqTimeout 0 must build no retrier and
// schedule no scan events — the lossless fast path stays untouched.
func TestNoRetrierWithoutTimeout(t *testing.T) {
	env, mesh := dpEnv(t)
	ni := noc.NIID(0)
	b := NewRGPBackend(env, ni, noc.NetID(0), ni, 1, NewDataPath(env, ni))
	mesh.Register(noc.NetID(0), func(m *noc.Message) { noc.Release(m) })
	if b.Retrier() != nil {
		t.Fatal("ReqTimeout 0 built a retrier")
	}
	b.Accept(&Request{ID: 1, Op: OpRead, RemoteAddr: 0x1000, Size: 64})
	env.Eng.RunAll()
}

// TestQueuePairWindow: QPWindow caps admission below the WQ depth;
// 0 (or anything >= WQEntries) keeps the WQ-depth-only bound.
func TestQueuePairWindow(t *testing.T) {
	cfg := config.Default()
	cfg.QPWindow = 2
	q := NewQueuePair(&cfg, 0, 0x4000_0000, 0x4000_8000)
	if q.Window() != 2 {
		t.Fatalf("Window()=%d, want 2", q.Window())
	}
	q.PushWQ(req(1))
	if q.Full() {
		t.Fatal("window 2 full after one request")
	}
	q.PushWQ(req(2))
	if !q.Full() {
		t.Fatal("window 2 not full at two in-flight")
	}
	// Retiring one in-flight request reopens the window.
	q.PopWQ()
	q.PushCQ(req(1))
	q.PopCQ()
	if q.Full() {
		t.Fatal("window still full after one completion")
	}

	cfg.QPWindow = 0
	u := NewQueuePair(&cfg, 0, 0x4100_0000, 0x4100_8000)
	if u.Window() != cfg.WQEntries {
		t.Fatalf("uncapped Window()=%d, want WQEntries %d", u.Window(), cfg.WQEntries)
	}
	cfg.QPWindow = cfg.WQEntries * 2
	o := NewQueuePair(&cfg, 0, 0x4200_0000, 0x4200_8000)
	if o.Window() != cfg.WQEntries {
		t.Fatalf("oversized window %d not clamped to WQ depth %d", o.Window(), cfg.WQEntries)
	}
}
