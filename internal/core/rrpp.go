package core

import "rackni/internal/noc"

// RRPP is the Remote Request Processing Pipeline: it services incoming
// remote requests by reading or writing local memory and responding
// (§4.1). RRPPs never interact with the cores, so every design places them
// at the chip's edge next to the network router (§4.2), one per row, with
// incoming traffic address-interleaved across them so each request ejects
// at the row of its home LLC tile (§4.3).
type RRPP struct {
	env     *Env
	id      noc.NodeID
	netPort noc.NodeID
	procLat int64
	data    *DataPath
	out     *noc.Outbox

	jobFree []*rrppJob

	// Serviced counts completed inbound requests.
	Serviced int64
}

// rrppJob carries one inbound request through the pipeline's stages. Jobs
// are recycled per RRPP, and each job's data-path completion callback is
// built once and reused with it, so steady-state service allocates
// nothing.
type rrppJob struct {
	p      *RRPP
	op     Op
	addr   uint64
	txn    uint64
	src    int64 // requesting node's tag, echoed on the response
	t0     int64
	doneFn func()
}

// NewRRPP builds the RRPP at endpoint id, responding through netPort.
func NewRRPP(env *Env, id, netPort noc.NodeID, data *DataPath) *RRPP {
	return &RRPP{
		env: env, id: id, netPort: netPort,
		procLat: int64(env.Cfg.TranslationLat + env.Cfg.RRPPLat),
		data:    data,
		out:     newOutbox(env, id),
	}
}

// Reset zeroes the service counter and drains the response port. Jobs of
// in-flight services are abandoned — their events are cleared with the
// engine by the run lifecycle that calls this.
func (p *RRPP) Reset() {
	p.Serviced = 0
	p.out.Reset()
}

func (p *RRPP) newJob(op Op, addr, txn uint64, src, t0 int64) *rrppJob {
	if n := len(p.jobFree); n > 0 {
		j := p.jobFree[n-1]
		p.jobFree = p.jobFree[:n-1]
		j.op, j.addr, j.txn, j.src, j.t0 = op, addr, txn, src, t0
		return j
	}
	j := &rrppJob{p: p, op: op, addr: addr, txn: txn, src: src, t0: t0}
	j.doneFn = j.done
	return j
}

// HandleInbound services one KNetInbound request (releasing the packet).
// The service latency (arrival to response injection) is recorded; the
// rack emulation uses the local node's measured RRPP latency as the remote
// node's, exactly as the paper's methodology prescribes (§5). The packet's
// B field is the requesting node's tag (zero under the single-node mirror
// emulation); the RRPP echoes it on its response so the inter-node fabric
// can validate who a response belongs to.
func (p *RRPP) HandleInbound(m *noc.Message) {
	j := p.newJob(Op(m.A), m.Addr, m.Txn, m.B, p.env.Now())
	noc.Release(m)
	p.env.Eng.Post(p.procLat, rrppStartEv, p, j, 0)
}

// rrppStartEv issues the job's local memory access after the pipeline's
// processing latency.
func rrppStartEv(a, b any, _ int64) {
	p := a.(*RRPP)
	j := b.(*rrppJob)
	switch j.op {
	case OpRead:
		p.data.ReadBlock(j.addr, j.doneFn)
	case OpWrite:
		p.data.WriteBlock(j.addr, j.doneFn)
	}
}

// done completes a job once its memory access finishes.
func (j *rrppJob) done() {
	p := j.p
	if j.op == OpRead {
		p.respond(j.txn, p.env.Cfg.BlockFlits(), j.src, j.t0)
		p.env.Stats.RRPPBytes += int64(p.env.Cfg.BlockBytes)
	} else {
		p.respond(j.txn, 1, j.src, j.t0)
	}
	p.jobFree = append(p.jobFree, j)
}

func (p *RRPP) respond(txn uint64, flits int, src, t0 int64) {
	p.Serviced++
	p.env.Stats.RRPPLat.Add(p.env.Now() - t0)
	m := noc.NewMessage()
	m.VN, m.Class = noc.VNResp, noc.ClassResponse
	m.Src, m.Dst = p.id, p.netPort
	m.Flits, m.Kind, m.Txn, m.B = flits, KNetOutbound, txn, src
	p.out.Send(m)
}
