package core

import "rackni/internal/noc"

// RRPP is the Remote Request Processing Pipeline: it services incoming
// remote requests by reading or writing local memory and responding
// (§4.1). RRPPs never interact with the cores, so every design places them
// at the chip's edge next to the network router (§4.2), one per row, with
// incoming traffic address-interleaved across them so each request ejects
// at the row of its home LLC tile (§4.3).
type RRPP struct {
	env     *Env
	id      noc.NodeID
	netPort noc.NodeID
	procLat int64
	data    *DataPath
	out     *outbox

	// Serviced counts completed inbound requests.
	Serviced int64
}

// NewRRPP builds the RRPP at endpoint id, responding through netPort.
func NewRRPP(env *Env, id, netPort noc.NodeID, data *DataPath) *RRPP {
	return &RRPP{
		env: env, id: id, netPort: netPort,
		procLat: int64(env.Cfg.TranslationLat + env.Cfg.RRPPLat),
		data:    data,
		out:     newOutbox(env, id),
	}
}

// HandleInbound services one KNetInbound request. The service latency
// (arrival to response injection) is recorded; the rack emulation uses the
// local node's measured RRPP latency as the remote node's, exactly as the
// paper's methodology prescribes (§5).
func (p *RRPP) HandleInbound(m *noc.Message) {
	t0 := p.env.Now()
	op := Op(m.A)
	addr := m.Addr
	txn := m.Txn
	p.env.Eng.Schedule(p.procLat, func() {
		switch op {
		case OpRead:
			p.data.ReadBlock(addr, func() {
				p.respond(txn, p.env.Cfg.BlockFlits(), t0)
				p.env.Stats.RRPPBytes += int64(p.env.Cfg.BlockBytes)
			})
		case OpWrite:
			p.data.WriteBlock(addr, func() {
				p.respond(txn, 1, t0)
			})
		}
	})
}

func (p *RRPP) respond(txn uint64, flits int, t0 int64) {
	p.Serviced++
	p.env.Stats.RRPPLat.Add(p.env.Now() - t0)
	m := &noc.Message{
		VN: noc.VNResp, Class: noc.ClassResponse,
		Src: p.id, Dst: p.netPort,
		Flits: flits, Kind: KNetOutbound, Txn: txn,
	}
	p.out.send(m)
}
