package core

import "rackni/internal/coherence"

// NISideCache adapts the NI side of a tile's cache complex to the QPCache
// interface (the per-tile and split designs, §3.4).
type NISideCache struct {
	Agent *coherence.Agent
}

// Read polls a QP block through the NI cache.
func (c NISideCache) Read(addr uint64, done func()) { c.Agent.NISideRead(addr, done) }

// Write stores a QP block through the NI cache.
func (c NISideCache) Write(addr uint64, done func()) { c.Agent.NISideWrite(addr, done) }

// EdgeCache adapts a standalone edge NI cache (the NIedge design, where the
// NI cache has its own tile ID and participates in coherence like an L1).
type EdgeCache struct {
	Agent *coherence.Agent
}

// Read polls a QP block through the edge NI cache.
func (c EdgeCache) Read(addr uint64, done func()) { c.Agent.NISideRead(addr, done) }

// Write stores a QP block through the edge NI cache.
func (c EdgeCache) Write(addr uint64, done func()) { c.Agent.NISideWrite(addr, done) }
