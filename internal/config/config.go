// Package config holds the simulated system's parameters. The defaults
// reproduce Table 2 of the paper ("System parameters for simulation on
// Flexus") and the microbenchmark parameters of §5.
package config

import "fmt"

// Design selects one of the three manycore NI architectures studied by the
// paper (§3), plus the idealized NUMA projection used as the baseline.
type Design int

const (
	// NIEdge places all NI logic (RGP/RCP/RRPP) at edge tiles along one
	// dimension of the NOC (§3.1).
	NIEdge Design = iota
	// NIPerTile collocates a full RGP/RCP pair with every core; RRPPs stay
	// at the edge (§3.2).
	NIPerTile
	// NISplit replicates RGP/RCP frontends per tile and RGP/RCP backends at
	// the edge (§3.3) — the paper's proposed design.
	NISplit
	// NUMA is the idealized hardware load/store baseline; it is evaluated
	// analytically (the paper calls it "NUMA projection").
	NUMA
)

func (d Design) String() string {
	switch d {
	case NIEdge:
		return "NI_edge"
	case NIPerTile:
		return "NI_per-tile"
	case NISplit:
		return "NI_split"
	case NUMA:
		return "NUMA"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Topology selects the on-chip interconnect.
type Topology int

const (
	// Mesh is the baseline 2D mesh (1 tile per core).
	Mesh Topology = iota
	// NOCOut is the latency-optimized scale-out NOC of §6.3: an LLC row in
	// the middle of the chip richly interconnected by a flattened
	// butterfly, with per-column reduction/dispersion trees to the cores.
	NOCOut
)

func (t Topology) String() string {
	switch t {
	case Mesh:
		return "mesh"
	case NOCOut:
		return "NOC-Out"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// Routing selects the mesh routing policy (§4.3).
type Routing int

const (
	// RoutingXY is dimension-order XY routing.
	RoutingXY Routing = iota
	// RoutingYX is dimension-order YX routing.
	RoutingYX
	// RoutingO1Turn picks XY or YX pseudo-randomly per packet.
	RoutingO1Turn
	// RoutingCDR is class-based deterministic routing: memory requests YX,
	// responses XY (Abts et al.).
	RoutingCDR
	// RoutingCDRNI is the paper's modified CDR: directory-sourced traffic
	// is routed YX, everything else XY, so traffic never turns at the
	// chip's NI/MC edge columns.
	RoutingCDRNI
)

func (r Routing) String() string {
	switch r {
	case RoutingXY:
		return "XY"
	case RoutingYX:
		return "YX"
	case RoutingO1Turn:
		return "O1Turn"
	case RoutingCDR:
		return "CDR"
	case RoutingCDRNI:
		return "CDR+NI"
	}
	return fmt.Sprintf("Routing(%d)", int(r))
}

// Config is the full parameter set for one simulated node and its rack.
type Config struct {
	// --- Chip geometry ---
	MeshWidth  int // tiles per row (8)
	MeshHeight int // tiles per column (8)

	// --- Clock ---
	ClockGHz float64 // 2.0; one cycle = 0.5 ns

	// --- Caches (Table 2) ---
	L1Latency     int // 3 cycles (tag+data)
	L1SizeBytes   int // 32 KB
	L1Ways        int // 2
	L1MSHRs       int // 32
	LLCLatency    int // 6 cycles per bank access
	LLCSizeBytes  int // 16 MB total
	LLCWays       int // 16
	BlockBytes    int // 64
	NICacheBlocks int // NI cache capacity in blocks (holds QP entries)
	NITransferLat int // L1 <-> NI cache back-side transfer (5 cycles)
	DirectoryLat  int // directory lookup, folded into LLC bank latency

	// --- NOC (Table 2) ---
	LinkBytes    int     // 16-byte links
	HopLatency   int     // 3 cycles per mesh hop (router+link pipeline)
	LinkBufFlits int     // per-VN output buffer depth, in flits
	Routing      Routing // mesh routing policy
	Topology     Topology

	// NOC-Out parameters (§6.3, Table 2).
	NOCOutLLCTiles int // 8 LLC tiles in the middle row
	NOCOutFBCycle  int // flattened butterfly: 2 tiles per cycle
	NOCOutTreeLat  int // tree networks: 1 cycle per hop

	// --- Memory ---
	MemLatencyNS float64 // 50 ns DRAM latency
	MemPerRow    bool    // one MC per row on the edge opposite the NIs

	// --- NI / RMC ---
	Design         Design
	RRPPPerRow     int // 1 RRPP per row (8 total)
	RGPFrontendLat int // frontend processing (4 cycles in Table 3)
	RGPBackendLat  int // backend processing (4 cycles)
	RGPUnifiedLat  int // monolithic RGP processing (7 cycles, NIedge/per-tile)
	RCPFrontendLat int // CQ-side frontend processing (8 cycles)
	RCPBackendLat  int // response-side backend processing (4 cycles)
	RCPUnifiedLat  int // monolithic RCP processing (11 cycles)
	RRPPLat        int // RRPP protocol processing per request (3 cycles)
	UnrollPerCycle int // requests unrolled per cycle (1)
	ReqHeaderFlits int // network request packet size on the NOC (2 flits)
	TranslationLat int // fixed TLB/translation stage latency (1 cycle)

	// --- Software overheads (§3.1/§6.1.1) ---
	WQWriteExec int // instruction-execution cycles to build a WQ entry (13)
	CQReadExec  int // instruction-execution cycles to consume a CQ entry (10)
	WQEntries   int // 128-entry WQ
	WQEntryB    int // WQ entry size in bytes (16 -> 4 entries per block)
	CQEntryB    int // CQ entry size in bytes (8 -> 8 entries per block)
	PollPeriod  int // cycles between NI polls of an unchanged (cached) queue head

	// --- Rack / inter-node network (§5) ---
	NetHopNS    float64 // fixed 35 ns per intra-rack hop
	TorusNodes  int     // 512-node 3D torus
	TorusRadix  int     // 8 (8x8x8)
	DefaultHops int     // hops used for single-node studies (1)

	// --- Reliability / flow control ---
	// ReqTimeout is the per-block request timeout in cycles: an unacked
	// network request retransmits after this many cycles (with exponential
	// backoff). 0 disables timeouts and retries — the fabric is assumed
	// lossless, today's behavior.
	ReqTimeout int64
	// MaxRetries bounds retransmissions per block; when exhausted the
	// whole request completes as permanently failed.
	MaxRetries int
	// RetryBackoffMax caps the exponential-backoff shift: retransmission
	// k waits ReqTimeout << min(k-1, RetryBackoffMax) cycles.
	RetryBackoffMax int
	// QPWindow caps in-flight requests per queue pair (credit-based
	// admission control at the issue boundary). 0, or any value at or
	// above WQEntries, means the WQ depth is the only bound — today's
	// behavior.
	QPWindow int

	// --- Link-level congestion (inter-node fabric) ---
	// LinkCredits is the per-directed-torus-link credit pool when the
	// congestion-faithful fabric is enabled: at most this many blocks may
	// occupy one link at once; excess arrivals queue at the router. 0
	// falls back to DefaultLinkCredits. Ignored by the lump-sum fabric.
	LinkCredits int
	// LinkFlitCycles is the link serializer's cycles per flit under the
	// congestion-faithful fabric: consecutive blocks on one link start at
	// least flits*LinkFlitCycles apart, so an unloaded hop still costs
	// exactly NetHopCycles (cut-through) while sustained load queues. 0
	// falls back to DefaultLinkFlitCycles.
	LinkFlitCycles int

	// --- Simulation control ---
	Seed           uint64
	WindowCycles   int64   // bandwidth monitoring window (500K in the paper)
	StableDelta    float64 // stop when consecutive windows differ by < this (0.01)
	MaxCycles      int64   // hard cap per run
	WarmupRequests int     // sync-latency runs: requests discarded as warmup
	MeasureReqs    int     // sync-latency runs: measured requests
}

// DefaultReqTimeout is the timeout sweeps arm when a fault axis is enabled
// without an explicit ReqTimeout: generous enough to sit far above any
// legitimate round trip (512-node torus worst case plus queueing), small
// enough that retries finish within default cycle budgets.
const DefaultReqTimeout int64 = 20_000

// Defaults the congestion-faithful fabric falls back to when the link knobs
// are left zero: 4 blocks in flight per directed torus link, and a
// serializer matched to the 16-byte link at 2 GHz (one flit per 8 cycles:
// a 5-flit block response occupies a link's serializer for 40 cycles, so a
// single link sustains one response every 40 cycles — the capacity incast
// fan-ins overrun).
const (
	DefaultLinkCredits    = 4
	DefaultLinkFlitCycles = 8
)

// Default returns the paper's Table 2 configuration.
func Default() Config {
	return Config{
		MeshWidth:  8,
		MeshHeight: 8,
		ClockGHz:   2.0,

		L1Latency:     3,
		L1SizeBytes:   32 << 10,
		L1Ways:        2,
		L1MSHRs:       32,
		LLCLatency:    6,
		LLCSizeBytes:  16 << 20,
		LLCWays:       16,
		BlockBytes:    64,
		NICacheBlocks: 256,
		NITransferLat: 5,
		DirectoryLat:  0, // folded into LLCLatency

		LinkBytes:    16,
		HopLatency:   3,
		LinkBufFlits: 16,
		Routing:      RoutingCDRNI,
		Topology:     Mesh,

		NOCOutLLCTiles: 8,
		NOCOutFBCycle:  2,
		NOCOutTreeLat:  1,

		MemLatencyNS: 50,
		MemPerRow:    true,

		Design:         NISplit,
		RRPPPerRow:     1,
		RGPFrontendLat: 4,
		RGPBackendLat:  4,
		RGPUnifiedLat:  7,
		RCPFrontendLat: 8,
		RCPBackendLat:  4,
		RCPUnifiedLat:  11,
		RRPPLat:        3,
		UnrollPerCycle: 1,
		ReqHeaderFlits: 2,
		TranslationLat: 1,

		WQWriteExec: 13,
		CQReadExec:  10,
		WQEntries:   128,
		WQEntryB:    16,
		CQEntryB:    8,
		PollPeriod:  1,

		NetHopNS:    35,
		TorusNodes:  512,
		TorusRadix:  8,
		DefaultHops: 1,

		ReqTimeout:      0, // lossless fabric: no timeouts
		MaxRetries:      3,
		RetryBackoffMax: 4,
		QPWindow:        0, // WQ depth is the only in-flight bound

		LinkCredits:    DefaultLinkCredits,
		LinkFlitCycles: DefaultLinkFlitCycles,

		Seed:           1,
		WindowCycles:   100_000,
		StableDelta:    0.02,
		MaxCycles:      3_000_000,
		WarmupRequests: 8,
		MeasureReqs:    64,
	}
}

// Tiles returns the number of mesh tiles (cores).
func (c *Config) Tiles() int { return c.MeshWidth * c.MeshHeight }

// MemLatencyCycles converts the DRAM latency to core cycles.
func (c *Config) MemLatencyCycles() int64 {
	return int64(c.MemLatencyNS * c.ClockGHz)
}

// NetHopCycles converts the intra-rack per-hop latency to core cycles
// (70 cycles at 2 GHz and 35 ns).
func (c *Config) NetHopCycles() int64 {
	return int64(c.NetHopNS * c.ClockGHz)
}

// BlockFlits returns the number of link flits occupied by a message carrying
// one cache block plus a header flit.
func (c *Config) BlockFlits() int {
	return c.BlockBytes/c.LinkBytes + 1
}

// NsPerCycle returns nanoseconds per core cycle.
func (c *Config) NsPerCycle() float64 { return 1.0 / c.ClockGHz }

// Validate reports configuration errors early instead of letting them
// surface as simulator misbehavior.
func (c *Config) Validate() error {
	switch {
	case c.MeshWidth <= 0 || c.MeshHeight <= 0:
		return fmt.Errorf("config: bad mesh %dx%d", c.MeshWidth, c.MeshHeight)
	case c.BlockBytes <= 0 || c.BlockBytes%c.LinkBytes != 0:
		return fmt.Errorf("config: block size %dB not a multiple of link width %dB", c.BlockBytes, c.LinkBytes)
	case c.WQEntryB <= 0 || c.BlockBytes%c.WQEntryB != 0:
		return fmt.Errorf("config: WQ entry %dB must divide block size", c.WQEntryB)
	case c.CQEntryB <= 0 || c.BlockBytes%c.CQEntryB != 0:
		return fmt.Errorf("config: CQ entry %dB must divide block size", c.CQEntryB)
	case c.WQEntries <= 0:
		return fmt.Errorf("config: WQEntries must be positive")
	case c.ClockGHz <= 0:
		return fmt.Errorf("config: ClockGHz must be positive")
	case c.Design == NUMA:
		return fmt.Errorf("config: NUMA is an analytic baseline, not a simulated design")
	case c.LLCWays <= 0 || c.L1Ways <= 0:
		return fmt.Errorf("config: cache associativity must be positive")
	case c.LinkBufFlits < c.BlockFlits():
		return fmt.Errorf("config: link buffers (%d flits) must hold at least one data message (%d flits)", c.LinkBufFlits, c.BlockFlits())
	case c.ReqTimeout < 0:
		return fmt.Errorf("config: negative request timeout %d", c.ReqTimeout)
	case c.ReqTimeout > 0 && c.MaxRetries < 0:
		return fmt.Errorf("config: negative retry bound %d", c.MaxRetries)
	case c.ReqTimeout > 0 && c.RetryBackoffMax < 0:
		return fmt.Errorf("config: negative backoff cap %d", c.RetryBackoffMax)
	case c.QPWindow < 0:
		return fmt.Errorf("config: negative QP window %d", c.QPWindow)
	case c.LinkCredits < 0:
		return fmt.Errorf("config: negative link credit pool %d", c.LinkCredits)
	case c.LinkFlitCycles < 0:
		return fmt.Errorf("config: negative link serializer rate %d", c.LinkFlitCycles)
	}
	return nil
}
