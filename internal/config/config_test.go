package config

import "testing"

func TestDefaultMatchesTable2(t *testing.T) {
	cfg := Default()
	if cfg.Tiles() != 64 {
		t.Fatalf("tiles=%d want 64", cfg.Tiles())
	}
	if cfg.ClockGHz != 2.0 {
		t.Fatalf("clock=%v want 2 GHz", cfg.ClockGHz)
	}
	if cfg.MemLatencyCycles() != 100 {
		t.Fatalf("mem latency=%d cycles, want 100 (50 ns at 2 GHz)", cfg.MemLatencyCycles())
	}
	if cfg.NetHopCycles() != 70 {
		t.Fatalf("net hop=%d cycles, want 70 (35 ns at 2 GHz)", cfg.NetHopCycles())
	}
	if cfg.BlockFlits() != 5 {
		t.Fatalf("block flits=%d want 5 (64B data + header on 16B links)", cfg.BlockFlits())
	}
	if cfg.LLCSizeBytes != 16<<20 || cfg.LLCWays != 16 {
		t.Fatal("LLC geometry drifted from Table 2")
	}
	if cfg.WQEntries != 128 {
		t.Fatalf("WQ entries=%d want 128 (§5)", cfg.WQEntries)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.MeshWidth = 0 },
		func(c *Config) { c.BlockBytes = 60 },
		func(c *Config) { c.WQEntryB = 48 },
		func(c *Config) { c.CQEntryB = 0 },
		func(c *Config) { c.WQEntries = 0 },
		func(c *Config) { c.ClockGHz = 0 },
		func(c *Config) { c.Design = NUMA },
		func(c *Config) { c.L1Ways = 0 },
		func(c *Config) { c.LinkBufFlits = 2 },
	}
	for i, mut := range muts {
		cfg := Default()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestStringers(t *testing.T) {
	if NIEdge.String() != "NI_edge" || NISplit.String() != "NI_split" ||
		NIPerTile.String() != "NI_per-tile" || NUMA.String() != "NUMA" {
		t.Fatal("design names drifted")
	}
	if Mesh.String() != "mesh" || NOCOut.String() != "NOC-Out" {
		t.Fatal("topology names drifted")
	}
	for _, r := range []Routing{RoutingXY, RoutingYX, RoutingO1Turn, RoutingCDR, RoutingCDRNI} {
		if r.String() == "" {
			t.Fatal("routing name empty")
		}
	}
	if Design(99).String() == "" || Topology(99).String() == "" || Routing(99).String() == "" {
		t.Fatal("unknown enum values must still render")
	}
}
