// Package load generates deterministic open-loop request arrival
// schedules. A Process turns one seed into a monotone stream of absolute
// arrival cycles — a pure function of (Spec, seed), so every node and
// client of a cluster run draws an independent, reproducible schedule and
// serial and parallel sweeps see byte-identical traffic.
//
// Three arrival shapes cover the datacenter-service load curves:
//
//   - Poisson: memoryless arrivals at a constant mean rate — the
//     open-loop baseline.
//   - Bursty: a two-state MMPP (Markov-modulated Poisson process) that
//     alternates exponentially-long on/off phases; the on phase runs at
//     BurstFactor times the mean rate, so the same offered load arrives
//     in bursts that stress queues far harder than Poisson.
//   - Diurnal: a non-homogeneous Poisson process whose rate follows a
//     sinusoidal load curve (Lewis-Shedler thinning), the day/night swing
//     of a user-facing service compressed to simulation scale.
package load

import (
	"fmt"
	"math"
	"strings"

	"rackni/internal/sim"
)

// Kind names an arrival-process family.
type Kind int

const (
	// Poisson is memoryless constant-rate arrivals.
	Poisson Kind = iota
	// Bursty is a two-state on/off MMPP at the same mean rate.
	Bursty
	// Diurnal is a sinusoidally rate-modulated Poisson process.
	Diurnal
)

// String returns the canonical lower-case name.
func (k Kind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	case Diurnal:
		return "diurnal"
	}
	return fmt.Sprintf("load.Kind(%d)", int(k))
}

// Kinds lists the canonical kind names in declaration order.
func Kinds() []string { return []string{"poisson", "bursty", "diurnal"} }

// ParseKind resolves a kind name (case-insensitive).
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "poisson":
		return Poisson, nil
	case "bursty", "mmpp":
		return Bursty, nil
	case "diurnal":
		return Diurnal, nil
	}
	return 0, fmt.Errorf("load: unknown arrival kind %q (want %s)",
		s, strings.Join(Kinds(), "|"))
}

// Spec parameterizes an arrival process. Rate is the mean offered load in
// arrivals per 1000 cycles; every shape hits that long-run mean, so curves
// across kinds compare like for like. Zero-valued shape parameters take
// the defaults noted below.
type Spec struct {
	Kind Kind
	Rate float64 // mean arrivals per 1000 cycles (> 0)

	// Bursty shape.
	BurstFactor float64 // on-phase rate multiplier (default 3, >= 1)
	OnFrac      float64 // fraction of time spent on (default 0.25, in (0,1))
	PhaseCycles float64 // mean on- and off-phase length in cycles (default 20_000)

	// Diurnal shape.
	PeriodCycles float64 // sine period in cycles (default 100_000)
	Depth        float64 // modulation depth (default 0.8, in [0,1))
}

// withDefaults fills zero-valued shape parameters.
func (s Spec) withDefaults() Spec {
	if s.BurstFactor == 0 {
		s.BurstFactor = 3
	}
	if s.OnFrac == 0 {
		s.OnFrac = 0.25
	}
	if s.PhaseCycles == 0 {
		s.PhaseCycles = 20_000
	}
	if s.PeriodCycles == 0 {
		s.PeriodCycles = 100_000
	}
	if s.Depth == 0 {
		s.Depth = 0.8
	}
	return s
}

// validate rejects shapes that cannot hit the requested mean rate.
func (s Spec) validate() error {
	switch {
	case s.Rate <= 0 || math.IsInf(s.Rate, 0) || math.IsNaN(s.Rate):
		return fmt.Errorf("load: rate %g must be a positive finite arrivals/kcycle", s.Rate)
	case s.BurstFactor < 1:
		return fmt.Errorf("load: burst factor %g must be >= 1", s.BurstFactor)
	case s.OnFrac <= 0 || s.OnFrac >= 1:
		return fmt.Errorf("load: on-fraction %g must be in (0,1)", s.OnFrac)
	case s.OnFrac*s.BurstFactor > 1:
		return fmt.Errorf("load: burst factor %g x on-fraction %g exceeds the mean rate (off-phase rate would be negative)", s.BurstFactor, s.OnFrac)
	case s.PhaseCycles <= 0:
		return fmt.Errorf("load: phase length %g must be positive", s.PhaseCycles)
	case s.PeriodCycles <= 0:
		return fmt.Errorf("load: diurnal period %g must be positive", s.PeriodCycles)
	case s.Depth < 0 || s.Depth >= 1:
		return fmt.Errorf("load: diurnal depth %g must be in [0,1)", s.Depth)
	}
	return nil
}

// Process is one deterministic arrival stream. Not safe for concurrent
// use; give each client its own Process with a decorrelated seed.
type Process struct {
	spec Spec
	rnd  *sim.Rand
	t    float64 // absolute simulation time of the last arrival draw

	// Bursty state.
	on       bool
	phaseEnd float64

	// Diurnal envelope rate (arrivals per cycle).
	lmax float64
}

// NewProcess builds the arrival stream for one client. The same (spec,
// seed) pair always yields the same schedule.
func NewProcess(spec Spec, seed uint64) (*Process, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	p := &Process{spec: spec, rnd: sim.NewRand(seed)}
	if spec.Kind == Diurnal {
		p.lmax = spec.Rate / 1000 * (1 + spec.Depth)
	}
	if spec.Kind == Bursty {
		// Start mid-stream: the first phase boundary is drawn like every
		// later one, beginning in the off state so low-rate streams do not
		// all burst at cycle zero.
		p.phaseEnd = p.exp(1 / p.offMean())
	}
	return p, nil
}

// Spec returns the fully defaulted parameters this process runs with.
func (p *Process) Spec() Spec { return p.spec }

// exp draws an exponential variate with the given rate (events per cycle).
func (p *Process) exp(rate float64) float64 {
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1-p.rnd.Float64()) / rate
}

// onMean and offMean split PhaseCycles so the long-run on-fraction is
// OnFrac: mean on-phase OnFrac*Phase, mean off-phase (1-OnFrac)*Phase.
func (p *Process) onMean() float64  { return p.spec.OnFrac * p.spec.PhaseCycles }
func (p *Process) offMean() float64 { return (1 - p.spec.OnFrac) * p.spec.PhaseCycles }

// rateNow is the instantaneous arrival rate (per cycle) of the bursty
// process in its current phase.
func (p *Process) rateNow() float64 {
	mean := p.spec.Rate / 1000
	if p.on {
		return mean * p.spec.BurstFactor
	}
	// Chosen so OnFrac*on + (1-OnFrac)*off == mean; validate() guarantees
	// the numerator is non-negative.
	return mean * (1 - p.spec.BurstFactor*p.spec.OnFrac) / (1 - p.spec.OnFrac)
}

// Next returns the next absolute arrival cycle. Arrivals are monotone
// non-decreasing; at high rates several can land in one cycle.
func (p *Process) Next() int64 {
	switch p.spec.Kind {
	case Bursty:
		return p.nextBursty()
	case Diurnal:
		return p.nextDiurnal()
	}
	p.t += p.exp(p.spec.Rate / 1000)
	return p.arrival()
}

// nextBursty advances the MMPP: exponential interarrivals at the current
// phase's rate, with draws that cross a phase boundary discarded at the
// boundary (memorylessness makes the restart exact, not approximate).
func (p *Process) nextBursty() int64 {
	for {
		r := p.rateNow()
		if r > 0 {
			d := p.exp(r)
			if p.t+d < p.phaseEnd {
				p.t += d
				return p.arrival()
			}
		}
		// Silent phase, or the draw overshot it: jump to the boundary and
		// flip state.
		p.t = p.phaseEnd
		p.on = !p.on
		mean := p.offMean()
		if p.on {
			mean = p.onMean()
		}
		p.phaseEnd = p.t + p.exp(1/mean)
	}
}

// nextDiurnal thins a Poisson stream at the envelope rate lmax down to the
// sinusoidal instantaneous rate (Lewis-Shedler).
func (p *Process) nextDiurnal() int64 {
	for {
		p.t += p.exp(p.lmax)
		rate := p.spec.Rate / 1000 *
			(1 + p.spec.Depth*math.Sin(2*math.Pi*p.t/p.spec.PeriodCycles))
		if p.rnd.Float64()*p.lmax <= rate {
			return p.arrival()
		}
	}
}

// arrival converts the float clock to a cycle, saturating far past any
// simulation horizon rather than overflowing.
func (p *Process) arrival() int64 {
	if p.t >= math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	return int64(p.t)
}
