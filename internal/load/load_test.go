package load

import (
	"math"
	"testing"
)

func schedule(t *testing.T, spec Spec, seed uint64, horizon int64) []int64 {
	t.Helper()
	p, err := NewProcess(spec, seed)
	if err != nil {
		t.Fatalf("NewProcess(%+v): %v", spec, err)
	}
	var s []int64
	for {
		a := p.Next()
		if a > horizon {
			return s
		}
		s = append(s, a)
	}
}

// Same (spec, seed) must always produce the identical schedule; different
// seeds must decorrelate.
func TestProcessDeterminism(t *testing.T) {
	for _, k := range []Kind{Poisson, Bursty, Diurnal} {
		spec := Spec{Kind: k, Rate: 2}
		a := schedule(t, spec, 7, 500_000)
		b := schedule(t, spec, 7, 500_000)
		if len(a) == 0 {
			t.Fatalf("%v: empty schedule", k)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: schedules diverge at %d: %d vs %d", k, i, a[i], b[i])
			}
		}
		c := schedule(t, spec, 8, 500_000)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%v: seeds 7 and 8 produced identical schedules", k)
		}
	}
}

// Arrivals must be monotone non-decreasing for every shape.
func TestProcessMonotone(t *testing.T) {
	for _, k := range []Kind{Poisson, Bursty, Diurnal} {
		s := schedule(t, Spec{Kind: k, Rate: 5}, 3, 200_000)
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("%v: arrival %d at %d precedes %d", k, i, s[i], s[i-1])
			}
		}
	}
}

// Every shape must hit the requested long-run mean rate: Rate arrivals
// per 1000 cycles within a few percent over a long horizon.
func TestProcessMeanRate(t *testing.T) {
	const horizon = 4_000_000
	for _, k := range []Kind{Poisson, Bursty, Diurnal} {
		got := float64(len(schedule(t, Spec{Kind: k, Rate: 2}, 11, horizon)))
		want := 2.0 / 1000 * horizon
		if math.Abs(got-want)/want > 0.08 {
			t.Fatalf("%v: %v arrivals over %d cycles, want ~%v", k, got, int64(horizon), want)
		}
	}
}

// Bursty arrivals at the same mean rate must be burstier than Poisson:
// compare the variance of per-window arrival counts (index of dispersion).
func TestBurstyIsBurstier(t *testing.T) {
	const horizon, window = 2_000_000, 10_000
	dispersion := func(kind Kind) float64 {
		s := schedule(t, Spec{Kind: kind, Rate: 2}, 5, horizon)
		counts := make([]float64, horizon/window)
		for _, a := range s {
			if i := int(a / window); i < len(counts) {
				counts[i]++
			}
		}
		var mean, varsum float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			varsum += (c - mean) * (c - mean)
		}
		return varsum / float64(len(counts)) / mean
	}
	p, b := dispersion(Poisson), dispersion(Bursty)
	if b < 2*p {
		t.Fatalf("bursty dispersion %.2f not clearly above poisson %.2f", b, p)
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"poisson", Poisson}, {" Bursty ", Bursty}, {"mmpp", Bursty}, {"DIURNAL", Diurnal}} {
		k, err := ParseKind(tc.in)
		if err != nil || k != tc.want {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", tc.in, k, err, tc.want)
		}
	}
	if _, err := ParseKind("sawtooth"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
	for _, k := range []Kind{Poisson, Bursty, Diurnal} {
		rt, err := ParseKind(k.String())
		if err != nil || rt != k {
			t.Fatalf("round trip of %v failed: %v, %v", k, rt, err)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: Poisson, Rate: 0},
		{Kind: Poisson, Rate: -1},
		{Kind: Poisson, Rate: math.Inf(1)},
		{Kind: Bursty, Rate: 1, BurstFactor: 0.5},
		{Kind: Bursty, Rate: 1, OnFrac: 1.5},
		{Kind: Bursty, Rate: 1, BurstFactor: 8, OnFrac: 0.25}, // off rate < 0
		{Kind: Bursty, Rate: 1, PhaseCycles: -1},
		{Kind: Diurnal, Rate: 1, Depth: 1.5},
		{Kind: Diurnal, Rate: 1, PeriodCycles: -5},
	}
	for _, s := range bad {
		if _, err := NewProcess(s, 1); err == nil {
			t.Fatalf("NewProcess(%+v) accepted an invalid spec", s)
		}
	}
	p, err := NewProcess(Spec{Kind: Bursty, Rate: 1}, 1)
	if err != nil {
		t.Fatalf("defaulted bursty spec rejected: %v", err)
	}
	if d := p.Spec(); d.BurstFactor != 3 || d.OnFrac != 0.25 || d.PhaseCycles != 20_000 {
		t.Fatalf("defaults not applied: %+v", d)
	}
}
