package node

import (
	"reflect"
	"strings"
	"testing"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
)

// faultCfg is a reduced 2-node-friendly configuration with timeouts armed.
// The timeout is short relative to the cycle budget so dropped blocks get
// retransmitted (and recovered) well inside the run.
func faultCfg() config.Config {
	cfg := smokeClusterCfg()
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 400_000
	return cfg
}

// dropSpec is the canonical probabilistic fault plan of these tests.
func dropSpec(seed uint64) *fabric.FaultSpec {
	return &fabric.FaultSpec{Seed: seed, DropProb: 0.02}
}

// faultScatter runs the canonical fault-recovery workload: each node's
// core 0 issues 30 cross-node 512-byte reads at the peer while the fabric
// drops 2% of messages.
func faultScatter(t *testing.T, cl *Cluster) ClusterWorkloadResult {
	t.Helper()
	res, err := cl.RunApp(func(node, core int) cpu.App {
		if core != 0 {
			return nil
		}
		return &scatterApp{targets: []int{1 - node}, size: 512, total: 30}
	}, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestClusterFaultRecovery: under 2% fabric drops with the timeout armed,
// every request still completes — via retransmission, not luck — with
// drops in the link ledger, retries in the node stats, and no permanent
// failures.
func TestClusterFaultRecovery(t *testing.T) {
	cl, err := NewCluster(faultCfg(), ClusterSpec{Nodes: 2, Hops: 1, Faults: dropSpec(7)})
	if err != nil {
		t.Fatal(err)
	}
	res := faultScatter(t, cl)
	if res.Aggregate.Completed != 60 || res.Aggregate.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 60/0", res.Aggregate.Completed, res.Aggregate.Failed)
	}
	var drops, retries int64
	for i := range cl.Nodes {
		drops += cl.Inter.Counters[i].Drops
		retries += cl.Nodes[i].Stats.Retries
	}
	if drops == 0 {
		t.Fatal("2% drop plan dropped nothing")
	}
	if retries == 0 {
		t.Fatal("drops occurred but no block was ever retransmitted")
	}
}

// TestClusterFaultDeterminism: the fault schedule is part of the seeded
// simulation — two fresh clusters with the same spec produce bit-identical
// results and ledgers.
func TestClusterFaultDeterminism(t *testing.T) {
	run := func() (ClusterWorkloadResult, []fabric.LinkStats) {
		cl, err := NewCluster(faultCfg(), ClusterSpec{Nodes: 2, Hops: 1, Faults: dropSpec(7)})
		if err != nil {
			t.Fatal(err)
		}
		res := faultScatter(t, cl)
		counters := make([]fabric.LinkStats, len(cl.Nodes))
		for i := range cl.Nodes {
			counters[i] = cl.Inter.Counters[i]
		}
		return res, counters
	}
	r1, c1 := run()
	r2, c2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("fault-injected runs diverged:\n%+v\nvs\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("fault ledgers diverged:\n%+v\nvs\n%+v", c1, c2)
	}
}

// TestClusterFaultSessionReuse: a reused cluster — after an interleaved
// cut-short run — replays a fault-injected run bit-identically to a fresh
// cluster: Session.Begin rewinds the fault plan's RNG, the retriers'
// generations, and every other piece of run state.
func TestClusterFaultSessionReuse(t *testing.T) {
	fresh, err := NewCluster(faultCfg(), ClusterSpec{Nodes: 2, Hops: 1, Faults: dropSpec(7)})
	if err != nil {
		t.Fatal(err)
	}
	want := faultScatter(t, fresh)

	reused, err := NewCluster(faultCfg(), ClusterSpec{Nodes: 2, Hops: 1, Faults: dropSpec(7)})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the cluster first: a different run type under the same faults
	// leaves retry/fault state behind that Begin must annihilate.
	if _, err := reused.RunSyncLatency(512, 3); err != nil {
		t.Fatal(err)
	}
	got := faultScatter(t, reused)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reused cluster diverged from fresh under faults:\n%+v\nvs\n%+v", want, got)
	}
}

// TestClusterInertFaultSpecIsNoSpec: an all-zero FaultSpec must behave
// exactly like no spec at all — same results, no plan armed.
func TestClusterInertFaultSpecIsNoSpec(t *testing.T) {
	cfg := smokeClusterCfg()
	plain, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	inert, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: 1, Faults: &fabric.FaultSpec{Seed: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if inert.Inter.Faults() != nil {
		t.Fatal("inert spec armed a fault plan")
	}
	r1, err := plain.RunBandwidth(1024)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := inert.RunBandwidth(1024)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("inert fault spec changed results:\n%+v\nvs\n%+v", r1, r2)
	}
}

// TestClusterRejectsBadFaultSpec: spec validation runs at construction,
// against the actual cluster geometry.
func TestClusterRejectsBadFaultSpec(t *testing.T) {
	_, err := NewCluster(smokeClusterCfg(), ClusterSpec{Nodes: 2, Hops: 1,
		Faults: &fabric.FaultSpec{LinkDown: []fabric.Outage{{Src: 0, Dst: 5}}}})
	if err == nil {
		t.Fatal("outage beyond the cluster accepted")
	}
}

// oneShotApp issues a single cross-node read and then waits forever — the
// behavior of an app that doesn't handle permanent failure.
type oneShotApp struct{ issued bool }

func (a *oneShotApp) Step(coreID int, now int64, inflight int) cpu.Action {
	if !a.issued {
		a.issued = true
		return cpu.Issue(cpu.Request{
			Op:     0, // OpRead
			Remote: fabric.GlobalAddr(1, SourceBase),
			Local:  LocalBase,
			Size:   64,
		})
	}
	return cpu.Wait()
}

func (a *oneShotApp) OnComplete(int, cpu.Request, int64, int64) {}

// TestClusterDeadLinkFailsLoudlyWithoutRetry: with retries disabled, a
// request crossing a dead link comes back as a NACKed permanent failure —
// and an app that keeps waiting for data that can never arrive trips the
// zero-inflight deadlock detector, which names the failure count instead
// of leaving the run to spin to its cycle cap.
func TestClusterDeadLinkFailsLoudlyWithoutRetry(t *testing.T) {
	cfg := smokeClusterCfg() // ReqTimeout 0: NACK path, no retries
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: 1,
		Faults: &fabric.FaultSpec{LinkDown: []fabric.Outage{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.RunApp(func(node, core int) cpu.App {
		if node != 0 || core != 0 {
			return nil
		}
		return &oneShotApp{}
	}, 200_000)
	if err == nil {
		t.Fatal("waiting on a permanently failed request must error, not hang")
	}
	if !strings.Contains(err.Error(), "permanently failed") {
		t.Fatalf("deadlock error does not name the failure: %v", err)
	}
	if cl.Nodes[0].Stats.FailedOps != 1 {
		t.Fatalf("FailedOps=%d, want 1", cl.Nodes[0].Stats.FailedOps)
	}
}

// TestClusterScenarioRetriesSurfaceInResult: workload aggregation carries
// the retry and failure tallies through WorkloadResult into the cluster
// aggregate.
func TestClusterScenarioRetriesSurfaceInResult(t *testing.T) {
	cl, err := NewCluster(faultCfg(), ClusterSpec{Nodes: 2, Hops: 1, Faults: dropSpec(3)})
	if err != nil {
		t.Fatal(err)
	}
	res := faultScatter(t, cl)
	var want int64
	for i := range cl.Nodes {
		want += cl.Nodes[i].Stats.Retries
	}
	if res.Aggregate.Retries != want {
		t.Fatalf("aggregate Retries=%d, node stats sum %d", res.Aggregate.Retries, want)
	}
	if res.Aggregate.Retries == 0 {
		t.Fatal("2% drops with 30 requests per node never retried — fault plane inactive?")
	}
}
