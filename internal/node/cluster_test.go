package node

import (
	"strings"
	"testing"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/place"
)

// TestClusterN1BitIdentical: a 1-node cluster in uniform-hop mode is the
// real-fabric realization of the paper's mirror emulation — outgoing
// requests loop back to the node's own RRPPs after the uniform hop delay,
// exactly as Rack's mirrors do. The two must agree bit for bit.
func TestClusterN1BitIdentical(t *testing.T) {
	const hops, size, core = 3, 1024, 27
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.MeasureReqs = 16

	single, err := New(cfg, hops)
	if err != nil {
		t.Fatal(err)
	}
	emu, err := single.RunSyncLatency(size, core)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := NewCluster(cfg, ClusterSpec{Nodes: 1, Hops: hops})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.RunSyncLatency(size, core)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNode[0] != emu {
		t.Fatalf("1-node cluster diverges from the emulation:\ncluster:  %+v\nemulated: %+v",
			res.PerNode[0], emu)
	}
}

// TestClusterDeterminism: same configuration and seed, same results —
// byte for byte — on repeated cluster constructions.
func TestClusterDeterminism(t *testing.T) {
	run := func() ClusterSyncResult {
		cfg := config.Default()
		cfg.Design = config.NISplit
		cfg.Seed = 7
		cfg.MeasureReqs = 12
		cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.RunSyncLatency(256, 27)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.PerNode) != len(b.PerNode) || a.Aggregate != b.Aggregate {
		t.Fatalf("nondeterministic cluster run:\n  %+v\nvs\n  %+v", a.Aggregate, b.Aggregate)
	}
	for i := range a.PerNode {
		if a.PerNode[i] != b.PerNode[i] {
			t.Fatalf("node %d nondeterministic:\n  %+v\nvs\n  %+v", i, a.PerNode[i], b.PerNode[i])
		}
	}
}

// TestClusterPlacement: with an explicit torus placement, inter-node
// distances are real Torus3D hop counts — and latency scales with them.
func TestClusterPlacement(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.MeasureReqs = 8
	torus := fabric.NewTorus3D(cfg.TorusRadix)

	lat := func(placement []int) float64 {
		cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Placement: placement})
		if err != nil {
			t.Fatal(err)
		}
		want := torus.Hops(placement[0], placement[1])
		if got := cl.Inter.Dist(0, 1); got != want {
			t.Fatalf("Dist(0,1)=%d, torus says %d", got, want)
		}
		res, err := cl.RunSyncLatency(64, 27)
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregate.MeanCycles
	}
	// 0 -> 1: one hop along x. 0 -> (2,2,2): 6 hops (the torus average).
	near := lat([]int{0, 1})
	far := lat([]int{0, 2 + 2*8 + 2*64})
	hop := float64(cfg.NetHopCycles())
	wantDelta := 2 * 5 * hop // 5 extra hops, both directions
	delta := far - near
	if delta < wantDelta*0.95 || delta > wantDelta*1.05 {
		t.Fatalf("distance 6 vs 1: latency delta %.0f cycles, want ~%.0f", delta, wantDelta)
	}
}

// TestClusterPlacementValidation: bogus explicit placements are rejected
// at construction with the offending node named (regression: they used to
// reach the cluster build, corrupting member distance tables and — for
// duplicates — silently coercing the shard count to 1 via a zero minimum
// cross-node distance).
func TestClusterPlacementValidation(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cube := cfg.TorusRadix * cfg.TorusRadix * cfg.TorusRadix
	cases := []struct {
		name string
		spec ClusterSpec
		want string
	}{
		{"out-of-range", ClusterSpec{Nodes: 2, Placement: []int{0, cube}}, "node 1"},
		{"negative", ClusterSpec{Nodes: 2, Placement: []int{-1, 3}}, "node 0"},
		{"duplicate", ClusterSpec{Nodes: 3, Placement: []int{5, 9, 5}}, "nodes 0 and 2"},
		{"policy-and-coords", ClusterSpec{Nodes: 2, Placement: []int{0, 1},
			Place: place.Policy{Kind: place.Clustered}}, "both"},
	}
	for _, c := range cases {
		_, err := NewCluster(cfg, c.spec)
		if err == nil {
			t.Errorf("%s: NewCluster accepted invalid placement %v", c.name, c.spec.Placement)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name the offender (want %q)", c.name, err, c.want)
		}
	}
}

// TestClusterPlacePolicy: a named policy resolves to the same coordinates
// as calling the policy directly, the fabric distance table reflects them,
// and the cluster reports the policy it was built with.
func TestClusterPlacePolicy(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	const nodes = 9
	for _, pol := range []place.Policy{
		{Kind: place.Identity},
		{Kind: place.Clustered},
		{Kind: place.Scattered},
		{Kind: place.Random, Seed: 3},
	} {
		cl, err := NewCluster(cfg, ClusterSpec{Nodes: nodes, Place: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if got := cl.Placed(); got != pol {
			t.Errorf("%s: Placed() = %s", pol, got)
		}
		coords, err := pol.Coordinates(nodes, cfg.TorusRadix)
		if err != nil {
			t.Fatal(err)
		}
		torus := fabric.NewTorus3D(cfg.TorusRadix)
		for a := 0; a < nodes; a++ {
			for b := 0; b < nodes; b++ {
				if got, want := cl.Inter.Dist(a, b), torus.Hops(coords[a], coords[b]); got != want {
					t.Fatalf("%s: Dist(%d,%d)=%d, torus at placed coords says %d", pol, a, b, got, want)
				}
			}
		}
	}
}

// scatterApp issues one read per target node, round-robin, using
// explicit fabric.GlobalAddr targets.
type scatterApp struct {
	targets []int
	size    int
	issued  int
	total   int
}

func (s *scatterApp) Step(coreID int, now int64, inflight int) cpu.Action {
	if s.issued >= s.total {
		return cpu.Done()
	}
	target := s.targets[s.issued%len(s.targets)]
	addr := fabric.GlobalAddr(target, SourceBase+uint64(s.issued)*uint64(s.size))
	s.issued++
	return cpu.Issue(cpu.Request{
		Op:     0, // OpRead
		Remote: addr,
		Local:  LocalBase + uint64(coreID)*LocalStride,
		Size:   s.size,
	})
}

func (s *scatterApp) OnComplete(int, cpu.Request, int64, int64) {}

// TestClusterCrossNodeSharding: explicitly targeted addresses
// (fabric.GlobalAddr) reach the named node, not the default peer — node
// 0 of a 3-node cluster scatters across both peers, and the traffic
// matrix must show both flows.
func TestClusterCrossNodeSharding(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: 3, Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	const total = 32
	res, err := cl.RunApp(func(node, core int) cpu.App {
		if node != 0 || core != 27 {
			return nil
		}
		return &scatterApp{targets: []int{1, 2}, size: cfg.BlockBytes, total: total}
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Completed != total {
		t.Fatalf("completed %d, want %d", res.Aggregate.Completed, total)
	}
	if got := cl.Inter.Traffic[0][1]; got != total/2 {
		t.Errorf("traffic 0->1 = %d, want %d", got, total/2)
	}
	if got := cl.Inter.Traffic[0][2]; got != total/2 {
		t.Errorf("traffic 0->2 = %d, want %d", got, total/2)
	}
	if got := cl.Inter.Traffic[0][0]; got != 0 {
		t.Errorf("unexpected loopback traffic %d", got)
	}
	// The remote nodes actually serviced the requests.
	if cl.Nodes[1].Stats.RRPPBytes == 0 || cl.Nodes[2].Stats.RRPPBytes == 0 {
		t.Errorf("peer RRPPs idle: node1 %dB, node2 %dB",
			cl.Nodes[1].Stats.RRPPBytes, cl.Nodes[2].Stats.RRPPBytes)
	}
}

// TestMemberRefusesSingleNodeRuns: cluster members must only be driven
// through the cluster — a member calling the single-node run entry points
// would seize run control of the shared engine.
func TestMemberRefusesSingleNodeRuns(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := cl.Nodes[0]
	if _, err := m.RunSyncLatency(64, 27); err == nil {
		t.Error("member RunSyncLatency did not refuse")
	}
	if _, err := m.RunBandwidth(64); err == nil {
		t.Error("member RunBandwidth did not refuse")
	}
	if _, err := m.RunApp(func(int) cpu.App { return nil }, 0); err == nil {
		t.Error("member RunApp did not refuse")
	}
}

// TestRackCountersResetPerRun: the rack emulation's outstanding-record
// counters must report per-run figures on a reused node (regression: the
// reused-node rebase path left them accumulating across runs).
func TestRackCountersResetPerRun(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.MeasureReqs = 8
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(1024, 27); err != nil {
		t.Fatal(err)
	}
	first := n.Rack.RequestsOut
	blocks := int64((cfg.WarmupRequests + cfg.MeasureReqs) * (1024 / cfg.BlockBytes))
	if first != blocks {
		t.Fatalf("first run: %d requests out, want %d", first, blocks)
	}
	if _, err := n.RunSyncLatency(1024, 27); err != nil {
		t.Fatal(err)
	}
	if n.Rack.RequestsOut != blocks {
		t.Fatalf("second run on reused node: %d requests out, want %d (counters not reset)",
			n.Rack.RequestsOut, blocks)
	}
	if n.Rack.ResponsesIn != blocks || n.Rack.HopCycles != 2*blocks*int64(n.RackHops())*cfg.NetHopCycles() {
		t.Fatalf("second run: responses %d, hop-cycles %d not per-run", n.Rack.ResponsesIn, n.Rack.HopCycles)
	}
}
