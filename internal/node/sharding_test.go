package node

import (
	"reflect"
	"testing"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/place"
)

// shardScatter runs the canonical sharding workload on a cluster: every
// node's core 0 scatters reads at two peers, so traffic crosses every
// shard boundary in both directions.
func shardScatter(t *testing.T, cl *Cluster, nodes int) ClusterWorkloadResult {
	t.Helper()
	res, err := cl.RunApp(func(node, core int) cpu.App {
		if core != 0 {
			return nil
		}
		return &scatterApp{targets: []int{(node + 1) % nodes, (node + 3) % nodes}, size: 512, total: 12}
	}, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// shardLedger snapshots the fabric accounting that must be shard-count
// invariant alongside the workload result.
func shardLedger(cl *Cluster) ([]fabric.LinkStats, [][]int64) {
	counters := make([]fabric.LinkStats, len(cl.Nodes))
	traffic := make([][]int64, len(cl.Nodes))
	for i := range cl.Nodes {
		counters[i] = cl.Inter.Counters[i]
		traffic[i] = append([]int64(nil), cl.Inter.Traffic[i]...)
	}
	return counters, traffic
}

// TestClusterShardInvariance: the tentpole contract — a workload run's
// results, link ledgers and traffic matrices are bit-identical at every
// shard count, with and without a fault plan, under the uniform-hop model
// and under every named placement policy (whose real torus distances feed
// the conservative lookahead). Shards is a pure wall-clock knob.
func TestClusterShardInvariance(t *testing.T) {
	const nodes = 16
	cfg := smokeClusterCfg()
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 300_000
	placements := []place.Policy{{}, {Kind: place.Clustered}, {Kind: place.Scattered}}
	for _, pol := range placements {
		for _, faults := range []*fabric.FaultSpec{nil, {Seed: 7, DropProb: 0.02}} {
			if faults != nil && !pol.IsZero() && pol.Kind != place.Clustered {
				continue // one placed+faulted combination is enough coverage
			}
			var want ClusterWorkloadResult
			var wantCounters []fabric.LinkStats
			var wantTraffic [][]int64
			for _, shards := range []int{1, 2, 4, 8} {
				spec := ClusterSpec{Nodes: nodes, Faults: faults, Shards: shards, Place: pol}
				if pol.IsZero() {
					spec.Hops = 1
				}
				cl, err := NewCluster(cfg, spec)
				if err != nil {
					t.Fatal(err)
				}
				// Named placements yield distinct coordinates, so the minimum
				// cross-node distance is ≥ 1 hop and the requested shard count
				// must survive uncoerced.
				if got := cl.NumShards(); got != shards {
					t.Fatalf("%s: NumShards=%d, want %d", pol, got, shards)
				}
				res := shardScatter(t, cl, nodes)
				counters, traffic := shardLedger(cl)
				if shards == 1 {
					want, wantCounters, wantTraffic = res, counters, traffic
					if res.Aggregate.Completed != nodes*12 {
						t.Fatalf("%s: baseline completed %d, want %d", pol, res.Aggregate.Completed, nodes*12)
					}
					continue
				}
				if !reflect.DeepEqual(res, want) {
					t.Fatalf("place=%s faults=%v shards=%d diverged from single-engine:\n%+v\nvs\n%+v",
						pol, faults != nil, shards, res.Aggregate, want.Aggregate)
				}
				if !reflect.DeepEqual(counters, wantCounters) {
					t.Fatalf("place=%s faults=%v shards=%d link ledger diverged:\n%+v\nvs\n%+v",
						pol, faults != nil, shards, counters, wantCounters)
				}
				if !reflect.DeepEqual(traffic, wantTraffic) {
					t.Fatalf("place=%s faults=%v shards=%d traffic matrix diverged", pol, faults != nil, shards)
				}
			}
		}
	}
}

// TestClusterShardedSessionReuse: a sharded cluster reused across runs
// replays bit-identically — Session.Begin resets every shard's engine and
// the fabric's cross-shard buffers.
func TestClusterShardedSessionReuse(t *testing.T) {
	const nodes = 8
	cfg := smokeClusterCfg()
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 300_000
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: nodes, Hops: 1, Shards: 4,
		Faults: &fabric.FaultSpec{Seed: 9, DropProb: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	first := shardScatter(t, cl, nodes)
	second := shardScatter(t, cl, nodes)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("reused sharded cluster diverged:\n%+v\nvs\n%+v", first.Aggregate, second.Aggregate)
	}
}

// TestClusterShardedSessionReusePlaced: session reuse holds on a sharded
// cluster whose lookahead comes from a named placement's real torus
// distances rather than the uniform hop count.
func TestClusterShardedSessionReusePlaced(t *testing.T) {
	const nodes = 8
	cfg := smokeClusterCfg()
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 300_000
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: nodes, Shards: 4,
		Place: place.Policy{Kind: place.Scattered}})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.NumShards(); got != 4 {
		t.Fatalf("NumShards=%d, want 4", got)
	}
	first := shardScatter(t, cl, nodes)
	second := shardScatter(t, cl, nodes)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("reused placed sharded cluster diverged:\n%+v\nvs\n%+v", first.Aggregate, second.Aggregate)
	}
}

// TestClusterShardCoercion: geometries without conservative lookahead —
// congestion routing, zero per-hop delay, zero uniform distance — fall
// back to one engine instead of running incorrectly, and out-of-range
// counts clamp.
func TestClusterShardCoercion(t *testing.T) {
	zeroHopNS := smokeClusterCfg()
	zeroHopNS.NetHopNS = 0
	zeroDist := smokeClusterCfg()
	zeroDist.DefaultHops = 0
	cases := []struct {
		name string
		cfg  config.Config
		spec ClusterSpec
		want int
	}{
		{"congestion", smokeClusterCfg(), ClusterSpec{Nodes: 4, Shards: 4, FabricRouting: fabric.RouteDOR}, 1},
		{"zero-hop-cycles", zeroHopNS, ClusterSpec{Nodes: 4, Hops: 1, Shards: 2}, 1},
		{"zero-distance", zeroDist, ClusterSpec{Nodes: 4, Shards: 2}, 1},
		{"clamp-to-nodes", smokeClusterCfg(), ClusterSpec{Nodes: 2, Hops: 1, Shards: 16}, 2},
		{"default", smokeClusterCfg(), ClusterSpec{Nodes: 2, Hops: 1}, 1},
	}
	for _, c := range cases {
		cl, err := NewCluster(c.cfg, c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := cl.NumShards(); got != c.want {
			t.Errorf("%s: NumShards=%d, want %d", c.name, got, c.want)
		}
	}
}

// TestClusterShardedMicrobenchRefusal: the single-engine microbenchmarks
// refuse a sharded cluster loudly rather than racing their cluster-global
// monitors across engines.
func TestClusterShardedMicrobenchRefusal(t *testing.T) {
	cl, err := NewCluster(smokeClusterCfg(), ClusterSpec{Nodes: 4, Hops: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunSyncLatency(512, 0); err == nil {
		t.Error("sharded RunSyncLatency did not refuse")
	}
	if _, err := cl.RunBandwidth(512); err == nil {
		t.Error("sharded RunBandwidth did not refuse")
	}
}
