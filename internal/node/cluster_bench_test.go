package node

import (
	"fmt"
	"testing"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
)

// benchClusterCfg is the cluster-throughput configuration: a reduced 4x2
// chip per node so the inter-node fabric — not the single-chip simulation
// already covered by BENCH_simthroughput — dominates the event mix, with a
// multi-block transfer size so every request unrolls into a stream of
// fabric crossings.
func benchClusterCfg() config.Config {
	cfg := config.Default()
	cfg.MeshWidth = 4
	cfg.MeshHeight = 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0 // fixed interval: run the full budget
	cfg.WindowCycles = 20_000
	return cfg
}

// identityPlacement places n nodes at torus coordinates 0..n-1.
func identityPlacement(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// BenchmarkClusterThroughput measures whole-cluster simulation speed —
// simulated cycles per wall-clock second — with every node's cores issuing
// asynchronous remote reads through the real inter-node fabric under torus
// placement (the distance-computation path the paper's 512-node rack
// exercises). The series at N = 2/8/64 is recorded in BENCH_cluster.json.
func BenchmarkClusterThroughput(b *testing.B) {
	cases := []struct {
		nodes  int
		budget int64
	}{
		{2, 200_000},
		{8, 100_000},
		{64, 40_000},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("N%d", tc.nodes), func(b *testing.B) {
			benchCluster(b, tc.nodes, tc.budget, fabric.RouteNone)
		})
	}
}

// BenchmarkClusterThroughputCongested is the same series with the
// link-level congestion fabric enabled (DOR routing), bounding the
// overhead of per-hop routing and credit accounting over the lump-sum
// fast path; the congested-vs-off pair is recorded in BENCH_cluster.json.
func BenchmarkClusterThroughputCongested(b *testing.B) {
	cases := []struct {
		nodes  int
		budget int64
	}{
		{2, 200_000},
		{8, 100_000},
		{64, 40_000},
	}
	for _, tc := range cases {
		b.Run(fmt.Sprintf("N%d", tc.nodes), func(b *testing.B) {
			benchCluster(b, tc.nodes, tc.budget, fabric.RouteDOR)
		})
	}
}

// BenchmarkClusterThroughputSharded measures the wall-clock effect of
// ClusterSpec.Shards: every core of every node scatters 4 KiB reads at
// two peers (a closed-loop workload — the bandwidth microbenchmark's
// cluster-global stability monitor cannot shard), at 1/2/4/8 engines on
// 16- and 64-node torus-placed clusters. Results are bit-identical across
// the K axis (TestClusterShardInvariance); only wall-clock moves. The
// series is recorded in BENCH_cluster.json.
func BenchmarkClusterThroughputSharded(b *testing.B) {
	for _, nodes := range []int{16, 64} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("N%d/K%d", nodes, shards), func(b *testing.B) {
				benchClusterSharded(b, nodes, shards)
			})
		}
	}
}

// benchClusterSharded runs the all-cores scatter workload on fresh
// n-node clusters split across k engines, reporting simulated cycles per
// wall-clock second.
func benchClusterSharded(b *testing.B, nodes, shards int) {
	cfg := benchClusterCfg()
	var cycles int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, err := NewCluster(cfg, ClusterSpec{
			Nodes:     nodes,
			Placement: identityPlacement(nodes),
			Shards:    shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := cl.RunApp(func(node, core int) cpu.App {
			return &scatterApp{
				targets: []int{(node + 1) % nodes, (node + nodes/2) % nodes},
				size:    4096,
				total:   16,
			}
		}, 400_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Aggregate.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// benchCluster runs the all-cores asynchronous-read throughput benchmark
// on fresh n-node torus-placed clusters, reporting simulated cycles per
// wall-clock second.
func benchCluster(b *testing.B, nodes int, budget int64, routing fabric.RoutePolicy) {
	cfg := benchClusterCfg()
	cfg.MaxCycles = budget
	var cycles int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, err := NewCluster(cfg, ClusterSpec{
			Nodes:         nodes,
			Placement:     identityPlacement(nodes),
			FabricRouting: routing,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := cl.RunBandwidth(4096)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Aggregate.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}
