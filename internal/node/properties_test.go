package node

import (
	"testing"

	"rackni/internal/config"
	"rackni/internal/noc"
)

// TestRRPPAddressInterleaving verifies §4.3: every incoming remote request
// is serviced by the RRPP of its home row, so it ejects at the row of its
// home LLC tile.
func TestRRPPAddressInterleaving(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.MeasureReqs = 16
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(4096, 10); err != nil {
		t.Fatal(err)
	}
	// Every RRPP should have serviced some mirrors: 4KB requests span 64
	// consecutive blocks, touching every home row.
	for i, r := range n.RRPPs {
		if r.Serviced == 0 {
			t.Fatalf("RRPP %d idle — address interleaving broken", i)
		}
	}
}

// TestMirrorConservation: the rack emulation must create exactly one
// inbound mirror per outgoing block request and one response per serviced
// mirror.
func TestMirrorConservation(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.MeasureReqs = 16
	n, err := New(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(1024, 27); err != nil {
		t.Fatal(err)
	}
	rk := n.Rack
	if rk.RequestsOut != rk.InboundMade {
		t.Fatalf("outgoing %d != mirrors %d", rk.RequestsOut, rk.InboundMade)
	}
	if rk.ResponsesOut != rk.ResponsesIn {
		t.Fatalf("serviced %d != responses delivered %d", rk.ResponsesOut, rk.ResponsesIn)
	}
	blocks := int64((cfg.WarmupRequests + cfg.MeasureReqs) * (1024 / cfg.BlockBytes))
	if rk.RequestsOut != blocks {
		t.Fatalf("outgoing blocks %d, want %d", rk.RequestsOut, blocks)
	}
}

// TestHopCountScalesLatency: latency must grow by ~2*70 cycles per
// additional one-way hop.
func TestHopCountScalesLatency(t *testing.T) {
	lat := func(hops int) float64 {
		cfg := config.Default()
		cfg.Design = config.NISplit
		cfg.MeasureReqs = 16
		n, err := New(cfg, hops)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunSyncLatency(64, 27)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanCycles
	}
	l1, l3 := lat(1), lat(3)
	want := 2.0 * 2 * 70 // two extra hops, both directions
	if diff := (l3 - l1) - want; diff < -30 || diff > 30 {
		t.Fatalf("hop scaling: 1 hop %.0f, 3 hops %.0f (delta %.0f, want ~%.0f)",
			l1, l3, l3-l1, want)
	}
}

// TestEdgeSmallTransferBandwidthPenalty verifies the §6.2 observation that
// NIedge loses bandwidth on small transfers to WQ/CQ ping-ponging, while
// split does not.
func TestEdgeSmallTransferBandwidthPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth run")
	}
	run := func(d config.Design) float64 {
		cfg := config.Default()
		cfg.Design = d
		cfg.WindowCycles = 40_000
		cfg.MaxCycles = 400_000
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunBandwidth(64)
		if err != nil {
			t.Fatal(err)
		}
		return res.AppGBps
	}
	edge, split := run(config.NIEdge), run(config.NISplit)
	if split <= edge {
		t.Fatalf("at 64B split (%.1f) must beat edge (%.1f) — QP ping-pong missing", split, edge)
	}
}

// TestPerTileLargeTransferCollapse verifies the core Fig. 7 claim: at
// large transfers the per-tile design delivers markedly less bandwidth
// than split (source-tile unrolling floods the NOC; responses detour).
func TestPerTileLargeTransferCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth run")
	}
	run := func(d config.Design) float64 {
		cfg := config.Default()
		cfg.Design = d
		// Reduced windows: the ~4x gap between split and per-tile at 8 KB
		// is stable well before the full 500k-cycle stabilization run.
		cfg.WindowCycles = 40_000
		cfg.MaxCycles = 240_000
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunBandwidth(8192)
		if err != nil {
			t.Fatal(err)
		}
		return res.AppGBps
	}
	tile, split := run(config.NIPerTile), run(config.NISplit)
	if tile >= split*0.9 {
		t.Fatalf("at 8KB per-tile (%.1f) must fall clearly below split (%.1f)", tile, split)
	}
}

// TestEndpointDispatchCoversAllKinds: a long mixed run must not panic in
// any dispatcher (panics would fail the test) and must touch every
// endpoint type.
func TestEndpointDispatchCoversAllKinds(t *testing.T) {
	for _, d := range []config.Design{config.NIEdge, config.NIPerTile, config.NISplit} {
		cfg := config.Default()
		cfg.Design = d
		cfg.MeasureReqs = 8
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.RunSyncLatency(512, 0); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if n.Stats.RCPBytes == 0 || n.Stats.RRPPBytes == 0 {
			t.Fatalf("%v: data-path counters silent", d)
		}
	}
}

// TestDeterminism: identical seeds give identical results.
func TestDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := config.Default()
		cfg.Design = config.NISplit
		cfg.Seed = 1234
		cfg.MeasureReqs = 16
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunSyncLatency(256, 13)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanCycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %.2f vs %.2f", a, b)
	}
}

// TestNIEdgeCacheParticipates: in the edge design the per-row NI caches
// must be doing real coherent work (misses and refetches from polling).
func TestNIEdgeCacheParticipates(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NIEdge
	cfg.MeasureReqs = 16
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(64, 27); err != nil {
		t.Fatal(err)
	}
	row := 27 / cfg.MeshWidth
	ni := n.EdgeCaches[row]
	if ni.Misses < 8 {
		t.Fatalf("edge NI cache misses=%d — WQ invalidation ping-pong absent", ni.Misses)
	}
}

// TestComplexEliminatesQPTraffic: in the split design the QP interactions
// must be overwhelmingly local (internal transfers, not directory misses).
func TestComplexEliminatesQPTraffic(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.MeasureReqs = 32
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(64, 27); err != nil {
		t.Fatal(err)
	}
	agent := n.Agents[27]
	if agent.InternalTransfers == 0 {
		t.Fatal("no internal L1<->NI transfers")
	}
	// Steady state: misses should be a handful (initial acquisitions),
	// far fewer than the 40 requests' worth of QP interactions.
	if agent.Misses > 20 {
		t.Fatalf("complex misses=%d — QP traffic not eliminated", agent.Misses)
	}
	_ = noc.NodeID(0)
}
