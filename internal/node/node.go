// Package node assembles one simulated SoC: tiles (cores, L1s, LLC/
// directory slices), the on-chip network, memory controllers, the RMC
// pipelines in the placement selected by the configured NI design, and the
// rack emulation. It also provides the two microbenchmark harnesses of §5
// (synchronous latency, asynchronous bandwidth).
package node

import (
	"context"
	"fmt"

	"rackni/internal/coherence"
	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/mem"
	"rackni/internal/noc"
	"rackni/internal/nocout"
	"rackni/internal/sim"
)

// Memory map of the microbenchmarks (§5): the QP region is small; the
// local buffer and remote source regions exceed the aggregate on-chip
// cache capacity so all data accesses hit DRAM.
const (
	QPBase      = 0x4000_0000
	QPStride    = 0x1_0000 // 64 KB per core: WQ, then CQ at +32 KB
	CQOffset    = 0x8000
	LocalBase   = 0x8000_0000
	LocalStride = 0x20_0000 // 2 MB per core
	SourceBase  = 0x1_0000_0000
	SourceSpan  = 0x800_0000 // 128 MB shared source region
)

// qpWQBase returns core c's WQ base. The bases are staggered by one block
// per core (and the CQ by an additional half-region) so that QP head
// blocks scatter across home tiles and cache sets, the way physically
// allocated QP pages would; a naive 64 KB-aligned layout would alias every
// queue's head block onto one LLC set and one home tile.
func qpWQBase(cfg *config.Config, c int) uint64 {
	return uint64(QPBase + c*QPStride + c*cfg.BlockBytes)
}

// qpCQBase returns core c's CQ base.
func qpCQBase(cfg *config.Config, c int) uint64 {
	return qpWQBase(cfg, c) + CQOffset + 32*uint64(cfg.BlockBytes)
}

// Node is one assembled SoC plus its emulated rack.
type Node struct {
	Eng    *sim.Engine
	Cfg    *config.Config
	Mesh   *noc.Mesh
	NOCOut *nocout.Net
	Net    noc.Fabric
	Stats  *rmc.Stats
	Rack   *fabric.Rack

	Homes      []*coherence.Home  // one per LLC bank
	Agents     []*coherence.Agent // one per core (L1 or L1+NI complex)
	EdgeCaches []*coherence.Agent // NIedge only: one NI cache per row
	QPs        []*rmc.QueuePair
	Drivers    []*cpu.Driver
	AppDrivers []*cpu.AppDriver

	RGPBackends []*rmc.RGPBackend
	RRPPs       []*rmc.RRPP

	env      *rmc.Env
	rackHops int
	port     fabric.NodePort
	member   bool // part of a cluster: run control belongs to the cluster

	// resets returns every stateful component to its freshly-constructed
	// state; frontends re-arm their WQ poll chains afterwards. Both are
	// collected in construction order so a Session.Begin reproduces a
	// fresh node's initial event sequence exactly.
	resets    []func()
	frontends []*rmc.RGPFrontend

	// session is the node's run lifecycle (nil for cluster members, whose
	// lifecycle belongs to the cluster's session).
	session *Session

	ctx   context.Context // optional; polled by the run loops
	watch *sim.CancelWatch
}

// SetContext attaches ctx to the node. Subsequent runs poll it periodically
// (every cancelCheckCycles simulated cycles) and abort with the context's
// error once it is cancelled; a nil or non-cancellable context costs
// nothing.
func (n *Node) SetContext(ctx context.Context) { n.ctx = ctx }

// Port returns the node's attachment descriptor for the inter-node
// fabric: what a fabric.Rack or fabric.Interconnect needs to land inbound
// requests on the node's RRPP rows and responses on its injection ports.
func (n *Node) Port() fabric.NodePort { return n.port }

// endpoint is the per-NodeID kind dispatcher: a tile (or edge NI block)
// hosts several devices behind one NOC endpoint.
type endpoint struct {
	home  *coherence.Home
	agent *coherence.Agent
	dp    *rmc.DataPath
	rcpB  *rmc.RCPBackend
	rrpp  *rmc.RRPP
	onWQ  func(*rmc.Request)
	onCQ  func(*rmc.Request)
}

func (e *endpoint) handle(m *noc.Message) {
	switch {
	case m.Kind == coherence.KNIReadResp || m.Kind == coherence.KNIWriteAck:
		e.dp.Handle(m)
	case coherence.HomeKind(m.Kind):
		e.home.Handle(m)
	case m.Kind == rmc.KWQDispatch:
		r := m.Meta.(*rmc.Request)
		noc.Release(m)
		e.onWQ(r)
	case m.Kind == rmc.KCQDispatch:
		r := m.Meta.(*rmc.Request)
		noc.Release(m)
		e.onCQ(r)
	case m.Kind == rmc.KNetResponse:
		e.rcpB.HandleResponse(m)
	case m.Kind == rmc.KNetInbound:
		e.rrpp.HandleInbound(m)
	default:
		e.agent.Handle(m)
	}
}

// New builds a node with the given configuration (mesh topology) and
// one-way intra-rack hop count, with the rest of the rack emulated by the
// paper's mirror-traffic methodology (fabric.Rack) — the single-node fast
// path.
func New(cfg config.Config, hops int) (*Node, error) {
	return newMesh(sim.NewEngine(), cfg, hops, true)
}

// NewMember builds a node of a multi-node cluster: it shares the given
// engine with its peers and attaches no rack emulation — the caller wires
// the node's network ports into a real inter-node fabric
// (fabric.NewInterconnect) through Port(). hops is the one-way distance to
// the node's default peer, used only for latency tomography. Topology is
// taken from the configuration.
func NewMember(eng *sim.Engine, cfg config.Config, hops int) (*Node, error) {
	var n *Node
	var err error
	if cfg.Topology == config.NOCOut {
		n, err = newNOCOut(eng, cfg, hops, false)
	} else {
		n, err = newMesh(eng, cfg, hops, false)
	}
	if err != nil {
		return nil, err
	}
	n.member = true
	return n, nil
}

// newMesh assembles a mesh-topology node on the given engine, optionally
// attaching the single-node rack emulation to its network ports.
func newMesh(eng *sim.Engine, cfg config.Config, hops int, attachRack bool) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topology != config.Mesh {
		return nil, fmt.Errorf("node.New builds mesh nodes; use NewNOCOut for %v", cfg.Topology)
	}
	n := &Node{Eng: eng, Cfg: &cfg, Stats: rmc.NewStats(), rackHops: hops}
	n.watch = sim.NewCancelWatch(n.Eng, cancelCheckCycles, n.context)
	n.Mesh = noc.NewMesh(n.Eng, &cfg)
	n.Net = n.Mesh
	n.resets = append(n.resets, n.Mesh.Reset)

	tiles := cfg.Tiles()
	homeOf := func(addr uint64) noc.NodeID {
		return noc.NodeID((addr / uint64(cfg.BlockBytes)) % uint64(tiles))
	}
	n.env = &rmc.Env{Eng: n.Eng, Cfg: n.Cfg, Net: n.Net, HomeOf: homeOf, Stats: n.Stats}

	// Memory controllers: one per row on the east edge (§4.3).
	for row := 0; row < cfg.MeshHeight; row++ {
		mc := mem.New(n.Eng, n.Net, &cfg, row)
		n.resets = append(n.resets, mc.Reset)
	}

	// Tiles: home (LLC slice + directory slice) everywhere; cache agents
	// per design.
	eps := make(map[noc.NodeID]*endpoint)
	bank := cfg.LLCSizeBytes / tiles
	n.Homes = make([]*coherence.Home, tiles)
	n.Agents = make([]*coherence.Agent, tiles)
	for t := 0; t < tiles; t++ {
		id := noc.NodeID(t)
		row := t / cfg.MeshWidth
		n.Homes[t] = coherence.NewHome(n.Eng, n.Net, &cfg, id, noc.MCID(row), bank)
		if cfg.Design == config.NIEdge {
			n.Agents[t] = coherence.NewAgent(n.Eng, n.Net, &cfg, id,
				cfg.L1SizeBytes, cfg.L1Ways, int64(cfg.L1Latency), homeOf)
		} else {
			n.Agents[t] = coherence.NewComplex(n.Eng, n.Net, &cfg, id, homeOf)
		}
		eps[id] = &endpoint{home: n.Homes[t], agent: n.Agents[t]}
		n.resets = append(n.resets, n.Homes[t].Reset, n.Agents[t].Reset)
	}

	// Queue pairs.
	n.QPs = make([]*rmc.QueuePair, tiles)
	for c := 0; c < tiles; c++ {
		n.QPs[c] = rmc.NewQueuePair(&cfg, c, qpWQBase(&cfg, c), qpCQBase(&cfg, c))
		n.resets = append(n.resets, n.QPs[c].Reset)
	}
	qpOf := func(c int) *rmc.QueuePair { return n.QPs[c] }

	rowOfCore := func(c int) int { return c / cfg.MeshWidth }

	// Edge NI endpoints: RRPP everywhere; RGP/RCP per design.
	switch cfg.Design {
	case config.NIEdge:
		n.EdgeCaches = make([]*coherence.Agent, cfg.MeshHeight)
		for row := 0; row < cfg.MeshHeight; row++ {
			niID := noc.NIID(row)
			dp := rmc.NewDataPath(n.env, niID)
			niCache := coherence.NewAgent(n.Eng, n.Net, &cfg, niID,
				cfg.NICacheBlocks*cfg.BlockBytes, 4, 2, homeOf)
			n.EdgeCaches[row] = niCache
			cache := rmc.EdgeCache{Agent: niCache}

			rgpB := rmc.NewRGPBackend(n.env, niID, noc.NetID(row), niID,
				int64(cfg.RGPUnifiedLat), dp)
			rcpF := rmc.NewRCPFrontend(n.env, cache, 0, qpOf)
			rcpB := rmc.NewRCPBackend(n.env, niID, int64(cfg.RCPUnifiedLat), dp, rcpF.Complete)
			rgpB.OnFail(rcpB.FailRequest)
			rgpF := rmc.NewRGPFrontend(n.env, cache, 0, rgpB.Accept)
			rrpp := rmc.NewRRPP(n.env, niID, noc.NetID(row), dp)

			for c := 0; c < tiles; c++ {
				if rowOfCore(c) == row {
					rgpF.AddQP(n.QPs[c])
				}
			}
			n.RGPBackends = append(n.RGPBackends, rgpB)
			n.RRPPs = append(n.RRPPs, rrpp)
			n.frontends = append(n.frontends, rgpF)
			n.resets = append(n.resets, niCache.Reset, dp.Reset, rgpB.Reset, rrpp.Reset)
			eps[niID] = &endpoint{agent: niCache, dp: dp, rcpB: rcpB, rrpp: rrpp}
		}

	case config.NIPerTile:
		// Full RGP/RCP at every tile; RRPPs at the edge.
		for t := 0; t < tiles; t++ {
			id := noc.NodeID(t)
			row := rowOfCore(t)
			dp := rmc.NewDataPath(n.env, id)
			cache := rmc.NISideCache{Agent: n.Agents[t]}

			rgpB := rmc.NewRGPBackend(n.env, id, noc.NetID(row), id,
				int64(cfg.RGPUnifiedLat), dp)
			rcpF := rmc.NewRCPFrontend(n.env, cache, 0, qpOf)
			rcpB := rmc.NewRCPBackend(n.env, id, int64(cfg.RCPUnifiedLat), dp, rcpF.Complete)
			rgpB.OnFail(rcpB.FailRequest)
			rgpF := rmc.NewRGPFrontend(n.env, cache, 0, rgpB.Accept)
			rgpF.AddQP(n.QPs[t])

			ep := eps[id]
			ep.dp = dp
			ep.rcpB = rcpB
			n.RGPBackends = append(n.RGPBackends, rgpB)
			n.frontends = append(n.frontends, rgpF)
			n.resets = append(n.resets, dp.Reset, rgpB.Reset)
		}
		for row := 0; row < cfg.MeshHeight; row++ {
			niID := noc.NIID(row)
			dp := rmc.NewDataPath(n.env, niID)
			rrpp := rmc.NewRRPP(n.env, niID, noc.NetID(row), dp)
			n.RRPPs = append(n.RRPPs, rrpp)
			n.resets = append(n.resets, dp.Reset, rrpp.Reset)
			eps[niID] = &endpoint{dp: dp, rrpp: rrpp}
		}

	case config.NISplit:
		// Backends at the edge, one per row.
		for row := 0; row < cfg.MeshHeight; row++ {
			niID := noc.NIID(row)
			dp := rmc.NewDataPath(n.env, niID)
			rgpB := rmc.NewRGPBackend(n.env, niID, noc.NetID(row), niID,
				int64(cfg.RGPBackendLat), dp)
			// RCP backend completes by sending a CQ-dispatch packet to the
			// issuing core's tile (the split Frontend-Backend Interface).
			cqSender := newSender(n.env, niID)
			rcpB := rmc.NewRCPBackend(n.env, niID, int64(cfg.RCPBackendLat), dp,
				func(r *rmc.Request) {
					cqSender.dispatch(noc.VNResp, noc.ClassResponse,
						noc.NodeID(r.Core), 1, rmc.KCQDispatch, r)
				})
			rgpB.OnFail(rcpB.FailRequest)
			rrpp := rmc.NewRRPP(n.env, niID, noc.NetID(row), dp)
			n.RGPBackends = append(n.RGPBackends, rgpB)
			n.RRPPs = append(n.RRPPs, rrpp)
			n.resets = append(n.resets, dp.Reset, rgpB.Reset, rrpp.Reset, cqSender.out.Reset)
			eps[niID] = &endpoint{dp: dp, rcpB: rcpB, rrpp: rrpp,
				onWQ: rgpB.Accept}
		}
		// Frontends at every tile; WQ dispatch rides the NOC to the row's
		// backend.
		for t := 0; t < tiles; t++ {
			id := noc.NodeID(t)
			row := rowOfCore(t)
			cache := rmc.NISideCache{Agent: n.Agents[t]}
			wqSender := newSender(n.env, id)
			niID := noc.NIID(row)
			rgpF := rmc.NewRGPFrontend(n.env, cache, int64(cfg.RGPFrontendLat),
				func(r *rmc.Request) {
					wqSender.dispatch(noc.VNReq, noc.ClassRequest,
						niID, cfg.ReqHeaderFlits, rmc.KWQDispatch, r)
				})
			rgpF.AddQP(n.QPs[t])
			rcpF := rmc.NewRCPFrontend(n.env, cache, int64(cfg.RCPFrontendLat), qpOf)
			n.frontends = append(n.frontends, rgpF)
			n.resets = append(n.resets, wqSender.out.Reset)
			eps[id].onCQ = rcpF.Complete
		}
	}

	// Register every endpoint dispatcher.
	for id, ep := range eps {
		ep := ep
		n.Net.Register(id, ep.handle)
	}

	// Attachment to the inter-node fabric: the rack emulation (N=1) or a
	// cluster interconnect (wired by the caller through Port).
	n.port = fabric.NodePort{
		Env:     n.env,
		Ports:   cfg.MeshHeight,
		HomeRow: func(addr uint64) int { return int(homeOf(addr)) / cfg.MeshWidth },
		RowOf: func(id noc.NodeID) int {
			if noc.IsTile(id) {
				return int(id) / cfg.MeshWidth
			}
			return noc.Row(id)
		},
		RRPPAt: func(row int) noc.NodeID { return noc.NIID(row) },
	}
	if attachRack {
		n.Rack = fabric.NewRack(n.port, hops)
		n.resets = append(n.resets, n.Rack.Reset)
		n.session = newSession([]*sim.Engine{n.Eng}, n.watch, []*Node{n}, nil)
	}
	return n, nil
}

// context is the watch's context getter (SetContext may replace the
// node's context between runs).
func (n *Node) context() context.Context { return n.ctx }

// sender injects the split design's frontend-backend packets through the
// shared retry-on-full outbox.
type sender struct {
	out *noc.Outbox
}

func newSender(env *rmc.Env, id noc.NodeID) *sender {
	return &sender{out: noc.NewOutbox(env.Net, id)}
}

// dispatch builds and sends one frontend-backend interface packet carrying
// the request as metadata.
func (s *sender) dispatch(vn noc.VN, class noc.Class, dst noc.NodeID, flits, kind int, r *rmc.Request) {
	m := noc.NewMessage()
	m.VN, m.Class = vn, class
	m.Src, m.Dst = s.out.ID(), dst
	m.Flits, m.Kind, m.Meta = flits, kind, r
	s.out.Send(m)
}
