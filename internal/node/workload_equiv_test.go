package node

import (
	"fmt"
	"reflect"
	"testing"

	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/cpu"
)

// refWorkloadResult is the pre-v2 result shape (no percentiles), for
// field-by-field comparison against the v2 path.
type refWorkloadResult struct {
	Completed    int64
	Cycles       int64
	MeanLatency  float64
	AppBytes     int64
	AllExhausted bool
}

// runWorkloadReference is the pre-v2 RunWorkload, retained verbatim on the
// old open-loop cpu.Driver so the legacy-adapter path can be
// equivalence-tested bit for bit against the driver it replaced.
func runWorkloadReference(n *Node, factory func(core int) cpu.Workload, maxCycles int64) (refWorkloadResult, error) {
	if maxCycles <= 0 {
		maxCycles = n.Cfg.MaxCycles
	}
	n.Drivers = n.Drivers[:0]
	active := 0
	for c := 0; c < n.Cfg.Tiles(); c++ {
		wl := factory(c)
		if wl == nil {
			continue
		}
		d := cpu.NewDriver(n.Eng, n.Cfg, c, n.Agents[c], n.QPs[c], n.Stats, wl, cpu.Async)
		active++
		d.OnIdle = func() {
			active--
			if active == 0 {
				n.Eng.Stop()
			}
		}
		n.Drivers = append(n.Drivers, d)
		d.Start()
	}
	if active == 0 {
		return refWorkloadResult{}, fmt.Errorf("node: no cores have workloads")
	}
	n.Eng.Run(maxCycles)
	return refWorkloadResult{
		Completed:    n.Stats.Completed,
		Cycles:       n.Eng.Now(),
		MeanLatency:  n.Stats.ReqLat.Mean(),
		AppBytes:     n.Stats.RCPBytes + n.Stats.RRPPBytes,
		AllExhausted: active == 0,
	}, nil
}

// pressureReads issues enough back-to-back reads to overflow the WQ, so
// the v2 driver's committed-issue spin path (WQ full) gets exercised.
type pressureReads struct {
	n    int
	size int
}

func (p pressureReads) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if int(seq) >= p.n {
		return 0, 0, 0, 0, false
	}
	remote := uint64(SourceBase) + (uint64(coreID)*100_000+seq)*4096
	local := LocalBase + uint64(coreID)*LocalStride + (seq%256)*uint64(p.size)
	return rmc.OpRead, remote, local, p.size, true
}

// equivCases are the workload mixes the equivalence test runs: every op
// type, multi-core interleaving, and WQ overflow pressure.
func equivCases() map[string]func(core int) cpu.Workload {
	return map[string]func(core int) cpu.Workload{
		"mixed8cores": func(core int) cpu.Workload {
			if core%8 != 0 {
				return nil
			}
			return mixedOps{n: 24, core: core}
		},
		"writes": func(core int) cpu.Workload {
			if core != 5 && core != 42 {
				return nil
			}
			return fixedWrites{n: 12, size: 512}
		},
		"wqpressure": func(core int) cpu.Workload {
			if core != 27 && core != 28 {
				return nil
			}
			return pressureReads{n: 400, size: 64}
		},
	}
}

// TestLegacyAdapterBitIdentical: the v2 AppDriver driving a v1 workload
// through the Legacy adapter must reproduce the old open-loop driver's
// results bit for bit — same completions, same final cycle, same mean
// latency to the last ulp, same application bytes — on every design and
// both topologies.
func TestLegacyAdapterBitIdentical(t *testing.T) {
	build := func(cfg config.Config, topo config.Topology) (*Node, error) {
		if topo == config.NOCOut {
			return NewNOCOut(cfg, 1)
		}
		return New(cfg, 1)
	}
	for name, factory := range equivCases() {
		for _, topo := range []config.Topology{config.Mesh, config.NOCOut} {
			for _, d := range []config.Design{config.NIEdge, config.NIPerTile, config.NISplit} {
				cfg := config.Default()
				cfg.Design = d
				cfg.Topology = topo

				nRef, err := build(cfg, topo)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := runWorkloadReference(nRef, factory, 8_000_000)
				if err != nil {
					t.Fatalf("%s/%v/%v reference: %v", name, topo, d, err)
				}

				nV2, err := build(cfg, topo)
				if err != nil {
					t.Fatal(err)
				}
				got, err := nV2.RunWorkload(factory, 8_000_000)
				if err != nil {
					t.Fatalf("%s/%v/%v v2: %v", name, topo, d, err)
				}

				if got.Completed != ref.Completed || got.Cycles != ref.Cycles ||
					got.MeanLatency != ref.MeanLatency || got.AppBytes != ref.AppBytes ||
					got.AllExhausted != ref.AllExhausted {
					t.Fatalf("%s/%v/%v diverges from the old driver:\nref: %+v\nv2:  completed=%d cycles=%d mean=%v bytes=%d exhausted=%v",
						name, topo, d, ref,
						got.Completed, got.Cycles, got.MeanLatency, got.AppBytes, got.AllExhausted)
				}
				if !ref.AllExhausted {
					t.Fatalf("%s/%v/%v: reference did not drain; the case is mis-sized", name, topo, d)
				}
				// The v2 result must additionally carry coherent per-core
				// breakdowns and percentiles.
				var perCore int64
				for _, c := range got.PerCore {
					perCore += c.Completed
				}
				if perCore != got.Completed {
					t.Fatalf("%s/%v/%v: per-core completions %d != total %d", name, topo, d, perCore, got.Completed)
				}
				if got.P50 <= 0 || got.P99 < got.P95 || got.P95 < got.P50 {
					t.Fatalf("%s/%v/%v: inconsistent percentiles p50=%d p95=%d p99=%d",
						name, topo, d, got.P50, got.P95, got.P99)
				}
			}
		}
	}
}

// TestRunWorkloadMaxCyclesPartial: a run cut off by maxCycles reports
// AllExhausted=false with partial statistics; the same workload given
// room reports AllExhausted=true (the closure-captured active counter).
func TestRunWorkloadMaxCyclesPartial(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	factory := func(core int) cpu.Workload {
		if core%4 != 0 {
			return nil
		}
		return pressureReads{n: 300, size: 64}
	}

	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := n.RunWorkload(factory, 20_000) // far too few cycles to finish
	if err != nil {
		t.Fatal(err)
	}
	if cut.AllExhausted {
		t.Fatalf("run stopped at maxCycles must not report AllExhausted: %+v", cut)
	}
	if cut.Cycles < 20_000 || cut.Cycles > 20_010 {
		t.Fatalf("cut run stopped at cycle %d, want ~maxCycles (20000)", cut.Cycles)
	}
	if cut.Completed <= 0 || cut.Completed >= 16*300 {
		t.Fatalf("cut run must report partial completions, got %d", cut.Completed)
	}
	if cut.MeanLatency <= 0 || cut.P99 <= 0 {
		t.Fatalf("cut run must still report stats: %+v", cut)
	}

	n2, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := n2.RunWorkload(factory, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !full.AllExhausted {
		t.Fatalf("drained run must report AllExhausted: %+v", full)
	}
	if full.Completed != 16*300 {
		t.Fatalf("full run completed %d of %d", full.Completed, 16*300)
	}
}

// deadlockApp waits without anything in flight — a contract violation the
// driver must surface instead of hanging the run.
type deadlockApp struct{}

func (deadlockApp) Step(int, int64, int) cpu.Action           { return cpu.Wait() }
func (deadlockApp) OnComplete(int, cpu.Request, int64, int64) {}

// TestRunAppDeadlockReported: RunApp fails loudly on a Wait-with-nothing-
// in-flight app rather than spinning to maxCycles.
func TestRunAppDeadlockReported(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunApp(func(core int) cpu.App {
		if core != 0 {
			return nil
		}
		return deadlockApp{}
	}, 1_000_000)
	if err == nil {
		t.Fatal("deadlocked app not reported")
	}
	if res.AllExhausted {
		t.Fatal("deadlocked run must not claim AllExhausted")
	}
}

// TestRunAppReusedNodePerRunStats: results on a reused node must cover
// only the current run — Completed/MeanLatency/AppBytes from the same
// sample set as the percentiles and per-core breakdowns.
func TestRunAppReusedNodePerRunStats(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(core int) cpu.Workload {
		if core != 27 {
			return nil
		}
		return pressureReads{n: 50, size: 64}
	}
	first, err := n.RunWorkload(factory, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.RunWorkload(factory, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.Completed != 50 {
		t.Fatalf("second run reports %d completions (leaked from the first run?), want 50", second.Completed)
	}
	var perCore int64
	for _, c := range second.PerCore {
		perCore += c.Completed
	}
	if perCore != second.Completed {
		t.Fatalf("per-core completions %d != total %d on reused node", perCore, second.Completed)
	}
	if second.AppBytes != first.AppBytes {
		t.Fatalf("identical runs report different bytes: %d vs %d", first.AppBytes, second.AppBytes)
	}
	if second.MeanLatency > float64(second.P99) {
		t.Fatalf("mean %.0f exceeds p99 %d: mixed sample sets", second.MeanLatency, second.P99)
	}
}

// TestRunAppReusedNodeCycles: a second run on a reused node reports its
// own duration and gets a full maxCycles budget, not the engine's
// cumulative clock and the remainder of an absolute deadline.
func TestRunAppReusedNodeCycles(t *testing.T) {
	cfg := config.Default()
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(core int) cpu.Workload {
		if core != 27 {
			return nil
		}
		return pressureReads{n: 50, size: 64}
	}
	first, err := n.RunWorkload(factory, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	second, err := n.RunWorkload(factory, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Identical workloads on a warm node: the second run's duration must
	// be its own (same order of magnitude as the first), not cumulative.
	if second.Cycles >= first.Cycles*2 {
		t.Fatalf("second run reports %d cycles (first: %d): cumulative clock leaked", second.Cycles, first.Cycles)
	}
	// A budget smaller than the engine's absolute clock must still run.
	third, err := n.RunWorkload(factory, first.Cycles/2)
	if err != nil {
		t.Fatal(err)
	}
	if third.Completed == 0 {
		t.Fatal("reused-node run with a small budget made no progress (absolute deadline leaked)")
	}
}

// TestRunAppAfterCutRun: a run cut short by maxCycles leaves in-flight
// traffic mid-pipeline. The Session annihilates it at the next Begin, so
// a second run on the same node is not merely tolerated (the pre-Session
// code refused it) — it is bit-identical to the same run on a fresh node.
func TestRunAppAfterCutRun(t *testing.T) {
	cfg := config.Default()
	factory := func(core int) cpu.Workload {
		if core%4 != 0 {
			return nil
		}
		return pressureReads{n: 300, size: 64}
	}
	fresh, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.RunWorkload(factory, 0)
	if err != nil {
		t.Fatal(err)
	}

	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := n.RunWorkload(factory, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if cut.AllExhausted {
		t.Fatal("cut run unexpectedly drained; the case is mis-sized")
	}
	got, err := n.RunWorkload(factory, 0)
	if err != nil {
		t.Fatalf("run after a cut run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("run after a cut run differs from a fresh node:\nfresh:  %+v\nreused: %+v", want, got)
	}
}

// TestRunAppAfterCutSyncRun: a cut-short sync microbenchmark must not
// leak its driver's traffic into a later workload run on the same node —
// either the run is refused (in-flight remnants) or its completions are
// exactly its own.
func TestRunAppAfterCutSyncRun(t *testing.T) {
	cfg := config.Default()
	cfg.MaxCycles = 3_000 // cut the sync run almost immediately
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(64, 27); err == nil {
		t.Fatal("sync run unexpectedly finished; the case is mis-sized")
	}
	res, err := n.RunWorkload(func(core int) cpu.Workload {
		if core != 5 {
			return nil
		}
		return pressureReads{n: 20, size: 64}
	}, 500_000)
	if err != nil {
		// Acceptable: the node refused because the cut run left in-flight
		// requests it cannot recall.
		return
	}
	if res.Completed != 20 {
		t.Fatalf("workload run counted %d completions (stale sync traffic leaked), want 20", res.Completed)
	}
}
