package node

import (
	"testing"

	"rackni/internal/config"
)

func syncRun(t *testing.T, d config.Design, size int) SyncResult {
	t.Helper()
	cfg := config.Default()
	cfg.Design = d
	cfg.MeasureReqs = 24
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunSyncLatency(size, 27)
	if err != nil {
		t.Fatalf("%v: %v", d, err)
	}
	return res
}

func TestSyncLatencyAllDesignsComplete(t *testing.T) {
	for _, d := range []config.Design{config.NIEdge, config.NIPerTile, config.NISplit} {
		res := syncRun(t, d, 64)
		if res.MeanCycles < 300 || res.MeanCycles > 2000 {
			t.Fatalf("%v: single-block latency %.0f cycles out of plausible range", d, res.MeanCycles)
		}
		t.Logf("%v: %.0f cycles (%.0f ns) breakdown=%+v", d, res.MeanCycles, res.MeanNS, res.Breakdown)
	}
}

func TestDesignLatencyOrdering(t *testing.T) {
	edge := syncRun(t, config.NIEdge, 64).MeanCycles
	tile := syncRun(t, config.NIPerTile, 64).MeanCycles
	split := syncRun(t, config.NISplit, 64).MeanCycles
	// Paper Table 3: NIedge 710 >> NIper-tile 445 ~= NIsplit 447.
	if edge <= tile || edge <= split {
		t.Fatalf("NIedge (%.0f) must be slower than per-tile (%.0f) and split (%.0f)", edge, tile, split)
	}
	if diff := split - tile; diff < -60 || diff > 60 {
		t.Fatalf("per-tile (%.0f) and split (%.0f) should be within ~60 cycles at 64B", tile, split)
	}
}

func TestQPOverheadDominatesInEdge(t *testing.T) {
	res := syncRun(t, config.NIEdge, 64)
	b := res.Breakdown
	qp := b.WQWrite + b.WQRead + b.CQWrite + b.CQRead
	if qp < 150 {
		t.Fatalf("edge QP interaction cost %.0f cycles; paper reports hundreds", qp)
	}
	res2 := syncRun(t, config.NISplit, 64)
	b2 := res2.Breakdown
	qp2 := b2.WQWrite + b2.WQRead + b2.CQWrite + b2.CQRead
	if qp2 >= qp/2 {
		t.Fatalf("split QP cost %.0f not much lower than edge %.0f", qp2, qp)
	}
}

func TestLargeTransferUnrolls(t *testing.T) {
	res := syncRun(t, config.NISplit, 4096)
	if res.MeanCycles < 500 {
		t.Fatalf("4KB read faster than 64B read? %.0f cycles", res.MeanCycles)
	}
	res64 := syncRun(t, config.NISplit, 64)
	if res.MeanCycles <= res64.MeanCycles {
		t.Fatalf("4KB (%.0f) must cost more than 64B (%.0f)", res.MeanCycles, res64.MeanCycles)
	}
}

func TestBandwidthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth run in -short mode")
	}
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.WindowCycles = 30_000
	cfg.MaxCycles = 400_000
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunBandwidth(2048)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("split 2KB: app=%.1f GB/s noc=%.1f GB/s bisection=%.1f GB/s stable=%v completed=%d cycles=%d",
		res.AppGBps, res.NOCGBps, res.BisectionGBps, res.Stable, res.Completed, res.Cycles)
	if res.AppGBps < 20 {
		t.Fatalf("implausibly low aggregate bandwidth: %.1f GB/s", res.AppGBps)
	}
	if res.NOCGBps < res.AppGBps {
		t.Fatalf("NOC bandwidth (%.1f) below application bandwidth (%.1f)", res.NOCGBps, res.AppGBps)
	}
}
