package node

import (
	"strings"
	"testing"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
)

// poisonApp issues one read whose "node-local" address has a stray bit in
// the selector field [40,52) — the mis-routing hazard the addressing
// contract forbids.
type poisonApp struct{ issued bool }

func (p *poisonApp) Step(coreID int, now int64, inflight int) cpu.Action {
	if p.issued {
		if inflight > 0 {
			return cpu.Wait()
		}
		return cpu.Done()
	}
	p.issued = true
	return cpu.Issue(cpu.Request{
		Op:     cpu.Request{}.Op, // OpRead zero value
		Remote: uint64(1)<<(fabric.NodeSelShift+1) | SourceBase,
		Local:  LocalBase,
		Size:   64,
	})
}

func (p *poisonApp) OnComplete(int, cpu.Request, int64, int64) {}

// TestClusterSelectorHazardFailsLoudly: a workload touching a node-local
// address with bits in [40,52) must fail its run with a contract error —
// before the Session owned the issue boundary, the address was silently
// reinterpreted by SplitAddr as an explicit target and landed on the
// wrong node.
func TestClusterSelectorHazardFailsLoudly(t *testing.T) {
	cfg := config.Default()
	cfg.MeasureReqs = 4
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.RunApp(func(node, core int) cpu.App {
		if node != 0 || core != 0 {
			return nil
		}
		return &poisonApp{}
	}, 100_000)
	if err == nil {
		t.Fatal("run with a poisoned node-local address must fail loudly, not mis-route")
	}
	if !strings.Contains(err.Error(), "invalid remote address") {
		t.Fatalf("hazard error does not name the contract violation: %v", err)
	}
}

// smokeClusterCfg is the large-N smoke configuration: a reduced 4x2 chip
// per node so hundreds of detailed nodes fit one engine in CI-feasible
// time, with short budgets — these runs prove scale and wiring, not
// paper-fidelity metrics.
func smokeClusterCfg() config.Config {
	cfg := config.Default()
	cfg.MeshWidth = 4
	cfg.MeshHeight = 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0
	cfg.WindowCycles = 2_000
	cfg.MaxCycles = 8_000
	return cfg
}

// runClusterSmoke builds an n-node torus-placed cluster, runs a short
// fixed-budget bandwidth burst, and checks every node actually exchanged
// traffic over the real fabric.
func runClusterSmoke(t *testing.T, n int) *Cluster {
	t.Helper()
	cfg := smokeClusterCfg()
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: n, Placement: identityPlacement(n)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.RunBandwidth(1024)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Completed == 0 {
		t.Fatal("smoke run completed no requests")
	}
	for i := range cl.Nodes {
		cs := cl.Inter.Counters[i]
		if cs.RequestsOut == 0 || cs.InboundDelivered == 0 {
			t.Fatalf("node %d exchanged no traffic (out=%d, inbound=%d)", i, cs.RequestsOut, cs.InboundDelivered)
		}
	}
	return cl
}

// TestClusterSmoke64: a 64-node cluster (4x4x4 sub-torus of coordinates)
// executes end-to-end under a short budget. Wired into the CI workflow as
// the cluster smoke step.
func TestClusterSmoke64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node smoke runs in the dedicated CI step")
	}
	runClusterSmoke(t, 64)
}

// TestClusterPaperScale512: the paper's full rack — 512 nodes at every
// coordinate of the 8x8x8 3D torus — executes end-to-end under a short
// cycle budget, with the placement's hop statistics matching the torus
// figures the paper quotes (average 6, diameter 12).
func TestClusterPaperScale512(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node rack run skipped in -short")
	}
	cl := runClusterSmoke(t, 512)

	// The identity placement covers the whole torus: pairwise distances
	// from node 0 must average the paper's 6.0 (and peak at 12).
	topo := fabric.NewTorus3D(cl.Cfg.TorusRadix)
	if n := topo.Nodes(); n != 512 {
		t.Fatalf("torus has %d nodes, want 512", n)
	}
	var sum, max int
	for b := 1; b < 512; b++ {
		d := cl.Inter.Dist(0, b)
		sum += d
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / 511
	if avg < 5.9 || avg > 6.1 {
		t.Fatalf("average hop distance %.3f, want ≈6 (paper's 8x8x8 torus)", avg)
	}
	if max != topo.MaxHops() {
		t.Fatalf("max hop distance %d, want the torus diameter %d", max, topo.MaxHops())
	}
}
