package node

import (
	"reflect"
	"testing"

	"rackni/internal/config"
	"rackni/internal/cpu"
)

// The Session torture tests: interleave every run type on one reused node
// (and one reused cluster) and demand each result be bit-identical to the
// same run on a fresh instance. This is the structural guarantee that
// kills the reused-node state-leak bug class — stale drivers, warm caches,
// unreset stats sinks, leaking Rack/Interconnect counters, in-flight
// pipeline remnants of cut-short runs — which PRs 3 and 4 each patched
// piecemeal. Wired into the CI race job.

// tortureCfg keeps the many runs of the torture sequence fast. MaxCycles
// is sized so the bandwidth run is cut mid-flight (never stabilizing with
// StableDelta=0), leaving in-flight traffic the Session must annihilate.
func tortureCfg(d config.Design, topo config.Topology) config.Config {
	cfg := config.Default()
	cfg.Design = d
	cfg.Topology = topo
	cfg.MeasureReqs = 8
	cfg.WarmupRequests = 2
	cfg.WindowCycles = 8_000
	cfg.StableDelta = 0
	cfg.MaxCycles = 28_000
	return cfg
}

// tortureWorkload is a multi-core v1 mix (runs through the v2 legacy
// adapter) with enough pressure to overflow WQs.
func tortureWorkload(core int) cpu.Workload {
	if core%8 != 3 {
		return nil
	}
	return pressureReads{n: 40, size: 256}
}

// tortureApp is a v2 closed-loop app with waits and think time.
func tortureApp(core int) cpu.App {
	if core != 11 {
		return nil
	}
	return cpu.Legacy(pressureReads{n: 25, size: 512})
}

// nodeRun is one step of the node torture sequence: run one kind of run
// and return its result as a comparable value.
type nodeRun struct {
	name string
	run  func(t *testing.T, n *Node) any
}

func nodeTortureSequence() []nodeRun {
	return []nodeRun{
		{"sync", func(t *testing.T, n *Node) any {
			r, err := n.RunSyncLatency(512, 27)
			if err != nil {
				t.Fatalf("sync: %v", err)
			}
			return r
		}},
		{"bandwidth-cut", func(t *testing.T, n *Node) any {
			// StableDelta=0 never stabilizes: the run is cut by MaxCycles
			// with a full pipeline of in-flight traffic.
			r, err := n.RunBandwidth(1024)
			if err != nil {
				t.Fatalf("bandwidth: %v", err)
			}
			return r
		}},
		{"workload", func(t *testing.T, n *Node) any {
			r, err := n.RunWorkload(tortureWorkload, 0)
			if err != nil {
				t.Fatalf("workload: %v", err)
			}
			return r
		}},
		{"app", func(t *testing.T, n *Node) any {
			r, err := n.RunApp(tortureApp, 0)
			if err != nil {
				t.Fatalf("app: %v", err)
			}
			return r
		}},
	}
}

// TestSessionNodeTorture interleaves every run type twice over on one
// reused node and checks each result bit-identical to a fresh node's.
func TestSessionNodeTorture(t *testing.T) {
	designs := []config.Design{config.NISplit}
	topos := []config.Topology{config.Mesh, config.NOCOut}
	if !testing.Short() {
		designs = []config.Design{config.NIEdge, config.NIPerTile, config.NISplit}
	}
	for _, d := range designs {
		for _, topo := range topos {
			cfg := tortureCfg(d, topo)
			name := d.String() + "/" + topo.String()
			reused := buildSingle(t, cfg, 2)
			seq := nodeTortureSequence()
			// Two full passes: the second pass reruns every kind after
			// every other kind has already dirtied the node.
			for pass := 0; pass < 2; pass++ {
				for _, step := range seq {
					fresh := buildSingle(t, cfg, 2)
					want := step.run(t, fresh)
					got := step.run(t, reused)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s pass %d %s: reused node differs from fresh\nfresh:  %+v\nreused: %+v",
							name, pass, step.name, want, got)
					}
				}
			}
		}
	}
}

// TestSessionClusterTorture interleaves every cluster run type on one
// reused 2-node cluster and checks each result bit-identical to a fresh
// cluster's, including the interconnect's ledger.
func TestSessionClusterTorture(t *testing.T) {
	cfg := tortureCfg(config.NISplit, config.Mesh)
	spec := ClusterSpec{Nodes: 2, Hops: 2}
	build := func() *Cluster {
		cl, err := NewCluster(cfg, spec)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	type step struct {
		name string
		run  func(t *testing.T, c *Cluster) any
	}
	appFactory := func(node, core int) cpu.App { return tortureApp(core) }
	seq := []step{
		{"sync", func(t *testing.T, c *Cluster) any {
			r, err := c.RunSyncLatency(512, 27)
			if err != nil {
				t.Fatalf("cluster sync: %v", err)
			}
			return r
		}},
		{"bandwidth-cut", func(t *testing.T, c *Cluster) any {
			r, err := c.RunBandwidth(1024)
			if err != nil {
				t.Fatalf("cluster bandwidth: %v", err)
			}
			return r
		}},
		{"app", func(t *testing.T, c *Cluster) any {
			r, err := c.RunApp(appFactory, 0)
			if err != nil {
				t.Fatalf("cluster app: %v", err)
			}
			return r
		}},
	}
	reused := build()
	for pass := 0; pass < 2; pass++ {
		for _, st := range seq {
			fresh := build()
			want := st.run(t, fresh)
			got := st.run(t, reused)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("pass %d %s: reused cluster differs from fresh\nfresh:  %+v\nreused: %+v",
					pass, st.name, want, got)
			}
			if !reflect.DeepEqual(fresh.Inter.Counters, reused.Inter.Counters) {
				t.Fatalf("pass %d %s: interconnect ledgers differ\nfresh:  %+v\nreused: %+v",
					pass, st.name, fresh.Inter.Counters, reused.Inter.Counters)
			}
		}
	}
}
