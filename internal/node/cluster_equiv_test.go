package node

import (
	"math"
	"testing"

	"rackni/internal/config"
)

// Cross-validation of the two implementations of "the rack": the paper's
// single-node mirror-traffic emulation (fabric.Rack, §5) against a real
// 2-node cluster (fabric.Interconnect) in the symmetric arrangement —
// both nodes run identical workloads with identical seeds, so each node's
// inbound traffic is exactly the mirror stream the emulation synthesizes.
// The two are independent implementations of the same system, so their
// results must agree:
//
//   - mean sync latency and per-node bandwidth within syncTol/bwTol
//     (documented in the README accuracy table; residual differences come
//     only from same-cycle event interleaving between the two nodes'
//     otherwise independent event streams), and
//   - hop-delay accounting bit-exact: both worlds charge exactly
//     hops*NetHopCycles per leg per block, and the emulation's HopCycles
//     must equal the cluster's per-node counterpart.
const (
	syncTol = 0.01 // 1% on mean sync latency
	bwTol   = 0.05 // 5% on per-node application bandwidth
)

// equivCfg is a reduced-size configuration so the 3 designs x 2
// topologies matrix stays fast.
func equivCfg(d config.Design, topo config.Topology) config.Config {
	cfg := config.Default()
	cfg.Design = d
	cfg.Topology = topo
	cfg.MeasureReqs = 24
	cfg.WarmupRequests = 4
	cfg.WindowCycles = 20_000
	cfg.MaxCycles = 400_000
	return cfg
}

// buildSingle builds the emulated-rack node for the configuration.
func buildSingle(t *testing.T, cfg config.Config, hops int) *Node {
	t.Helper()
	var n *Node
	var err error
	if cfg.Topology == config.NOCOut {
		n, err = NewNOCOut(cfg, hops)
	} else {
		n, err = New(cfg, hops)
	}
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func designMatrix() []config.Design {
	return []config.Design{config.NIEdge, config.NIPerTile, config.NISplit}
}

func topoMatrix() []config.Topology {
	return []config.Topology{config.Mesh, config.NOCOut}
}

// TestClusterSyncMatchesEmulation: unloaded remote-read latency must
// agree between emulation and simulation across all three NI designs and
// both on-chip topologies, with the hop legs accounted identically.
func TestClusterSyncMatchesEmulation(t *testing.T) {
	const hops, size, core = 3, 512, 27
	for _, d := range designMatrix() {
		for _, topo := range topoMatrix() {
			cfg := equivCfg(d, topo)
			name := d.String() + "/" + topo.String()

			single := buildSingle(t, cfg, hops)
			emu, err := single.RunSyncLatency(size, core)
			if err != nil {
				t.Fatalf("%s: emulated run: %v", name, err)
			}

			cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: hops})
			if err != nil {
				t.Fatalf("%s: cluster: %v", name, err)
			}
			sim, err := cl.RunSyncLatency(size, core)
			if err != nil {
				t.Fatalf("%s: cluster run: %v", name, err)
			}

			for i, pn := range sim.PerNode {
				rel := math.Abs(pn.MeanNS-emu.MeanNS) / emu.MeanNS
				if rel > syncTol {
					t.Errorf("%s node %d: cluster %.1f ns vs emulated %.1f ns (%.2f%% > %.0f%%)",
						name, i, pn.MeanNS, emu.MeanNS, rel*100, syncTol*100)
				}
				// Hop-delay accounting must be exact: both worlds charge
				// hops*NetHopCycles per direction.
				if pn.Breakdown.NetOut != emu.Breakdown.NetOut || pn.Breakdown.NetBack != emu.Breakdown.NetBack {
					t.Errorf("%s node %d: hop legs %.0f/%.0f, emulated %.0f/%.0f (must be exact)",
						name, i, pn.Breakdown.NetOut, pn.Breakdown.NetBack,
						emu.Breakdown.NetOut, emu.Breakdown.NetBack)
				}
			}

			// The fabric-level ledger: each node's own requests crossed
			// the same number of hop-cycles as the emulation's mirrors.
			rack := single.Rack
			for i := range cl.Nodes {
				cs := cl.Inter.Counters[i]
				if cs.HopCycles != rack.HopCycles {
					t.Errorf("%s node %d: interconnect hop-cycles %d != emulation %d",
						name, i, cs.HopCycles, rack.HopCycles)
				}
				if cs.RequestsOut != rack.RequestsOut {
					t.Errorf("%s node %d: %d requests out vs emulated %d",
						name, i, cs.RequestsOut, rack.RequestsOut)
				}
			}
			t.Logf("%s: emulated %.1f ns, cluster %.1f ns (Δ %.3f%%), hop-cycles %d (exact)",
				name, emu.MeanNS, sim.PerNode[0].MeanNS,
				math.Abs(sim.PerNode[0].MeanNS-emu.MeanNS)/emu.MeanNS*100,
				rack.HopCycles)
		}
	}
}

// TestClusterBandwidthMatchesEmulation: loaded per-node application
// bandwidth must agree between the emulated rack and the real 2-node
// fabric. Both worlds measure over the same fixed cycle interval
// (StableDelta=0 disables early stabilization), so the comparison is not
// clouded by the two monitors stabilizing at different times; what
// remains is genuine traffic-timing divergence, which must stay within
// bwTol. The full matrix is exercised without -short; the quick pass
// keeps one design per topology.
func TestClusterBandwidthMatchesEmulation(t *testing.T) {
	const hops = 1
	size := 1024
	designs, topos := designMatrix(), topoMatrix()
	if testing.Short() {
		designs = []config.Design{config.NISplit}
		topos = []config.Topology{config.Mesh}
	}
	for _, d := range designs {
		for _, topo := range topos {
			cfg := equivCfg(d, topo)
			cfg.StableDelta = 0 // fixed measurement interval in both worlds
			cfg.MaxCycles = 150_000
			name := d.String() + "/" + topo.String()

			single := buildSingle(t, cfg, hops)
			emu, err := single.RunBandwidth(size)
			if err != nil {
				t.Fatalf("%s: emulated run: %v", name, err)
			}

			cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: hops})
			if err != nil {
				t.Fatalf("%s: cluster: %v", name, err)
			}
			sim, err := cl.RunBandwidth(size)
			if err != nil {
				t.Fatalf("%s: cluster run: %v", name, err)
			}

			for i, pn := range sim.PerNode {
				rel := math.Abs(pn.AppGBps-emu.AppGBps) / emu.AppGBps
				if rel > bwTol {
					t.Errorf("%s node %d: cluster %.2f GB/s vs emulated %.2f GB/s (%.2f%% > %.0f%%)",
						name, i, pn.AppGBps, emu.AppGBps, rel*100, bwTol*100)
				}
			}
			t.Logf("%s: emulated %.1f GB/s, cluster node0 %.1f GB/s (Δ %.2f%%)",
				name, emu.AppGBps, sim.PerNode[0].AppGBps,
				math.Abs(sim.PerNode[0].AppGBps-emu.AppGBps)/emu.AppGBps*100)
		}
	}
}

// TestClusterConservation: the interconnect's ledger must balance — every
// block request delivered and answered exactly once, every leg charged
// the configured hop delay.
func TestClusterConservation(t *testing.T) {
	const hops = 2
	cfg := equivCfg(config.NISplit, config.Mesh)
	cl, err := NewCluster(cfg, ClusterSpec{Nodes: 2, Hops: hops})
	if err != nil {
		t.Fatal(err)
	}
	size := 1024
	if _, err := cl.RunSyncLatency(size, 27); err != nil {
		t.Fatal(err)
	}
	blocks := int64((cfg.WarmupRequests + cfg.MeasureReqs) * (size / cfg.BlockBytes))
	for i := range cl.Nodes {
		cs := cl.Inter.Counters[i]
		if cs.RequestsOut != blocks {
			t.Errorf("node %d: %d requests out, want %d", i, cs.RequestsOut, blocks)
		}
		if cs.InboundDelivered != blocks || cs.ResponsesOut != blocks || cs.ResponsesIn != blocks {
			t.Errorf("node %d: inbound/respOut/respIn = %d/%d/%d, want all %d",
				i, cs.InboundDelivered, cs.ResponsesOut, cs.ResponsesIn, blocks)
		}
		want := 2 * blocks * int64(hops) * cfg.NetHopCycles()
		if cs.HopCycles != want {
			t.Errorf("node %d: hop-cycles %d, want %d", i, cs.HopCycles, want)
		}
	}
	if cl.Inter.Traffic[0][1] != blocks || cl.Inter.Traffic[1][0] != blocks {
		t.Errorf("traffic matrix %v, want %d each way", cl.Inter.Traffic, blocks)
	}
}
