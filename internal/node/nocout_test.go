package node

import (
	"testing"

	"rackni/internal/config"
)

func nocoutSyncRun(t *testing.T, d config.Design, size int) SyncResult {
	t.Helper()
	cfg := config.Default()
	cfg.Design = d
	cfg.MeasureReqs = 24
	n, err := NewNOCOut(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunSyncLatency(size, 27)
	if err != nil {
		t.Fatalf("%v: %v", d, err)
	}
	return res
}

func TestNOCOutSyncLatencyAllDesigns(t *testing.T) {
	lat := map[config.Design]float64{}
	for _, d := range []config.Design{config.NIEdge, config.NIPerTile, config.NISplit} {
		res := nocoutSyncRun(t, d, 64)
		lat[d] = res.MeanCycles
		t.Logf("NOC-Out %v: %.0f cycles breakdown=%+v", d, res.MeanCycles, res.Breakdown)
	}
	if lat[config.NIEdge] <= lat[config.NISplit] {
		t.Fatalf("NOC-Out: edge (%.0f) should still exceed split (%.0f), if by less than mesh",
			lat[config.NIEdge], lat[config.NISplit])
	}
}

func TestNOCOutFasterThanMeshSmallTransfers(t *testing.T) {
	mesh := syncRun(t, config.NISplit, 64).MeanCycles
	nout := nocoutSyncRun(t, config.NISplit, 64).MeanCycles
	if nout >= mesh {
		t.Fatalf("NOC-Out (%.0f) must beat mesh (%.0f) at small transfers (§6.3.1)", nout, mesh)
	}
}

func TestNOCOutBandwidthSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth in -short mode")
	}
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.WindowCycles = 30_000
	cfg.MaxCycles = 300_000
	n, err := NewNOCOut(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunBandwidth(2048)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("NOC-Out split 2KB: app=%.1f GB/s noc=%.1f completed=%d", res.AppGBps, res.NOCGBps, res.Completed)
	if res.AppGBps < 5 {
		t.Fatalf("implausibly low NOC-Out bandwidth %.1f", res.AppGBps)
	}
}
