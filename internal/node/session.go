// The run lifecycle. Every run entry point — node or cluster, latency,
// bandwidth or workload — used to carry its own scatter of reset duties
// (silence stale drivers, reset the stats sink, rebase the cycle budget,
// zero the rack and interconnect counters, tolerate or refuse in-flight
// leftovers), and each new run type re-discovered a piece of state the
// others forgot: PRs 3 and 4 both shipped point fixes for exactly this bug
// class. Session replaces the scatter with one owner: Begin returns the
// entire system — engine, caches, directories, queue pairs, pipelines,
// fabrics, statistics — to its freshly-constructed state, so a reused node
// or cluster is bit-identical to a new one and the state-leak bug class is
// gone by construction rather than patched per symptom.
package node

import (
	"rackni/internal/fabric"
	"rackni/internal/sim"
)

// Session is the single run-lifecycle owner for a node or cluster: all
// per-run reset duties live behind its Begin/End protocol. Exactly one
// Session exists per system — a standalone node's own, or one spanning
// every member (and, under sharding, every engine) of a cluster.
type Session struct {
	engs  []*sim.Engine
	watch *sim.CancelWatch
	nodes []*Node
	inter *fabric.Interconnect
}

// newSession builds the lifecycle owner for the given engines and nodes
// (one engine for a standalone node or unsharded cluster, one per shard
// otherwise). inter is the cluster's fabric, nil for a standalone node.
func newSession(engs []*sim.Engine, watch *sim.CancelWatch, nodes []*Node, inter *fabric.Interconnect) *Session {
	return &Session{engs: engs, watch: watch, nodes: nodes, inter: inter}
}

// Begin starts a run by returning the whole system to its
// freshly-constructed state:
//
//   - the engine drops every pending event (stale driver callbacks,
//     in-flight pipeline work, watchdog chains) and rewinds to cycle 0 —
//     the cycle budget and every reported cycle count are per-run by
//     construction;
//   - every node resets its caches, directories, queue pairs, RMC
//     pipelines, on-chip fabric, statistics sink (histograms included) and
//     rack emulation; a cluster also resets the inter-node fabric;
//   - the WQ poll chains are re-armed in construction order, reproducing a
//     fresh node's initial event sequence.
//
// On a fresh instance all of this is a no-op (resetting empty state and
// re-arming the chains construction just armed), so first-run results are
// byte-identical to the pre-Session code; on a reused instance it erases
// every leak a cut-short or completed previous run could leave behind.
func (s *Session) Begin() {
	for _, e := range s.engs {
		e.Reset()
	}
	s.watch.Disarm()
	for _, n := range s.nodes {
		n.resetAll()
	}
	if s.inter != nil {
		s.inter.Reset()
	}
	for _, n := range s.nodes {
		for _, f := range n.frontends {
			f.RestartPolling()
		}
	}
}

// Run arms the cancellation watch and executes the run for at most budget
// cycles past the current cycle. Single-engine only: a sharded cluster
// drives its engines through the windowed barrier loop instead (the watch
// would race across shards, so cancellation is polled at barriers there).
func (s *Session) Run(budget int64) {
	s.watch.Arm()
	s.engs[0].Run(s.engs[0].Now() + budget)
}

// End concludes the run: drivers are silenced (their still-queued
// callbacks die without touching the queue pairs or statistics) and the
// cancellation outcome is reported — the context's error if the watch
// stopped this run, nil if the run completed first.
func (s *Session) End() error {
	for _, n := range s.nodes {
		for _, d := range n.Drivers {
			d.Stop()
		}
		for _, d := range n.AppDrivers {
			d.Stop()
		}
	}
	return s.watch.Err()
}

// resetAll returns one node's components to their freshly-constructed
// state. The per-component Reset methods were registered at construction,
// in construction order; the driver lists are emptied (a run installs its
// own) and the statistics sink restarts with fresh accumulators.
func (n *Node) resetAll() {
	for _, reset := range n.resets {
		reset()
	}
	n.Stats.Reset()
	n.Drivers = n.Drivers[:0]
	n.AppDrivers = n.AppDrivers[:0]
}
