package node

import (
	"testing"

	"rackni/internal/config"
)

// TestDeterminismBandwidth is the kernel-refactor regression guard: two
// bandwidth runs with the same configuration and seed must produce an
// identical BWResult — same stabilization cycle, same completion count,
// same bandwidth figures to the last bit.
func TestDeterminismBandwidth(t *testing.T) {
	run := func() BWResult {
		cfg := config.Default()
		cfg.Design = config.NISplit
		cfg.Seed = 99
		cfg.WindowCycles = 10_000
		cfg.MaxCycles = 60_000
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunBandwidth(1024)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic bandwidth run:\n  %+v\nvs\n  %+v", a, b)
	}
}

// TestDeterminismBreakdown asserts the full latency tomography — every
// Breakdown component — is reproduced exactly across runs with one seed.
func TestDeterminismBreakdown(t *testing.T) {
	run := func() Breakdown {
		cfg := config.Default()
		cfg.Design = config.NISplit
		cfg.Seed = 4242
		cfg.MeasureReqs = 12
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunSyncLatency(512, 27)
		if err != nil {
			t.Fatal(err)
		}
		return res.Breakdown
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic breakdown:\n  %+v\nvs\n  %+v", a, b)
	}
}
