package node

import (
	"context"
	"fmt"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// ClusterSpec sizes and places a multi-node cluster.
type ClusterSpec struct {
	// Nodes is the number of fully simulated nodes (>= 1).
	Nodes int
	// Hops is the uniform pairwise inter-node distance used when
	// Placement is nil — the degenerate geometry of the paper's fixed-hop
	// emulation, under which every pair of nodes (including a node and
	// itself) is Hops apart. 0 means the configuration's DefaultHops.
	Hops int
	// Placement, when non-nil, names each node's coordinate on the rack's
	// 3D torus (cfg.TorusRadix per dimension); pairwise distances are then
	// real torus hop counts, so skewed placements and non-uniform
	// distances — inexpressible under the mirror emulation — emerge
	// naturally.
	Placement []int
	// Faults, when non-nil and active, installs a deterministic fault plan
	// on the interconnect (see fabric.FaultSpec). A nil or zero spec is a
	// lossless fabric.
	Faults *fabric.FaultSpec
	// FabricRouting, when not RouteNone, enables the link-level congestion
	// model on the inter-node fabric: blocks route hop by hop over
	// per-link credit queues under the given policy (fabric.RouteDOR or
	// fabric.RouteAdaptive) instead of taking lump-sum hop delays.
	// Congestion is a property of real torus geometry, so a spec without a
	// Placement gets the identity placement (node i at coordinate i). The
	// link knobs come from Config.LinkCredits / Config.LinkFlitCycles.
	FabricRouting fabric.RoutePolicy
}

// Cluster is N fully simulated nodes sharing one event engine, connected
// by a real inter-node fabric that delivers every remote request to the
// target node's actual RRPPs. It is the simulated counterpart of the
// paper's emulated rack: a symmetric 2-node cluster running mirror-image
// workloads reproduces the emulation's traffic, which is how the two are
// cross-validated (cluster_equiv_test.go).
type Cluster struct {
	Eng   *sim.Engine
	Cfg   *config.Config // shared configuration (one clock domain)
	Nodes []*Node
	Inter *fabric.Interconnect

	ctx     context.Context
	watch   *sim.CancelWatch
	session *Session
}

// NewCluster builds a cluster of identical nodes per the spec. All nodes
// share cfg — and therefore one clock domain; per-node state (caches,
// queue pairs, RMC pipelines, statistics) is fully independent.
func NewCluster(cfg config.Config, spec ClusterSpec) (*Cluster, error) {
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("node: cluster needs at least 1 node, got %d", spec.Nodes)
	}
	hops := spec.Hops
	if hops == 0 {
		hops = cfg.DefaultHops
	}
	if hops < 0 {
		return nil, fmt.Errorf("node: negative hop count %d", hops)
	}
	topo := fabric.NewTorus3D(cfg.TorusRadix)
	if spec.FabricRouting != fabric.RouteNone && spec.Placement == nil {
		// The congestion model contends real torus links, so give the
		// cluster real geometry: identity placement, the same coordinates
		// the TorusPlacement sweep axis assigns.
		if spec.Nodes > topo.Nodes() {
			return nil, fmt.Errorf("node: %d nodes exceed the %d-node torus (radix %d) the congestion model routes over",
				spec.Nodes, topo.Nodes(), cfg.TorusRadix)
		}
		spec.Placement = make([]int, spec.Nodes)
		for i := range spec.Placement {
			spec.Placement[i] = i
		}
	}
	eng := sim.NewEngine()
	c := &Cluster{Eng: eng}
	c.watch = sim.NewCancelWatch(eng, cancelCheckCycles, func() context.Context { return c.ctx })

	ports := make([]fabric.NodePort, 0, spec.Nodes)
	// Pairwise distances are needed before the interconnect exists (each
	// node's tomography wants its default-peer distance), so compute them
	// the same way the interconnect will.
	dist := func(a, b int) int {
		if spec.Placement == nil {
			return hops
		}
		return topo.Hops(spec.Placement[a], spec.Placement[b])
	}
	for i := 0; i < spec.Nodes; i++ {
		peer := (i + 1) % spec.Nodes
		var peerHops int
		if spec.Placement != nil {
			if len(spec.Placement) != spec.Nodes {
				return nil, fmt.Errorf("node: placement names %d positions for %d nodes", len(spec.Placement), spec.Nodes)
			}
			peerHops = dist(i, peer)
		} else {
			peerHops = hops
		}
		n, err := NewMember(eng, cfg, peerHops)
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
		ports = append(ports, n.Port())
	}
	c.Cfg = c.Nodes[0].Cfg
	inter, err := fabric.NewInterconnect(topo, spec.Placement, hops, ports)
	if err != nil {
		return nil, err
	}
	c.Inter = inter
	if spec.FabricRouting != fabric.RouteNone {
		credits, flitCycles := cfg.LinkCredits, int64(cfg.LinkFlitCycles)
		if credits == 0 {
			credits = config.DefaultLinkCredits
		}
		if flitCycles == 0 {
			flitCycles = config.DefaultLinkFlitCycles
		}
		if err := inter.EnableCongestion(spec.FabricRouting, credits, flitCycles); err != nil {
			return nil, err
		}
	}
	if err := inter.SetFaults(spec.Faults); err != nil {
		return nil, err
	}
	c.session = newSession(eng, c.watch, c.Nodes, inter)
	return c, nil
}

// SetFaults installs (or, with a nil or inactive spec, clears) the
// interconnect's fault plan between runs. The next Session.Begin rewinds
// the plan's generator, so every run replays the spec's schedule from the
// start.
func (c *Cluster) SetFaults(spec *fabric.FaultSpec) error {
	return c.Inter.SetFaults(spec)
}

// SetContext attaches ctx to the cluster. Subsequent runs poll it
// periodically and abort with the context's error once it is cancelled.
// The cluster arms exactly one watchdog for the shared engine; member
// nodes never arm their own.
func (c *Cluster) SetContext(ctx context.Context) { c.ctx = ctx }

// ClusterSyncResult is the outcome of a cluster-wide synchronous-latency
// run: every node runs the same single-core latency microbenchmark
// concurrently (each node both issues requests to its peer and services
// its peer's), so PerNode[i] is node i's unloaded remote-read latency
// through the real fabric. Aggregate averages across nodes.
type ClusterSyncResult struct {
	Aggregate SyncResult
	PerNode   []SyncResult
}

// RunSyncLatency runs the §5 latency microbenchmark on every node
// simultaneously: one core per node issues synchronous remote reads of
// the given size to its default peer. All nodes use identical per-core
// seeds, making the cluster a set of mirror images of one another — the
// multi-node realization of the paper's rate-matching mirror emulation.
func (c *Cluster) RunSyncLatency(size, onCore int) (ClusterSyncResult, error) {
	c.session.Begin()
	cfg := c.Cfg
	total := uint64(cfg.WarmupRequests + cfg.MeasureReqs)
	remaining := 0
	drivers := make([]*cpu.Driver, len(c.Nodes))
	for i, n := range c.Nodes {
		wl := cpu.NewUniformReads(size,
			SourceBase, SourceSpan,
			LocalBase+uint64(onCore)*LocalStride, LocalStride,
			total, cfg.Seed+uint64(onCore))
		d := cpu.NewDriver(c.Eng, n.Cfg, onCore, n.Agents[onCore], n.QPs[onCore], n.Stats, wl, cpu.Sync)
		n.Drivers = append(n.Drivers, d)
		drivers[i] = d
		remaining++
		d.OnIdle = func() {
			remaining--
			if remaining == 0 {
				c.Eng.Stop()
			}
		}
		d.Start()
	}
	c.session.Run(cfg.MaxCycles)
	if err := c.session.End(); err != nil {
		return ClusterSyncResult{}, err
	}
	res := ClusterSyncResult{PerNode: make([]SyncResult, len(c.Nodes))}
	for i, n := range c.Nodes {
		d := drivers[i]
		if remaining > 0 || d.Completed() < total {
			return ClusterSyncResult{}, fmt.Errorf("cluster sync run did not finish: node %d at %d/%d by cycle %d",
				i, d.Completed(), total, c.Eng.Now())
		}
		bd := n.breakdown(d.Retired[cfg.WarmupRequests:])
		res.PerNode[i] = SyncResult{
			MeanCycles: bd.Total,
			MeanNS:     bd.Total * cfg.NsPerCycle(),
			Breakdown:  bd,
		}
	}
	res.Aggregate = meanSync(res.PerNode)
	return res, nil
}

// meanSync averages per-node sync results into one aggregate.
func meanSync(per []SyncResult) SyncResult {
	var agg SyncResult
	k := float64(len(per))
	for _, r := range per {
		agg.MeanCycles += r.MeanCycles / k
		agg.MeanNS += r.MeanNS / k
		b := &agg.Breakdown
		b.WQWrite += r.Breakdown.WQWrite / k
		b.WQRead += r.Breakdown.WQRead / k
		b.Dispatch += r.Breakdown.Dispatch / k
		b.Generate += r.Breakdown.Generate / k
		b.NetOut += r.Breakdown.NetOut / k
		b.NetBack += r.Breakdown.NetBack / k
		b.Remote += r.Breakdown.Remote / k
		b.Complete += r.Breakdown.Complete / k
		b.CQWrite += r.Breakdown.CQWrite / k
		b.CQRead += r.Breakdown.CQRead / k
		b.Total += r.Breakdown.Total / k
		b.RRPPLat += r.Breakdown.RRPPLat / k
		b.Samples += r.Breakdown.Samples
	}
	return agg
}

// ClusterBWResult is the outcome of a cluster-wide bandwidth run.
// Aggregate sums application and NOC bandwidth across nodes; PerNode
// holds each node's share over the same measurement interval.
type ClusterBWResult struct {
	Aggregate BWResult
	PerNode   []BWResult
}

// RunBandwidth runs the §5 bandwidth microbenchmark on every node
// simultaneously: all cores of all nodes issue asynchronous remote reads
// to their node's default peer until the cluster-wide windowed
// application bandwidth stabilizes (or MaxCycles).
func (c *Cluster) RunBandwidth(size int) (ClusterBWResult, error) {
	c.session.Begin()
	start := c.Eng.Now()
	cfg := c.Cfg
	tiles := cfg.Tiles()
	for _, n := range c.Nodes {
		for core := 0; core < tiles; core++ {
			wl := cpu.NewUniformReads(size,
				SourceBase, SourceSpan,
				LocalBase+uint64(core)*LocalStride, LocalStride,
				0, cfg.Seed+uint64(core)*7919+1)
			d := cpu.NewDriver(c.Eng, n.Cfg, core, n.Agents[core], n.QPs[core], n.Stats, wl, cpu.Async)
			n.Drivers = append(n.Drivers, d)
			d.Start()
		}
	}
	appBytes := func(n *Node) int64 { return n.Stats.RCPBytes + n.Stats.RRPPBytes }
	sumBytes := func() int64 {
		var s int64
		for _, n := range c.Nodes {
			s += appBytes(n)
		}
		return s
	}
	mon := stats.NewBandwidthMonitor(cfg.WindowCycles, cfg.StableDelta, 3)
	nvals := len(c.Nodes)
	flits0 := make([]int64, nvals)
	bis0 := make([]int64, nvals)
	inj0 := make([]int64, nvals)
	app0 := make([]int64, nvals)
	var cycles0 int64
	stable := false
	var tick func()
	tick = func() {
		if mon.Observe(sumBytes()) {
			stable = true
			c.Eng.Stop()
			return
		}
		c.Eng.Schedule(cfg.WindowCycles, tick)
	}
	// Skip the first window as warmup, then baseline every node's NOC and
	// application counters over one shared measurement interval.
	c.Eng.Schedule(cfg.WindowCycles, func() {
		for i, n := range c.Nodes {
			if n.Mesh != nil {
				flits0[i] = n.Mesh.FlitsCarried()
				bis0[i] = n.Mesh.BisectionFlits()
				inj0[i] = n.Mesh.BytesInjected()
			} else if n.NOCOut != nil {
				flits0[i] = n.NOCOut.FlitsCarried()
				inj0[i] = n.NOCOut.BytesInjected()
			}
			app0[i] = appBytes(n)
		}
		cycles0 = c.Eng.Now()
		mon.Reset(sumBytes())
		c.Eng.Schedule(cfg.WindowCycles, tick)
	})
	c.session.Run(cfg.MaxCycles)
	if err := c.session.End(); err != nil {
		return ClusterBWResult{}, err
	}
	elapsed := c.Eng.Now() - cycles0
	if elapsed <= 0 {
		return ClusterBWResult{}, fmt.Errorf("cluster bandwidth run made no progress")
	}
	ghz := cfg.ClockGHz
	res := ClusterBWResult{PerNode: make([]BWResult, nvals)}
	for i, n := range c.Nodes {
		r := BWResult{
			AppGBps:   stats.GBps(float64(appBytes(n)-app0[i])/float64(elapsed), ghz),
			Cycles:    c.Eng.Now() - start,
			Stable:    stable,
			Completed: n.Stats.Completed,
		}
		if n.Mesh != nil {
			r.NOCGBps = stats.GBps(float64(n.Mesh.BytesInjected()-inj0[i])/float64(elapsed), ghz)
			r.FlitHopGBps = stats.GBps(float64((n.Mesh.FlitsCarried()-flits0[i])*int64(cfg.LinkBytes))/float64(elapsed), ghz)
			r.BisectionGBps = stats.GBps(float64((n.Mesh.BisectionFlits()-bis0[i])*int64(cfg.LinkBytes))/float64(elapsed), ghz)
		} else if n.NOCOut != nil {
			r.NOCGBps = stats.GBps(float64(n.NOCOut.BytesInjected()-inj0[i])/float64(elapsed), ghz)
			r.FlitHopGBps = stats.GBps(float64((n.NOCOut.FlitsCarried()-flits0[i])*int64(cfg.LinkBytes))/float64(elapsed), ghz)
		}
		res.PerNode[i] = r
		res.Aggregate.AppGBps += r.AppGBps
		res.Aggregate.NOCGBps += r.NOCGBps
		res.Aggregate.FlitHopGBps += r.FlitHopGBps
		res.Aggregate.BisectionGBps += r.BisectionGBps
		res.Aggregate.Completed += r.Completed
	}
	res.Aggregate.Cycles = c.Eng.Now() - start
	res.Aggregate.Stable = stable
	return res, nil
}

// ClusterWorkloadResult is the outcome of a cluster-wide closed-loop
// workload run. Aggregate merges every node (PerCore entries carry
// node-global core ids: node*Tiles+core); PerNode holds each node's own
// view.
type ClusterWorkloadResult struct {
	Aggregate WorkloadResult
	PerNode   []WorkloadResult
}

// RunApp drives every core of every node whose factory returns a non-nil
// v2 App, until all drivers on all nodes finish (including draining
// in-flight requests) or maxCycles elapse. The factory receives the node
// index alongside the core, so callers can decorrelate per-node seeds or
// shard roles across the rack.
func (c *Cluster) RunApp(factory func(node, core int) cpu.App, maxCycles int64) (ClusterWorkloadResult, error) {
	if maxCycles <= 0 {
		maxCycles = c.Cfg.MaxCycles
	}
	c.session.Begin()
	start := c.Eng.Now()
	active := 0
	for i, n := range c.Nodes {
		for core := 0; core < n.Cfg.Tiles(); core++ {
			app := factory(i, core)
			if app == nil {
				continue
			}
			d := cpu.NewAppDriver(c.Eng, n.Cfg, core, n.Agents[core], n.QPs[core], n.Stats, app)
			// The issue boundary of the cluster addressing contract: a
			// workload that manufactures a remote address with stray bits in
			// the node-selector field fails its run loudly here instead of
			// being silently mis-routed (see fabric.CheckRemoteAddr).
			d.CheckAddr = c.Inter.CheckAddr
			active++
			d.OnIdle = func() {
				active--
				if active == 0 {
					c.Eng.Stop()
				}
			}
			n.AppDrivers = append(n.AppDrivers, d)
			d.Start()
		}
	}
	if active == 0 {
		return ClusterWorkloadResult{}, fmt.Errorf("node: no cores have workloads")
	}
	c.session.Run(maxCycles)
	if err := c.session.End(); err != nil {
		return ClusterWorkloadResult{}, err
	}
	res := ClusterWorkloadResult{PerNode: make([]WorkloadResult, len(c.Nodes))}
	merged := stats.NewLatencyHistogram()
	var appErr error
	var latSum float64
	var latCount int64
	tiles := c.Cfg.Tiles()
	for i, n := range c.Nodes {
		nodeMerged := stats.NewLatencyHistogram()
		nr := WorkloadResult{
			Completed:    n.Stats.Completed,
			Cycles:       c.Eng.Now() - start,
			MeanLatency:  n.Stats.ReqLat.Mean(),
			AppBytes:     n.Stats.RCPBytes + n.Stats.RRPPBytes,
			Retries:      n.Stats.Retries,
			Failed:       n.Stats.FailedOps,
			AllExhausted: active == 0,
			PerCore:      make([]CoreStats, 0, len(n.AppDrivers)),
		}
		for _, d := range n.AppDrivers {
			if err := d.Err(); err != nil && appErr == nil {
				appErr = fmt.Errorf("node %d: %w", i, err)
			}
			nodeMerged.Merge(d.Hist)
			merged.Merge(d.Hist)
			cs := CoreStats{
				Core:        d.ID(),
				Issued:      int64(d.Issued()),
				Completed:   int64(d.Completed()),
				MeanLatency: d.Hist.Mean(),
				P50:         d.Hist.Percentile(50),
				P95:         d.Hist.Percentile(95),
				P99:         d.Hist.Percentile(99),
			}
			nr.PerCore = append(nr.PerCore, cs)
			cs.Core = i*tiles + d.ID()
			res.Aggregate.PerCore = append(res.Aggregate.PerCore, cs)
		}
		nr.P50 = nodeMerged.Percentile(50)
		nr.P95 = nodeMerged.Percentile(95)
		nr.P99 = nodeMerged.Percentile(99)
		res.PerNode[i] = nr
		res.Aggregate.Completed += nr.Completed
		res.Aggregate.AppBytes += nr.AppBytes
		res.Aggregate.Retries += nr.Retries
		res.Aggregate.Failed += nr.Failed
		latSum += nr.MeanLatency * float64(n.Stats.ReqLat.Count())
		latCount += n.Stats.ReqLat.Count()
	}
	res.Aggregate.Cycles = c.Eng.Now() - start
	res.Aggregate.AllExhausted = active == 0
	if latCount > 0 {
		res.Aggregate.MeanLatency = latSum / float64(latCount)
	}
	res.Aggregate.P50 = merged.Percentile(50)
	res.Aggregate.P95 = merged.Percentile(95)
	res.Aggregate.P99 = merged.Percentile(99)
	if appErr != nil {
		res.Aggregate.AllExhausted = false
		return res, appErr
	}
	return res, nil
}
