package node

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rackni/internal/config"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/place"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// ClusterSpec sizes and places a multi-node cluster.
type ClusterSpec struct {
	// Nodes is the number of fully simulated nodes (>= 1).
	Nodes int
	// Hops is the uniform pairwise inter-node distance used when
	// Placement is nil — the degenerate geometry of the paper's fixed-hop
	// emulation, under which every pair of nodes (including a node and
	// itself) is Hops apart. 0 means the configuration's DefaultHops.
	Hops int
	// Place, when non-zero, is a named placement policy (identity,
	// clustered, scattered, random:<seed>) expanded into torus coordinates
	// at construction — the first-class way to give the cluster real
	// geometry. Mutually exclusive with Placement.
	Place place.Policy
	// Placement, when non-nil, names each node's coordinate on the rack's
	// 3D torus (cfg.TorusRadix per dimension); pairwise distances are then
	// real torus hop counts, so skewed placements and non-uniform
	// distances — inexpressible under the mirror emulation — emerge
	// naturally. The raw escape hatch under the named Place policies;
	// coordinates must be distinct and on the torus.
	Placement []int
	// Faults, when non-nil and active, installs a deterministic fault plan
	// on the interconnect (see fabric.FaultSpec). A nil or zero spec is a
	// lossless fabric.
	Faults *fabric.FaultSpec
	// FabricRouting, when not RouteNone, enables the link-level congestion
	// model on the inter-node fabric: blocks route hop by hop over
	// per-link credit queues under the given policy (fabric.RouteDOR or
	// fabric.RouteAdaptive) instead of taking lump-sum hop delays.
	// Congestion is a property of real torus geometry, so a spec without a
	// Placement gets the identity placement (node i at coordinate i). The
	// link knobs come from Config.LinkCredits / Config.LinkFlitCycles.
	FabricRouting fabric.RoutePolicy
	// Shards partitions the nodes across this many event engines, each
	// advanced by its own goroutine under conservative-window
	// synchronization, for parallel wall-clock execution of workload and
	// service runs. Results are bit-identical for every shard count.
	// Values outside [1, Nodes] are clamped; 0 means 1 (the classic
	// single-engine cluster). Sharding needs conservative lookahead —
	// every cross-node message at least one cycle in flight — so the
	// count is coerced to 1 when the congestion model is on (its link
	// state is cluster-global), when Config.NetHopCycles() < 1, or when
	// any two distinct nodes sit zero hops apart.
	Shards int
}

// Cluster is N fully simulated nodes sharing one event engine, connected
// by a real inter-node fabric that delivers every remote request to the
// target node's actual RRPPs. It is the simulated counterpart of the
// paper's emulated rack: a symmetric 2-node cluster running mirror-image
// workloads reproduces the emulation's traffic, which is how the two are
// cross-validated (cluster_equiv_test.go).
type Cluster struct {
	Eng   *sim.Engine    // shard 0's engine (the only engine when unsharded)
	Engs  []*sim.Engine  // one engine per shard; Engs[0] == Eng
	Cfg   *config.Config // shared configuration (one clock domain)
	Nodes []*Node
	Inter *fabric.Interconnect

	ctx       context.Context
	watch     *sim.CancelWatch
	session   *Session
	placed    place.Policy // named policy the spec was built with (zero otherwise)
	shardSize int          // contiguous nodes per shard: ceil(Nodes/len(Engs))
}

// Placed returns the named placement policy the cluster was built with —
// the zero policy for uniform-hop clusters, raw coordinate lists, and the
// congestion model's automatic identity placement.
func (c *Cluster) Placed() place.Policy { return c.placed }

// Sharded reports whether the cluster's nodes span more than one engine.
func (c *Cluster) Sharded() bool { return len(c.Engs) > 1 }

// NumShards returns the number of engines the nodes are partitioned over.
func (c *Cluster) NumShards() int { return len(c.Engs) }

// shardOf returns the shard owning node i. Nodes are assigned in
// contiguous blocks so a shard's members are as fabric-local as the
// placement allows.
func (c *Cluster) shardOf(i int) int { return i / c.shardSize }

// NewCluster builds a cluster of identical nodes per the spec. All nodes
// share cfg — and therefore one clock domain; per-node state (caches,
// queue pairs, RMC pipelines, statistics) is fully independent.
func NewCluster(cfg config.Config, spec ClusterSpec) (*Cluster, error) {
	if spec.Nodes < 1 {
		return nil, fmt.Errorf("node: cluster needs at least 1 node, got %d", spec.Nodes)
	}
	hops := spec.Hops
	if hops == 0 {
		hops = cfg.DefaultHops
	}
	if hops < 0 {
		return nil, fmt.Errorf("node: negative hop count %d", hops)
	}
	topo := fabric.NewTorus3D(cfg.TorusRadix)
	if !spec.Place.IsZero() {
		if spec.Placement != nil {
			return nil, fmt.Errorf("node: ClusterSpec sets both a %s placement policy and explicit coordinates", spec.Place)
		}
		coords, err := spec.Place.Coordinates(spec.Nodes, cfg.TorusRadix)
		if err != nil {
			return nil, fmt.Errorf("node: %w", err)
		}
		spec.Placement = coords
	}
	if spec.FabricRouting != fabric.RouteNone && spec.Placement == nil {
		// The congestion model contends real torus links, so give the
		// cluster real geometry: identity placement, the same coordinates
		// the TorusPlacement sweep axis assigns.
		if spec.Nodes > topo.Nodes() {
			return nil, fmt.Errorf("node: %d nodes exceed the %d-node torus (radix %d) the congestion model routes over",
				spec.Nodes, topo.Nodes(), cfg.TorusRadix)
		}
		spec.Placement = make([]int, spec.Nodes)
		for i := range spec.Placement {
			spec.Placement[i] = i
		}
	}
	if spec.Placement != nil {
		if len(spec.Placement) != spec.Nodes {
			return nil, fmt.Errorf("node: placement names %d positions for %d nodes", len(spec.Placement), spec.Nodes)
		}
		// Out-of-range or duplicate coordinates would silently yield bogus
		// (even zero-hop) pairwise distances that poison the sharded
		// engines' conservative lookahead — reject them here, naming the
		// offending node, before any member is built.
		if err := place.Validate(spec.Placement, cfg.TorusRadix); err != nil {
			return nil, fmt.Errorf("node: %w", err)
		}
	}
	// Pairwise distances are needed before the interconnect exists (each
	// node's tomography wants its default-peer distance), so compute them
	// the same way the interconnect will.
	dist := func(a, b int) int {
		if spec.Placement == nil {
			return hops
		}
		return topo.Hops(spec.Placement[a], spec.Placement[b])
	}
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > spec.Nodes {
		shards = spec.Nodes
	}
	if shards > 1 {
		// Conservative-window sharding needs every cross-node message to
		// spend at least one cycle in flight; the congestion model's link
		// state is cluster-global. Either condition failing degrades
		// gracefully to the classic single-engine cluster.
		minCross := hops
		if spec.Placement != nil {
			minCross = int(^uint(0) >> 1)
			for a := 0; a < spec.Nodes; a++ {
				for b := 0; b < spec.Nodes; b++ {
					if a != b && dist(a, b) < minCross {
						minCross = dist(a, b)
					}
				}
			}
		}
		if spec.FabricRouting != fabric.RouteNone || cfg.NetHopCycles() < 1 || minCross < 1 {
			shards = 1
		}
	}
	engs := make([]*sim.Engine, shards)
	for s := range engs {
		engs[s] = sim.NewEngine()
	}
	c := &Cluster{Eng: engs[0], Engs: engs, placed: spec.Place, shardSize: (spec.Nodes + shards - 1) / shards}
	c.watch = sim.NewCancelWatch(engs[0], cancelCheckCycles, func() context.Context { return c.ctx })

	// Member pipelines are independent of one another, so each shard's
	// goroutine builds its own members — construction wall-clock scales
	// with the shard count just like execution, which is what makes
	// multi-hundred-node clusters affordable to stand up.
	c.Nodes = make([]*Node, spec.Nodes)
	build := func(s int) error {
		lo, hi := s*c.shardSize, (s+1)*c.shardSize
		if hi > spec.Nodes {
			hi = spec.Nodes
		}
		for i := lo; i < hi; i++ {
			peer := (i + 1) % spec.Nodes
			n, err := NewMember(engs[s], cfg, dist(i, peer))
			if err != nil {
				return err
			}
			c.Nodes[i] = n
		}
		return nil
	}
	if shards == 1 {
		if err := build(0); err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, shards)
		var wg sync.WaitGroup
		wg.Add(shards)
		for s := 0; s < shards; s++ {
			go func(s int) {
				defer wg.Done()
				errs[s] = build(s)
			}(s)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	ports := make([]fabric.NodePort, spec.Nodes)
	for i, n := range c.Nodes {
		ports[i] = n.Port()
	}
	c.Cfg = c.Nodes[0].Cfg
	inter, err := fabric.NewInterconnect(topo, spec.Placement, hops, ports)
	if err != nil {
		return nil, err
	}
	c.Inter = inter
	if spec.FabricRouting != fabric.RouteNone {
		credits, flitCycles := cfg.LinkCredits, int64(cfg.LinkFlitCycles)
		if credits == 0 {
			credits = config.DefaultLinkCredits
		}
		if flitCycles == 0 {
			flitCycles = config.DefaultLinkFlitCycles
		}
		if err := inter.EnableCongestion(spec.FabricRouting, credits, flitCycles); err != nil {
			return nil, err
		}
	}
	if err := inter.SetFaults(spec.Faults); err != nil {
		return nil, err
	}
	c.session = newSession(engs, c.watch, c.Nodes, inter)
	return c, nil
}

// runWindowed executes one run as a sequence of conservative windows:
// every shard's engine advances to the window boundary (on its own
// goroutine when there are several), then all shards rendezvous at a
// barrier where buffered cross-shard deliveries are exchanged in canonical
// order. The window width is the fabric's lookahead — the minimum cycles
// any inter-node message spends in flight — so no message can arrive
// inside the window it was sent in, and every delivery lands through the
// same canonical calendar regardless of which shard sent it. done is
// polled at each barrier, never mid-window: a run therefore always ends on
// a window boundary, and since the lookahead is computed over node pairs
// (not shard pairs) the boundaries — and with them the residual events a
// finishing run still executes — are identical at every shard count.
// That window-edge stop is what makes results bit-identical across K; a
// mid-window engine Stop at the last driver's idle would cut off
// in-flight bookkeeping at a point other shards cannot reproduce.
// Cancellation is polled at barriers too (the per-engine cancel watch
// stays disarmed: it would race across shards). Returns whether done
// reported completion before the budget ran out.
func (c *Cluster) runWindowed(budget int64, done func() bool) (bool, error) {
	w := c.Inter.Lookahead()
	if w > budget {
		w = budget
	}
	if w < 1 {
		w = 1 // unreachable: NewCluster coerces zero-lookahead specs to one shard
	}
	var wg sync.WaitGroup
	for wend := w - 1; ; wend += w {
		if wend > budget {
			wend = budget
		}
		if len(c.Engs) == 1 {
			c.Engs[0].Run(wend)
		} else {
			wg.Add(len(c.Engs))
			for _, e := range c.Engs {
				go func(e *sim.Engine) {
					defer wg.Done()
					e.Run(wend)
				}(e)
			}
			wg.Wait()
			c.Inter.FlushWindow()
		}
		if done() {
			return true, nil
		}
		if c.ctx != nil {
			if err := c.ctx.Err(); err != nil {
				return false, err
			}
		}
		if wend >= budget {
			return false, nil
		}
	}
}

// SetFaults installs (or, with a nil or inactive spec, clears) the
// interconnect's fault plan between runs. The next Session.Begin rewinds
// the plan's generator, so every run replays the spec's schedule from the
// start.
func (c *Cluster) SetFaults(spec *fabric.FaultSpec) error {
	return c.Inter.SetFaults(spec)
}

// SetContext attaches ctx to the cluster. Subsequent runs poll it
// periodically and abort with the context's error once it is cancelled.
// The cluster arms exactly one watchdog for the shared engine; member
// nodes never arm their own.
func (c *Cluster) SetContext(ctx context.Context) { c.ctx = ctx }

// ClusterSyncResult is the outcome of a cluster-wide synchronous-latency
// run: every node runs the same single-core latency microbenchmark
// concurrently (each node both issues requests to its peer and services
// its peer's), so PerNode[i] is node i's unloaded remote-read latency
// through the real fabric. Aggregate averages across nodes.
type ClusterSyncResult struct {
	Aggregate SyncResult
	PerNode   []SyncResult
}

// RunSyncLatency runs the §5 latency microbenchmark on every node
// simultaneously: one core per node issues synchronous remote reads of
// the given size to its default peer. All nodes use identical per-core
// seeds, making the cluster a set of mirror images of one another — the
// multi-node realization of the paper's rate-matching mirror emulation.
func (c *Cluster) RunSyncLatency(size, onCore int) (ClusterSyncResult, error) {
	if c.Sharded() {
		return ClusterSyncResult{}, fmt.Errorf("node: the sync-latency microbenchmark coordinates completion cluster-wide on one engine; build the cluster with Shards=1")
	}
	// The microbenchmarks keep the legacy wheel delivery order their
	// cross-validation against the mirror emulation was calibrated on.
	c.Inter.SetCanonical(false)
	c.session.Begin()
	cfg := c.Cfg
	total := uint64(cfg.WarmupRequests + cfg.MeasureReqs)
	remaining := 0
	drivers := make([]*cpu.Driver, len(c.Nodes))
	for i, n := range c.Nodes {
		wl := cpu.NewUniformReads(size,
			SourceBase, SourceSpan,
			LocalBase+uint64(onCore)*LocalStride, LocalStride,
			total, cfg.Seed+uint64(onCore))
		d := cpu.NewDriver(c.Eng, n.Cfg, onCore, n.Agents[onCore], n.QPs[onCore], n.Stats, wl, cpu.Sync)
		n.Drivers = append(n.Drivers, d)
		drivers[i] = d
		remaining++
		d.OnIdle = func() {
			remaining--
			if remaining == 0 {
				c.Eng.Stop()
			}
		}
		d.Start()
	}
	c.session.Run(cfg.MaxCycles)
	if err := c.session.End(); err != nil {
		return ClusterSyncResult{}, err
	}
	res := ClusterSyncResult{PerNode: make([]SyncResult, len(c.Nodes))}
	for i, n := range c.Nodes {
		d := drivers[i]
		if remaining > 0 || d.Completed() < total {
			return ClusterSyncResult{}, fmt.Errorf("cluster sync run did not finish: node %d at %d/%d by cycle %d",
				i, d.Completed(), total, c.Eng.Now())
		}
		bd := n.breakdown(d.Retired[cfg.WarmupRequests:])
		res.PerNode[i] = SyncResult{
			MeanCycles: bd.Total,
			MeanNS:     bd.Total * cfg.NsPerCycle(),
			Breakdown:  bd,
		}
	}
	res.Aggregate = meanSync(res.PerNode)
	return res, nil
}

// meanSync averages per-node sync results into one aggregate.
func meanSync(per []SyncResult) SyncResult {
	var agg SyncResult
	k := float64(len(per))
	for _, r := range per {
		agg.MeanCycles += r.MeanCycles / k
		agg.MeanNS += r.MeanNS / k
		b := &agg.Breakdown
		b.WQWrite += r.Breakdown.WQWrite / k
		b.WQRead += r.Breakdown.WQRead / k
		b.Dispatch += r.Breakdown.Dispatch / k
		b.Generate += r.Breakdown.Generate / k
		b.NetOut += r.Breakdown.NetOut / k
		b.NetBack += r.Breakdown.NetBack / k
		b.Remote += r.Breakdown.Remote / k
		b.Complete += r.Breakdown.Complete / k
		b.CQWrite += r.Breakdown.CQWrite / k
		b.CQRead += r.Breakdown.CQRead / k
		b.Total += r.Breakdown.Total / k
		b.RRPPLat += r.Breakdown.RRPPLat / k
		b.Samples += r.Breakdown.Samples
	}
	return agg
}

// ClusterBWResult is the outcome of a cluster-wide bandwidth run.
// Aggregate sums application and NOC bandwidth across nodes; PerNode
// holds each node's share over the same measurement interval.
type ClusterBWResult struct {
	Aggregate BWResult
	PerNode   []BWResult
}

// RunBandwidth runs the §5 bandwidth microbenchmark on every node
// simultaneously: all cores of all nodes issue asynchronous remote reads
// to their node's default peer until the cluster-wide windowed
// application bandwidth stabilizes (or MaxCycles).
func (c *Cluster) RunBandwidth(size int) (ClusterBWResult, error) {
	if c.Sharded() {
		return ClusterBWResult{}, fmt.Errorf("node: the bandwidth microbenchmark's stability monitor is cluster-global on one engine; build the cluster with Shards=1")
	}
	c.Inter.SetCanonical(false)
	c.session.Begin()
	start := c.Eng.Now()
	cfg := c.Cfg
	tiles := cfg.Tiles()
	for _, n := range c.Nodes {
		for core := 0; core < tiles; core++ {
			wl := cpu.NewUniformReads(size,
				SourceBase, SourceSpan,
				LocalBase+uint64(core)*LocalStride, LocalStride,
				0, cfg.Seed+uint64(core)*7919+1)
			d := cpu.NewDriver(c.Eng, n.Cfg, core, n.Agents[core], n.QPs[core], n.Stats, wl, cpu.Async)
			n.Drivers = append(n.Drivers, d)
			d.Start()
		}
	}
	appBytes := func(n *Node) int64 { return n.Stats.RCPBytes + n.Stats.RRPPBytes }
	sumBytes := func() int64 {
		var s int64
		for _, n := range c.Nodes {
			s += appBytes(n)
		}
		return s
	}
	mon := stats.NewBandwidthMonitor(cfg.WindowCycles, cfg.StableDelta, 3)
	nvals := len(c.Nodes)
	flits0 := make([]int64, nvals)
	bis0 := make([]int64, nvals)
	inj0 := make([]int64, nvals)
	app0 := make([]int64, nvals)
	var cycles0 int64
	stable := false
	var tick func()
	tick = func() {
		if mon.Observe(sumBytes()) {
			stable = true
			c.Eng.Stop()
			return
		}
		c.Eng.Schedule(cfg.WindowCycles, tick)
	}
	// Skip the first window as warmup, then baseline every node's NOC and
	// application counters over one shared measurement interval.
	c.Eng.Schedule(cfg.WindowCycles, func() {
		for i, n := range c.Nodes {
			if n.Mesh != nil {
				flits0[i] = n.Mesh.FlitsCarried()
				bis0[i] = n.Mesh.BisectionFlits()
				inj0[i] = n.Mesh.BytesInjected()
			} else if n.NOCOut != nil {
				flits0[i] = n.NOCOut.FlitsCarried()
				inj0[i] = n.NOCOut.BytesInjected()
			}
			app0[i] = appBytes(n)
		}
		cycles0 = c.Eng.Now()
		mon.Reset(sumBytes())
		c.Eng.Schedule(cfg.WindowCycles, tick)
	})
	c.session.Run(cfg.MaxCycles)
	if err := c.session.End(); err != nil {
		return ClusterBWResult{}, err
	}
	elapsed := c.Eng.Now() - cycles0
	if elapsed <= 0 {
		return ClusterBWResult{}, fmt.Errorf("cluster bandwidth run made no progress")
	}
	ghz := cfg.ClockGHz
	res := ClusterBWResult{PerNode: make([]BWResult, nvals)}
	for i, n := range c.Nodes {
		r := BWResult{
			AppGBps:   stats.GBps(float64(appBytes(n)-app0[i])/float64(elapsed), ghz),
			Cycles:    c.Eng.Now() - start,
			Stable:    stable,
			Completed: n.Stats.Completed,
		}
		if n.Mesh != nil {
			r.NOCGBps = stats.GBps(float64(n.Mesh.BytesInjected()-inj0[i])/float64(elapsed), ghz)
			r.FlitHopGBps = stats.GBps(float64((n.Mesh.FlitsCarried()-flits0[i])*int64(cfg.LinkBytes))/float64(elapsed), ghz)
			r.BisectionGBps = stats.GBps(float64((n.Mesh.BisectionFlits()-bis0[i])*int64(cfg.LinkBytes))/float64(elapsed), ghz)
		} else if n.NOCOut != nil {
			r.NOCGBps = stats.GBps(float64(n.NOCOut.BytesInjected()-inj0[i])/float64(elapsed), ghz)
			r.FlitHopGBps = stats.GBps(float64((n.NOCOut.FlitsCarried()-flits0[i])*int64(cfg.LinkBytes))/float64(elapsed), ghz)
		}
		res.PerNode[i] = r
		res.Aggregate.AppGBps += r.AppGBps
		res.Aggregate.NOCGBps += r.NOCGBps
		res.Aggregate.FlitHopGBps += r.FlitHopGBps
		res.Aggregate.BisectionGBps += r.BisectionGBps
		res.Aggregate.Completed += r.Completed
	}
	res.Aggregate.Cycles = c.Eng.Now() - start
	res.Aggregate.Stable = stable
	return res, nil
}

// ClusterWorkloadResult is the outcome of a cluster-wide closed-loop
// workload run. Aggregate merges every node (PerCore entries carry
// node-global core ids: node*Tiles+core); PerNode holds each node's own
// view.
type ClusterWorkloadResult struct {
	Aggregate WorkloadResult
	PerNode   []WorkloadResult
}

// RunApp drives every core of every node whose factory returns a non-nil
// v2 App, until all drivers on all nodes finish (including draining
// in-flight requests) or maxCycles elapse. The factory receives the node
// index alongside the core, so callers can decorrelate per-node seeds or
// shard roles across the rack.
func (c *Cluster) RunApp(factory func(node, core int) cpu.App, maxCycles int64) (ClusterWorkloadResult, error) {
	if maxCycles <= 0 {
		maxCycles = c.Cfg.MaxCycles
	}
	// Workload runs use the canonical delivery order — the one that is
	// reproducible across shard counts — and the windowed run loop at
	// EVERY shard count (windowed is what pins the run's stop cycle to a
	// shard-count-invariant window boundary), so Shards is a pure
	// wall-clock knob: K=1 and K=8 produce identical results. Geometries
	// the canonical calendar can't order (one node, zero-delay hops, the
	// congestion model) keep the legacy engine-Stop path; NewCluster
	// coerces exactly those to a single shard.
	windowed := c.Inter.SetCanonical(true)
	c.session.Begin()
	start := c.Eng.Now()
	lastIdle := make([]int64, len(c.Engs))
	var active atomic.Int64
	for i, n := range c.Nodes {
		for core := 0; core < n.Cfg.Tiles(); core++ {
			app := factory(i, core)
			if app == nil {
				continue
			}
			d := cpu.NewAppDriver(n.Eng, n.Cfg, core, n.Agents[core], n.QPs[core], n.Stats, app)
			// The issue boundary of the cluster addressing contract: a
			// workload that manufactures a remote address with stray bits in
			// the node-selector field fails its run loudly here instead of
			// being silently mis-routed (see fabric.CheckRemoteAddr).
			d.CheckAddr = c.Inter.CheckAddr
			active.Add(1)
			if windowed {
				s, eng := c.shardOf(i), n.Eng
				d.OnIdle = func() {
					// The run's reported Cycles is the cycle the last
					// driver idles; each shard tracks its own and the
					// windowed loop takes the max. The engines keep
					// running to the window boundary — the same residual
					// events at every shard count.
					lastIdle[s] = eng.Now()
					active.Add(-1)
				}
			} else {
				d.OnIdle = func() {
					if active.Add(-1) == 0 {
						c.Eng.Stop()
					}
				}
			}
			n.AppDrivers = append(n.AppDrivers, d)
			d.Start()
		}
	}
	if active.Load() == 0 {
		return ClusterWorkloadResult{}, fmt.Errorf("node: no cores have workloads")
	}
	var finish int64
	if !windowed {
		c.session.Run(maxCycles)
		if err := c.session.End(); err != nil {
			return ClusterWorkloadResult{}, err
		}
		finish = c.Eng.Now()
	} else {
		quiesced, err := c.runWindowed(maxCycles, func() bool { return active.Load() == 0 })
		if eerr := c.session.End(); err == nil {
			err = eerr
		}
		if err != nil {
			return ClusterWorkloadResult{}, err
		}
		if quiesced {
			for _, v := range lastIdle {
				if v > finish {
					finish = v
				}
			}
		} else {
			finish = maxCycles + 1 // where a budget-cut engine parks
		}
	}
	res := ClusterWorkloadResult{PerNode: make([]WorkloadResult, len(c.Nodes))}
	merged := stats.NewLatencyHistogram()
	var appErr error
	var latSum float64
	var latCount int64
	tiles := c.Cfg.Tiles()
	for i, n := range c.Nodes {
		nodeMerged := stats.NewLatencyHistogram()
		nr := WorkloadResult{
			Completed:    n.Stats.Completed,
			Cycles:       finish - start,
			MeanLatency:  n.Stats.ReqLat.Mean(),
			AppBytes:     n.Stats.RCPBytes + n.Stats.RRPPBytes,
			Retries:      n.Stats.Retries,
			Failed:       n.Stats.FailedOps,
			AllExhausted: active.Load() == 0,
			PerCore:      make([]CoreStats, 0, len(n.AppDrivers)),
		}
		for _, d := range n.AppDrivers {
			if err := d.Err(); err != nil && appErr == nil {
				appErr = fmt.Errorf("node %d: %w", i, err)
			}
			nodeMerged.Merge(d.Hist)
			merged.Merge(d.Hist)
			cs := CoreStats{
				Core:        d.ID(),
				Issued:      int64(d.Issued()),
				Completed:   int64(d.Completed()),
				MeanLatency: d.Hist.Mean(),
				P50:         d.Hist.Percentile(50),
				P95:         d.Hist.Percentile(95),
				P99:         d.Hist.Percentile(99),
			}
			nr.PerCore = append(nr.PerCore, cs)
			cs.Core = i*tiles + d.ID()
			res.Aggregate.PerCore = append(res.Aggregate.PerCore, cs)
		}
		nr.P50 = nodeMerged.Percentile(50)
		nr.P95 = nodeMerged.Percentile(95)
		nr.P99 = nodeMerged.Percentile(99)
		res.PerNode[i] = nr
		res.Aggregate.Completed += nr.Completed
		res.Aggregate.AppBytes += nr.AppBytes
		res.Aggregate.Retries += nr.Retries
		res.Aggregate.Failed += nr.Failed
		latSum += nr.MeanLatency * float64(n.Stats.ReqLat.Count())
		latCount += n.Stats.ReqLat.Count()
	}
	res.Aggregate.Cycles = finish - start
	res.Aggregate.AllExhausted = active.Load() == 0
	if latCount > 0 {
		res.Aggregate.MeanLatency = latSum / float64(latCount)
	}
	res.Aggregate.P50 = merged.Percentile(50)
	res.Aggregate.P95 = merged.Percentile(95)
	res.Aggregate.P99 = merged.Percentile(99)
	if appErr != nil {
		res.Aggregate.AllExhausted = false
		return res, appErr
	}
	return res, nil
}
