package node

import (
	"fmt"

	"rackni/internal/coherence"
	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/fabric"
	"rackni/internal/mem"
	"rackni/internal/noc"
	"rackni/internal/nocout"
	"rackni/internal/sim"
)

// NewNOCOut builds a node on the NOC-Out topology of §6.3: 8 LLC tiles in
// the chip's middle row interconnected by a flattened butterfly (which
// also attaches the MCs and the network router), with the cores of each
// column reaching their column's LLC tile over reduction/dispersion trees.
//
// Placement differences versus the mesh (Fig. 8): RRPPs sit at the LLC
// tiles (their rich connectivity provides full bisection bandwidth), the
// NIedge design collocates RGP/RCPs with them ("NImiddle"), NIsplit puts
// RGP/RCP backends at the LLC tiles, and the LLC has 8 banks instead of 64
// — the contention that caps NOC-Out's peak bandwidth.
func NewNOCOut(cfg config.Config, hops int) (*Node, error) {
	return newNOCOut(sim.NewEngine(), cfg, hops, true)
}

// newNOCOut assembles a NOC-Out node on the given engine, optionally
// attaching the single-node rack emulation to its network ports.
func newNOCOut(eng *sim.Engine, cfg config.Config, hops int, attachRack bool) (*Node, error) {
	cfg.Topology = config.NOCOut
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Node{Eng: eng, Cfg: &cfg, Stats: rmc.NewStats(), rackHops: hops}
	n.watch = sim.NewCancelWatch(n.Eng, cancelCheckCycles, n.context)
	net := nocout.NewNet(n.Eng, &cfg)
	n.NOCOut = net
	n.Net = net
	n.resets = append(n.resets, net.Reset)

	tiles := cfg.Tiles()
	banks := cfg.NOCOutLLCTiles
	homeOf := func(addr uint64) noc.NodeID {
		return noc.LLCID(int((addr / uint64(cfg.BlockBytes)) % uint64(banks)))
	}
	n.env = &rmc.Env{Eng: n.Eng, Cfg: n.Cfg, Net: n.Net, HomeOf: homeOf, Stats: n.Stats}

	for i := 0; i < banks; i++ {
		mc := mem.New(n.Eng, n.Net, &cfg, i)
		n.resets = append(n.resets, mc.Reset)
	}

	colOfCore := func(c int) int { return c % cfg.MeshWidth }

	// Core tiles: cache agents only (the LLC lives in the middle row).
	eps := make(map[noc.NodeID]*endpoint)
	n.Agents = make([]*coherence.Agent, tiles)
	for t := 0; t < tiles; t++ {
		id := noc.NodeID(t)
		if cfg.Design == config.NIEdge {
			n.Agents[t] = coherence.NewAgent(n.Eng, n.Net, &cfg, id,
				cfg.L1SizeBytes, cfg.L1Ways, int64(cfg.L1Latency), homeOf)
		} else {
			n.Agents[t] = coherence.NewComplex(n.Eng, n.Net, &cfg, id, homeOf)
		}
		eps[id] = &endpoint{agent: n.Agents[t]}
		n.resets = append(n.resets, n.Agents[t].Reset)
	}

	// LLC tiles: home controllers plus the RMC blocks placed there.
	bankBytes := cfg.LLCSizeBytes / banks
	n.Homes = make([]*coherence.Home, banks)
	for i := 0; i < banks; i++ {
		id := noc.LLCID(i)
		n.Homes[i] = coherence.NewHome(n.Eng, n.Net, &cfg, id, noc.MCID(i), bankBytes)
		eps[id] = &endpoint{home: n.Homes[i]}
		n.resets = append(n.resets, n.Homes[i].Reset)
	}

	n.QPs = make([]*rmc.QueuePair, tiles)
	for c := 0; c < tiles; c++ {
		n.QPs[c] = rmc.NewQueuePair(&cfg, c, qpWQBase(&cfg, c), qpCQBase(&cfg, c))
		n.resets = append(n.resets, n.QPs[c].Reset)
	}
	qpOf := func(c int) *rmc.QueuePair { return n.QPs[c] }

	switch cfg.Design {
	case config.NIEdge:
		n.EdgeCaches = make([]*coherence.Agent, banks)
		for i := 0; i < banks; i++ {
			id := noc.LLCID(i)
			dp := rmc.NewDataPath(n.env, id)
			niCache := coherence.NewAgent(n.Eng, n.Net, &cfg, noc.NIID(i),
				cfg.NICacheBlocks*cfg.BlockBytes, 4, 2, homeOf)
			n.EdgeCaches[i] = niCache
			// The NI cache is its own coherence endpoint (collocated on
			// the FB with the LLC tile).
			ni := niCache
			n.Net.Register(noc.NIID(i), ni.Handle)
			cache := rmc.EdgeCache{Agent: niCache}

			rgpB := rmc.NewRGPBackend(n.env, id, noc.NetID(i), id, int64(cfg.RGPUnifiedLat), dp)
			rcpF := rmc.NewRCPFrontend(n.env, cache, 0, qpOf)
			rcpB := rmc.NewRCPBackend(n.env, id, int64(cfg.RCPUnifiedLat), dp, rcpF.Complete)
			rgpB.OnFail(rcpB.FailRequest)
			rgpF := rmc.NewRGPFrontend(n.env, cache, 0, rgpB.Accept)
			rrpp := rmc.NewRRPP(n.env, id, noc.NetID(i), dp)
			for c := 0; c < tiles; c++ {
				if colOfCore(c) == i {
					rgpF.AddQP(n.QPs[c])
				}
			}
			n.RGPBackends = append(n.RGPBackends, rgpB)
			n.RRPPs = append(n.RRPPs, rrpp)
			n.frontends = append(n.frontends, rgpF)
			n.resets = append(n.resets, niCache.Reset, dp.Reset, rgpB.Reset, rrpp.Reset)
			ep := eps[id]
			ep.dp = dp
			ep.rcpB = rcpB
			ep.rrpp = rrpp
		}

	case config.NIPerTile:
		for t := 0; t < tiles; t++ {
			id := noc.NodeID(t)
			col := colOfCore(t)
			dp := rmc.NewDataPath(n.env, id)
			cache := rmc.NISideCache{Agent: n.Agents[t]}
			rgpB := rmc.NewRGPBackend(n.env, id, noc.NetID(col), id, int64(cfg.RGPUnifiedLat), dp)
			rcpF := rmc.NewRCPFrontend(n.env, cache, 0, qpOf)
			rcpB := rmc.NewRCPBackend(n.env, id, int64(cfg.RCPUnifiedLat), dp, rcpF.Complete)
			rgpB.OnFail(rcpB.FailRequest)
			rgpF := rmc.NewRGPFrontend(n.env, cache, 0, rgpB.Accept)
			rgpF.AddQP(n.QPs[t])
			ep := eps[id]
			ep.dp = dp
			ep.rcpB = rcpB
			n.RGPBackends = append(n.RGPBackends, rgpB)
			n.frontends = append(n.frontends, rgpF)
			n.resets = append(n.resets, dp.Reset, rgpB.Reset)
		}
		for i := 0; i < banks; i++ {
			id := noc.LLCID(i)
			dp := rmc.NewDataPath(n.env, id)
			rrpp := rmc.NewRRPP(n.env, id, noc.NetID(i), dp)
			n.RRPPs = append(n.RRPPs, rrpp)
			n.resets = append(n.resets, dp.Reset, rrpp.Reset)
			ep := eps[id]
			ep.dp = dp
			ep.rrpp = rrpp
		}

	case config.NISplit:
		for i := 0; i < banks; i++ {
			id := noc.LLCID(i)
			dp := rmc.NewDataPath(n.env, id)
			rgpB := rmc.NewRGPBackend(n.env, id, noc.NetID(i), id, int64(cfg.RGPBackendLat), dp)
			cqSender := newSender(n.env, id)
			rcpB := rmc.NewRCPBackend(n.env, id, int64(cfg.RCPBackendLat), dp,
				func(r *rmc.Request) {
					cqSender.dispatch(noc.VNResp, noc.ClassResponse,
						noc.NodeID(r.Core), 1, rmc.KCQDispatch, r)
				})
			rgpB.OnFail(rcpB.FailRequest)
			rrpp := rmc.NewRRPP(n.env, id, noc.NetID(i), dp)
			n.RGPBackends = append(n.RGPBackends, rgpB)
			n.RRPPs = append(n.RRPPs, rrpp)
			n.resets = append(n.resets, dp.Reset, rgpB.Reset, rrpp.Reset, cqSender.out.Reset)
			ep := eps[id]
			ep.dp = dp
			ep.rcpB = rcpB
			ep.rrpp = rrpp
			ep.onWQ = rgpB.Accept
		}
		for t := 0; t < tiles; t++ {
			id := noc.NodeID(t)
			col := colOfCore(t)
			cache := rmc.NISideCache{Agent: n.Agents[t]}
			wqSender := newSender(n.env, id)
			llc := noc.LLCID(col)
			rgpF := rmc.NewRGPFrontend(n.env, cache, int64(cfg.RGPFrontendLat),
				func(r *rmc.Request) {
					wqSender.dispatch(noc.VNReq, noc.ClassRequest,
						llc, cfg.ReqHeaderFlits, rmc.KWQDispatch, r)
				})
			rgpF.AddQP(n.QPs[t])
			rcpF := rmc.NewRCPFrontend(n.env, cache, int64(cfg.RCPFrontendLat), qpOf)
			n.frontends = append(n.frontends, rgpF)
			n.resets = append(n.resets, wqSender.out.Reset)
			eps[id].onCQ = rcpF.Complete
		}
	default:
		return nil, fmt.Errorf("nocout: unsupported design %v", cfg.Design)
	}

	for id, ep := range eps {
		ep := ep
		n.Net.Register(id, ep.handle)
	}

	n.port = fabric.NodePort{
		Env:   n.env,
		Ports: banks,
		HomeRow: func(addr uint64) int {
			return int((addr / uint64(cfg.BlockBytes)) % uint64(banks))
		},
		RowOf: func(id noc.NodeID) int {
			if noc.IsTile(id) {
				return int(id) % cfg.MeshWidth
			}
			return noc.Row(id)
		},
		RRPPAt: func(i int) noc.NodeID { return noc.LLCID(i) },
	}
	if attachRack {
		n.Rack = fabric.NewRack(n.port, hops)
		n.resets = append(n.resets, n.Rack.Reset)
		n.session = newSession([]*sim.Engine{n.Eng}, n.watch, []*Node{n}, nil)
	}
	return n, nil
}
