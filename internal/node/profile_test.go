package node

import (
	"testing"

	"rackni/internal/config"
)

// TestBandwidthTiny is a fast-cycling bandwidth run used for profiling and
// CI smoke; it asserts only liveness.
func TestBandwidthTiny(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	cfg.WindowCycles = 10_000
	cfg.MaxCycles = 50_000
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunBandwidth(1024)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tiny: app=%.1f GB/s completed=%d cycles=%d", res.AppGBps, res.Completed, res.Cycles)
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
}
