package node

import (
	"testing"

	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/cpu"
)

// fixedWrites issues remote writes then stops.
type fixedWrites struct {
	n    int
	size int
}

func (f fixedWrites) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if int(seq) >= f.n {
		return 0, 0, 0, 0, false
	}
	remote := uint64(SourceBase) + uint64(seq)*uint64(f.size)
	local := LocalBase + uint64(coreID)*LocalStride + uint64(seq)*uint64(f.size)
	return rmc.OpWrite, remote, local, f.size, true
}

// TestRemoteWritesComplete exercises the one-sided write path end to end
// on every design: RGP loads the payload from local memory, the packet
// carries data, the remote RRPP stores it and acks, the RCP completes
// without a data write.
func TestRemoteWritesComplete(t *testing.T) {
	for _, d := range []config.Design{config.NIEdge, config.NIPerTile, config.NISplit} {
		cfg := config.Default()
		cfg.Design = d
		n, err := New(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunWorkload(func(core int) cpu.Workload {
			if core != 5 {
				return nil
			}
			return fixedWrites{n: 10, size: 1024}
		}, 2_000_000)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Completed != 10 {
			t.Fatalf("%v: completed %d of 10 writes", d, res.Completed)
		}
		// The remote side must have absorbed the payload (no RRPP read
		// bytes; the written blocks land through KNIWrite at the homes).
		wrote := int64(0)
		for _, h := range n.Homes {
			wrote += h.NIWrites
		}
		if wrote < 10*1024/int64(cfg.BlockBytes) {
			t.Fatalf("%v: only %d blocks written remotely", d, wrote)
		}
	}
}

// TestWriteLatencyExceedsReadSetup: a remote write must pay the local
// payload load before injection, so its unloaded latency is at least a
// read's.
func TestWriteVsReadLatency(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	n, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunWorkload(func(core int) cpu.Workload {
		if core != 27 {
			return nil
		}
		return fixedWrites{n: 20, size: 64}
	}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	writeLat := res.MeanLatency

	n2, err := New(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	readRes, err := n2.RunSyncLatency(64, 27)
	if err != nil {
		t.Fatal(err)
	}
	// The write path loads payload from DRAM first; it must not be faster
	// than a read minus the response payload difference (sanity bound).
	if writeLat < readRes.MeanCycles*0.7 {
		t.Fatalf("write %.0f suspiciously fast vs read %.0f", writeLat, readRes.MeanCycles)
	}
}

// TestMixedReadWriteWorkload runs interleaved reads and writes across
// several cores on all designs (dispatch soak test for the RMC pipelines).
func TestMixedReadWriteWorkload(t *testing.T) {
	for _, d := range []config.Design{config.NIEdge, config.NIPerTile, config.NISplit} {
		cfg := config.Default()
		cfg.Design = d
		n, err := New(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunWorkload(func(core int) cpu.Workload {
			if core%8 != 0 {
				return nil
			}
			return mixedOps{n: 16, core: core}
		}, 4_000_000)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Completed != 8*16 {
			t.Fatalf("%v: completed %d of %d", d, res.Completed, 8*16)
		}
	}
}

type mixedOps struct {
	n    int
	core int
}

func (m mixedOps) Next(coreID int, seq uint64) (rmc.Op, uint64, uint64, int, bool) {
	if int(seq) >= m.n {
		return 0, 0, 0, 0, false
	}
	op := rmc.OpRead
	if seq%3 == 2 {
		op = rmc.OpWrite
	}
	size := 64 << (seq % 5) // 64B .. 1KB
	remote := uint64(SourceBase) + (uint64(m.core)*1000+seq)*8192
	local := LocalBase + uint64(m.core)*LocalStride + seq*8192
	return op, remote, local, size, true
}

// TestNOCOutWrites exercises writes on the NOC-Out topology too.
func TestNOCOutWrites(t *testing.T) {
	cfg := config.Default()
	cfg.Design = config.NISplit
	n, err := NewNOCOut(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunWorkload(func(core int) cpu.Workload {
		if core != 9 {
			return nil
		}
		return fixedWrites{n: 6, size: 512}
	}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 6 {
		t.Fatalf("completed %d of 6", res.Completed)
	}
}
