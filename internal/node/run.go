package node

import (
	"fmt"

	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/stats"
)

// Breakdown is the per-request latency tomography (Tables 1 and 3), in
// cycles, averaged over measured requests.
type Breakdown struct {
	WQWrite  float64 // core starts building the entry -> store visible
	WQRead   float64 // store visible -> RGP frontend has the entry
	Dispatch float64 // frontend -> backend (Frontend-Backend Interface)
	Generate float64 // backend processing until first packet injected
	NetOut   float64 // intra-rack hops, outbound
	Remote   float64 // remote node service (measured via the mirror RRPP)
	NetBack  float64 // intra-rack hops, inbound
	Complete float64 // first response on chip -> data written locally
	CQWrite  float64 // data written -> CQ entry visible
	CQRead   float64 // CQ entry visible -> core consumed it
	Total    float64
	RRPPLat  float64 // average measured RRPP service latency
	Samples  int
}

// SyncResult is the outcome of a synchronous-latency run.
type SyncResult struct {
	MeanCycles float64
	MeanNS     float64
	Breakdown  Breakdown
}

// cancelCheckCycles is the simulated-cycle period at which a run polls its
// context for cancellation. At the simulator's loaded throughput this is a
// few wall-clock polls per second — prompt aborts with negligible overhead.
const cancelCheckCycles = 10_000

// refuseMember errors when a cluster member is driven through the
// single-node run entry points: run control of the shared engine belongs
// to the cluster's Session, and a member beginning its own run would reset
// every peer's state mid-flight.
func (n *Node) refuseMember() error {
	if n.member {
		return fmt.Errorf("node: this node is a cluster member; drive it through the Cluster's run methods")
	}
	return nil
}

// RunSyncLatency runs the unloaded latency microbenchmark (§5): one core
// issues synchronous remote reads of the given size; warmup requests are
// discarded. The issuing core defaults to a centrally located tile. The
// Session makes a reused node bit-identical to a fresh one, so results are
// per-run by construction.
func (n *Node) RunSyncLatency(size, onCore int) (SyncResult, error) {
	if err := n.refuseMember(); err != nil {
		return SyncResult{}, err
	}
	n.session.Begin()
	cfg := n.Cfg
	total := uint64(cfg.WarmupRequests + cfg.MeasureReqs)
	wl := cpu.NewUniformReads(size,
		SourceBase, SourceSpan,
		LocalBase+uint64(onCore)*LocalStride, LocalStride,
		total, cfg.Seed+uint64(onCore))
	d := cpu.NewDriver(n.Eng, cfg, onCore, n.Agents[onCore], n.QPs[onCore], n.Stats, wl, cpu.Sync)
	n.Drivers = append(n.Drivers, d)
	finished := false
	d.OnIdle = func() { finished = true; n.Eng.Stop() }
	d.Start()
	n.session.Run(cfg.MaxCycles)
	if err := n.session.End(); err != nil {
		return SyncResult{}, err
	}
	if !finished || d.Completed() < total {
		return SyncResult{}, fmt.Errorf("sync run did not finish: %d/%d completed by cycle %d",
			d.Completed(), total, n.Eng.Now())
	}
	bd := n.breakdown(d.Retired[cfg.WarmupRequests:])
	return SyncResult{
		MeanCycles: bd.Total,
		MeanNS:     bd.Total * cfg.NsPerCycle(),
		Breakdown:  bd,
	}, nil
}

func (n *Node) breakdown(reqs []*rmc.Request) Breakdown {
	var b Breakdown
	if len(reqs) == 0 {
		return b
	}
	hop := float64(n.Cfg.NetHopCycles())
	hops := float64(n.RackHops())
	for _, r := range reqs {
		b.WQWrite += float64(r.T.WQWritten - r.T.IssueStart)
		b.WQRead += float64(r.T.WQSeen - r.T.WQWritten)
		b.Dispatch += float64(r.T.Dispatched - r.T.WQSeen)
		b.Generate += float64(r.T.Injected - r.T.Dispatched)
		roundTrip := float64(r.T.RespFirst - r.T.Injected)
		b.NetOut += hop * hops
		b.NetBack += hop * hops
		b.Remote += roundTrip - 2*hop*hops
		b.Complete += float64(r.T.DataDone - r.T.RespFirst)
		b.CQWrite += float64(r.T.CQWritten - r.T.DataDone)
		b.CQRead += float64(r.T.Done - r.T.CQWritten)
		b.Total += float64(r.T.Done - r.T.IssueStart)
	}
	k := float64(len(reqs))
	b.WQWrite /= k
	b.WQRead /= k
	b.Dispatch /= k
	b.Generate /= k
	b.NetOut /= k
	b.NetBack /= k
	b.Remote /= k
	b.Complete /= k
	b.CQWrite /= k
	b.CQRead /= k
	b.Total /= k
	b.RRPPLat = n.Stats.RRPPLat.Mean()
	b.Samples = len(reqs)
	return b
}

// RackHops returns the one-way hop count this node was built with.
func (n *Node) RackHops() int { return n.rackHops }

// BWResult is the outcome of a bandwidth run.
type BWResult struct {
	AppGBps       float64 // paper's application bandwidth (RCP writes + RRPP sends)
	NOCGBps       float64 // aggregate NOC bandwidth (bytes injected into the mesh)
	FlitHopGBps   float64 // flit-hops moved (link utilization view)
	BisectionGBps float64 // traffic crossing the vertical bisection
	Cycles        int64
	Stable        bool
	Completed     int64
}

// RunBandwidth runs the asynchronous bandwidth microbenchmark (§5): all
// cores issue async remote reads of the given size, WQ depth 128, until
// the windowed application bandwidth stabilizes (or MaxCycles). The
// Session makes a reused node bit-identical to a fresh one — in-flight
// remnants of a cut-short previous run no longer exist by the time the
// drivers start.
func (n *Node) RunBandwidth(size int) (BWResult, error) {
	if err := n.refuseMember(); err != nil {
		return BWResult{}, err
	}
	n.session.Begin()
	start := n.Eng.Now()
	cfg := n.Cfg
	tiles := cfg.Tiles()
	for c := 0; c < tiles; c++ {
		wl := cpu.NewUniformReads(size,
			SourceBase, SourceSpan,
			LocalBase+uint64(c)*LocalStride, LocalStride,
			0, cfg.Seed+uint64(c)*7919+1)
		d := cpu.NewDriver(n.Eng, cfg, c, n.Agents[c], n.QPs[c], n.Stats, wl, cpu.Async)
		n.Drivers = append(n.Drivers, d)
		d.Start()
	}
	mon := stats.NewBandwidthMonitor(cfg.WindowCycles, cfg.StableDelta, 3)
	appBytes := func() int64 { return n.Stats.RCPBytes + n.Stats.RRPPBytes }

	var flits0, bis0, inj0 int64
	var cycles0 int64
	stable := false
	var tick func()
	tick = func() {
		if mon.Observe(appBytes()) {
			stable = true
			n.Eng.Stop()
			return
		}
		n.Eng.Schedule(cfg.WindowCycles, tick)
	}
	// Skip the first window as warmup, then start counting NOC flits.
	n.Eng.Schedule(cfg.WindowCycles, func() {
		if n.Mesh != nil {
			flits0 = n.Mesh.FlitsCarried()
			bis0 = n.Mesh.BisectionFlits()
			inj0 = n.Mesh.BytesInjected()
		} else if n.NOCOut != nil {
			flits0 = n.NOCOut.FlitsCarried()
			inj0 = n.NOCOut.BytesInjected()
		}
		cycles0 = n.Eng.Now()
		mon.Reset(appBytes())
		n.Eng.Schedule(cfg.WindowCycles, tick)
	})
	n.session.Run(cfg.MaxCycles)
	if err := n.session.End(); err != nil {
		return BWResult{}, err
	}
	elapsed := n.Eng.Now() - cycles0
	if elapsed <= 0 {
		return BWResult{}, fmt.Errorf("bandwidth run made no progress")
	}
	ghz := cfg.ClockGHz
	res := BWResult{
		AppGBps:   stats.GBps(mon.BytesPerCycle(), ghz),
		Cycles:    n.Eng.Now() - start,
		Stable:    stable,
		Completed: n.Stats.Completed,
	}
	if n.Mesh != nil {
		res.NOCGBps = stats.GBps(float64(n.Mesh.BytesInjected()-inj0)/float64(elapsed), ghz)
		res.FlitHopGBps = stats.GBps(float64((n.Mesh.FlitsCarried()-flits0)*int64(cfg.LinkBytes))/float64(elapsed), ghz)
		res.BisectionGBps = stats.GBps(float64((n.Mesh.BisectionFlits()-bis0)*int64(cfg.LinkBytes))/float64(elapsed), ghz)
	} else if n.NOCOut != nil {
		res.NOCGBps = stats.GBps(float64(n.NOCOut.BytesInjected()-inj0)/float64(elapsed), ghz)
		res.FlitHopGBps = stats.GBps(float64((n.NOCOut.FlitsCarried()-flits0)*int64(cfg.LinkBytes))/float64(elapsed), ghz)
	}
	return res, nil
}

// CoreStats is one core's slice of a workload run.
type CoreStats struct {
	Core        int
	Issued      int64
	Completed   int64
	MeanLatency float64 // cycles per completed request
	P50         int64   // request latency percentiles, in cycles
	P95         int64
	P99         int64
}

// WorkloadResult summarizes a workload run (RunApp / RunWorkload).
// Percentiles come from deterministic fixed-bucket histograms — never
// sampled, exact to one 16-cycle bucket within the 64 Ki-cycle bucketed
// range (latencies beyond it report the observed maximum) — so the p99 of
// a million-request run is trustworthy: the metric that matters for
// soNUMA-class remote access.
type WorkloadResult struct {
	Completed    int64
	Cycles       int64
	MeanLatency  float64 // cycles per completed request
	P50          int64   // request latency percentiles, in cycles
	P95          int64
	P99          int64
	AppBytes     int64 // RCP-written plus RRPP-sent payload bytes
	Retries      int64 // block retransmissions (fault-injected runs)
	Failed       int64 // requests retired as permanently failed
	AllExhausted bool  // every driver finished its workload and drained
	PerCore      []CoreStats
}

// RunApp drives every core whose factory returns a non-nil v2 App as a
// closed-loop state machine, until all drivers finish (including draining
// in-flight requests) or maxCycles elapse. A run stopped by maxCycles
// returns partial statistics with AllExhausted=false. An app that violates
// the contract (waiting with nothing in flight) fails the run. The Session
// makes a reused node bit-identical to a fresh one, so statistics, the
// cycle budget and the reported cycles are per-run by construction.
func (n *Node) RunApp(factory func(core int) cpu.App, maxCycles int64) (WorkloadResult, error) {
	if err := n.refuseMember(); err != nil {
		return WorkloadResult{}, err
	}
	if maxCycles <= 0 {
		maxCycles = n.Cfg.MaxCycles
	}
	n.session.Begin()
	start := n.Eng.Now()
	active := 0
	for c := 0; c < n.Cfg.Tiles(); c++ {
		app := factory(c)
		if app == nil {
			continue
		}
		d := cpu.NewAppDriver(n.Eng, n.Cfg, c, n.Agents[c], n.QPs[c], n.Stats, app)
		active++
		d.OnIdle = func() {
			active--
			if active == 0 {
				n.Eng.Stop()
			}
		}
		n.AppDrivers = append(n.AppDrivers, d)
		d.Start()
	}
	if active == 0 {
		return WorkloadResult{}, fmt.Errorf("node: no cores have workloads")
	}
	n.session.Run(maxCycles)
	if err := n.session.End(); err != nil {
		return WorkloadResult{}, err
	}
	res := WorkloadResult{
		Completed:    n.Stats.Completed,
		Cycles:       n.Eng.Now() - start,
		MeanLatency:  n.Stats.ReqLat.Mean(),
		AppBytes:     n.Stats.RCPBytes + n.Stats.RRPPBytes,
		Retries:      n.Stats.Retries,
		Failed:       n.Stats.FailedOps,
		AllExhausted: active == 0,
		PerCore:      make([]CoreStats, 0, len(n.AppDrivers)),
	}
	merged := stats.NewLatencyHistogram()
	var appErr error
	for _, d := range n.AppDrivers {
		if err := d.Err(); err != nil && appErr == nil {
			appErr = err
		}
		merged.Merge(d.Hist)
		res.PerCore = append(res.PerCore, CoreStats{
			Core:        d.ID(),
			Issued:      int64(d.Issued()),
			Completed:   int64(d.Completed()),
			MeanLatency: d.Hist.Mean(),
			P50:         d.Hist.Percentile(50),
			P95:         d.Hist.Percentile(95),
			P99:         d.Hist.Percentile(99),
		})
	}
	res.P50 = merged.Percentile(50)
	res.P95 = merged.Percentile(95)
	res.P99 = merged.Percentile(99)
	if appErr != nil {
		// A deadlocked core parks like a finished one (so the run can end),
		// but its workload did not complete — the partial result returned
		// with the error must not claim a full drain.
		res.AllExhausted = false
		return res, appErr
	}
	return res, nil
}

// RunWorkload drives every core whose factory returns a non-nil v1
// workload through the legacy adapter. The adapter reproduces the old
// open-loop async driver bit for bit (see workload_equiv_test.go), so
// existing callers observe identical results — now with percentiles and
// per-core breakdowns filled in.
func (n *Node) RunWorkload(factory func(core int) cpu.Workload, maxCycles int64) (WorkloadResult, error) {
	return n.RunApp(func(core int) cpu.App {
		wl := factory(core)
		if wl == nil {
			return nil
		}
		return cpu.Legacy(wl)
	}, maxCycles)
}
