package node

import (
	"fmt"

	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/stats"
)

// Breakdown is the per-request latency tomography (Tables 1 and 3), in
// cycles, averaged over measured requests.
type Breakdown struct {
	WQWrite  float64 // core starts building the entry -> store visible
	WQRead   float64 // store visible -> RGP frontend has the entry
	Dispatch float64 // frontend -> backend (Frontend-Backend Interface)
	Generate float64 // backend processing until first packet injected
	NetOut   float64 // intra-rack hops, outbound
	Remote   float64 // remote node service (measured via the mirror RRPP)
	NetBack  float64 // intra-rack hops, inbound
	Complete float64 // first response on chip -> data written locally
	CQWrite  float64 // data written -> CQ entry visible
	CQRead   float64 // CQ entry visible -> core consumed it
	Total    float64
	RRPPLat  float64 // average measured RRPP service latency
	Samples  int
}

// SyncResult is the outcome of a synchronous-latency run.
type SyncResult struct {
	MeanCycles float64
	MeanNS     float64
	Breakdown  Breakdown
}

// cancelCheckCycles is the simulated-cycle period at which a run polls its
// context for cancellation. At the simulator's loaded throughput this is a
// few wall-clock polls per second — prompt aborts with negligible overhead.
const cancelCheckCycles = 10_000

// watchCancel arms a periodic context poll that stops the engine once the
// node's context is cancelled. The poll events mutate no simulator state, so
// results are bit-identical with and without a watchdog. A nil or
// non-cancellable context arms nothing. Call it at the start of every run:
// it resets the fired flag so ctxErr only reports cancellations that
// actually stopped the current run, not ones landing after it completed.
func (n *Node) watchCancel() {
	n.ctxFired = false
	if n.ctxWatched || n.ctx == nil || n.ctx.Done() == nil {
		return
	}
	n.ctxWatched = true
	var tick func()
	tick = func() {
		// The chain may outlive the run that armed it (the engine keeps
		// pending ticks across runs on a reused node). Tear it down if the
		// context was detached or replaced by a non-cancellable one, and
		// disarm on teardown so a later SetContext arms a fresh chain.
		if n.ctx == nil || n.ctx.Done() == nil {
			n.ctxWatched = false
			return
		}
		if n.ctx.Err() != nil {
			n.ctxWatched = false
			n.ctxFired = true
			n.Eng.Stop()
			return
		}
		n.Eng.Schedule(cancelCheckCycles, tick)
	}
	n.Eng.Schedule(cancelCheckCycles, tick)
}

// ctxErr reports the context's cancellation error if the watchdog stopped
// the current run; a run that completed before the cancellation landed
// keeps its result.
func (n *Node) ctxErr() error {
	if n.ctxFired && n.ctx != nil {
		return n.ctx.Err()
	}
	return nil
}

// RunSyncLatency runs the unloaded latency microbenchmark (§5): one core
// issues synchronous remote reads of the given size; warmup requests are
// discarded. The issuing core defaults to a centrally located tile.
func (n *Node) RunSyncLatency(size, onCore int) (SyncResult, error) {
	cfg := n.Cfg
	total := uint64(cfg.WarmupRequests + cfg.MeasureReqs)
	wl := cpu.NewUniformReads(size,
		SourceBase, SourceSpan,
		LocalBase+uint64(onCore)*LocalStride, LocalStride,
		total, cfg.Seed+uint64(onCore))
	d := cpu.NewDriver(n.Eng, cfg, onCore, n.Agents[onCore], n.QPs[onCore], n.Stats, wl, cpu.Sync)
	n.Drivers = []*cpu.Driver{d}
	finished := false
	d.OnIdle = func() { finished = true; n.Eng.Stop() }
	d.Start()
	n.watchCancel()
	n.Eng.Run(cfg.MaxCycles)
	if err := n.ctxErr(); err != nil {
		return SyncResult{}, err
	}
	if !finished || d.Completed() < total {
		return SyncResult{}, fmt.Errorf("sync run did not finish: %d/%d completed by cycle %d",
			d.Completed(), total, n.Eng.Now())
	}
	bd := n.breakdown(d.Retired[cfg.WarmupRequests:])
	return SyncResult{
		MeanCycles: bd.Total,
		MeanNS:     bd.Total * cfg.NsPerCycle(),
		Breakdown:  bd,
	}, nil
}

func (n *Node) breakdown(reqs []*rmc.Request) Breakdown {
	var b Breakdown
	if len(reqs) == 0 {
		return b
	}
	hop := float64(n.Cfg.NetHopCycles())
	hops := float64(n.RackHops())
	for _, r := range reqs {
		b.WQWrite += float64(r.T.WQWritten - r.T.IssueStart)
		b.WQRead += float64(r.T.WQSeen - r.T.WQWritten)
		b.Dispatch += float64(r.T.Dispatched - r.T.WQSeen)
		b.Generate += float64(r.T.Injected - r.T.Dispatched)
		roundTrip := float64(r.T.RespFirst - r.T.Injected)
		b.NetOut += hop * hops
		b.NetBack += hop * hops
		b.Remote += roundTrip - 2*hop*hops
		b.Complete += float64(r.T.DataDone - r.T.RespFirst)
		b.CQWrite += float64(r.T.CQWritten - r.T.DataDone)
		b.CQRead += float64(r.T.Done - r.T.CQWritten)
		b.Total += float64(r.T.Done - r.T.IssueStart)
	}
	k := float64(len(reqs))
	b.WQWrite /= k
	b.WQRead /= k
	b.Dispatch /= k
	b.Generate /= k
	b.NetOut /= k
	b.NetBack /= k
	b.Remote /= k
	b.Complete /= k
	b.CQWrite /= k
	b.CQRead /= k
	b.Total /= k
	b.RRPPLat = n.Stats.RRPPLat.Mean()
	b.Samples = len(reqs)
	return b
}

// RackHops returns the one-way hop count this node was built with.
func (n *Node) RackHops() int { return n.rackHops }

// BWResult is the outcome of a bandwidth run.
type BWResult struct {
	AppGBps       float64 // paper's application bandwidth (RCP writes + RRPP sends)
	NOCGBps       float64 // aggregate NOC bandwidth (bytes injected into the mesh)
	FlitHopGBps   float64 // flit-hops moved (link utilization view)
	BisectionGBps float64 // traffic crossing the vertical bisection
	Cycles        int64
	Stable        bool
	Completed     int64
}

// RunBandwidth runs the asynchronous bandwidth microbenchmark (§5): all
// cores issue async remote reads of the given size, WQ depth 128, until
// the windowed application bandwidth stabilizes (or MaxCycles).
func (n *Node) RunBandwidth(size int) (BWResult, error) {
	cfg := n.Cfg
	tiles := cfg.Tiles()
	n.Drivers = n.Drivers[:0]
	for c := 0; c < tiles; c++ {
		wl := cpu.NewUniformReads(size,
			SourceBase, SourceSpan,
			LocalBase+uint64(c)*LocalStride, LocalStride,
			0, cfg.Seed+uint64(c)*7919+1)
		d := cpu.NewDriver(n.Eng, cfg, c, n.Agents[c], n.QPs[c], n.Stats, wl, cpu.Async)
		n.Drivers = append(n.Drivers, d)
		d.Start()
	}
	mon := stats.NewBandwidthMonitor(cfg.WindowCycles, cfg.StableDelta, 3)
	appBytes := func() int64 { return n.Stats.RCPBytes + n.Stats.RRPPBytes }

	var flits0, bis0, inj0 int64
	var cycles0 int64
	stable := false
	var tick func()
	tick = func() {
		if mon.Observe(appBytes()) {
			stable = true
			n.Eng.Stop()
			return
		}
		n.Eng.Schedule(cfg.WindowCycles, tick)
	}
	// Skip the first window as warmup, then start counting NOC flits.
	n.Eng.Schedule(cfg.WindowCycles, func() {
		if n.Mesh != nil {
			flits0 = n.Mesh.FlitsCarried()
			bis0 = n.Mesh.BisectionFlits()
			inj0 = n.Mesh.BytesInjected()
		} else if n.NOCOut != nil {
			flits0 = n.NOCOut.FlitsCarried()
			inj0 = n.NOCOut.BytesInjected()
		}
		cycles0 = n.Eng.Now()
		mon.Reset(appBytes())
		n.Eng.Schedule(cfg.WindowCycles, tick)
	})
	n.watchCancel()
	n.Eng.Run(cfg.MaxCycles)
	for _, d := range n.Drivers {
		d.Stop()
	}
	if err := n.ctxErr(); err != nil {
		return BWResult{}, err
	}
	elapsed := n.Eng.Now() - cycles0
	if elapsed <= 0 {
		return BWResult{}, fmt.Errorf("bandwidth run made no progress")
	}
	ghz := cfg.ClockGHz
	res := BWResult{
		AppGBps:   stats.GBps(mon.BytesPerCycle(), ghz),
		Cycles:    n.Eng.Now(),
		Stable:    stable,
		Completed: n.Stats.Completed,
	}
	if n.Mesh != nil {
		res.NOCGBps = stats.GBps(float64(n.Mesh.BytesInjected()-inj0)/float64(elapsed), ghz)
		res.FlitHopGBps = stats.GBps(float64((n.Mesh.FlitsCarried()-flits0)*int64(cfg.LinkBytes))/float64(elapsed), ghz)
		res.BisectionGBps = stats.GBps(float64((n.Mesh.BisectionFlits()-bis0)*int64(cfg.LinkBytes))/float64(elapsed), ghz)
	} else if n.NOCOut != nil {
		res.NOCGBps = stats.GBps(float64(n.NOCOut.BytesInjected()-inj0)/float64(elapsed), ghz)
		res.FlitHopGBps = stats.GBps(float64((n.NOCOut.FlitsCarried()-flits0)*int64(cfg.LinkBytes))/float64(elapsed), ghz)
	}
	return res, nil
}

// WorkloadResult summarizes a custom workload run (RunWorkload).
type WorkloadResult struct {
	Completed    int64
	Cycles       int64
	MeanLatency  float64 // cycles per completed request
	AppBytes     int64   // RCP-written plus RRPP-sent payload bytes
	AllExhausted bool    // every driver finished its workload
}

// RunWorkload drives every core whose factory returns a non-nil workload,
// asynchronously, until all drivers finish (including draining in-flight
// requests) or maxCycles elapse.
func (n *Node) RunWorkload(factory func(core int) cpu.Workload, maxCycles int64) (WorkloadResult, error) {
	if maxCycles <= 0 {
		maxCycles = n.Cfg.MaxCycles
	}
	n.Drivers = n.Drivers[:0]
	active := 0
	for c := 0; c < n.Cfg.Tiles(); c++ {
		wl := factory(c)
		if wl == nil {
			continue
		}
		d := cpu.NewDriver(n.Eng, n.Cfg, c, n.Agents[c], n.QPs[c], n.Stats, wl, cpu.Async)
		active++
		d.OnIdle = func() {
			active--
			if active == 0 {
				n.Eng.Stop()
			}
		}
		n.Drivers = append(n.Drivers, d)
		d.Start()
	}
	if active == 0 {
		return WorkloadResult{}, fmt.Errorf("node: no cores have workloads")
	}
	n.watchCancel()
	n.Eng.Run(maxCycles)
	if err := n.ctxErr(); err != nil {
		return WorkloadResult{}, err
	}
	res := WorkloadResult{
		Completed:    n.Stats.Completed,
		Cycles:       n.Eng.Now(),
		MeanLatency:  n.Stats.ReqLat.Mean(),
		AppBytes:     n.Stats.RCPBytes + n.Stats.RRPPBytes,
		AllExhausted: active == 0,
	}
	return res, nil
}
