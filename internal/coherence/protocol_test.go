package coherence

import (
	"testing"
	"testing/quick"

	"rackni/internal/config"
	"rackni/internal/mem"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// rig wires a mesh, per-tile homes, per-row MCs and a set of cache agents
// into a runnable coherence system, the way the node assembly does.
type rig struct {
	eng    *sim.Engine
	cfg    config.Config
	net    *noc.Mesh
	homes  map[noc.NodeID]*Home
	agents map[noc.NodeID]*Agent
}

func newRig(t *testing.T, complexTiles bool, agentTiles ...noc.NodeID) *rig {
	t.Helper()
	cfg := config.Default()
	eng := sim.NewEngine()
	net := noc.NewMesh(eng, &cfg)
	r := &rig{eng: eng, cfg: cfg, net: net,
		homes:  make(map[noc.NodeID]*Home),
		agents: make(map[noc.NodeID]*Agent)}
	homeOf := func(addr uint64) noc.NodeID {
		return noc.NodeID((addr / uint64(cfg.BlockBytes)) % uint64(cfg.Tiles()))
	}
	for row := 0; row < cfg.MeshHeight; row++ {
		mem.New(eng, net, &cfg, row)
	}
	bank := cfg.LLCSizeBytes / cfg.Tiles()
	for tindex := 0; tindex < cfg.Tiles(); tindex++ {
		id := noc.NodeID(tindex)
		row := tindex / cfg.MeshWidth
		h := NewHome(eng, net, &cfg, id, noc.MCID(row), bank)
		r.homes[id] = h
		var a *Agent
		for _, at := range agentTiles {
			if at == id {
				if complexTiles {
					a = NewComplex(eng, net, &cfg, id, homeOf)
				} else {
					a = NewAgent(eng, net, &cfg, id, cfg.L1SizeBytes, cfg.L1Ways, int64(cfg.L1Latency), homeOf)
				}
				r.agents[id] = a
			}
		}
		agent := a
		net.Register(id, func(m *noc.Message) {
			if HomeKind(m.Kind) {
				h.Handle(m)
				return
			}
			if agent == nil {
				t.Fatalf("agent-bound %s at tile %d with no agent", kindName(m.Kind), id)
			}
			agent.Handle(m)
		})
	}
	return r
}

func (r *rig) run() { r.eng.RunAll() }

// addrHomedAt returns an address whose home tile is the given tile.
func (r *rig) addrHomedAt(tile noc.NodeID, n int) uint64 {
	return uint64(tile)*uint64(r.cfg.BlockBytes) + uint64(n)*uint64(r.cfg.BlockBytes)*uint64(r.cfg.Tiles())
}

func TestReadMissGrantsExclusive(t *testing.T) {
	r := newRig(t, false, 0)
	a := r.agents[0]
	addr := r.addrHomedAt(30, 0)
	done := false
	var at int64
	a.Read(addr, func() { done = true; at = r.eng.Now() })
	r.run()
	if !done {
		t.Fatal("read never completed")
	}
	if st := a.StateOf(addr); st != Exclusive {
		t.Fatalf("state=%v want E (sole reader)", st)
	}
	if at <= int64(r.cfg.L1Latency) {
		t.Fatalf("miss completed in %d cycles — faster than a hit", at)
	}
	if r.homes[30].MissesToMem != 1 {
		t.Fatalf("expected one memory fetch, got %d", r.homes[30].MissesToMem)
	}
}

func TestHitAfterFill(t *testing.T) {
	r := newRig(t, false, 0)
	a := r.agents[0]
	addr := r.addrHomedAt(12, 0)
	var first, second int64
	a.Read(addr, func() {
		first = r.eng.Now()
		a.Read(addr, func() { second = r.eng.Now() })
	})
	r.run()
	if second-first != int64(r.cfg.L1Latency) {
		t.Fatalf("hit latency = %d, want %d", second-first, r.cfg.L1Latency)
	}
}

func TestSilentEtoMUpgrade(t *testing.T) {
	r := newRig(t, false, 0)
	a := r.agents[0]
	addr := r.addrHomedAt(5, 0)
	var writeLat int64
	a.Read(addr, func() {
		start := r.eng.Now()
		a.Write(addr, func() { writeLat = r.eng.Now() - start })
	})
	r.run()
	if a.StateOf(addr) != Modified {
		t.Fatalf("state=%v want M", a.StateOf(addr))
	}
	if writeLat != int64(r.cfg.L1Latency) {
		t.Fatalf("E->M upgrade cost %d cycles; must be a silent local hit (%d)", writeLat, r.cfg.L1Latency)
	}
}

func TestThreeHopDirtyForward(t *testing.T) {
	r := newRig(t, false, 0, 63)
	w, rd := r.agents[0], r.agents[63]
	addr := r.addrHomedAt(27, 0)
	sawData := false
	w.Write(addr, func() {
		rd.Read(addr, func() { sawData = true })
	})
	r.run()
	if !sawData {
		t.Fatal("reader never completed")
	}
	if w.StateOf(addr) != Shared || rd.StateOf(addr) != Shared {
		t.Fatalf("after FwdGetS: writer=%v reader=%v, want S/S", w.StateOf(addr), rd.StateOf(addr))
	}
	// The dirty data must have been copied back into the home LLC.
	if !r.homes[27].llc.Contains(addr) {
		t.Fatal("CopyBack did not land in the home LLC bank")
	}
}

func TestInvalidationOnWrite(t *testing.T) {
	r := newRig(t, false, 0, 1, 2)
	a, b, c := r.agents[0], r.agents[1], r.agents[2]
	addr := r.addrHomedAt(40, 0)
	step := 0
	a.Read(addr, func() {
		b.Read(addr, func() {
			c.Write(addr, func() { step = 3 })
		})
	})
	r.run()
	if step != 3 {
		t.Fatal("writer never completed")
	}
	if a.StateOf(addr) != Invalid || b.StateOf(addr) != Invalid {
		t.Fatalf("sharers not invalidated: a=%v b=%v", a.StateOf(addr), b.StateOf(addr))
	}
	if c.StateOf(addr) != Modified {
		t.Fatalf("writer state=%v want M", c.StateOf(addr))
	}
}

func TestOwnershipTransferOnWriteWrite(t *testing.T) {
	r := newRig(t, false, 0, 9)
	a, b := r.agents[0], r.agents[9]
	addr := r.addrHomedAt(50, 0)
	ok := false
	a.Write(addr, func() {
		b.Write(addr, func() { ok = true })
	})
	r.run()
	if !ok {
		t.Fatal("second writer never completed")
	}
	if a.StateOf(addr) != Invalid || b.StateOf(addr) != Modified {
		t.Fatalf("a=%v b=%v, want I/M", a.StateOf(addr), b.StateOf(addr))
	}
}

func TestConcurrentWritersSerialize(t *testing.T) {
	r := newRig(t, false, 3, 4)
	a, b := r.agents[3], r.agents[4]
	addr := r.addrHomedAt(60, 0)
	doneA, doneB := false, false
	a.Write(addr, func() { doneA = true })
	b.Write(addr, func() { doneB = true })
	r.run()
	if !doneA || !doneB {
		t.Fatalf("blocked home lost a request: a=%v b=%v", doneA, doneB)
	}
	am, bm := a.StateOf(addr) == Modified, b.StateOf(addr) == Modified
	if am == bm {
		t.Fatalf("exactly one must end as owner: a=%v b=%v", a.StateOf(addr), b.StateOf(addr))
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, false, 0)
	a := r.agents[0]
	// Fill one L1 set with dirty blocks until eviction.
	setSpan := uint64(r.cfg.L1SizeBytes / r.cfg.L1Ways) // bytes between same-set blocks
	base := r.addrHomedAt(7, 0)
	writes := r.cfg.L1Ways + 1
	var issue func(i int)
	issue = func(i int) {
		if i >= writes {
			return
		}
		a.Write(base+uint64(i)*setSpan, func() { issue(i + 1) })
	}
	issue(0)
	r.run()
	if a.Writebacks == 0 {
		t.Fatal("no writeback despite dirty eviction")
	}
	if a.StateOf(base) != Invalid {
		t.Fatalf("victim still valid: %v", a.StateOf(base))
	}
	// The evicted dirty block is recoverable by another read.
	r2ok := false
	a.Read(base, func() { r2ok = true })
	r.run()
	if !r2ok {
		t.Fatal("re-read of evicted block failed")
	}
}

func TestNIReadRecallsDirtyData(t *testing.T) {
	r := newRig(t, false, 0)
	a := r.agents[0]
	home := noc.NodeID(22)
	addr := r.addrHomedAt(home, 0)
	// Register an NI endpoint that issues an NIRead.
	niID := noc.NIID(3)
	got := false
	r.net.Register(niID, func(m *noc.Message) {
		if m.Kind == KNIReadResp && m.Addr == addr {
			got = true
		}
	})
	a.Write(addr, func() {
		rd := &noc.Message{VN: noc.VNReq, Class: noc.ClassRequest, Src: niID, Dst: home, Flits: 1, Kind: KNIRead, Addr: addr, Txn: 7}
		if !r.net.Send(rd) {
			t.Error("NIRead injection failed")
		}
	})
	r.run()
	if !got {
		t.Fatal("NIReadResp never arrived")
	}
	if a.StateOf(addr) != Shared {
		t.Fatalf("owner not downgraded by NIRead recall: %v", a.StateOf(addr))
	}
	if !r.homes[home].llc.Contains(addr) {
		t.Fatal("recalled data not in LLC")
	}
}

func TestNIWriteInvalidatesOwner(t *testing.T) {
	r := newRig(t, false, 0)
	a := r.agents[0]
	home := noc.NodeID(45)
	addr := r.addrHomedAt(home, 0)
	niID := noc.NIID(5)
	acked := false
	r.net.Register(niID, func(m *noc.Message) {
		if m.Kind == KNIWriteAck && m.Addr == addr {
			acked = true
		}
	})
	a.Write(addr, func() {
		wr := &noc.Message{VN: noc.VNReq, Class: noc.ClassRequest, Src: niID, Dst: home, Flits: r.cfg.BlockFlits(), Kind: KNIWrite, Addr: addr, Txn: 9}
		if !r.net.Send(wr) {
			t.Error("NIWrite injection failed")
		}
	})
	r.run()
	if !acked {
		t.Fatal("NIWriteAck never arrived")
	}
	if a.StateOf(addr) != Invalid {
		t.Fatalf("owner survived NIWrite: %v", a.StateOf(addr))
	}
	if !r.homes[home].llc.Contains(addr) {
		t.Fatal("NIWrite data not allocated in LLC")
	}
}

// --- Tile cache complex (per-tile/split designs) ---

func TestComplexInternalTransferAvoidsDirectory(t *testing.T) {
	r := newRig(t, true, 0)
	a := r.agents[0]
	addr := r.addrHomedAt(33, 0)
	var coreWrite, niReadDone int64
	missesAfterFill := int64(-1)
	a.Write(addr, func() { // core builds a WQ entry
		coreWrite = r.eng.Now()
		missesAfterFill = a.Misses
		a.NISideRead(addr, func() { niReadDone = r.eng.Now() }) // NI polls it
	})
	r.run()
	if niReadDone == 0 {
		t.Fatal("NI-side read never completed")
	}
	if a.Misses != missesAfterFill {
		t.Fatal("NI-side read of an L1-resident block consulted the directory")
	}
	lat := niReadDone - coreWrite
	if lat != int64(r.cfg.NITransferLat)+1 {
		t.Fatalf("internal transfer latency = %d, want %d", lat, r.cfg.NITransferLat+1)
	}
	if a.InternalTransfers == 0 {
		t.Fatal("internal transfer not counted")
	}
}

func TestComplexOwnedState(t *testing.T) {
	r := newRig(t, true, 0)
	a := r.agents[0]
	addr := r.addrHomedAt(18, 0)
	done := false
	a.NISideWrite(addr, func() { // NI writes a CQ entry (NI side dirty)
		a.Read(addr, func() { done = true }) // core polls the CQ
	})
	r.run()
	if !done {
		t.Fatal("core read never completed")
	}
	if !a.NIOwned(addr) {
		t.Fatal("NI side must hold the block in Owned state after forwarding a clean copy")
	}
	if a.StateOf(addr) != Modified {
		t.Fatalf("complex must remain externally Modified, got %v", a.StateOf(addr))
	}
}

func TestComplexOwnedExternalReadGetsFreshData(t *testing.T) {
	r := newRig(t, true, 0, 7)
	a, b := r.agents[0], r.agents[7]
	addr := r.addrHomedAt(9, 0)
	ok := false
	a.NISideWrite(addr, func() {
		a.Read(addr, func() { // NI now Owned
			b.Read(addr, func() { ok = true })
		})
	})
	r.run()
	if !ok {
		t.Fatal("external reader starved")
	}
	if a.StateOf(addr) != Shared || b.StateOf(addr) != Shared {
		t.Fatalf("a=%v b=%v want S/S", a.StateOf(addr), b.StateOf(addr))
	}
	if a.NIOwned(addr) {
		t.Fatal("Owned must clear on external downgrade")
	}
}

func TestComplexCoreWriteSupersedesOwned(t *testing.T) {
	r := newRig(t, true, 0)
	a := r.agents[0]
	addr := r.addrHomedAt(3, 0)
	done := false
	a.NISideWrite(addr, func() {
		a.Read(addr, func() {
			a.Write(addr, func() { done = true })
		})
	})
	r.run()
	if !done {
		t.Fatal("write never completed")
	}
	if a.NIOwned(addr) {
		t.Fatal("core write must clear the NI Owned state")
	}
	if a.StateOf(addr) != Modified {
		t.Fatalf("state=%v want M", a.StateOf(addr))
	}
}

// Property test: random interleavings of reads/writes from three agents on a
// small block set always quiesce with the single-writer invariant intact.
func TestPropertySingleWriterInvariant(t *testing.T) {
	type op struct {
		agent byte
		addr  byte
		write bool
	}
	f := func(raw []byte) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		r := newRig(t, false, 0, 20, 41)
		ids := []noc.NodeID{0, 20, 41}
		var ops []op
		for i := 0; i+2 < len(raw); i += 3 {
			ops = append(ops, op{agent: raw[i] % 3, addr: raw[i+1] % 4, write: raw[i+2]%2 == 0})
		}
		for _, o := range ops {
			ag := r.agents[ids[o.agent]]
			addr := r.addrHomedAt(noc.NodeID(11+int(o.addr)), 0)
			if o.write {
				ag.Write(addr, func() {})
			} else {
				ag.Read(addr, func() {})
			}
		}
		r.run()
		// Invariants at quiescence.
		for b := 0; b < 4; b++ {
			addr := r.addrHomedAt(noc.NodeID(11+b), 0)
			owners, sharers := 0, 0
			for _, id := range ids {
				switch r.agents[id].StateOf(addr) {
				case Modified, Exclusive:
					owners++
				case Shared:
					sharers++
				}
			}
			if owners > 1 || (owners == 1 && sharers > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The NIedge ping-pong of Fig. 2: a standalone NI cache polling a WQ block
// and a core writing it must both make progress, with each write costing a
// full coherence round trip.
func TestEdgePingPong(t *testing.T) {
	r := newRig(t, false, 0)
	core := r.agents[0]
	cfg := r.cfg
	homeOf := func(addr uint64) noc.NodeID {
		return noc.NodeID((addr / uint64(cfg.BlockBytes)) % uint64(cfg.Tiles()))
	}
	ni := NewAgent(r.eng, r.net, &r.cfg, noc.NIID(0), r.cfg.NICacheBlocks*r.cfg.BlockBytes, 4, 2, homeOf)
	r.net.Register(noc.NIID(0), ni.Handle)
	addr := r.addrHomedAt(35, 0)

	writes, polls := 0, 0
	stop := false
	var coreWrite func()
	var poll func()
	coreWrite = func() {
		if writes >= 4 {
			// Let the NI observe the final write, then stop polling.
			r.eng.Schedule(500, func() { stop = true })
			return
		}
		// Space writes out so the NI re-acquires the block in between —
		// the steady-state WQ interaction of Fig. 2.
		core.Write(addr, func() { writes++; r.eng.Schedule(300, coreWrite) })
	}
	poll = func() {
		if stop {
			return
		}
		ni.NISideRead(addr, func() { polls++; r.eng.Schedule(1, poll) })
	}
	coreWrite()
	poll()
	r.run()
	if writes != 4 {
		t.Fatalf("core starved: %d writes", writes)
	}
	if polls < 50 {
		t.Fatalf("NI starved: %d polls", polls)
	}
	if ni.Misses < 2 {
		t.Fatalf("polling never missed (%d) — the invalidation ping-pong is not happening", ni.Misses)
	}
}
