package coherence

// DebugBusyBlocks returns the blocks whose home transaction is in flight
// (test diagnostics).
func (h *Home) DebugBusyBlocks() map[uint64]int {
	out := map[uint64]int{}
	for a, e := range h.dir {
		if e.busy {
			out[a] = len(e.queue)
		}
	}
	return out
}

// DebugMemWait returns blocks with outstanding memory fetches.
func (h *Home) DebugMemWait() []uint64 {
	var out []uint64
	for a, e := range h.dir {
		if e.mem != memNone {
			out = append(out, a)
		}
	}
	return out
}

// DebugMSHR returns the agent's outstanding miss addresses.
func (a *Agent) DebugMSHR() []uint64 {
	var out []uint64
	for addr := range a.mshr {
		out = append(out, addr)
	}
	return out
}
