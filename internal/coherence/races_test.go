package coherence

import (
	"testing"

	"rackni/internal/noc"
)

// TestFwdGetSRacesEviction: agent A holds a block Modified far from the
// home; its dirty eviction (PutM) is in flight when a near-home reader's
// GetS is processed first. The home forwards to A, which must serve the
// data from its writeback buffer; the stale PutM that arrives later must
// be dropped without corrupting directory state.
func TestFwdGetSRacesEviction(t *testing.T) {
	r := newRig(t, false, 63, 1)
	a, b := r.agents[63], r.agents[1] // A far from home tile 0's region, B adjacent
	addr := r.addrHomedAt(0, 0)
	ok := false
	a.Write(addr, func() {
		// Evict the dirty block (PutM leaves tile 63 toward home 0: a
		// long diagonal) and immediately read from B (tile 1: adjacent to
		// the home). B's GetS wins the race to the home.
		a.protocolEvict(addr)
		b.Read(addr, func() { ok = true })
	})
	r.run()
	if !ok {
		t.Fatal("reader starved during eviction race")
	}
	if st := b.StateOf(addr); st != Shared && st != Exclusive {
		t.Fatalf("reader state %v", st)
	}
	if len(a.evicting) != 0 {
		t.Fatal("writeback buffer never drained (WBAck lost)")
	}
	// The system must still be usable for this block afterwards.
	ok2 := false
	b.Write(addr, func() { ok2 = true })
	r.run()
	if !ok2 || b.StateOf(addr) != Modified {
		t.Fatal("post-race upgrade failed")
	}
}

// TestFwdGetXRacesEviction: same race, but the competitor wants exclusive
// ownership; A must hand over data from the writeback buffer and the home
// must treat A's stale PutM as superseded (the new owner's copy is newer).
func TestFwdGetXRacesEviction(t *testing.T) {
	r := newRig(t, false, 63, 1)
	a, b := r.agents[63], r.agents[1]
	addr := r.addrHomedAt(0, 1)
	ok := false
	a.Write(addr, func() {
		a.protocolEvict(addr)
		b.Write(addr, func() { ok = true })
	})
	r.run()
	if !ok {
		t.Fatal("writer starved during eviction race")
	}
	if b.StateOf(addr) != Modified {
		t.Fatalf("writer state %v, want M", b.StateOf(addr))
	}
	if len(a.evicting) != 0 {
		t.Fatal("writeback buffer never drained")
	}
}

// TestStaleInvAfterSilentEviction: shared copies may be dropped silently
// (inexact directory); a later invalidation to the non-holder must still
// be acked so the writer can collect its full ack count.
func TestStaleInvAfterSilentEviction(t *testing.T) {
	r := newRig(t, false, 2, 3, 4)
	a, b, c := r.agents[2], r.agents[3], r.agents[4]
	addr := r.addrHomedAt(20, 0)
	done := false
	a.Read(addr, func() {
		b.Read(addr, func() {
			// A silently drops its shared copy (capacity eviction).
			a.invalidateLocal(addr)
			// C's write must still complete: the directory invalidates
			// both listed sharers; A acks despite not holding the block.
			c.Write(addr, func() { done = true })
		})
	})
	r.run()
	if !done {
		t.Fatal("writer hung waiting for a non-holder's ack")
	}
	if c.StateOf(addr) != Modified || b.StateOf(addr) != Invalid {
		t.Fatalf("c=%v b=%v", c.StateOf(addr), b.StateOf(addr))
	}
}

// TestUpgradeLosesRace: two sharers race to upgrade; the blocking home
// serializes them, the loser's copy is invalidated mid-flight and it must
// still obtain fresh data through the forward path.
func TestUpgradeLosesRace(t *testing.T) {
	r := newRig(t, false, 10, 50)
	a, b := r.agents[10], r.agents[50]
	addr := r.addrHomedAt(30, 0)
	doneA, doneB := false, false
	a.Read(addr, func() {
		b.Read(addr, func() {
			// Both upgrade simultaneously.
			a.Write(addr, func() { doneA = true })
			b.Write(addr, func() { doneB = true })
		})
	})
	r.run()
	if !doneA || !doneB {
		t.Fatalf("upgrade race lost a writer: a=%v b=%v", doneA, doneB)
	}
	am, bm := a.StateOf(addr) == Modified, b.StateOf(addr) == Modified
	if am == bm {
		t.Fatalf("exactly one final owner required: a=%v b=%v", a.StateOf(addr), b.StateOf(addr))
	}
}

// TestNIWriteRacesOwnerEviction: an NIWrite (RCP landing remote data) hits
// a block whose dirty owner is concurrently evicting; the home-collected
// invalidation must be acked from the stale state and the NIWrite data
// must win.
func TestNIWriteRacesOwnerEviction(t *testing.T) {
	r := newRig(t, false, 63)
	a := r.agents[63]
	home := noc.NodeID(5)
	addr := r.addrHomedAt(home, 0)
	niID := noc.NIID(2)
	acked := false
	r.net.Register(niID, func(m *noc.Message) {
		if m.Kind == KNIWriteAck {
			acked = true
		}
	})
	a.Write(addr, func() {
		a.protocolEvict(addr)
		wr := &noc.Message{VN: noc.VNReq, Class: noc.ClassRequest, Src: niID,
			Dst: home, Flits: r.cfg.BlockFlits(), Kind: KNIWrite, Addr: addr, Txn: 1}
		if !r.net.Send(wr) {
			t.Error("inject failed")
		}
	})
	r.run()
	if !acked {
		t.Fatal("NIWrite never acknowledged")
	}
	if !r.homes[home].llc.Contains(addr) {
		t.Fatal("NIWrite data lost")
	}
}
