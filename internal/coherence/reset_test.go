package coherence

import "testing"

// TestAgentHomeReset: after a reset, agents and homes are cold — no
// cached state, zeroed counters — and the same access sequence replays
// exactly as on a fresh system (the property the node-level Session
// relies on; the full bit-identity torture lives in internal/node).
func TestAgentHomeReset(t *testing.T) {
	r := newRig(t, true, 0, 1)
	a, b := r.agents[0], r.agents[1]
	addr := r.addrHomedAt(30, 0)

	sequence := func() (hits, misses int64) {
		done := 0
		a.Write(addr, func() { done++ })
		r.run()
		b.Read(addr, func() { done++ })
		r.run()
		a.Read(addr, func() { done++ })
		r.run()
		if done != 3 {
			t.Fatalf("sequence completed %d/3 accesses", done)
		}
		return a.Hits + b.Hits, a.Misses + b.Misses
	}
	h1, m1 := sequence()

	r.eng.Reset()
	for _, ag := range []*Agent{a, b} {
		ag.Reset()
	}
	for _, h := range r.homes {
		h.Reset()
	}
	if a.StateOf(addr) != Invalid || b.StateOf(addr) != Invalid {
		t.Fatal("reset agents still track coherence state")
	}
	if a.Hits != 0 || a.Misses != 0 || a.Writebacks != 0 {
		t.Fatal("reset agent reports nonzero counters")
	}
	for _, h := range r.homes {
		if h.Hits != 0 || h.MissesToMem != 0 || h.NIReads != 0 {
			t.Fatal("reset home reports nonzero counters")
		}
		if len(h.DebugBusyBlocks()) != 0 || len(h.DebugMemWait()) != 0 {
			t.Fatal("reset home still has transactions in flight")
		}
	}

	h2, m2 := sequence()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("replayed sequence differs after reset: hits %d vs %d, misses %d vs %d", h1, h2, m1, m2)
	}
}
