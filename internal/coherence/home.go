package coherence

import (
	"fmt"
	"slices"

	"rackni/internal/cache"
	"rackni/internal/config"
	"rackni/internal/mem"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// dirState is the directory's view of a block.
type dirState uint8

const (
	dirInvalid dirState = iota // no cached copies tracked
	dirShared                  // read-only copies at sharers
	dirOwned                   // exclusive/modified at owner
)

// txnKind names the completion step of a block's active transaction. The
// home is a blocking directory — one transaction per block — so the
// continuation that used to be a per-transaction closure is instead a
// kind tag plus a few context fields stored in the entry itself, and
// completion dispatches statically. On the cluster hot path (every remote
// block is an NI read or write here) this removes two closure allocations
// per block transfer.
type txnKind uint8

const (
	txnNone        txnKind = iota
	txnGetSOwned           // CopyBack + Unblock collected: owner and requestor share
	txnGetSData            // Unblock collected: grant recorded at the requestor
	txnGetXFwd             // Unblock collected: ownership moved to the requestor
	txnGetXData            // Unblock collected: requestor owns (sharers invalidated)
	txnNIReadOwned         // recall CopyBack collected: reply to the NI
	txnNIWrite             // invalidation acks collected: absorb the NI write
)

// memPhase names what the active transaction does once its block's data
// arrives from memory (the continuation that used to be a closure in the
// per-address wait list).
type memPhase uint8

const (
	memNone   memPhase = iota
	memGetS            // grant and send Data, then await the Unblock
	memGetX            // send MissNotify Data, then await the Unblock
	memNIRead          // reply to the NI
)

// dirEntry is the directory record plus the blocking-home transaction
// context for one block. Sharers live in a small slice (every fan-out
// sorts before sending, so set order is never observable); the active
// transaction's continuation is the kind/mem tags plus the context fields
// below, not a closure.
type dirEntry struct {
	state   dirState
	owner   noc.NodeID
	sharers []noc.NodeID

	busy    bool
	queue   []*noc.Message
	pending int // completion events still expected (Unblock, CopyBack, acks…)

	kind  txnKind
	mem   memPhase
	req   noc.NodeID // requestor of the active transaction
	txn   uint64     // NI transaction id (doNIRead/doNIWrite)
	grant State      // grant recorded for txnGetSData
	aux   noc.NodeID // previous owner (txnGetSOwned, txnNIReadOwned)
	acks  int64      // invalidation-ack count for the memGetX MissNotify
}

// addSharer records a sharer if not already present.
func (e *dirEntry) addSharer(id noc.NodeID) {
	for _, s := range e.sharers {
		if s == id {
			return
		}
	}
	e.sharers = append(e.sharers, id)
}

// dropSharer removes a sharer if present.
func (e *dirEntry) dropSharer(id noc.NodeID) {
	for i, s := range e.sharers {
		if s == id {
			e.sharers[i] = e.sharers[len(e.sharers)-1]
			e.sharers = e.sharers[:len(e.sharers)-1]
			return
		}
	}
}

// Home is one tile's slice of the shared NUCA LLC together with its slice
// of the distributed directory. It is the "home tile" for the blocks that
// interleave to it, services the NI data path (KNIRead/KNIWrite, which
// bypass the NI caches, §3.1), and talks to its row's memory controller on
// misses. The bank is pipelined: one access may start per cycle and each
// takes cfg.LLCLatency cycles.
type Home struct {
	eng *sim.Engine
	net noc.Fabric
	cfg *config.Config
	id  noc.NodeID
	mc  noc.NodeID

	llc        *cache.SetAssoc
	dir        map[uint64]*dirEntry
	dirFree    []*dirEntry // recycled idle entries
	bankFree   int64
	targetsBuf []noc.NodeID // scratch for invalidation fan-out
	out        *noc.Outbox

	// Stats.
	Hits, MissesToMem, Writebacks, NIReads, NIWrites int64
}

// NewHome builds the home controller for a tile; bankBytes is this bank's
// share of the LLC. mcID is the controller servicing this tile's misses.
func NewHome(eng *sim.Engine, net noc.Fabric, cfg *config.Config, id, mcID noc.NodeID, bankBytes int) *Home {
	h := &Home{
		eng: eng,
		net: net,
		cfg: cfg,
		id:  id,
		mc:  mcID,
		llc: cache.NewSetAssoc(bankBytes, cfg.LLCWays, cfg.BlockBytes),
		dir: make(map[uint64]*dirEntry),
	}
	h.out = noc.NewOutbox(net, id)
	return h
}

// ID returns the home's NOC endpoint (its tile).
func (h *Home) ID() noc.NodeID { return h.id }

// Reset returns the home to its just-built cold state: LLC bank emptied,
// every directory entry (including in-flight transactions and their
// queued requests) dropped, the bank pipeline idled, counters zeroed and
// the injection port drained. Queued and in-flight messages are abandoned
// — their events are cleared with the engine by the run lifecycle that
// calls this.
func (h *Home) Reset() {
	h.llc.Reset()
	for addr, e := range h.dir {
		for i, q := range e.queue {
			noc.Release(q)
			e.queue[i] = nil
		}
		queue := e.queue[:0]
		sharers := e.sharers[:0]
		*e = dirEntry{sharers: sharers, queue: queue}
		h.dirFree = append(h.dirFree, e)
		delete(h.dir, addr)
	}
	h.bankFree = 0
	h.Hits, h.MissesToMem, h.Writebacks, h.NIReads, h.NIWrites = 0, 0, 0, 0, 0
	h.out.Reset()
}

// Handle dispatches a message addressed to the home side of the tile. The
// node assembly routes tile-addressed traffic between the Home and the
// tile's cache agent by message kind. Admitted requests are released when
// their transaction executes; everything else is consumed here.
func (h *Home) Handle(m *noc.Message) {
	switch m.Kind {
	case KGetS, KGetX, KPutM, KPutE, KNIRead, KNIWrite:
		h.admit(m)
	case KUnblock, KCopyBack, KInvAckHome:
		h.onEvent(m)
		noc.Release(m)
	case mem.KindReadResp:
		h.onMemData(m)
		noc.Release(m)
	default:
		panic(fmt.Sprintf("home %d: unexpected %s", h.id, kindName(m.Kind)))
	}
}

// HomeKind reports whether a message kind is addressed to the home side of
// a tile (directory/LLC) rather than its cache agent.
func HomeKind(k int) bool {
	switch k {
	case KGetS, KGetX, KPutM, KPutE, KNIRead, KNIWrite, KUnblock, KCopyBack, KInvAckHome, mem.KindReadResp:
		return true
	}
	return false
}

func (h *Home) entry(addr uint64) *dirEntry {
	e, ok := h.dir[addr]
	if !ok {
		if n := len(h.dirFree); n > 0 {
			e = h.dirFree[n-1]
			h.dirFree = h.dirFree[:n-1]
		} else {
			e = &dirEntry{}
		}
		h.dir[addr] = e
	}
	return e
}

// reclaim drops a directory entry that carries no information (no tracked
// copies, no transaction) back onto the free list. The uniform
// microbenchmarks touch far more blocks than stay cached, so without this
// the directory map — and the entry count — grows with every block ever
// seen.
func (h *Home) reclaim(addr uint64, e *dirEntry) {
	if e.busy || e.state != dirInvalid || len(e.sharers) != 0 ||
		len(e.queue) != 0 || e.pending != 0 {
		return
	}
	delete(h.dir, addr)
	e.owner = 0
	e.kind, e.mem = txnNone, memNone
	h.dirFree = append(h.dirFree, e)
}

// admit starts a transaction if the block is idle, else queues behind the
// one in flight (blocking home).
func (h *Home) admit(m *noc.Message) {
	e := h.entry(m.Addr)
	if e.busy {
		e.queue = append(e.queue, m)
		return
	}
	e.busy = true
	h.eng.Post(h.bankDelay(), homeExecEv, h, m, 0)
}

// bankDelay models the pipelined LLC bank: one new access may start per
// cycle and each takes LLCLatency cycles; it returns the delay until the
// admitted access completes.
func (h *Home) bankDelay() int64 {
	now := h.eng.Now()
	slot := now
	if h.bankFree > slot {
		slot = h.bankFree
	}
	h.bankFree = slot + 1
	return slot - now + int64(h.cfg.LLCLatency)
}

// homeExecEv runs an admitted request once its bank access completes.
func homeExecEv(a, b any, _ int64) {
	h := a.(*Home)
	m := b.(*noc.Message)
	h.execute(m, h.entry(m.Addr))
}

// conclude ends the current transaction and admits the next queued request
// for the block (or reclaims the entry when it holds no state).
func (h *Home) conclude(addr uint64, e *dirEntry) {
	e.busy = false
	e.pending = 0
	e.kind, e.mem = txnNone, memNone
	if len(e.queue) > 0 {
		next := e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue[len(e.queue)-1] = nil
		e.queue = e.queue[:len(e.queue)-1]
		e.busy = true
		h.eng.Post(h.bankDelay(), homeExecEv, h, next, 0)
		return
	}
	h.reclaim(addr, e)
}

// await arms the completion context: run the kind's completion step after
// n events.
func (h *Home) await(addr uint64, e *dirEntry, n int, kind txnKind) {
	if n <= 0 {
		e.kind = kind
		h.completeTxn(addr, e)
		return
	}
	e.pending = n
	e.kind = kind
}

// onEvent consumes Unblock/CopyBack/InvAck events for the active
// transaction of a block. It looks the entry up without creating one, so a
// stale ack for a reclaimed block does not resurrect it.
func (h *Home) onEvent(m *noc.Message) {
	e, ok := h.dir[m.Addr]
	if m.Kind == KCopyBack {
		// Downgraded dirty data returns to the LLC.
		h.insertLLC(m.Addr, true)
	}
	if !ok || e.kind == txnNone {
		// A stale ack from an abandoned epoch; tolerated.
		return
	}
	e.pending--
	if e.pending == 0 {
		h.completeTxn(m.Addr, e)
	}
}

// completeTxn runs the active transaction's completion step.
func (h *Home) completeTxn(addr uint64, e *dirEntry) {
	switch e.kind {
	case txnGetSOwned:
		e.state = dirShared
		e.sharers = e.sharers[:0]
		e.addSharer(e.aux)
		e.addSharer(e.req)
	case txnGetSData:
		if e.grant == Exclusive {
			e.state = dirOwned
			e.owner = e.req
		} else {
			e.addSharer(e.req)
		}
	case txnGetXFwd:
		e.owner = e.req
	case txnGetXData:
		e.sharers = e.sharers[:0]
		e.state = dirOwned
		e.owner = e.req
	case txnNIReadOwned:
		e.state = dirShared
		e.sharers = e.sharers[:0]
		e.addSharer(e.aux)
		h.sendNIReadResp(addr, e)
	case txnNIWrite:
		e.state = dirInvalid
		e.owner = 0
		e.sharers = e.sharers[:0]
		h.insertLLC(addr, true)
		ack := ctrl(KNIWriteAck, noc.VNDir, noc.ClassDirectory, h.id, e.req, addr)
		ack.Txn = e.txn
		h.send(ack)
	default:
		panic(fmt.Sprintf("home %d: completion without an active transaction for %#x", h.id, addr))
	}
	h.conclude(addr, e)
}

// sendNIReadResp replies to an NI data-path read.
func (h *Home) sendNIReadResp(addr uint64, e *dirEntry) {
	d := dataMsg(KNIReadResp, noc.VNDir, noc.ClassDirectory, h.id, e.req, addr, h.cfg.BlockFlits())
	d.Txn = e.txn
	h.send(d)
}

// execute runs one admitted request against the directory state. Every
// path copies what it needs out of the message up front, so the record is
// released here.
func (h *Home) execute(m *noc.Message, e *dirEntry) {
	switch m.Kind {
	case KGetS:
		h.doGetS(m, e)
	case KGetX:
		h.doGetX(m, e)
	case KPutM, KPutE:
		h.doPut(m, e)
	case KNIRead:
		h.doNIRead(m, e)
	case KNIWrite:
		h.doNIWrite(m, e)
	}
	noc.Release(m)
}

func (h *Home) doGetS(m *noc.Message, e *dirEntry) {
	addr, req := m.Addr, m.Src
	e.req = req
	if e.state == dirOwned {
		// 3-hop: forward to the owner; expect its CopyBack plus the
		// requestor's Unblock.
		owner := e.owner
		fwd := ctrl(KFwdGetS, noc.VNDir, noc.ClassDirectory, h.id, owner, addr)
		fwd.A = int64(req)
		h.send(fwd)
		e.aux = owner
		h.await(addr, e, 2, txnGetSOwned)
		return
	}
	h.withData(addr, e, memGetS)
}

// dataReadyGetS continues a GetS once the block's data is at the bank:
// grant (Exclusive to a sole reader), send the data and await the
// requestor's Unblock.
func (h *Home) dataReadyGetS(addr uint64, e *dirEntry) {
	grant := Shared
	if e.state == dirInvalid {
		grant = Exclusive // MESI: sole reader gets E
	}
	d := dataMsg(KData, noc.VNDir, noc.ClassDirectory, h.id, e.req, addr, h.cfg.BlockFlits())
	d.B = int64(grant)
	h.send(d)
	e.grant = grant
	h.await(addr, e, 1, txnGetSData)
}

func (h *Home) doGetX(m *noc.Message, e *dirEntry) {
	addr, req := m.Addr, m.Src
	e.req = req
	switch e.state {
	case dirOwned:
		owner := e.owner
		if owner == req {
			// The owner lost the copy silently? Not possible for E/M
			// (notifying evictions); treat as a fresh grant for robustness.
			e.state = dirInvalid
			h.doGetX(m, e)
			return
		}
		fwd := ctrl(KFwdGetX, noc.VNDir, noc.ClassDirectory, h.id, owner, addr)
		fwd.A = int64(req)
		h.send(fwd)
		h.await(addr, e, 1, txnGetXFwd)
	case dirShared:
		// Collect and sort the sharers before fanning out: the sharer
		// list's insertion order is workload-dependent, and the
		// invalidation order decides how the messages serialize on the NOC
		// — determinism requires a fixed order.
		targets := h.targetsBuf[:0]
		for _, s := range e.sharers {
			if s != req {
				targets = append(targets, s)
			}
		}
		h.targetsBuf = targets
		slices.Sort(targets)
		for _, s := range targets {
			inv := ctrl(KInv, noc.VNDir, noc.ClassDirectory, h.id, s, addr)
			inv.A = int64(req)
			h.send(inv)
		}
		e.acks = int64(len(targets))
		h.withData(addr, e, memGetX)
	default: // dirInvalid
		e.acks = 0
		h.withData(addr, e, memGetX)
	}
}

// dataReadyGetX continues a GetX once the block's data is at the bank:
// send "MissNotify" — data plus the count of invalidation acks the
// requestor must collect (Fig. 2a) — and await the requestor's Unblock.
func (h *Home) dataReadyGetX(addr uint64, e *dirEntry) {
	d := dataMsg(KData, noc.VNDir, noc.ClassDirectory, h.id, e.req, addr, h.cfg.BlockFlits())
	d.B = int64(Modified)
	d.A = e.acks
	h.send(d)
	h.await(addr, e, 1, txnGetXData)
}

func (h *Home) doPut(m *noc.Message, e *dirEntry) {
	addr, src := m.Addr, m.Src
	switch {
	case e.state == dirOwned && e.owner == src:
		if m.Kind == KPutM {
			h.insertLLC(addr, true)
		}
		e.state = dirInvalid
		e.owner = 0
	case e.state == dirShared:
		e.dropSharer(src)
		if len(e.sharers) == 0 {
			e.state = dirInvalid
		}
	default:
		// Stale writeback racing a forward that already moved ownership;
		// drop the data (the new owner's copy is newer).
	}
	h.send(ctrl(KWBAck, noc.VNDir, noc.ClassDirectory, h.id, src, addr))
	h.conclude(addr, e)
}

func (h *Home) doNIRead(m *noc.Message, e *dirEntry) {
	h.NIReads++
	addr := m.Addr
	e.req, e.txn = m.Src, m.Txn
	if e.state == dirOwned {
		// Recall the dirty block first so the NI reads fresh data.
		owner := e.owner
		fwd := ctrl(KFwdGetS, noc.VNDir, noc.ClassDirectory, h.id, owner, addr)
		fwd.A = int64(h.id) // the copy comes back to us via CopyBack
		h.send(fwd)
		e.aux = owner
		h.await(addr, e, 1, txnNIReadOwned)
		return
	}
	h.withData(addr, e, memNIRead)
}

func (h *Home) doNIWrite(m *noc.Message, e *dirEntry) {
	h.NIWrites++
	addr := m.Addr
	e.req, e.txn = m.Src, m.Txn
	// Invalidate all cached copies; the NI overwrites the whole block, so
	// dirty owner data need not be recalled. The fan-out list lives in a
	// per-home scratch buffer.
	targets := h.targetsBuf[:0]
	if e.state == dirOwned {
		targets = append(targets, e.owner)
	} else {
		targets = append(targets, e.sharers...)
		// Fixed fan-out order: the sharer list's insertion order is
		// workload-dependent and the invalidation order is NOC-visible.
		slices.Sort(targets)
	}
	h.targetsBuf = targets
	for _, t := range targets {
		inv := ctrl(KInv, noc.VNDir, noc.ClassDirectory, h.id, t, addr)
		inv.A = int64(h.id) // acks come back to the home
		inv.B = KInvAckHome
		h.send(inv)
	}
	h.await(addr, e, len(targets), txnNIWrite)
}

// withData continues the active transaction (per phase) once the block's
// data is available at this bank, fetching it from memory on an LLC miss.
// The home is a blocking directory — one transaction per block — so at
// most one fetch per block is ever outstanding and the waiting
// continuation is the entry's mem tag, not a queued closure.
func (h *Home) withData(addr uint64, e *dirEntry, phase memPhase) {
	if h.llc.Contains(addr) {
		h.Hits++
		h.llc.Touch(addr)
		h.dataReady(addr, e, phase)
		return
	}
	h.MissesToMem++
	e.mem = phase
	rd := ctrl(mem.KindRead, noc.VNReq, noc.ClassRequest, h.id, h.mc, addr)
	h.send(rd)
}

// dataReady dispatches the phase's continuation.
func (h *Home) dataReady(addr uint64, e *dirEntry, phase memPhase) {
	switch phase {
	case memGetS:
		h.dataReadyGetS(addr, e)
	case memGetX:
		h.dataReadyGetX(addr, e)
	case memNIRead:
		h.sendNIReadResp(addr, e)
		h.conclude(addr, e)
	}
}

// onMemData completes the outstanding fetch for a block.
func (h *Home) onMemData(m *noc.Message) {
	h.insertLLC(m.Addr, false)
	e, ok := h.dir[m.Addr]
	if !ok || e.mem == memNone {
		// Data for an epoch the active transaction no longer waits on;
		// the LLC insert above is all it is good for.
		return
	}
	phase := e.mem
	e.mem = memNone
	h.dataReady(m.Addr, e, phase)
}

// insertLLC allocates the block in the bank, writing back any dirty victim
// to memory (latency-only: fire and forget).
func (h *Home) insertLLC(addr uint64, dirty bool) {
	victim, ev := h.llc.Insert(addr, dirty)
	if ev && victim.Dirty {
		h.Writebacks++
		wb := dataMsg(mem.KindWrite, noc.VNReq, noc.ClassRequest, h.id, h.mc, victim.Addr, h.cfg.BlockFlits())
		h.send(wb)
	}
}

func (h *Home) send(m *noc.Message) {
	h.out.Send(m)
}
