package coherence

import (
	"fmt"
	"slices"

	"rackni/internal/cache"
	"rackni/internal/config"
	"rackni/internal/mem"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// dirState is the directory's view of a block.
type dirState uint8

const (
	dirInvalid dirState = iota // no cached copies tracked
	dirShared                  // read-only copies at sharers
	dirOwned                   // exclusive/modified at owner
)

// dirEntry is the directory record plus the blocking-home transaction
// context for one block.
type dirEntry struct {
	state   dirState
	owner   noc.NodeID
	sharers map[noc.NodeID]struct{}

	busy    bool
	queue   []*noc.Message
	pending int    // completion events still expected (Unblock, CopyBack, acks…)
	onEvent func() // runs on each completion event while busy
}

// Home is one tile's slice of the shared NUCA LLC together with its slice
// of the distributed directory. It is the "home tile" for the blocks that
// interleave to it, services the NI data path (KNIRead/KNIWrite, which
// bypass the NI caches, §3.1), and talks to its row's memory controller on
// misses. The bank is pipelined: one access may start per cycle and each
// takes cfg.LLCLatency cycles.
type Home struct {
	eng *sim.Engine
	net noc.Fabric
	cfg *config.Config
	id  noc.NodeID
	mc  noc.NodeID

	llc        *cache.SetAssoc
	dir        map[uint64]*dirEntry
	dirFree    []*dirEntry // recycled idle entries
	bankFree   int64
	memWait    map[uint64][]func() // block -> continuations awaiting DRAM
	waitFree   [][]func()          // recycled memWait lists
	targetsBuf []noc.NodeID        // scratch for invalidation fan-out
	out        *noc.Outbox

	// Stats.
	Hits, MissesToMem, Writebacks, NIReads, NIWrites int64
}

// NewHome builds the home controller for a tile; bankBytes is this bank's
// share of the LLC. mcID is the controller servicing this tile's misses.
func NewHome(eng *sim.Engine, net noc.Fabric, cfg *config.Config, id, mcID noc.NodeID, bankBytes int) *Home {
	h := &Home{
		eng:     eng,
		net:     net,
		cfg:     cfg,
		id:      id,
		mc:      mcID,
		llc:     cache.NewSetAssoc(bankBytes, cfg.LLCWays, cfg.BlockBytes),
		dir:     make(map[uint64]*dirEntry),
		memWait: make(map[uint64][]func()),
	}
	h.out = noc.NewOutbox(net, id)
	return h
}

// ID returns the home's NOC endpoint (its tile).
func (h *Home) ID() noc.NodeID { return h.id }

// Handle dispatches a message addressed to the home side of the tile. The
// node assembly routes tile-addressed traffic between the Home and the
// tile's cache agent by message kind. Admitted requests are released when
// their transaction executes; everything else is consumed here.
func (h *Home) Handle(m *noc.Message) {
	switch m.Kind {
	case KGetS, KGetX, KPutM, KPutE, KNIRead, KNIWrite:
		h.admit(m)
	case KUnblock, KCopyBack, KInvAckHome:
		h.onEvent(m)
		noc.Release(m)
	case mem.KindReadResp:
		h.onMemData(m)
		noc.Release(m)
	default:
		panic(fmt.Sprintf("home %d: unexpected %s", h.id, kindName(m.Kind)))
	}
}

// HomeKind reports whether a message kind is addressed to the home side of
// a tile (directory/LLC) rather than its cache agent.
func HomeKind(k int) bool {
	switch k {
	case KGetS, KGetX, KPutM, KPutE, KNIRead, KNIWrite, KUnblock, KCopyBack, KInvAckHome, mem.KindReadResp:
		return true
	}
	return false
}

func (h *Home) entry(addr uint64) *dirEntry {
	e, ok := h.dir[addr]
	if !ok {
		if n := len(h.dirFree); n > 0 {
			e = h.dirFree[n-1]
			h.dirFree = h.dirFree[:n-1]
		} else {
			e = &dirEntry{sharers: make(map[noc.NodeID]struct{})}
		}
		h.dir[addr] = e
	}
	return e
}

// reclaim drops a directory entry that carries no information (no tracked
// copies, no transaction) back onto the free list. The uniform
// microbenchmarks touch far more blocks than stay cached, so without this
// the directory map — and the entry count — grows with every block ever
// seen.
func (h *Home) reclaim(addr uint64, e *dirEntry) {
	if e.busy || e.state != dirInvalid || len(e.sharers) != 0 ||
		len(e.queue) != 0 || e.pending != 0 {
		return
	}
	delete(h.dir, addr)
	e.onEvent = nil
	e.owner = 0
	h.dirFree = append(h.dirFree, e)
}

// admit starts a transaction if the block is idle, else queues behind the
// one in flight (blocking home).
func (h *Home) admit(m *noc.Message) {
	e := h.entry(m.Addr)
	if e.busy {
		e.queue = append(e.queue, m)
		return
	}
	e.busy = true
	h.eng.Post(h.bankDelay(), homeExecEv, h, m, 0)
}

// bankDelay models the pipelined LLC bank: one new access may start per
// cycle and each takes LLCLatency cycles; it returns the delay until the
// admitted access completes.
func (h *Home) bankDelay() int64 {
	now := h.eng.Now()
	slot := now
	if h.bankFree > slot {
		slot = h.bankFree
	}
	h.bankFree = slot + 1
	return slot - now + int64(h.cfg.LLCLatency)
}

// homeExecEv runs an admitted request once its bank access completes.
func homeExecEv(a, b any, _ int64) {
	h := a.(*Home)
	m := b.(*noc.Message)
	h.execute(m, h.entry(m.Addr))
}

// conclude ends the current transaction and admits the next queued request
// for the block (or reclaims the entry when it holds no state).
func (h *Home) conclude(addr uint64, e *dirEntry) {
	e.busy = false
	e.pending = 0
	e.onEvent = nil
	if len(e.queue) > 0 {
		next := e.queue[0]
		copy(e.queue, e.queue[1:])
		e.queue[len(e.queue)-1] = nil
		e.queue = e.queue[:len(e.queue)-1]
		e.busy = true
		h.eng.Post(h.bankDelay(), homeExecEv, h, next, 0)
		return
	}
	h.reclaim(addr, e)
}

// await arms the completion context: fire done after n events.
func (h *Home) await(addr uint64, e *dirEntry, n int, done func()) {
	if n <= 0 {
		done()
		return
	}
	e.pending = n
	e.onEvent = func() {
		e.pending--
		if e.pending == 0 {
			done()
		}
	}
}

// onEvent consumes Unblock/CopyBack/InvAck events for the active
// transaction of a block. It looks the entry up without creating one, so a
// stale ack for a reclaimed block does not resurrect it.
func (h *Home) onEvent(m *noc.Message) {
	e, ok := h.dir[m.Addr]
	if m.Kind == KCopyBack {
		// Downgraded dirty data returns to the LLC.
		h.insertLLC(m.Addr, true)
	}
	if !ok || e.onEvent == nil {
		// A stale ack from an abandoned epoch; tolerated.
		return
	}
	e.onEvent()
}

// execute runs one admitted request against the directory state. Every
// path copies what it needs out of the message up front, so the record is
// released here.
func (h *Home) execute(m *noc.Message, e *dirEntry) {
	switch m.Kind {
	case KGetS:
		h.doGetS(m, e)
	case KGetX:
		h.doGetX(m, e)
	case KPutM, KPutE:
		h.doPut(m, e)
	case KNIRead:
		h.doNIRead(m, e)
	case KNIWrite:
		h.doNIWrite(m, e)
	}
	noc.Release(m)
}

func (h *Home) doGetS(m *noc.Message, e *dirEntry) {
	addr, req := m.Addr, m.Src
	if e.state == dirOwned {
		// 3-hop: forward to the owner; expect its CopyBack plus the
		// requestor's Unblock.
		owner := e.owner
		fwd := ctrl(KFwdGetS, noc.VNDir, noc.ClassDirectory, h.id, owner, addr)
		fwd.A = int64(req)
		h.send(fwd)
		h.await(addr, e, 2, func() {
			e.state = dirShared
			clearSet(e.sharers)
			e.sharers[owner] = struct{}{}
			e.sharers[req] = struct{}{}
			h.conclude(addr, e)
		})
		return
	}
	h.withData(addr, func() {
		grant := Shared
		if e.state == dirInvalid {
			grant = Exclusive // MESI: sole reader gets E
		}
		d := dataMsg(KData, noc.VNDir, noc.ClassDirectory, h.id, req, addr, h.cfg.BlockFlits())
		d.B = int64(grant)
		h.send(d)
		h.await(addr, e, 1, func() { // the requestor's Unblock
			if grant == Exclusive {
				e.state = dirOwned
				e.owner = req
			} else {
				e.sharers[req] = struct{}{}
			}
			h.conclude(addr, e)
		})
	})
}

func (h *Home) doGetX(m *noc.Message, e *dirEntry) {
	addr, req := m.Addr, m.Src
	switch e.state {
	case dirOwned:
		owner := e.owner
		if owner == req {
			// The owner lost the copy silently? Not possible for E/M
			// (notifying evictions); treat as a fresh grant for robustness.
			e.state = dirInvalid
			h.doGetX(m, e)
			return
		}
		fwd := ctrl(KFwdGetX, noc.VNDir, noc.ClassDirectory, h.id, owner, addr)
		fwd.A = int64(req)
		h.send(fwd)
		h.await(addr, e, 1, func() { // requestor's Unblock
			e.owner = req
			h.conclude(addr, e)
		})
	case dirShared:
		// Collect and sort the sharers before fanning out: map iteration
		// order is randomized, and the invalidation order decides how the
		// messages serialize on the NOC — determinism requires a fixed
		// order.
		targets := h.targetsBuf[:0]
		for s := range e.sharers {
			if s != req {
				targets = append(targets, s)
			}
		}
		h.targetsBuf = targets
		slices.Sort(targets)
		acks := len(targets)
		for _, s := range targets {
			inv := ctrl(KInv, noc.VNDir, noc.ClassDirectory, h.id, s, addr)
			inv.A = int64(req)
			h.send(inv)
		}
		h.withData(addr, func() {
			// "MissNotify": data plus the count of invalidation acks the
			// requestor must collect (Fig. 2a).
			d := dataMsg(KData, noc.VNDir, noc.ClassDirectory, h.id, req, addr, h.cfg.BlockFlits())
			d.B = int64(Modified)
			d.A = int64(acks)
			h.send(d)
			h.await(addr, e, 1, func() {
				clearSet(e.sharers)
				e.state = dirOwned
				e.owner = req
				h.conclude(addr, e)
			})
		})
	default: // dirInvalid
		h.withData(addr, func() {
			d := dataMsg(KData, noc.VNDir, noc.ClassDirectory, h.id, req, addr, h.cfg.BlockFlits())
			d.B = int64(Modified)
			h.send(d)
			h.await(addr, e, 1, func() {
				e.state = dirOwned
				e.owner = req
				h.conclude(addr, e)
			})
		})
	}
}

func (h *Home) doPut(m *noc.Message, e *dirEntry) {
	addr, src := m.Addr, m.Src
	switch {
	case e.state == dirOwned && e.owner == src:
		if m.Kind == KPutM {
			h.insertLLC(addr, true)
		}
		e.state = dirInvalid
		e.owner = 0
	case e.state == dirShared:
		delete(e.sharers, src)
		if len(e.sharers) == 0 {
			e.state = dirInvalid
		}
	default:
		// Stale writeback racing a forward that already moved ownership;
		// drop the data (the new owner's copy is newer).
	}
	h.send(ctrl(KWBAck, noc.VNDir, noc.ClassDirectory, h.id, src, addr))
	h.conclude(addr, e)
}

func (h *Home) doNIRead(m *noc.Message, e *dirEntry) {
	h.NIReads++
	addr, req, txn := m.Addr, m.Src, m.Txn
	reply := func() {
		d := dataMsg(KNIReadResp, noc.VNDir, noc.ClassDirectory, h.id, req, addr, h.cfg.BlockFlits())
		d.Txn = txn
		h.send(d)
		h.conclude(addr, e)
	}
	if e.state == dirOwned {
		// Recall the dirty block first so the NI reads fresh data.
		owner := e.owner
		fwd := ctrl(KFwdGetS, noc.VNDir, noc.ClassDirectory, h.id, owner, addr)
		fwd.A = int64(h.id) // the copy comes back to us via CopyBack
		h.send(fwd)
		h.await(addr, e, 1, func() {
			e.state = dirShared
			clearSet(e.sharers)
			e.sharers[owner] = struct{}{}
			reply()
		})
		return
	}
	h.withData(addr, reply)
}

func (h *Home) doNIWrite(m *noc.Message, e *dirEntry) {
	h.NIWrites++
	addr, req, txn := m.Addr, m.Src, m.Txn
	finish := func() {
		e.state = dirInvalid
		e.owner = 0
		clearSet(e.sharers)
		h.insertLLC(addr, true)
		ack := ctrl(KNIWriteAck, noc.VNDir, noc.ClassDirectory, h.id, req, addr)
		ack.Txn = txn
		h.send(ack)
		h.conclude(addr, e)
	}
	// Invalidate all cached copies; the NI overwrites the whole block, so
	// dirty owner data need not be recalled. The fan-out list lives in a
	// per-home scratch buffer (await snapshots its length synchronously).
	targets := h.targetsBuf[:0]
	if e.state == dirOwned {
		targets = append(targets, e.owner)
	} else {
		for s := range e.sharers {
			targets = append(targets, s)
		}
		// Fixed fan-out order: map iteration is randomized and the
		// invalidation order is NOC-visible.
		slices.Sort(targets)
	}
	h.targetsBuf = targets
	for _, t := range targets {
		inv := ctrl(KInv, noc.VNDir, noc.ClassDirectory, h.id, t, addr)
		inv.A = int64(h.id) // acks come back to the home
		inv.B = KInvAckHome
		h.send(inv)
	}
	h.await(addr, e, len(targets), finish)
}

// withData runs fn once the block's data is available at this bank,
// fetching it from memory on an LLC miss.
func (h *Home) withData(addr uint64, fn func()) {
	if h.llc.Contains(addr) {
		h.Hits++
		h.llc.Touch(addr)
		fn()
		return
	}
	h.MissesToMem++
	waiting, inFlight := h.memWait[addr]
	if !inFlight {
		if n := len(h.waitFree); n > 0 {
			waiting = h.waitFree[n-1]
			h.waitFree = h.waitFree[:n-1]
		}
	}
	h.memWait[addr] = append(waiting, fn)
	if inFlight {
		return
	}
	rd := ctrl(mem.KindRead, noc.VNReq, noc.ClassRequest, h.id, h.mc, addr)
	h.send(rd)
}

// onMemData completes outstanding fetches for a block.
func (h *Home) onMemData(m *noc.Message) {
	h.insertLLC(m.Addr, false)
	fns := h.memWait[m.Addr]
	delete(h.memWait, m.Addr)
	for _, fn := range fns {
		fn()
	}
	for i := range fns {
		fns[i] = nil
	}
	h.waitFree = append(h.waitFree, fns[:0])
}

// insertLLC allocates the block in the bank, writing back any dirty victim
// to memory (latency-only: fire and forget).
func (h *Home) insertLLC(addr uint64, dirty bool) {
	victim, ev := h.llc.Insert(addr, dirty)
	if ev && victim.Dirty {
		h.Writebacks++
		wb := dataMsg(mem.KindWrite, noc.VNReq, noc.ClassRequest, h.id, h.mc, victim.Addr, h.cfg.BlockFlits())
		h.send(wb)
	}
}

func (h *Home) send(m *noc.Message) {
	h.out.Send(m)
}

func clearSet(s map[noc.NodeID]struct{}) {
	for k := range s {
		delete(s, k)
	}
}
