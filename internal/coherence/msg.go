// Package coherence implements the chip's cache-coherence protocol: a
// directory-based, non-inclusive, invalidation-based MESI protocol with a
// blocking home per block, 3-hop forwarding for dirty data, and
// requestor-collected invalidation acks — the protocol sketched in Figs. 2a
// and 2b of the paper (including the final acknowledgements that conclude
// each transaction).
//
// Two requestor-side organizations are provided:
//
//   - Agent: a standalone cache (a core's L1, or the NI cache of the NIedge
//     design, which participates in coherence like an L1 with its own tile
//     ID, §3.4).
//   - Agent with an NI side (NewComplex): the per-tile organization of the
//     NIper-tile and NIsplit designs, where a small NI cache snoops the
//     back side of the L1 and the pair appears to the LLC's coherence
//     domain as a single logical entity. Transfers between the two sides
//     never touch the directory, and the NI-cache-only Owned state lets a
//     dirty block be handed to the polling core as a clean copy while the
//     NI retains writeback responsibility.
package coherence

import "rackni/internal/noc"

// Message kinds (range 0..99; the mem package uses 100+, the RMC 200+).
const (
	KGetS       = iota // requestor -> home: read miss
	KGetX              // requestor -> home: write miss / upgrade
	KPutM              // requestor -> home: dirty eviction (data)
	KPutE              // requestor -> home: clean-exclusive eviction notice
	KFwdGetS           // home -> owner: forward read (A = requestor id)
	KFwdGetX           // home -> owner: forward write (A = requestor id)
	KInv               // home -> sharer: invalidate (A = ack target id)
	KData              // data to requestor (A = #acks to expect, B = granted state)
	KInvAck            // sharer -> ack target
	KUnblock           // requestor -> home: transaction concluded (B = installed state)
	KCopyBack          // owner -> home: downgraded dirty data
	KWBAck             // home -> evictor: writeback acknowledged
	KNIRead            // NI -> home: data-path block read (bypasses NI cache, §3.1)
	KNIReadResp        // home -> NI: data
	KNIWrite           // NI -> home: data-path block write (allocates in LLC)
	KNIWriteAck        // home -> NI
	KInvAckHome        // sharer -> home (home-collected acks for NI writes)
)

// State is a cache block's coherence state at a requestor.
type State uint8

const (
	// Invalid: not present.
	Invalid State = iota
	// Shared: read-only copy.
	Shared
	// Exclusive: sole clean copy; may transition to Modified silently.
	Exclusive
	// Modified: sole dirty copy.
	Modified
	// Owned is the NI-cache-visible state of §3.4: the NI side holds dirty
	// data whose clean copy has been forwarded to the core's L1. It never
	// appears on the interconnect; the complex is externally Modified.
	Owned
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Owned:
		return "O"
	}
	return "?"
}

// kindName helps protocol traces and test failures read well.
func kindName(k int) string {
	names := []string{"GetS", "GetX", "PutM", "PutE", "FwdGetS", "FwdGetX",
		"Inv", "Data", "InvAck", "Unblock", "CopyBack", "WBAck",
		"NIRead", "NIReadResp", "NIWrite", "NIWriteAck", "InvAckHome"}
	if k >= 0 && k < len(names) {
		return names[k]
	}
	return "?"
}

// ctrl builds a one-flit control message (pooled; the receiving component
// releases it when processing completes).
func ctrl(kind int, vn noc.VN, class noc.Class, src, dst noc.NodeID, addr uint64) *noc.Message {
	m := noc.NewMessage()
	m.VN, m.Class, m.Src, m.Dst, m.Flits, m.Kind, m.Addr = vn, class, src, dst, 1, kind, addr
	return m
}

// dataMsg builds a block-carrying message (pooled).
func dataMsg(kind int, vn noc.VN, class noc.Class, src, dst noc.NodeID, addr uint64, flits int) *noc.Message {
	m := noc.NewMessage()
	m.VN, m.Class, m.Src, m.Dst, m.Flits, m.Kind, m.Addr = vn, class, src, dst, flits, kind, addr
	return m
}
