package coherence

import (
	"fmt"

	"rackni/internal/cache"
	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// Side identifies which physical structure of a tile's cache complex an
// access targets.
type Side uint8

const (
	// SideCore is the core's L1 data cache.
	SideCore Side = iota
	// SideNI is the NI cache glued to the L1's back side (per-tile/split
	// designs) or the standalone NI cache (edge design).
	SideNI
)

// pendingAccess is an access parked on an outstanding miss; it re-executes
// once the fill completes. Stored by value so parking allocates nothing
// beyond the waiter list's amortized growth.
type pendingAccess struct {
	addr  uint64
	side  Side
	write bool
	done  func()
}

// miss tracks one outstanding coherence transaction at a requestor. Records
// are recycled through the agent's free list.
type miss struct {
	want     State // Shared (GetS) or Modified (GetX)
	dataGot  bool
	grant    State
	acksNeed int
	acksGot  int
	fillSide Side
	waiters  []pendingAccess
}

// evict tracks a writeback awaiting its WBAck; the data stays available so
// forwarded requests that race with the eviction can be served.
type evict struct {
	state State
}

// Agent is one coherence requestor: an L1 cache, a standalone NI cache
// (NIedge), or — when built with NewComplex — a per-tile L1+NI cache
// complex that appears as a single logical entity to the directory.
type Agent struct {
	eng *sim.Engine
	net noc.Fabric
	cfg *config.Config
	id  noc.NodeID

	arr      *cache.SetAssoc
	state    map[uint64]State
	mshr     map[uint64]*miss
	evicting map[uint64]*evict
	homeOf   func(addr uint64) noc.NodeID
	hitLat   int64 // core-side hit latency
	niHitLat int64 // NI-side hit latency

	// NI side (nil for standalone agents).
	niArr       *cache.SetAssoc
	onCore      map[uint64]bool // block resident in L1 side
	onNI        map[uint64]bool // block resident in NI side
	dirtySide   map[uint64]Side // side holding the authoritative dirty copy
	niOwned     map[uint64]bool // NI side in the Owned state of §3.4
	transferLat int64

	out      *noc.Outbox
	missFree []*miss

	// Stats.
	Hits, Misses, InternalTransfers, Writebacks int64
}

// NewAgent builds a standalone cache agent (an L1 or an edge NI cache).
// sizeBytes/ways give its capacity; hitLat its access latency.
func NewAgent(eng *sim.Engine, net noc.Fabric, cfg *config.Config, id noc.NodeID,
	sizeBytes, ways int, hitLat int64, homeOf func(uint64) noc.NodeID) *Agent {
	a := &Agent{
		eng:      eng,
		net:      net,
		cfg:      cfg,
		id:       id,
		arr:      cache.NewSetAssoc(sizeBytes, ways, cfg.BlockBytes),
		state:    make(map[uint64]State),
		mshr:     make(map[uint64]*miss),
		evicting: make(map[uint64]*evict),
		homeOf:   homeOf,
		hitLat:   hitLat,
		niHitLat: hitLat,
	}
	a.out = noc.NewOutbox(net, id)
	return a
}

// newMiss takes a miss record from the free list (or allocates one).
func (a *Agent) newMiss(side Side) *miss {
	if n := len(a.missFree); n > 0 {
		m := a.missFree[n-1]
		a.missFree = a.missFree[:n-1]
		m.fillSide = side
		return m
	}
	return &miss{fillSide: side}
}

// freeMiss recycles a completed miss record, keeping its waiter buffer.
func (a *Agent) freeMiss(m *miss) {
	w := m.waiters
	for i := range w {
		w[i] = pendingAccess{}
	}
	*m = miss{}
	m.waiters = w[:0]
	a.missFree = append(a.missFree, m)
}

// NewComplex builds the per-tile L1+NI cache complex of the NIper-tile and
// NIsplit designs: one coherence identity, two physical caches, internal
// transfers at cfg.NITransferLat cycles (§3.4).
func NewComplex(eng *sim.Engine, net noc.Fabric, cfg *config.Config, id noc.NodeID,
	homeOf func(uint64) noc.NodeID) *Agent {
	a := NewAgent(eng, net, cfg, id, cfg.L1SizeBytes, cfg.L1Ways, int64(cfg.L1Latency), homeOf)
	a.niArr = cache.NewSetAssoc(cfg.NICacheBlocks*cfg.BlockBytes, 4, cfg.BlockBytes)
	a.onCore = make(map[uint64]bool)
	a.onNI = make(map[uint64]bool)
	a.dirtySide = make(map[uint64]Side)
	a.niOwned = make(map[uint64]bool)
	a.transferLat = int64(cfg.NITransferLat)
	a.niHitLat = 1
	return a
}

// ID returns the agent's NOC endpoint (its coherence identity).
func (a *Agent) ID() noc.NodeID { return a.id }

// Reset returns the agent to its just-built cold state: both physical
// arrays emptied, every coherence state, MSHR entry and writeback record
// dropped, counters zeroed and the injection port drained. The run
// lifecycle resets agents together with their directory (Home.Reset), so
// the protocol's invariants hold vacuously on the empty state; events of
// in-flight transactions are cleared with the engine.
func (a *Agent) Reset() {
	a.arr.Reset()
	clear(a.state)
	for addr, m := range a.mshr {
		a.freeMiss(m)
		delete(a.mshr, addr)
	}
	clear(a.evicting)
	if a.niArr != nil {
		a.niArr.Reset()
		clear(a.onCore)
		clear(a.onNI)
		clear(a.dirtySide)
		clear(a.niOwned)
	}
	a.Hits, a.Misses, a.InternalTransfers, a.Writebacks = 0, 0, 0, 0
	a.out.Reset()
}

// StateOf returns the agent's coherence state for addr (for tests).
func (a *Agent) StateOf(addr uint64) State { return a.state[blockOf(addr, a.cfg)] }

// NIOwned reports whether the NI side holds addr in the Owned state.
func (a *Agent) NIOwned(addr uint64) bool { return a.niOwned[blockOf(addr, a.cfg)] }

func blockOf(addr uint64, cfg *config.Config) uint64 {
	return addr &^ uint64(cfg.BlockBytes-1)
}

// Read performs a coherent read from the core side; done runs when the
// data is available.
func (a *Agent) Read(addr uint64, done func()) { a.access(addr, SideCore, false, done) }

// Write performs a coherent write from the core side.
func (a *Agent) Write(addr uint64, done func()) { a.access(addr, SideCore, true, done) }

// NISideRead performs a coherent read from the NI side (QP polling).
func (a *Agent) NISideRead(addr uint64, done func()) { a.access(addr, SideNI, false, done) }

// NISideWrite performs a coherent write from the NI side (CQ entry write).
func (a *Agent) NISideWrite(addr uint64, done func()) { a.access(addr, SideNI, true, done) }

func (a *Agent) access(addr uint64, side Side, write bool, done func()) {
	addr = blockOf(addr, a.cfg)
	st := a.state[addr]
	lat := a.hitLat
	if side == SideNI {
		lat = a.niHitLat
	}
	if a.niArr == nil {
		side = SideCore // standalone agent: single structure
	}

	switch {
	case st == Modified || st == Exclusive:
		if st == Exclusive && write {
			a.state[addr] = Modified // silent E->M upgrade
		}
		a.local(addr, side, write, lat, done)
		return
	case st == Shared && !write:
		a.local(addr, side, write, lat, done)
		return
	}

	// Miss (or upgrade): join or create the MSHR entry.
	if m, ok := a.mshr[addr]; ok {
		// Re-execute the access after the outstanding fill completes; an
		// upgrade-after-read naturally reissues as GetX.
		m.waiters = append(m.waiters, pendingAccess{addr: addr, side: side, write: write, done: done})
		return
	}
	a.Misses++
	m := a.newMiss(side)
	m.waiters = append(m.waiters, pendingAccess{addr: addr, side: side, write: write, done: done})
	a.mshr[addr] = m
	kind := KGetS
	m.want = Shared
	if write {
		kind = KGetX
		m.want = Modified
	}
	a.send(ctrl(kind, noc.VNReq, noc.ClassRequest, a.id, a.homeOf(addr), addr))
}

// local services a hit, performing any internal L1<->NI transfer the
// complex needs (including the Owned-state fast path).
func (a *Agent) local(addr uint64, side Side, write bool, lat int64, done func()) {
	a.Hits++
	if a.niArr == nil {
		a.arr.Touch(addr)
		if write {
			a.state[addr] = Modified
			a.arr.SetDirty(addr)
		}
		a.eng.Schedule(lat, done)
		return
	}
	here := a.onCore[addr]
	if side == SideNI {
		here = a.onNI[addr]
	}
	if here {
		a.touchSide(addr, side)
		a.finishLocal(addr, side, write, lat, done)
		return
	}
	// Internal back-side transfer between the L1 and the NI cache; the
	// directory is not consulted (§3.4).
	a.InternalTransfers++
	a.eng.Post(a.transferLat, agentTransferEv, a, done, packAccess(addr, side, write))
}

// packAccess packs an access's (addr, side, write) into one event argument;
// simulated addresses stay far below 2^61.
func packAccess(addr uint64, side Side, write bool) int64 {
	i := int64(addr) << 2
	if side == SideNI {
		i |= 2
	}
	if write {
		i |= 1
	}
	return i
}

// agentTransferEv completes an internal L1<->NI transfer.
func agentTransferEv(a, b any, i int64) {
	ag := a.(*Agent)
	addr := uint64(i) >> 2
	side := SideCore
	if i&2 != 0 {
		side = SideNI
	}
	ag.installSide(addr, side)
	ag.finishLocal(addr, side, i&1 != 0, 0, b.(func()))
}

func (a *Agent) finishLocal(addr uint64, side Side, write bool, lat int64, done func()) {
	if write {
		st := a.state[addr]
		if st == Exclusive || st == Shared {
			// Shared handled by caller (upgrade); Exclusive upgrades here.
			a.state[addr] = Modified
		}
		a.dirtySide[addr] = side
		if side == SideCore {
			// A core write to an NI-Owned block supersedes the NI's data.
			delete(a.niOwned, addr)
			if a.onNI[addr] {
				delete(a.onNI, addr)
				a.niArr.Remove(addr)
			}
		} else if a.onCore[addr] {
			// NI write invalidates the core's stale copy (the core will
			// re-fetch it when polling).
			delete(a.onCore, addr)
			a.arr.Remove(addr)
		}
	} else if side == SideCore && a.state[addr] == Modified && a.dirtySide[addr] == SideNI {
		// Owned-state fast path: the NI forwards a clean copy to the L1
		// while retaining writeback responsibility (§3.4).
		a.niOwned[addr] = true
	}
	if lat > 0 {
		a.eng.Schedule(lat, done)
	} else {
		a.eng.Schedule(1, done)
	}
}

func (a *Agent) touchSide(addr uint64, side Side) {
	if side == SideCore {
		a.arr.Touch(addr)
	} else {
		a.niArr.Touch(addr)
	}
}

// installSide makes the block resident on the given physical side, evicting
// that structure's LRU victim (a local drop if the other side still holds
// the block; a protocol eviction otherwise).
func (a *Agent) installSide(addr uint64, side Side) {
	arr, on := a.arr, a.onCore
	if side == SideNI {
		arr, on = a.niArr, a.onNI
	}
	on[addr] = true
	victim, ev := arr.Insert(addr, false)
	if !ev || victim.Addr == addr {
		return
	}
	if side == SideCore {
		delete(a.onCore, victim.Addr)
	} else {
		delete(a.onNI, victim.Addr)
		delete(a.niOwned, victim.Addr)
	}
	if a.onCore[victim.Addr] || a.onNI[victim.Addr] {
		return // still resident on the other side: local drop only
	}
	a.protocolEvict(victim.Addr)
}

// protocolEvict removes the block from the complex and notifies the home
// as the protocol requires.
func (a *Agent) protocolEvict(addr uint64) {
	st := a.state[addr]
	delete(a.state, addr)
	if a.dirtySide != nil {
		delete(a.dirtySide, addr)
	}
	switch st {
	case Modified:
		a.Writebacks++
		a.evicting[addr] = &evict{state: Modified}
		a.send(dataMsg(KPutM, noc.VNReq, noc.ClassRequest, a.id, a.homeOf(addr), addr, a.cfg.BlockFlits()))
	case Exclusive:
		a.evicting[addr] = &evict{state: Exclusive}
		a.send(ctrl(KPutE, noc.VNReq, noc.ClassRequest, a.id, a.homeOf(addr), addr))
	case Shared:
		// Silent drop: the protocol's directory is inexact (non-notifying)
		// and tolerates invalidations to non-holders.
	}
}

// Handle receives coherence traffic addressed to this agent. The agent is
// the message's final consumer and releases it.
func (a *Agent) Handle(m *noc.Message) {
	switch m.Kind {
	case KData:
		a.onData(m)
	case KInvAck:
		a.onInvAck(m)
	case KFwdGetS:
		a.onFwdGetS(m)
	case KFwdGetX:
		a.onFwdGetX(m)
	case KInv:
		a.onInv(m)
	case KWBAck:
		delete(a.evicting, m.Addr)
	default:
		panic(fmt.Sprintf("coherence agent %d: unexpected %s", a.id, kindName(m.Kind)))
	}
	noc.Release(m)
}

func (a *Agent) onData(m *noc.Message) {
	ms, ok := a.mshr[m.Addr]
	if !ok {
		panic(fmt.Sprintf("agent %d: Data for %#x without MSHR", a.id, m.Addr))
	}
	ms.dataGot = true
	ms.grant = State(m.B)
	ms.acksNeed = int(m.A)
	a.maybeComplete(m.Addr, ms)
}

func (a *Agent) onInvAck(m *noc.Message) {
	ms, ok := a.mshr[m.Addr]
	if !ok {
		// Ack for an epoch we already abandoned; tolerated by the inexact
		// directory design.
		return
	}
	ms.acksGot++
	a.maybeComplete(m.Addr, ms)
}

func (a *Agent) maybeComplete(addr uint64, ms *miss) {
	if !ms.dataGot || ms.acksGot < ms.acksNeed {
		return
	}
	delete(a.mshr, addr)
	a.state[addr] = ms.grant
	if a.niArr == nil {
		if victim, ev := a.arr.Insert(addr, ms.grant == Modified); ev && victim.Addr != addr {
			a.protocolEvict(victim.Addr)
		}
	} else {
		if ms.grant == Modified {
			a.dirtySide[addr] = ms.fillSide
		}
		a.installSide(addr, ms.fillSide)
	}
	a.send(withB(ctrl(KUnblock, noc.VNResp, noc.ClassResponse, a.id, a.homeOf(addr), addr), int64(ms.grant)))
	for _, w := range ms.waiters {
		a.access(w.addr, w.side, w.write, w.done)
	}
	a.freeMiss(ms)
}

func (a *Agent) onFwdGetS(m *noc.Message) {
	addr := m.Addr
	req := noc.NodeID(m.A)
	home := m.Src
	st := a.state[addr]
	if st != Modified && st != Exclusive {
		if _, ev := a.evicting[addr]; !ev {
			panic(fmt.Sprintf("agent %d: FwdGetS for %#x in state %v", a.id, addr, st))
		}
		// Serve from the writeback buffer; the in-flight PutM/PutE will be
		// treated as stale by the home.
	} else {
		a.state[addr] = Shared
		a.clearDirty(addr)
	}
	if req != home {
		a.send(withB(dataMsg(KData, noc.VNResp, noc.ClassResponse, a.id, req, addr, a.cfg.BlockFlits()), int64(Shared)))
	}
	a.send(dataMsg(KCopyBack, noc.VNResp, noc.ClassResponse, a.id, home, addr, a.cfg.BlockFlits()))
}

func (a *Agent) onFwdGetX(m *noc.Message) {
	addr := m.Addr
	req := noc.NodeID(m.A)
	st := a.state[addr]
	if st != Modified && st != Exclusive {
		if _, ev := a.evicting[addr]; !ev {
			panic(fmt.Sprintf("agent %d: FwdGetX for %#x in state %v", a.id, addr, st))
		}
	} else {
		a.invalidateLocal(addr)
	}
	a.send(withB(dataMsg(KData, noc.VNResp, noc.ClassResponse, a.id, req, addr, a.cfg.BlockFlits()), int64(Modified)))
}

func (a *Agent) onInv(m *noc.Message) {
	addr := m.Addr
	ackTo := noc.NodeID(m.A)
	if st := a.state[addr]; st != Invalid {
		a.invalidateLocal(addr)
	}
	// A stale invalidation (silently dropped copy, or an upgrade race where
	// our own GetX is queued behind the invalidating writer) is acked too.
	ackKind := KInvAck
	if m.B != 0 {
		ackKind = int(m.B) // e.g. KInvAckHome for home-collected acks
	}
	a.send(ctrl(ackKind, noc.VNResp, noc.ClassResponse, a.id, ackTo, addr))
}

func (a *Agent) invalidateLocal(addr uint64) {
	delete(a.state, addr)
	a.arr.Remove(addr)
	if a.niArr != nil {
		a.niArr.Remove(addr)
		delete(a.onCore, addr)
		delete(a.onNI, addr)
		delete(a.dirtySide, addr)
		delete(a.niOwned, addr)
	}
}

func (a *Agent) clearDirty(addr uint64) {
	a.arr.Touch(addr)
	if a.niArr != nil {
		delete(a.dirtySide, addr)
		delete(a.niOwned, addr)
	}
}

func (a *Agent) send(m *noc.Message) {
	a.out.Send(m)
}

// withB sets the B payload field, for fluent message construction.
func withB(m *noc.Message, b int64) *noc.Message { m.B = b; return m }
