package fabric

import (
	"testing"

	"rackni/internal/sim"
)

// TestGlobalAddrBoundaries: the selector field holds target+1 in 12 bits
// with 0 reserved for the default peer, so valid targets are [0, 4094] —
// 4094 must encode, 4095 must panic (silently wrapping would alias the
// default-peer encoding and mis-route).
func TestGlobalAddrBoundaries(t *testing.T) {
	const addr = 0x1_2345_6780
	got := GlobalAddr(4094, addr)
	sel, local := SplitAddr(got)
	if sel != 4095 || local != addr {
		t.Fatalf("GlobalAddr(4094): sel=%d local=%#x, want 4095/%#x", sel, local, uint64(addr))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GlobalAddr(4095) must panic: the selector field cannot hold 4096")
		}
	}()
	GlobalAddr(4095, addr)
}

// TestGlobalAddrNegativePanics: negative targets are programming errors.
func TestGlobalAddrNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GlobalAddr(-1) must panic")
		}
	}()
	GlobalAddr(-1, 0x1000)
}

// TestGlobalSplitRoundTrip: for every valid selector and random node-local
// addresses (within the ≤1 TiB contract), SplitAddr(GlobalAddr(t, a))
// returns exactly (t+1, a) — and re-encoding an already-global address
// retargets it cleanly.
func TestGlobalSplitRoundTrip(t *testing.T) {
	rnd := sim.NewRand(42)
	for target := 0; target <= 4094; target += 13 { // every residue class incl. 0 and 4094
		for i := 0; i < 32; i++ {
			local := rnd.Uint64() & ((1 << NodeSelShift) - 1)
			g := GlobalAddr(target, local)
			sel, back := SplitAddr(g)
			if sel != target+1 || back != local {
				t.Fatalf("round trip target=%d local=%#x: got sel=%d local=%#x", target, local, sel, back)
			}
			// Re-encoding a global address replaces the selector.
			g2 := GlobalAddr((target+7)%4095, g)
			sel2, back2 := SplitAddr(g2)
			if sel2 != (target+7)%4095+1 || back2 != local {
				t.Fatalf("re-encode target=%d: got sel=%d local=%#x, want %d/%#x",
					(target+7)%4095, sel2, back2, (target+7)%4095+1, local)
			}
		}
	}
	// Selector-less addresses split to the default peer (0).
	for i := 0; i < 64; i++ {
		local := rnd.Uint64() & ((1 << NodeSelShift) - 1)
		if sel, back := SplitAddr(local); sel != 0 || back != local {
			t.Fatalf("selector-less %#x split to sel=%d local=%#x", local, sel, back)
		}
	}
}

// TestCheckRemoteAddr: the boundary validation of the ≤1 TiB node-local
// contract — stray selector bits that name a nonexistent node and
// addresses above the selector field must be rejected; legal encodings
// pass.
func TestCheckRemoteAddr(t *testing.T) {
	const nodes = 4
	legal := []uint64{
		0,
		0x8000_0000,             // plain node-local
		(1 << NodeSelShift) - 1, // top of the node-local space
		GlobalAddr(0, 0x1000),   // explicit node 0
		GlobalAddr(3, 0x1000),   // last node of the cluster
	}
	for _, a := range legal {
		if err := CheckRemoteAddr(a, nodes); err != nil {
			t.Errorf("CheckRemoteAddr(%#x) rejected a legal address: %v", a, err)
		}
	}
	illegal := []uint64{
		GlobalAddr(4, 0x1000),      // selects node 4 of a 4-node cluster
		uint64(37) << NodeSelShift, // stray bits naming a far node
		uint64(1) << 52,            // above the selector field
		uint64(1)<<56 | 0x8000_0000,
	}
	for _, a := range illegal {
		if err := CheckRemoteAddr(a, nodes); err == nil {
			t.Errorf("CheckRemoteAddr(%#x) accepted an address outside the contract", a)
		}
	}
}
