package fabric

import (
	"reflect"
	"testing"

	rmc "rackni/internal/core"
	"rackni/internal/noc"
)

// transitHarness is a 2-node congested fabric driven without full nodes:
// a fake RRPP on node 1 echoes every inbound request straight back as a
// response, and a completion sink on node 0 counts round trips. It
// exercises the whole link-level transit path (route, credit grant,
// serializer, waiter queue, delivery) in-package.
type transitHarness struct {
	x    *Interconnect
	done int
}

func newTransitHarness(t *testing.T, policy RoutePolicy, credits int) *transitHarness {
	t.Helper()
	ports := testPorts(t, 2)
	// Coordinates 0 and 2 on a radix-4 torus: 2 hops apart, so every
	// round trip crosses four directed links.
	x, err := NewInterconnect(NewTorus3D(4), []int{0, 2}, 0, ports)
	if err != nil {
		t.Fatal(err)
	}
	if policy != RouteNone {
		if err := x.EnableCongestion(policy, credits, 8); err != nil {
			t.Fatal(err)
		}
	}
	h := &transitHarness{x: x}
	ports[1].Env.Net.Register(noc.NIID(0), func(m *noc.Message) {
		if m.Kind != rmc.KNetInbound {
			t.Errorf("fake RRPP got kind %d, want inbound", m.Kind)
		}
		resp := noc.NewMessage()
		resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
		resp.Kind, resp.Flits = rmc.KNetOutbound, 1
		resp.Txn, resp.B = m.Txn, m.B
		x.handle(1, resp)
		noc.Release(m)
	})
	ports[0].Env.Net.Register(noc.NIID(0), func(m *noc.Message) {
		h.done++
		noc.Release(m)
	})
	return h
}

// inject issues n reads plus one write from node 0 to node 1 and runs the
// engine dry.
func (h *transitHarness) inject(n int) {
	for i := 0; i <= n; i++ {
		op := rmc.OpRead
		if i == n {
			op = rmc.OpWrite
		}
		m := noc.NewMessage()
		m.VN, m.Class = noc.VNReq, noc.ClassRequest
		m.Kind, m.Flits = rmc.KNetRequest, 1
		m.Addr = GlobalAddr(1, uint64(i)<<6)
		m.Meta = &rmc.NetReq{Op: op, ReturnTo: noc.NIID(0)}
		h.x.handle(0, m)
	}
	h.x.eng.RunAll()
}

// TestTransitRoundTrips: blocks crossing the congested fabric must all
// arrive (requests at the RRPP row, responses at the requester), every
// grant must be matched by a credit return, occupancy must respect the
// credit pool, and the hop-cycle charge must equal the lump-sum model's
// nominal distance. With one credit per link and concurrent injection,
// the credit queue must block followers for real cycles.
func TestTransitRoundTrips(t *testing.T) {
	const k = 4 // 3 reads + 1 write
	h := newTransitHarness(t, RouteDOR, 1)
	h.inject(k - 1)
	if h.done != k {
		t.Fatalf("completed %d round trips, want %d", h.done, k)
	}
	x := h.x
	if x.Counters[0].RequestsOut != k || x.Counters[1].InboundDelivered != k ||
		x.Counters[1].ResponsesOut != k || x.Counters[0].ResponsesIn != k {
		t.Fatalf("delivery ledger: %+v / %+v", x.Counters[0], x.Counters[1])
	}
	// 2 hops out + 2 hops back, charged to the requester at the nominal
	// per-hop rate exactly as in lump-sum mode.
	if want := int64(k) * 4 * x.hopCycles; x.Counters[0].HopCycles != want {
		t.Fatalf("HopCycles = %d, want %d", x.Counters[0].HopCycles, want)
	}
	ledgers := x.LinkLedgers()
	if len(ledgers) != 4 {
		t.Fatalf("round trips touched %d links, want 4 (2 out, 2 back)", len(ledgers))
	}
	var granted, blocked int64
	for _, l := range ledgers {
		if l.Granted != l.Returned {
			t.Errorf("link (%d dim %d dir %+d): %d granted, %d returned", l.Coord, l.Dim, l.Dir, l.Granted, l.Returned)
		}
		if l.OccupancyHW != 1 {
			t.Errorf("link (%d dim %d dir %+d): occupancy high-water %d with a 1-credit pool", l.Coord, l.Dim, l.Dir, l.OccupancyHW)
		}
		granted += l.Granted
		blocked += l.BlockedCycles
	}
	if granted != k*4 {
		t.Fatalf("total grants %d, want %d", granted, k*4)
	}
	if blocked == 0 {
		t.Fatalf("%d concurrent blocks over 1-credit links never waited for a credit", k)
	}
	if nb := x.Counters[0].FabricBlocked; nb != blocked {
		t.Fatalf("requester's blocked ledger %d disagrees with the links' %d", nb, blocked)
	}
}

// TestTransitResetReplays: after Reset, an identical injection round must
// reproduce the ledgers bit for bit (the congestion state rewinds with
// everything else).
func TestTransitResetReplays(t *testing.T) {
	h := newTransitHarness(t, RouteAdaptive, 2)
	h.inject(2)
	first := h.x.LinkLedgers()
	if len(first) == 0 {
		t.Fatal("first round recorded no link activity")
	}
	h.x.Reset()
	if len(h.x.LinkLedgers()) != 0 {
		t.Fatal("Reset left link ledgers behind")
	}
	h.done = 0
	h.inject(2)
	if !reflect.DeepEqual(h.x.LinkLedgers(), first) {
		t.Fatalf("replay after Reset differs:\ngot  %+v\nwant %+v", h.x.LinkLedgers(), first)
	}
}

// TestTransitLumpSumDelivery: the same harness with congestion off takes
// the lump-sum events and still completes every round trip.
func TestTransitLumpSumDelivery(t *testing.T) {
	h := newTransitHarness(t, RouteNone, 0)
	h.inject(2)
	if h.done != 3 {
		t.Fatalf("completed %d round trips, want 3", h.done)
	}
	if len(h.x.LinkLedgers()) != 0 {
		t.Fatal("lump-sum run recorded link-level activity")
	}
}
