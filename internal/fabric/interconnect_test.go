package fabric

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestGlobalAddrRoundTrip: encoding a target into an address and
// splitting it back must recover both parts, for any on-chip address
// (the selector field and the explicit-target marker belong to the
// encoding, so they are masked out of the local part).
func TestGlobalAddrRoundTrip(t *testing.T) {
	f := func(target uint16, addr uint64) bool {
		tg := int(target) % (nodeSelMask - 1)
		local := addr &^ selField
		sel, gotLocal := SplitAddr(GlobalAddr(tg, local))
		return sel == tg+1 && gotLocal == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalAddrRejectsOverflow: targets outside the selector field must
// panic rather than silently alias the default-peer encoding.
func TestGlobalAddrRejectsOverflow(t *testing.T) {
	for _, target := range []int{-1, nodeSelMask, nodeSelMask + 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GlobalAddr(%d, ...) did not panic", target)
				}
			}()
			GlobalAddr(target, 0x1_0000_0000)
		}()
	}
}

// TestSplitAddrPlain: selector-less addresses (every pre-cluster
// workload) split to selector 0 with the address untouched.
func TestSplitAddrPlain(t *testing.T) {
	for _, addr := range []uint64{0, 0x1_0000_0000, 0x1_07FF_FFC0} {
		sel, local := SplitAddr(addr)
		if sel != 0 || local != addr {
			t.Fatalf("SplitAddr(%#x) = (%d, %#x), want (0, %#x)", addr, sel, local, addr)
		}
	}
}

// TestInterconnectValidation: construction rejects broken geometry.
func TestInterconnectValidation(t *testing.T) {
	topo := NewTorus3D(8)
	cases := []struct {
		name      string
		placement []int
		uniform   int
		ports     int
		wantErr   string
	}{
		{"no nodes", nil, 1, 0, "at least one node"},
		{"negative hops", nil, -1, 0, ""}, // ports=0 trips first; covered below
		{"short placement", []int{0}, 0, 2, "placement names"},
		{"out of range", []int{0, 1 << 20}, 0, 2, "outside"},
		{"duplicate", []int{5, 5}, 0, 2, "used twice"},
	}
	for _, c := range cases {
		ports := make([]NodePort, c.ports)
		_, err := NewInterconnect(topo, c.placement, c.uniform, ports)
		if err == nil {
			t.Fatalf("%s: no error", c.name)
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}
