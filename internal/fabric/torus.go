package fabric

// Torus3D describes the rack's inter-node topology: the paper assumes a
// 512-node 3D torus (8x8x8), whose average and maximum hop counts (6 and
// 12) anchor the Fig. 5 latency projection.
type Torus3D struct {
	Radix int // nodes per dimension
}

// NewTorus3D builds an n-node 3D torus; n must be a perfect cube.
func NewTorus3D(radix int) Torus3D { return Torus3D{Radix: radix} }

// Nodes returns the node count.
func (t Torus3D) Nodes() int { return t.Radix * t.Radix * t.Radix }

// ringDist is the hop distance along one torus dimension.
func (t Torus3D) ringDist(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := t.Radix - d; w < d {
		return w
	}
	return d
}

// Hops returns the hop count between two node ids.
func (t Torus3D) Hops(a, b int) int {
	r := t.Radix
	ax, ay, az := a%r, (a/r)%r, a/(r*r)
	bx, by, bz := b%r, (b/r)%r, b/(r*r)
	return t.ringDist(ax, bx) + t.ringDist(ay, by) + t.ringDist(az, bz)
}

// MaxHops returns the torus diameter (12 for an 8x8x8 torus).
func (t Torus3D) MaxHops() int {
	return 3 * (t.Radix / 2)
}

// AvgHops returns the average hop count from a node to every other node
// (6.0 for an 8x8x8 torus, the figure the paper quotes).
func (t Torus3D) AvgHops() float64 {
	n := t.Nodes()
	total := 0
	for b := 1; b < n; b++ {
		total += t.Hops(0, b)
	}
	return float64(total) / float64(n-1)
}
