package fabric

import (
	"testing"
	"testing/quick"
)

func TestTorusPaperFigures(t *testing.T) {
	torus := NewTorus3D(8)
	if torus.Nodes() != 512 {
		t.Fatalf("nodes=%d want 512", torus.Nodes())
	}
	if torus.MaxHops() != 12 {
		t.Fatalf("diameter=%d want 12 (paper §6.1.2)", torus.MaxHops())
	}
	avg := torus.AvgHops()
	if avg < 5.9 || avg > 6.1 {
		t.Fatalf("average hops=%.2f, paper quotes 6", avg)
	}
}

func TestTorusHopsSymmetryAndIdentity(t *testing.T) {
	torus := NewTorus3D(8)
	f := func(a, b uint16) bool {
		x, y := int(a)%512, int(b)%512
		if torus.Hops(x, x) != 0 {
			return false
		}
		return torus.Hops(x, y) == torus.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorusTriangleInequality(t *testing.T) {
	torus := NewTorus3D(4)
	n := torus.Nodes()
	for a := 0; a < n; a += 7 {
		for b := 0; b < n; b += 5 {
			for c := 0; c < n; c += 11 {
				if torus.Hops(a, c) > torus.Hops(a, b)+torus.Hops(b, c) {
					t.Fatalf("triangle inequality violated at %d,%d,%d", a, b, c)
				}
			}
		}
	}
}

func TestRingDistWraps(t *testing.T) {
	torus := NewTorus3D(8)
	if d := torus.ringDist(0, 7); d != 1 {
		t.Fatalf("ring wrap distance = %d, want 1", d)
	}
	if d := torus.ringDist(0, 4); d != 4 {
		t.Fatalf("half-ring distance = %d, want 4", d)
	}
}
