package fabric

import (
	"fmt"

	"rackni/internal/sim"
)

// Outage marks one directed inter-node link (Src -> Dst) as dead for the
// half-open engine-cycle interval [From, Until). Until <= 0 means the link
// never comes back.
type Outage struct {
	Src, Dst    int
	From, Until int64
}

// covers reports whether the outage is active at engine cycle now.
func (o Outage) covers(now int64) bool {
	return now >= o.From && (o.Until <= 0 || now < o.Until)
}

// NodeOutage takes a whole node off the fabric for [From, Until) engine
// cycles: every message entering or leaving the node is dropped. Until <= 0
// means the node never comes back.
type NodeOutage struct {
	Node        int
	From, Until int64
}

func (o NodeOutage) covers(now int64) bool {
	return now >= o.From && (o.Until <= 0 || now < o.Until)
}

// FaultSpec declares a deterministic fault schedule for an Interconnect.
// Probabilities apply independently to each fabric leg (request and
// response); all randomness comes from per-leg xorshift generators seeded
// from Seed at plan construction, never from wall clock, so identical specs
// produce bit-identical runs.
type FaultSpec struct {
	// Seed seeds the plan's private generator (zero picks a fixed
	// constant, see sim.NewRand).
	Seed uint64
	// DropProb is the probability a message silently disappears on a leg.
	DropProb float64
	// DelayProb is the probability a message is late by DelayCycles.
	DelayProb float64
	// DelayCycles is the extra latency charged to delayed messages.
	DelayCycles int64
	// CorruptProb is the probability a message arrives corrupted. The
	// fabric models CRC-checked links, so corruption is detected at the
	// receiver and the message discarded: a corrupt message is a drop
	// that also counts in LinkStats.Corrupt.
	CorruptProb float64
	// LinkDown lists directed link outages.
	LinkDown []Outage
	// NodeDown lists whole-node outages.
	NodeDown []NodeOutage
}

// Active reports whether the spec can ever perturb a message. A zero
// FaultSpec is inactive and equivalent to no fault plan at all.
func (s *FaultSpec) Active() bool {
	return s.DropProb > 0 || s.DelayProb > 0 || s.CorruptProb > 0 ||
		len(s.LinkDown) > 0 || len(s.NodeDown) > 0
}

// Validate checks the spec against an interconnect of the given node count.
func (s *FaultSpec) Validate(nodes int) error {
	switch {
	case s.DropProb < 0 || s.DropProb >= 1:
		return fmt.Errorf("fabric: drop probability %v outside [0,1)", s.DropProb)
	case s.DelayProb < 0 || s.DelayProb >= 1:
		return fmt.Errorf("fabric: delay probability %v outside [0,1)", s.DelayProb)
	case s.CorruptProb < 0 || s.CorruptProb >= 1:
		return fmt.Errorf("fabric: corrupt probability %v outside [0,1)", s.CorruptProb)
	case s.DelayProb > 0 && s.DelayCycles <= 0:
		return fmt.Errorf("fabric: delay probability set with non-positive DelayCycles %d", s.DelayCycles)
	case s.DropProb+s.CorruptProb >= 1:
		return fmt.Errorf("fabric: drop+corrupt probability %v leaves no chance of delivery", s.DropProb+s.CorruptProb)
	}
	for _, o := range s.LinkDown {
		if o.Src < 0 || o.Src >= nodes || o.Dst < 0 || o.Dst >= nodes {
			return fmt.Errorf("fabric: link outage %d->%d outside cluster of %d nodes", o.Src, o.Dst, nodes)
		}
		if o.Src == o.Dst {
			return fmt.Errorf("fabric: link outage %d->%d is a self-loop", o.Src, o.Dst)
		}
		if o.From < 0 {
			return fmt.Errorf("fabric: link outage %d->%d starts at negative cycle %d", o.Src, o.Dst, o.From)
		}
		if o.Until > 0 && o.Until <= o.From {
			return fmt.Errorf("fabric: link outage %d->%d window [%d,%d) is empty", o.Src, o.Dst, o.From, o.Until)
		}
	}
	for _, o := range s.NodeDown {
		if o.Node < 0 || o.Node >= nodes {
			return fmt.Errorf("fabric: node outage for node %d outside cluster of %d nodes", o.Node, nodes)
		}
		if o.From < 0 {
			return fmt.Errorf("fabric: node outage for node %d starts at negative cycle %d", o.Node, o.From)
		}
		if o.Until > 0 && o.Until <= o.From {
			return fmt.Errorf("fabric: node outage for node %d window [%d,%d) is empty", o.Node, o.From, o.Until)
		}
	}
	return nil
}

// FaultPlan is an executable FaultSpec: the spec plus one private generator
// per directed leg. Per-leg streams make a leg's fault schedule a pure
// function of (Seed, src, dst) and the leg's own traffic — never of the
// interleaving of OTHER legs' traffic — which is what lets a sharded
// cluster judge each leg inside the shard that sends on it and still
// reproduce the single-engine schedule bit for bit. Reset re-seeds every
// generator so a reused Session replays the exact schedule of a fresh run.
//
// Each leg (src, dst) is drawn only by node src's shard: requests src→dst
// are judged at send time on the src side, and responses use the returning
// leg (servicer→requester) judged on the servicer side — so concurrent
// shards touch disjoint generators.
type FaultPlan struct {
	spec FaultSpec
	n    int
	legs []sim.Rand // generator per directed leg, indexed src*n+dst
}

// NewFaultPlan builds a plan for the spec over a cluster of `nodes` nodes.
// The caller is expected to have validated the spec against the
// interconnect geometry.
func NewFaultPlan(spec FaultSpec, nodes int) *FaultPlan {
	if nodes < 1 {
		nodes = 1
	}
	p := &FaultPlan{spec: spec, n: nodes, legs: make([]sim.Rand, nodes*nodes)}
	p.Reset()
	return p
}

// Spec returns a copy of the plan's spec.
func (p *FaultPlan) Spec() FaultSpec { return p.spec }

// legSeed decorrelates the per-leg generators: a splitmix64-style finalizer
// over (seed, src, dst), so neighboring legs share no low-bit structure.
func legSeed(seed uint64, src, dst int) uint64 {
	z := seed ^ 0x9E3779B97F4A7C15*uint64(src+1) ^ 0xBF58476D1CE4E5B9*uint64(dst+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Reset rewinds every leg generator to its construction state.
func (p *FaultPlan) Reset() {
	for s := 0; s < p.n; s++ {
		for d := 0; d < p.n; d++ {
			p.legs[s*p.n+d] = *sim.NewRand(legSeed(p.spec.Seed, s, d))
		}
	}
}

// down reports whether the directed leg src->dst is severed at cycle now by
// a link or node outage. Outage checks draw no randomness.
func (p *FaultPlan) down(src, dst int, now int64) bool {
	for _, o := range p.spec.LinkDown {
		if o.Src == src && o.Dst == dst && o.covers(now) {
			return true
		}
	}
	for _, o := range p.spec.NodeDown {
		if (o.Node == src || o.Node == dst) && o.covers(now) {
			return true
		}
	}
	return false
}

// judge decides the fate of one message on the directed leg src->dst at
// cycle now: dropped (silently or by detected corruption) or delayed by
// extra cycles. Each probability draws from the leg's own generator, and
// only when its knob is nonzero, so enabling one fault class never shifts
// the schedule of another run that only uses a different class — and
// traffic on one leg never shifts the schedule of any other leg.
func (p *FaultPlan) judge(src, dst int, now int64) (drop, corrupt bool, extra int64) {
	if p.down(src, dst, now) {
		return true, false, 0
	}
	rnd := &p.legs[src*p.n+dst]
	if p.spec.DropProb > 0 && rnd.Float64() < p.spec.DropProb {
		return true, false, 0
	}
	if p.spec.CorruptProb > 0 && rnd.Float64() < p.spec.CorruptProb {
		return true, true, 0
	}
	if p.spec.DelayProb > 0 && rnd.Float64() < p.spec.DelayProb {
		return false, false, p.spec.DelayCycles
	}
	return false, false, 0
}
