package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bfsDistances computes single-source shortest-path hop counts over the
// torus's actual link graph (±1 with wraparound in each of the three
// dimensions) — an independent reference for the closed-form Hops.
func bfsDistances(t Torus3D, src int) []int {
	n := t.Nodes()
	r := t.Radix
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	coord := func(id int) (int, int, int) { return id % r, (id / r) % r, id / (r * r) }
	id := func(x, y, z int) int { return ((z+r)%r)*r*r + ((y+r)%r)*r + (x+r)%r }
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		x, y, z := coord(cur)
		for _, nb := range []int{
			id(x+1, y, z), id(x-1, y, z),
			id(x, y+1, z), id(x, y-1, z),
			id(x, y, z+1), id(x, y, z-1),
		} {
			if dist[nb] == -1 {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// TestTorusHopsMatchesBFS: the closed-form ring-distance sum must equal
// true shortest-path distance over the link graph, for every destination
// from randomly chosen sources of the paper's 512-node torus (and
// exhaustively on a radix-4 torus, whose even radix exercises the
// half-ring tie).
func TestTorusHopsMatchesBFS(t *testing.T) {
	for _, radix := range []int{3, 4, 5, 8} {
		torus := NewTorus3D(radix)
		n := torus.Nodes()
		sources := n // exhaustive for small tori
		if n > 200 {
			sources = 24 // sampled for the 512-node torus
		}
		rnd := rand.New(rand.NewSource(1))
		for s := 0; s < sources; s++ {
			src := s
			if n > 200 {
				src = rnd.Intn(n)
			}
			dist := bfsDistances(torus, src)
			for dst := 0; dst < n; dst++ {
				if got := torus.Hops(src, dst); got != dist[dst] {
					t.Fatalf("radix %d: Hops(%d,%d)=%d, BFS says %d", radix, src, dst, got, dist[dst])
				}
			}
		}
	}
}

// TestTorusAvgMaxConsistentWithBFS: AvgHops and MaxHops must agree with
// the BFS reference on the paper's 512-node torus. By vertex transitivity
// one source suffices for both.
func TestTorusAvgMaxConsistentWithBFS(t *testing.T) {
	torus := NewTorus3D(8)
	dist := bfsDistances(torus, 0)
	total, max := 0, 0
	for _, d := range dist {
		total += d
		if d > max {
			max = d
		}
	}
	if max != torus.MaxHops() {
		t.Fatalf("BFS diameter %d != MaxHops %d", max, torus.MaxHops())
	}
	wantAvg := float64(total) / float64(torus.Nodes()-1)
	if got := torus.AvgHops(); got != wantAvg {
		t.Fatalf("AvgHops %.4f != BFS average %.4f", got, wantAvg)
	}
}

// TestTorusHopsBounds: property check — Hops is within [0, MaxHops] and
// zero exactly on the diagonal.
func TestTorusHopsBounds(t *testing.T) {
	torus := NewTorus3D(8)
	f := func(a, b uint16) bool {
		x, y := int(a)%512, int(b)%512
		h := torus.Hops(x, y)
		if h < 0 || h > torus.MaxHops() {
			return false
		}
		return (h == 0) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
