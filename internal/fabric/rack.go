// Package fabric models the rack: the chip-to-chip network and the remote
// end of every transfer. Two implementations of "the rest of the rack"
// coexist:
//
//   - Rack follows the paper's methodology (§5) exactly: only one node is
//     simulated in detail; the rack is emulated by a fixed 35 ns latency
//     per intra-rack network hop, a traffic generator that mirrors the
//     outgoing request rate back at the node as incoming remote requests
//     (address-interleaved across the RRPPs by home row, §4.3), and using
//     the local RRPPs' measured service latency as the remote node's
//     service latency.
//
//   - Interconnect (interconnect.go) is the real thing: it routes request
//     and response blocks between N fully simulated nodes over the
//     3D-torus hop model, delivering inbound requests to the remote
//     node's actual RRPPs. Rack remains the N=1 fast path; the two are
//     cross-validated against each other in internal/node.
//
// The package also provides the 512-node 3D-torus hop statistics used by
// the Fig. 5 projection.
package fabric

import (
	"fmt"

	rmc "rackni/internal/core"
	"rackni/internal/noc"
)

// NodePort describes one node's attachment to the inter-node fabric: its
// RMC environment plus the address-interleaving geometry the fabric needs
// to land inbound requests on the right RRPP and responses on the right
// injection row. Both Rack (the single-node mirror emulation) and
// Interconnect (the real multi-node fabric) consume it, so a node wires up
// identically either way.
type NodePort struct {
	// Env is the node's RMC environment (engine, config, on-chip fabric).
	Env *rmc.Env
	// Ports is the number of network attachment rows (mesh rows, or
	// NOC-Out LLC tiles).
	Ports int
	// HomeRow maps a local address to the row whose RRPP services it (the
	// address interleaving of §4.3).
	HomeRow func(addr uint64) int
	// RowOf maps a response's return target to the row whose port injects
	// it.
	RowOf func(id noc.NodeID) int
	// RRPPAt returns the endpoint of the RRPP serving a row.
	RRPPAt func(row int) noc.NodeID
}

// Rack is the emulated remote end attached to a node's network ports.
type Rack struct {
	env     *rmc.Env
	hops    int
	homeRow func(addr uint64) int
	rowOf   func(id noc.NodeID) int
	rrppAt  func(row int) noc.NodeID

	mirrorSeq uint64
	pending   map[uint64]*outstanding
	freeOut   []*outstanding // recycled records
	outs      []*noc.Outbox  // injection port per row

	// Outgoing / inbound counters (tests, experiments). Reset per run by
	// the node's run entry points (ResetCounters).
	RequestsOut  int64
	ResponsesIn  int64
	InboundMade  int64
	ResponsesOut int64
	// HopCycles accumulates every hop delay this emulation applied
	// (outbound and return legs). The cluster cross-validation compares it
	// exactly against the Interconnect's per-node accounting.
	HopCycles int64
}

type outstanding struct {
	nr   *rmc.NetReq
	addr uint64
}

// NewRack wires the rack emulation to the node's network ports. hops is
// the one-way intra-rack hop count between the node and its peer.
func NewRack(port NodePort, hops int) *Rack {
	r := &Rack{env: port.Env, hops: hops, homeRow: port.HomeRow, rowOf: port.RowOf,
		rrppAt:  port.RRPPAt,
		pending: make(map[uint64]*outstanding), outs: make([]*noc.Outbox, port.Ports)}
	for row := 0; row < port.Ports; row++ {
		id := noc.NetID(row)
		r.outs[row] = noc.NewOutbox(port.Env.Net, id)
		port.Env.Net.Register(id, r.handle)
	}
	return r
}

// ResetCounters zeroes the per-run accounting so a reused node reports
// per-run figures. Records of in-flight transfers are untouched.
func (r *Rack) ResetCounters() {
	r.RequestsOut, r.ResponsesIn, r.InboundMade, r.ResponsesOut, r.HopCycles = 0, 0, 0, 0, 0
}

// Reset returns the emulation to its just-built state: counters zeroed,
// in-flight mirror records dropped, the mirror sequence restarted and the
// injection ports drained. The run lifecycle (node.Session) calls it
// between runs; events referencing dropped mirrors are cleared with the
// engine.
func (r *Rack) Reset() {
	r.ResetCounters()
	for txn, o := range r.pending {
		o.nr = nil
		r.freeOut = append(r.freeOut, o)
		delete(r.pending, txn)
	}
	r.mirrorSeq = 0
	for _, o := range r.outs {
		o.Reset()
	}
}

func (r *Rack) hopDelay() int64 {
	return int64(r.hops) * r.env.Cfg.NetHopCycles()
}

func (r *Rack) handle(m *noc.Message) {
	switch m.Kind {
	case rmc.KNetRequest:
		r.onOutgoingRequest(m)
	case rmc.KNetOutbound:
		r.onOutgoingResponse(m)
	default:
		panic(fmt.Sprintf("fabric: unexpected kind %d at network router", m.Kind))
	}
	noc.Release(m)
}

// onOutgoingRequest sends one block request into the rack. Its mirror
// arrives back at this node after the outbound hops; the original's
// response is released when the mirror's RRPP service completes.
func (r *Rack) onOutgoingRequest(m *noc.Message) {
	r.RequestsOut++
	nr := m.Meta.(*rmc.NetReq)
	r.mirrorSeq++
	txn := r.mirrorSeq
	var o *outstanding
	if n := len(r.freeOut); n > 0 {
		o = r.freeOut[n-1]
		r.freeOut = r.freeOut[:n-1]
		o.nr, o.addr = nr, m.Addr
	} else {
		o = &outstanding{nr: nr, addr: m.Addr}
	}
	r.pending[txn] = o
	addr := m.Addr // remote addresses map 1:1 onto the local source region
	flits := r.env.Cfg.ReqHeaderFlits
	if nr.Op == rmc.OpWrite {
		flits += r.env.Cfg.BlockBytes / r.env.Cfg.LinkBytes
	}
	row := r.homeRow(addr)
	inbound := noc.NewMessage()
	inbound.VN, inbound.Class = noc.VNReq, noc.ClassRequest
	inbound.Src, inbound.Dst = noc.NetID(row), r.rrppAt(row)
	inbound.Flits, inbound.Kind = flits, rmc.KNetInbound
	inbound.Addr, inbound.Txn, inbound.A = addr, txn, int64(nr.Op)
	r.InboundMade++
	r.HopCycles += r.hopDelay()
	r.env.Eng.Post(r.hopDelay(), rackInboundEv, r, inbound, int64(row))
}

// rackInboundEv lands a mirrored request at its RRPP row after the
// outbound network hops.
func rackInboundEv(a, b any, row int64) {
	r := a.(*Rack)
	r.outs[row].Send(b.(*noc.Message))
}

// onOutgoingResponse completes a mirror: after the return hops, the
// matching original request's response enters the chip at the row of its
// return target.
func (r *Rack) onOutgoingResponse(m *noc.Message) {
	r.ResponsesOut++
	o, ok := r.pending[m.Txn]
	if !ok {
		panic(fmt.Sprintf("fabric: response for unknown mirror txn %d", m.Txn))
	}
	delete(r.pending, m.Txn)
	flits := 1
	if o.nr.Op == rmc.OpRead {
		flits = r.env.Cfg.BlockFlits()
	}
	row := r.rowOf(o.nr.ReturnTo)
	resp := noc.NewMessage()
	resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
	resp.Src, resp.Dst = noc.NetID(row), o.nr.ReturnTo
	resp.Flits, resp.Kind = flits, rmc.KNetResponse
	resp.Addr, resp.Meta = o.addr, o.nr
	o.nr = nil
	r.freeOut = append(r.freeOut, o)
	r.HopCycles += r.hopDelay()
	r.env.Eng.Post(r.hopDelay(), rackRespEv, r, resp, int64(row))
}

// rackRespEv lands a matched response back on chip after the return hops.
func rackRespEv(a, b any, row int64) {
	r := a.(*Rack)
	r.ResponsesIn++
	r.outs[row].Send(b.(*noc.Message))
}
