// Package fabric models the rack: the chip-to-chip network and the remote
// end of every transfer. Following the paper's methodology (§5) exactly,
// only one node is simulated in detail; the rack is emulated by
//
//   - a fixed 35 ns latency per intra-rack network hop,
//   - a traffic generator that mirrors the outgoing request rate back at
//     the node as incoming remote requests (address-interleaved across the
//     RRPPs by home row, §4.3), and
//   - using the local RRPPs' measured service latency as the remote node's
//     service latency: each outgoing block request spawns a mirror inbound
//     request, and the original's response is released when its mirror
//     completes service plus the return network hops.
//
// The package also provides the 512-node 3D-torus hop statistics used by
// the Fig. 5 projection.
package fabric

import (
	"fmt"

	rmc "rackni/internal/core"
	"rackni/internal/noc"
)

// Rack is the emulated remote end attached to a node's network ports.
type Rack struct {
	env     *rmc.Env
	hops    int
	homeRow func(addr uint64) int
	rowOf   func(id noc.NodeID) int
	rrppAt  func(row int) noc.NodeID

	mirrorSeq uint64
	pending   map[uint64]*outstanding
	outs      map[int]*portOut

	// Outgoing / inbound counters (tests, experiments).
	RequestsOut  int64
	ResponsesIn  int64
	InboundMade  int64
	ResponsesOut int64
}

type outstanding struct {
	nr   *rmc.NetReq
	addr uint64
}

type portOut struct {
	rack    *Rack
	id      noc.NodeID
	q       []*noc.Message
	waiting bool
}

// NewRack wires the rack emulation to the node's network ports. hops is
// the one-way intra-rack hop count between the node and its peer; homeRow
// maps an address to the row whose RRPP services it (the address
// interleaving of §4.3); rowOf maps a response's return target to the row
// whose port injects it; ports is the number of attachment points.
func NewRack(env *rmc.Env, hops, ports int, homeRow func(uint64) int,
	rowOf func(noc.NodeID) int, rrppAt func(int) noc.NodeID) *Rack {
	r := &Rack{env: env, hops: hops, homeRow: homeRow, rowOf: rowOf, rrppAt: rrppAt,
		pending: make(map[uint64]*outstanding), outs: make(map[int]*portOut)}
	for row := 0; row < ports; row++ {
		id := noc.NetID(row)
		r.outs[row] = &portOut{rack: r, id: id}
		env.Net.Register(id, r.handle)
	}
	return r
}

func (r *Rack) hopDelay() int64 {
	return int64(r.hops) * r.env.Cfg.NetHopCycles()
}

func (r *Rack) handle(m *noc.Message) {
	switch m.Kind {
	case rmc.KNetRequest:
		r.onOutgoingRequest(m)
	case rmc.KNetOutbound:
		r.onOutgoingResponse(m)
	default:
		panic(fmt.Sprintf("fabric: unexpected kind %d at network router", m.Kind))
	}
}

// onOutgoingRequest sends one block request into the rack. Its mirror
// arrives back at this node after the outbound hops; the original's
// response is released when the mirror's RRPP service completes.
func (r *Rack) onOutgoingRequest(m *noc.Message) {
	r.RequestsOut++
	nr := m.Meta.(*rmc.NetReq)
	r.mirrorSeq++
	txn := r.mirrorSeq
	r.pending[txn] = &outstanding{nr: nr, addr: m.Addr}
	addr := m.Addr // remote addresses map 1:1 onto the local source region
	flits := r.env.Cfg.ReqHeaderFlits
	if nr.Op == rmc.OpWrite {
		flits += r.env.Cfg.BlockBytes / r.env.Cfg.LinkBytes
	}
	row := r.homeRow(addr)
	inbound := &noc.Message{
		VN: noc.VNReq, Class: noc.ClassRequest,
		Src: noc.NetID(row), Dst: r.rrppAt(row),
		Flits: flits, Kind: rmc.KNetInbound, Addr: addr, Txn: txn, A: int64(nr.Op),
	}
	r.InboundMade++
	r.env.Eng.Schedule(r.hopDelay(), func() { r.outs[row].send(inbound) })
}

// onOutgoingResponse completes a mirror: after the return hops, the
// matching original request's response enters the chip at the row of its
// return target.
func (r *Rack) onOutgoingResponse(m *noc.Message) {
	r.ResponsesOut++
	o, ok := r.pending[m.Txn]
	if !ok {
		panic(fmt.Sprintf("fabric: response for unknown mirror txn %d", m.Txn))
	}
	delete(r.pending, m.Txn)
	flits := 1
	if o.nr.Op == rmc.OpRead {
		flits = r.env.Cfg.BlockFlits()
	}
	row := r.rowOf(o.nr.ReturnTo)
	resp := &noc.Message{
		VN: noc.VNResp, Class: noc.ClassResponse,
		Src: noc.NetID(row), Dst: o.nr.ReturnTo,
		Flits: flits, Kind: rmc.KNetResponse, Addr: o.addr, Meta: o.nr,
	}
	r.env.Eng.Schedule(r.hopDelay(), func() {
		r.ResponsesIn++
		r.outs[row].send(resp)
	})
}

func (p *portOut) send(m *noc.Message) {
	p.q = append(p.q, m)
	p.pump()
}

func (p *portOut) pump() {
	if p.waiting {
		return
	}
	for len(p.q) > 0 {
		if !p.rack.env.Net.Send(p.q[0]) {
			p.waiting = true
			p.rack.env.Net.WhenFree(p.id, func() { p.waiting = false; p.pump() })
			return
		}
		p.q = p.q[1:]
	}
}
