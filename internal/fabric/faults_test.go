package fabric

import (
	"testing"
)

// TestFaultSpecValidate: the spec rejects out-of-range probabilities,
// delay faults without a delay, drop+corrupt mass reaching certainty, and
// malformed outage intervals — before a plan is ever built.
func TestFaultSpecValidate(t *testing.T) {
	ok := FaultSpec{DropProb: 0.1, DelayProb: 0.2, DelayCycles: 50, CorruptProb: 0.05,
		LinkDown: []Outage{{Src: 0, Dst: 1, From: 10, Until: 20}},
		NodeDown: []NodeOutage{{Node: 2, From: 5}}}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []FaultSpec{
		{DropProb: -0.1},
		{DropProb: 1},
		{DelayProb: 0.5}, // no DelayCycles
		{DelayProb: 0.5, DelayCycles: -1},
		{CorruptProb: 1.5},
		{DropProb: 0.6, CorruptProb: 0.5},                           // certainty of loss
		{LinkDown: []Outage{{Src: 0, Dst: 0}}},                      // self-loop
		{LinkDown: []Outage{{Src: 0, Dst: 9}}},                      // beyond cluster
		{LinkDown: []Outage{{Src: -1, Dst: 1}}},                     // negative node
		{LinkDown: []Outage{{Src: 0, Dst: 1, From: -5}}},            // negative start
		{LinkDown: []Outage{{Src: 0, Dst: 1, From: 20, Until: 10}}}, // inverted window
		{NodeDown: []NodeOutage{{Node: 4}}},                         // beyond cluster
		{NodeDown: []NodeOutage{{Node: 1, From: 30, Until: 30}}},    // empty window
	}
	for i, spec := range bad {
		if err := spec.Validate(4); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestFaultSpecActive: only specs that can actually perturb traffic arm a
// plan; the zero spec is inert so SetFaults(&FaultSpec{}) equals nil.
func TestFaultSpecActive(t *testing.T) {
	inert, seeded := FaultSpec{}, FaultSpec{Seed: 7}
	if inert.Active() || seeded.Active() {
		t.Fatal("inert spec reports active")
	}
	for _, spec := range []FaultSpec{
		{DropProb: 0.1},
		{DelayProb: 0.1, DelayCycles: 10},
		{CorruptProb: 0.1},
		{LinkDown: []Outage{{Src: 0, Dst: 1}}},
		{NodeDown: []NodeOutage{{Node: 0}}},
	} {
		if !spec.Active() {
			t.Fatalf("active spec reports inert: %+v", spec)
		}
	}
}

// judgeTrace records the plan's verdicts over a window of pseudo-traffic.
func judgeTrace(p *FaultPlan, n int) []int {
	out := make([]int, n)
	for i := range out {
		drop, corrupt, extra := p.judge(i%3, (i+1)%3, int64(i))
		switch {
		case corrupt:
			out[i] = 2
		case drop:
			out[i] = 1
		case extra > 0:
			out[i] = 3
		}
	}
	return out
}

// TestFaultPlanDeterministicReset: the fault schedule is a pure function
// of the seed — Reset rewinds the plan to an identical verdict stream, the
// property Session.Begin relies on for reused-cluster bit-identity.
func TestFaultPlanDeterministicReset(t *testing.T) {
	spec := FaultSpec{Seed: 42, DropProb: 0.2, DelayProb: 0.1, DelayCycles: 30, CorruptProb: 0.05}
	p := NewFaultPlan(spec, 3)
	first := judgeTrace(p, 2000)
	saw := map[int]bool{}
	for _, v := range first {
		saw[v] = true
	}
	for v := 0; v <= 3; v++ {
		if !saw[v] {
			t.Fatalf("2000 verdicts never produced outcome %d: %v", v, saw)
		}
	}
	p.Reset()
	second := judgeTrace(p, 2000)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("verdict %d diverged after Reset: %d vs %d", i, first[i], second[i])
		}
	}
	// A distinct seed must not replay the same schedule.
	spec.Seed = 43
	other := judgeTrace(NewFaultPlan(spec, 3), 2000)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
}

// TestFaultPlanOutages: link outages are directed and half-open in time;
// node outages cover both directions of every adjacent link; outage
// verdicts draw no randomness (they must not shift probabilistic faults).
func TestFaultPlanOutages(t *testing.T) {
	p := NewFaultPlan(FaultSpec{
		LinkDown: []Outage{{Src: 0, Dst: 1, From: 10, Until: 20}},
		NodeDown: []NodeOutage{{Node: 2, From: 100}}, // forever from 100
	}, 3)
	cases := []struct {
		src, dst int
		now      int64
		down     bool
	}{
		{0, 1, 9, false}, {0, 1, 10, true}, {0, 1, 19, true}, {0, 1, 20, false},
		{1, 0, 15, false},                                        // directed: reverse leg stays up
		{2, 0, 99, false}, {2, 0, 100, true}, {0, 2, 5000, true}, // node-down covers both roles
		{0, 1, 5000, false},
	}
	for _, c := range cases {
		drop, corrupt, extra := p.judge(c.src, c.dst, c.now)
		if drop != c.down || corrupt || extra != 0 {
			t.Fatalf("judge(%d,%d,@%d) = (%v,%v,%d), want down=%v",
				c.src, c.dst, c.now, drop, corrupt, extra, c.down)
		}
	}
}

// TestInterconnectSetFaults: an inactive or nil spec clears the plan, an
// invalid one is rejected, and Interconnect.Reset rewinds the installed
// plan's RNG along with everything else.
func TestInterconnectSetFaults(t *testing.T) {
	x, err := NewInterconnect(NewTorus3D(8), nil, 1, testPorts(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := x.SetFaults(nil); err != nil || x.Faults() != nil {
		t.Fatalf("nil spec: err=%v plan=%v", err, x.Faults())
	}
	if err := x.SetFaults(&FaultSpec{}); err != nil || x.Faults() != nil {
		t.Fatal("inert spec must clear the plan, not arm an RNG-less one")
	}
	if err := x.SetFaults(&FaultSpec{DropProb: 0.5, LinkDown: []Outage{{Src: 0, Dst: 7}}}); err == nil {
		t.Fatal("outage naming node 7 accepted on a 3-node fabric")
	}
	if err := x.SetFaults(&FaultSpec{Seed: 9, DropProb: 0.5}); err != nil {
		t.Fatal(err)
	}
	first := judgeTrace(x.Faults(), 500)
	x.Reset()
	second := judgeTrace(x.Faults(), 500)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Interconnect.Reset did not rewind the fault plan (verdict %d)", i)
		}
	}
	if x.PeakInFlight() != 0 {
		t.Fatal("Reset left the in-flight high-water mark")
	}
}
