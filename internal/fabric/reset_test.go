package fabric

import (
	"testing"

	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// testPorts builds n minimal node ports (each with its own on-chip
// fabric, all sharing one engine) — enough to construct an Interconnect
// for table/bookkeeping tests without full node assemblies.
func testPorts(t *testing.T, n int) []NodePort {
	t.Helper()
	eng := sim.NewEngine()
	ports := make([]NodePort, n)
	for i := range ports {
		cfg := config.Default()
		mesh := noc.NewMesh(eng, &cfg)
		env := &rmc.Env{Eng: eng, Cfg: &cfg, Net: mesh, Stats: rmc.NewStats()}
		ports[i] = NodePort{
			Env:     env,
			Ports:   1,
			HomeRow: func(addr uint64) int { return 0 },
			RowOf:   func(id noc.NodeID) int { return 0 },
			RRPPAt:  func(row int) noc.NodeID { return noc.NIID(row) },
		}
	}
	return ports
}

// TestInterconnectDenseDistance: the precomputed table must agree with
// the torus model for every pair under placement, and with the uniform
// distance without one.
func TestInterconnectDenseDistance(t *testing.T) {
	topo := NewTorus3D(4)
	placement := []int{0, 7, 21, 42, 63, 13, 30, 55}
	x, err := NewInterconnect(topo, placement, 0, testPorts(t, len(placement)))
	if err != nil {
		t.Fatal(err)
	}
	for a := range placement {
		for b := range placement {
			want := topo.Hops(placement[a], placement[b])
			if got := x.Dist(a, b); got != want {
				t.Fatalf("Dist(%d,%d)=%d, want torus %d", a, b, got, want)
			}
		}
	}

	u, err := NewInterconnect(topo, nil, 5, testPorts(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if u.Dist(a, b) != 5 {
				t.Fatalf("uniform Dist(%d,%d)=%d, want 5", a, b, u.Dist(a, b))
			}
		}
	}
	if err := u.CheckAddr(GlobalAddr(2, 0x1000)); err != nil {
		t.Fatalf("CheckAddr rejected a legal target: %v", err)
	}
	if err := u.CheckAddr(GlobalAddr(3, 0x1000)); err == nil {
		t.Fatal("CheckAddr accepted a target beyond the cluster")
	}
}

// TestInterconnectXferRecycling: transfer slots recycle LIFO through a
// node's free list, per-node tables stay dense and independent, and Reset
// restarts the ids.
func TestInterconnectXferRecycling(t *testing.T) {
	x, err := NewInterconnect(NewTorus3D(8), nil, 1, testPorts(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	tab := &x.xtabs[0]
	t1, o1 := tab.take()
	t2, _ := tab.take()
	if t1 != 1 || t2 != 2 {
		t.Fatalf("first ids %d,%d, want 1,2", t1, t2)
	}
	// Another node's table numbers independently: the id space is
	// per-requester, so each record's lifecycle stays inside its shard.
	if tn, _ := x.xtabs[1].take(); tn != 1 {
		t.Fatalf("node 1's first id %d, want 1", tn)
	}
	o1.active = true
	*o1 = xfer{}
	tab.free = append(tab.free, t1)
	t3, _ := tab.take()
	if t3 != t1 {
		t.Fatalf("freed id %d not recycled (got %d)", t1, t3)
	}
	if len(tab.xfers) != 2 {
		t.Fatalf("table grew to %d despite recycling", len(tab.xfers))
	}
	if x.PeakInFlight() != 3 {
		t.Fatalf("peak = %d, want 2 live at node 0 + 1 at node 1", x.PeakInFlight())
	}
	x.Counters[0].RequestsOut = 9
	x.Traffic[0][1] = 4
	x.Reset()
	if x.Counters[0] != (LinkStats{}) || x.Traffic[0][1] != 0 {
		t.Fatal("Reset left per-run accounting")
	}
	if len(tab.xfers) != 0 || len(tab.free) != 0 || x.PeakInFlight() != 0 {
		t.Fatal("Reset left transfer state")
	}
	if tn, _ := tab.take(); tn != 1 {
		t.Fatalf("post-Reset ids restart at %d, want 1", tn)
	}
}

// TestRackReset: the emulation returns to its just-built state — counters
// zeroed, mirror records dropped, sequence restarted.
func TestRackReset(t *testing.T) {
	ports := testPorts(t, 1)
	r := NewRack(ports[0], 3)
	r.RequestsOut, r.ResponsesIn, r.HopCycles = 5, 4, 100
	r.mirrorSeq = 17
	r.pending[17] = &outstanding{addr: 0x40}
	r.Reset()
	if r.RequestsOut != 0 || r.ResponsesIn != 0 || r.HopCycles != 0 {
		t.Fatal("Reset left counters")
	}
	if len(r.pending) != 0 || r.mirrorSeq != 0 {
		t.Fatal("Reset left mirror state")
	}
	if len(r.freeOut) != 1 {
		t.Fatalf("dropped mirror record not recycled (free list %d)", len(r.freeOut))
	}
}
