package fabric

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestRingStep: the minimal ring direction must take the shorter way
// around, break equidistant ties toward +1, and report dir 0 only for
// a == b.
func TestRingStep(t *testing.T) {
	cases := []struct {
		a, b, radix, dir, dist int
	}{
		{0, 0, 8, 0, 0},
		{0, 1, 8, 1, 1},
		{0, 3, 8, 1, 3},
		{0, 4, 8, 1, 4}, // equidistant: tie toward +1
		{0, 5, 8, -1, 3},
		{0, 7, 8, -1, 1},
		{6, 1, 8, 1, 3}, // wraparound forward
		{1, 6, 8, -1, 3},
		{0, 2, 4, 1, 2}, // radix-4 tie
		{3, 1, 4, 1, 2},
	}
	for _, c := range cases {
		dir, dist := ringStep(c.a, c.b, c.radix)
		if dir != c.dir || dist != c.dist {
			t.Errorf("ringStep(%d, %d, %d) = (%d, %d), want (%d, %d)",
				c.a, c.b, c.radix, dir, dist, c.dir, c.dist)
		}
	}
}

// TestCoordsNeighborRoundTrip: Coords must invert x + r*y + r²*z, and one
// hop out followed by one hop back must return to the start, for every
// coordinate, dimension and direction.
func TestCoordsNeighborRoundTrip(t *testing.T) {
	topo := NewTorus3D(4)
	for c := 0; c < topo.Nodes(); c++ {
		x, y, z := topo.Coords(c)
		if got := x + 4*y + 16*z; got != c {
			t.Fatalf("Coords(%d) = (%d,%d,%d) re-encodes to %d", c, x, y, z, got)
		}
		for dim := 0; dim < 3; dim++ {
			for _, dir := range []int{1, -1} {
				n := topo.neighbor(c, dim, dir)
				if topo.Hops(c, n) != 1 {
					t.Fatalf("neighbor(%d, dim %d, dir %d) = %d is %d hops away",
						c, dim, dir, n, topo.Hops(c, n))
				}
				if back := topo.neighbor(n, dim, -dir); back != c {
					t.Fatalf("neighbor round trip %d -> %d -> %d", c, n, back)
				}
			}
		}
	}
}

// TestLinkIndexBijective: every (coord, dim, dir) names a distinct link
// index inside the radix³ x 6 table.
func TestLinkIndexBijective(t *testing.T) {
	topo := NewTorus3D(4)
	seen := make(map[int]bool)
	for c := 0; c < topo.Nodes(); c++ {
		for dim := 0; dim < 3; dim++ {
			for _, dir := range []int{1, -1} {
				li := linkIndex(c, dim, dir)
				if li < 0 || li >= topo.Nodes()*linksPerCoord {
					t.Fatalf("linkIndex(%d, %d, %d) = %d out of range", c, dim, dir, li)
				}
				if seen[li] {
					t.Fatalf("linkIndex(%d, %d, %d) = %d collides", c, dim, dir, li)
				}
				seen[li] = true
			}
		}
	}
}

// TestRoutePolicyString: the names are the CLI vocabulary.
func TestRoutePolicyString(t *testing.T) {
	for rp, want := range map[RoutePolicy]string{
		RouteNone: "off", RouteDOR: "dor", RouteAdaptive: "adaptive",
	} {
		if rp.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(rp), rp.String(), want)
		}
	}
}

// routeHops walks a block from coordinate cur to coordinate to under the
// fabric's policy, counting hops (without simulating time or credits).
func routeHops(x *Interconnect, cur, to int) int {
	hops := 0
	for cur != to {
		li := x.nextLink(cur, to)
		rest := li % linksPerCoord
		dir := 1
		if rest%2 == 1 {
			dir = -1
		}
		cur = x.topo.neighbor(li/linksPerCoord, rest/2, dir)
		hops++
		if hops > 3*x.topo.Radix {
			return -1 // livelock: never minimal
		}
	}
	return hops
}

// congestedFixture builds a bare Interconnect with only the routing state
// populated — enough for nextLink, which reads topo, routing and links.
func congestedFixture(radix int, policy RoutePolicy) *Interconnect {
	topo := NewTorus3D(radix)
	return &Interconnect{
		topo:    topo,
		routing: policy,
		links:   make([]link, topo.Nodes()*linksPerCoord),
	}
}

// TestRoutingMinimal: both policies must produce minimal paths — exactly
// Torus3D.Hops(a, b) hops — for every coordinate pair, even when the
// adaptive policy routes around arbitrary link loads.
func TestRoutingMinimal(t *testing.T) {
	for _, policy := range []RoutePolicy{RouteDOR, RouteAdaptive} {
		x := congestedFixture(4, policy)
		f := func(a, b uint8, load uint8) bool {
			from, to := int(a)%x.topo.Nodes(), int(b)%x.topo.Nodes()
			// Perturb adaptive choices with arbitrary (deterministically
			// derived) occupancies; minimality must not depend on load.
			for i := range x.links {
				x.links[i].occ = int32((int(load) + i*7) % 5)
			}
			return routeHops(x, from, to) == x.topo.Hops(from, to)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", policy, err)
		}
	}
}

// TestNextLinkDOR: dimension order is x before y before z, minimal ring
// direction within each.
func TestNextLinkDOR(t *testing.T) {
	x := congestedFixture(4, RouteDOR)
	from := 0
	to := 1 + 4*2 + 16*3 // (1, 2, 3): +x first, then y (tie -> +), then -z
	if li := x.nextLink(from, to); li != linkIndex(0, 0, 1) {
		t.Fatalf("DOR first hop = link %d, want +x (%d)", li, linkIndex(0, 0, 1))
	}
	// x aligned: next dimension is y.
	aligned := 1 // (1, 0, 0)
	if li := x.nextLink(aligned, to); li != linkIndex(aligned, 1, 1) {
		t.Fatalf("DOR second dimension = link %d, want +y (%d)", li, linkIndex(aligned, 1, 1))
	}
}

// TestNextLinkAdaptive: the adaptive policy must leave the loaded
// dimension when an equally productive one is idle, and break exact load
// ties by dimension order.
func TestNextLinkAdaptive(t *testing.T) {
	x := congestedFixture(4, RouteAdaptive)
	from := 0
	to := 1 + 4*1 // (1, 1, 0): +x and +y both productive
	// Tie: both links idle -> lowest dimension (x).
	if li := x.nextLink(from, to); li != linkIndex(0, 0, 1) {
		t.Fatalf("idle tie-break = link %d, want +x (%d)", li, linkIndex(0, 0, 1))
	}
	// Load +x: the block must route +y instead.
	x.links[linkIndex(0, 0, 1)].occ = 1
	if li := x.nextLink(from, to); li != linkIndex(0, 1, 1) {
		t.Fatalf("loaded +x not avoided: link %d, want +y (%d)", li, linkIndex(0, 1, 1))
	}
	// Credit-queue population counts as load too.
	x.links[linkIndex(0, 0, 1)].occ = 0
	x.links[linkIndex(0, 0, 1)].push(1, 0)
	if li := x.nextLink(from, to); li != linkIndex(0, 1, 1) {
		t.Fatalf("queued +x not avoided: link %d, want +y (%d)", li, linkIndex(0, 1, 1))
	}
}

// TestEnableCongestionValidation: the congestion model refuses geometry it
// cannot route over, and RouteNone restores the fast path.
func TestEnableCongestionValidation(t *testing.T) {
	topo := NewTorus3D(8)
	placed := &Interconnect{topo: topo, placement: []int{0, 1}}
	cases := []struct {
		name    string
		x       *Interconnect
		policy  RoutePolicy
		credits int
		flitCyc int64
		wantErr string
	}{
		{"uniform placement", &Interconnect{topo: topo}, RouteDOR, 4, 8, "placement"},
		{"zero credits", placed, RouteDOR, 0, 8, "credit pool"},
		{"zero flit rate", placed, RouteDOR, 4, 0, "serializer rate"},
		{"unknown policy", placed, RoutePolicy(99), 4, 8, "routing policy"},
	}
	for _, c := range cases {
		err := c.x.EnableCongestion(c.policy, c.credits, c.flitCyc)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.wantErr)
		}
	}
	if err := placed.EnableCongestion(RouteAdaptive, 4, 8); err != nil {
		t.Fatal(err)
	}
	if placed.Routing() != RouteAdaptive || len(placed.links) != topo.Nodes()*linksPerCoord {
		t.Fatalf("enable: routing %v, %d links", placed.Routing(), len(placed.links))
	}
	if err := placed.EnableCongestion(RouteNone, 0, 0); err != nil {
		t.Fatal(err)
	}
	if placed.Routing() != RouteNone || placed.links != nil {
		t.Fatalf("RouteNone did not clear the link-level state")
	}
}
