// Link-level congestion model for the inter-node fabric: every directed
// edge of the rack's 3D torus is a credit/occupancy queue with a flit
// serializer, and blocks route hop by hop — dimension-ordered or
// deterministic adaptive-minimal — instead of being charged a lump-sum
// delay. Unloaded, a hop still costs exactly NetHopCycles (cut-through:
// the serializer only spaces *starts*), so the congested fabric's
// zero-load latency matches the dense-table fast path; under load,
// occupancy, queueing and credit blocking emerge per link, which is where
// incast and hot-spot behavior comes from.
package fabric

import (
	"fmt"

	"rackni/internal/noc"
)

// RoutePolicy selects how the congestion-faithful fabric routes blocks
// across the torus. RouteNone disables the link-level model entirely: the
// fabric charges precomputed lump-sum hop delays, bit-identical to the
// pre-congestion Interconnect.
type RoutePolicy int

const (
	// RouteNone: no link-level model; lump-sum per-hop latency (default).
	RouteNone RoutePolicy = iota
	// RouteDOR is dimension-ordered routing: correct x, then y, then z,
	// taking the minimal ring direction in each (ties toward +).
	RouteDOR
	// RouteAdaptive is deterministic adaptive-minimal routing: at each
	// router, take the productive dimension whose outgoing link has the
	// least occupancy + queue, ties broken by dimension order — so paths
	// stay minimal and runs stay bit-reproducible.
	RouteAdaptive
)

func (r RoutePolicy) String() string {
	switch r {
	case RouteNone:
		return "off"
	case RouteDOR:
		return "dor"
	case RouteAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("RoutePolicy(%d)", int(r))
}

// linksPerCoord is the directed torus degree: 3 dimensions x 2 directions.
const linksPerCoord = 6

// linkIndex names the directed link leaving coordinate c along dimension
// dim (0=x, 1=y, 2=z) in direction dir (+1 or -1).
func linkIndex(c, dim, dir int) int {
	bit := 0
	if dir < 0 {
		bit = 1
	}
	return c*linksPerCoord + dim*2 + bit
}

// Coords decodes a torus coordinate id into its per-dimension components
// (the inverse of x + radix*y + radix²*z).
func (t Torus3D) Coords(c int) (x, y, z int) {
	r := t.Radix
	return c % r, (c / r) % r, c / (r * r)
}

// neighbor returns the coordinate one hop from c along dim in direction
// dir, with wraparound.
func (t Torus3D) neighbor(c, dim, dir int) int {
	r := t.Radix
	x, y, z := t.Coords(c)
	switch dim {
	case 0:
		x = (x + dir + r) % r
	case 1:
		y = (y + dir + r) % r
	default:
		z = (z + dir + r) % r
	}
	return x + r*y + r*r*z
}

// ringStep returns the minimal ring direction (+1/-1) and remaining hop
// count from a to b along one dimension; dir is 0 when a == b. Equidistant
// pairs (radix/2 apart on an even ring) break toward +1, so routing is a
// pure function of the coordinates.
func ringStep(a, b, radix int) (dir, dist int) {
	fwd := (b - a + radix) % radix
	if fwd == 0 {
		return 0, 0
	}
	bwd := radix - fwd
	if fwd <= bwd {
		return 1, fwd
	}
	return -1, bwd
}

// waiter is one block parked at a router, waiting for a link credit.
type waiter struct {
	tid     int64 // transit id
	arrived int64 // engine cycle the block started waiting
}

// link is one directed torus edge's live state and per-run ledger. A block
// takes a credit when it is granted the link and returns it when it lands
// at the far router, so occupancy covers both serializer queueing and
// wire time; arrivals finding every credit taken park in the waiters FIFO
// (credit blocking — the only unbounded queue, and it holds no upstream
// resources, so there is no circular wait).
type link struct {
	occ      int32 // credits currently taken
	nextFree int64 // earliest cycle the serializer can start the next block

	waiters []waiter
	whead   int // FIFO head; compacted when the queue drains

	// Per-run ledger (zeroed with the rest of the link state by Reset).
	granted  int64 // credits granted
	returned int64 // credits returned
	occHW    int32 // occupancy high-water mark
	queued   int64 // cycles blocks spent waiting on the serializer
	blocked  int64 // cycles blocks spent waiting on a credit
	flits    int64 // flits serialized onto the wire
}

// queueLen is the number of blocks credit-blocked at this link.
func (l *link) queueLen() int { return len(l.waiters) - l.whead }

// push parks a transit at the link's credit queue.
func (l *link) push(tid, now int64) { l.waiters = append(l.waiters, waiter{tid, now}) }

// pop removes and returns the head waiter; the caller checked queueLen.
func (l *link) pop() waiter {
	w := l.waiters[l.whead]
	l.whead++
	if l.whead == len(l.waiters) {
		l.waiters = l.waiters[:0]
		l.whead = 0
	}
	return w
}

// LinkLedger is the exported per-run snapshot of one directed torus link,
// keyed by its source coordinate, dimension and direction. Only links that
// carried (or blocked) traffic are interesting; LinkLedgers returns all of
// them and callers filter.
type LinkLedger struct {
	Coord int // source torus coordinate
	Dim   int // 0=x, 1=y, 2=z
	Dir   int // +1 or -1

	Granted       int64 // credits granted (blocks that crossed or are crossing)
	Returned      int64 // credits returned (blocks that finished crossing)
	OccupancyHW   int32 // occupancy high-water mark (≤ the credit pool)
	QueuedCycles  int64 // total cycles blocks waited on the serializer
	BlockedCycles int64 // total cycles blocks waited for a credit
	Flits         int64 // flits serialized onto the wire
}

// nextLink picks the outgoing link for a block at coordinate cur heading
// to coordinate to, under the enabled policy. cur != to.
func (x *Interconnect) nextLink(cur, to int) int {
	r := x.topo.Radix
	cx, cy, cz := x.topo.Coords(cur)
	tx, ty, tz := x.topo.Coords(to)
	var dirs [3]int
	dirs[0], _ = ringStep(cx, tx, r)
	dirs[1], _ = ringStep(cy, ty, r)
	dirs[2], _ = ringStep(cz, tz, r)
	if x.routing == RouteDOR {
		for dim, dir := range dirs {
			if dir != 0 {
				return linkIndex(cur, dim, dir)
			}
		}
		panic("fabric: nextLink called with cur == to")
	}
	// Adaptive-minimal: the least-loaded productive dimension, ties broken
	// by dimension order. Load is occupancy plus the credit queue — both
	// deterministic functions of the event history, so the choice is too.
	best, bestLoad := -1, int32(0)
	for dim, dir := range dirs {
		if dir == 0 {
			continue
		}
		li := linkIndex(cur, dim, dir)
		load := x.links[li].occ + int32(x.links[li].queueLen())
		if best < 0 || load < bestLoad {
			best, bestLoad = li, load
		}
	}
	if best < 0 {
		panic("fabric: nextLink called with cur == to")
	}
	return best
}

// transit is one block crossing the congestion-faithful fabric, pooled by
// value like xfer: tids are slot+1 and recycle LIFO.
type transit struct {
	msg    *noc.Message // delivery payload
	dst    int64        // packed delivery target (node<<32 | row)
	kind   int8         // transitRequest or transitResponse
	active bool
	cur    int32 // current torus coordinate
	to     int32 // destination torus coordinate
	flits  int32
	owner  int32 // requesting node, for per-node queued/blocked stats
}

const (
	transitRequest  int8 = iota // inbound request: delivery bumps InboundDelivered
	transitResponse             // response: delivery bumps ResponsesIn
)

// EnableCongestion switches the fabric to the link-level congestion model:
// blocks route hop by hop over per-link credit queues under the given
// policy. Requires an explicit placement (congestion is a property of real
// torus geometry; the uniform fixed-hop model has no links to contend).
// credits is the per-link credit pool (≥ 1); flitCycles the serializer's
// cycles per flit (≥ 1). Call before the first run; RouteNone restores the
// lump-sum fast path.
func (x *Interconnect) EnableCongestion(policy RoutePolicy, credits int, flitCycles int64) error {
	if policy == RouteNone {
		x.routing = RouteNone
		x.links, x.transits, x.tfree = nil, nil, nil
		x.canonical = x.canonicalEligible()
		return nil
	}
	if policy != RouteDOR && policy != RouteAdaptive {
		return fmt.Errorf("fabric: unknown routing policy %d", int(policy))
	}
	if x.nshards > 1 {
		return fmt.Errorf("fabric: the congestion model's link state is cluster-global and needs a single engine; build the cluster with one shard")
	}
	if x.placement == nil {
		return fmt.Errorf("fabric: the congestion model needs an explicit torus placement; the uniform fixed-hop fabric has no links to contend")
	}
	if credits < 1 {
		return fmt.Errorf("fabric: link credit pool %d must be at least 1", credits)
	}
	if flitCycles < 1 {
		return fmt.Errorf("fabric: link serializer rate %d cycles/flit must be at least 1", flitCycles)
	}
	x.routing = policy
	x.linkCredits = int32(credits)
	x.linkFlitCycles = flitCycles
	x.links = make([]link, x.topo.Nodes()*linksPerCoord)
	x.transits, x.tfree = nil, nil
	x.canonical = false
	return nil
}

// Routing returns the fabric's routing policy (RouteNone = lump-sum).
func (x *Interconnect) Routing() RoutePolicy { return x.routing }

// LinkLedgers snapshots every directed torus link that saw any activity
// this run, in deterministic (coordinate, dimension, direction) order.
func (x *Interconnect) LinkLedgers() []LinkLedger {
	var out []LinkLedger
	for i := range x.links {
		l := &x.links[i]
		if l.granted == 0 && l.blocked == 0 {
			continue
		}
		c, rest := i/linksPerCoord, i%linksPerCoord
		dir := 1
		if rest%2 == 1 {
			dir = -1
		}
		out = append(out, LinkLedger{
			Coord: c, Dim: rest / 2, Dir: dir,
			Granted: l.granted, Returned: l.returned, OccupancyHW: l.occHW,
			QueuedCycles: l.queued, BlockedCycles: l.blocked, Flits: l.flits,
		})
	}
	return out
}

// newTransit takes a free transit slot (or grows the pool); tids are
// slot+1 so 0 stays invalid.
func (x *Interconnect) newTransit() (int64, *transit) {
	var tid int64
	if n := len(x.tfree); n > 0 {
		tid = x.tfree[n-1]
		x.tfree = x.tfree[:n-1]
	} else {
		x.transits = append(x.transits, transit{})
		tid = int64(len(x.transits))
	}
	return tid, &x.transits[tid-1]
}

// startTransit injects one block into the link-level fabric at node from
// bound for node to; owner is the requesting node, whose ledger accrues
// the block's queued/blocked cycles on either leg. launchDelay > 0 (a
// fault-plan lateness) holds the block at its source router before the
// first hop; the nominal HopCycles ledger was already charged by the
// caller, exactly as in lump-sum mode.
func (x *Interconnect) startTransit(m *noc.Message, packed int64, kind int8, from, to, owner, flits int, launchDelay int64) {
	tid, t := x.newTransit()
	t.msg, t.dst, t.kind, t.active = m, packed, kind, true
	t.cur, t.to = int32(x.placement[from]), int32(x.placement[to])
	t.flits, t.owner = int32(flits), int32(owner)
	if launchDelay > 0 {
		x.eng.Post(launchDelay, transitLaunchEv, x, nil, tid)
		return
	}
	x.advance(tid)
}

// transitLaunchEv releases a fault-delayed block into the fabric.
func transitLaunchEv(a, _ any, tid int64) { a.(*Interconnect).advance(tid) }

// advance moves a transit one step: deliver if it has reached its
// destination coordinate, otherwise request the next link (parking in its
// credit queue if the pool is empty).
func (x *Interconnect) advance(tid int64) {
	t := &x.transits[tid-1]
	if t.cur == t.to {
		x.deliverTransit(tid)
		return
	}
	li := x.nextLink(int(t.cur), int(t.to))
	l := &x.links[li]
	if l.occ >= x.linkCredits {
		l.push(tid, x.eng.Now())
		return
	}
	x.grant(li, tid)
}

// grant gives a transit the link: take a credit, wait out the serializer
// (cycles accrued as queued time), cross the wire in hopCycles, and land
// at the far router via linkArriveEv. Cut-through: the serializer delays
// only the start, so an unloaded hop is exactly hopCycles.
func (x *Interconnect) grant(li int, tid int64) {
	l := &x.links[li]
	t := &x.transits[tid-1]
	now := x.eng.Now()
	l.occ++
	l.granted++
	if l.occ > l.occHW {
		l.occHW = l.occ
	}
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	if q := start - now; q > 0 {
		l.queued += q
		x.Counters[t.owner].FabricQueued += q
	}
	l.nextFree = start + int64(t.flits)*x.linkFlitCycles
	l.flits += int64(t.flits)
	rest := li % linksPerCoord
	dir := 1
	if rest%2 == 1 {
		dir = -1
	}
	t.cur = int32(x.topo.neighbor(li/linksPerCoord, rest/2, dir))
	x.eng.Post(start-now+x.hopCycles, linkArriveEv, x, nil, tid<<20|int64(li))
}

// linkArriveEv lands a block at the far router: return the crossed link's
// credit (waking the head of its credit queue), then advance.
func linkArriveEv(a, _ any, i int64) {
	x := a.(*Interconnect)
	tid, li := i>>20, int(i&(1<<20-1))
	l := &x.links[li]
	l.occ--
	l.returned++
	if l.queueLen() > 0 {
		w := l.pop()
		if blocked := x.eng.Now() - w.arrived; blocked > 0 {
			l.blocked += blocked
			x.Counters[x.transits[w.tid-1].owner].FabricBlocked += blocked
		}
		x.grant(li, w.tid)
	}
	x.advance(tid)
}

// deliverTransit hands a block that reached its destination coordinate to
// the target node, bumping the same delivery counters as the lump-sum
// events so ledgers are comparable across fabric models.
func (x *Interconnect) deliverTransit(tid int64) {
	t := &x.transits[tid-1]
	m, dst, kind := t.msg, t.dst, t.kind
	*t = transit{}
	x.tfree = append(x.tfree, tid)
	switch kind {
	case transitRequest:
		x.Counters[dst>>32].InboundDelivered++
	default:
		x.Counters[dst>>32].ResponsesIn++
	}
	x.outs[dst>>32][dst&0xFFFF_FFFF].Send(m)
}

// resetLinks returns the link-level state to just-built: live occupancy,
// serializers, credit queues and in-flight transits dropped (their events
// are cleared with the shared engine), ledgers zeroed.
func (x *Interconnect) resetLinks() {
	for i := range x.links {
		x.links[i] = link{}
	}
	for i := range x.transits {
		x.transits[i] = transit{}
	}
	x.transits = x.transits[:0]
	x.tfree = x.tfree[:0]
}
