package fabric

import (
	"fmt"

	rmc "rackni/internal/core"
	"rackni/internal/noc"
)

// Cluster-global addressing: a remote address may carry a target-node
// selector in its high bits, above every on-chip region. Selector 0 means
// "the default peer" — (src+1) mod N — which keeps plain single-node
// addresses (and every existing workload) meaningful on a cluster: their
// traffic goes to the next node around the ring, the natural two-node
// mirror arrangement. Selector k>0 targets node k-1 explicitly; the
// selector is stripped before the address reaches the remote node, so
// on-chip address interleaving is identical either way.
const (
	// NodeSelShift is the bit position of the target-node selector.
	NodeSelShift = 40
	// nodeSelMask bounds the selector field (4095 ≥ any rack we model).
	nodeSelMask = 0xFFF
)

// GlobalAddr returns addr targeted at the given cluster node. Targets
// that do not fit the selector field are a programming error and panic —
// letting them through would silently overflow into the default-peer
// encoding and mis-route the request.
func GlobalAddr(target int, addr uint64) uint64 {
	if target < 0 || target+1 > nodeSelMask {
		panic(fmt.Sprintf("fabric: node target %d outside the selector field [0, %d)", target, nodeSelMask-1))
	}
	return (addr &^ (uint64(nodeSelMask) << NodeSelShift)) |
		uint64(target+1)<<NodeSelShift
}

// SplitAddr separates a cluster-global address into its target-node
// selector (0 = default peer, k>0 = node k-1) and the node-local address.
func SplitAddr(addr uint64) (sel int, local uint64) {
	return int(addr>>NodeSelShift) & nodeSelMask,
		addr &^ (uint64(nodeSelMask) << NodeSelShift)
}

// LinkStats is one node's per-run view of the inter-node fabric.
type LinkStats struct {
	// RequestsOut counts block requests this node sent into the fabric.
	RequestsOut int64
	// InboundDelivered counts remote block requests handed to this node's
	// RRPPs.
	InboundDelivered int64
	// ResponsesOut counts RRPP responses this node sent back to peers.
	ResponsesOut int64
	// ResponsesIn counts responses delivered back to this node's RCPs.
	ResponsesIn int64
	// HopCycles accumulates the hop delay applied to this node's own
	// requests (outbound and return legs) — the exact counterpart of
	// Rack.HopCycles, compared bit for bit by the cross-validation tests.
	HopCycles int64
}

// Interconnect is the real inter-node fabric: it connects N fully
// simulated nodes (sharing one event engine), routing each outgoing block
// request to its target node's actual RRPPs — the remote service the
// single-node Rack only mirrors — and each RRPP response back to the
// requester, charging per-hop latency for the torus distance between the
// two nodes.
//
// Distances come from one of two models: with a Placement, nodes sit at
// explicit coordinates of the rack's 3D torus and pairwise distances are
// real Torus3D hop counts; without one, every pair (including loopback) is
// a uniform UniformHops apart — the degenerate geometry of the paper's
// fixed-hop emulation, which makes a symmetric cluster directly
// comparable against Rack.
type Interconnect struct {
	topo      Torus3D
	placement []int // torus coordinates per node; nil = uniform distances
	uniform   int   // uniform pairwise hop count when placement is nil
	hopCycles int64 // cycles per inter-node hop

	ports []NodePort
	outs  [][]*noc.Outbox // [node][row] injection ports

	seq     uint64
	pending map[uint64]*xfer
	free    []*xfer

	// Counters is the per-node accounting, reset per run by the cluster's
	// run entry points.
	Counters []LinkStats
	// Traffic[i][j] counts block requests node i sent to node j.
	Traffic [][]int64
}

// xfer is one in-flight block transfer crossing the fabric.
type xfer struct {
	nr       *rmc.NetReq
	addr     uint64 // original (global) address
	src, dst int
}

// NewInterconnect wires the fabric to every node's network ports.
// placement, when non-nil, gives each node's torus coordinate (distinct,
// in range); when nil every pair of nodes is uniformHops apart.
func NewInterconnect(topo Torus3D, placement []int, uniformHops int, ports []NodePort) (*Interconnect, error) {
	n := len(ports)
	if n == 0 {
		return nil, fmt.Errorf("fabric: interconnect needs at least one node")
	}
	if n > nodeSelMask-1 {
		return nil, fmt.Errorf("fabric: %d nodes exceed the %d-node address selector", n, nodeSelMask-1)
	}
	if placement != nil {
		if len(placement) != n {
			return nil, fmt.Errorf("fabric: placement names %d positions for %d nodes", len(placement), n)
		}
		seen := make(map[int]bool, n)
		for i, p := range placement {
			if p < 0 || p >= topo.Nodes() {
				return nil, fmt.Errorf("fabric: placement[%d]=%d outside the %d-node torus", i, p, topo.Nodes())
			}
			if seen[p] {
				return nil, fmt.Errorf("fabric: placement %d used twice", p)
			}
			seen[p] = true
		}
	} else if uniformHops < 0 {
		return nil, fmt.Errorf("fabric: negative uniform hop count %d", uniformHops)
	}
	base := ports[0].Env.Cfg
	for i, p := range ports {
		// One engine, one clock: every node must tick the shared wheel in
		// the same time base for hop delays to mean the same thing.
		if p.Env.Cfg.ClockGHz != base.ClockGHz || p.Env.Cfg.NetHopNS != base.NetHopNS {
			return nil, fmt.Errorf("fabric: node %d clock domain (%.2f GHz, %.1f ns/hop) differs from node 0 (%.2f GHz, %.1f ns/hop)",
				i, p.Env.Cfg.ClockGHz, p.Env.Cfg.NetHopNS, base.ClockGHz, base.NetHopNS)
		}
	}
	x := &Interconnect{
		topo: topo, placement: placement, uniform: uniformHops,
		hopCycles: base.NetHopCycles(),
		ports:     ports,
		outs:      make([][]*noc.Outbox, n),
		pending:   make(map[uint64]*xfer),
		Counters:  make([]LinkStats, n),
		Traffic:   make([][]int64, n),
	}
	for i := range ports {
		x.Traffic[i] = make([]int64, n)
		x.outs[i] = make([]*noc.Outbox, ports[i].Ports)
		p := ports[i]
		idx := i
		handler := func(m *noc.Message) { x.handle(idx, m) }
		for row := 0; row < p.Ports; row++ {
			id := noc.NetID(row)
			x.outs[i][row] = noc.NewOutbox(p.Env.Net, id)
			p.Env.Net.Register(id, handler)
		}
	}
	return x, nil
}

// NodeCount returns the number of attached nodes.
func (x *Interconnect) NodeCount() int { return len(x.ports) }

// Dist returns the hop distance between two cluster nodes.
func (x *Interconnect) Dist(a, b int) int {
	if x.placement == nil {
		return x.uniform
	}
	return x.topo.Hops(x.placement[a], x.placement[b])
}

// DefaultPeer returns the node a selector-less address from src targets.
func (x *Interconnect) DefaultPeer(src int) int { return (src + 1) % len(x.ports) }

// ResetCounters zeroes the per-run accounting. In-flight transfer records
// are untouched.
func (x *Interconnect) ResetCounters() {
	for i := range x.Counters {
		x.Counters[i] = LinkStats{}
		for j := range x.Traffic[i] {
			x.Traffic[i][j] = 0
		}
	}
}

// handle consumes one message a node injected at its network ports.
func (x *Interconnect) handle(node int, m *noc.Message) {
	switch m.Kind {
	case rmc.KNetRequest:
		x.onRequest(node, m)
	case rmc.KNetOutbound:
		x.onResponse(node, m)
	default:
		panic(fmt.Sprintf("fabric: unexpected kind %d at node %d network router", m.Kind, node))
	}
	noc.Release(m)
}

// packDst packs the delivery coordinates into one event argument.
func packDst(node, row int) int64 { return int64(node)<<32 | int64(row) }

// onRequest routes one outgoing block request to its target node's RRPP
// row, after the inter-node hops.
func (x *Interconnect) onRequest(src int, m *noc.Message) {
	nr := m.Meta.(*rmc.NetReq)
	sel, local := SplitAddr(m.Addr)
	dst := x.DefaultPeer(src)
	if sel > 0 {
		dst = sel - 1
		if dst >= len(x.ports) {
			panic(fmt.Sprintf("fabric: node %d addressed nonexistent node %d (cluster has %d)", src, dst, len(x.ports)))
		}
	}
	x.seq++
	txn := x.seq
	var o *xfer
	if n := len(x.free); n > 0 {
		o = x.free[n-1]
		x.free = x.free[:n-1]
		o.nr, o.addr, o.src, o.dst = nr, m.Addr, src, dst
	} else {
		o = &xfer{nr: nr, addr: m.Addr, src: src, dst: dst}
	}
	x.pending[txn] = o

	flits := x.ports[dst].Env.Cfg.ReqHeaderFlits
	if nr.Op == rmc.OpWrite {
		flits += x.ports[dst].Env.Cfg.BlockBytes / x.ports[dst].Env.Cfg.LinkBytes
	}
	row := x.ports[dst].HomeRow(local)
	inbound := noc.NewMessage()
	inbound.VN, inbound.Class = noc.VNReq, noc.ClassRequest
	inbound.Src, inbound.Dst = noc.NetID(row), x.ports[dst].RRPPAt(row)
	inbound.Flits, inbound.Kind = flits, rmc.KNetInbound
	inbound.Addr, inbound.Txn, inbound.A = local, txn, int64(nr.Op)
	inbound.B = int64(src) // source-node tag, echoed by the RRPP's response

	delay := int64(x.Dist(src, dst)) * x.hopCycles
	x.Counters[src].RequestsOut++
	x.Counters[src].HopCycles += delay
	x.Traffic[src][dst]++
	x.ports[src].Env.Eng.Post(delay, xconnInboundEv, x, inbound, packDst(dst, row))
}

// xconnInboundEv lands a request at its target node's RRPP row after the
// inter-node hops. InboundDelivered counts here — at delivery, matching
// ResponsesIn — so a cut-short run's ledger reflects only blocks the
// RRPPs actually saw.
func xconnInboundEv(a, b any, dst int64) {
	x := a.(*Interconnect)
	x.Counters[dst>>32].InboundDelivered++
	x.outs[dst>>32][dst&0xFFFF_FFFF].Send(b.(*noc.Message))
}

// onResponse routes an RRPP's response back to the requesting node, after
// the return hops.
func (x *Interconnect) onResponse(node int, m *noc.Message) {
	o, ok := x.pending[m.Txn]
	if !ok {
		panic(fmt.Sprintf("fabric: response for unknown transfer txn %d", m.Txn))
	}
	// Protocol validation: the servicing node and its RRPP's echoed
	// source tag must both match the transfer record. A mismatch means the
	// two implementations of "the rack" disagree about who asked.
	if node != o.dst {
		panic(fmt.Sprintf("fabric: txn %d serviced by node %d, was sent to node %d", m.Txn, node, o.dst))
	}
	if m.B != int64(o.src) {
		panic(fmt.Sprintf("fabric: txn %d response tagged for node %d, belongs to node %d", m.Txn, m.B, o.src))
	}
	delete(x.pending, m.Txn)
	flits := 1
	if o.nr.Op == rmc.OpRead {
		flits = x.ports[o.src].Env.Cfg.BlockFlits()
	}
	row := x.ports[o.src].RowOf(o.nr.ReturnTo)
	resp := noc.NewMessage()
	resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
	resp.Src, resp.Dst = noc.NetID(row), o.nr.ReturnTo
	resp.Flits, resp.Kind = flits, rmc.KNetResponse
	resp.Addr, resp.Meta = o.addr, o.nr

	src, dst := o.src, o.dst
	o.nr = nil
	x.free = append(x.free, o)
	delay := int64(x.Dist(dst, src)) * x.hopCycles
	x.Counters[src].HopCycles += delay
	x.Counters[dst].ResponsesOut++
	x.ports[src].Env.Eng.Post(delay, xconnRespEv, x, resp, packDst(src, row))
}

// xconnRespEv lands a response back at the requesting node after the
// return hops.
func xconnRespEv(a, b any, dst int64) {
	x := a.(*Interconnect)
	x.Counters[dst>>32].ResponsesIn++
	x.outs[dst>>32][dst&0xFFFF_FFFF].Send(b.(*noc.Message))
}
