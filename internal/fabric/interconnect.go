package fabric

import (
	"fmt"

	rmc "rackni/internal/core"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// Cluster-global addressing: a remote address may carry a target-node
// selector in its high bits, above every on-chip region. Selector 0 means
// "the default peer" — (src+1) mod N — which keeps plain single-node
// addresses (and every existing workload) meaningful on a cluster: their
// traffic goes to the next node around the ring, the natural two-node
// mirror arrangement. Selector k>0 targets node k-1 explicitly; the
// selector is stripped before the address reaches the remote node, so
// on-chip address interleaving is identical either way.
//
// Address-space contract: the node-local address space is at most 1 TiB —
// a node-local address must fit below bit NodeSelShift (40). Explicit
// cluster-global addresses are produced ONLY by GlobalAddr, which places
// the target-node selector in bits [40,52) and sets the globalBit marker;
// the marker is what makes intent unambiguous. A workload that
// manufactures a "local" address with stray bits at or above bit 40 (but
// no marker) is a contract violation — before the marker existed such an
// address was silently reinterpreted as an explicit target and mis-routed
// to whichever node the stray bits named. CheckRemoteAddr is the boundary
// validation cluster members apply at request-issue time, and the fabric
// itself rejects out-of-contract addresses on arrival, so the violation
// fails loudly instead of landing on the wrong node.
const (
	// NodeSelShift is the bit position of the target-node selector.
	NodeSelShift = 40
	// nodeSelMask bounds the selector field (4095 ≥ any rack we model).
	nodeSelMask = 0xFFF
	// MaxNodes is the largest cluster the selector can address: targets
	// are [0, nodeSelMask-1], so at most nodeSelMask nodes exist.
	MaxNodes = nodeSelMask
	// globalBit marks an address as an explicit GlobalAddr encoding.
	globalBit = uint64(1) << 63
	// selField is everything GlobalAddr owns: selector plus marker.
	selField = uint64(nodeSelMask)<<NodeSelShift | globalBit
)

// GlobalAddr returns addr targeted at the given cluster node. Targets
// that do not fit the selector field are a programming error and panic —
// letting them through would silently overflow into the default-peer
// encoding and mis-route the request. Valid targets are [0, nodeSelMask-1]
// = [0, 4094]: target+1 must fit the 12-bit selector with 0 reserved for
// "default peer".
func GlobalAddr(target int, addr uint64) uint64 {
	if target < 0 || target+1 > nodeSelMask {
		panic(fmt.Sprintf("fabric: node target %d outside the selector field [0, %d]", target, nodeSelMask-1))
	}
	return (addr &^ selField) | uint64(target+1)<<NodeSelShift | globalBit
}

// SplitAddr separates a cluster-global address into its target-node
// selector (0 = default peer, k>0 = node k-1) and the node-local address.
// Only explicit GlobalAddr encodings (marker bit set) carry a selector;
// every other address is node-local as-is — including, unchanged, any
// out-of-contract stray bits, which the fabric and the issue-boundary
// check reject loudly rather than reinterpret.
func SplitAddr(addr uint64) (sel int, local uint64) {
	if addr&globalBit == 0 {
		return 0, addr
	}
	return int(addr>>NodeSelShift) & nodeSelMask, addr &^ selField
}

// CheckRemoteAddr validates a remote address against the cluster
// addressing contract for a rack of `nodes` nodes: the node-local part
// must fit the ≤1 TiB node-local space — a non-GlobalAddr address with
// any bit at or above 40 set violates the contract (the pre-marker
// encoding silently mis-routed exactly these) — and an explicit selector
// must name an existing node. Cluster members apply it at the
// request-issue boundary so violations fail the run loudly instead of
// landing on the wrong node.
func CheckRemoteAddr(addr uint64, nodes int) error {
	sel, local := SplitAddr(addr)
	if local >= 1<<NodeSelShift {
		return fmt.Errorf("fabric: remote address %#x is outside the 1 TiB node-local space (stray bits in or above the node-selector field [40,52)); target a node explicitly with GlobalAddr/TargetNode", addr)
	}
	if sel > nodes {
		return fmt.Errorf("fabric: remote address %#x selects node %d, but the cluster has %d nodes", addr, sel-1, nodes)
	}
	return nil
}

// LinkStats is one node's per-run view of the inter-node fabric.
type LinkStats struct {
	// RequestsOut counts block requests this node sent into the fabric.
	RequestsOut int64
	// InboundDelivered counts remote block requests handed to this node's
	// RRPPs.
	InboundDelivered int64
	// ResponsesOut counts RRPP responses this node sent back to peers.
	ResponsesOut int64
	// ResponsesIn counts responses delivered back to this node's RCPs.
	ResponsesIn int64
	// HopCycles accumulates the hop delay applied to this node's own
	// requests (outbound and return legs) — the exact counterpart of
	// Rack.HopCycles, compared bit for bit by the cross-validation tests.
	HopCycles int64
	// Drops counts this node's own messages (either leg) lost to the fault
	// plan — silent drops, detected corruption, and outages alike.
	Drops int64
	// Corrupt counts the subset of Drops caused by detected corruption.
	Corrupt int64
	// Delayed counts this node's own messages the fault plan made late.
	Delayed int64
	// FabricQueued accumulates the cycles this node's requests spent
	// waiting on link serializers under the congestion model (0 when the
	// fabric charges lump-sum delays).
	FabricQueued int64
	// FabricBlocked accumulates the cycles this node's requests spent
	// credit-blocked at routers under the congestion model.
	FabricBlocked int64
}

// Interconnect is the real inter-node fabric: it connects N fully
// simulated nodes (sharing one event engine), routing each outgoing block
// request to its target node's actual RRPPs — the remote service the
// single-node Rack only mirrors — and each RRPP response back to the
// requester, charging per-hop latency for the torus distance between the
// two nodes.
//
// Distances come from one of two models: with a Placement, nodes sit at
// explicit coordinates of the rack's 3D torus and pairwise distances are
// real Torus3D hop counts; without one, every pair (including loopback) is
// a uniform UniformHops apart — the degenerate geometry of the paper's
// fixed-hop emulation, which makes a symmetric cluster directly
// comparable against Rack.
//
// The fabric is on the cluster's hot path — every remote block crosses it
// twice — so the per-message work is precomputed at construction: pairwise
// hop delays live in a dense N×N cycle table (no torus coordinate math per
// message), per-op flit counts are resolved once from the shared
// configuration, and in-flight transfer records live by value in a pooled
// slice indexed by a recycling transaction id (no map operations, no
// per-transfer allocation).
type Interconnect struct {
	eng       *sim.Engine   // node 0's engine; THE engine when unsharded
	engs      []*sim.Engine // per-node engine (all equal when unsharded)
	shardOf   []int32       // shard index per node (engines in first-seen order)
	nshards   int
	topo      Torus3D
	placement []int // torus coordinates per node; nil = uniform distances
	uniform   int   // uniform pairwise hop count when placement is nil
	hopCycles int64 // cycles per inter-node hop

	// canonical switches inter-node delivery to the engine's calendar
	// pre-phase, keyed (cycle, sender, sender-sequence): delivery order
	// becomes a pure function of what was sent, never of the global event
	// posting history, which is the property that makes a K-shard run
	// bit-identical to the single-engine run. It is on exactly when the
	// geometry allows sharding at all (N >= 2, lump-sum RouteNone delays,
	// every cross-node delay >= 1 cycle), REGARDLESS of the shard count —
	// K=1 must execute the identical schedule K>1 reproduces.
	canonical bool

	// seq[i] is node i's private monotone counter for calendar keys. Each
	// node's entries are keyed by its own counter, so slots are written
	// only by the shard that owns the node.
	seq []uint64

	// xbuf[s] buffers shard s's outgoing cross-shard calendar records
	// within a window; the cluster's barrier drains them into the target
	// engines via FlushWindow. Entries are written only by shard s.
	xbuf [][]calRecord

	// dist[src*n+dst] and delay[src*n+dst] are the precomputed inter-node
	// hop counts and hop delays in cycles.
	dist  []int32
	delay []int64

	// Per-op flit counts, identical across nodes (one clock domain, one
	// block geometry — validated at construction).
	reqFlits      int // read request header
	writeReqFlits int // write request header + payload
	respFlits     int // read response payload
	ackFlits      int // write acknowledgement

	ports []NodePort
	outs  [][]*noc.Outbox // [node][row] injection ports

	// xtabs[i] holds node i's in-flight transfers (the requests IT issued).
	// Per-requester tables keep the record's whole lifecycle inside the
	// requester's shard: created at send, freed when the response (or its
	// loss verdict) arrives back. Transaction ids are per-node.
	xtabs []xferTable

	// Link-level congestion state (EnableCongestion): with routing set,
	// every block routes hop by hop through per-link credit queues instead
	// of taking the lump-sum delay. links stays nil under RouteNone, so
	// the hot path tests one pointer.
	routing        RoutePolicy
	linkCredits    int32
	linkFlitCycles int64
	links          []link
	transits       []transit
	tfree          []int64

	// plan, when non-nil, perturbs messages on both fabric legs. retryOn
	// records whether the attached nodes run request timeouts: with
	// retries, a dropped message is simply lost (the requester's timeout
	// recovers it); without, the fabric synthesizes a NACK so the loss
	// surfaces as a failed request instead of a silent hang.
	plan    *FaultPlan
	retryOn bool

	// Counters is the per-node accounting, reset per run by the cluster's
	// run entry points.
	Counters []LinkStats
	// Traffic[i][j] counts block requests node i sent to node j.
	Traffic [][]int64
}

// xfer is one in-flight block transfer crossing the fabric.
type xfer struct {
	nr       *rmc.NetReq
	addr     uint64 // original (global) address
	src, dst int32
	active   bool
}

// xferTable is one node's in-flight transfer records, by value, indexed by
// txn-1. Free slot indices recycle LIFO so the table stays dense at the
// working-set size.
type xferTable struct {
	xfers []xfer
	free  []uint64
	// peak is the node's high-water mark of live transfer records — the
	// quantity the per-QP credit window exists to bound.
	peak int
}

// take claims a free transfer slot (or grows the table) and returns its
// transaction id; ids are slot+1 so 0 stays invalid.
func (t *xferTable) take() (uint64, *xfer) {
	var txn uint64
	if n := len(t.free); n > 0 {
		txn = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.xfers = append(t.xfers, xfer{})
		txn = uint64(len(t.xfers))
	}
	if live := len(t.xfers) - len(t.free); live > t.peak {
		t.peak = live
	}
	return txn, &t.xfers[txn-1]
}

// reset zeroes the abandoned records before truncating: a cut-short run
// can leave hundreds of thousands of them, and the retained capacity would
// otherwise pin every referenced NetReq across subsequent runs.
func (t *xferTable) reset() {
	for i := range t.xfers {
		t.xfers[i] = xfer{}
	}
	t.xfers = t.xfers[:0]
	t.free = t.free[:0]
	t.peak = 0
}

// calRecord is one cross-shard calendar entry buffered at the shard edge:
// the (cycle, sender, sequence) key plus the delivery event, shipped into
// the receiving shard's engine at the next window barrier.
type calRecord struct {
	at  int64
	src int32 // calendar key: the sending node
	dst int32 // receiving node (selects the target shard's engine)
	seq uint64
	fn  sim.EventFunc
	msg *noc.Message
	i   int64
}

// NewInterconnect wires the fabric to every node's network ports.
// placement, when non-nil, gives each node's torus coordinate (distinct,
// in range); when nil every pair of nodes is uniformHops apart.
func NewInterconnect(topo Torus3D, placement []int, uniformHops int, ports []NodePort) (*Interconnect, error) {
	n := len(ports)
	if n == 0 {
		return nil, fmt.Errorf("fabric: interconnect needs at least one node")
	}
	if n > nodeSelMask-1 {
		return nil, fmt.Errorf("fabric: %d nodes exceed the %d-node address selector", n, nodeSelMask-1)
	}
	if placement != nil {
		if len(placement) != n {
			return nil, fmt.Errorf("fabric: placement names %d positions for %d nodes", len(placement), n)
		}
		seen := make(map[int]bool, n)
		for i, p := range placement {
			if p < 0 || p >= topo.Nodes() {
				return nil, fmt.Errorf("fabric: placement[%d]=%d outside the %d-node torus", i, p, topo.Nodes())
			}
			if seen[p] {
				return nil, fmt.Errorf("fabric: placement %d used twice", p)
			}
			seen[p] = true
		}
	} else if uniformHops < 0 {
		return nil, fmt.Errorf("fabric: negative uniform hop count %d", uniformHops)
	}
	base := ports[0].Env.Cfg
	for i, p := range ports {
		// One clock, one block geometry: every node must tick in the same
		// time base for hop delays to mean the same thing, and the
		// precomputed flit counts assume one link and block size across the
		// rack. (Nodes may sit on different engines — shards — as long as
		// the clock domains agree.)
		if p.Env.Cfg.ClockGHz != base.ClockGHz || p.Env.Cfg.NetHopNS != base.NetHopNS {
			return nil, fmt.Errorf("fabric: node %d clock domain (%.2f GHz, %.1f ns/hop) differs from node 0 (%.2f GHz, %.1f ns/hop)",
				i, p.Env.Cfg.ClockGHz, p.Env.Cfg.NetHopNS, base.ClockGHz, base.NetHopNS)
		}
		if p.Env.Cfg.BlockBytes != base.BlockBytes || p.Env.Cfg.LinkBytes != base.LinkBytes ||
			p.Env.Cfg.ReqHeaderFlits != base.ReqHeaderFlits {
			return nil, fmt.Errorf("fabric: node %d block/link geometry differs from node 0", i)
		}
	}
	x := &Interconnect{
		eng:  ports[0].Env.Eng,
		engs: make([]*sim.Engine, n),
		topo: topo, placement: placement, uniform: uniformHops,
		hopCycles:     base.NetHopCycles(),
		reqFlits:      base.ReqHeaderFlits,
		writeReqFlits: base.ReqHeaderFlits + base.BlockBytes/base.LinkBytes,
		respFlits:     base.BlockFlits(),
		ackFlits:      1,
		ports:         ports,
		retryOn:       base.ReqTimeout > 0,
		outs:          make([][]*noc.Outbox, n),
		seq:           make([]uint64, n),
		xtabs:         make([]xferTable, n),
		shardOf:       make([]int32, n),
		Counters:      make([]LinkStats, n),
		Traffic:       make([][]int64, n),
	}
	// Shard identity: nodes sharing an engine form a shard, numbered in
	// first-seen node order so shard layout is a pure function of the port
	// list.
	for i, p := range ports {
		x.engs[i] = p.Env.Eng
		s := int32(-1)
		for j := 0; j < i; j++ {
			if x.engs[j] == x.engs[i] {
				s = x.shardOf[j]
				break
			}
		}
		if s < 0 {
			s = int32(x.nshards)
			x.nshards++
		}
		x.shardOf[i] = s
	}
	x.xbuf = make([][]calRecord, x.nshards)
	// Dense pairwise hop-delay table: the per-message Dist call collapses
	// to one load. At the paper's full 512-node rack this is 2 MiB — small
	// next to the nodes it serves — and for uniform mode it simply repeats
	// the one configured distance.
	x.dist = make([]int32, n*n)
	x.delay = make([]int64, n*n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			d := x.distSlow(a, b)
			x.dist[a*n+b] = int32(d)
			x.delay[a*n+b] = int64(d) * x.hopCycles
		}
	}
	x.canonical = x.canonicalEligible()
	for i := range ports {
		x.Traffic[i] = make([]int64, n)
		x.outs[i] = make([]*noc.Outbox, ports[i].Ports)
		p := ports[i]
		idx := i
		handler := func(m *noc.Message) { x.handle(idx, m) }
		for row := 0; row < p.Ports; row++ {
			id := noc.NetID(row)
			x.outs[i][row] = noc.NewOutbox(p.Env.Net, id)
			p.Env.Net.Register(id, handler)
		}
	}
	return x, nil
}

// NodeCount returns the number of attached nodes.
func (x *Interconnect) NodeCount() int { return len(x.ports) }

// canonicalEligible reports whether the geometry admits calendar-ordered
// (and therefore shardable) delivery: at least two nodes, lump-sum delays
// (no link-level congestion state, which is inherently cluster-global), and
// at least one cycle of latency between every pair of distinct nodes — the
// conservative lookahead that lets a shard run a window without observing
// an out-of-order cross-shard message.
func (x *Interconnect) canonicalEligible() bool {
	n := len(x.ports)
	if n < 2 || x.routing != RouteNone {
		return false
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && x.delay[a*n+b] < 1 {
				return false
			}
		}
	}
	return true
}

// SetCanonical selects the delivery ordering for the next run: on — when
// the geometry is eligible — uses the calendar pre-phase whose order is
// reproducible across shard counts; off restores the legacy wheel path.
// Run entry points that shard (workload, service) turn it on so K=1 and
// K>1 execute the identical schedule; the single-engine microbenchmarks
// (sync latency, bandwidth) turn it off to keep their cross-validated
// legacy timing. Returns the resulting state. Call only between runs.
func (x *Interconnect) SetCanonical(on bool) bool {
	x.canonical = on && x.canonicalEligible()
	return x.canonical
}

// Sharded reports whether the attached nodes span more than one engine.
func (x *Interconnect) Sharded() bool { return x.nshards > 1 }

// NumShards returns the number of engines the nodes span.
func (x *Interconnect) NumShards() int { return x.nshards }

// Lookahead returns the conservative window W: the minimum hop delay
// between any pair of distinct nodes. Within a window [T, T+W) no node can
// receive a message sent by another node inside the same window, so shards
// advance W cycles between barriers without synchronizing. The minimum is
// taken over every node pair — not just cross-shard pairs — so the window
// boundaries, and with them the cycle at which a quiescing run's stop
// check fires, are identical at every shard count. Returns a
// practically-unbounded window for a single node.
func (x *Interconnect) Lookahead() int64 {
	w := int64(1) << 62
	n := len(x.ports)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && x.delay[a*n+b] < w {
				w = x.delay[a*n+b]
			}
		}
	}
	return w
}

// FlushWindow ships every buffered cross-shard calendar record into its
// receiving shard's engine. It must be called only at a window barrier —
// when no shard's engine is running — both for memory safety (the buffers
// and target engines are touched without locks) and because a parked
// engine legally accepts entries for its current cycle.
func (x *Interconnect) FlushWindow() {
	for s := range x.xbuf {
		buf := x.xbuf[s]
		for i := range buf {
			r := &buf[i]
			x.engs[r.dst].PostCanonical(r.at, r.src, r.seq, r.fn, x, r.msg, r.i)
			*r = calRecord{} // release the message reference
		}
		x.xbuf[s] = buf[:0]
	}
}

// postCal routes one canonical delivery event keyed by the sending node's
// counter: straight into the engine when sender and receiver share a
// shard, buffered at the shard edge otherwise. `at` must be strictly in
// the sender's future (guaranteed by cross-node delays >= 1 in canonical
// mode); cross-shard entries additionally land at or beyond the next
// barrier because delay >= Lookahead.
func (x *Interconnect) postCal(sender, recv int, at int64, fn sim.EventFunc, msg *noc.Message, i int64) {
	sq := x.seq[sender]
	x.seq[sender]++
	if x.shardOf[recv] == x.shardOf[sender] {
		x.engs[sender].PostCanonical(at, int32(sender), sq, fn, x, msg, i)
		return
	}
	s := x.shardOf[sender]
	x.xbuf[s] = append(x.xbuf[s], calRecord{at: at, src: int32(sender), dst: int32(recv), seq: sq, fn: fn, msg: msg, i: i})
}

// distSlow computes a pairwise hop distance from the topology model; used
// only to fill the dense table at construction.
func (x *Interconnect) distSlow(a, b int) int {
	if x.placement == nil {
		return x.uniform
	}
	return x.topo.Hops(x.placement[a], x.placement[b])
}

// Dist returns the hop distance between two cluster nodes (a dense-table
// lookup).
func (x *Interconnect) Dist(a, b int) int {
	return int(x.dist[a*len(x.ports)+b])
}

// DefaultPeer returns the node a selector-less address from src targets.
func (x *Interconnect) DefaultPeer(src int) int { return (src + 1) % len(x.ports) }

// CheckAddr validates a remote address against the cluster addressing
// contract (see CheckRemoteAddr); cluster members install it as their
// request-issue validator.
func (x *Interconnect) CheckAddr(addr uint64) error {
	return CheckRemoteAddr(addr, len(x.ports))
}

// SetFaults installs a fault plan built from spec, replacing any previous
// plan; a nil or inactive spec clears it, so a zero FaultSpec is literally
// a fault-free fabric.
func (x *Interconnect) SetFaults(spec *FaultSpec) error {
	if spec == nil || !spec.Active() {
		x.plan = nil
		return nil
	}
	if err := spec.Validate(len(x.ports)); err != nil {
		return err
	}
	x.plan = NewFaultPlan(*spec, len(x.ports))
	return nil
}

// Faults returns the installed fault plan, nil when the fabric is lossless.
func (x *Interconnect) Faults() *FaultPlan { return x.plan }

// PeakInFlight returns the run's high-water mark of live transfer records:
// the sum of each node's own high-water mark. (Per-node tables peak at
// different cycles, so this bounds — and may slightly exceed — the largest
// instantaneous cluster-wide population; each node's term is individually
// bounded by its QP credit windows, which is the invariant the overload
// experiments assert.)
func (x *Interconnect) PeakInFlight() int {
	total := 0
	for i := range x.xtabs {
		total += x.xtabs[i].peak
	}
	return total
}

// ResetCounters zeroes the per-run accounting. In-flight transfer records
// are untouched.
func (x *Interconnect) ResetCounters() {
	for i := range x.Counters {
		x.Counters[i] = LinkStats{}
		for j := range x.Traffic[i] {
			x.Traffic[i][j] = 0
		}
	}
}

// Reset returns the fabric to its just-built state: per-run counters
// zeroed, in-flight transfer records dropped, transaction ids restarted,
// injection ports drained. The cluster's run lifecycle (node.Session)
// calls it between runs; the events referencing dropped transfers are
// cleared with the shared engine.
func (x *Interconnect) Reset() {
	x.ResetCounters()
	for i := range x.xtabs {
		x.xtabs[i].reset()
	}
	for i := range x.seq {
		x.seq[i] = 0
	}
	for s := range x.xbuf {
		buf := x.xbuf[s]
		for i := range buf {
			buf[i] = calRecord{}
		}
		x.xbuf[s] = buf[:0]
	}
	x.resetLinks()
	if x.plan != nil {
		x.plan.Reset()
	}
	for _, rows := range x.outs {
		for _, o := range rows {
			o.Reset()
		}
	}
}

// handle consumes one message a node injected at its network ports.
func (x *Interconnect) handle(node int, m *noc.Message) {
	switch m.Kind {
	case rmc.KNetRequest:
		x.onRequest(node, m)
	case rmc.KNetOutbound:
		x.onResponse(node, m)
	default:
		panic(fmt.Sprintf("fabric: unexpected kind %d at node %d network router", m.Kind, node))
	}
	noc.Release(m)
}

// packDst packs the delivery coordinates into one event argument.
func packDst(node, row int) int64 { return int64(node)<<32 | int64(row) }

// onRequest routes one outgoing block request to its target node's RRPP
// row, after the inter-node hops. It runs in the sending node's shard:
// every counter it touches is the sender's own row, and the transfer
// record it creates lives in the sender's table.
func (x *Interconnect) onRequest(src int, m *noc.Message) {
	nr := m.Meta.(*rmc.NetReq)
	sel, local := SplitAddr(m.Addr)
	if local >= 1<<NodeSelShift {
		// Out-of-contract address that slipped past the issue boundary
		// (e.g. a v1 microbenchmark path): fail loudly, never mis-route.
		panic(fmt.Sprintf("fabric: node %d issued address %#x outside the 1 TiB node-local space (stray selector bits?)", src, m.Addr))
	}
	dst := x.DefaultPeer(src)
	if sel > 0 {
		dst = sel - 1
		if dst >= len(x.ports) {
			panic(fmt.Sprintf("fabric: node %d addressed nonexistent node %d (cluster has %d)", src, dst, len(x.ports)))
		}
	}
	delay := x.delay[src*len(x.ports)+dst]
	var extra int64
	if x.plan != nil {
		drop, corrupt, late := x.plan.judge(src, dst, x.engs[src].Now())
		if drop {
			// The request was sent (RequestsOut, Traffic) but never
			// arrives; no transfer record, no HopCycles for a hop that
			// never completed.
			x.Counters[src].RequestsOut++
			x.Traffic[src][dst]++
			x.Counters[src].Drops++
			if corrupt {
				x.Counters[src].Corrupt++
			}
			x.dropBlock(nr, m.Addr, src, delay)
			return
		}
		if late > 0 {
			// Lateness is physical, not topological: the message is late
			// on the wire but HopCycles keeps the nominal distance charge.
			x.Counters[src].Delayed++
			extra = late
			delay += late
		}
	}
	txn, o := x.xtabs[src].take()
	o.nr, o.addr, o.src, o.dst, o.active = nr, m.Addr, int32(src), int32(dst), true

	flits := x.reqFlits
	if nr.Op == rmc.OpWrite {
		flits = x.writeReqFlits
	}
	row := x.ports[dst].HomeRow(local)
	inbound := noc.NewMessage()
	inbound.VN, inbound.Class = noc.VNReq, noc.ClassRequest
	inbound.Src, inbound.Dst = noc.NetID(row), x.ports[dst].RRPPAt(row)
	inbound.Flits, inbound.Kind = flits, rmc.KNetInbound
	inbound.Addr, inbound.Txn, inbound.A = local, txn, int64(nr.Op)
	inbound.B = int64(src) // source-node tag, echoed by the RRPP's response

	x.Counters[src].RequestsOut++
	x.Counters[src].HopCycles += x.delay[src*len(x.ports)+dst]
	x.Traffic[src][dst]++
	if x.links != nil {
		// Congestion model: route the block hop by hop. A fault-plan
		// lateness holds it at the source router instead of padding the
		// lump sum; unloaded, the hop-by-hop path costs exactly delay.
		x.startTransit(inbound, packDst(dst, row), transitRequest, src, dst, src, flits, extra)
		return
	}
	if x.canonical && delay > 0 {
		x.postCal(src, dst, x.engs[src].Now()+delay, xconnInboundEv, inbound, packDst(dst, row))
		return
	}
	// Loopback (zero distance) keeps the wheel path: it never leaves the
	// sender's shard, so append order is already a pure function of the
	// node's own execution.
	x.engs[src].Post(delay, xconnInboundEv, x, inbound, packDst(dst, row))
}

// xconnInboundEv lands a request at its target node's RRPP row after the
// inter-node hops. InboundDelivered counts here — at delivery, matching
// ResponsesIn — so a cut-short run's ledger reflects only blocks the
// RRPPs actually saw.
func xconnInboundEv(a, b any, dst int64) {
	x := a.(*Interconnect)
	x.Counters[dst>>32].InboundDelivered++
	x.outs[dst>>32][dst&0xFFFF_FFFF].Send(b.(*noc.Message))
}

// Response-leg verdicts, packed with the transfer coordinates into one
// event argument (see packResp).
const (
	respDeliver = 0 // deliver: charge hops, count ResponsesIn
	respNack    = 1 // lost, no retries: synthesize a NACK to the requester
	respFree    = 2 // lost, retries armed: free the record, count the loss
)

// packResp packs a response-leg verdict for xconnCalRespEv:
// bit 0 corrupt, bit 1 late, bits [2,4) verdict, bits [4,16) requester,
// bits [16,28) servicer, bits [28,63) per-requester transaction id.
func packResp(kind int, corrupt, late bool, requester, servicer int, txn uint64) int64 {
	v := int64(txn)<<28 | int64(servicer)<<16 | int64(requester)<<4 | int64(kind)<<2
	if late {
		v |= 2
	}
	if corrupt {
		v |= 1
	}
	return v
}

// onResponse routes an RRPP's response back to the requesting node, after
// the return hops. It runs in the SERVICING node's shard, which may not be
// the requester's: in canonical mode it therefore only judges the return
// leg (the servicer's own fault stream), bumps the servicer's own
// ResponsesOut, and ships a verdict keyed by the servicer's calendar
// counter — the requester's table and counters are touched exclusively by
// xconnCalRespEv in the requester's shard.
func (x *Interconnect) onResponse(node int, m *noc.Message) {
	txn := m.Txn
	owner := int(m.B) // requesting node: the RRPP echoes the source tag
	if owner < 0 || owner >= len(x.ports) {
		panic(fmt.Sprintf("fabric: response txn %d tagged with nonexistent node %d", txn, m.B))
	}
	if x.canonical {
		src, dst := owner, node
		delay := x.delay[dst*len(x.ports)+src]
		now := x.engs[dst].Now()
		kind := respDeliver
		var corrupt bool
		var late int64
		if x.plan != nil {
			drop, corr, l := x.plan.judge(dst, src, now)
			if drop {
				corrupt = corr
				kind = respNack
				if x.retryOn {
					kind = respFree
				}
			} else if l > 0 {
				late = l
			}
		}
		x.Counters[dst].ResponsesOut++
		pk := packResp(kind, corrupt, late > 0, src, dst, txn)
		if delay > 0 {
			x.postCal(dst, src, now+delay+late, xconnCalRespEv, nil, pk)
			return
		}
		// Loopback (zero return distance, necessarily src == dst): the
		// wheel path stays inside the requester's own shard.
		x.engs[dst].Post(late, xconnCalRespEv, x, nil, pk)
		return
	}

	t := &x.xtabs[owner]
	if txn == 0 || txn > uint64(len(t.xfers)) || !t.xfers[txn-1].active {
		panic(fmt.Sprintf("fabric: response for unknown transfer txn %d at node %d", txn, owner))
	}
	o := &t.xfers[txn-1]
	// Protocol validation: the servicing node and its RRPP's echoed
	// source tag must both match the transfer record. A mismatch means the
	// two implementations of "the rack" disagree about who asked.
	if int32(node) != o.dst {
		panic(fmt.Sprintf("fabric: txn %d serviced by node %d, was sent to node %d", txn, node, o.dst))
	}
	if m.B != int64(o.src) {
		panic(fmt.Sprintf("fabric: txn %d response tagged for node %d, belongs to node %d", txn, m.B, o.src))
	}
	nr, addr, src, dst := o.nr, o.addr, int(o.src), int(o.dst)
	*o = xfer{}
	t.free = append(t.free, txn)

	delay := x.delay[dst*len(x.ports)+src]
	var extra int64
	if x.plan != nil {
		drop, corrupt, late := x.plan.judge(dst, src, x.eng.Now())
		if drop {
			// The RRPP sent its response (ResponsesOut on the servicer);
			// the loss lands on the requester's ledger.
			x.Counters[dst].ResponsesOut++
			x.Counters[src].Drops++
			if corrupt {
				x.Counters[src].Corrupt++
			}
			x.dropBlock(nr, addr, src, delay)
			return
		}
		if late > 0 {
			x.Counters[src].Delayed++
			extra = late
			delay += late
		}
	}

	flits := x.ackFlits
	if nr.Op == rmc.OpRead {
		flits = x.respFlits
	}
	row := x.ports[src].RowOf(nr.ReturnTo)
	resp := noc.NewMessage()
	resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
	resp.Src, resp.Dst = noc.NetID(row), nr.ReturnTo
	resp.Flits, resp.Kind = flits, rmc.KNetResponse
	resp.Addr, resp.Meta = addr, nr

	x.Counters[src].HopCycles += x.delay[dst*len(x.ports)+src]
	x.Counters[dst].ResponsesOut++
	if x.links != nil {
		// Return leg under the congestion model: the response enters the
		// fabric at the servicing node; its queued/blocked cycles land on
		// the requester's ledger, like every other per-message charge.
		x.startTransit(resp, packDst(src, row), transitResponse, dst, src, src, flits, extra)
		return
	}
	x.eng.Post(delay, xconnRespEv, x, resp, packDst(src, row))
}

// xconnCalRespEv resolves a response-leg verdict at the requesting node.
// It runs in the requester's shard (via its engine's calendar, or the
// wheel for loopback), so it owns the transfer record and every counter it
// touches: the record is validated and freed here, and the response — or
// NACK, or nothing for a silent loss — is delivered at this instant, which
// is exactly the arrival cycle the legacy path charged.
func xconnCalRespEv(a, _ any, pk int64) {
	x := a.(*Interconnect)
	corrupt := pk&1 != 0
	late := pk&2 != 0
	kind := int(pk>>2) & 3
	src := int(pk>>4) & nodeSelMask
	dst := int(pk>>16) & nodeSelMask
	txn := uint64(pk >> 28)
	t := &x.xtabs[src]
	if txn == 0 || txn > uint64(len(t.xfers)) || !t.xfers[txn-1].active {
		panic(fmt.Sprintf("fabric: response for unknown transfer txn %d at node %d", txn, src))
	}
	o := &t.xfers[txn-1]
	if int(o.dst) != dst {
		panic(fmt.Sprintf("fabric: txn %d serviced by node %d, was sent to node %d", txn, dst, o.dst))
	}
	if int(o.src) != src {
		panic(fmt.Sprintf("fabric: txn %d response tagged for node %d, belongs to node %d", txn, src, o.src))
	}
	nr, addr := o.nr, o.addr
	*o = xfer{}
	t.free = append(t.free, txn)

	switch kind {
	case respFree:
		// Silent loss with retries armed: the requester's timeout recovers
		// the block; only the ledger records the fault.
		x.Counters[src].Drops++
		if corrupt {
			x.Counters[src].Corrupt++
		}
		return
	case respNack:
		x.Counters[src].Drops++
		if corrupt {
			x.Counters[src].Corrupt++
		}
		nr.Nacked = true
		row := x.ports[src].RowOf(nr.ReturnTo)
		resp := noc.NewMessage()
		resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
		resp.Src, resp.Dst = noc.NetID(row), nr.ReturnTo
		resp.Flits, resp.Kind = x.ackFlits, rmc.KNetResponse
		resp.Addr, resp.Meta = addr, nr
		// A NACK bumps no delivery counters, so the zero-fault ledger
		// invariant (ResponsesIn == ResponsesOut at quiesce) keeps
		// describing real responses only.
		x.outs[src][row].Send(resp)
		return
	}
	x.Counters[src].HopCycles += x.delay[dst*len(x.ports)+src]
	if late {
		x.Counters[src].Delayed++
	}
	flits := x.ackFlits
	if nr.Op == rmc.OpRead {
		flits = x.respFlits
	}
	row := x.ports[src].RowOf(nr.ReturnTo)
	resp := noc.NewMessage()
	resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
	resp.Src, resp.Dst = noc.NetID(row), nr.ReturnTo
	resp.Flits, resp.Kind = flits, rmc.KNetResponse
	resp.Addr, resp.Meta = addr, nr
	x.Counters[src].ResponsesIn++
	x.outs[src][row].Send(resp)
}

// xconnRespEv lands a response back at the requesting node after the
// return hops.
func xconnRespEv(a, b any, dst int64) {
	x := a.(*Interconnect)
	x.Counters[dst>>32].ResponsesIn++
	x.outs[dst>>32][dst&0xFFFF_FFFF].Send(b.(*noc.Message))
}

// dropBlock disposes of a faulted block message. With request timeouts
// armed the loss is silent — the requester's retrier recovers it, and the
// orphaned NetReq is left to the garbage collector (the pool is
// best-effort). Without timeouts the fabric synthesizes a NACK back to the
// requesting core so the loss surfaces as a failed request instead of a
// silent hang; NACKs themselves are never faulted.
func (x *Interconnect) dropBlock(nr *rmc.NetReq, addr uint64, src int, delay int64) {
	if x.retryOn {
		return
	}
	nr.Nacked = true
	row := x.ports[src].RowOf(nr.ReturnTo)
	resp := noc.NewMessage()
	resp.VN, resp.Class = noc.VNResp, noc.ClassResponse
	resp.Src, resp.Dst = noc.NetID(row), nr.ReturnTo
	resp.Flits, resp.Kind = x.ackFlits, rmc.KNetResponse
	resp.Addr, resp.Meta = addr, nr
	// Request-leg NACKs bounce back to the node that just sent, so this
	// always posts into the calling shard's own engine.
	x.engs[src].Post(delay, xconnNackEv, x, resp, packDst(src, row))
}

// xconnNackEv lands a synthesized NACK at the requesting node. It bumps no
// delivery counters, so the zero-fault ledger invariant (ResponsesIn ==
// ResponsesOut at quiesce) keeps describing real responses only.
func xconnNackEv(a, b any, dst int64) {
	x := a.(*Interconnect)
	x.outs[dst>>32][dst&0xFFFF_FFFF].Send(b.(*noc.Message))
}
