package nocout

import (
	"testing"

	"rackni/internal/noc"
)

// TestNetReset: a reset fabric is empty — counters zeroed, buffers clear
// — and a replayed injection sequence delivers exactly as on a fresh net.
func TestNetReset(t *testing.T) {
	eng, cfg, n := rig(t)
	src := noc.TileID(1, 0, cfg.MeshWidth) // depth 4: full tree + FB path
	dst := noc.TileID(6, 7, cfg.MeshWidth)
	delivered := 0
	n.Register(src, func(*noc.Message) {})
	n.Register(dst, func(*noc.Message) { delivered++ })
	run := func() (int64, int64) {
		o := noc.NewOutbox(n, src) // retry-on-full, so every message lands
		for i := 0; i < 16; i++ {
			o.Send(&noc.Message{VN: noc.VNReq, Src: src, Dst: dst, Flits: 2})
		}
		eng.RunAll()
		return n.FlitsCarried(), n.BytesInjected()
	}
	f1, b1 := run()
	if delivered != 16 {
		t.Fatalf("setup delivered %d, want 16", delivered)
	}
	n.Reset()
	eng.Reset()
	if n.FlitsCarried() != 0 || n.BytesInjected() != 0 || n.Delivered() != 0 {
		t.Fatal("reset net reports nonzero counters")
	}
	f2, b2 := run()
	if f1 != f2 || b1 != b2 || delivered != 32 {
		t.Fatalf("post-reset run differs: flits %d vs %d, bytes %d vs %d, delivered %d",
			f1, f2, b1, b2, delivered)
	}
}
