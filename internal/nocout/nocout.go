// Package nocout implements the NOC-Out topology of §6.3: a
// latency-optimized interconnect for scale-out server chips (Lotfi-Kamran
// et al., MICRO 2012). The LLC tiles form a row in the middle of the chip,
// richly interconnected by a flattened butterfly that also attaches the
// memory controllers and the network router; the cores of each column are
// chained to their column's LLC tile by simple reduction (toward the LLC)
// and dispersion (away from it) networks.
//
// Geometry (for the default 8x8 chip): 8 LLC tiles; column x serves the 8
// cores at (x, 0..7), rows 0..3 above the LLC row and rows 4..7 below it,
// so a core sits 1..4 tree hops from its LLC tile at 1 cycle per hop; the
// flattened butterfly traverses 2 tiles per cycle (Table 2). The far
// smaller bank count (8 vs 64) is what makes the LLC "highly contended"
// and caps NOC-Out's peak bandwidth (§6.3.1).
//
// Like the mesh, the fabric's per-endpoint state lives in flat slices
// indexed by noc.DenseIndex and its per-hop events go through sim.Post, so
// the steady-state data path performs no map lookups and no allocations.
package nocout

import (
	"fmt"

	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// link is a serializing channel: one flit per cycle, per-subchannel
// bounded buffers, credit-style reservation toward the next link.
type link struct {
	net    *Net
	lat    int64
	width  int               // flits per cycle (FB channels and LLC-tile ports are wide)
	queues [6][]*noc.Message // VN x {up,down} is overkill; index by VN only via sub()
	qh     [6]int            // head index into queues[s]
	occ    [6]int
	cap    int
	busy   bool
	rr     int
	// next returns the following link for a message leaving this one, or
	// nil to eject at dst.
	next func(m *noc.Message) *link
	// feeders are upstream links woken when this link's buffers free.
	feeders []*link
	eject   bool
	ejectEp int // dense endpoint index served when eject is set
}

func sub(m *noc.Message) int { return int(m.VN) }

// Net is the NOC-Out fabric. It satisfies noc.Fabric.
type Net struct {
	eng *sim.Engine
	cfg *config.Config

	tiles, rows int
	handlers    []noc.Handler // by dense endpoint index

	// Per column: reduction chain (cores toward LLC) and dispersion chain
	// (LLC toward cores). chainUp[x][d] carries traffic from depth d+1 to
	// depth d (d=0 is the LLC row); chainDown[x][d] the reverse.
	chainUp   [][]*link
	chainDown [][]*link

	// fbOut[i] is FB node i's injection port onto the flattened butterfly
	// (i indexes LLC tiles 0..7, MCs 8..15, net ports 16..23).
	fbOut []*link

	// ejects holds one ejection link per registered endpoint (dense index).
	ejects []*link

	// colOfTile/depthOfTile precompute each core tile's column and tree
	// depth so routing needs no division.
	colOfTile   []int16
	depthOfTile []int16

	injectWaiters []func()
	spareWaiters  []func()

	flitsCarried  int64
	bytesInjected int64
	delivered     int64
}

const (
	fbLLC = 0
	fbMC  = 8
	fbNet = 16
)

// NewNet builds the NOC-Out fabric.
func NewNet(eng *sim.Engine, cfg *config.Config) *Net {
	rows := cfg.MeshWidth
	if cfg.MeshHeight > rows {
		rows = cfg.MeshHeight
	}
	if cfg.NOCOutLLCTiles > rows {
		rows = cfg.NOCOutLLCTiles
	}
	n := &Net{
		eng:   eng,
		cfg:   cfg,
		tiles: cfg.Tiles(),
		rows:  rows,
	}
	eps := n.tiles + 4*rows
	n.handlers = make([]noc.Handler, eps)
	n.ejects = make([]*link, eps)
	n.colOfTile = make([]int16, n.tiles)
	n.depthOfTile = make([]int16, n.tiles)
	half := cfg.MeshHeight / 2
	for t := 0; t < n.tiles; t++ {
		n.colOfTile[t] = int16(t % cfg.MeshWidth)
		y := t / cfg.MeshWidth
		if y < half {
			n.depthOfTile[t] = int16(half - y)
		} else {
			n.depthOfTile[t] = int16(y - half + 1)
		}
	}
	w := cfg.MeshWidth
	depth := cfg.MeshHeight / 2 // tree depth per half-column
	n.chainUp = make([][]*link, w)
	n.chainDown = make([][]*link, w)
	for x := 0; x < w; x++ {
		n.chainUp[x] = make([]*link, depth)
		n.chainDown[x] = make([]*link, depth)
		for d := 0; d < depth; d++ {
			n.chainUp[x][d] = n.newLink(int64(cfg.NOCOutTreeLat))
			n.chainDown[x][d] = n.newLink(int64(cfg.NOCOutTreeLat))
		}
		// Chain the links: up[d] feeds up[d-1]; the routing closures below
		// resolve next-hops dynamically, so only feeder lists matter here.
		for d := 0; d+1 < depth; d++ {
			n.chainUp[x][d].feeders = append(n.chainUp[x][d].feeders, n.chainUp[x][d+1])
			n.chainDown[x][d+1].feeders = append(n.chainDown[x][d+1].feeders, n.chainDown[x][d])
		}
	}
	n.fbOut = make([]*link, 24)
	for i := range n.fbOut {
		n.fbOut[i] = n.newLink(n.fbLatency())
		// The flattened butterfly is richly interconnected: each node has
		// several channels, modeled as a wider injection port.
		n.fbOut[i].width = 2
		n.fbOut[i].cap = 2 * n.cfg.LinkBufFlits
	}
	// Reduction chains feed the FB; FB feeds dispersion chains.
	for x := 0; x < w; x++ {
		n.fbOut[fbLLC+x].feeders = append(n.fbOut[fbLLC+x].feeders, n.chainUp[x][0])
		n.chainDown[x][0].feeders = append(n.chainDown[x][0].feeders, n.fbOut...)
	}
	n.wireRouting()
	return n
}

func (n *Net) newLink(lat int64) *link {
	return &link{net: n, lat: lat, cap: n.cfg.LinkBufFlits, width: 1}
}

// fbLatency is the flattened-butterfly traversal time: half the LLC row
// width at 2 tiles/cycle, rounded up.
func (n *Net) fbLatency() int64 {
	l := int64((n.cfg.MeshWidth + n.cfg.NOCOutFBCycle - 1) / n.cfg.NOCOutFBCycle)
	if l < 1 {
		l = 1
	}
	return l
}

// reset empties one link's buffers and transfer state.
func (l *link) reset() {
	for s := range l.queues {
		q := l.queues[s]
		for i := range q {
			q[i] = nil
		}
		l.queues[s] = q[:0]
		l.qh[s] = 0
		l.occ[s] = 0
	}
	l.busy = false
	l.rr = 0
}

// Reset returns the fabric to its just-built state: every chain, FB and
// ejection buffer emptied, blocked-injector lists dropped and counters
// zeroed, so a reused fabric behaves bit-identically to a fresh one.
// Events referencing in-flight messages are cleared with the engine by the
// run lifecycle that calls this.
func (n *Net) Reset() {
	for _, col := range n.chainUp {
		for _, l := range col {
			l.reset()
		}
	}
	for _, col := range n.chainDown {
		for _, l := range col {
			l.reset()
		}
	}
	for _, l := range n.fbOut {
		l.reset()
	}
	for _, l := range n.ejects {
		if l != nil {
			l.reset()
		}
	}
	for i := range n.injectWaiters {
		n.injectWaiters[i] = nil
	}
	n.injectWaiters = n.injectWaiters[:0]
	n.flitsCarried, n.bytesInjected, n.delivered = 0, 0, 0
}

// --- geometry helpers ---

// epIndex maps an endpoint to its dense slice index.
func (n *Net) epIndex(id noc.NodeID) int {
	return noc.DenseIndex(id, n.tiles, n.rows)
}

// colOf returns the column of a core tile.
func (n *Net) colOf(t int) int { return int(n.colOfTile[t]) }

// depthOf returns a core's tree distance from the LLC row (1..4).
func (n *Net) depthOf(t int) int { return int(n.depthOfTile[t]) }

// fbIndexOf maps an endpoint to its FB attachment, or -1 for cores.
func (n *Net) fbIndexOf(id noc.NodeID) int {
	switch {
	case noc.IsLLC(id):
		return fbLLC + noc.Row(id)
	case noc.IsMC(id):
		return fbMC + noc.Row(id)
	case noc.IsNet(id):
		return fbNet + noc.Row(id)
	case noc.IsNI(id):
		// Edge NI blocks are collocated with the LLC tiles in NOC-Out.
		return fbLLC + noc.Row(id)
	}
	return -1
}

// wireRouting installs each link's next-hop resolver.
func (n *Net) wireRouting() {
	w := n.cfg.MeshWidth
	for x := 0; x < w; x++ {
		x := x
		for d := range n.chainUp[x] {
			d := d
			n.chainUp[x][d].next = func(m *noc.Message) *link {
				// Moving toward the LLC row: after link d (arriving at
				// depth d), continue up or enter the FB.
				if d > 0 {
					return n.chainUp[x][d-1]
				}
				return n.routeFromFBRow(m, fbLLC+x)
			}
			n.chainDown[x][d].next = func(m *noc.Message) *link {
				// Moving away from the LLC row toward a core at depth
				// depthOf(dst); after link d we are at depth d+1.
				if td := n.depthOf(int(m.Dst)); td > d+1 {
					return n.chainDown[x][d+1]
				}
				return n.ejectLink(m.Dst)
			}
		}
	}
	for i := range n.fbOut {
		n.fbOut[i].next = func(m *noc.Message) *link {
			return n.afterFB(m)
		}
	}
}

// routeFromFBRow picks the next link for a message that has reached FB
// attachment `at`.
func (n *Net) routeFromFBRow(m *noc.Message, at int) *link {
	target := n.fbTarget(m)
	if target == at {
		return n.afterFB(m)
	}
	return n.fbOut[at]
}

// fbTarget returns the FB attachment nearest the destination.
func (n *Net) fbTarget(m *noc.Message) int {
	if noc.IsTile(m.Dst) {
		return fbLLC + n.colOf(int(m.Dst))
	}
	return n.fbIndexOf(m.Dst)
}

// afterFB picks the link following the FB traversal (or following arrival
// at the right attachment).
func (n *Net) afterFB(m *noc.Message) *link {
	if noc.IsTile(m.Dst) {
		return n.chainDown[n.colOf(int(m.Dst))][0]
	}
	return n.ejectLink(m.Dst)
}

func (n *Net) ejectLink(id noc.NodeID) *link {
	el := n.ejects[n.epIndex(id)]
	if el == nil {
		panic(fmt.Sprintf("nocout: message to unregistered endpoint %d", id))
	}
	return el
}

// firstLink resolves the first buffer a freshly injected message enters.
func (n *Net) firstLink(m *noc.Message) *link {
	src := m.Src
	if noc.IsTile(src) {
		x := n.colOf(int(src))
		d := n.depthOf(int(src))
		// A core injects into the reduction chain link below its depth.
		// Destination in the same column below? Still goes via the LLC row
		// (reduction then dispersion), as the trees are unidirectional.
		return n.chainUp[x][d-1]
	}
	at := n.fbIndexOf(src)
	if at < 0 {
		panic(fmt.Sprintf("nocout: unknown source %d", src))
	}
	return n.routeFromFBRow(m, at)
}

// --- noc.Fabric implementation ---

// Register attaches a delivery handler and creates the endpoint's
// ejection port, wiring the upstream links that must be woken when the
// port frees.
func (n *Net) Register(id noc.NodeID, h noc.Handler) {
	ep := n.epIndex(id)
	n.handlers[ep] = h
	el := n.newLink(1)
	el.eject = true
	el.ejectEp = ep
	el.cap = 4 * n.cfg.LinkBufFlits
	if !noc.IsTile(id) {
		el.width = 4 // fat LLC/MC/router tiles have wide local ports
	}
	n.ejects[ep] = el
	if noc.IsTile(id) {
		x := n.colOf(int(id))
		d := n.depthOf(int(id))
		n.chainDown[x][d-1].feeders = append(n.chainDown[x][d-1].feeders, el)
		el.feeders = append(el.feeders, n.chainDown[x][d-1])
	} else {
		el.feeders = append(el.feeders, n.fbOut...)
		if i := n.fbIndexOf(id); i >= fbLLC && i < fbMC {
			el.feeders = append(el.feeders, n.chainUp[i-fbLLC][0])
		}
	}
}

// Send injects a message; false when the first buffer is full.
func (n *Net) Send(m *noc.Message) bool {
	if m.Flits <= 0 {
		m.Flits = 1
	}
	l := n.firstLink(m)
	s := sub(m)
	if l.occ[s]+m.Flits > l.cap {
		return false
	}
	m.Injected = n.eng.Now()
	l.occ[s] += m.Flits
	l.queues[s] = append(l.queues[s], m)
	n.bytesInjected += int64(m.Flits * n.cfg.LinkBytes)
	l.try()
	return true
}

// WhenFree registers a one-shot retry callback; NOC-Out wakes all blocked
// injectors whenever any buffer frees (the fabric is small enough for this
// to be cheap).
func (n *Net) WhenFree(src noc.NodeID, fn func()) {
	n.injectWaiters = append(n.injectWaiters, fn)
}

// FlitsCarried returns total flit-hops moved.
func (n *Net) FlitsCarried() int64 { return n.flitsCarried }

// BytesInjected returns bytes injected into the fabric.
func (n *Net) BytesInjected() int64 { return n.bytesInjected }

// Delivered returns ejected message count.
func (n *Net) Delivered() int64 { return n.delivered }

func (n *Net) wakeInjectors() {
	if len(n.injectWaiters) == 0 {
		return
	}
	ws := n.injectWaiters
	// Swap in a retired buffer so callbacks that re-block append to a
	// different backing array than the one being drained. The spare is
	// claimed (set to nil) first: wakeInjectors re-enters itself when a
	// woken sender's injection advances another link, and the inner call
	// must not hand out the buffer this call is iterating.
	spare := n.spareWaiters
	n.spareWaiters = nil
	n.injectWaiters = spare[:0]
	for _, fn := range ws {
		fn()
	}
	for i := range ws {
		ws[i] = nil
	}
	n.spareWaiters = ws[:0]
}

// pop removes the head message of subchannel s, recycling the queue's
// backing array once drained.
func (l *link) pop(s int) {
	q := l.queues[s]
	idx := l.qh[s]
	q[idx] = nil
	if idx+1 == len(q) {
		l.queues[s] = q[:0]
		l.qh[s] = 0
	} else {
		l.qh[s] = idx + 1
	}
}

// nocoutFreeEv ends a link's serialization busy time.
func nocoutFreeEv(a, _ any, _ int64) {
	l := a.(*link)
	l.busy = false
	l.try()
}

// nocoutArriveEv lands a message in the next link's buffer after this
// link's latency.
func nocoutArriveEv(a, b any, _ int64) {
	l := a.(*link)
	m := b.(*noc.Message)
	l.queues[sub(m)] = append(l.queues[sub(m)], m)
	l.try()
}

// nocoutDeliverEv ejects a message to its endpoint handler.
func nocoutDeliverEv(a, b any, _ int64) {
	l := a.(*link)
	m := b.(*noc.Message)
	l.net.delivered++
	l.net.handlers[l.ejectEp](m)
}

// try advances a link (same credit discipline as the mesh).
func (l *link) try() {
	if l.busy {
		return
	}
	for i := 0; i < 6; i++ {
		s := (l.rr + i) % 6
		q := l.queues[s]
		if l.qh[s] == len(q) {
			continue
		}
		m := q[l.qh[s]]
		var next *link
		if !l.eject {
			next = l.next(m)
			ns := sub(m)
			if next != nil && next.occ[ns]+m.Flits > next.cap {
				continue
			}
			if next != nil {
				next.occ[ns] += m.Flits
			}
		}
		l.pop(s)
		l.occ[s] -= m.Flits
		l.rr = (s + 1) % 6
		l.busy = true
		nn := l.net
		nn.wakeInjectors()
		for _, f := range l.feeders {
			f.try()
		}
		ser := int64((m.Flits + l.width - 1) / l.width)
		nn.eng.Post(ser, nocoutFreeEv, l, nil, 0)
		if l.eject {
			nn.eng.Post(ser, nocoutDeliverEv, l, m, 0)
			return
		}
		nn.flitsCarried += int64(m.Flits)
		nn.eng.Post(ser+l.lat-1, nocoutArriveEv, next, m, 0)
		return
	}
}
