package nocout

import (
	"testing"

	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

func rig(t *testing.T) (*sim.Engine, *config.Config, *Net) {
	t.Helper()
	cfg := config.Default()
	cfg.Topology = config.NOCOut
	eng := sim.NewEngine()
	return eng, &cfg, NewNet(eng, &cfg)
}

func TestTreeDepths(t *testing.T) {
	_, cfg, n := rig(t)
	// Row 3 and row 4 hug the LLC row (depth 1); rows 0 and 7 are deepest.
	cases := map[int]int{0: 4, 3: 1, 4: 1, 7: 4}
	for row, want := range cases {
		tile := row * cfg.MeshWidth
		if got := n.depthOf(tile); got != want {
			t.Fatalf("depth(row %d)=%d want %d", row, got, want)
		}
	}
}

func TestCoreToLLCLatency(t *testing.T) {
	eng, cfg, n := rig(t)
	var at int64 = -1
	n.Register(noc.LLCID(2), func(m *noc.Message) { at = eng.Now() })
	src := noc.TileID(2, 3, cfg.MeshWidth) // depth 1, same column
	n.Register(src, func(*noc.Message) {})
	n.Send(&noc.Message{VN: noc.VNReq, Src: src, Dst: noc.LLCID(2), Flits: 1})
	eng.RunAll()
	if at < 0 {
		t.Fatal("not delivered")
	}
	// One tree hop (1 cycle) plus the ejection: must be far below a mesh
	// traversal of the same chip.
	if at > 4 {
		t.Fatalf("depth-1 core to its LLC tile took %d cycles", at)
	}
}

func TestCoreToCoreCrossColumn(t *testing.T) {
	eng, cfg, n := rig(t)
	src := noc.TileID(0, 0, cfg.MeshWidth) // depth 4, column 0
	dst := noc.TileID(7, 7, cfg.MeshWidth) // depth 4, column 7
	got := false
	n.Register(src, func(*noc.Message) {})
	n.Register(dst, func(*noc.Message) { got = true })
	n.Send(&noc.Message{VN: noc.VNResp, Src: src, Dst: dst, Flits: 5})
	eng.RunAll()
	if !got {
		t.Fatal("cross-column core-to-core failed (reduction -> FB -> dispersion)")
	}
}

func TestAllEndpointKindsReachable(t *testing.T) {
	eng, cfg, n := rig(t)
	var all []noc.NodeID
	for tile := 0; tile < cfg.Tiles(); tile++ {
		all = append(all, noc.NodeID(tile))
	}
	for i := 0; i < 8; i++ {
		all = append(all, noc.LLCID(i), noc.MCID(i), noc.NetID(i), noc.NIID(i))
	}
	got := map[noc.NodeID]bool{}
	for _, id := range all {
		id := id
		n.Register(id, func(*noc.Message) { got[id] = true })
	}
	src := noc.LLCID(0)
	for _, id := range all {
		if id == src {
			continue
		}
		if !n.Send(&noc.Message{VN: noc.VNReq, Src: src, Dst: id, Flits: 1}) {
			eng.RunAll()
			if !n.Send(&noc.Message{VN: noc.VNReq, Src: src, Dst: id, Flits: 1}) {
				t.Fatalf("send to %d rejected twice", id)
			}
		}
		eng.RunAll()
	}
	for _, id := range all {
		if id != src && !got[id] {
			t.Fatalf("endpoint %d unreachable", id)
		}
	}
}

func TestTreeSharedLinkSerializes(t *testing.T) {
	eng, cfg, n := rig(t)
	// All four cores of a half-column stream to the LLC tile through the
	// shared reduction chain: total time must reflect the shared links.
	dst := noc.LLCID(5)
	count := 0
	var last int64
	n.Register(dst, func(*noc.Message) { count++; last = eng.Now() })
	const per = 10
	for row := 0; row < 4; row++ {
		src := noc.TileID(5, row, cfg.MeshWidth)
		n.Register(src, func(*noc.Message) {})
		var pending int = per
		var pump func()
		srcID := src
		pump = func() {
			for pending > 0 {
				if !n.Send(&noc.Message{VN: noc.VNResp, Src: srcID, Dst: dst, Flits: 5}) {
					n.WhenFree(srcID, pump)
					return
				}
				pending--
			}
		}
		pump()
	}
	eng.Run(1_000_000)
	if count != 4*per {
		t.Fatalf("delivered %d of %d", count, 4*per)
	}
	// 200 flits over the shared final chain link at 1 flit/cycle.
	if last < 5*4*per {
		t.Fatalf("finished at %d — faster than the shared tree link allows (%d)", last, 5*4*per)
	}
}

func TestBackpressureNoLoss(t *testing.T) {
	eng, cfg, n := rig(t)
	dst := noc.MCID(4)
	received := 0
	n.Register(dst, func(*noc.Message) { received++ })
	total := 0
	for tile := 0; tile < cfg.Tiles(); tile++ {
		src := noc.NodeID(tile)
		n.Register(src, func(*noc.Message) {})
		var pending = 5
		total += pending
		var pump func()
		pump = func() {
			for pending > 0 {
				if !n.Send(&noc.Message{VN: noc.VNReq, Src: src, Dst: dst, Flits: 2}) {
					n.WhenFree(src, pump)
					return
				}
				pending--
			}
		}
		pump()
	}
	eng.Run(3_000_000)
	if received != total {
		t.Fatalf("received %d of %d (loss or deadlock)", received, total)
	}
}
