package noc

// The NodeID space for a WxH mesh:
//
//	0 .. W*H-1          tiles, id = y*W + x
//	NIBase + row        edge NI block of each row (west edge column)
//	MCBase + row        memory controller of each row (east edge column)
//	NetBase + row       network-router attachment point of each row
//	                    (collocated with the NI column; the chip-to-chip
//	                    router spans the NI edge, Fig. 2)
//
// The bases leave room for meshes up to 4096 tiles.
const (
	NIBase  NodeID = 1 << 12
	MCBase  NodeID = 2 << 12
	NetBase NodeID = 3 << 12
	LLCBase NodeID = 4 << 12
)

// TileID returns the NodeID of the tile at mesh coordinates (x, y).
func TileID(x, y, width int) NodeID { return NodeID(y*width + x) }

// NIID returns the NodeID of the edge NI block serving the given row.
func NIID(row int) NodeID { return NIBase + NodeID(row) }

// MCID returns the NodeID of the memory controller serving the given row.
func MCID(row int) NodeID { return MCBase + NodeID(row) }

// NetID returns the network-router attachment point at the given row.
func NetID(row int) NodeID { return NetBase + NodeID(row) }

// IsTile reports whether id addresses a mesh tile.
func IsTile(id NodeID) bool { return id >= 0 && id < NIBase }

// IsNI reports whether id addresses an edge NI block.
func IsNI(id NodeID) bool { return id >= NIBase && id < MCBase }

// IsMC reports whether id addresses a memory controller.
func IsMC(id NodeID) bool { return id >= MCBase && id < NetBase }

// IsNet reports whether id addresses a network-router port.
func IsNet(id NodeID) bool { return id >= NetBase && id < LLCBase }

// LLCID returns the NodeID of a NOC-Out LLC tile (the mesh gives each
// tile its own LLC slice instead and does not use these).
func LLCID(i int) NodeID { return LLCBase + NodeID(i) }

// IsLLC reports whether id addresses a NOC-Out LLC tile.
func IsLLC(id NodeID) bool { return id >= LLCBase }

// DenseIndex maps an endpoint id into a compact index in
// [0, tiles+4*rows): tiles first, then the NI, MC, network-router and LLC
// rows. The fabrics use it to replace per-endpoint maps with flat slices on
// the routing and delivery hot paths. rows must exceed every row index the
// fabric uses; tiles is the tile count.
func DenseIndex(id NodeID, tiles, rows int) int {
	if id < NIBase {
		return int(id)
	}
	switch {
	case id < MCBase:
		return tiles + int(id-NIBase)
	case id < NetBase:
		return tiles + rows + int(id-MCBase)
	case id < LLCBase:
		return tiles + 2*rows + int(id-NetBase)
	default:
		return tiles + 3*rows + int(id-LLCBase)
	}
}

// Row extracts the index of an NI, MC, network-router or LLC NodeID.
func Row(id NodeID) int {
	switch {
	case IsNI(id):
		return int(id - NIBase)
	case IsMC(id):
		return int(id - MCBase)
	case IsNet(id):
		return int(id - NetBase)
	case IsLLC(id):
		return int(id - LLCBase)
	}
	return -1
}
