package noc

import (
	"testing"
	"testing/quick"

	"rackni/internal/config"
	"rackni/internal/sim"
)

func testMesh(t *testing.T, mut func(*config.Config)) (*sim.Engine, *config.Config, *Mesh) {
	t.Helper()
	cfg := config.Default()
	if mut != nil {
		mut(&cfg)
	}
	eng := sim.NewEngine()
	return eng, &cfg, NewMesh(eng, &cfg)
}

func TestSingleHopLatency(t *testing.T) {
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingXY })
	var arrived int64 = -1
	dst := TileID(1, 0, cfg.MeshWidth)
	m.Register(dst, func(msg *Message) { arrived = eng.Now() })
	m.Register(TileID(0, 0, cfg.MeshWidth), func(*Message) {})
	ok := m.Send(&Message{VN: VNReq, Src: TileID(0, 0, cfg.MeshWidth), Dst: dst, Flits: 1})
	if !ok {
		t.Fatal("send rejected")
	}
	eng.RunAll()
	// One router-to-router hop (HopLatency cycles for a single flit) plus
	// the one-cycle ejection port.
	want := int64(cfg.HopLatency) + 1
	if arrived != want {
		t.Fatalf("1-flit 1-hop latency = %d, want %d", arrived, want)
	}
}

func TestManhattanLatencyXY(t *testing.T) {
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingXY })
	src := TileID(0, 0, cfg.MeshWidth)
	dst := TileID(5, 4, cfg.MeshWidth)
	var arrived int64 = -1
	m.Register(src, func(*Message) {})
	m.Register(dst, func(msg *Message) { arrived = eng.Now() })
	m.Send(&Message{VN: VNReq, Src: src, Dst: dst, Flits: 1})
	eng.RunAll()
	hops := int64(5 + 4)
	want := hops*int64(cfg.HopLatency) + 1
	if arrived != want {
		t.Fatalf("latency=%d want %d", arrived, want)
	}
}

func TestDataMessageSerialization(t *testing.T) {
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingXY })
	src := TileID(0, 0, cfg.MeshWidth)
	dst := TileID(1, 0, cfg.MeshWidth)
	var arrived int64 = -1
	m.Register(src, func(*Message) {})
	m.Register(dst, func(msg *Message) { arrived = eng.Now() })
	flits := cfg.BlockFlits() // 5
	m.Send(&Message{VN: VNResp, Src: src, Dst: dst, Flits: flits})
	eng.RunAll()
	want := int64(flits) + int64(cfg.HopLatency) - 1 + int64(flits)
	if arrived != want {
		t.Fatalf("5-flit 1-hop latency = %d, want %d", arrived, want)
	}
}

func TestAllEndpointKindsReachable(t *testing.T) {
	eng, cfg, m := testMesh(t, nil)
	got := map[NodeID]bool{}
	var all []NodeID
	for y := 0; y < cfg.MeshHeight; y++ {
		for x := 0; x < cfg.MeshWidth; x++ {
			all = append(all, TileID(x, y, cfg.MeshWidth))
		}
	}
	for r := 0; r < cfg.MeshHeight; r++ {
		all = append(all, NIID(r), MCID(r), NetID(r))
	}
	for _, id := range all {
		id := id
		m.Register(id, func(*Message) { got[id] = true })
	}
	src := TileID(3, 3, cfg.MeshWidth)
	for _, id := range all {
		if id == src {
			continue
		}
		if !m.Send(&Message{VN: VNReq, Src: src, Dst: id, Flits: 1}) {
			// Injection buffer may be momentarily full; drain then retry.
			eng.RunAll()
			if !m.Send(&Message{VN: VNReq, Src: src, Dst: id, Flits: 1}) {
				t.Fatalf("send to %d rejected twice", id)
			}
		}
		eng.RunAll()
	}
	for _, id := range all {
		if id == src {
			continue
		}
		if !got[id] {
			t.Fatalf("endpoint %d never received its message", id)
		}
	}
}

func TestZeroHopSameRouterDelivery(t *testing.T) {
	eng, cfg, m := testMesh(t, nil)
	// Network port and NI of the same row share a router (the chip-to-chip
	// router spans the NI edge); delivery must not traverse the mesh.
	m.Register(NIID(2), func(*Message) {})
	var at int64 = -1
	m.Register(NetID(2), func(*Message) { at = eng.Now() })
	m.Send(&Message{VN: VNResp, Src: NIID(2), Dst: NetID(2), Flits: 1})
	before := m.FlitsCarried()
	eng.RunAll()
	if at < 0 {
		t.Fatal("not delivered")
	}
	if m.FlitsCarried() != before {
		t.Fatal("zero-hop delivery consumed mesh links")
	}
	if at > 2 {
		t.Fatalf("zero-hop delivery took %d cycles", at)
	}
	_ = cfg
}

func TestBackpressureNoLossUnderBurst(t *testing.T) {
	for _, pol := range []config.Routing{config.RoutingXY, config.RoutingCDRNI, config.RoutingO1Turn} {
		pol := pol
		eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = pol })
		dst := MCID(3)
		received := 0
		m.Register(dst, func(*Message) { received++ })
		total := 0
		var pending []*Message
		for y := 0; y < cfg.MeshHeight; y++ {
			for x := 0; x < cfg.MeshWidth; x++ {
				src := TileID(x, y, cfg.MeshWidth)
				m.Register(src, func(*Message) {})
				for k := 0; k < 20; k++ {
					total++
					pending = append(pending, &Message{VN: VNResp, Class: ClassResponse, Src: src, Dst: dst, Flits: 5})
				}
			}
		}
		// Inject with retry-on-full, as real endpoints do.
		var pump func()
		pump = func() {
			for len(pending) > 0 {
				msg := pending[0]
				if !m.Send(msg) {
					m.WhenFree(msg.Src, pump)
					return
				}
				pending = pending[1:]
			}
		}
		pump()
		eng.Run(3_000_000)
		if received != total {
			t.Fatalf("routing %v: received %d of %d (deadlock or loss)", pol, received, total)
		}
	}
}

func TestRoutingPolicyPathShape(t *testing.T) {
	// Under the paper's modified CDR, directory-sourced traffic must be
	// routed YX (turn early, never at the edge columns) and other traffic
	// XY. We verify by checking bisection crossing behavior is sane and,
	// more directly, by checking the chosen order flag.
	_, _, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingCDRNI })
	dirMsg := &Message{Class: ClassDirectory}
	reqMsg := &Message{Class: ClassRequest}
	respMsg := &Message{Class: ClassResponse}
	if !m.chooseOrder(dirMsg) {
		t.Fatal("CDR+NI must route directory-sourced traffic YX")
	}
	if m.chooseOrder(reqMsg) || m.chooseOrder(respMsg) {
		t.Fatal("CDR+NI must route non-directory traffic XY")
	}
	_, _, m2 := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingCDR })
	if !m2.chooseOrder(reqMsg) {
		t.Fatal("CDR must route requests YX")
	}
	if m2.chooseOrder(respMsg) {
		t.Fatal("CDR must route responses XY")
	}
}

func TestLinkBandwidthLimit(t *testing.T) {
	// A single link carries at most one flit per cycle: streaming N 5-flit
	// messages across one hop must take at least 5N cycles.
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingXY })
	src := TileID(0, 0, cfg.MeshWidth)
	dst := TileID(1, 0, cfg.MeshWidth)
	m.Register(src, func(*Message) {})
	n := 0
	var done int64
	m.Register(dst, func(*Message) { n++; done = eng.Now() })
	const N = 40
	var pending int = N
	var pump func()
	pump = func() {
		for pending > 0 {
			if !m.Send(&Message{VN: VNResp, Src: src, Dst: dst, Flits: 5}) {
				m.WhenFree(src, pump)
				return
			}
			pending--
		}
	}
	pump()
	eng.RunAll()
	if n != N {
		t.Fatalf("delivered %d of %d", n, N)
	}
	if done < 5*N {
		t.Fatalf("finished at %d, faster than link bandwidth allows (%d)", done, 5*N)
	}
}

func TestFlitsCarriedAccounting(t *testing.T) {
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingXY })
	src := TileID(0, 2, cfg.MeshWidth)
	dst := TileID(4, 2, cfg.MeshWidth)
	m.Register(src, func(*Message) {})
	m.Register(dst, func(*Message) {})
	m.Send(&Message{VN: VNReq, Src: src, Dst: dst, Flits: 3})
	eng.RunAll()
	if got, want := m.FlitsCarried(), int64(3*4); got != want {
		t.Fatalf("flit-hops = %d, want %d", got, want)
	}
}

// Property: random (src,dst,policy) messages always arrive, and XY latency
// equals Manhattan-distance * hop + serialization for an unloaded mesh.
func TestPropertyRandomPairsArrive(t *testing.T) {
	f := func(sx, sy, dx, dy uint8, vnRaw uint8, flitsRaw uint8) bool {
		cfg := config.Default()
		cfg.Routing = config.RoutingO1Turn
		eng := sim.NewEngine()
		m := NewMesh(eng, &cfg)
		sxi, syi := int(sx)%8, int(sy)%8
		dxi, dyi := int(dx)%8, int(dy)%8
		src := TileID(sxi, syi, 8)
		dst := TileID(dxi, dyi, 8)
		if src == dst {
			return true
		}
		flits := 1 + int(flitsRaw)%8
		vn := VN(vnRaw % 3)
		ok := false
		m.Register(src, func(*Message) {})
		m.Register(dst, func(*Message) { ok = true })
		if !m.Send(&Message{VN: vn, Src: src, Dst: dst, Flits: flits}) {
			return false
		}
		eng.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWhenFreeFires(t *testing.T) {
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingXY })
	src := TileID(0, 0, cfg.MeshWidth)
	dst := TileID(7, 7, cfg.MeshWidth)
	m.Register(src, func(*Message) {})
	m.Register(dst, func(*Message) {})
	// Saturate the injection buffer.
	blocked := false
	for i := 0; i < 100; i++ {
		if !m.Send(&Message{VN: VNReq, Src: src, Dst: dst, Flits: 5}) {
			blocked = true
			break
		}
	}
	if !blocked {
		t.Fatal("never blocked; buffer model broken")
	}
	fired := false
	m.WhenFree(src, func() { fired = true })
	eng.RunAll()
	if !fired {
		t.Fatal("WhenFree callback never fired")
	}
}
