package noc

import (
	"fmt"

	"rackni/internal/config"
	"rackni/internal/sim"
)

// Direction of a router output port.
type dir int

const (
	dirEast dir = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// subchannel index: each virtual network is split into an XY and a YX
// subchannel so that O1Turn and the CDR variants remain deadlock-free.
const numSub = int(numVNs) * 2

func subOf(m *Message) int {
	s := int(m.VN) * 2
	if m.yx {
		s++
	}
	return s
}

// link is a directed physical channel between two routers (or a router's
// ejection port when to < 0). Each link owns the per-subchannel output
// buffers of its upstream router; occupancy is managed credit-style: space
// at the downstream buffer is reserved before a message starts crossing.
//
// Queues pop from a head index instead of re-slicing so their backing
// arrays are reused once drained; combined with the pooled events and
// messages this makes the steady-state data path allocation-free.
type link struct {
	mesh     *Mesh
	from, to int  // router indices; to == -1 for ejection
	ejectEp  int  // dense endpoint index served when to == -1
	cross    bool // crosses the vertical bisection (for utilization stats)

	queues [numSub][]*Message
	qh     [numSub]int // head index into queues[s]
	occ    [numSub]int
	cap    int
	busy   bool
	rr     int
}

// Mesh is the baseline 2D-mesh NOC. The grid has the chip's WxH tiles in
// columns 1..W; column 0 hosts the edge NI blocks and the network-router
// attachment points (the chip-to-chip router spans that edge, Fig. 2);
// column W+1 hosts the memory controllers (§4.3: NIs on one side, MCs on
// the opposite side).
//
// Every per-endpoint structure is a flat slice indexed by DenseIndex, and
// router geometry is precomputed into lookup tables, so the per-hop path
// (routeStep, try, eject) performs no map operations or divisions.
type Mesh struct {
	eng *sim.Engine
	cfg *config.Config
	rnd *sim.Rand

	gw, gh   int
	tiles    int
	hopLat   int64
	links    []*link    // [router*numDirs+dir]; nil when the port exits the grid
	inbound  [][]*link  // links whose downstream is this router
	ejects   []*link    // by dense endpoint index
	handlers []Handler  // by dense endpoint index
	epRouter []int32    // dense endpoint index -> router
	rx, ry   []int16    // router -> grid coordinates
	waiters  [][]func() // per-router blocked injectors
	spare    [][]func() // retired waiter buffers, reused to avoid churn
	freePend []bool     // per-router coalesced wakeup scheduled

	flitsCarried   int64
	flitsBisection int64
	bytesInjected  int64
	sent           int64
	delivered      int64
}

// NewMesh builds the mesh for the given configuration.
func NewMesh(eng *sim.Engine, cfg *config.Config) *Mesh {
	m := &Mesh{
		eng:    eng,
		cfg:    cfg,
		rnd:    sim.NewRand(cfg.Seed ^ 0xA5A5),
		gw:     cfg.MeshWidth + 2,
		gh:     cfg.MeshHeight,
		tiles:  cfg.Tiles(),
		hopLat: int64(cfg.HopLatency),
	}
	n := m.gw * m.gh
	m.links = make([]*link, n*int(numDirs))
	m.inbound = make([][]*link, n)
	m.waiters = make([][]func(), n)
	m.spare = make([][]func(), n)
	m.freePend = make([]bool, n)
	m.rx = make([]int16, n)
	m.ry = make([]int16, n)
	eps := m.tiles + 3*m.gh
	m.ejects = make([]*link, eps)
	m.handlers = make([]Handler, eps)
	m.epRouter = make([]int32, eps)
	for t := 0; t < m.tiles; t++ {
		x := t % cfg.MeshWidth
		y := t / cfg.MeshWidth
		m.epRouter[DenseIndex(NodeID(t), m.tiles, m.gh)] = int32(y*m.gw + x + 1)
	}
	for row := 0; row < m.gh; row++ {
		m.epRouter[DenseIndex(NIID(row), m.tiles, m.gh)] = int32(row * m.gw)
		m.epRouter[DenseIndex(NetID(row), m.tiles, m.gh)] = int32(row * m.gw)
		m.epRouter[DenseIndex(MCID(row), m.tiles, m.gh)] = int32(row*m.gw + m.gw - 1)
	}
	mid := m.gw/2 - 1 // vertical bisection between columns mid and mid+1
	for gy := 0; gy < m.gh; gy++ {
		for gx := 0; gx < m.gw; gx++ {
			r := gy*m.gw + gx
			m.rx[r] = int16(gx)
			m.ry[r] = int16(gy)
			add := func(d dir, tx, ty int) {
				if tx < 0 || tx >= m.gw || ty < 0 || ty >= m.gh {
					return
				}
				t := ty*m.gw + tx
				l := &link{mesh: m, from: r, to: t, cap: cfg.LinkBufFlits}
				if (d == dirEast && gx == mid) || (d == dirWest && gx == mid+1) {
					l.cross = true
				}
				m.links[r*int(numDirs)+int(d)] = l
				m.inbound[t] = append(m.inbound[t], l)
			}
			add(dirEast, gx+1, gy)
			add(dirWest, gx-1, gy)
			add(dirNorth, gx, gy-1)
			add(dirSouth, gx, gy+1)
		}
	}
	return m
}

// reset empties one link's buffers and transfer state.
func (l *link) reset() {
	for s := range l.queues {
		q := l.queues[s]
		for i := range q {
			q[i] = nil
		}
		l.queues[s] = q[:0]
		l.qh[s] = 0
		l.occ[s] = 0
	}
	l.busy = false
	l.rr = 0
}

// Reset returns the mesh to its just-built state: all link and ejection
// buffers emptied, blocked-injector lists dropped, counters zeroed and the
// routing randomness reseeded, so a reused fabric behaves bit-identically
// to a fresh one. Events referencing in-flight messages are cleared with
// the engine by the run lifecycle that calls this.
func (m *Mesh) Reset() {
	for _, l := range m.links {
		if l != nil {
			l.reset()
		}
	}
	for _, l := range m.ejects {
		if l != nil {
			l.reset()
		}
	}
	for r := range m.waiters {
		ws := m.waiters[r]
		for i := range ws {
			ws[i] = nil
		}
		m.waiters[r] = ws[:0]
		m.freePend[r] = false
	}
	m.rnd = sim.NewRand(m.cfg.Seed ^ 0xA5A5)
	m.flitsCarried, m.flitsBisection, m.bytesInjected = 0, 0, 0
	m.sent, m.delivered = 0, 0
}

// epIndex maps an endpoint to its dense slice index.
func (m *Mesh) epIndex(id NodeID) int {
	if IsLLC(id) {
		panic(fmt.Sprintf("noc: LLC NodeID %d on the mesh", id))
	}
	return DenseIndex(id, m.tiles, m.gh)
}

// routerOf maps an endpoint to its grid router index.
func (m *Mesh) routerOf(id NodeID) int {
	return int(m.epRouter[m.epIndex(id)])
}

// Register attaches a delivery handler and creates the endpoint's private
// ejection port.
func (m *Mesh) Register(id NodeID, h Handler) {
	ep := m.epIndex(id)
	m.handlers[ep] = h
	r := int(m.epRouter[ep])
	m.ejects[ep] = &link{mesh: m, from: r, to: -1, ejectEp: ep, cap: 4 * m.cfg.LinkBufFlits}
}

// routeStep returns the next link for msg at router r, or the ejection link
// when the destination is local. The destination router and endpoint were
// cached in the message at injection.
func (m *Mesh) routeStep(msg *Message, r int) *link {
	dst := int(msg.dstRouter)
	if dst == r {
		el := m.ejects[msg.dstEp]
		if el == nil {
			panic(fmt.Sprintf("noc: message to unregistered endpoint %d", msg.Dst))
		}
		return el
	}
	gx, gy := int(m.rx[r]), int(m.ry[r])
	dx, dy := int(m.rx[dst]), int(m.ry[dst])
	var d dir
	if msg.yx {
		switch {
		case gy < dy:
			d = dirSouth
		case gy > dy:
			d = dirNorth
		case gx < dx:
			d = dirEast
		default:
			d = dirWest
		}
	} else {
		switch {
		case gx < dx:
			d = dirEast
		case gx > dx:
			d = dirWest
		case gy < dy:
			d = dirSouth
		default:
			d = dirNorth
		}
	}
	return m.links[r*int(numDirs)+int(d)]
}

// chooseOrder applies the configured routing policy (§4.3).
func (m *Mesh) chooseOrder(msg *Message) bool {
	switch m.cfg.Routing {
	case RoutingXYConst:
		return false
	case RoutingYXConst:
		return true
	case RoutingO1TurnConst:
		return m.rnd.Bool()
	case RoutingCDRConst:
		// CDR: memory requests YX, responses XY.
		return msg.Class == ClassRequest
	default:
		// Modified CDR: directory-sourced traffic YX, everything else XY,
		// so traffic never turns at the NI or MC edge columns.
		return msg.Class == ClassDirectory
	}
}

// Aliases so this package does not import config constants by name
// everywhere (and to keep the policy switch exhaustive and local).
const (
	RoutingXYConst     = config.RoutingXY
	RoutingYXConst     = config.RoutingYX
	RoutingO1TurnConst = config.RoutingO1Turn
	RoutingCDRConst    = config.RoutingCDR
	RoutingCDRNIConst  = config.RoutingCDRNI
)

// meshDirectEv delivers a message between directly attached edge devices.
func meshDirectEv(a, b any, ep int64) {
	m := a.(*Mesh)
	msg := b.(*Message)
	m.delivered++
	m.handlers[ep](msg)
}

// Send injects a message at its source router. It returns false when the
// first buffer on the message's path has no space.
func (m *Mesh) Send(msg *Message) bool {
	if msg.Flits <= 0 {
		msg.Flits = 1
	}
	dEp := m.epIndex(msg.Dst)
	msg.dstEp = int32(dEp)
	msg.dstRouter = m.epRouter[dEp]
	// Edge devices sharing a router (the network router spans the NI edge
	// next to the RRPPs and RGP/RCP backends, §4.2) are directly attached:
	// their traffic never enters the mesh and does not serialize on a
	// router port.
	if !IsTile(msg.Src) && !IsTile(msg.Dst) {
		if src := m.epRouter[m.epIndex(msg.Src)]; src == msg.dstRouter {
			msg.Injected = m.eng.Now()
			m.sent++
			if m.handlers[dEp] == nil {
				panic(fmt.Sprintf("noc: message to unregistered endpoint %d", msg.Dst))
			}
			m.eng.Post(1, meshDirectEv, m, msg, int64(dEp))
			return true
		}
	}
	msg.yx = m.chooseOrder(msg)
	src := int(m.epRouter[m.epIndex(msg.Src)])
	l := m.routeStep(msg, src)
	s := subOf(msg)
	if l.occ[s]+msg.Flits > l.cap {
		return false
	}
	msg.Injected = m.eng.Now()
	l.occ[s] += msg.Flits
	l.queues[s] = append(l.queues[s], msg)
	m.sent++
	m.bytesInjected += int64(msg.Flits * m.cfg.LinkBytes)
	l.try()
	return true
}

// WhenFree registers a one-shot retry callback for a blocked injector.
func (m *Mesh) WhenFree(src NodeID, fn func()) {
	r := m.routerOf(src)
	m.waiters[r] = append(m.waiters[r], fn)
}

// FlitsCarried returns total flit-hops moved across router-to-router links.
func (m *Mesh) FlitsCarried() int64 { return m.flitsCarried }

// BisectionFlits returns flits that crossed the vertical bisection.
func (m *Mesh) BisectionFlits() int64 { return m.flitsBisection }

// BytesInjected returns payload+header bytes injected into mesh links (the
// paper's "aggregate bandwidth" counter; it excludes the directly attached
// edge-device traffic that never enters the mesh).
func (m *Mesh) BytesInjected() int64 { return m.bytesInjected }

// Delivered returns the number of messages ejected.
func (m *Mesh) Delivered() int64 { return m.delivered }

// meshNotifyEv is the deferred wakeup scheduled by notifyFree.
func meshNotifyEv(a, _ any, ri int64) {
	m := a.(*Mesh)
	r := int(ri)
	m.freePend[r] = false
	if ws := m.waiters[r]; len(ws) > 0 {
		// Swap in a retired buffer so callbacks that re-block can append
		// without touching the list being drained. The spare is claimed
		// (set to nil) for the duration of the drain so no other path can
		// hand out the buffer being iterated — same protocol as NOC-Out's
		// wakeInjectors.
		spare := m.spare[r]
		m.spare[r] = nil
		m.waiters[r] = spare[:0]
		for _, fn := range ws {
			fn()
		}
		for i := range ws {
			ws[i] = nil
		}
		m.spare[r] = ws[:0]
	}
	for _, l := range m.inbound[r] {
		l.try()
	}
}

// notifyFree wakes blocked injectors and upstream links of router r. The
// wakeups are coalesced to at most one per router per cycle: buffer space
// often frees many times per cycle under load, and waking every blocked
// sender on every pop turns into a retry storm (each retry recomputes a
// route just to find the buffer full again).
func (m *Mesh) notifyFree(r int) {
	if m.freePend[r] {
		return
	}
	if len(m.waiters[r]) == 0 && !m.anyInboundWaiting(r) {
		return
	}
	m.freePend[r] = true
	m.eng.Post(1, meshNotifyEv, m, nil, int64(r))
}

// anyInboundWaiting reports whether an upstream link of router r has a
// queued message (and may therefore be blocked on r's buffers).
func (m *Mesh) anyInboundWaiting(r int) bool {
	for _, l := range m.inbound[r] {
		if l.busy {
			continue
		}
		for s := range l.queues {
			if l.qh[s] < len(l.queues[s]) {
				return true
			}
		}
	}
	return false
}

// pop removes the head message of subchannel s, recycling the queue's
// backing array once drained.
func (l *link) pop(s int) {
	q := l.queues[s]
	idx := l.qh[s]
	q[idx] = nil
	if idx+1 == len(q) {
		l.queues[s] = q[:0]
		l.qh[s] = 0
	} else {
		l.qh[s] = idx + 1
	}
}

// linkFreeEv ends a link's serialization busy time.
func linkFreeEv(a, _ any, _ int64) {
	l := a.(*link)
	l.busy = false
	l.try()
}

// linkArriveEv lands a message in the next link's buffer after the hop
// latency.
func linkArriveEv(a, b any, _ int64) {
	l := a.(*link)
	msg := b.(*Message)
	s := subOf(msg)
	l.queues[s] = append(l.queues[s], msg)
	l.try()
}

// linkDeliverEv ejects a message to its endpoint handler.
func linkDeliverEv(a, b any, _ int64) {
	l := a.(*link)
	msg := b.(*Message)
	l.mesh.delivered++
	l.mesh.handlers[l.ejectEp](msg)
}

// try advances the link: if idle, pick (round-robin over subchannels) a
// head-of-queue message whose next-hop buffer has space, reserve that
// space, and start the transfer.
func (l *link) try() {
	if l.busy {
		return
	}
	for i := 0; i < numSub; i++ {
		s := (l.rr + i) % numSub
		q := l.queues[s]
		if l.qh[s] == len(q) {
			continue
		}
		msg := q[l.qh[s]]
		var next *link
		if l.to >= 0 {
			next = l.mesh.routeStep(msg, l.to)
			ns := subOf(msg)
			if next.occ[ns]+msg.Flits > next.cap {
				continue // blocked; let another subchannel use the wire
			}
			next.occ[ns] += msg.Flits
		}
		// Depart this buffer.
		l.pop(s)
		l.occ[s] -= msg.Flits
		l.rr = (s + 1) % numSub
		l.busy = true
		mesh := l.mesh
		if l.to >= 0 {
			mesh.flitsCarried += int64(msg.Flits)
			if l.cross {
				mesh.flitsBisection += int64(msg.Flits)
			}
		}
		mesh.notifyFree(l.from)
		ser := int64(msg.Flits)
		mesh.eng.Post(ser, linkFreeEv, l, nil, 0)
		if l.to >= 0 {
			mesh.eng.Post(ser+mesh.hopLat-1, linkArriveEv, next, msg, 0)
		} else {
			mesh.eng.Post(ser, linkDeliverEv, l, msg, 0)
		}
		return
	}
}
