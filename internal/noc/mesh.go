package noc

import (
	"fmt"

	"rackni/internal/config"
	"rackni/internal/sim"
)

// Direction of a router output port.
type dir int

const (
	dirEast dir = iota
	dirWest
	dirNorth
	dirSouth
	numDirs
)

// subchannel index: each virtual network is split into an XY and a YX
// subchannel so that O1Turn and the CDR variants remain deadlock-free.
const numSub = int(numVNs) * 2

func subOf(m *Message) int {
	s := int(m.VN) * 2
	if m.yx {
		s++
	}
	return s
}

// link is a directed physical channel between two routers (or a router's
// ejection port when to < 0). Each link owns the per-subchannel output
// buffers of its upstream router; occupancy is managed credit-style: space
// at the downstream buffer is reserved before a message starts crossing.
type link struct {
	mesh     *Mesh
	from, to int // router indices; to == -1 for ejection
	eject    NodeID
	cross    bool // crosses the vertical bisection (for utilization stats)

	queues [numSub][]*Message
	occ    [numSub]int
	cap    int
	busy   bool
	rr     int
}

// Mesh is the baseline 2D-mesh NOC. The grid has the chip's WxH tiles in
// columns 1..W; column 0 hosts the edge NI blocks and the network-router
// attachment points (the chip-to-chip router spans that edge, Fig. 2);
// column W+1 hosts the memory controllers (§4.3: NIs on one side, MCs on
// the opposite side).
type Mesh struct {
	eng *sim.Engine
	cfg *config.Config
	rnd *sim.Rand

	gw, gh   int
	hopLat   int64
	links    [][]*link // [router][dir]
	inbound  [][]*link // links whose downstream is this router
	ejects   map[NodeID]*link
	handlers map[NodeID]Handler
	waiters  [][]func() // per-router blocked injectors
	freePend []bool     // per-router coalesced wakeup scheduled

	flitsCarried   int64
	flitsBisection int64
	bytesInjected  int64
	sent           int64
	delivered      int64
}

// NewMesh builds the mesh for the given configuration.
func NewMesh(eng *sim.Engine, cfg *config.Config) *Mesh {
	m := &Mesh{
		eng:      eng,
		cfg:      cfg,
		rnd:      sim.NewRand(cfg.Seed ^ 0xA5A5),
		gw:       cfg.MeshWidth + 2,
		gh:       cfg.MeshHeight,
		hopLat:   int64(cfg.HopLatency),
		ejects:   make(map[NodeID]*link),
		handlers: make(map[NodeID]Handler),
	}
	n := m.gw * m.gh
	m.links = make([][]*link, n)
	m.inbound = make([][]*link, n)
	m.waiters = make([][]func(), n)
	m.freePend = make([]bool, n)
	for r := 0; r < n; r++ {
		m.links[r] = make([]*link, numDirs)
	}
	mid := m.gw/2 - 1 // vertical bisection between columns mid and mid+1
	for gy := 0; gy < m.gh; gy++ {
		for gx := 0; gx < m.gw; gx++ {
			r := gy*m.gw + gx
			add := func(d dir, tx, ty int) {
				if tx < 0 || tx >= m.gw || ty < 0 || ty >= m.gh {
					return
				}
				t := ty*m.gw + tx
				l := &link{mesh: m, from: r, to: t, cap: cfg.LinkBufFlits}
				if (d == dirEast && gx == mid) || (d == dirWest && gx == mid+1) {
					l.cross = true
				}
				m.links[r][d] = l
				m.inbound[t] = append(m.inbound[t], l)
			}
			add(dirEast, gx+1, gy)
			add(dirWest, gx-1, gy)
			add(dirNorth, gx, gy-1)
			add(dirSouth, gx, gy+1)
		}
	}
	return m
}

// routerOf maps an endpoint to its grid router index.
func (m *Mesh) routerOf(id NodeID) int {
	switch {
	case IsTile(id):
		x := int(id) % m.cfg.MeshWidth
		y := int(id) / m.cfg.MeshWidth
		return y*m.gw + (x + 1)
	case IsNI(id), IsNet(id):
		return Row(id)*m.gw + 0
	case IsMC(id):
		return Row(id)*m.gw + (m.gw - 1)
	}
	panic(fmt.Sprintf("noc: unknown NodeID %d", id))
}

// Register attaches a delivery handler and creates the endpoint's private
// ejection port.
func (m *Mesh) Register(id NodeID, h Handler) {
	m.handlers[id] = h
	r := m.routerOf(id)
	m.ejects[id] = &link{mesh: m, from: r, to: -1, eject: id, cap: 4 * m.cfg.LinkBufFlits}
}

// routeStep returns the next link for msg at router r, or the ejection link
// when the destination is local.
func (m *Mesh) routeStep(msg *Message, r int) *link {
	dst := m.routerOf(msg.Dst)
	if dst == r {
		el, ok := m.ejects[msg.Dst]
		if !ok {
			panic(fmt.Sprintf("noc: message to unregistered endpoint %d", msg.Dst))
		}
		return el
	}
	gx, gy := r%m.gw, r/m.gw
	dx, dy := dst%m.gw, dst/m.gw
	var d dir
	if msg.yx {
		switch {
		case gy < dy:
			d = dirSouth
		case gy > dy:
			d = dirNorth
		case gx < dx:
			d = dirEast
		default:
			d = dirWest
		}
	} else {
		switch {
		case gx < dx:
			d = dirEast
		case gx > dx:
			d = dirWest
		case gy < dy:
			d = dirSouth
		default:
			d = dirNorth
		}
	}
	return m.links[r][d]
}

// chooseOrder applies the configured routing policy (§4.3).
func (m *Mesh) chooseOrder(msg *Message) bool {
	switch m.cfg.Routing {
	case RoutingXYConst:
		return false
	case RoutingYXConst:
		return true
	case RoutingO1TurnConst:
		return m.rnd.Bool()
	case RoutingCDRConst:
		// CDR: memory requests YX, responses XY.
		return msg.Class == ClassRequest
	default:
		// Modified CDR: directory-sourced traffic YX, everything else XY,
		// so traffic never turns at the NI or MC edge columns.
		return msg.Class == ClassDirectory
	}
}

// Aliases so this package does not import config constants by name
// everywhere (and to keep the policy switch exhaustive and local).
const (
	RoutingXYConst     = config.RoutingXY
	RoutingYXConst     = config.RoutingYX
	RoutingO1TurnConst = config.RoutingO1Turn
	RoutingCDRConst    = config.RoutingCDR
	RoutingCDRNIConst  = config.RoutingCDRNI
)

// Send injects a message at its source router. It returns false when the
// first buffer on the message's path has no space.
func (m *Mesh) Send(msg *Message) bool {
	if msg.Flits <= 0 {
		msg.Flits = 1
	}
	// Edge devices sharing a router (the network router spans the NI edge
	// next to the RRPPs and RGP/RCP backends, §4.2) are directly attached:
	// their traffic never enters the mesh and does not serialize on a
	// router port.
	if !IsTile(msg.Src) && !IsTile(msg.Dst) {
		if src, dst := m.routerOf(msg.Src), m.routerOf(msg.Dst); src == dst {
			msg.Injected = m.eng.Now()
			m.sent++
			h := m.handlers[msg.Dst]
			if h == nil {
				panic(fmt.Sprintf("noc: message to unregistered endpoint %d", msg.Dst))
			}
			m.eng.Schedule(1, func() {
				m.delivered++
				h(msg)
			})
			return true
		}
	}
	msg.yx = m.chooseOrder(msg)
	src := m.routerOf(msg.Src)
	l := m.routeStep(msg, src)
	s := subOf(msg)
	if l.occ[s]+msg.Flits > l.cap {
		return false
	}
	msg.Injected = m.eng.Now()
	l.occ[s] += msg.Flits
	l.queues[s] = append(l.queues[s], msg)
	m.sent++
	m.bytesInjected += int64(msg.Flits * m.cfg.LinkBytes)
	l.try()
	return true
}

// WhenFree registers a one-shot retry callback for a blocked injector.
func (m *Mesh) WhenFree(src NodeID, fn func()) {
	r := m.routerOf(src)
	m.waiters[r] = append(m.waiters[r], fn)
}

// FlitsCarried returns total flit-hops moved across router-to-router links.
func (m *Mesh) FlitsCarried() int64 { return m.flitsCarried }

// BisectionFlits returns flits that crossed the vertical bisection.
func (m *Mesh) BisectionFlits() int64 { return m.flitsBisection }

// BytesInjected returns payload+header bytes injected into mesh links (the
// paper's "aggregate bandwidth" counter; it excludes the directly attached
// edge-device traffic that never enters the mesh).
func (m *Mesh) BytesInjected() int64 { return m.bytesInjected }

// Delivered returns the number of messages ejected.
func (m *Mesh) Delivered() int64 { return m.delivered }

// notifyFree wakes blocked injectors and upstream links of router r. The
// wakeups are coalesced to at most one per router per cycle: buffer space
// often frees many times per cycle under load, and waking every blocked
// sender on every pop turns into a retry storm (each retry recomputes a
// route just to find the buffer full again).
func (m *Mesh) notifyFree(r int) {
	if m.freePend[r] {
		return
	}
	if len(m.waiters[r]) == 0 && !m.anyInboundWaiting(r) {
		return
	}
	m.freePend[r] = true
	m.eng.Schedule(1, func() {
		m.freePend[r] = false
		if ws := m.waiters[r]; len(ws) > 0 {
			m.waiters[r] = nil
			for _, fn := range ws {
				fn()
			}
		}
		for _, l := range m.inbound[r] {
			l.try()
		}
	})
}

// anyInboundWaiting reports whether an upstream link of router r has a
// queued message (and may therefore be blocked on r's buffers).
func (m *Mesh) anyInboundWaiting(r int) bool {
	for _, l := range m.inbound[r] {
		if l.busy {
			continue
		}
		for s := range l.queues {
			if len(l.queues[s]) > 0 {
				return true
			}
		}
	}
	return false
}

// try advances the link: if idle, pick (round-robin over subchannels) a
// head-of-queue message whose next-hop buffer has space, reserve that
// space, and start the transfer.
func (l *link) try() {
	if l.busy {
		return
	}
	for i := 0; i < numSub; i++ {
		s := (l.rr + i) % numSub
		q := l.queues[s]
		if len(q) == 0 {
			continue
		}
		msg := q[0]
		var next *link
		if l.to >= 0 {
			next = l.mesh.routeStep(msg, l.to)
			ns := subOf(msg)
			if next.occ[ns]+msg.Flits > next.cap {
				continue // blocked; let another subchannel use the wire
			}
			next.occ[ns] += msg.Flits
		}
		// Depart this buffer.
		l.queues[s] = q[1:]
		l.occ[s] -= msg.Flits
		l.rr = (s + 1) % numSub
		l.busy = true
		mesh := l.mesh
		if l.to >= 0 {
			mesh.flitsCarried += int64(msg.Flits)
			if l.cross {
				mesh.flitsBisection += int64(msg.Flits)
			}
		}
		mesh.notifyFree(l.from)
		ser := int64(msg.Flits)
		mesh.eng.Schedule(ser, func() {
			l.busy = false
			l.try()
		})
		if l.to >= 0 {
			nl := next
			mesh.eng.Schedule(ser+mesh.hopLat-1, func() {
				ns := subOf(msg)
				nl.queues[ns] = append(nl.queues[ns], msg)
				nl.try()
			})
		} else {
			id := l.eject
			mesh.eng.Schedule(ser, func() {
				mesh.delivered++
				mesh.handlers[id](msg)
			})
		}
		return
	}
}
