package noc

// Outbox serializes a component's fabric injections with retry-on-full:
// messages queue in order, and when Send returns false the outbox parks a
// prebuilt WhenFree callback and resumes from where it stopped. The queue
// drains through a head index so its backing array is reused, making
// steady-state injection allocation-free. Every injecting component (cache
// agents, homes, MCs, RMC pipelines, rack ports) shares this one
// implementation.
type Outbox struct {
	net     Fabric
	id      NodeID
	q       []*Message
	head    int
	waiting bool
	retryFn func()
}

// NewOutbox builds an outbox injecting at endpoint id.
func NewOutbox(net Fabric, id NodeID) *Outbox {
	o := &Outbox{net: net, id: id}
	o.retryFn = func() { o.waiting = false; o.pump() }
	return o
}

// ID returns the injection endpoint.
func (o *Outbox) ID() NodeID { return o.id }

// Reset drops any queued messages and clears the retry state, returning
// the outbox to its just-built emptiness (the run lifecycle resets every
// injector between runs; a parked WhenFree callback died with the fabric's
// own reset).
func (o *Outbox) Reset() {
	for i := o.head; i < len(o.q); i++ {
		o.q[i] = nil
	}
	o.q = o.q[:0]
	o.head = 0
	o.waiting = false
}

// Send queues m and drains as far as buffer space allows.
func (o *Outbox) Send(m *Message) {
	o.q = append(o.q, m)
	o.pump()
}

func (o *Outbox) pump() {
	if o.waiting {
		return
	}
	for o.head < len(o.q) {
		if !o.net.Send(o.q[o.head]) {
			o.waiting = true
			o.net.WhenFree(o.id, o.retryFn)
			return
		}
		o.q[o.head] = nil
		o.head++
	}
	o.q = o.q[:0]
	o.head = 0
}
