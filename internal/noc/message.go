// Package noc implements the on-chip interconnect of the simulated SoC: a
// 2D mesh with 16-byte links, 3-cycle hops, per-virtual-network buffering
// with credit backpressure, and the routing policies studied by the paper
// (XY, YX, O1Turn, CDR and the paper's modified CDR with a directory-sourced
// class, §4.3).
//
// The NOC is modeled at message granularity: a message occupies a link for
// one cycle per flit, and advances hop by hop only when the buffer it needs
// at the next router has space. Congestion, hotspot columns and bisection
// limits therefore emerge from first principles rather than being scripted.
package noc

import (
	"fmt"
	"sync"
)

// NodeID identifies an endpoint attached to the NOC: a tile (core + L1 +
// LLC slice + directory slice, and in the per-tile/split designs an NI
// frontend), an edge NI block, a memory controller, or a network-router
// attachment point.
type NodeID int32

// VN is a virtual network. Separate virtual networks carry coherence
// requests, directory-sourced traffic and responses so the protocol cannot
// deadlock on the interconnect.
type VN uint8

const (
	// VNReq carries coherence and NI requests.
	VNReq VN = iota
	// VNDir carries directory-sourced traffic (forwards, invalidations,
	// LLC data replies). This is also the paper's extra CDR routing class.
	VNDir
	// VNResp carries responses: data from owners, acks, unblocks and NI
	// payload traffic.
	VNResp
	numVNs
)

func (v VN) String() string {
	switch v {
	case VNReq:
		return "req"
	case VNDir:
		return "dir"
	case VNResp:
		return "resp"
	}
	return fmt.Sprintf("vn%d", uint8(v))
}

// Class is the CDR routing class of a message (§4.3).
type Class uint8

const (
	// ClassRequest marks memory/coherence requests.
	ClassRequest Class = iota
	// ClassResponse marks responses.
	ClassResponse
	// ClassDirectory marks directory-sourced traffic; the paper's modified
	// CDR routes this class YX and everything else XY so that traffic never
	// turns at the NI/MC edge columns.
	ClassDirectory
)

// Message is one NOC packet. Kind/Addr/Txn/A/B/Meta are opaque to the
// network and interpreted by the endpoints.
type Message struct {
	VN    VN
	Class Class
	Src   NodeID
	Dst   NodeID
	Flits int

	Kind int
	Addr uint64
	Txn  uint64
	A    int64
	B    int64
	Meta interface{}

	// Injected is stamped by the fabric when the message is accepted.
	Injected int64

	// yx is the dimension order chosen at injection (routing scratch).
	yx bool

	// dstRouter/dstEp cache the destination's router and endpoint index;
	// the mesh stamps them at injection so per-hop routing is pure array
	// arithmetic.
	dstRouter int32
	dstEp     int32
}

// msgPool recycles Message records across send/eject so steady-state
// traffic allocates nothing. It is shared by every fabric instance;
// sync.Pool keeps it safe for tests that run simulations in parallel.
var msgPool = sync.Pool{New: func() interface{} { return new(Message) }}

// NewMessage returns a zeroed Message, reusing a released one when
// available. Callers fill in the fields they need and hand the message to
// Fabric.Send.
func NewMessage() *Message { return msgPool.Get().(*Message) }

// Release returns a delivered message to the pool. The component that
// finishes processing a message owns it and must not touch it afterwards;
// messages a test (or component) wants to keep are simply never released.
func Release(m *Message) {
	*m = Message{}
	msgPool.Put(m)
}

// Handler receives messages ejected at a registered endpoint.
type Handler func(m *Message)

// Fabric is the interface shared by the mesh and NOC-Out interconnects.
type Fabric interface {
	// Register attaches a delivery handler to an endpoint.
	Register(id NodeID, h Handler)
	// Send injects a message at its source. It returns false when the
	// injection buffer is full; the caller should register a WhenFree
	// callback and retry.
	Send(m *Message) bool
	// WhenFree arranges for fn to run (once) the next time buffer space
	// frees at the source's router, so blocked injectors can retry.
	WhenFree(src NodeID, fn func())
	// FlitsCarried returns the total flit-hops carried, a measure of NOC
	// utilization (used to reproduce the paper's aggregate-vs-application
	// bandwidth comparison, §6.2).
	FlitsCarried() int64
}
