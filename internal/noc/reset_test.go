package noc

import (
	"testing"

	"rackni/internal/config"
)

// TestOutboxReset: a reset outbox forgets queued messages and its retry
// state, then injects normally again.
func TestOutboxReset(t *testing.T) {
	eng, cfg, m := testMesh(t, nil)
	src := TileID(0, 0, cfg.MeshWidth)
	dst := TileID(3, 3, cfg.MeshWidth)
	delivered := 0
	m.Register(src, func(*Message) {})
	m.Register(dst, func(*Message) { delivered++ })
	o := NewOutbox(m, src)
	// Overfill so some messages are queued (and possibly parked) in the
	// outbox, then reset before they drain.
	for i := 0; i < 64; i++ {
		o.Send(&Message{VN: VNReq, Src: src, Dst: dst, Flits: 8})
	}
	o.Reset()
	m.Reset()
	eng.Reset()
	if o.waiting || len(o.q) != 0 || o.head != 0 {
		t.Fatalf("outbox not reset: waiting=%v len=%d head=%d", o.waiting, len(o.q), o.head)
	}
	o.Send(&Message{VN: VNReq, Src: src, Dst: dst, Flits: 1})
	eng.RunAll()
	if delivered != 1 {
		t.Fatalf("post-reset delivery count %d, want 1", delivered)
	}
}

// TestMeshReset: a reset mesh is empty (counters zeroed, buffers clear)
// and a repeated injection sequence behaves exactly as on a fresh mesh —
// including the O1Turn routing randomness, which reseeds.
func TestMeshReset(t *testing.T) {
	eng, cfg, m := testMesh(t, func(c *config.Config) { c.Routing = config.RoutingO1Turn })
	src := TileID(0, 0, cfg.MeshWidth)
	dst := TileID(5, 6, cfg.MeshWidth)
	m.Register(src, func(*Message) {})
	m.Register(dst, func(*Message) {})
	run := func() (int64, int64) {
		o := NewOutbox(m, src) // retry-on-full, so every message lands
		for i := 0; i < 20; i++ {
			o.Send(&Message{VN: VNReq, Src: src, Dst: dst, Flits: 2})
		}
		eng.RunAll()
		return m.FlitsCarried(), m.Delivered()
	}
	f1, d1 := run()
	if d1 != 20 {
		t.Fatalf("setup delivered %d, want 20", d1)
	}
	m.Reset()
	eng.Reset()
	if m.FlitsCarried() != 0 || m.Delivered() != 0 || m.BytesInjected() != 0 {
		t.Fatal("reset mesh reports nonzero counters")
	}
	f2, d2 := run()
	if f1 != f2 || d1 != d2 {
		t.Fatalf("post-reset run differs: flits %d vs %d, delivered %d vs %d (randomness not reseeded?)",
			f1, f2, d1, d2)
	}
}
