package stats

import (
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("got %d", c.Value())
	}
}

func TestLatencyAccumAggregates(t *testing.T) {
	l := NewLatencyAccum(10)
	for _, v := range []int64{5, 1, 9, 3} {
		l.Add(v)
	}
	if l.Count() != 4 || l.Min() != 1 || l.Max() != 9 {
		t.Fatalf("count=%d min=%d max=%d", l.Count(), l.Min(), l.Max())
	}
	if l.Mean() != 4.5 {
		t.Fatalf("mean=%v", l.Mean())
	}
	if l.Percentile(100) != 9 || l.Percentile(0) != 1 {
		t.Fatal("percentiles wrong")
	}
}

func TestLatencyAccumEmpty(t *testing.T) {
	l := NewLatencyAccum(0)
	if l.Mean() != 0 || l.Min() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty accumulator must return zeros")
	}
}

func TestBandwidthMonitorStabilizes(t *testing.T) {
	m := NewBandwidthMonitor(1000, 0.02, 3)
	total := int64(0)
	stable := false
	for i := 0; i < 10 && !stable; i++ {
		total += 5000 // constant 5 B/cycle
		stable = m.Observe(total)
	}
	if !stable {
		t.Fatal("constant rate never stabilized")
	}
	if got := m.BytesPerCycle(); got < 4.9 || got > 5.1 {
		t.Fatalf("rate=%v want ~5", got)
	}
}

func TestBandwidthMonitorRejectsRamp(t *testing.T) {
	m := NewBandwidthMonitor(1000, 0.01, 3)
	total := int64(0)
	add := int64(1000)
	for i := 0; i < 6; i++ {
		add *= 2 // doubling every window: never stable
		total += add
		if m.Observe(total) {
			t.Fatal("ramp declared stable")
		}
	}
}

func TestBandwidthMonitorReset(t *testing.T) {
	m := NewBandwidthMonitor(100, 0.02, 3)
	m.Observe(1_000_000) // warmup junk
	m.Reset(1_000_000)
	total := int64(1_000_000)
	stable := false
	for i := 0; i < 8 && !stable; i++ {
		total += 200
		stable = m.Observe(total)
	}
	if !stable {
		t.Fatal("post-reset constant rate never stabilized")
	}
	if got := m.BytesPerCycle(); got < 1.9 || got > 2.1 {
		t.Fatalf("rate=%v want ~2 (warmup must be excluded)", got)
	}
}

func TestGBpsConversion(t *testing.T) {
	// 64 B/cycle at 2 GHz = 128 GB/s.
	if got := GBps(64, 2.0); got != 128 {
		t.Fatalf("got %v", got)
	}
}

// Property: mean is always within [min, max].
func TestPropertyMeanBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		l := NewLatencyAccum(0)
		for _, v := range vals {
			l.Add(int64(v))
		}
		m := l.Mean()
		return m >= float64(l.Min()) && m <= float64(l.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
