package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("got %d", c.Value())
	}
}

func TestLatencyAccumAggregates(t *testing.T) {
	l := NewLatencyAccum(10)
	for _, v := range []int64{5, 1, 9, 3} {
		l.Add(v)
	}
	if l.Count() != 4 || l.Min() != 1 || l.Max() != 9 {
		t.Fatalf("count=%d min=%d max=%d", l.Count(), l.Min(), l.Max())
	}
	if l.Mean() != 4.5 {
		t.Fatalf("mean=%v", l.Mean())
	}
	if l.Percentile(100) != 9 || l.Percentile(0) != 1 {
		t.Fatal("percentiles wrong")
	}
}

func TestLatencyAccumEmpty(t *testing.T) {
	l := NewLatencyAccum(0)
	if l.Mean() != 0 || l.Min() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty accumulator must return zeros")
	}
}

func TestBandwidthMonitorStabilizes(t *testing.T) {
	m := NewBandwidthMonitor(1000, 0.02, 3)
	total := int64(0)
	stable := false
	for i := 0; i < 10 && !stable; i++ {
		total += 5000 // constant 5 B/cycle
		stable = m.Observe(total)
	}
	if !stable {
		t.Fatal("constant rate never stabilized")
	}
	if got := m.BytesPerCycle(); got < 4.9 || got > 5.1 {
		t.Fatalf("rate=%v want ~5", got)
	}
}

func TestBandwidthMonitorRejectsRamp(t *testing.T) {
	m := NewBandwidthMonitor(1000, 0.01, 3)
	total := int64(0)
	add := int64(1000)
	for i := 0; i < 6; i++ {
		add *= 2 // doubling every window: never stable
		total += add
		if m.Observe(total) {
			t.Fatal("ramp declared stable")
		}
	}
}

func TestBandwidthMonitorReset(t *testing.T) {
	m := NewBandwidthMonitor(100, 0.02, 3)
	m.Observe(1_000_000) // warmup junk
	m.Reset(1_000_000)
	total := int64(1_000_000)
	stable := false
	for i := 0; i < 8 && !stable; i++ {
		total += 200
		stable = m.Observe(total)
	}
	if !stable {
		t.Fatal("post-reset constant rate never stabilized")
	}
	if got := m.BytesPerCycle(); got < 1.9 || got > 2.1 {
		t.Fatalf("rate=%v want ~2 (warmup must be excluded)", got)
	}
}

func TestGBpsConversion(t *testing.T) {
	// 64 B/cycle at 2 GHz = 128 GB/s.
	if got := GBps(64, 2.0); got != 128 {
		t.Fatalf("got %v", got)
	}
}

// Property: mean is always within [min, max].
func TestPropertyMeanBounded(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		l := NewLatencyAccum(0)
		for _, v := range vals {
			l.Add(int64(v))
		}
		m := l.Mean()
		return m >= float64(l.Min()) && m <= float64(l.Max())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(10, 100)
	// 100 samples 1..100: p50 covers samples <= 50 (bucket edge 50),
	// p99 covers sample 99 (bucket edge 100, capped at max 100).
	for v := int64(1); v <= 100; v++ {
		h.Add(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if got := h.Percentile(50); got != 60 {
		// sample 50 lands in bucket [50,60): the edge never understates
		// the exact percentile (50) by design, and overstates by < width.
		t.Fatalf("p50=%d want 60", got)
	}
	if got := h.Percentile(95); got != 100 {
		// sample 95 lands in bucket [90,100), edge 100, capped at max 100
		t.Fatalf("p95=%d want 100", got)
	}
	if got := h.Percentile(0); got != 10 {
		t.Fatalf("p0=%d want first non-empty bucket edge 10", got)
	}
	if h.Mean() != 50.5 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("mean=%v min=%d max=%d", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	h := NewHistogram(10, 4) // bucketed range [0,40)
	if h.Percentile(99) != 0 || h.Mean() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Add(5)
	h.Add(1_000_000) // overflow
	if got := h.Percentile(99); got != 1_000_000 {
		t.Fatalf("overflow percentile=%d want observed max", got)
	}
	if got := h.Percentile(50); got != 10 {
		t.Fatalf("p50=%d want 10", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, ref := NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram()
	for v := int64(0); v < 1000; v += 3 {
		a.Add(v)
		ref.Add(v)
	}
	for v := int64(1); v < 2000; v += 7 {
		b.Add(v)
		ref.Add(v)
	}
	a.Merge(b)
	for _, p := range []float64{1, 25, 50, 90, 95, 99, 100} {
		if a.Percentile(p) != ref.Percentile(p) {
			t.Fatalf("p%.0f: merged %d != ref %d", p, a.Percentile(p), ref.Percentile(p))
		}
	}
	if a.Count() != ref.Count() || a.Mean() != ref.Mean() || a.Min() != ref.Min() || a.Max() != ref.Max() {
		t.Fatal("merged aggregates diverge from single-histogram reference")
	}
	// Merging mismatched shapes is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched-shape merge did not panic")
		}
	}()
	bad := NewHistogram(5, 10)
	bad.Add(3)
	a.Merge(bad)
}

// TestHistogramEdgeCases: the degenerate shapes — a single-bucket
// histogram (everything collapses to one edge or the overflow max), a
// merge with an empty or nil histogram (no-op), and percentiles taken
// from an empty histogram that later receives merged counts.
func TestHistogramEdgeCases(t *testing.T) {
	// Single bucket: in-range samples report the bucket edge capped at the
	// observed max; out-of-range samples report the max.
	one := NewHistogram(8, 1)
	one.Add(3)
	if got := one.Percentile(50); got != 3 {
		t.Fatalf("single bucket p50=%d, want the observed max 3 (edge capped)", got)
	}
	one.Add(500) // overflow of the one-bucket range
	if got := one.Percentile(99); got != 500 {
		t.Fatalf("single bucket overflow p99=%d, want 500", got)
	}

	// Merging an empty or nil histogram changes nothing.
	h := NewLatencyHistogram()
	for v := int64(10); v <= 100; v += 10 {
		h.Add(v)
	}
	p50, cnt, mean := h.Percentile(50), h.Count(), h.Mean()
	h.Merge(NewLatencyHistogram())
	h.Merge(nil)
	if h.Percentile(50) != p50 || h.Count() != cnt || h.Mean() != mean {
		t.Fatal("merge with empty/nil histogram changed aggregates")
	}

	// An empty histogram that receives merged counts reports the donor's
	// percentiles (min/max included).
	empty := NewLatencyHistogram()
	empty.Merge(h)
	for _, p := range []float64{1, 50, 99, 100} {
		if empty.Percentile(p) != h.Percentile(p) {
			t.Fatalf("post-merge p%.0f=%d, want %d", p, empty.Percentile(p), h.Percentile(p))
		}
	}
	if empty.Min() != h.Min() || empty.Max() != h.Max() {
		t.Fatalf("post-merge min/max %d/%d, want %d/%d", empty.Min(), empty.Max(), h.Min(), h.Max())
	}
}

// Property: a histogram percentile never understates the true percentile
// by more than one bucket width, and never exceeds the observed max.
func TestPropertyHistogramPercentileBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(16, 4096)
		s := make([]int64, len(vals))
		for i, v := range vals {
			h.Add(int64(v))
			s[i] = int64(v)
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		for _, p := range []float64{50, 95, 99} {
			rank := int(math.Ceil(p / 100 * float64(len(s))))
			if rank < 1 {
				rank = 1
			}
			exact := s[rank-1]
			got := h.Percentile(p)
			if got < exact || got > exact+16 || got > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// bucketFor returns the upper edge of the bucket that holds v — the bound
// a percentile landing exactly on v may report (before the max cap).
func bucketFor(h *Histogram, v int64) int64 {
	if v < h.tailRange() {
		i := v / h.width
		if v < 0 {
			i = 0
		}
		return (i + 1) * h.width
	}
	return h.tailEdge(h.tailIndex(v))
}

// Property: with samples deep into the overflow tier, a percentile never
// understates the exact rank sample and never overstates it by more than
// the containing (geometric) bucket — the tail never saturates the way the
// pre-tier top bucket did.
func TestPropertyHistogramTailPercentileBounds(t *testing.T) {
	f := func(vals []uint32, shift uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewLatencyHistogram()
		s := make([]int64, len(vals))
		for i, v := range vals {
			// Spread samples across the fixed range and many octaves of
			// the tail (up to ~2^47 cycles).
			x := int64(v) << (shift % 16)
			h.Add(x)
			s[i] = x
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		for _, p := range []float64{50, 90, 99, 99.9, 100} {
			rank := int(math.Ceil(p / 100 * float64(len(s))))
			if rank < 1 {
				rank = 1
			}
			exact := s[rank-1]
			got := h.Percentile(p)
			if got < exact || got > bucketFor(h, exact) || got > h.Max() {
				t.Logf("p%g: got %d, exact %d, bucket edge %d, max %d",
					p, got, exact, bucketFor(h, exact), h.Max())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The overflow tier keeps relative resolution: two well-separated tail
// modes must not collapse to one edge (the pre-tier behavior, where every
// overflow rank reported the observed max and p99 under overload was
// silently the worst sample ever seen).
func TestHistogramTailResolvesDistinctModes(t *testing.T) {
	h := NewLatencyHistogram() // fixed range ends at 65,536
	for i := 0; i < 990; i++ {
		h.Add(100_000) // the common overloaded latency
	}
	for i := 0; i < 10; i++ {
		h.Add(4_000_000) // a rare straggler mode, 40x slower
	}
	p50, p99, p999 := h.Percentile(50), h.Percentile(99), h.Percentile(99.9)
	if p50 < 100_000 || p50 > 104_000 {
		t.Fatalf("p50=%d want ~100k within one sub-bucket", p50)
	}
	if p99 < 100_000 || p99 > 104_000 {
		t.Fatalf("p99=%d: the common mode must not be dragged to the straggler max", p99)
	}
	if p999 < 4_000_000 {
		t.Fatalf("p99.9=%d must reach the straggler mode", p999)
	}
}

// Tail merging: merged tail percentiles equal the single-histogram
// reference, including across differently-grown tiers.
func TestHistogramTailMerge(t *testing.T) {
	a, b, ref := NewLatencyHistogram(), NewLatencyHistogram(), NewLatencyHistogram()
	for v := int64(1_000); v < 200_000; v += 997 {
		a.Add(v)
		ref.Add(v)
	}
	for v := int64(70_000); v < 50_000_000; v += 500_011 {
		b.Add(v)
		ref.Add(v)
	}
	a.Merge(b)
	for _, p := range []float64{1, 50, 90, 99, 99.9, 100} {
		if a.Percentile(p) != ref.Percentile(p) {
			t.Fatalf("p%g: merged %d != ref %d", p, a.Percentile(p), ref.Percentile(p))
		}
	}
	if a.Count() != ref.Count() || a.Max() != ref.Max() {
		t.Fatal("merged aggregates diverge from reference")
	}
}

// In-range distributions must be bit-identical to the pre-tier histogram:
// no tail is allocated and every aggregate matches the fixed-bucket math.
func TestHistogramInRangeAllocatesNoTail(t *testing.T) {
	h := NewLatencyHistogram()
	for v := int64(0); v < 65_536; v += 13 {
		h.Add(v)
	}
	if h.tail != nil || h.overflow != 0 {
		t.Fatalf("in-range samples grew a tail (len %d, overflow %d)", len(h.tail), h.overflow)
	}
}

// The sampled percentile must use ceiling rank — the smallest sample with
// at least p percent of the stream at or below it — so it never
// understates. The truncating nearest-rank index it replaces returned 90
// for p95 over ten equally spaced samples.
func TestLatencyAccumPercentileCeilingRank(t *testing.T) {
	l := NewLatencyAccum(10)
	for v := int64(10); v <= 100; v += 10 {
		l.Add(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{50, 50}, {90, 90}, {95, 100}, {99, 100}, {100, 100}, {0, 10},
	}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != c.want {
			t.Fatalf("p%g = %d, want %d", c.p, got, c.want)
		}
	}
}

// LatencyAccum and Histogram observing the same stream must agree within
// one bucket width: both use ceiling rank, so they pick the same sample and
// the histogram reports at most that sample's bucket upper edge.
func TestAccumHistogramPercentilesAgree(t *testing.T) {
	const n = 5000
	l := NewLatencyAccum(n)
	h := NewLatencyHistogram()
	s := uint64(0x1234_5678_9ABC_DEF0)
	for i := 0; i < n; i++ {
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		v := int64((s * 0x2545F4914F6CDD1D) % 60_000) // stays in the fixed-bucket range
		l.Add(v)
		h.Add(v)
	}
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		acc, hist := l.Percentile(p), h.Percentile(p)
		if hist < acc {
			t.Fatalf("p%g: histogram %d understates sampled %d", p, hist, acc)
		}
		if hist-acc > 16 { // one NewLatencyHistogram bucket
			t.Fatalf("p%g: histogram %d vs sampled %d differ by more than one bucket", p, hist, acc)
		}
	}
}

// A negative latency sample is a simulator accounting bug; the histogram
// must fail loudly instead of clamping it into bucket 0 while silently
// folding it into the mean and minimum.
func TestHistogramNegativeSamplePanics(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
		if h.Count() != 1 || h.Min() != 5 {
			t.Fatalf("rejected sample mutated aggregates: count=%d min=%d", h.Count(), h.Min())
		}
	}()
	h.Add(-1)
}
