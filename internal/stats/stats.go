// Package stats provides the measurement machinery shared by the simulator:
// counters, latency accumulators and the windowed bandwidth monitor that
// implements the paper's stabilization rule (§5: monitor in fixed-size
// cycle windows and stop when consecutive windows agree within a delta).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// LatencyAccum accumulates latency samples (in cycles) and reports simple
// aggregates. It keeps raw samples up to a cap so tests can inspect
// distributions without unbounded memory.
type LatencyAccum struct {
	sum     float64
	count   int64
	min     int64
	max     int64
	samples []int64
	keep    int
}

// NewLatencyAccum returns an accumulator that retains up to keep raw
// samples (0 keeps none).
func NewLatencyAccum(keep int) *LatencyAccum {
	return &LatencyAccum{min: math.MaxInt64, keep: keep}
}

// Add records one latency sample.
func (l *LatencyAccum) Add(v int64) {
	l.sum += float64(v)
	l.count++
	if v < l.min {
		l.min = v
	}
	if v > l.max {
		l.max = v
	}
	if len(l.samples) < l.keep {
		l.samples = append(l.samples, v)
	}
}

// Count returns the number of samples.
func (l *LatencyAccum) Count() int64 { return l.count }

// Mean returns the average sample, or 0 with no samples.
func (l *LatencyAccum) Mean() float64 {
	if l.count == 0 {
		return 0
	}
	return l.sum / float64(l.count)
}

// Min returns the smallest sample (0 with no samples).
func (l *LatencyAccum) Min() int64 {
	if l.count == 0 {
		return 0
	}
	return l.min
}

// Max returns the largest sample.
func (l *LatencyAccum) Max() int64 { return l.max }

// Percentile returns the p-th percentile (0..100) of the retained samples,
// by ceiling rank: the smallest retained sample with at least p percent of
// the samples at or below it. Like Histogram.Percentile, the result never
// understates — the truncating nearest-rank index this replaces returned
// the 98th-rank sample for p99 over 100 samples.
func (l *LatencyAccum) Percentile(p float64) int64 {
	if len(l.samples) == 0 {
		return 0
	}
	s := append([]int64(nil), l.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Histogram is a deterministic fixed-bucket latency histogram: values land
// in buckets of a fixed width, percentiles are computed from cumulative
// bucket counts, and two histograms of the same shape merge by adding
// counts. Unlike a sampling accumulator it never drops tail samples, so
// p99 over millions of requests is exact to one bucket width — the
// property tail-latency metrics need.
//
// Samples beyond the fixed-width range land in a geometric overflow tier:
// each doubling of the range (octave) is split into tailSubBuckets
// sub-buckets, so the tail keeps ~3% relative resolution no matter how far
// an overloaded run's latencies stretch, instead of saturating at the
// top fixed bucket. The tier is allocated lazily — in-range distributions
// carry no extra state and behave bit-identically to the pre-tier shape.
type Histogram struct {
	width    int64
	counts   []int64
	count    int64
	sum      float64
	min, max int64
	overflow int64   // samples beyond the fixed-width range (sum of tail)
	tail     []int64 // geometric tier: tailSubBuckets per octave above the range
}

// tailSubBuckets is the per-octave resolution of the geometric overflow
// tier: each [range·2ᵒ, range·2ᵒ⁺¹) octave is split into this many equal
// sub-buckets, bounding a tail percentile's overstatement to one
// sub-bucket (≤ 1/32 of the sample's magnitude).
const tailSubBuckets = 32

// NewHistogram returns a histogram of `buckets` buckets of `width` cycles
// each; values at or beyond buckets*width land in the geometric overflow
// tier, whose percentiles stay within one sub-bucket of exact.
func NewHistogram(width int64, buckets int) *Histogram {
	if width < 1 {
		width = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{width: width, counts: make([]int64, buckets), min: math.MaxInt64}
}

// NewLatencyHistogram returns the shape shared by the per-core request
// latency histograms: 16-cycle buckets to 64 Ki cycles, then the geometric
// overflow tier. All latency histograms use one shape so per-core
// histograms merge into node totals.
func NewLatencyHistogram() *Histogram { return NewHistogram(16, 4096) }

// tailRange is the lower bound of the overflow tier (the fixed-width
// range's upper edge).
func (h *Histogram) tailRange() int64 { return h.width * int64(len(h.counts)) }

// tailIndex maps an overflow sample (v >= tailRange) to its tier bucket.
func (h *Histogram) tailIndex(v int64) int {
	base := h.tailRange()
	// Octave o covers [base<<o, base<<(o+1)).
	o := 0
	for lo := base; v >= lo<<1 && lo<<1 > lo; lo <<= 1 {
		o++
	}
	lo := base << o
	sub := int64(0)
	if w := lo / tailSubBuckets; w > 0 {
		sub = (v - lo) / w
	} else {
		sub = v - lo // octaves narrower than the sub-bucket count: unit width
	}
	if sub >= tailSubBuckets {
		sub = tailSubBuckets - 1
	}
	return o*tailSubBuckets + int(sub)
}

// tailEdge is a tier bucket's upper edge — the value Percentile reports
// (capped at the observed max) for ranks landing in it.
func (h *Histogram) tailEdge(i int) int64 {
	base := h.tailRange()
	o, sub := i/tailSubBuckets, int64(i%tailSubBuckets)
	lo := base << o
	if lo <= 0 || lo > math.MaxInt64/2 {
		return math.MaxInt64 // saturated octave: the max cap takes over
	}
	if sub == tailSubBuckets-1 {
		return lo << 1 // octave top (sub-bucket rounding must not undershoot)
	}
	w := lo / tailSubBuckets
	if w == 0 {
		w = 1
	}
	return lo + (sub+1)*w
}

// Add records one sample. A negative sample is never a valid latency — it
// can only come from a simulator accounting bug (an end timestamp taken
// before its start) — so Add panics instead of folding it into the
// aggregates: the old clamp-into-bucket-0 behavior skewed Mean() and Min()
// while hiding the bug it was reporting.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative latency sample %d (timestamp accounting bug upstream)", v))
	}
	h.count++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	i := v / h.width
	if i >= int64(len(h.counts)) {
		h.overflow++
		ti := h.tailIndex(v)
		if ti >= len(h.tail) {
			h.tail = append(h.tail, make([]int64, ti+1-len(h.tail))...)
		}
		h.tail[ti]++
		return
	}
	h.counts[i]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest sample (0 with no samples).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns the p-th percentile (0..100): the upper edge of the
// bucket holding the p-th sample, capped at the observed maximum, so the
// result never understates a latency — and never overstates it by more
// than the containing bucket's width (one fixed bucket in range, one
// geometric sub-bucket in the overflow tier).
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			edge := (int64(i) + 1) * h.width
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	for i, c := range h.tail {
		cum += c
		if cum >= rank {
			edge := h.tailEdge(i)
			if edge > h.max {
				edge = h.max
			}
			return edge
		}
	}
	return h.max
}

// Merge adds o's counts into h. The histograms must share width and bucket
// count (as NewLatencyHistogram guarantees); Merge panics otherwise. The
// overflow tiers merge by index (the shape check makes their octave grids
// identical); h's tier grows to cover o's.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.width != o.width || len(h.counts) != len(o.counts) {
		panic("stats: merging histograms of different shapes")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if len(o.tail) > len(h.tail) {
		h.tail = append(h.tail, make([]int64, len(o.tail)-len(h.tail))...)
	}
	for i, c := range o.tail {
		h.tail[i] += c
	}
	h.count += o.count
	h.sum += o.sum
	h.overflow += o.overflow
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// BandwidthMonitor implements the paper's stabilization rule: application
// bytes are accumulated; at each window boundary the per-window rate is
// compared with the previous window and the run is declared stable when the
// relative delta drops below the configured threshold.
type BandwidthMonitor struct {
	window     int64
	delta      float64
	minWindows int

	base       int64
	bytes      int64
	lastBytes  int64
	lastRate   float64
	windows    int
	stable     bool
	stableRate float64
}

// NewBandwidthMonitor returns a monitor with the given window size in
// cycles and relative stability threshold (e.g. 0.01 for 1%). At least
// minWindows windows are observed before declaring stability.
func NewBandwidthMonitor(window int64, delta float64, minWindows int) *BandwidthMonitor {
	if minWindows < 2 {
		minWindows = 2
	}
	return &BandwidthMonitor{window: window, delta: delta, minWindows: minWindows}
}

// AddBytes records payload bytes delivered to the application.
func (b *BandwidthMonitor) AddBytes(n int64) { b.bytes += n }

// Observe sets the cumulative byte count (an alternative to AddBytes for
// callers that track a running total) and processes one window boundary;
// it returns true when the rate has stabilized.
func (b *BandwidthMonitor) Observe(total int64) bool {
	b.bytes = total - b.base
	return b.OnWindow()
}

// Reset re-baselines the monitor at the given cumulative count, discarding
// warmup windows.
func (b *BandwidthMonitor) Reset(total int64) {
	b.base = total
	b.bytes = 0
	b.lastBytes = 0
	b.lastRate = 0
	b.windows = 0
	b.stable = false
	b.stableRate = 0
}

// Window returns the monitoring window in cycles.
func (b *BandwidthMonitor) Window() int64 { return b.window }

// OnWindow must be called once per window boundary; it returns true when
// the metric has stabilized.
func (b *BandwidthMonitor) OnWindow() bool {
	cur := b.bytes - b.lastBytes
	b.lastBytes = b.bytes
	rate := float64(cur) / float64(b.window) // bytes per cycle
	b.windows++
	defer func() { b.lastRate = rate }()
	if b.windows >= b.minWindows && b.lastRate > 0 {
		d := math.Abs(rate-b.lastRate) / b.lastRate
		if d < b.delta {
			b.stable = true
			b.stableRate = (rate + b.lastRate) / 2
			return true
		}
	}
	return false
}

// Stable reports whether stabilization was reached.
func (b *BandwidthMonitor) Stable() bool { return b.stable }

// BytesPerCycle returns the stabilized rate if stable, otherwise the
// average rate over all complete windows.
func (b *BandwidthMonitor) BytesPerCycle() float64 {
	if b.stable {
		return b.stableRate
	}
	if b.windows == 0 {
		return 0
	}
	return float64(b.lastBytes) / float64(int64(b.windows)*b.window)
}

// GBps converts a bytes/cycle rate to GB/s at the given clock.
func GBps(bytesPerCycle, clockGHz float64) float64 {
	return bytesPerCycle * clockGHz // B/cycle * cycles/ns = B/ns = GB/s
}

// FormatGBps renders a bandwidth for tables.
func FormatGBps(v float64) string { return fmt.Sprintf("%.1f GB/s", v) }
