// Package place defines named node-placement policies: deterministic
// mappings from cluster node indices onto coordinates of the rack's 3D
// torus. Placement is the rack-scale analogue of the paper's NI-placement
// question — where a node sits relative to the peers it talks to decides
// how many links its traffic crosses and which links it shares — and it
// only matters once links contend, so the policies here exist to be swept
// against the congestion-faithful fabric.
//
// Every policy is a pure function of (nodes, radix, seed): the same inputs
// always yield the same coordinate permutation, so placements are part of
// a simulation point's identity like any other axis.
package place

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"rackni/internal/sim"
)

// Kind enumerates the placement policies. The zero value None means "no
// named placement": the cluster keeps whatever geometry its spec gives it
// (uniform hops, explicit coordinates, or the congestion model's automatic
// identity placement), so zero-valued specs behave exactly as they did
// before policies existed.
type Kind int

const (
	// None is the unset policy (uniform fixed-hop model unless the spec
	// places nodes some other way).
	None Kind = iota
	// Identity places node i at torus coordinate i — consecutive indices
	// pack into x-major rows, the geometry of the paper's 512-node rack
	// and of the legacy TorusPlacement sweep flag.
	Identity
	// Clustered packs consecutive node indices into 2x2x2 torus sub-cubes,
	// so communicating groups of ~8 sit within 3 hops of one another:
	// maximal locality, traffic concentrated on intra-cube links.
	Clustered
	// Scattered strides consecutive node indices across the whole torus
	// (a fixed golden-ratio stride coprime with the cube size), so group
	// peers sit near the torus diameter apart: maximal spread, long paths
	// shared across many links.
	Scattered
	// Random is a seeded uniform permutation of torus coordinates — the
	// "operator placed nodes wherever capacity allowed" baseline.
	Random
)

// Policy is one named placement: a kind plus, for Random, the permutation
// seed. The zero Policy (Kind == None) is "no named placement".
type Policy struct {
	Kind Kind
	Seed uint64 // Random only; ignored by the deterministic kinds
}

// IsZero reports whether the policy is unset.
func (p Policy) IsZero() bool { return p.Kind == None }

// String returns the canonical flag spelling: "identity", "clustered",
// "scattered", "random:<seed>" — and "uniform" for the zero policy, the
// fixed-hop model's name in CLIs and tables.
func (p Policy) String() string {
	switch p.Kind {
	case None:
		return "uniform"
	case Identity:
		return "identity"
	case Clustered:
		return "clustered"
	case Scattered:
		return "scattered"
	case Random:
		return fmt.Sprintf("random:%d", p.Seed)
	}
	return fmt.Sprintf("Kind(%d)", int(p.Kind))
}

// MarshalJSON renders the policy as its canonical name, so results carry
// "clustered" or "random:7" instead of an opaque enum pair.
func (p Policy) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// Parse resolves a canonical policy name. A bare "random" means seed 1.
func Parse(s string) (Policy, error) {
	tok := strings.ToLower(strings.TrimSpace(s))
	switch tok {
	case "identity":
		return Policy{Kind: Identity}, nil
	case "clustered":
		return Policy{Kind: Clustered}, nil
	case "scattered":
		return Policy{Kind: Scattered}, nil
	case "random":
		return Policy{Kind: Random, Seed: 1}, nil
	}
	if rest, ok := strings.CutPrefix(tok, "random:"); ok {
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return Policy{}, fmt.Errorf("place: bad random placement seed %q (want random:<seed>)", rest)
		}
		return Policy{Kind: Random, Seed: seed}, nil
	}
	return Policy{}, fmt.Errorf("place: unknown placement policy %q (want identity|clustered|scattered|random:<seed>)", s)
}

// subCube is the clustered policy's block edge: consecutive nodes pack
// into subCube³ sub-cubes of the torus.
const subCube = 2

// Coordinates maps nodes 0..nodes-1 onto distinct coordinates of the
// radix³ torus under the policy. The result is always a prefix of a full
// permutation of the cube: every coordinate distinct and in range, so a
// cluster built from it passes Validate by construction.
func (p Policy) Coordinates(nodes, radix int) ([]int, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("place: need at least 1 node, got %d", nodes)
	}
	if radix < 1 {
		return nil, fmt.Errorf("place: torus radix %d must be positive", radix)
	}
	cube := radix * radix * radix
	if nodes > cube {
		return nil, fmt.Errorf("place: %d nodes exceed the %d-node torus (radix %d) under the %s placement",
			nodes, cube, radix, p)
	}
	switch p.Kind {
	case Identity:
		out := make([]int, nodes)
		for i := range out {
			out[i] = i
		}
		return out, nil
	case Clustered:
		return clusteredCoords(nodes, radix), nil
	case Scattered:
		return scatteredCoords(nodes, cube), nil
	case Random:
		return randomCoords(nodes, cube, p.Seed), nil
	}
	return nil, fmt.Errorf("place: the %s placement has no torus coordinates", p)
}

// clusteredCoords enumerates the torus block by block: 2x2x2 sub-cubes in
// x-major block order, cells within a block in x-major order (edge blocks
// are clipped at odd radices, keeping the enumeration a permutation).
func clusteredCoords(nodes, radix int) []int {
	out := make([]int, 0, nodes)
	blocks := (radix + subCube - 1) / subCube
	for bz := 0; bz < blocks; bz++ {
		for by := 0; by < blocks; by++ {
			for bx := 0; bx < blocks; bx++ {
				for z := bz * subCube; z < (bz+1)*subCube && z < radix; z++ {
					for y := by * subCube; y < (by+1)*subCube && y < radix; y++ {
						for x := bx * subCube; x < (bx+1)*subCube && x < radix; x++ {
							out = append(out, x+y*radix+z*radix*radix)
							if len(out) == nodes {
								return out
							}
						}
					}
				}
			}
		}
	}
	return out
}

// scatteredCoords walks the cube with a fixed stride near cube/φ, bumped
// to the next value coprime with the cube so the walk is a permutation:
// consecutive node indices land near the torus diameter apart, never
// clustering the way a rational stride would.
func scatteredCoords(nodes, cube int) []int {
	stride := cube * 61803 / 100000 // cube/φ, in integer arithmetic
	if stride < 1 {
		stride = 1
	}
	for gcd(stride, cube) != 1 {
		stride++ // terminates: cube-1 is always coprime with cube
	}
	out := make([]int, nodes)
	for i := range out {
		out[i] = i * stride % cube
	}
	return out
}

// randomCoords is a seeded partial Fisher-Yates shuffle of the cube's
// coordinates: the first nodes entries of a uniform permutation.
func randomCoords(nodes, cube int, seed uint64) []int {
	rng := sim.NewRand(seed ^ 0x9E37_79B9_7F4A_7C15)
	perm := make([]int, cube)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < nodes; i++ {
		j := i + rng.Intn(cube-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:nodes]
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Validate checks an explicit coordinate list (ClusterSpec's raw []int
// escape hatch): every coordinate must be on the radix³ torus and no two
// nodes may share one. Out-of-range or duplicate coordinates would
// otherwise yield bogus (even zero-hop) pairwise distances that poison
// the sharded engines' conservative lookahead. Errors name the offending
// node.
func Validate(coords []int, radix int) error {
	cube := radix * radix * radix
	seen := make(map[int]int, len(coords))
	for i, c := range coords {
		if c < 0 || c >= cube {
			return fmt.Errorf("place: node %d placed at coordinate %d outside the %d-node torus (radix %d)",
				i, c, cube, radix)
		}
		if j, dup := seen[c]; dup {
			return fmt.Errorf("place: nodes %d and %d both placed at torus coordinate %d", j, i, c)
		}
		seen[c] = i
	}
	return nil
}
