package place

import (
	"reflect"
	"strings"
	"testing"

	"rackni/internal/fabric"
)

// checkPermutationPrefix asserts coords is a valid placement: the right
// length, every coordinate on the torus, no duplicates.
func checkPermutationPrefix(t *testing.T, coords []int, nodes, radix int) {
	t.Helper()
	if len(coords) != nodes {
		t.Fatalf("got %d coordinates for %d nodes", len(coords), nodes)
	}
	if err := Validate(coords, radix); err != nil {
		t.Fatalf("policy emitted an invalid placement: %v", err)
	}
}

// TestCoordinatesAreValidPermutations: every policy, across even and odd
// radices and partial/full cube occupancy, returns a distinct in-range
// coordinate per node — and is deterministic.
func TestCoordinatesAreValidPermutations(t *testing.T) {
	policies := []Policy{
		{Kind: Identity}, {Kind: Clustered}, {Kind: Scattered},
		{Kind: Random, Seed: 3}, {Kind: Random, Seed: 17},
	}
	shapes := []struct{ nodes, radix int }{
		{1, 1}, {2, 2}, {8, 2}, {5, 3}, {27, 3}, {16, 8}, {64, 8}, {512, 8},
	}
	for _, p := range policies {
		for _, sh := range shapes {
			coords, err := p.Coordinates(sh.nodes, sh.radix)
			if err != nil {
				t.Fatalf("%s (%d nodes, radix %d): %v", p, sh.nodes, sh.radix, err)
			}
			checkPermutationPrefix(t, coords, sh.nodes, sh.radix)
			again, err := p.Coordinates(sh.nodes, sh.radix)
			if err != nil || !reflect.DeepEqual(coords, again) {
				t.Fatalf("%s (%d nodes, radix %d): not deterministic", p, sh.nodes, sh.radix)
			}
		}
	}
}

// TestIdentityCoords: identity is exactly the coordinates the legacy
// TorusPlacement flag assigned — node i at coordinate i.
func TestIdentityCoords(t *testing.T) {
	coords, err := Policy{Kind: Identity}.Coordinates(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(coords, want) {
		t.Fatalf("identity coords %v, want %v", coords, want)
	}
}

// groupSpread returns the mean pairwise torus distance within each
// consecutive group of g nodes, averaged over groups — the locality metric
// the clustered/scattered policies trade against each other.
func groupSpread(coords []int, radix, g int) float64 {
	topo := fabric.NewTorus3D(radix)
	var sum, pairs float64
	for base := 0; base+g <= len(coords); base += g {
		for i := base; i < base+g; i++ {
			for j := i + 1; j < base+g; j++ {
				sum += float64(topo.Hops(coords[i], coords[j]))
				pairs++
			}
		}
	}
	return sum / pairs
}

// TestClusteredPacksSubCubes: under the clustered policy every
// consecutive group of 8 occupies one 2x2x2 sub-cube — pairwise distance
// at most 3 hops — while scattered pushes the same groups wide apart and
// identity sits between them.
func TestClusteredPacksSubCubes(t *testing.T) {
	const nodes, radix, g = 64, 8, 8
	topo := fabric.NewTorus3D(radix)
	cl, err := Policy{Kind: Clustered}.Coordinates(nodes, radix)
	if err != nil {
		t.Fatal(err)
	}
	for base := 0; base+g <= nodes; base += g {
		for i := base; i < base+g; i++ {
			for j := base; j < base+g; j++ {
				if d := topo.Hops(cl[i], cl[j]); d > 3 {
					t.Fatalf("clustered nodes %d and %d are %d hops apart (coords %d, %d); a 2x2x2 sub-cube caps at 3",
						i, j, d, cl[i], cl[j])
				}
			}
		}
	}
	id, _ := Policy{Kind: Identity}.Coordinates(nodes, radix)
	sc, _ := Policy{Kind: Scattered}.Coordinates(nodes, radix)
	clSpread, idSpread, scSpread := groupSpread(cl, radix, g), groupSpread(id, radix, g), groupSpread(sc, radix, g)
	if !(clSpread < idSpread && idSpread < scSpread) {
		t.Fatalf("group spread ordering violated: clustered %.2f, identity %.2f, scattered %.2f",
			clSpread, idSpread, scSpread)
	}
}

// TestRandomSeedsDiffer: distinct seeds give distinct permutations, and
// the seed is part of the policy's printed identity.
func TestRandomSeedsDiffer(t *testing.T) {
	a, err := Policy{Kind: Random, Seed: 1}.Coordinates(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Policy{Kind: Random, Seed: 2}.Coordinates(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Fatal("random:1 and random:2 produced the same placement")
	}
}

// TestParseAndString: the canonical names round-trip; junk is rejected.
func TestParseAndString(t *testing.T) {
	good := map[string]Policy{
		"identity":  {Kind: Identity},
		"clustered": {Kind: Clustered},
		"scattered": {Kind: Scattered},
		"random":    {Kind: Random, Seed: 1},
		"random:42": {Kind: Random, Seed: 42},
		" Identity": {Kind: Identity},
	}
	for s, want := range good {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, bad := range []string{"", "uniform", "torus", "random:", "random:x", "nearest"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	for p, want := range map[Policy]string{
		{}:                      "uniform",
		{Kind: Identity}:        "identity",
		{Kind: Clustered}:       "clustered",
		{Kind: Scattered}:       "scattered",
		{Kind: Random, Seed: 7}: "random:7",
	} {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// TestCoordinatesErrors: capacity, degenerate shapes and the zero policy
// are rejected with named errors.
func TestCoordinatesErrors(t *testing.T) {
	cases := []struct {
		p            Policy
		nodes, radix int
		want         string
	}{
		{Policy{Kind: Identity}, 513, 8, "exceed"},
		{Policy{Kind: Clustered}, 0, 8, "at least 1"},
		{Policy{Kind: Scattered}, 4, 0, "radix"},
		{Policy{}, 4, 8, "no torus coordinates"},
	}
	for _, c := range cases {
		if _, err := c.p.Coordinates(c.nodes, c.radix); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s (%d nodes, radix %d): err %v, want %q", c.p, c.nodes, c.radix, err, c.want)
		}
	}
}

// TestValidateNamesOffenders: the escape-hatch validator pins the failing
// node index (and both parties of a duplicate) in its message.
func TestValidateNamesOffenders(t *testing.T) {
	if err := Validate([]int{0, 1, 2}, 8); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	err := Validate([]int{0, 600}, 8)
	if err == nil || !strings.Contains(err.Error(), "node 1") || !strings.Contains(err.Error(), "600") {
		t.Fatalf("out-of-range error does not name node 1 at 600: %v", err)
	}
	err = Validate([]int{0, -1}, 8)
	if err == nil || !strings.Contains(err.Error(), "node 1") {
		t.Fatalf("negative-coordinate error does not name node 1: %v", err)
	}
	err = Validate([]int{3, 9, 3}, 8)
	if err == nil || !strings.Contains(err.Error(), "nodes 0 and 2") {
		t.Fatalf("duplicate error does not name nodes 0 and 2: %v", err)
	}
}
