// Package mem models the memory controllers. Following the paper's
// methodology (§5, "Memory and Network Bandwidth Assumptions"), DRAM is a
// latency-only model: high-bandwidth interfaces (HMC-style stacked DRAM)
// are assumed not to bottleneck the studied workloads, so the controller is
// fully pipelined with a fixed access latency and the NOC remains the
// bandwidth limiter.
package mem

import (
	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// Message kinds understood by the memory controller. They live in their own
// range so endpoint dispatch can tell them from coherence kinds.
const (
	KindRead  = 100 // request a block; A carries no meaning; replies KindReadResp
	KindWrite = 101 // write back a block; fire-and-forget
	// KindReadResp is the data reply to KindRead; Txn echoes the request.
	KindReadResp = 102
)

// MC is one memory controller, attached at the east edge of its row.
type MC struct {
	eng *sim.Engine
	net noc.Fabric
	cfg *config.Config
	id  noc.NodeID

	lat        int64
	blockFlits int

	reads  int64
	writes int64

	// out is the retry queue for replies blocked on NOC injection space.
	out *noc.Outbox
}

// New builds and registers the MC for the given row.
func New(eng *sim.Engine, net noc.Fabric, cfg *config.Config, row int) *MC {
	mc := &MC{
		eng:        eng,
		net:        net,
		cfg:        cfg,
		id:         noc.MCID(row),
		lat:        cfg.MemLatencyCycles(),
		blockFlits: cfg.BlockFlits(),
	}
	mc.out = noc.NewOutbox(net, mc.id)
	net.Register(mc.id, mc.handle)
	return mc
}

// ID returns the controller's NOC endpoint.
func (mc *MC) ID() noc.NodeID { return mc.id }

// Reset zeroes the counters and drains the reply queue, returning the
// controller to its just-built state (in-flight access events are cleared
// with the engine by the run lifecycle that calls this).
func (mc *MC) Reset() {
	mc.reads, mc.writes = 0, 0
	mc.out.Reset()
}

// Reads returns the number of DRAM reads serviced.
func (mc *MC) Reads() int64 { return mc.reads }

// Writes returns the number of DRAM writes absorbed.
func (mc *MC) Writes() int64 { return mc.writes }

// mcSendEv injects a DRAM reply once the access latency has elapsed.
func mcSendEv(a, b any, _ int64) {
	a.(*MC).send(b.(*noc.Message))
}

func (mc *MC) handle(m *noc.Message) {
	switch m.Kind {
	case KindRead:
		mc.reads++
		resp := noc.NewMessage()
		resp.VN = noc.VNResp
		resp.Class = noc.ClassResponse
		resp.Src = mc.id
		resp.Dst = m.Src
		resp.Flits = mc.blockFlits
		resp.Kind = KindReadResp
		resp.Addr = m.Addr
		resp.Txn = m.Txn
		mc.eng.Post(mc.lat, mcSendEv, mc, resp, 0)
	case KindWrite:
		mc.writes++
		// Latency-only model: the write is absorbed.
	default:
		panic("mem: unexpected message kind")
	}
	noc.Release(m)
}

func (mc *MC) send(m *noc.Message) {
	mc.out.Send(m)
}
