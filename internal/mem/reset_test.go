package mem

import (
	"testing"

	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

// TestMCReset: a reset controller zeroes its counters and services fresh
// traffic normally.
func TestMCReset(t *testing.T) {
	cfg := config.Default()
	eng := sim.NewEngine()
	mesh := noc.NewMesh(eng, &cfg)
	mc := New(eng, mesh, &cfg, 0)
	src := noc.TileID(7, 0, cfg.MeshWidth)
	responses := 0
	mesh.Register(src, func(m *noc.Message) {
		if m.Kind == KindReadResp {
			responses++
		}
	})
	send := func(kind int, txn uint64) {
		if !mesh.Send(&noc.Message{VN: noc.VNReq, Class: noc.ClassRequest,
			Src: src, Dst: mc.ID(), Flits: 1, Kind: kind, Txn: txn}) {
			t.Fatal("send failed")
		}
	}
	send(KindRead, 1)
	send(KindWrite, 2)
	eng.RunAll()
	if mc.Reads() != 1 || mc.Writes() != 1 || responses != 1 {
		t.Fatalf("setup: reads=%d writes=%d responses=%d", mc.Reads(), mc.Writes(), responses)
	}
	mc.Reset()
	mesh.Reset()
	eng.Reset()
	if mc.Reads() != 0 || mc.Writes() != 0 {
		t.Fatal("reset MC reports nonzero counters")
	}
	send(KindRead, 3)
	eng.RunAll()
	if mc.Reads() != 1 || responses != 2 {
		t.Fatalf("post-reset: reads=%d responses=%d", mc.Reads(), responses)
	}
}
