package mem

import (
	"testing"

	"rackni/internal/config"
	"rackni/internal/noc"
	"rackni/internal/sim"
)

func TestReadLatencyAndPipelining(t *testing.T) {
	cfg := config.Default()
	eng := sim.NewEngine()
	mesh := noc.NewMesh(eng, &cfg)
	mc := New(eng, mesh, &cfg, 3)
	src := noc.TileID(7, 3, cfg.MeshWidth) // adjacent to the row-3 MC
	var arrivals []int64
	mesh.Register(src, func(m *noc.Message) {
		if m.Kind == KindReadResp {
			arrivals = append(arrivals, eng.Now())
		}
	})
	for i := 0; i < 4; i++ {
		ok := mesh.Send(&noc.Message{
			VN: noc.VNReq, Class: noc.ClassRequest,
			Src: src, Dst: mc.ID(), Flits: 1,
			Kind: KindRead, Addr: uint64(i * 64), Txn: uint64(i),
		})
		if !ok {
			t.Fatal("send failed")
		}
	}
	eng.RunAll()
	if len(arrivals) != 4 {
		t.Fatalf("got %d responses, want 4", len(arrivals))
	}
	// Latency-only model: each response sees >= DRAM latency.
	if arrivals[0] < cfg.MemLatencyCycles() {
		t.Fatalf("first response at %d, before DRAM latency %d", arrivals[0], cfg.MemLatencyCycles())
	}
	// Fully pipelined: responses arrive close together (serialized only by
	// the NOC), not spaced by a full DRAM latency each.
	if arrivals[3]-arrivals[0] >= 3*cfg.MemLatencyCycles() {
		t.Fatalf("responses serialized by DRAM latency: %v", arrivals)
	}
	if mc.Reads() != 4 {
		t.Fatalf("reads=%d", mc.Reads())
	}
}

func TestWriteAbsorbed(t *testing.T) {
	cfg := config.Default()
	eng := sim.NewEngine()
	mesh := noc.NewMesh(eng, &cfg)
	mc := New(eng, mesh, &cfg, 0)
	src := noc.TileID(7, 0, cfg.MeshWidth)
	mesh.Register(src, func(m *noc.Message) { t.Fatal("writes must not be acknowledged") })
	mesh.Send(&noc.Message{
		VN: noc.VNReq, Class: noc.ClassRequest,
		Src: src, Dst: mc.ID(), Flits: cfg.BlockFlits(),
		Kind: KindWrite, Addr: 0x1000,
	})
	eng.RunAll()
	if mc.Writes() != 1 {
		t.Fatalf("writes=%d", mc.Writes())
	}
}
