package sim

import (
	"context"
	"testing"
)

// TestEngineReset: a reset engine is indistinguishable from a fresh one —
// clock at 0, no pending events (wheel and overflow), and a subsequent
// run schedules from scratch.
func TestEngineReset(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(3, func() { ran++ })
	e.Schedule(10_000, func() { ran++ }) // overflow-heap event
	e.Run(5)
	if ran != 1 || e.Now() != 5+1 {
		t.Fatalf("setup: ran=%d now=%d", ran, e.Now())
	}
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatalf("after Reset: now=%d pending=%d, want 0/0", e.Now(), e.Pending())
	}
	// The dropped overflow event must not fire on the next run.
	e.Run(20_000)
	if ran != 1 {
		t.Fatalf("dropped event fired after Reset (ran=%d)", ran)
	}
	// The engine schedules and runs normally after a reset.
	e.Schedule(7, func() { ran += 10 })
	e.Run(100)
	if ran != 11 {
		t.Fatalf("post-Reset run: ran=%d, want 11", ran)
	}
	// Resetting an idle engine is a no-op.
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 {
		t.Fatal("idle Reset not clean")
	}
}

// TestCancelWatchDisarm: after an engine reset dropped the poll chain,
// Disarm lets a later Arm schedule a fresh chain (without it the watch
// would believe a chain is still live and never poll again).
func TestCancelWatchDisarm(t *testing.T) {
	e := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewCancelWatch(e, 10, func() context.Context { return ctx })
	w.Arm()
	if e.Pending() != 1 {
		t.Fatalf("armed watch scheduled %d events, want 1", e.Pending())
	}
	e.Reset()
	w.Disarm()
	w.Arm()
	if e.Pending() != 1 {
		t.Fatalf("re-armed watch scheduled %d events, want 1", e.Pending())
	}
	cancel()
	e.Schedule(100, func() {})
	e.Run(1000)
	if err := w.Err(); err == nil {
		t.Fatal("cancelled context not reported after disarm/re-arm")
	}
}
