package sim

import "testing"

// Calendar entries must run before any wheel event of their cycle, ordered
// by (src, seq) regardless of insertion order.
func TestCalendarDrainsBeforeWheelInKeyOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	rec := func(id int) EventFunc {
		return func(_, _ any, _ int64) { got = append(got, id) }
	}
	e.Post(10, rec(100), nil, nil, 0) // wheel event at cycle 10
	// Insert calendar entries out of key order.
	e.PostCanonical(10, 2, 1, rec(21), nil, nil, 0)
	e.PostCanonical(10, 1, 2, rec(12), nil, nil, 0)
	e.PostCanonical(10, 1, 1, rec(11), nil, nil, 0)
	e.PostCanonical(5, 3, 7, rec(37), nil, nil, 0)
	e.RunAll()
	want := []int{37, 11, 12, 21, 100}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ran %v, want %v", got, want)
		}
	}
}

// An engine whose only pending work is a calendar entry must advance to it
// (the skip-ahead path must consider the calendar head).
func TestCalendarAloneAdvancesClock(t *testing.T) {
	e := NewEngine()
	fired := int64(-1)
	e.PostCanonical(9000, 0, 1, func(_, _ any, _ int64) { fired = e.Now() }, nil, nil, 0)
	e.RunAll()
	if fired != 9000 {
		t.Fatalf("calendar entry fired at %d, want 9000", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending=%d after drain", e.Pending())
	}
}

// Run(until) must stop short of a calendar entry beyond the budget and
// execute it on a later Run — the barrier-resume path of a sharded run.
func TestCalendarAcrossRunWindows(t *testing.T) {
	e := NewEngine()
	ran := false
	keep := func(_, _ any, _ int64) {} // keeps pending > 0 like a poller would
	e.Post(5000, keep, nil, nil, 0)
	e.PostCanonical(100, 4, 1, func(_, _ any, _ int64) { ran = true }, nil, nil, 0)
	e.Run(50)
	if ran {
		t.Fatal("entry at 100 ran inside window [0,50]")
	}
	if e.Now() != 51 {
		t.Fatalf("engine parked at %d, want 51", e.Now())
	}
	// Posting for the park cycle itself is legal between windows.
	at51 := false
	e.PostCanonical(51, 9, 1, func(_, _ any, _ int64) { at51 = e.Now() == 51 }, nil, nil, 0)
	e.Run(200)
	if !ran || !at51 {
		t.Fatalf("ran=%v at51=%v after second window", ran, at51)
	}
	if e.Reset(); e.Pending() != 0 {
		t.Fatal("Reset left calendar entries pending")
	}
}

func TestCalendarPostIntoPastPanics(t *testing.T) {
	e := NewEngine()
	e.Post(10, func(_, _ any, _ int64) {
		defer func() {
			if recover() == nil {
				t.Error("PostCanonical into the past did not panic")
			}
		}()
		e.PostCanonical(5, 0, 1, func(_, _ any, _ int64) {}, nil, nil, 0)
	}, nil, nil, 0)
	e.RunAll()
}
