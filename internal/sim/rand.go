package sim

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Simulation components must not use math/rand global state:
// every component that needs randomness owns a Rand seeded from the
// configuration so runs are reproducible.
type Rand struct {
	s uint64
}

// NewRand returns a generator with the given non-zero seed (a zero seed is
// replaced by a fixed constant).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }
