package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int64
	for _, d := range []int64{5, 3, 3, 0, 10000, 4096, 4095, 1} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	want := []int64{0, 1, 3, 3, 5, 4095, 4096, 10000}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events out of insertion order: %v", order)
		}
	}
}

func TestZeroDelayFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var seq []string
	e.Schedule(2, func() {
		seq = append(seq, "a")
		e.Schedule(0, func() { seq = append(seq, "b") })
		e.Schedule(1, func() { seq = append(seq, "c") })
	})
	e.Schedule(2, func() { seq = append(seq, "a2") })
	e.RunAll()
	want := []string{"a", "a2", "b", "c"}
	for i := range want {
		if i >= len(seq) || seq[i] != want[i] {
			t.Fatalf("got %v want %v", seq, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Run(15)
	if fired != 1 {
		t.Fatalf("fired=%d want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending=%d want 1", e.Pending())
	}
	e.RunAll()
	if fired != 2 {
		t.Fatalf("fired=%d want 2", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 5; i++ {
		e.Schedule(1, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run(100)
	if count != 2 {
		t.Fatalf("count=%d want 2", count)
	}
	// Remaining events must still be runnable afterwards.
	e.RunAll()
	if count != 5 {
		t.Fatalf("count=%d want 5 after resume", count)
	}
}

func TestLongDelayReHoming(t *testing.T) {
	e := NewEngine()
	var at []int64
	delays := []int64{wheelSize, wheelSize + 1, 3 * wheelSize, 10 * wheelSize}
	for _, d := range delays {
		e.Schedule(d, func() { at = append(at, e.Now()) })
	}
	e.RunAll()
	for i, d := range delays {
		if at[i] != d {
			t.Fatalf("delay %d fired at %d", d, at[i])
		}
	}
}

// Property: regardless of the delay multiset, events fire exactly once, in
// nondecreasing time order, at now+delay.
func TestSchedulePropertyOrdered(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		var fireTimes []int64
		want := make([]int64, 0, len(raw))
		for _, d := range raw {
			d := int64(d)
			want = append(want, d)
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.RunAll()
		if len(fireTimes) != len(raw) {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fireTimes[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 1000 {
			e.Schedule(3, step)
		}
	}
	e.Schedule(0, step)
	end := e.RunAll()
	if depth != 1000 {
		t.Fatalf("depth=%d", depth)
	}
	if end != 3*999 {
		t.Fatalf("end=%d want %d", end, 3*999)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds look identical")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}
