package sim

import (
	"context"
	"testing"
)

// TestCancelWatchStopsRun: an armed watch halts the engine at its next
// poll once the context is cancelled, and reports the cancellation.
func TestCancelWatchStopsRun(t *testing.T) {
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewCancelWatch(eng, 100, func() context.Context { return ctx })
	w.Arm()

	// Keep the engine busy well past the first poll.
	ticks := 0
	var busy func()
	busy = func() {
		ticks++
		if ticks < 1000 {
			eng.Schedule(1, busy)
		}
	}
	eng.Schedule(0, busy)
	cancel()
	eng.Run(10_000)
	if eng.Now() > 100 {
		t.Fatalf("engine ran to cycle %d; watch should have stopped it at the first poll", eng.Now())
	}
	if w.Err() == nil {
		t.Fatal("watch stopped the run but reports no error")
	}
}

// TestCancelWatchNilContext: a nil or non-cancellable context arms
// nothing and costs nothing.
func TestCancelWatchNilContext(t *testing.T) {
	eng := NewEngine()
	w := NewCancelWatch(eng, 100, func() context.Context { return nil })
	w.Arm()
	if eng.Pending() != 0 {
		t.Fatalf("nil context scheduled %d events", eng.Pending())
	}
	w2 := NewCancelWatch(eng, 100, func() context.Context { return context.Background() })
	w2.Arm()
	if eng.Pending() != 0 {
		t.Fatalf("non-cancellable context scheduled %d events", eng.Pending())
	}
}

// TestCancelWatchLateCancel: a cancellation landing after the run
// completed does not retroactively fail it.
func TestCancelWatchLateCancel(t *testing.T) {
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	w := NewCancelWatch(eng, 100, func() context.Context { return ctx })
	w.Arm()
	done := false
	eng.Schedule(10, func() { done = true; eng.Stop() })
	eng.Run(1_000)
	if !done {
		t.Fatal("run did not reach its own completion")
	}
	cancel()
	if w.Err() != nil {
		t.Fatalf("late cancellation reported against a completed run: %v", w.Err())
	}
}

// TestCancelWatchRearm: one chain serves consecutive runs; a second Arm
// while the chain is live schedules nothing extra.
func TestCancelWatchRearm(t *testing.T) {
	eng := NewEngine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := NewCancelWatch(eng, 100, func() context.Context { return ctx })
	w.Arm()
	p := eng.Pending()
	w.Arm()
	if eng.Pending() != p {
		t.Fatalf("re-arming a live watch scheduled extra events (%d -> %d)", p, eng.Pending())
	}
}
