package sim

import "testing"

// TestPostInterleavesWithSchedule checks that Post and Schedule events for
// the same cycle run in their combined scheduling order.
func TestPostInterleavesWithSchedule(t *testing.T) {
	e := NewEngine()
	var order []int
	add := func(k int) func() { return func() { order = append(order, k) } }
	e.Schedule(5, add(0))
	e.Post(5, func(_, _ any, i int64) { order = append(order, int(i)) }, nil, nil, 1)
	e.Schedule(5, add(2))
	e.Post(5, func(_, _ any, i int64) { order = append(order, int(i)) }, nil, nil, 3)
	e.RunAll()
	for k, v := range order {
		if v != k {
			t.Fatalf("order %v, want [0 1 2 3]", order)
		}
	}
}

// TestPostArguments checks the packed arguments arrive intact.
func TestPostArguments(t *testing.T) {
	e := NewEngine()
	type box struct{ v int }
	a, b := &box{1}, &box{2}
	ran := false
	e.Post(3, func(x, y any, i int64) {
		ran = true
		if x.(*box) != a || y.(*box) != b || i != -7 {
			t.Errorf("got (%v, %v, %d)", x, y, i)
		}
	}, a, b, -7)
	if at := e.RunAll(); at != 3 {
		t.Fatalf("ran to %d, want 3", at)
	}
	if !ran {
		t.Fatal("event did not run")
	}
}

// TestFastForwardSkipsEmptyCycles checks that sparse timelines execute at
// the right cycles and that Run honors its limit exactly like the
// cycle-by-cycle kernel did (stopping at until+1 with work pending).
func TestFastForwardSkipsEmptyCycles(t *testing.T) {
	e := NewEngine()
	var at []int64
	note := func(_, _ any, _ int64) { at = append(at, e.Now()) }
	// Within the wheel, far apart.
	e.Post(1, note, nil, nil, 0)
	e.Post(4000, note, nil, nil, 0)
	// Beyond the wheel horizon (overflow heap).
	e.Post(10_000, note, nil, nil, 0)
	e.Post(1_000_000, note, nil, nil, 0)
	if got := e.Run(500_000); got != 500_001 {
		t.Fatalf("Run(500000) = %d, want 500001", got)
	}
	if got := e.RunAll(); got != 1_000_000 {
		t.Fatalf("RunAll() = %d, want 1000000", got)
	}
	want := []int64{1, 4000, 10_000, 1_000_000}
	if len(at) != len(want) {
		t.Fatalf("fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	}
}

// TestFastForwardChainedWakeups checks that an event scheduled from inside
// another event (after a long idle gap) still runs at the right time.
func TestFastForwardChainedWakeups(t *testing.T) {
	e := NewEngine()
	var trace []int64
	var step EventFunc
	step = func(_, _ any, depth int64) {
		trace = append(trace, e.Now())
		if depth < 4 {
			e.Post(1000*depth+1, step, nil, nil, depth+1)
		}
	}
	e.Post(0, step, nil, nil, 1)
	e.RunAll()
	want := []int64{0, 1001, 3002, 6003}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}
