// Package sim provides the discrete-event simulation kernel used by every
// timed component in the simulator: a deterministic engine with a timing
// wheel for short delays and an overflow heap for long ones.
//
// All simulated time is measured in core clock cycles (2 GHz in the default
// configuration, i.e. one cycle = 0.5 ns). Components schedule handlers to
// run at future cycles; the engine runs them in (time, insertion-order)
// order, which makes every simulation fully deterministic.
//
// The kernel is allocation-free in steady state: events are plain records
// stored by value in per-slot wheel buffers whose backing arrays are
// compacted in place and reused, so the only allocations are the one-time
// growth of those buffers. Hot-path components schedule through Post, which
// carries a static handler function plus packed arguments; Schedule remains
// as the closure-based convenience API for cold paths (a closure the caller
// already holds is stored without boxing, since func values are
// pointer-shaped).
package sim

import "math/bits"

// wheelSize must be a power of two and larger than the most common delays
// (cache latencies, per-hop link times, DRAM latency, network hop latency).
// Delays beyond the wheel fall into the overflow heap.
const wheelSize = 4096

// EventFunc is an event handler. It receives the two reference arguments
// and the packed integer argument the event was scheduled with. Handlers
// are top-level functions (or other static func values), so posting an
// event stores no closure: pointer arguments convert to `any` without
// allocating.
type EventFunc func(a, b any, i int64)

// event is one scheduled occurrence. Events are stored by value; the wheel
// slot buffers double as the free list, so an executed event's record is
// reused by a later Schedule/Post into the same slot. Wheel slots execute
// in append order, which equals schedule order for same-cycle events, so
// no sequence number is stored; only the overflow heap needs one.
type event struct {
	at   int64
	fn   EventFunc
	a, b any
	i    int64
}

// overEvent is a heap entry: an event plus the insertion order that breaks
// same-cycle ties deterministically.
type overEvent struct {
	event
	seq uint64
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     int64
	seq     uint64
	pending int
	wheel   [wheelSize][]event
	occ     [wheelSize / 64]uint64 // bitmap of non-empty wheel slots
	over    overflowHeap
	cal     calHeap // canonical calendar, drained before each cycle's wheel
	stopped bool
}

// NewEngine returns an engine positioned at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in cycles.
func (e *Engine) Now() int64 { return e.now }

// Reset returns the engine to its just-built state: every pending event is
// dropped (wheel slots, occupancy bitmap and overflow heap cleared) and the
// clock rewinds to cycle 0. The run lifecycle uses it to make a reused
// engine indistinguishable from a fresh one; callers must re-arm any
// self-sustaining event chains (pollers, watchdogs) afterwards. Slot and
// heap backing arrays are kept, so a reset engine re-runs without
// re-growing them.
func (e *Engine) Reset() {
	if e.pending > 0 {
		for slot := range e.wheel {
			evs := e.wheel[slot]
			for i := range evs {
				evs[i] = event{}
			}
			e.wheel[slot] = evs[:0]
		}
		for i := range e.over {
			e.over[i] = overEvent{}
		}
		e.over = e.over[:0]
		for i := range e.cal {
			e.cal[i] = calEvent{}
		}
		e.cal = e.cal[:0]
	}
	e.occ = [wheelSize / 64]uint64{}
	e.pending = 0
	e.seq = 0
	e.now = 0
	e.stopped = false
}

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return e.pending }

// Post runs fn(a, b, i) after delay cycles (delay >= 0). A delay of zero
// runs the event later in the current cycle, after all previously scheduled
// work for this cycle. Post is the allocation-free scheduling path: fn
// should be a static function and a/b pointer-shaped values.
func (e *Engine) Post(delay int64, fn EventFunc, a, b any, i int64) {
	if delay < 0 {
		delay = 0
	}
	at := e.now + delay
	e.pending++
	if delay < wheelSize {
		slot := int(at & (wheelSize - 1))
		e.wheel[slot] = append(e.wheel[slot], event{at: at, fn: fn, a: a, b: b, i: i})
		e.occ[slot>>6] |= 1 << uint(slot&63)
		return
	}
	e.seq++
	e.over.push(overEvent{event: event{at: at, fn: fn, a: a, b: b, i: i}, seq: e.seq})
}

// runClosure is the trampoline behind Schedule.
func runClosure(a, _ any, _ int64) { a.(func())() }

// Schedule runs fn after delay cycles (delay >= 0). A delay of zero runs fn
// later in the current cycle, after all previously scheduled work for this
// cycle. Storing fn allocates nothing beyond what the caller already paid
// to build the func value.
func (e *Engine) Schedule(delay int64, fn func()) {
	e.Post(delay, runClosure, fn, nil, 0)
}

// At runs fn at the absolute cycle t (t >= Now()).
func (e *Engine) At(t int64, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Stop makes Run return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the given cycle (inclusive) or until no events
// remain or Stop is called. It returns the cycle at which it stopped.
//
// Cycles with no due events are skipped in O(1) per wheel word rather than
// visited one at a time, so lightly loaded phases (DRAM waits, network
// hops) cost nothing.
func (e *Engine) Run(until int64) int64 {
	e.stopped = false
	for e.now <= until && e.pending > 0 && !e.stopped {
		// Canonical calendar entries run first, in (src, seq) order: their
		// position in the cycle must depend only on their keys, never on
		// the order the wheel's append history would impose.
		if !e.drainCalendar() {
			return e.now
		}
		slot := int(e.now & (wheelSize - 1))
		evs := e.wheel[slot]
		if len(evs) > 0 {
			// Execute due events, compacting events that belong to a future
			// lap of the wheel in place so the backing array is reused.
			i, w := 0, 0
			for i < len(evs) {
				ev := evs[i]
				i++
				if ev.at != e.now {
					evs[w] = ev
					w++
					continue
				}
				e.pending--
				ev.fn(ev.a, ev.b, ev.i)
				if e.stopped {
					// Preserve the untouched remainder in place.
					evs = e.wheel[slot]
					w += copy(evs[w:], evs[i:])
					break
				}
				// fn may have appended to this slot (and grown the backing
				// array); refresh.
				evs = e.wheel[slot]
			}
			// The dropped tail is NOT zeroed: under load the slot is
			// overwritten within one wheel lap anyway, and the per-cycle
			// memclr of executed events was a measurable cost at cluster
			// scale (64 nodes sharing one wheel). Executed events may pin
			// their (pooled, recycled) arguments until the slot's next
			// append — bounded staleness, no correctness effect.
			e.wheel[slot] = evs[:w]
			if w == 0 {
				e.occ[slot>>6] &^= 1 << uint(slot&63)
			}
			if e.stopped {
				return e.now
			}
		}
		// Drain overflow events that are due now (long delays can land on
		// the current cycle once the wheel catches up).
		for len(e.over) > 0 && e.over[0].at == e.now {
			ev := e.over.pop()
			e.pending--
			ev.fn(ev.a, ev.b, ev.i)
			if e.stopped {
				return e.now
			}
		}
		if e.pending == 0 {
			break
		}
		// Advance to the next cycle that can have work: the nearest
		// occupied wheel slot or the overflow head, whichever is sooner.
		next := e.now + e.nextOccupiedDelta()
		if len(e.over) > 0 && e.over[0].at < next {
			next = e.over[0].at
		}
		if len(e.cal) > 0 && e.cal[0].at < next {
			next = e.cal[0].at
		}
		if next > until {
			e.now = until + 1
			break
		}
		e.now = next
		// Re-home overflow events that are now within the wheel horizon.
		for len(e.over) > 0 && e.over[0].at-e.now < wheelSize {
			ev := e.over.pop()
			s := int(ev.at & (wheelSize - 1))
			e.wheel[s] = append(e.wheel[s], ev.event)
			e.occ[s>>6] |= 1 << uint(s&63)
		}
	}
	return e.now
}

// nextOccupiedDelta returns the distance (1..wheelSize) to the next
// occupied wheel slot, or a value past the wheel horizon when the wheel is
// empty.
func (e *Engine) nextOccupiedDelta() int64 {
	start := int((e.now + 1) & (wheelSize - 1))
	wi := start >> 6
	// First word: mask off slots at distance < 1.
	if w := e.occ[wi] >> uint(start&63); w != 0 {
		return int64(bits.TrailingZeros64(w)) + 1
	}
	const words = wheelSize / 64
	for k := 1; k <= words; k++ {
		j := (wi + k) & (words - 1)
		if w := e.occ[j]; w != 0 {
			// Circular distance from the start slot to the found slot.
			d := int64(j<<6+bits.TrailingZeros64(w)) - int64(start)
			if d <= 0 {
				d += wheelSize
			}
			return d + 1
		}
	}
	// Empty wheel: any jump larger than the horizon works; the caller caps
	// it with the overflow head and the run limit.
	return wheelSize + 1
}

// RunAll executes events until none remain (or Stop is called).
func (e *Engine) RunAll() int64 {
	return e.Run(1<<62 - 1)
}

// overflowHeap is a hand-rolled binary min-heap of events ordered by
// (at, seq). container/heap would box every event in an interface; this
// keeps the records by value.
type overflowHeap []overEvent

func (h overflowHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *overflowHeap) push(ev overEvent) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *overflowHeap) pop() overEvent {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = overEvent{} // release references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && s.less(l, sm) {
			sm = l
		}
		if r < n && s.less(r, sm) {
			sm = r
		}
		if sm == i {
			break
		}
		s[i], s[sm] = s[sm], s[i]
		i = sm
	}
	return top
}
