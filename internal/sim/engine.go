// Package sim provides the discrete-event simulation kernel used by every
// timed component in the simulator: a deterministic engine with a timing
// wheel for short delays and an overflow heap for long ones.
//
// All simulated time is measured in core clock cycles (2 GHz in the default
// configuration, i.e. one cycle = 0.5 ns). Components schedule closures to
// run at future cycles; the engine runs them in (time, insertion-order)
// order, which makes every simulation fully deterministic.
package sim

import "container/heap"

// wheelSize must be a power of two and larger than the most common delays
// (cache latencies, per-hop link times, DRAM latency, network hop latency).
// Delays beyond the wheel fall into the overflow heap.
const wheelSize = 4096

// Event is a scheduled closure.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is not usable; call NewEngine.
type Engine struct {
	now     int64
	seq     uint64
	pending int
	wheel   [wheelSize][]event
	over    overflowHeap
	stopped bool
}

// NewEngine returns an engine positioned at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time in cycles.
func (e *Engine) Now() int64 { return e.now }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return e.pending }

// Schedule runs fn after delay cycles (delay >= 0). A delay of zero runs fn
// later in the current cycle, after all previously scheduled work for this
// cycle.
func (e *Engine) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	at := e.now + delay
	e.seq++
	e.pending++
	if delay < wheelSize {
		slot := at & (wheelSize - 1)
		e.wheel[slot] = append(e.wheel[slot], event{at: at, seq: e.seq, fn: fn})
		return
	}
	heap.Push(&e.over, event{at: at, seq: e.seq, fn: fn})
}

// At runs fn at the absolute cycle t (t >= Now()).
func (e *Engine) At(t int64, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Stop makes Run return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the given cycle (inclusive) or until no events
// remain or Stop is called. It returns the cycle at which it stopped.
func (e *Engine) Run(until int64) int64 {
	e.stopped = false
	for e.now <= until && e.pending > 0 && !e.stopped {
		slot := e.now & (wheelSize - 1)
		evs := e.wheel[slot]
		if len(evs) > 0 {
			// Events scheduled for a future lap of the wheel stay.
			var keep []event
			i := 0
			for i < len(evs) {
				ev := evs[i]
				i++
				if ev.at != e.now {
					keep = append(keep, ev)
					continue
				}
				e.pending--
				ev.fn()
				if e.stopped {
					// Preserve the untouched remainder.
					keep = append(keep, evs[i:]...)
					break
				}
				// fn may have appended to this slot; refresh.
				evs = e.wheel[slot]
			}
			e.wheel[slot] = keep
			if e.stopped {
				return e.now
			}
		}
		// Drain overflow events that are due now (long delays can land on
		// the current cycle once the wheel catches up).
		for len(e.over) > 0 && e.over[0].at == e.now {
			ev := heap.Pop(&e.over).(event)
			e.pending--
			ev.fn()
			if e.stopped {
				return e.now
			}
		}
		if e.pending == 0 {
			break
		}
		e.now++
		// Re-home overflow events that are now within the wheel horizon.
		for len(e.over) > 0 && e.over[0].at-e.now < wheelSize {
			ev := heap.Pop(&e.over).(event)
			slot := ev.at & (wheelSize - 1)
			e.wheel[slot] = append(e.wheel[slot], ev)
		}
	}
	return e.now
}

// RunAll executes events until none remain (or Stop is called).
func (e *Engine) RunAll() int64 {
	return e.Run(1<<62 - 1)
}

type overflowHeap []event

func (h overflowHeap) Len() int { return len(h) }
func (h overflowHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h overflowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *overflowHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *overflowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
