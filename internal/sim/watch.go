package sim

import "context"

// CancelWatch is a periodic context poll that stops an engine once the
// watched context is cancelled. It exists because engine ownership is no
// longer one-to-one: a single engine may drive one node or a whole
// cluster of them, and exactly one watchdog chain should poll the run's
// context regardless of how many components share the engine. The poll
// events mutate no simulator state, so results are bit-identical with and
// without an armed watch.
//
// The context is read through a getter so the owner can attach, replace
// or detach it between runs without re-wiring the watch.
type CancelWatch struct {
	eng    *Engine
	period int64
	ctx    func() context.Context

	watched bool // a poll chain is already scheduled
	fired   bool // the watch stopped the current run
}

// NewCancelWatch builds a watch polling ctx() every period cycles.
func NewCancelWatch(eng *Engine, period int64, ctx func() context.Context) *CancelWatch {
	return &CancelWatch{eng: eng, period: period, ctx: ctx}
}

// Arm starts the poll chain if one is not already pending. Call it at the
// start of every run: it resets the fired flag so Err only reports
// cancellations that actually stopped the current run, not ones landing
// after it completed. A nil or non-cancellable context arms nothing.
func (w *CancelWatch) Arm() {
	w.fired = false
	if w.watched {
		return
	}
	ctx := w.ctx()
	if ctx == nil || ctx.Done() == nil {
		return
	}
	w.watched = true
	var tick func()
	tick = func() {
		// The chain may outlive the run that armed it (the engine keeps
		// pending ticks across runs on a reused node). Tear it down if the
		// context was detached or replaced by a non-cancellable one, and
		// disarm on teardown so a later Arm schedules a fresh chain.
		ctx := w.ctx()
		if ctx == nil || ctx.Done() == nil {
			w.watched = false
			return
		}
		if ctx.Err() != nil {
			w.watched = false
			w.fired = true
			w.eng.Stop()
			return
		}
		w.eng.Schedule(w.period, tick)
	}
	w.eng.Schedule(w.period, tick)
}

// Disarm forgets any scheduled poll chain without touching the engine.
// Call it after Engine.Reset (which dropped the chain's pending event) so
// a later Arm schedules a fresh chain instead of assuming one is live.
func (w *CancelWatch) Disarm() {
	w.watched = false
	w.fired = false
}

// Err reports the context's cancellation error if the watch stopped the
// current run; a run that completed before the cancellation landed keeps
// its result (nil error).
func (w *CancelWatch) Err() error {
	if !w.fired {
		return nil
	}
	if ctx := w.ctx(); ctx != nil {
		return ctx.Err()
	}
	return nil
}
