// Canonical calendar events. The cluster fabric needs a delivery order
// that is a pure function of WHAT was sent, never of WHEN the sending
// shard's engine happened to execute relative to the receiver's: a wheel
// slot runs in append order, so an event's intra-cycle position encodes
// the global posting history — exactly the thing a parallel sharded run
// cannot reproduce. Calendar events fix that by carrying their own total
// order: each is keyed (cycle, source, sequence) and the engine drains all
// calendar events due at a cycle — in key order — BEFORE that cycle's
// wheel and overflow events. Two engines handed the same set of calendar
// entries for a cycle therefore execute them identically, no matter which
// engine (or barrier exchange) queued them first.
package sim

// calEvent is one canonical calendar entry: an event plus its total-order
// key. src is the originating cluster node, seq that node's private
// monotone counter — (at, src, seq) is unique, so heap order is a pure
// function of the entry set.
type calEvent struct {
	at   int64
	src  int32
	seq  uint64
	fn   EventFunc
	a, b any
	i    int64
}

// PostCanonical schedules fn(a, b, i) to run at absolute cycle `at` in the
// canonical pre-phase: before any wheel or overflow event of that cycle,
// ordered against other calendar entries by (at, src, seq). `at` must not
// be in the past; posting for the current cycle is only legal while the
// engine is parked between cycles (a shard barrier) — from inside a
// running cycle the pre-phase has already drained, so callers there must
// post strictly into the future.
func (e *Engine) PostCanonical(at int64, src int32, seq uint64, fn EventFunc, a, b any, i int64) {
	if at < e.now {
		panic("sim: canonical event posted into the past")
	}
	e.pending++
	e.cal.push(calEvent{at: at, src: src, seq: seq, fn: fn, a: a, b: b, i: i})
}

// drainCalendar runs every calendar entry due at the current cycle, in
// (src, seq) order. It returns false if Stop was called mid-drain.
func (e *Engine) drainCalendar() bool {
	for len(e.cal) > 0 && e.cal[0].at == e.now {
		ev := e.cal.pop()
		e.pending--
		ev.fn(ev.a, ev.b, ev.i)
		if e.stopped {
			return false
		}
	}
	return true
}

// calHeap is a binary min-heap of calendar entries ordered by
// (at, src, seq) — by value, like the overflow heap.
type calHeap []calEvent

func (h calHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].src != h[j].src {
		return h[i].src < h[j].src
	}
	return h[i].seq < h[j].seq
}

func (h *calHeap) push(ev calEvent) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s.less(i, p) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *calHeap) pop() calEvent {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s[n] = calEvent{} // release references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		sm := i
		if l < n && s.less(l, sm) {
			sm = l
		}
		if r < n && s.less(r, sm) {
			sm = r
		}
		if sm == i {
			break
		}
		s[i], s[sm] = s[sm], s[i]
		i = sm
	}
	return top
}
