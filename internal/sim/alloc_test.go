package sim

import "testing"

// TestPostZeroAllocSteadyState verifies the kernel's core claim: once the
// wheel's slot buffers have grown, scheduling and running events allocates
// nothing.
func TestPostZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	var fired int64
	count := func(_, _ any, i int64) { fired += i }
	// Warm every wheel slot to the depth this workload needs (the batches
	// below place at most 4 events per slot, wherever Now() has drifted).
	for pass := 0; pass < 8; pass++ {
		for d := int64(0); d < wheelSize; d++ {
			e.Post(d, count, nil, nil, 0)
		}
	}
	e.RunAll()
	avg := testing.AllocsPerRun(100, func() {
		for d := int64(0); d < 64; d++ {
			e.Post(d%16, count, e, nil, 1)
		}
		e.RunAll()
	})
	if avg != 0 {
		t.Fatalf("steady-state Post+Run allocates %.2f objects per batch, want 0", avg)
	}
	if fired == 0 {
		t.Fatal("events did not run")
	}
}

// TestScheduleZeroAllocWithPrebuiltClosure verifies the compatibility path:
// Schedule with an already-built func value stores it without boxing.
func TestScheduleZeroAllocWithPrebuiltClosure(t *testing.T) {
	e := NewEngine()
	n := 0
	fn := func() { n++ }
	for pass := 0; pass < 4; pass++ {
		for d := int64(0); d < wheelSize; d++ {
			e.Schedule(d, fn)
		}
	}
	e.RunAll()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			e.Schedule(int64(i%8), fn)
		}
		e.RunAll()
	})
	if avg != 0 {
		t.Fatalf("steady-state Schedule allocates %.2f objects per batch, want 0", avg)
	}
}

// BenchmarkEngineSchedule measures the kernel's raw event rate (and
// reports allocs, which must be ~0 in steady state).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	nop := func(_, _ any, _ int64) {}
	for i := 0; i < wheelSize; i++ {
		e.Post(int64(i%128), nop, nil, nil, 0)
	}
	e.RunAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Post(int64(i%128), nop, nil, nil, 0)
		if e.Pending() >= 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}
