package rackni

import (
	"fmt"
	"reflect"
	"testing"

	"rackni/internal/analytic"
)

// ---------------------------------------------------------------------------
// Golden renderer tests: synthetic results with fixed numbers, so a
// formatting regression cannot hide behind simulation noise.
// ---------------------------------------------------------------------------

func TestTable3FormatGolden(t *testing.T) {
	res := Table3Result{
		Rows: []BreakdownRow{
			{Design: NIEdge, Breakdown: Breakdown{WQWrite: 30, WQRead: 80, Dispatch: 20, Generate: 10, NetOut: 70, Remote: 210, NetBack: 70, Complete: 60, CQWrite: 80, CQRead: 80}, TotalCycles: 710, OverheadPct: 79.7},
			{Design: NIPerTile, Breakdown: Breakdown{WQWrite: 16, WQRead: 4, Dispatch: 0, Generate: 8, NetOut: 70, Remote: 210, NetBack: 70, Complete: 5, CQWrite: 40, CQRead: 22}, TotalCycles: 445, OverheadPct: 12.7},
			{Design: NISplit, Breakdown: Breakdown{WQWrite: 16, WQRead: 4, Dispatch: 23, Generate: 5, NetOut: 70, Remote: 210, NetBack: 70, Complete: 4, CQWrite: 30, CQRead: 15}, TotalCycles: 447, OverheadPct: 13.2},
		},
		NUMACycles: 395,
	}
	want := "Latency component (cycles)         NI_edge   NI_per-tile      NI_split    NUMA proj.\nWQ write (sw + coherence)               30            16            16             1\nWQ read / frontend                      80             4             4             -\nFrontend->backend transfer              20             0            23            23\nRequest generation                      10             8             5             -\nIntra-rack network (out)                70            70            70            70\nRemote service (RRPP)                  210           210           210           208\nIntra-rack network (back)               70            70            70            70\nCompletion (data write)                 60             5             4             -\nCQ write                                80            40            30            23\nCQ read (sw + coherence)                80            22            15             -\nTotal (2GHz cycles)                    710           445           447           395\nOverhead over NUMA                   79.7%         12.7%         13.2%\n"
	if got := res.Format(); got != want {
		t.Fatalf("Table3Result.Format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLatencySweepFormatGolden(t *testing.T) {
	res := LatencySweepResult{
		Topology: Mesh,
		Points: []LatencyPoint{
			{Design: NIEdge, Size: 64, NS: 355}, {Design: NIEdge, Size: 2048, NS: 501},
			{Design: NISplit, Size: 64, NS: 223}, {Design: NISplit, Size: 2048, NS: 370},
			{Design: NIPerTile, Size: 64, NS: 222}, {Design: NIPerTile, Size: 2048, NS: 388},
		},
		NUMA: map[int]float64{64: 197, 2048: 344},
	}
	want := "Latency (ns) on mesh\n  size (B)       NI_edge      NI_split   NI_per-tile    NUMA proj.\n        64           355           223           222           197\n      2048           501           370           388           344\n"
	if got := res.Format(); got != want {
		t.Fatalf("LatencySweepResult.Format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestBandwidthSweepFormatGolden(t *testing.T) {
	res := BandwidthSweepResult{
		Topology: NOCOut,
		Points: []BandwidthPoint{
			{Design: NIEdge, Size: 64, Result: BWResult{AppGBps: 26.1}},
			{Design: NIEdge, Size: 4096, Result: BWResult{AppGBps: 121.9}},
			{Design: NISplit, Size: 64, Result: BWResult{AppGBps: 26.8}},
			{Design: NISplit, Size: 4096, Result: BWResult{AppGBps: 130.4}},
			{Design: NIPerTile, Size: 64, Result: BWResult{AppGBps: 25.2}},
			{Design: NIPerTile, Size: 4096, Result: BWResult{AppGBps: 55.0}},
		},
	}
	want := "Application bandwidth (GB/s) on NOC-Out\n  size (B)       NI_edge      NI_split   NI_per-tile\n        64          26.1          26.8          25.2\n      4096         121.9         130.4          55.0\n"
	if got := res.Format(); got != want {
		t.Fatalf("BandwidthSweepResult.Format drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// ---------------------------------------------------------------------------
// Equivalence tests: the direct serial loops the experiment layer used
// before the sweep redesign, kept here as references. Each legacy entry
// point must return results identical to its pre-sweep implementation.
// ---------------------------------------------------------------------------

// refTable3 is the pre-sweep RunTable3.
func refTable3(cfg Config) (Table3Result, error) {
	var out Table3Result
	var splitComp analytic.Components
	for _, d := range []Design{NIEdge, NIPerTile, NISplit} {
		c := cfg
		c.Design = d
		n, err := NewNode(c, 1)
		if err != nil {
			return out, err
		}
		res, err := n.RunSyncLatency(cfg.BlockBytes, measureCore)
		if err != nil {
			return out, fmt.Errorf("%v: %w", d, err)
		}
		out.Rows = append(out.Rows, BreakdownRow{Design: d, Breakdown: res.Breakdown, TotalCycles: res.MeanCycles})
		if d == NISplit {
			splitComp = toComponents(res.Breakdown)
		}
	}
	out.NUMACycles = splitComp.NUMATotal(&cfg)
	for i := range out.Rows {
		out.Rows[i].OverheadPct = 100 * (out.Rows[i].TotalCycles - out.NUMACycles) / out.NUMACycles
	}
	return out, nil
}

// refFig6 is the pre-sweep RunFig6.
func refFig6(cfg Config, sizes []int) (LatencySweepResult, error) {
	out := LatencySweepResult{Topology: cfg.Topology, NUMA: make(map[int]float64)}
	var splitBase analytic.Components
	splitBySize := make(map[int]float64)
	for _, d := range []Design{NIEdge, NISplit, NIPerTile} {
		for _, size := range sizes {
			c := cfg
			c.Design = d
			n, err := NewNode(c, 1)
			if err != nil {
				return out, err
			}
			res, err := n.RunSyncLatency(size, measureCore)
			if err != nil {
				return out, fmt.Errorf("%v/%dB: %w", d, size, err)
			}
			out.Points = append(out.Points, LatencyPoint{Design: d, Size: size, NS: res.MeanNS})
			if d == NISplit {
				splitBySize[size] = res.MeanCycles
				if size == sizes[0] {
					splitBase = toComponents(res.Breakdown)
				}
			}
		}
	}
	for _, size := range sizes {
		numaCycles := analytic.NUMALatencyForSize(&cfg, splitBase, splitBySize[size])
		out.NUMA[size] = numaCycles * cfg.NsPerCycle()
	}
	return out, nil
}

// refFig7 is the pre-sweep RunFig7.
func refFig7(cfg Config, sizes []int) (BandwidthSweepResult, error) {
	out := BandwidthSweepResult{Topology: cfg.Topology}
	for _, d := range []Design{NIEdge, NISplit, NIPerTile} {
		for _, size := range sizes {
			c := cfg
			c.Design = d
			n, err := NewNode(c, 1)
			if err != nil {
				return out, err
			}
			res, err := n.RunBandwidth(size)
			if err != nil {
				return out, fmt.Errorf("%v/%dB: %w", d, size, err)
			}
			out.Points = append(out.Points, BandwidthPoint{Design: d, Size: size, Result: res})
		}
	}
	return out, nil
}

// refAblation is the pre-sweep RunRoutingAblation.
func refAblation(cfg Config, size int) (RoutingAblationResult, error) {
	out := RoutingAblationResult{Size: size}
	for _, pol := range []Routing{RoutingXY, RoutingO1Turn, RoutingCDR, RoutingCDRNI} {
		c := cfg
		c.Design = NISplit
		c.Routing = pol
		n, err := NewNode(c, 1)
		if err != nil {
			return out, err
		}
		res, err := n.RunBandwidth(size)
		if err != nil {
			return out, fmt.Errorf("%v: %w", pol, err)
		}
		out.Points = append(out.Points, RoutingPoint{Routing: pol, Result: res})
	}
	return out, nil
}

func TestTable3EquivalentToReference(t *testing.T) {
	cfg := sweepTestCfg()
	ref, err := refTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sweep-based RunTable3 diverges from reference:\nref: %+v\ngot: %+v", ref, got)
	}
	if ref.Format() != got.Format() {
		t.Fatal("RunTable3 Format output diverges from reference")
	}
	// Table 1 and Fig. 5 both derive from Table 3 measurements.
	t1, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1.NUMACycles != ref.NUMACycles || t1.QP.TotalCycles != ref.Rows[0].TotalCycles {
		t.Fatalf("RunTable1 diverges from reference Table 3: %+v", t1)
	}
	f5, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f5.Measured, ref) {
		t.Fatal("RunFig5's measured breakdowns diverge from reference")
	}
}

func TestFig6EquivalentToReference(t *testing.T) {
	cfg := sweepTestCfg()
	sizes := []int{64, 1024}
	ref, err := refFig6(cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFig6(cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sweep-based RunFig6 diverges from reference:\nref: %+v\ngot: %+v", ref, got)
	}
	// The NOC-Out variant (Fig. 9) through the same path.
	nocCfg := cfg
	nocCfg.Topology = NOCOut
	ref9, err := refFig6(nocCfg, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	got9, err := RunFig9(cfg, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref9, got9) {
		t.Fatal("sweep-based RunFig9 diverges from reference")
	}
}

func TestFig7EquivalentToReference(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth equivalence sweep is slow")
	}
	cfg := sweepTestCfg()
	cfg.WindowCycles = 15_000
	cfg.MaxCycles = 70_000
	sizes := []int{512}
	ref, err := refFig7(cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunFig7(cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sweep-based RunFig7 diverges from reference:\nref: %+v\ngot: %+v", ref, got)
	}
	got10, err := RunFig10(cfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	nocCfg := cfg
	nocCfg.Topology = NOCOut
	ref10, err := refFig7(nocCfg, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref10, got10) {
		t.Fatal("sweep-based RunFig10 diverges from reference")
	}
}

func TestAblationEquivalentToReference(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth equivalence sweep is slow")
	}
	cfg := sweepTestCfg()
	cfg.WindowCycles = 15_000
	cfg.MaxCycles = 70_000
	ref, err := refAblation(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunRoutingAblation(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("sweep-based RunRoutingAblation diverges from reference:\nref: %+v\ngot: %+v", ref, got)
	}
}

// TestExperimentsParallelMatchSerial is the acceptance check for the
// parallel runner: a parallel reproduction renders byte-identically to the
// serial one.
func TestExperimentsParallelMatchSerial(t *testing.T) {
	cfg := sweepTestCfg()
	sizes := []int{64, 1024}
	serial, err := RunFig6Opts(cfg, sizes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFig6Opts(cfg, sizes, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("parallel RunFig6 diverges from serial")
	}
	if serial.Format() != par.Format() {
		t.Fatal("parallel RunFig6 renders differently from serial")
	}
	t3s, err := RunTable3Opts(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t3p, err := RunTable3Opts(cfg, Options{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	if t3s.Format() != t3p.Format() {
		t.Fatal("parallel RunTable3 renders differently from serial")
	}
}
