// The closed-loop scenario library: the access patterns of the rack-scale
// applications that motivate the NI study (§1, §2.1) — dependent pointer
// chases, partition-aggregate fan-outs, mixed read/write update streams,
// think-time key-value clients, double-buffered streaming — expressed as
// v2 Apps and shipped as named, parseable scenarios that the Sweep API and
// cmd/racksim cross against design x topology x routing x hops.
package rackni

import (
	"fmt"
	"sort"
	"strings"

	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// App is the v2 workload contract: a per-core closed-loop state machine.
// The driver calls Step for the core's next action and delivers every
// retirement through OnComplete, so apps can chain dependent reads, bound
// their outstanding window, and model per-request service time.
type App = cpu.App

// Request is one application-level one-sided operation of the v2 API.
type Request = cpu.Request

// Action is an App's answer to Step; build one with Issue, Wait, Think or
// Done.
type Action = cpu.Action

// Issue commits req for issue (published as soon as WQ space allows).
func Issue(req Request) Action { return cpu.Issue(req) }

// Wait blocks the core until at least one in-flight request completes.
func Wait() Action { return cpu.Wait() }

// Think idles the core for the given cycles, then asks the app again.
func Think(cycles int64) Action { return cpu.Think(cycles) }

// Done declares the workload exhausted; in-flight requests drain.
func Done() Action { return cpu.Done() }

// Legacy adapts a v1 open-loop Workload to the v2 App contract with a
// driver discipline bit-identical to the old open-loop driver.
func Legacy(wl Workload) App { return cpu.Legacy(wl) }

// scenarioSeed decorrelates per-core random streams from one run seed.
func scenarioSeed(seed uint64, core int) uint64 {
	return seed + uint64(core)*0x9E37_79B9 + 1
}

// clusterNodeSeed decorrelates per-node streams in a cluster run.
func clusterNodeSeed(seed uint64, node int) uint64 {
	return seed + uint64(node)*0x51_7CC1_B727_220B + 1
}

// TargetNode returns addr routed to the given cluster node's memory: the
// interconnect strips the selector before the address reaches the remote
// chip, so on-chip interleaving is unchanged. Addresses without a
// selector go to the issuing node's default peer — the next node around
// the ring — which is why every single-node workload runs on a cluster
// unmodified.
func TargetNode(node int, addr uint64) uint64 { return fabric.GlobalAddr(node, addr) }

// shardedApp wraps an App for a cluster run, routing each issued
// request's remote address to a home node derived from its object block —
// stable per object, scattered across every peer.
type shardedApp struct {
	app         App
	self, nodes int
}

// ShardRemote wraps an app so its remote keyspace is sharded across the
// cluster's other nodes: each issued request's target is chosen by the
// object block of its remote address (stable: one object, one home), with
// the issuing node excluded. On completions the app sees its own
// (selector-less) addresses back. With fewer than 3 nodes the wrap is the
// identity: everything already goes to the single peer (or self-mirror).
func ShardRemote(app App, self, nodes int) App {
	if nodes < 3 {
		return app
	}
	return &shardedApp{app: app, self: self, nodes: nodes}
}

// target picks the home node for a remote address: hash its object block,
// spread over the peers, skipping the issuing node.
func (s *shardedApp) target(addr uint64) int {
	block := (addr - SourceBase) >> 6 // stable per 64B-aligned object block
	t := int(chaseNext(block, s.nodes-1))
	if t >= s.self {
		t++
	}
	return t
}

// Step implements App.
func (s *shardedApp) Step(coreID int, now int64, inflight int) Action {
	return s.app.Step(coreID, now, inflight).MapIssue(func(r Request) Request {
		r.Remote = TargetNode(s.target(r.Remote), r.Remote)
		return r
	})
}

// OnComplete implements App, handing the app back its own address space.
func (s *shardedApp) OnComplete(coreID int, req Request, issued, done int64) {
	_, req.Remote = fabric.SplitAddr(req.Remote)
	s.app.OnComplete(coreID, req, issued, done)
}

// targetedApp pins every issued request's remote address to one cluster
// node — the hot-spot traffic of an incast.
type targetedApp struct {
	app  App
	node int
}

// TargetRemote wraps an app so every request it issues is routed to the
// given cluster node's memory — the many-to-one traffic of an incast or
// hot shard. On completions the app sees its own (selector-less)
// addresses back, mirroring ShardRemote.
func TargetRemote(app App, node int) App { return &targetedApp{app: app, node: node} }

// Step implements App.
func (t *targetedApp) Step(coreID int, now int64, inflight int) Action {
	return t.app.Step(coreID, now, inflight).MapIssue(func(r Request) Request {
		r.Remote = TargetNode(t.node, r.Remote)
		return r
	})
}

// OnComplete implements App, handing the app back its own address space.
func (t *targetedApp) OnComplete(coreID int, req Request, issued, done int64) {
	_, req.Remote = fabric.SplitAddr(req.Remote)
	t.app.OnComplete(coreID, req, issued, done)
}

// Scenario constructors are synthetic traffic generators, not input
// parsers: degenerate geometry is clamped to the nearest legal value
// (minimum 1, request sizes to one block, keyspaces to the source region,
// per-core footprints to the local-buffer slice) instead of faulting in
// the issue path.

// clampMin1 raises v to at least 1.
func clampMin1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// clampSize clamps a request size to [64, LocalStride].
func clampSize(size int) int {
	if size < 64 {
		return 64
	}
	if uint64(size) > LocalStride {
		return int(LocalStride)
	}
	return size
}

// clampObjects clamps an object count so the keyspace fits the source
// region at the given (already clamped) size.
func clampObjects(objects, size int) int {
	objects = clampMin1(objects)
	if max := int(SourceSpan / uint64(size)); objects > max {
		return max
	}
	return objects
}

// clampWindow clamps a per-core outstanding window so window*size slots
// fit the core's local-buffer slice.
func clampWindow(window, size int) int {
	window = clampMin1(window)
	if max := int(LocalStride / uint64(size)); window > max {
		return max
	}
	return window
}

// chaseNext is the deterministic "pointer stored in the fetched object":
// a splitmix64 step of the current object index. Using only the completed
// object's identity makes every read data-dependent on its predecessor.
func chaseNext(obj uint64, objects int) uint64 {
	z := obj + 0x9E37_79B9_7F4A_7C15
	z = (z ^ (z >> 30)) * 0xBF58_476D_1CE4_E5B9
	z = (z ^ (z >> 27)) * 0x94D0_49BB_1331_11EB
	z ^= z >> 31
	return z % uint64(objects)
}

// PointerChase is the dependent-read scenario: each chase follows Depth
// pointers, where every read's address is derived from the object the
// previous read returned — the access pattern of remote hash-bucket and
// linked-structure traversals. A k-deep chase can never overlap its own
// reads, so its latency is ~k times the single-read latency; ChaseLat
// records it per chase.
type PointerChase struct {
	Depth   int
	Chases  uint64
	Size    int
	Objects int

	// ChaseLat accumulates whole-chase latencies (cycles) in a
	// deterministic fixed-bucket histogram, so its percentiles cover
	// every chase, not a sampled prefix.
	ChaseLat *stats.Histogram

	rnd        *sim.Rand
	cur        uint64
	step       int
	chaseStart int64
	chasesDone uint64
	pending    bool
}

// NewPointerChase builds the chase scenario for one core.
func NewPointerChase(depth int, chases uint64, size, objects int, seed uint64) *PointerChase {
	size = clampSize(size)
	return &PointerChase{
		Depth: clampMin1(depth), Chases: chases, Size: size,
		Objects:  clampObjects(objects, size),
		ChaseLat: stats.NewLatencyHistogram(),
		rnd:      sim.NewRand(seed),
	}
}

// Step implements App.
func (p *PointerChase) Step(coreID int, now int64, inflight int) Action {
	if p.pending {
		return Wait()
	}
	if p.chasesDone >= p.Chases {
		return Done()
	}
	if p.step == 0 {
		p.cur = p.rnd.Uint64() % uint64(p.Objects)
		p.chaseStart = now
	}
	p.pending = true
	return Issue(Request{
		Op:     rmc.OpRead,
		Remote: SourceBase + p.cur*uint64(p.Size),
		Local:  LocalBufferOf(coreID),
		Size:   p.Size,
		Tag:    p.cur,
	})
}

// OnComplete implements App: the fetched object names the next pointer.
func (p *PointerChase) OnComplete(coreID int, req Request, issued, done int64) {
	p.pending = false
	p.cur = chaseNext(req.Tag, p.Objects)
	p.step++
	if p.step >= p.Depth {
		p.ChaseLat.Add(done - p.chaseStart)
		p.chasesDone++
		p.step = 0
	}
}

// ScatterGather is the partition-aggregate scenario (§2.1's data-serving
// fan-outs): each query scatters Fanout reads across the remote keyspace,
// gathers all responses — the query is as slow as its slowest partition,
// which is why its tail dominates — then thinks before the next query.
// QueryLat records whole-query latencies.
type ScatterGather struct {
	Fanout  int
	Queries uint64
	Size    int
	Objects int
	ThinkC  int64

	// QueryLat accumulates whole-query (fan-out to last-gather) latencies
	// in a deterministic fixed-bucket histogram covering every query.
	QueryLat *stats.Histogram

	rnd         *sim.Rand
	toIssue     int
	outstanding int
	queriesDone uint64
	queryStart  int64
	thinkNext   bool
}

// NewScatterGather builds the partition-aggregate scenario for one core.
// The fan-out is bounded so its gather buffers fit the core's local slice.
func NewScatterGather(fanout int, queries uint64, size, objects int, think int64, seed uint64) *ScatterGather {
	size = clampSize(size)
	return &ScatterGather{
		Fanout: clampWindow(fanout, size), Queries: queries, Size: size,
		Objects: clampObjects(objects, size), ThinkC: think,
		QueryLat: stats.NewLatencyHistogram(),
		rnd:      sim.NewRand(seed),
	}
}

// Step implements App.
func (s *ScatterGather) Step(coreID int, now int64, inflight int) Action {
	if s.toIssue > 0 {
		s.toIssue--
		s.outstanding++
		obj := s.rnd.Uint64() % uint64(s.Objects)
		return Issue(Request{
			Op:     rmc.OpRead,
			Remote: SourceBase + obj*uint64(s.Size),
			Local:  LocalBufferOf(coreID) + uint64(s.toIssue)*uint64(s.Size),
			Size:   s.Size,
			Tag:    uint64(s.toIssue),
		})
	}
	if s.outstanding > 0 {
		return Wait()
	}
	if s.thinkNext {
		s.thinkNext = false
		return Think(s.ThinkC)
	}
	if s.queriesDone >= s.Queries {
		return Done()
	}
	s.toIssue = s.Fanout
	s.queryStart = now
	return s.Step(coreID, now, inflight)
}

// OnComplete implements App.
func (s *ScatterGather) OnComplete(coreID int, req Request, issued, done int64) {
	s.outstanding--
	if s.outstanding == 0 && s.toIssue == 0 {
		s.QueryLat.Add(done - s.queryStart)
		s.queriesDone++
		// No think after the final query (an idle window would inflate
		// the run's cycle count).
		if s.ThinkC > 0 && s.queriesDone < s.Queries {
			s.thinkNext = true
		}
	}
}

// MixedUpdate is the read/write update-stream scenario: a bounded window
// of outstanding operations where every WriteEvery-th operation is a
// remote write — the update traffic of an in-memory store mixed into its
// lookup stream.
type MixedUpdate struct {
	Window     int
	Ops        uint64
	Size       int
	Objects    int
	WriteEvery uint64 // every n-th op is a write; 0 = reads only

	rnd    *sim.Rand
	issued uint64
}

// NewMixedUpdate builds the mixed read/write scenario for one core.
func NewMixedUpdate(window int, ops uint64, size, objects int, writeEvery uint64, seed uint64) *MixedUpdate {
	size = clampSize(size)
	return &MixedUpdate{
		Window: clampWindow(window, size), Ops: ops, Size: size,
		Objects:    clampObjects(objects, size),
		WriteEvery: writeEvery, rnd: sim.NewRand(seed),
	}
}

// Step implements App.
func (m *MixedUpdate) Step(coreID int, now int64, inflight int) Action {
	if m.issued >= m.Ops {
		return Done()
	}
	if inflight >= m.Window {
		return Wait()
	}
	op := rmc.OpRead
	if m.WriteEvery > 0 && m.issued%m.WriteEvery == m.WriteEvery-1 {
		op = rmc.OpWrite
	}
	obj := m.rnd.Uint64() % uint64(m.Objects)
	slot := m.issued % uint64(m.Window)
	m.issued++
	return Issue(Request{
		Op:     op,
		Remote: SourceBase + obj*uint64(m.Size),
		Local:  LocalBufferOf(coreID) + slot*uint64(m.Size),
		Size:   m.Size,
	})
}

// OnComplete implements App.
func (m *MixedUpdate) OnComplete(int, Request, int64, int64) {}

// KVClient is the closed-loop key-value client (§2.1): issue one GET for a
// Zipf-popular key, wait for it, spend ThinkC cycles of service time on
// the value, repeat — the load pattern of a Memcached-class frontend,
// where per-request latency directly bounds client throughput.
type KVClient struct {
	Gets    uint64
	Size    int
	Objects int
	Theta   float64
	ThinkC  int64

	rnd     *sim.Rand
	table   *zipfTable
	done    uint64
	pending bool
	served  bool
}

// NewKVClient builds the closed-loop KV client for one core. Negative
// skew is clamped to uniform.
func NewKVClient(gets uint64, size, objects int, theta float64, think int64, seed uint64) *KVClient {
	return newKVClient(gets, size, objects, theta, think, seed, nil)
}

// newKVClient optionally takes a prebuilt popularity table (read-only
// after construction, so one table can serve many clients). A table whose
// length disagrees with the clamped object count would sample keys
// outside the keyspace, and one built with a different skew would draw a
// silently wrong distribution, so a mismatched table is discarded and
// rebuilt.
func newKVClient(gets uint64, size, objects int, theta float64, think int64, seed uint64, table *zipfTable) *KVClient {
	size = clampSize(size)
	objects = clampObjects(objects, size)
	if theta < 0 {
		theta = 0
	}
	if table == nil || len(table.cum) != objects || table.theta != theta {
		table = sharedZipfTable(objects, theta)
	}
	return &KVClient{
		Gets: gets, Size: size, Objects: objects, Theta: theta, ThinkC: think,
		rnd: sim.NewRand(seed), table: table,
	}
}

// Step implements App.
func (k *KVClient) Step(coreID int, now int64, inflight int) Action {
	if k.pending {
		return Wait()
	}
	if k.served {
		k.served = false
		return Think(k.ThinkC)
	}
	if k.done >= k.Gets {
		return Done()
	}
	obj := k.table.sample(k.rnd)
	k.pending = true
	return Issue(Request{
		Op:     rmc.OpRead,
		Remote: SourceBase + uint64(obj)*uint64(k.Size),
		Local:  LocalBufferOf(coreID),
		Size:   k.Size,
	})
}

// OnComplete implements App.
func (k *KVClient) OnComplete(coreID int, req Request, issued, done int64) {
	k.pending = false
	k.done++
	// No think after the final value: the client is finished, and an idle
	// think window would inflate the run's cycle count.
	if k.ThinkC > 0 && k.done < k.Gets {
		k.served = true
	}
}

// Streamer is the double-buffered streaming scenario: Window (classically
// two) outstanding bulk reads into alternating local buffers, refilling a
// buffer the moment its transfer lands — the graph-analytics segment
// scan, bounded so compute can overlap transfer without unbounded queues.
type Streamer struct {
	Segments uint64
	SegBytes int
	Window   int

	next uint64
}

// NewStreamer builds the streaming scenario for one core.
func NewStreamer(segments uint64, segBytes, window int) *Streamer {
	segBytes = clampSize(segBytes)
	return &Streamer{Segments: segments, SegBytes: segBytes,
		Window: clampWindow(window, segBytes)}
}

// Step implements App.
func (s *Streamer) Step(coreID int, now int64, inflight int) Action {
	if s.next >= s.Segments {
		return Done()
	}
	if inflight >= s.Window {
		return Wait()
	}
	seg := s.next
	s.next++
	span := SourceSpan / uint64(s.SegBytes)
	return Issue(Request{
		Op:     rmc.OpRead,
		Remote: SourceBase + (seg%span)*uint64(s.SegBytes),
		Local:  LocalBufferOf(coreID) + (seg%uint64(s.Window))*uint64(s.SegBytes),
		Size:   s.SegBytes,
		Tag:    seg,
	})
}

// OnComplete implements App.
func (s *Streamer) OnComplete(int, Request, int64, int64) {}

// Scenario is a named member of the closed-loop workload library. New
// builds the per-core app for one run (nil for cores that sit out);
// scenarios derive per-core seeds from cfg.Seed, so runs are deterministic
// and seed-stable.
type Scenario struct {
	Name    string
	Summary string
	New     func(cfg *Config, core int) App
	// NewCluster, when non-nil, replaces New on multi-node (Cluster) runs:
	// it builds the per-core app knowing the node's rack position, letting
	// asymmetric scenarios (incast's one server, many clients) shape their
	// cross-node traffic directly. cfg.Seed arrives already decorrelated
	// per node, and the returned app's addresses are routed as issued (no
	// ShardRemote wrap) — target explicit nodes with TargetNode or
	// TargetRemote.
	NewCluster func(cfg *Config, nodeIdx, nodes, core int) App
}

// kvScenarioTable names the kv scenario's interned 100k-entry popularity
// table: every client core of every sweep point — and every concurrent
// run — shares the one cached copy instead of re-summing 100k math.Pow
// terms per point.
func kvScenarioTable() *zipfTable { return sharedZipfTable(100_000, 0.99) }

// scenarioClients is the default client-core count for the request-bound
// scenarios: a quarter of the tiles, so library runs finish quickly while
// still loading the fabric from scattered tiles.
func scenarioClients(cfg *Config) int {
	c := cfg.Tiles() / 4
	if c < 1 {
		c = 1
	}
	return c
}

// scenarioLibrary returns the built-in scenarios with their default
// parameters. racksim -workload and the Sweep Workloads axis resolve
// names against it; parameterized variants are built directly from the
// scenario types (NewPointerChase etc.).
func scenarioLibrary() []Scenario {
	return []Scenario{
		{
			Name:    "pointerchase",
			Summary: "dependent reads: 32 chases of 8 chained 64B lookups per client (tiles/4 clients)",
			New: func(cfg *Config, core int) App {
				if core >= scenarioClients(cfg) {
					return nil
				}
				return NewPointerChase(8, 32, 64, 1<<16, scenarioSeed(cfg.Seed, core))
			},
		},
		{
			Name:    "scattergather",
			Summary: "partition-aggregate: 32 queries of 8-way 128B fan-outs per client (tiles/4 clients)",
			New: func(cfg *Config, core int) App {
				if core >= scenarioClients(cfg) {
					return nil
				}
				return NewScatterGather(8, 32, 128, 1<<16, 200, scenarioSeed(cfg.Seed, core))
			},
		},
		{
			Name:    "mixed",
			Summary: "update stream: every core, window 8, 128 ops, every 4th a 256B write",
			New: func(cfg *Config, core int) App {
				return NewMixedUpdate(8, 128, 256, 1<<15, 4, scenarioSeed(cfg.Seed, core))
			},
		},
		{
			Name:    "incast",
			Summary: "incast hot-spot: tiles/4 clients per node hammer node 0 with window-4 256B reads (single-node: the default peer)",
			New: func(cfg *Config, core int) App {
				if core >= scenarioClients(cfg) {
					return nil
				}
				return NewMixedUpdate(4, 64, 256, 1<<15, 0, scenarioSeed(cfg.Seed, core))
			},
			NewCluster: func(cfg *Config, nodeIdx, nodes, core int) App {
				// Node 0 is the hot server: it issues nothing and every
				// other node's clients aim at its memory, so all response
				// traffic funnels out of one torus coordinate.
				if nodeIdx == 0 || core >= scenarioClients(cfg) {
					return nil
				}
				return TargetRemote(NewMixedUpdate(4, 64, 256, 1<<15, 0, scenarioSeed(cfg.Seed, core)), 0)
			},
		},
		{
			Name:    "kv",
			Summary: "closed-loop KV: 128 Zipf(0.99) 256B GETs per client (tiles/4 clients), 300-cycle think",
			New: func(cfg *Config, core int) App {
				if core >= scenarioClients(cfg) {
					return nil
				}
				return newKVClient(128, 256, 100_000, 0.99, 300,
					scenarioSeed(cfg.Seed, core), kvScenarioTable())
			},
		},
		{
			Name:    "stream",
			Summary: "double-buffered streaming: every core, 64 x 4KB segments, window 2",
			New: func(cfg *Config, core int) App {
				return NewStreamer(64, 4096, 2)
			},
		},
	}
}

// Scenarios lists the library's scenario names, sorted.
func Scenarios() []string {
	lib := scenarioLibrary()
	names := make([]string, len(lib))
	for i, s := range lib {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// ParseScenario resolves a scenario name from the library.
func ParseScenario(s string) (Scenario, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	for _, sc := range scenarioLibrary() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("rackni: unknown scenario %q (want %s)",
		s, strings.Join(Scenarios(), "|"))
}
