// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs a reduced-size sweep (fewer sizes,
// shorter stabilization windows) so the full suite completes in minutes;
// cmd/rackbench runs the complete sweeps and prints paper-style tables.
//
// Reported metrics use benchmark custom units:
//
//	cycles        end-to-end latency in 2 GHz cycles
//	%overhead     latency overhead over the NUMA projection
//	GB/s          application bandwidth
package rackni

import (
	"fmt"
	"testing"
)

func benchCfg() Config {
	cfg := QuickConfig()
	cfg.WindowCycles = 40_000
	cfg.MaxCycles = 280_000
	cfg.MeasureReqs = 24
	return cfg
}

// BenchmarkTable1_QPvsNUMA regenerates Table 1: the QP-based model's
// zero-load single-block latency against the NUMA projection.
func BenchmarkTable1_QPvsNUMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunTable1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.QP.TotalCycles, "qp-cycles")
		b.ReportMetric(res.NUMACycles, "numa-cycles")
		b.ReportMetric(res.OverheadPct, "%overhead")
	}
}

// BenchmarkTable3_Breakdown regenerates Table 3: per-design zero-load
// latency tomography (paper: edge 710, per-tile 445, split 447, NUMA 395).
func BenchmarkTable3_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunTable3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			b.ReportMetric(r.TotalCycles, fmt.Sprintf("%s-cycles", r.Design))
		}
		b.ReportMetric(res.NUMACycles, "NUMA-cycles")
	}
}

// BenchmarkFig5_HopProjection regenerates Fig. 5: latency and overhead vs
// intra-rack hop count (paper: 28.6%/4.7% at 6 hops, 16.2%/2.6% at 12).
func BenchmarkFig5_HopProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunFig5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[6].EdgeOverPct, "edge-%ovhd@6hops")
		b.ReportMetric(res.Points[6].SplitOverPct, "split-%ovhd@6hops")
		b.ReportMetric(res.Points[12].EdgeOverPct, "edge-%ovhd@12hops")
		b.ReportMetric(res.Points[12].SplitOverPct, "split-%ovhd@12hops")
	}
}

// BenchmarkFig6_LatencyVsSize regenerates Fig. 6 (mesh latency sweep) on a
// reduced size set.
func BenchmarkFig6_LatencyVsSize(b *testing.B) {
	sizes := []int{64, 512, 4096, 16384}
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.MeasureReqs = 12
		res, err := RunFig6(cfg, sizes)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.NS, fmt.Sprintf("%s-%dB-ns", p.Design, p.Size))
		}
	}
}

// BenchmarkFig7_BandwidthVsSize regenerates Fig. 7 (mesh bandwidth sweep)
// on a reduced size set (paper peak: 214 GB/s for edge and split;
// per-tile reaches ~25% of edge at 8 KB).
func BenchmarkFig7_BandwidthVsSize(b *testing.B) {
	sizes := []int{64, 512, 8192}
	for i := 0; i < b.N; i++ {
		res, err := RunFig7(benchCfg(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Result.AppGBps, fmt.Sprintf("%s-%dB-GB/s", p.Design, p.Size))
		}
		b.ReportMetric(res.Peak(NISplit), "split-peak-GB/s")
		b.ReportMetric(res.Peak(NIPerTile), "pertile-peak-GB/s")
	}
}

// BenchmarkFig9_NOCOutLatency regenerates Fig. 9 (NOC-Out latency sweep).
func BenchmarkFig9_NOCOutLatency(b *testing.B) {
	sizes := []int{64, 512, 4096, 16384}
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.MeasureReqs = 12
		res, err := RunFig9(cfg, sizes)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.NS, fmt.Sprintf("%s-%dB-ns", p.Design, p.Size))
		}
	}
}

// BenchmarkFig10_NOCOutBandwidth regenerates Fig. 10 (NOC-Out bandwidth
// sweep; paper: same trends as mesh with a significantly lower peak).
func BenchmarkFig10_NOCOutBandwidth(b *testing.B) {
	sizes := []int{64, 4096}
	for i := 0; i < b.N; i++ {
		res, err := RunFig10(benchCfg(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Result.AppGBps, fmt.Sprintf("%s-%dB-GB/s", p.Design, p.Size))
		}
	}
}

// BenchmarkAblation_Routing regenerates the §6.2 CDR ablation (paper:
// without CDR the peak is less than half of CDR's).
func BenchmarkAblation_Routing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := RunRoutingAblation(benchCfg(), 4096)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(p.Result.AppGBps, fmt.Sprintf("%s-GB/s", p.Routing))
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (simulated
// cycles per wall-second for a loaded 64-core bandwidth run) — an
// engineering metric, not a paper artifact. BENCH_simthroughput.json
// tracks its trajectory across PRs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.MaxCycles = 100_000
		cfg.WindowCycles = 50_000
		n, err := NewNode(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := n.RunBandwidth(1024)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}
