// Command rackbench regenerates the paper's evaluation artifacts (Tables 1
// and 3, Figures 5, 6, 7, 9, 10, and the §6.2 routing ablation) and prints
// them as paper-style tables.
//
// Usage:
//
//	rackbench -exp all                  # everything (slow: full sweeps)
//	rackbench -exp table3               # one experiment
//	rackbench -exp fig7 -quick          # reduced sweep, short windows
//	rackbench -exp fig6 -sizes 64,4096  # custom size list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"rackni"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table3|fig5|fig6|fig7|fig9|fig10|cdr|all")
	quick := flag.Bool("quick", false, "short stabilization windows / fewer samples")
	sizeList := flag.String("sizes", "", "comma-separated transfer sizes in bytes (sweeps only)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := rackni.DefaultConfig()
	if *quick {
		cfg = rackni.QuickConfig()
	}
	cfg.Seed = *seed

	var sizes []int
	if *sizeList != "" {
		for _, tok := range strings.Split(*sizeList, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || v <= 0 {
				fatalf("bad size %q", tok)
			}
			sizes = append(sizes, v)
		}
	}

	run := func(name string, fn func() (string, error)) {
		t0 := time.Now()
		out, err := fn()
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		fmt.Printf("== %s (%.1fs) ==\n%s\n", name, time.Since(t0).Seconds(), out)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: QP-based model vs NUMA (zero-load, 1 hop)", func() (string, error) {
			r, err := rackni.RunTable1(cfg)
			return r.Format(), err
		})
	}
	if want("table3") {
		run("Table 3: zero-load latency breakdown per NI design", func() (string, error) {
			r, err := rackni.RunTable3(cfg)
			return r.Format(), err
		})
	}
	if want("fig5") {
		run("Fig. 5: end-to-end latency vs intra-rack hop count", func() (string, error) {
			r, err := rackni.RunFig5(cfg)
			return r.Format(), err
		})
	}
	if want("fig6") {
		run("Fig. 6: sync remote-read latency vs size (mesh)", func() (string, error) {
			r, err := rackni.RunFig6(cfg, sizes)
			return r.Format(), err
		})
	}
	if want("fig7") {
		run("Fig. 7: application bandwidth vs size (mesh)", func() (string, error) {
			r, err := rackni.RunFig7(cfg, sizes)
			return r.Format(), err
		})
	}
	if want("fig9") {
		run("Fig. 9: sync remote-read latency vs size (NOC-Out)", func() (string, error) {
			r, err := rackni.RunFig9(cfg, sizes)
			return r.Format(), err
		})
	}
	if want("fig10") {
		run("Fig. 10: application bandwidth vs size (NOC-Out)", func() (string, error) {
			r, err := rackni.RunFig10(cfg, sizes)
			return r.Format(), err
		})
	}
	if want("cdr") {
		run("§6.2 ablation: routing policy vs peak bandwidth", func() (string, error) {
			r, err := rackni.RunRoutingAblation(cfg, 4096)
			return r.Format(), err
		})
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rackbench: "+format+"\n", args...)
	os.Exit(1)
}
