// Command rackbench regenerates the paper's evaluation artifacts (Tables 1
// and 3, Figures 5, 6, 7, 9, 10, and the §6.2 routing ablation) and prints
// them as paper-style tables. Each experiment is a sweep over independent
// simulation points, so -parallel N runs points on N workers with
// bit-identical output to a serial run.
//
// Usage:
//
//	rackbench -exp all                  # everything (slow: full sweeps)
//	rackbench -exp table3               # one experiment
//	rackbench -exp fig7 -quick          # reduced sweep, short windows
//	rackbench -exp fig6 -sizes 64,4096  # custom size list
//	rackbench -exp all -quick -parallel 8   # one worker per core
//	rackbench -exp all -json            # machine-readable results
//	rackbench -exp all -timeout 2m      # abort cleanly after 2 minutes
//
// Per-experiment timing goes to stderr so stdout carries only the tables
// (or JSON) and is byte-for-byte reproducible for a given config and seed.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rackni"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1|table3|fig5|fig6|fig7|fig9|fig10|cdr|all (paper artifacts), or overload|degraded|incast|service|placement (fault-, congestion-, service- and placement-plane studies beyond the paper, not part of all)")
	quick := flag.Bool("quick", false, "short stabilization windows / fewer samples")
	sizeList := flag.String("sizes", "", "comma-separated transfer sizes in bytes (sweeps only)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	nodes := flag.Int("nodes", 8, "cluster node count for the overload and degraded experiments")
	shards := flag.Int("shards", 1, "engine shards for the degraded experiment's cluster; k > 1 runs it on k parallel engines with bit-identical results (the other studies are single-engine: overload's stability monitor and the routed-fabric experiments coordinate cluster-wide)")
	parallel := flag.Int("parallel", 1, "sweep-point workers (1 = serial, capped at the machine's core count; points are independent, output is identical)")
	jsonOut := flag.Bool("json", false, "emit JSON results on stdout instead of tables")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	flag.Parse()

	switch *exp {
	case "all", "table1", "table3", "fig5", "fig6", "fig7", "fig9", "fig10", "cdr", "overload", "degraded", "incast", "service", "placement":
	default:
		fatalf("unknown experiment %q (want table1|table3|fig5|fig6|fig7|fig9|fig10|cdr|all|overload|degraded|incast|service|placement)", *exp)
	}

	cfg := rackni.DefaultConfig()
	if *quick {
		cfg = rackni.QuickConfig()
	}
	cfg.Seed = *seed

	var sizes []int
	if *sizeList != "" {
		var err error
		sizes, err = rackni.ParseSizes(*sizeList)
		if err != nil {
			fatalf("%v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := rackni.Options{Parallel: *parallel, Context: ctx}

	// run executes one experiment and prints its table; with -json the
	// record is collected and the whole run emits a single JSON array.
	// Cancellation discards the experiment's partial results and exits.
	var jsonRecords []map[string]any
	run := func(name string, fn func() (fmt.Stringer, error)) {
		t0 := time.Now()
		res, err := fn()
		if err != nil {
			// A point failure takes precedence: a deadline expiring while
			// a genuine error unwinds must not masquerade as a timeout.
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				fatalf("%s: aborted (%v); partial results discarded", name, ctx.Err())
			}
			fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "rackbench: %s finished in %.1fs\n", name, time.Since(t0).Seconds())
		if *jsonOut {
			jsonRecords = append(jsonRecords, map[string]any{"experiment": name, "result": res})
			return
		}
		fmt.Printf("== %s ==\n%s\n", name, res)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table 1: QP-based model vs NUMA (zero-load, 1 hop)", func() (fmt.Stringer, error) {
			return wrap(rackni.RunTable1Opts(cfg, opts))
		})
	}
	if want("table3") {
		run("Table 3: zero-load latency breakdown per NI design", func() (fmt.Stringer, error) {
			return wrap(rackni.RunTable3Opts(cfg, opts))
		})
	}
	if want("fig5") {
		run("Fig. 5: end-to-end latency vs intra-rack hop count", func() (fmt.Stringer, error) {
			return wrap(rackni.RunFig5Opts(cfg, opts))
		})
	}
	if want("fig6") {
		run("Fig. 6: sync remote-read latency vs size (mesh)", func() (fmt.Stringer, error) {
			return wrap(rackni.RunFig6Opts(cfg, sizes, opts))
		})
	}
	if want("fig7") {
		run("Fig. 7: application bandwidth vs size (mesh)", func() (fmt.Stringer, error) {
			return wrap(rackni.RunFig7Opts(cfg, sizes, opts))
		})
	}
	if want("fig9") {
		run("Fig. 9: sync remote-read latency vs size (NOC-Out)", func() (fmt.Stringer, error) {
			return wrap(rackni.RunFig9Opts(cfg, sizes, opts))
		})
	}
	if want("fig10") {
		run("Fig. 10: application bandwidth vs size (NOC-Out)", func() (fmt.Stringer, error) {
			return wrap(rackni.RunFig10Opts(cfg, sizes, opts))
		})
	}
	if want("cdr") {
		run("§6.2 ablation: routing policy vs peak bandwidth", func() (fmt.Stringer, error) {
			return wrap(rackni.RunRoutingAblationOpts(cfg, 4096, opts))
		})
	}
	// The fault-plane studies run whole clusters per point, so they use the
	// reduced smoke chip (4x2 mesh, 2 MiB LLC) to keep many-node runs
	// tractable; they measure flow-control and recovery behavior, not
	// paper-fidelity single-chip metrics.
	if *exp == "overload" {
		size := 1024
		if len(sizes) > 0 {
			size = sizes[0]
		}
		run(fmt.Sprintf("Overload control: goodput vs offered load (%d nodes)", *nodes), func() (fmt.Stringer, error) {
			return wrap(rackni.RunOverloadCurve(clusterStudyCfg(cfg), *nodes, size, nil))
		})
	}
	if *exp == "degraded" {
		run(fmt.Sprintf("Degraded mode: kv scenario under fabric faults (%d nodes)", *nodes), func() (fmt.Stringer, error) {
			return wrap(rackni.RunDegradedMode(clusterStudyCfg(cfg), *nodes, "kv", nil, true, *shards))
		})
	}
	if *exp == "incast" {
		// The hot-spot study needs torus geometry with path diversity (≥ 2
		// dimensions, so ≥ 16 nodes of the 8x8x8 rack) for adaptive routing
		// to have anywhere to spread; default there unless -nodes was given.
		n := *nodes
		if !explicitFlag("nodes") {
			n = 16
		}
		run(fmt.Sprintf("Incast hot-spot: goodput and victim tail vs fan-in (%d nodes, dor vs adaptive)", n), func() (fmt.Stringer, error) {
			icfg := clusterStudyCfg(cfg)
			icfg.MaxCycles = 2_000_000 // saturated high-fan-in runs must still drain
			return wrap(rackni.RunIncast(icfg, n, nil, nil))
		})
	}
	if *exp == "service" {
		// Like incast: torus geometry with path diversity so dor vs adaptive
		// differ, and a raised cycle budget so saturated open-loop points
		// still drain their arrival backlogs.
		n := *nodes
		if !explicitFlag("nodes") {
			n = 16
		}
		run(fmt.Sprintf("Open-loop KV service: goodput and tail vs offered load (%d nodes, hedging off/on, dor vs adaptive)", n), func() (fmt.Stringer, error) {
			scfg := clusterStudyCfg(cfg)
			scfg.MaxCycles = 2_000_000
			return wrap(rackni.RunServiceCurve(scfg, n, nil, nil, nil))
		})
	}
	if *exp == "placement" {
		// One communicating group per torus sub-cube: 64 nodes = 8 groups of
		// 8, enough contention for clustered vs scattered to diverge; the
		// raised budget lets the long scattered paths still drain.
		n := *nodes
		if !explicitFlag("nodes") {
			n = 64
		}
		run(fmt.Sprintf("Congested placement: locality vs hot-spot trade-off (%d nodes, identity vs clustered vs scattered, dor vs adaptive)", n), func() (fmt.Stringer, error) {
			pcfg := clusterStudyCfg(cfg)
			pcfg.MaxCycles = 2_000_000
			return wrap(rackni.RunPlacementStudy(pcfg, n, nil, nil))
		})
	}
	if *jsonOut {
		blob, err := json.MarshalIndent(jsonRecords, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s\n", blob)
	}
}

// explicitFlag reports whether the named flag was set on the command line.
func explicitFlag(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// clusterStudyCfg shrinks the per-node chip for the multi-node fault-plane
// studies: 4x2 mesh, 2 MiB LLC, fixed cycle budget.
func clusterStudyCfg(cfg rackni.Config) rackni.Config {
	cfg.MeshWidth = 4
	cfg.MeshHeight = 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0
	cfg.WindowCycles = 20_000
	cfg.MaxCycles = 200_000
	return cfg
}

// formatter is any experiment result with a paper-style renderer.
type formatter interface{ Format() string }

// wrapped adapts a result to fmt.Stringer (for table output) while staying
// JSON-marshalable as the underlying struct.
type wrapped struct{ res formatter }

func (w wrapped) String() string { return w.res.Format() }

func (w wrapped) MarshalJSON() ([]byte, error) { return json.Marshal(w.res) }

func wrap[T formatter](res T, err error) (fmt.Stringer, error) {
	return wrapped{res: res}, err
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "rackbench: "+format+"\n", args...)
	os.Exit(1)
}
