// Command racktopo prints the rack topology statistics behind the Fig. 5
// projection: hop-count distribution of the 512-node 3D torus.
package main

import (
	"flag"
	"fmt"

	"rackni/internal/fabric"
)

func main() {
	radix := flag.Int("radix", 8, "torus radix (nodes per dimension)")
	flag.Parse()

	t := fabric.NewTorus3D(*radix)
	fmt.Printf("%d-node 3D torus (radix %d)\n", t.Nodes(), *radix)
	fmt.Printf("diameter: %d hops, average: %.2f hops\n", t.MaxHops(), t.AvgHops())

	hist := make([]int, t.MaxHops()+1)
	for b := 1; b < t.Nodes(); b++ {
		hist[t.Hops(0, b)]++
	}
	fmt.Printf("%5s %8s\n", "hops", "peers")
	for h, c := range hist {
		if h == 0 {
			continue
		}
		fmt.Printf("%5d %8d\n", h, c)
	}
}
