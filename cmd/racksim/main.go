// Command racksim runs a single simulation configuration and prints its
// latency or bandwidth result — the low-level tool for exploring the
// design space beyond the paper's sweeps.
//
// Examples:
//
//	racksim -design split -size 64 -mode latency -hops 3
//	racksim -design edge -size 8192 -mode bandwidth -routing xy
//	racksim -design pertile -topology nocout -size 2048 -mode bandwidth
package main

import (
	"flag"
	"fmt"
	"os"

	"rackni"
)

func main() {
	design := flag.String("design", "split", "NI design: edge|pertile|split")
	topo := flag.String("topology", "mesh", "on-chip topology: mesh|nocout")
	routing := flag.String("routing", "cdrni", "mesh routing: xy|yx|o1turn|cdr|cdrni")
	mode := flag.String("mode", "latency", "latency|bandwidth")
	size := flag.Int("size", 64, "transfer size in bytes")
	hops := flag.Int("hops", 1, "one-way intra-rack hops to the peer")
	core := flag.Int("core", 27, "issuing core (latency mode)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "short stabilization windows")
	flag.Parse()

	cfg := rackni.DefaultConfig()
	if *quick {
		cfg = rackni.QuickConfig()
	}
	cfg.Seed = *seed

	switch *design {
	case "edge":
		cfg.Design = rackni.NIEdge
	case "pertile":
		cfg.Design = rackni.NIPerTile
	case "split":
		cfg.Design = rackni.NISplit
	default:
		fatalf("unknown design %q", *design)
	}
	switch *topo {
	case "mesh":
		cfg.Topology = rackni.Mesh
	case "nocout":
		cfg.Topology = rackni.NOCOut
	default:
		fatalf("unknown topology %q", *topo)
	}
	switch *routing {
	case "xy":
		cfg.Routing = rackni.RoutingXY
	case "yx":
		cfg.Routing = rackni.RoutingYX
	case "o1turn":
		cfg.Routing = rackni.RoutingO1Turn
	case "cdr":
		cfg.Routing = rackni.RoutingCDR
	case "cdrni":
		cfg.Routing = rackni.RoutingCDRNI
	default:
		fatalf("unknown routing %q", *routing)
	}

	n, err := rackni.NewNode(cfg, *hops)
	if err != nil {
		fatalf("%v", err)
	}

	switch *mode {
	case "latency":
		res, err := n.RunSyncLatency(*size, *core)
		if err != nil {
			fatalf("%v", err)
		}
		b := res.Breakdown
		fmt.Printf("%v %v %dB @%d hop(s): %.0f cycles (%.0f ns)\n",
			cfg.Design, cfg.Topology, *size, *hops, res.MeanCycles, res.MeanNS)
		fmt.Printf("  WQ write %.0f | WQ read %.0f | dispatch %.0f | generate %.0f\n",
			b.WQWrite, b.WQRead, b.Dispatch, b.Generate)
		fmt.Printf("  net out %.0f | remote %.0f | net back %.0f\n", b.NetOut, b.Remote, b.NetBack)
		fmt.Printf("  complete %.0f | CQ write %.0f | CQ read %.0f\n", b.Complete, b.CQWrite, b.CQRead)
	case "bandwidth":
		res, err := n.RunBandwidth(*size)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%v %v %dB async x64 cores: app %.1f GB/s (NOC agg %.1f, bisection %.1f), stable=%v, %d requests in %d cycles\n",
			cfg.Design, cfg.Topology, *size, res.AppGBps, res.NOCGBps, res.BisectionGBps, res.Stable, res.Completed, res.Cycles)
	default:
		fatalf("unknown mode %q", *mode)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "racksim: "+format+"\n", args...)
	os.Exit(1)
}
