// Command racksim runs arbitrary design-space sweeps and prints structured
// results — the tool for exploring the space beyond the paper's figures.
// Every axis flag accepts a comma-separated list; the cross product of all
// axes is executed (in parallel with -parallel), and a single latency point
// additionally prints its full latency tomography.
//
// Examples:
//
//	racksim -design split -size 64 -mode latency -hops 3
//	racksim -design edge -size 8192 -mode bandwidth -routing xy
//	racksim -design edge,pertile,split -size 64,1024,16384 -parallel 8
//	racksim -routing xy,cdrni -mode bandwidth -size 4096 -csv
//	racksim -design split -topology mesh,nocout -size 2048 -json
//	racksim -workload kv,pointerchase -design edge,split -quick
//	racksim -workload kv -quick    # single point: per-core p50/p95/p99 table
//	racksim -nodes 2 -workload kv -quick   # real 2-node cluster, cross-node sharded KV
//	racksim -nodes 1,2,4 -mode bandwidth -size 4096 -quick
//	racksim -nodes 512 -placement identity -mode bandwidth -size 1024 -quick -timeout 10m   # the paper's full rack
//	racksim -nodes 64 -workload kv -placement clustered,scattered -fabricrouting dor -quick  # placement comparison
//	racksim -nodes 8 -workload kv -drop 0.01 -quick       # 1% fabric drops, recovered by retry
//	racksim -nodes 4 -mode bandwidth -size 4096 -window 1,4,16,0 -quick   # credit-window overload sweep
//	racksim -nodes 16 -workload incast -fabricrouting dor,adaptive -quick  # link-level congestion, routing comparison
//	racksim -nodes 8 -arrival poisson -rate 1,4 -hedge 0,1000 -quick       # open-loop KV service, hedging off/on
//	racksim -nodes 64 -workload kv -shards 4 -quick        # same results as -shards 1, on 4 parallel engines
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"rackni"
)

func main() {
	design := flag.String("design", "split", "NI design(s): edge|pertile|split, comma-separated")
	topo := flag.String("topology", "mesh", "on-chip topology(s): mesh|nocout, comma-separated")
	routing := flag.String("routing", "cdrni", "mesh routing(s): xy|yx|o1turn|cdr|cdrni, comma-separated")
	mode := flag.String("mode", "latency", "microbenchmark(s): latency|bandwidth, comma-separated")
	workload := flag.String("workload", "", "closed-loop scenario(s): "+strings.Join(rackni.Scenarios(), "|")+", comma-separated (replaces -mode unless both are given)")
	size := flag.String("size", "64", "transfer size(s) in bytes, comma-separated (microbenchmark modes; -workload scenarios define their own sizes)")
	hops := flag.String("hops", "1", "one-way intra-rack hop count(s), comma-separated")
	nodes := flag.String("nodes", "1", "detailed node count(s), comma-separated, up to 512: 1 = emulated rack, n>1 = real n-node cluster (cross-node traffic over the torus hop model)")
	placement := flag.String("placement", "uniform", "multi-node placement policy/policies, comma-separated: uniform (every pair -hops apart) | identity | clustered | scattered | random:<seed> (real 3D-torus coordinates, the paper's 8x8x8 rack geometry; -nodes 512 covers the full rack; torus = deprecated alias for identity)")
	core := flag.String("core", "27", "issuing core(s) (latency mode; -workload scenarios define their own cores), comma-separated")
	seed := flag.String("seed", "1", "simulation seed(s), comma-separated")
	drop := flag.String("drop", "0", "fabric drop rate(s) in [0,1), comma-separated; > 0 needs -nodes > 1 and arms the request timeout so drops recover by retry")
	window := flag.String("window", "0", "QP credit window(s), comma-separated; 0 = uncapped (WQ-depth bound only)")
	fabricRouting := flag.String("fabricrouting", "off", "inter-node fabric routing(s): off|dor|adaptive, comma-separated; dor/adaptive route hop-by-hop through per-link credit queues (congestion model, needs -nodes > 1)")
	arrival := flag.String("arrival", "", "open-loop arrival process(es): poisson|bursty|diurnal, comma-separated; runs the replicated KV service instead of closed-loop scenarios")
	rate := flag.String("rate", "1", "offered load(s) in requests per 1000 cycles per client, comma-separated (service points only)")
	hedge := flag.String("hedge", "0", "hedged-request delay(s) in cycles, comma-separated; 0 = hedging off (service points only)")
	shardsFlag := flag.String("shards", "1", "engine shard count(s) per cluster point, comma-separated; k > 1 runs a multi-node workload/service point on k parallel engines with bit-identical results (pure wall-clock knob; congestion-routed points stay on 1 engine)")
	quick := flag.Bool("quick", false, "short stabilization windows")
	parallel := flag.Int("parallel", 1, "sweep-point workers (1 = serial, capped at the machine's core count; table/CSV output is identical, JSON wall_ms timing varies)")
	jsonOut := flag.Bool("json", false, "emit JSON results")
	csvOut := flag.Bool("csv", false, "emit CSV results")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "report per-point completion on stderr")
	flag.Parse()

	cfg := rackni.DefaultConfig()
	if *quick {
		cfg = rackni.QuickConfig()
	}

	designs, err := rackni.ParseDesigns(*design)
	if err != nil {
		fatalf("%v", err)
	}
	topos, err := rackni.ParseTopologies(*topo)
	if err != nil {
		fatalf("%v", err)
	}
	routings, err := rackni.ParseRoutings(*routing)
	if err != nil {
		fatalf("%v", err)
	}
	// -workload and -arrival replace the default latency microbenchmark;
	// passing -mode explicitly alongside them runs both kinds of points.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	modeSet := explicit["mode"]
	if *workload != "" && !modeSet {
		// Scenario points take their sizes and participating cores from the
		// library, not these axes; only microbenchmark points use them.
		// Warn rather than silently ignore.
		for _, name := range []string{"size", "core"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "racksim: note: -%s applies to microbenchmark modes only; -workload scenarios define their own\n", name)
			}
		}
	}
	var modes []rackni.Mode
	if (*workload == "" && *arrival == "") || modeSet {
		modes, err = rackni.ParseModes(*mode)
		if err != nil {
			fatalf("%v", err)
		}
	}
	var scenarios []string
	if *workload != "" {
		scenarios, err = rackni.ParseScenarios(*workload)
		if err != nil {
			fatalf("%v", err)
		}
	}
	sizes, err := rackni.ParseSizes(*size)
	if err != nil {
		fatalf("%v", err)
	}
	hopList, err := rackni.ParseHops(*hops)
	if err != nil {
		fatalf("%v", err)
	}
	nodeList, err := rackni.ParseNodeCounts(*nodes)
	if err != nil {
		fatalf("%v", err)
	}
	cores, err := rackni.ParseCores(*core)
	if err != nil {
		fatalf("%v", err)
	}
	seeds, err := rackni.ParseSeeds(*seed)
	if err != nil {
		fatalf("%v", err)
	}
	drops, err := rackni.ParseDropRates(*drop)
	if err != nil {
		fatalf("%v", err)
	}
	windows, err := rackni.ParseWindows(*window)
	if err != nil {
		fatalf("%v", err)
	}
	fabricRoutings, err := rackni.ParseFabricRoutings(*fabricRouting)
	if err != nil {
		fatalf("%v", err)
	}
	shardList, err := rackni.ParseShards(*shardsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	// -arrival adds open-loop service points: the cross product of arrival
	// kinds and rates, each run at every -hedge delay.
	var arrivals []rackni.ArrivalSpec
	var hedges []int64
	if *arrival != "" {
		kinds, err := rackni.ParseArrivalKinds(*arrival)
		if err != nil {
			fatalf("%v", err)
		}
		rates, err := rackni.ParseRates(*rate)
		if err != nil {
			fatalf("%v", err)
		}
		for _, k := range kinds {
			for _, r := range rates {
				arrivals = append(arrivals, rackni.ArrivalSpec{Kind: k, Rate: r})
			}
		}
		hedges, err = rackni.ParseHedges(*hedge)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, name := range []string{"rate", "hedge"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "racksim: note: -%s applies to service points only; pass -arrival to run them\n", name)
			}
		}
	}

	placements, err := rackni.ParsePlacements(*placement)
	if err != nil {
		fatalf("%v", err)
	}

	points := rackni.NewSweep(cfg).
		Designs(designs...).
		Topologies(topos...).
		Routings(routings...).
		Modes(modes...).
		Workloads(scenarios...).
		Sizes(sizes...).
		Hops(hopList...).
		Nodes(nodeList...).
		Placements(placements...).
		Faults(drops...).
		Windows(windows...).
		FabricRoutings(fabricRoutings...).
		Arrivals(arrivals...).
		Hedges(hedges...).
		Shards(shardList...).
		Seeds(seeds...).
		Cores(cores...).
		Points()

	// Reject bad axis combinations (torus capacity, faults without a
	// cluster, out-of-range cores and sizes, ...) before any point burns
	// simulation time.
	if err := rackni.CheckSweepPoints(points); err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := rackni.Options{Parallel: *parallel, Context: ctx}
	if *progress {
		opts.Progress = func(done, total int, r rackni.Result) {
			fmt.Fprintf(os.Stderr, "racksim: %d/%d points done (last took %.1fs)\n",
				done, total, r.Wall.Seconds())
		}
	}

	t0 := time.Now()
	results, err := rackni.NewRunner(opts).Run(points)
	if err != nil {
		// A point failure takes precedence: a deadline expiring while a
		// genuine error unwinds must not masquerade as a timeout.
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			fatalf("aborted (%v) after %.1fs; partial results discarded", ctx.Err(), time.Since(t0).Seconds())
		}
		fatalf("%v", err)
	}

	switch {
	case *jsonOut:
		blob, err := results.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s\n", blob)
	case *csvOut:
		fmt.Print(results.CSV())
	case len(results) == 1 && results[0].Sync != nil:
		// Single latency point: keep the detailed tomography output.
		r := results[0]
		b := r.Sync.Breakdown
		fmt.Printf("%v %v %dB @%d hop(s)%s: %.0f cycles (%.0f ns)\n",
			r.Point.Config.Design, r.Point.Config.Topology, r.Point.Size,
			r.Point.Hops, nodesSuffix(r.Point.Nodes), r.Sync.MeanCycles, r.Sync.MeanNS)
		fmt.Printf("  WQ write %.0f | WQ read %.0f | dispatch %.0f | generate %.0f\n",
			b.WQWrite, b.WQRead, b.Dispatch, b.Generate)
		fmt.Printf("  net out %.0f | remote %.0f | net back %.0f\n", b.NetOut, b.Remote, b.NetBack)
		fmt.Printf("  complete %.0f | CQ write %.0f | CQ read %.0f\n", b.Complete, b.CQWrite, b.CQRead)
	case len(results) == 1 && results[0].WL != nil:
		// Single workload point: add the per-core breakdown.
		r := results[0]
		wl := r.WL
		fmt.Printf("%v %v %s @%d hop(s)%s: %d ops in %d cycles, mean %.0f cyc, p50/p95/p99 %d/%d/%d cyc, drained=%v\n",
			r.Point.Config.Design, r.Point.Config.Topology, r.Point.Scenario,
			r.Point.Hops, nodesSuffix(r.Point.Nodes), wl.Completed, wl.Cycles, wl.MeanLatency,
			wl.P50, wl.P95, wl.P99, wl.AllExhausted)
		fmt.Printf("  %4s %9s %9s %10s %8s %8s %8s\n",
			"core", "issued", "done", "mean(cyc)", "p50", "p95", "p99")
		for _, c := range wl.PerCore {
			fmt.Printf("  %4d %9d %9d %10.0f %8d %8d %8d\n",
				c.Core, c.Issued, c.Completed, c.MeanLatency, c.P50, c.P95, c.P99)
		}
	case len(results) == 1 && results[0].SVC != nil:
		// Single service point: the full tail-at-scale breakdown.
		r := results[0]
		fmt.Printf("%v %v %s hedge=%d%s:\n%s",
			r.Point.Config.Design, r.Point.Config.Topology, r.Point.Arrival,
			r.Point.Hedge, nodesSuffix(r.Point.Nodes), r.SVC.Format())
	case len(results) == 1 && results[0].BW != nil:
		// Single bandwidth point: keep the detailed single-run output.
		r := results[0]
		bw := r.BW
		fmt.Printf("%v %v %dB async x%d cores%s: app %.1f GB/s (NOC agg %.1f, bisection %.1f), stable=%v, %d requests in %d cycles\n",
			r.Point.Config.Design, r.Point.Config.Topology, r.Point.Size,
			r.Point.Config.Tiles(), nodesSuffix(r.Point.Nodes), bw.AppGBps, bw.NOCGBps,
			bw.BisectionGBps, bw.Stable, bw.Completed, bw.Cycles)
	default:
		fmt.Print(results.Format())
	}
}

// nodesSuffix labels multi-node (cluster) points in single-point output.
func nodesSuffix(n int) string {
	if n > 1 {
		return fmt.Sprintf(" x%d nodes", n)
	}
	return ""
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "racksim: "+format+"\n", args...)
	os.Exit(1)
}
