// Package rackni is a cycle-level simulation library reproducing
// "Manycore Network Interfaces for In-Memory Rack-Scale Computing"
// (Daglis, Novaković, Bugnion, Falsafi, Grot — ISCA 2015).
//
// It models one 64-core tiled SoC of a rack-scale system in full detail —
// mesh or NOC-Out interconnect, MESI directory coherence, NUCA LLC, memory
// controllers, and the soNUMA Remote Memory Controller (RGP/RCP/RRPP
// pipelines with in-memory queue pairs) — under the three NI placements
// the paper studies (NIedge, NIper-tile, NIsplit), with the rest of the
// rack emulated by the paper's own methodology (rate-matching traffic
// generation, measured local RRPP latency, fixed 35 ns per network hop).
//
// Quick start:
//
//	cfg := rackni.DefaultConfig()
//	cfg.Design = rackni.NISplit
//	n, err := rackni.NewNode(cfg, 1) // one network hop to the peer
//	if err != nil { ... }
//	res, err := n.RunSyncLatency(64, 27) // 64-byte reads from core 27
//	fmt.Printf("remote read: %.0f ns\n", res.MeanNS)
//
// The Sweep/Runner API (sweep.go) composes design-space sweeps — NI
// placement × topology × routing × transfer size × hop count × seed — and
// executes their points on a worker pool with deterministic, ordered
// results. The Experiments API (experiments.go) defines every table and
// figure of the paper's evaluation as such sweeps; cmd/rackbench prints
// them and cmd/racksim runs arbitrary sweeps beyond the paper's.
package rackni

import (
	"context"
	"fmt"

	"rackni/internal/config"
	rmc "rackni/internal/core"
	"rackni/internal/cpu"
	"rackni/internal/fabric"
	"rackni/internal/node"
	"rackni/internal/place"
)

// Config is the full system parameter set (Table 2 defaults).
type Config = config.Config

// Design selects the NI architecture.
type Design = config.Design

// Topology selects the on-chip interconnect.
type Topology = config.Topology

// Routing selects the mesh routing policy.
type Routing = config.Routing

// Re-exported enumerators.
const (
	NIEdge    = config.NIEdge
	NIPerTile = config.NIPerTile
	NISplit   = config.NISplit
	NUMA      = config.NUMA

	Mesh   = config.Mesh
	NOCOut = config.NOCOut

	RoutingXY     = config.RoutingXY
	RoutingYX     = config.RoutingYX
	RoutingO1Turn = config.RoutingO1Turn
	RoutingCDR    = config.RoutingCDR
	RoutingCDRNI  = config.RoutingCDRNI
)

// DefaultConfig returns the paper's Table 2 configuration.
func DefaultConfig() Config { return config.Default() }

// QuickConfig returns a configuration with shorter measurement windows for
// fast iteration (results are slightly noisier than the paper-fidelity
// defaults).
func QuickConfig() Config {
	cfg := config.Default()
	cfg.WindowCycles = 50_000
	cfg.MaxCycles = 800_000
	cfg.MeasureReqs = 32
	return cfg
}

// DefaultReqTimeout is the request timeout (engine cycles) sweeps arm when
// a fault axis is enabled but Config.ReqTimeout was left at 0, so dropped
// blocks recover by retransmission instead of failing permanently.
const DefaultReqTimeout = config.DefaultReqTimeout

// SyncResult is a latency run's outcome; Breakdown is its tomography.
type SyncResult = node.SyncResult

// Breakdown is the per-request latency tomography (Tables 1 and 3).
type Breakdown = node.Breakdown

// BWResult is a bandwidth run's outcome.
type BWResult = node.BWResult

// Op is a one-sided operation type.
type Op = rmc.Op

// Operation kinds for custom workloads.
const (
	OpRead  = rmc.OpRead
	OpWrite = rmc.OpWrite
)

// Workload is the v1 open-loop workload contract, kept for compatibility:
// a positional script that can never observe a completion. New code should
// implement App (the v2 closed-loop contract, see scenario.go); v1 values
// still run everywhere through the Legacy adapter, bit-identically to the
// old driver.
type Workload = cpu.Workload

// Node is one simulated SoC plus its emulated rack.
type Node struct {
	n *node.Node
}

// NewNode builds a node for the configured topology and the given one-way
// intra-rack hop count to its peer.
func NewNode(cfg Config, hops int) (*Node, error) {
	if hops < 0 {
		return nil, fmt.Errorf("rackni: negative hop count %d", hops)
	}
	if hops == 0 {
		hops = cfg.DefaultHops
	}
	var inner *node.Node
	var err error
	if cfg.Topology == config.NOCOut {
		inner, err = node.NewNOCOut(cfg, hops)
	} else {
		inner, err = node.New(cfg, hops)
	}
	if err != nil {
		return nil, err
	}
	return &Node{n: inner}, nil
}

// RunSyncLatency measures unloaded remote-read latency: one core issues
// synchronous reads of size bytes (§5's latency microbenchmark).
func (n *Node) RunSyncLatency(size, core int) (SyncResult, error) {
	if err := checkSize(n.n.Cfg, size); err != nil {
		return SyncResult{}, err
	}
	if core < 0 || core >= n.n.Cfg.Tiles() {
		return SyncResult{}, fmt.Errorf("rackni: core %d out of range", core)
	}
	return n.n.RunSyncLatency(size, core)
}

// RunBandwidth measures aggregate application bandwidth: all cores issue
// asynchronous reads of size bytes until the windowed rate stabilizes
// (§5's bandwidth microbenchmark).
func (n *Node) RunBandwidth(size int) (BWResult, error) {
	if err := checkSize(n.n.Cfg, size); err != nil {
		return BWResult{}, err
	}
	return n.n.RunBandwidth(size)
}

// RunApp drives every core for which factory returns a non-nil v2 App as
// a closed-loop state machine, until all apps are Done and their in-flight
// requests have drained, or maxCycles elapse (maxCycles <= 0 uses the
// configuration's MaxCycles). A run cut short by maxCycles returns partial
// statistics with AllExhausted=false.
func (n *Node) RunApp(factory func(core int) App, maxCycles int64) (WorkloadResult, error) {
	return n.n.RunApp(factory, maxCycles)
}

// RunScenario runs a named scenario from the library (see Scenarios and
// ParseScenario) on this node.
func (n *Node) RunScenario(sc Scenario, maxCycles int64) (WorkloadResult, error) {
	if sc.New == nil {
		return WorkloadResult{}, fmt.Errorf("rackni: scenario %q has no constructor", sc.Name)
	}
	cfg := n.Config()
	return n.RunApp(func(core int) App { return sc.New(cfg, core) }, maxCycles)
}

// RunWorkload drives every core for which factory returns a non-nil v1
// workload through the Legacy adapter, until all workloads are exhausted
// (and their in-flight requests drained) or maxCycles elapse. Results are
// bit-identical to the pre-v2 open-loop driver, with the v2 percentile and
// per-core fields filled in.
func (n *Node) RunWorkload(factory func(core int) Workload, maxCycles int64) (WorkloadResult, error) {
	return n.n.RunWorkload(factory, maxCycles)
}

// WorkloadResult summarizes a workload run, including deterministic
// fixed-bucket latency percentiles and per-core breakdowns.
type WorkloadResult = node.WorkloadResult

// CoreStats is one core's slice of a WorkloadResult.
type CoreStats = node.CoreStats

// SetContext attaches ctx to the node. Subsequent runs poll it periodically
// and abort with the context's error once it is cancelled; a nil or
// non-cancellable context costs nothing. The poll mutates no simulator
// state, so results stay bit-identical with or without a context.
func (n *Node) SetContext(ctx context.Context) { n.n.SetContext(ctx) }

// Stats exposes the node's raw counters (latency accumulators, byte
// counts) for custom analyses.
func (n *Node) Stats() *rmc.Stats { return n.n.Stats }

// Config returns the node's configuration.
func (n *Node) Config() *Config { return n.n.Cfg }

// ClusterSpec sizes and places a multi-node cluster: the node count, plus
// either a uniform pairwise hop distance (Hops; the paper's fixed-hop
// rack model) or explicit coordinates on the rack's 3D torus (Placement;
// real pairwise distances). Its optional Faults field installs a
// deterministic fault plan on the inter-node fabric.
type ClusterSpec = node.ClusterSpec

// FaultSpec declares a deterministic fault schedule for the inter-node
// fabric: seeded per-leg drop/delay/corrupt probabilities plus scheduled
// link and node outages, all in engine cycles. Identical specs perturb
// identical runs identically — no wall-clock randomness anywhere.
type FaultSpec = fabric.FaultSpec

// LinkOutage takes one directed inter-node link down for [From, Until)
// engine cycles (Until <= 0 = forever).
type LinkOutage = fabric.Outage

// NodeOutage takes a whole node off the fabric for [From, Until) engine
// cycles (Until <= 0 = forever).
type NodeOutage = fabric.NodeOutage

// RoutePolicy selects how the congestion-faithful inter-node fabric routes
// blocks across the rack's 3D torus. RouteNone (the default) disables the
// link-level model entirely — the fabric charges lump-sum hop delays,
// bit-identical to the pre-congestion Interconnect.
type RoutePolicy = fabric.RoutePolicy

// Fabric routing policies for ClusterSpec.FabricRouting and the Sweep
// FabricRoutings axis.
const (
	// RouteNone disables the congestion model (lump-sum hop delays).
	RouteNone = fabric.RouteNone
	// RouteDOR routes dimension-ordered: x, then y, then z, minimal ring
	// direction per dimension.
	RouteDOR = fabric.RouteDOR
	// RouteAdaptive routes adaptive-minimal: the least-loaded productive
	// dimension at each router, deterministic tie-breaks.
	RouteAdaptive = fabric.RouteAdaptive
)

// PlacementPolicy is a named node-placement policy: a deterministic
// mapping from cluster node indices onto coordinates of the rack's 3D
// torus. The zero value means "no named placement" — the uniform
// fixed-hop model (or whatever raw coordinates the spec provides). Named
// policies are a sweep axis (Sweep.Placements), a ClusterSpec field
// (Place), and a CLI flag (racksim -placement).
type PlacementPolicy = place.Policy

// Named placement policies for ClusterSpec.Place and the Sweep
// Placements axis.
var (
	// PlaceIdentity places node i at torus coordinate i — the geometry the
	// deprecated TorusPlacement flag assigned.
	PlaceIdentity = PlacementPolicy{Kind: place.Identity}
	// PlaceClustered packs consecutive node indices into 2x2x2 torus
	// sub-cubes: maximal locality for communicating groups.
	PlaceClustered = PlacementPolicy{Kind: place.Clustered}
	// PlaceScattered strides consecutive node indices across the whole
	// torus: maximal spread, paths near the torus diameter.
	PlaceScattered = PlacementPolicy{Kind: place.Scattered}
)

// PlaceRandom returns the seeded uniform-permutation placement policy.
func PlaceRandom(seed uint64) PlacementPolicy {
	return PlacementPolicy{Kind: place.Random, Seed: seed}
}

// LinkLedger is one directed torus link's per-run congestion snapshot
// (grants, occupancy high-water, serializer-queued and credit-blocked
// cycles); Cluster.Interconnect().LinkLedgers() lists the active ones.
type LinkLedger = fabric.LinkLedger

// ClusterSyncResult is a cluster latency run's outcome (per node plus
// cross-node aggregate).
type ClusterSyncResult = node.ClusterSyncResult

// ClusterBWResult is a cluster bandwidth run's outcome (per node plus
// summed aggregate).
type ClusterBWResult = node.ClusterBWResult

// ClusterWorkloadResult is a cluster workload run's outcome (per node
// plus merged aggregate; aggregate PerCore entries carry node-global core
// ids, node*Tiles+core).
type ClusterWorkloadResult = node.ClusterWorkloadResult

// Cluster is N fully simulated nodes sharing one event engine, connected
// by a real inter-node fabric (fabric.Interconnect) that delivers every
// remote request to the target node's actual RRPPs — the simulated
// counterpart of the paper's emulated rack, cross-validated against it in
// internal/node/cluster_equiv_test.go. Unlike the mirror emulation, a
// cluster can express cross-node sharding, skewed placement and fan-out
// scenarios; N=1 single-node studies keep using NewNode's emulated rack,
// the fast path.
type Cluster struct {
	c *node.Cluster
}

// NewCluster builds a cluster of n identical nodes, every pair a uniform
// hops apart (0 = the configuration's DefaultHops) — the symmetric
// arrangement the cross-validation runs. For explicit torus placement use
// NewClusterSpec.
func NewCluster(cfg Config, n, hops int) (*Cluster, error) {
	return NewClusterSpec(cfg, ClusterSpec{Nodes: n, Hops: hops})
}

// NewClusterSpec builds a cluster per the full spec.
func NewClusterSpec(cfg Config, spec ClusterSpec) (*Cluster, error) {
	c, err := node.NewCluster(cfg, spec)
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// NodeCount returns the number of simulated nodes.
func (c *Cluster) NodeCount() int { return len(c.c.Nodes) }

// Config returns the cluster's shared configuration.
func (c *Cluster) Config() *Config { return c.c.Cfg }

// NodeStats exposes node i's raw counters.
func (c *Cluster) NodeStats(i int) *rmc.Stats { return c.c.Nodes[i].Stats }

// Placement returns the named placement policy the cluster was built with
// (the zero policy for uniform-hop clusters, raw coordinate lists, and the
// congestion model's automatic identity placement).
func (c *Cluster) Placement() PlacementPolicy { return c.c.Placed() }

// Interconnect exposes the inter-node fabric's per-run accounting: one
// LinkStats per node plus the node-to-node traffic matrix.
func (c *Cluster) Interconnect() *fabric.Interconnect { return c.c.Inter }

// SetContext attaches ctx to the cluster; runs poll it periodically and
// abort with its error once cancelled. Exactly one watchdog serves the
// whole cluster.
func (c *Cluster) SetContext(ctx context.Context) { c.c.SetContext(ctx) }

// SetFaults installs (or, with a nil or inactive spec, clears) a
// deterministic fault plan on the inter-node fabric between runs. Arm
// Config.ReqTimeout to recover dropped blocks by retransmission; without
// it, drops surface as permanently failed requests.
func (c *Cluster) SetFaults(spec *FaultSpec) error { return c.c.SetFaults(spec) }

// RunSyncLatency runs the §5 latency microbenchmark on every node
// simultaneously: one core per node issues synchronous remote reads of
// size bytes to its default peer, while its own RRPPs service the peer's
// identical stream — the multi-node realization of the paper's
// mirror-traffic emulation.
func (c *Cluster) RunSyncLatency(size, core int) (ClusterSyncResult, error) {
	if err := checkSize(c.c.Cfg, size); err != nil {
		return ClusterSyncResult{}, err
	}
	if core < 0 || core >= c.c.Cfg.Tiles() {
		return ClusterSyncResult{}, fmt.Errorf("rackni: core %d out of range", core)
	}
	return c.c.RunSyncLatency(size, core)
}

// RunBandwidth runs the §5 bandwidth microbenchmark on every node
// simultaneously until the cluster-wide windowed application bandwidth
// stabilizes.
func (c *Cluster) RunBandwidth(size int) (ClusterBWResult, error) {
	if err := checkSize(c.c.Cfg, size); err != nil {
		return ClusterBWResult{}, err
	}
	return c.c.RunBandwidth(size)
}

// RunApp drives every core of every node whose factory returns a non-nil
// App. The factory receives the node index alongside the core, so apps
// can shard roles and decorrelate seeds across the rack; target remote
// addresses at a specific node with TargetNode.
func (c *Cluster) RunApp(factory func(nodeIdx, core int) App, maxCycles int64) (ClusterWorkloadResult, error) {
	return c.c.RunApp(factory, maxCycles)
}

// RunScenario runs a named scenario from the library on every node, with
// per-node decorrelated seeds and each client's keyspace sharded across
// the other nodes of the cluster (see ShardRemote) — the cross-node
// object placement the single-node mirror emulation cannot express.
// Scenarios with a cluster-aware constructor (Scenario.NewCluster) shape
// their own cross-node traffic instead and skip the sharding wrap.
func (c *Cluster) RunScenario(sc Scenario, maxCycles int64) (ClusterWorkloadResult, error) {
	if sc.New == nil && sc.NewCluster == nil {
		return ClusterWorkloadResult{}, fmt.Errorf("rackni: scenario %q has no constructor", sc.Name)
	}
	n := c.NodeCount()
	return c.RunApp(func(nodeIdx, core int) App {
		cfg := *c.c.Cfg
		// Decorrelate the node's clients from its peers': without this,
		// every node would issue the identical stream (desirable for
		// mirror validation, not for scenario diversity).
		cfg.Seed = clusterNodeSeed(cfg.Seed, nodeIdx)
		if sc.NewCluster != nil {
			return sc.NewCluster(&cfg, nodeIdx, n, core)
		}
		app := sc.New(&cfg, core)
		if app == nil {
			return nil
		}
		return ShardRemote(app, nodeIdx, n)
	}, maxCycles)
}

func checkSize(cfg *Config, size int) error {
	switch {
	case size <= 0:
		return fmt.Errorf("rackni: non-positive transfer size %d", size)
	case size%cfg.BlockBytes != 0:
		return fmt.Errorf("rackni: transfer size %d is not a multiple of the %d-byte block size", size, cfg.BlockBytes)
	case size > node.LocalStride:
		return fmt.Errorf("rackni: transfer size %d exceeds the per-core local buffer (%d bytes)", size, node.LocalStride)
	}
	return nil
}
