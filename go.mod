module rackni

go 1.24
