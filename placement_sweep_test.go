package rackni

import (
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// wallMS matches the per-point wall-clock field, the one JSON field that
// legitimately differs between byte-identical runs.
var wallMS = regexp.MustCompile(`"wall_ms": [0-9.]+`)

func stripWall(blob []byte) string { return wallMS.ReplaceAllString(string(blob), `"wall_ms": 0`) }

// TestTorusPlacementAliasEquivalence: the deprecated TorusPlacement knob
// is a pure alias for Placements(PlaceIdentity) — the two sweeps expand
// to identical Point lists and render byte-identical output, so every
// pre-placement-axis invocation keeps its exact results.
func TestTorusPlacementAliasEquivalence(t *testing.T) {
	cfg := quickClusterCfg()
	build := func() (*Sweep, *Sweep) {
		old := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Nodes(2).TorusPlacement(true)
		new_ := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Nodes(2).Placements(PlaceIdentity)
		return old, new_
	}
	old, new_ := build()
	if !reflect.DeepEqual(old.Points(), new_.Points()) {
		t.Fatalf("alias expands differently:\nold: %+v\nnew: %+v", old.Points(), new_.Points())
	}
	oldRes, err := old.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := new_.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if oldRes.Format() != newRes.Format() {
		t.Fatalf("Format differs:\nold:\n%s\nnew:\n%s", oldRes.Format(), newRes.Format())
	}
	if oldRes.CSV() != newRes.CSV() {
		t.Fatalf("CSV differs:\nold:\n%s\nnew:\n%s", oldRes.CSV(), newRes.CSV())
	}
	oldJSON, err := oldRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	newJSON, err := newRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if stripWall(oldJSON) != stripWall(newJSON) {
		t.Fatalf("JSON differs:\nold:\n%s\nnew:\n%s", oldJSON, newJSON)
	}
	// An explicit Placements axis wins over the legacy knob.
	both := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Nodes(2).
		TorusPlacement(true).Placements(PlaceClustered).Points()
	if len(both) != 1 || both[0].Placement != PlaceClustered {
		t.Fatalf("Placements axis did not override TorusPlacement: %+v", both)
	}
}

// TestPlacementAxisRenderers: the placement column appears exactly when a
// result set contains a named placement point, keeping placement-free
// output byte-identical to its pre-placement form — including sweeps that
// spell out the zero policy explicitly.
func TestPlacementAxisRenderers(t *testing.T) {
	cfg := quickClusterCfg()
	plain, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{plain.Format(), plain.CSV()} {
		if strings.Contains(out, "placement") {
			t.Fatalf("placement-free result set grew a placement column:\n%s", out)
		}
	}
	blob, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"placement"`) {
		t.Fatalf("placement-free JSON carries a placement field:\n%s", blob)
	}

	// Spelling out the zero policy is a no-op, byte for byte.
	zero, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).
		Placements(PlacementPolicy{}).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	zeroJSON, err := zero.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if zero.Format() != plain.Format() || zero.CSV() != plain.CSV() || stripWall(zeroJSON) != stripWall(blob) {
		t.Fatalf("explicit zero placement changed output:\n%s\nvs\n%s", zero.Format(), plain.Format())
	}

	placed, err := NewSweep(quickClusterCfg()).Designs(NISplit).Modes(Latency).Sizes(64).
		Nodes(8).Placements(PlaceClustered).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(placed.Format(), "placement") || !strings.Contains(placed.Format(), "clustered") {
		t.Fatalf("placed result set missing its column:\n%s", placed.Format())
	}
	if !strings.Contains(placed.CSV(), "placement,") || !strings.Contains(placed.CSV(), "clustered") {
		t.Fatalf("placed CSV missing its column:\n%s", placed.CSV())
	}
	blob, err = placed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"placement": "clustered"`) {
		t.Fatalf("placed JSON missing the policy:\n%s", blob)
	}
}

// TestPlacementSweepChecks: bad placement-axis combinations are rejected
// up front, named by point.
func TestPlacementSweepChecks(t *testing.T) {
	cfg := quickClusterCfg()
	single := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).
		Placements(PlaceClustered).Points()
	err := CheckSweepPoints(single)
	if err == nil || !strings.Contains(err.Error(), "point 0") ||
		!strings.Contains(err.Error(), "multi-node") {
		t.Fatalf("single-node placed point not rejected: %v", err)
	}
	small := cfg
	small.TorusRadix = 2 // 8-node torus
	overflow := NewSweep(small).Designs(NISplit).Modes(Latency).Sizes(64).
		Nodes(9).Placements(PlaceScattered).Points()
	if err := CheckSweepPoints(overflow); err == nil || !strings.Contains(err.Error(), "exceed") {
		t.Fatalf("over-capacity placed point not rejected: %v", err)
	}
	unknown := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).
		Nodes(2).Placements(PlacementPolicy{Kind: 99}).Points()
	if err := CheckSweepPoints(unknown); err == nil || !strings.Contains(err.Error(), "no torus coordinates") {
		t.Fatalf("unknown placement kind not rejected: %v", err)
	}
}

// TestParsePlacements: the flag grammar — canonical names, the deprecated
// torus alias, the uniform zero policy, seeded random — and its rejects.
func TestParsePlacements(t *testing.T) {
	got, err := ParsePlacements("uniform,identity,torus,clustered,scattered,random,random:7")
	if err != nil {
		t.Fatal(err)
	}
	want := []PlacementPolicy{{}, PlaceIdentity, PlaceIdentity, PlaceClustered, PlaceScattered,
		PlaceRandom(1), PlaceRandom(7)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePlacements = %v, want %v", got, want)
	}
	for _, bad := range []string{"torusx", "random:x", "clustered3"} {
		if _, err := ParsePlacement(bad); err == nil {
			t.Errorf("ParsePlacement(%q) accepted", bad)
		}
	}
}

// TestPlacementSweepParallelMatchesSerial: placed congested points are
// independent simulations like any other, so a sweep spanning the
// Placements axis must produce byte-identical Results serially and on a
// worker pool. Wired into the CI race job.
func TestPlacementSweepParallelMatchesSerial(t *testing.T) {
	sweep := NewSweep(serviceTestCfg()).
		Designs(NISplit).
		Modes(Latency).
		Sizes(64).
		Cores(5). // the study chip is a 4x2 mesh; the default core 27 is a full-chip tile
		Nodes(4).
		Placements(PlaceClustered, PlaceScattered).
		FabricRoutings(RouteDOR)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 2 || len(par) != 2 {
		t.Fatalf("point counts: serial %d, parallel %d, want 2", len(serial), len(par))
	}
	if serial.Format() != par.Format() || serial.CSV() != par.CSV() {
		t.Fatalf("parallel placed sweep diverged:\nserial:\n%s\nparallel:\n%s",
			serial.Format(), par.Format())
	}
	// The axis did something: the two placements report different latency.
	if serial[0].Sync != nil && serial[1].Sync != nil &&
		serial[0].Sync.MeanCycles == serial[1].Sync.MeanCycles {
		t.Errorf("clustered and scattered produced identical mean latency %.0f — placement axis inert",
			serial[0].Sync.MeanCycles)
	}
}

// TestServicePlacementReplicaSets: on a placed cluster the service plane
// re-derives replica sets from fabric distance — each partition's set is
// led by its home node, members are distinct, and distances are
// nondecreasing within a set and never worse than the legacy consecutive
// mapping.
func TestServicePlacementReplicaSets(t *testing.T) {
	cfg := serviceTestCfg()
	c, err := NewClusterSpec(cfg, ClusterSpec{Nodes: 16, Place: PlaceIdentity})
	if err != nil {
		t.Fatal(err)
	}
	const r = 3
	sets := nearestReplicaSets(c.Interconnect(), 16, r)
	// Identity places nodes 0..15 along two x-rows of the radix-8 torus:
	// node 0's nearest peers are its ring neighbors 1 and 7.
	if want := []int{0, 1, 7}; !reflect.DeepEqual(sets[0], want) {
		t.Fatalf("sets[0] = %v, want %v", sets[0], want)
	}
	for p, set := range sets {
		if len(set) != r || set[0] != p {
			t.Fatalf("partition %d: set %v must have %d members led by %d", p, set, r, p)
		}
		seen := map[int]bool{}
		legacy, nearest := 0, 0
		for k, n := range set {
			if seen[n] {
				t.Fatalf("partition %d: duplicate replica %d in %v", p, n, set)
			}
			seen[n] = true
			if k > 0 && c.Interconnect().Dist(p, n) < c.Interconnect().Dist(p, set[k-1]) {
				t.Fatalf("partition %d: set %v not sorted by distance", p, set)
			}
			nearest += c.Interconnect().Dist(p, n)
			legacy += c.Interconnect().Dist(p, (p+k)%16)
		}
		if nearest > legacy {
			t.Fatalf("partition %d: nearest set %v costs %d hops, consecutive costs %d", p, set, nearest, legacy)
		}
	}
}

// TestServicePlacedSessionReuse: a service run on a reused placed cluster
// is bit-identical to the same run on a fresh one — the placement-aware
// replica sets are rebuilt deterministically per run.
func TestServicePlacedSessionReuse(t *testing.T) {
	cfg := serviceTestCfg()
	spec := ServiceSpec{Arrival: ArrivalSpec{Kind: "poisson", Rate: 2}, Hedge: 1200}
	build := func() *Cluster {
		c, err := NewClusterSpec(cfg, ClusterSpec{Nodes: 8, Place: PlaceScattered})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	reused := build()
	first, err := reused.RunService(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := reused.RunService(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("reused placed cluster diverged:\nfirst: %+v\nagain: %+v", first, again)
	}
	ref, err := build().RunService(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, ref) {
		t.Fatalf("reused placed cluster differs from fresh:\nreused: %+v\nfresh: %+v", first, ref)
	}
	if !first.Drained || first.Completed != first.Arrivals {
		t.Fatalf("placed service run incomplete: %+v", first)
	}
}
