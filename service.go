// The open-loop datacenter-service layer: a replicated Zipf-sharded KV
// service spanning the cluster, driven by deterministic arrival processes
// (internal/load) instead of a closed client loop. Each client core draws
// its own arrival schedule as a pure function of the seed, issues GETs on
// the arrival clock (queueing between arrival and issue is measured and
// folded into end-to-end latency), spreads each key over an R-way replica
// set on the torus, and optionally hedges slow requests to a second
// replica after a fixed delay with first-response-wins cancellation — the
// tail-at-scale toolkit, measurable because the rack, its congestion
// model and its fault plane are simulated in full.
package rackni

import (
	"fmt"
	"math"
	"sort"
	"strings"

	rmc "rackni/internal/core"
	"rackni/internal/fabric"
	"rackni/internal/load"
	"rackni/internal/sim"
	"rackni/internal/stats"
)

// ArrivalSpec selects an open-loop arrival process for service runs and
// sweep points: the process family by name (poisson|bursty|diurnal) and
// the mean offered rate in requests per 1000 cycles per client.
type ArrivalSpec struct {
	Kind string
	Rate float64
}

func (a ArrivalSpec) String() string { return fmt.Sprintf("%s@%g", a.Kind, a.Rate) }

// Balance selects how a service client picks a replica per request.
type Balance int

const (
	// BalancePrimary always sends first attempts to the key's primary
	// replica (hedges still go elsewhere).
	BalancePrimary Balance = iota
	// BalanceLeast sends each attempt to the replica with the fewest of
	// this client's outstanding requests (deterministic lowest-index
	// tie-break).
	BalanceLeast
)

// String returns the canonical lower-case name.
func (b Balance) String() string {
	if b == BalanceLeast {
		return "least"
	}
	return "primary"
}

// ParseBalance resolves a balance policy name.
func ParseBalance(s string) (Balance, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "primary":
		return BalancePrimary, nil
	case "least":
		return BalanceLeast, nil
	}
	return 0, fmt.Errorf("rackni: unknown balance policy %q (want primary|least)", s)
}

// ServiceSpec parameterizes one open-loop service run. Zero-valued fields
// take the noted defaults.
type ServiceSpec struct {
	Arrival  ArrivalSpec
	Requests int     // arrivals per client before its stream closes (default 64)
	Replicas int     // R-way replication, capped at the node count (default 3)
	Hedge    int64   // hedge delay in cycles; 0 disables hedging
	Balance  Balance // replica selection for first attempts
	Size     int     // GET size in bytes (default 256)
	Objects  int     // keyspace size (default 100_000)
	Theta    float64 // Zipf skew (default 0.99)
	Clients  int     // client cores per node (default tiles/4)
}

// withServiceDefaults fills zero-valued fields for an n-node cluster.
func (s ServiceSpec) withServiceDefaults(cfg *Config, n int) ServiceSpec {
	if s.Requests == 0 {
		s.Requests = 64
	}
	if s.Replicas == 0 {
		s.Replicas = 3
	}
	if s.Replicas > n {
		s.Replicas = n
	}
	if s.Size == 0 {
		s.Size = 256
	}
	if s.Objects == 0 {
		s.Objects = 100_000
	}
	if s.Theta == 0 {
		s.Theta = 0.99
	}
	if s.Clients == 0 {
		s.Clients = scenarioClients(cfg)
	}
	return s
}

// ServiceResult is one open-loop service run's tail-at-scale summary.
// Rates are whole-cluster requests per 1000 cycles; latencies are cycles.
type ServiceResult struct {
	Nodes   int
	Clients int // client cores per node

	Arrivals  int64
	Completed int64
	Failed    int64 // every attempt permanently failed
	Hedged    int64 // requests that got a second attempt
	HedgeWins int64 // requests whose hedge answered first
	Cancelled int64 // loser/stale attempts dropped after first response

	Offered float64 // arrivals per 1000 cycles, cluster-wide
	Goodput float64 // completions per 1000 cycles, cluster-wide

	MeanE2E float64 // mean end-to-end latency (arrival to response)
	P50     int64   // end-to-end percentiles over every request
	P99     int64
	P999    int64

	MeanQueue float64 // mean arrival-to-issue queueing delay
	QueueP99  int64

	NodeP99Max     int64 // worst single node's end-to-end p99
	SlowDecileP999 int64 // p99.9 over the slowest decile of nodes (by p99)

	Cycles  int64
	Drained bool // all arrivals issued and every in-flight request retired
}

// Format renders the result as one readable block.
func (r ServiceResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "service: %d nodes x %d clients, %d arrivals, %d completed, %d failed (drained=%v, %d cycles)\n",
		r.Nodes, r.Clients, r.Arrivals, r.Completed, r.Failed, r.Drained, r.Cycles)
	fmt.Fprintf(&b, "load:    offered %.3f goodput %.3f req/kcycle\n", r.Offered, r.Goodput)
	fmt.Fprintf(&b, "latency: mean %.0f p50 %d p99 %d p99.9 %d cycles (queue mean %.0f p99 %d)\n",
		r.MeanE2E, r.P50, r.P99, r.P999, r.MeanQueue, r.QueueP99)
	fmt.Fprintf(&b, "tails:   worst-node p99 %d slow-decile p99.9 %d\n", r.NodeP99Max, r.SlowDecileP999)
	fmt.Fprintf(&b, "hedging: %d hedged, %d wins, %d losers cancelled\n", r.Hedged, r.HedgeWins, r.Cancelled)
	return b.String()
}

// svcReq is one service request from arrival to retirement.
type svcReq struct {
	id        uint64
	arrival   int64 // arrival-clock cycle
	committed int64 // cycle the first attempt was committed for issue
	obj       int
	firstNode int
	attempts  int // live (unretired) attempts
	hedged    bool
}

// serviceClient is the per-core open-loop service app. It implements
// cpu.OpenLooper so the driver slices long idle thinks and delivers
// responses promptly (hedge deadlines and end-to-end latency depend on
// it). Attempt tags (id<<1 | attempt) are the request-generation
// mechanism that drops stale responses: a loser or late-retry response
// whose request already retired finds no outstanding entry and is counted
// cancelled instead of double-retiring.
type serviceClient struct {
	nodes    int
	spec     ServiceSpec
	arr      *load.Process
	keys     *sim.Rand
	table    *zipfTable
	slots    uint64
	total    int
	hedgeOK  bool
	balance  Balance
	replicas int
	sets     [][]int // placement-aware replica sets (nil: R consecutive nodes)

	arrived     int
	nextArrival int64
	backlog     []*svcReq
	outstanding map[uint64]*svcReq
	attemptNode map[uint64]int // live attempt tag -> target node
	outPerNode  []int          // this client's outstanding attempts per node
	hedgeQ      []uint64       // request ids in first-commit order (lazy cleanup)

	completed int64
	failed    int64
	hedged    int64
	hedgeWins int64
	cancelled int64

	e2e   *stats.Histogram // arrival -> response
	queue *stats.Histogram // arrival -> first-attempt commit
}

// newServiceClient builds one client core's app. seed decorrelates both
// the arrival schedule and the key stream.
func newServiceClient(spec ServiceSpec, nodes int, proc *load.Process, seed uint64) *serviceClient {
	return &serviceClient{
		nodes: nodes, spec: spec, arr: proc,
		keys:    sim.NewRand(seed ^ 0xD1B5_4A32_D192_ED03),
		table:   sharedZipfTable(spec.Objects, spec.Theta),
		slots:   LocalStride / uint64(spec.Size),
		total:   spec.Requests,
		hedgeOK: spec.Hedge > 0 && spec.Replicas >= 2 && nodes >= 2,
		balance: spec.Balance, replicas: spec.Replicas,
		nextArrival: proc.Next(),
		outstanding: make(map[uint64]*svcReq),
		attemptNode: make(map[uint64]int),
		outPerNode:  make([]int, nodes),
		e2e:         stats.NewLatencyHistogram(),
		queue:       stats.NewLatencyHistogram(),
	}
}

// OpenLoopPoll implements cpu.OpenLooper: cap idle sleeps so responses are
// delivered within ~200 cycles of retiring instead of at the next arrival.
func (s *serviceClient) OpenLoopPoll() int64 { return 200 }

// primary is the key's home replica: a stable hash of the object spread
// over all nodes (the replica set is the R consecutive nodes from it, or
// its placement-aware nearest-R set when one was computed).
func (s *serviceClient) primary(obj int) int { return int(chaseNext(uint64(obj), s.nodes)) }

// replica returns the k-th member of primary p's replica set: the
// placement-aware nearest-R set when one was computed, else the legacy R
// consecutive node indices.
func (s *serviceClient) replica(p, k int) int {
	if s.sets != nil {
		return s.sets[p][k]
	}
	return (p + k) % s.nodes
}

// pickReplica selects the target for an attempt. exclude is the node the
// first attempt went to (-1 for first attempts), so hedges always pick a
// different replica.
func (s *serviceClient) pickReplica(obj, exclude int) int {
	p := s.primary(obj)
	if s.replicas <= 1 || (s.balance == BalancePrimary && exclude < 0) {
		return p
	}
	best, bestLoad := -1, math.MaxInt
	for k := 0; k < s.replicas; k++ {
		n := s.replica(p, k)
		if n == exclude {
			continue
		}
		if s.outPerNode[n] < bestLoad {
			best, bestLoad = n, s.outPerNode[n]
		}
	}
	if best < 0 {
		return p
	}
	return best
}

// issueTo commits one attempt of r to the given node.
func (s *serviceClient) issueTo(r *svcReq, node int, attempt uint64, coreID int) Action {
	tag := r.id<<1 | attempt
	s.attemptNode[tag] = node
	s.outPerNode[node]++
	r.attempts++
	return Issue(Request{
		Op:     rmc.OpRead,
		Remote: TargetNode(node, SourceBase+uint64(r.obj)*uint64(s.spec.Size)),
		Local:  LocalBufferOf(coreID) + (tag%s.slots)*uint64(s.spec.Size),
		Size:   s.spec.Size,
		Tag:    tag,
	})
}

// Step implements App: pull due arrivals into the backlog, fire due
// hedges, issue backlog head, otherwise sleep until the next arrival or
// hedge deadline (recomputed from now each call — the open-loop
// contract).
func (s *serviceClient) Step(coreID int, now int64, inflight int) Action {
	for s.arrived < s.total && s.nextArrival <= now {
		s.backlog = append(s.backlog, &svcReq{
			id: uint64(s.arrived), arrival: s.nextArrival, obj: s.table.sample(s.keys),
		})
		s.arrived++
		if s.arrived < s.total {
			s.nextArrival = s.arr.Next()
		}
	}
	if s.hedgeOK {
		for len(s.hedgeQ) > 0 {
			r, live := s.outstanding[s.hedgeQ[0]]
			if !live || r.hedged {
				s.hedgeQ = s.hedgeQ[1:]
				continue
			}
			if r.committed+s.spec.Hedge > now {
				break // constant delay keeps the queue deadline-ordered
			}
			s.hedgeQ = s.hedgeQ[1:]
			r.hedged = true
			s.hedged++
			return s.issueTo(r, s.pickReplica(r.obj, r.firstNode), 1, coreID)
		}
	}
	if len(s.backlog) > 0 {
		r := s.backlog[0]
		s.backlog = s.backlog[1:]
		r.committed = now
		s.outstanding[r.id] = r
		r.firstNode = s.pickReplica(r.obj, -1)
		if s.hedgeOK {
			s.hedgeQ = append(s.hedgeQ, r.id)
		}
		return s.issueTo(r, r.firstNode, 0, coreID)
	}
	wake := int64(math.MaxInt64)
	if s.arrived < s.total {
		wake = s.nextArrival
	}
	if s.hedgeOK && len(s.hedgeQ) > 0 {
		if r, live := s.outstanding[s.hedgeQ[0]]; live && !r.hedged {
			if d := r.committed + s.spec.Hedge; d < wake {
				wake = d
			}
		}
	}
	if wake < math.MaxInt64 {
		// Due work was dispatched above, so wake is strictly in the future.
		return Think(wake - now)
	}
	if len(s.outstanding) > 0 {
		return Wait()
	}
	return Done()
}

// OnComplete implements App: first response wins; the loser (or a
// response for an already-failed request) is dropped as cancelled.
func (s *serviceClient) OnComplete(coreID int, req Request, issued, done int64) {
	tag := req.Tag
	if node, ok := s.attemptNode[tag]; ok {
		delete(s.attemptNode, tag)
		s.outPerNode[node]--
	}
	r, live := s.outstanding[tag>>1]
	if !live {
		s.cancelled++
		return
	}
	if req.Failed {
		r.attempts--
		if r.attempts == 0 {
			delete(s.outstanding, tag>>1)
			s.failed++
		}
		return
	}
	delete(s.outstanding, tag>>1)
	s.completed++
	s.e2e.Add(done - r.arrival)
	s.queue.Add(r.committed - r.arrival)
	if tag&1 == 1 {
		s.hedgeWins++
	}
}

// nearestReplicaSets precomputes each primary's placement-aware replica
// set: the r nodes nearest to it over the placed fabric, ranked by torus
// distance with the ring offset from the primary as the deterministic
// tie-break — offset 0 first, so a set always begins with its primary.
func nearestReplicaSets(inter *fabric.Interconnect, n, r int) [][]int {
	sets := make([][]int, n)
	for p := 0; p < n; p++ {
		order := make([]int, n)
		for j := range order {
			order[j] = (p + j) % n // ring offset j from p: the tie-break order
		}
		sort.SliceStable(order, func(a, b int) bool {
			return inter.Dist(p, order[a]) < inter.Dist(p, order[b])
		})
		sets[p] = order[:r]
	}
	return sets
}

// RunService runs the open-loop replicated KV service on every node of
// the cluster: spec.Clients cores per node each draw a decorrelated
// arrival schedule and issue Zipf-popular GETs across the R-way replica
// sets, until every client's stream closes and drains or maxCycles elapse
// (<= 0 uses the configuration's MaxCycles; a cut-short run reports
// partial statistics with Drained=false).
func (c *Cluster) RunService(spec ServiceSpec, maxCycles int64) (ServiceResult, error) {
	cfg := c.Config()
	n := c.NodeCount()
	spec = spec.withServiceDefaults(cfg, n)
	kind, err := load.ParseKind(spec.Arrival.Kind)
	if err != nil {
		return ServiceResult{}, err
	}
	switch {
	case spec.Requests < 0:
		return ServiceResult{}, fmt.Errorf("rackni: negative service request count %d", spec.Requests)
	case spec.Hedge < 0:
		return ServiceResult{}, fmt.Errorf("rackni: negative hedge delay %d", spec.Hedge)
	case spec.Clients < 0 || spec.Clients > cfg.Tiles():
		return ServiceResult{}, fmt.Errorf("rackni: %d service clients per node exceed the %d tiles", spec.Clients, cfg.Tiles())
	}
	if err := checkSize(cfg, spec.Size); err != nil {
		return ServiceResult{}, err
	}
	spec.Objects = clampObjects(spec.Objects, spec.Size)
	if spec.Theta < 0 {
		spec.Theta = 0
	}
	lspec := load.Spec{Kind: kind, Rate: spec.Arrival.Rate}

	// Placement-aware replication: under a named non-identity placement,
	// each primary's replica set is the R nodes nearest to it on the placed
	// torus instead of R consecutive indices — the point of clustering
	// nodes is that their replicas sit close. Identity (and the deprecated
	// torus flag, raw coordinate lists, and the congestion model's
	// automatic identity placement) keeps the legacy consecutive mapping,
	// which is already ring-adjacent there — and with it, bit-identical
	// output for every pre-policy invocation.
	var sets [][]int
	if pol := c.Placement(); !pol.IsZero() && pol != PlaceIdentity && spec.Replicas > 1 && n > 1 {
		sets = nearestReplicaSets(c.c.Inter, n, spec.Replicas)
	}

	clients := make([][]*serviceClient, n)
	var ferr error
	factory := func(nodeIdx, core int) App {
		if core >= spec.Clients || ferr != nil {
			return nil
		}
		seed := scenarioSeed(clusterNodeSeed(cfg.Seed, nodeIdx), core)
		proc, err := load.NewProcess(lspec, seed)
		if err != nil {
			ferr = err
			return nil
		}
		cl := newServiceClient(spec, n, proc, seed)
		cl.sets = sets
		clients[nodeIdx] = append(clients[nodeIdx], cl)
		return cl
	}
	wl, err := c.RunApp(factory, maxCycles)
	if ferr != nil {
		return ServiceResult{}, ferr
	}
	if err != nil {
		return ServiceResult{}, err
	}

	res := ServiceResult{
		Nodes: n, Clients: spec.Clients,
		Cycles: wl.Aggregate.Cycles, Drained: wl.Aggregate.AllExhausted,
	}
	e2e, queue := stats.NewLatencyHistogram(), stats.NewLatencyHistogram()
	nodeHists := make([]*stats.Histogram, n)
	for i, perNode := range clients {
		nh := stats.NewLatencyHistogram()
		for _, cl := range perNode {
			res.Arrivals += int64(cl.arrived)
			res.Completed += cl.completed
			res.Failed += cl.failed
			res.Hedged += cl.hedged
			res.HedgeWins += cl.hedgeWins
			res.Cancelled += cl.cancelled
			e2e.Merge(cl.e2e)
			queue.Merge(cl.queue)
			nh.Merge(cl.e2e)
		}
		nodeHists[i] = nh
	}
	if res.Cycles > 0 {
		res.Offered = float64(res.Arrivals) / float64(res.Cycles) * 1000
		res.Goodput = float64(res.Completed) / float64(res.Cycles) * 1000
	}
	res.MeanE2E = e2e.Mean()
	res.MeanQueue = queue.Mean()
	res.P50 = e2e.Percentile(50)
	res.P99 = e2e.Percentile(99)
	res.P999 = e2e.Percentile(99.9)
	res.QueueP99 = queue.Percentile(99)

	// Slowest-decile node stats: rank nodes by their merged p99 and fold
	// the worst ceil(N/10) into one tail.
	p99s := make([]int64, n)
	order := make([]int, n)
	for i, nh := range nodeHists {
		p99s[i] = nh.Percentile(99)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return p99s[order[a]] > p99s[order[b]] })
	if n > 0 {
		res.NodeP99Max = p99s[order[0]]
		slow := stats.NewLatencyHistogram()
		for _, i := range order[:(n+9)/10] {
			slow.Merge(nodeHists[i])
		}
		res.SlowDecileP999 = slow.Percentile(99.9)
	}
	return res, nil
}
