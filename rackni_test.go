package rackni

import (
	"strings"
	"testing"
)

func TestNewNodeValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewNode(cfg, -1); err == nil {
		t.Fatal("negative hops accepted")
	}
	cfg.Design = NUMA
	if _, err := NewNode(cfg, 1); err == nil {
		t.Fatal("NUMA must be rejected as a simulated design (it is analytic)")
	}
	cfg = DefaultConfig()
	cfg.WQEntryB = 48 // does not divide the block size
	if _, err := NewNode(cfg, 1); err == nil {
		t.Fatal("invalid WQ entry size accepted")
	}
}

func TestRunSyncLatencyValidation(t *testing.T) {
	n, err := NewNode(DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunSyncLatency(0, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := n.RunSyncLatency(64, 1000); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestCheckSizeUsesConfig(t *testing.T) {
	cfg := DefaultConfig()
	for _, size := range []int{64, 128, 16384, LocalStride} {
		if err := checkSize(&cfg, size); err != nil {
			t.Fatalf("size %d rejected: %v", size, err)
		}
	}
	for _, size := range []int{0, -64, 96, 65, LocalStride + cfg.BlockBytes} {
		if err := checkSize(&cfg, size); err == nil {
			t.Fatalf("size %d accepted", size)
		}
	}
	// The granularity check must follow the configured block size, not a
	// hard-coded 64.
	cfg.BlockBytes = 128
	if err := checkSize(&cfg, 64); err == nil {
		t.Fatal("size 64 accepted with 128-byte blocks")
	}
	if err := checkSize(&cfg, 256); err != nil {
		t.Fatalf("size 256 rejected with 128-byte blocks: %v", err)
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byDesign := map[Design]BreakdownRow{}
	for _, r := range res.Rows {
		byDesign[r.Design] = r
	}
	edge, tile, split := byDesign[NIEdge], byDesign[NIPerTile], byDesign[NISplit]
	// Paper Table 3: 710 / 445 / 447 cycles over a 395-cycle NUMA
	// projection — overheads 79.7% / 12.7% / 13.2%.
	if edge.OverheadPct < 40 || edge.OverheadPct > 110 {
		t.Fatalf("edge overhead %.1f%%, paper 79.7%%", edge.OverheadPct)
	}
	if tile.OverheadPct < 3 || tile.OverheadPct > 30 {
		t.Fatalf("per-tile overhead %.1f%%, paper 12.7%%", tile.OverheadPct)
	}
	if split.OverheadPct < 3 || split.OverheadPct > 30 {
		t.Fatalf("split overhead %.1f%%, paper 13.2%%", split.OverheadPct)
	}
	if !strings.Contains(res.Format(), "Overhead over NUMA") {
		t.Fatal("Format missing overhead row")
	}
	t.Logf("\n%s", res.Format())
}

func TestFig5ProjectionFromMeasurement(t *testing.T) {
	cfg := QuickConfig()
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHops < 5.9 || res.AvgHops > 6.1 || res.MaxHops != 12 {
		t.Fatalf("torus stats wrong: avg=%.1f max=%d", res.AvgHops, res.MaxHops)
	}
	p6 := res.Points[6]
	// Paper: 28.6% edge / 4.7% split at 6 hops.
	if p6.EdgeOverPct < 15 || p6.EdgeOverPct > 45 {
		t.Fatalf("edge overhead at 6 hops %.1f%%, paper 28.6%%", p6.EdgeOverPct)
	}
	if p6.SplitOverPct < 1 || p6.SplitOverPct > 12 {
		t.Fatalf("split overhead at 6 hops %.1f%%, paper 4.7%%", p6.SplitOverPct)
	}
	t.Logf("\n%s", res.Format())
}

func TestFig6LatencyShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.MeasureReqs = 12
	res, err := RunFig6(cfg, []int{64, 2048, 16384})
	if err != nil {
		t.Fatal(err)
	}
	get := func(d Design, size int) float64 {
		for _, p := range res.Points {
			if p.Design == d && p.Size == size {
				return p.NS
			}
		}
		t.Fatalf("missing point %v/%d", d, size)
		return 0
	}
	// Small transfers: edge slowest (Fig. 6).
	if !(get(NIEdge, 64) > get(NISplit, 64)) {
		t.Fatal("edge must be slowest at 64B")
	}
	// Large transfers: per-tile slowest (unroll at the source tile, §6.1.3).
	if !(get(NIPerTile, 16384) > get(NIEdge, 16384)) {
		t.Fatalf("per-tile (%f) must be slowest at 16KB (edge %f)", get(NIPerTile, 16384), get(NIEdge, 16384))
	}
	// Latency grows with size for every design.
	for _, d := range []Design{NIEdge, NISplit, NIPerTile} {
		if !(get(d, 16384) > get(d, 64)) {
			t.Fatalf("%v: latency must grow with size", d)
		}
	}
	// NUMA projection is below NIsplit everywhere.
	for _, size := range []int{64, 2048, 16384} {
		if res.NUMA[size] >= get(NISplit, size) {
			t.Fatalf("NUMA projection must undercut split at %dB", size)
		}
	}
	t.Logf("\n%s", res.Format())
}

func TestWorkloadAPI(t *testing.T) {
	cfg := QuickConfig()
	n, err := NewNode(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunWorkload(func(core int) Workload {
		if core >= 4 {
			return nil
		}
		return FixedOps{Ops: []FixedOp{
			{Op: OpRead, Remote: 0x1_0000_0000, Local: 0x8000_0000 + uint64(core)*0x20_0000, Size: 256},
			{Op: OpRead, Remote: 0x1_0000_4000, Local: 0x8000_4000 + uint64(core)*0x20_0000, Size: 4096},
		}}
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 8 {
		t.Fatalf("completed=%d want 8", res.Completed)
	}
	if !res.AllExhausted {
		t.Fatal("drivers did not drain")
	}
	if res.AppBytes <= 0 || res.MeanLatency <= 0 {
		t.Fatalf("bad stats: %+v", res)
	}
}
