package rackni

import (
	"reflect"
	"strings"
	"testing"
)

// shardStudyCfg shrinks the per-node chip (4x2 mesh, 2 MiB LLC) so
// many-node sharded sweeps stay tractable, and arms a short request
// timeout so faulty points recover inside reduced budgets.
func shardStudyCfg() Config {
	cfg := QuickConfig()
	cfg.MeshWidth, cfg.MeshHeight = 4, 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.StableDelta = 0
	cfg.ReqTimeout = 1_000
	cfg.MaxCycles = 2_000_000
	return cfg
}

// shardStudySweep builds the mixed sweep the shard-invariance contract is
// checked on: closed-loop kv and open-loop Poisson service points, each
// lossless and at a 0.2% drop rate, each on the lump-sum fabric and under
// dor congestion routing (the congested points coerce to one engine — the
// shard knob must be harmless there too), all at shard count k.
func shardStudySweep(cfg Config, n, k int) *Sweep {
	return NewSweep(cfg).
		Designs(NISplit).
		Workloads("kv").
		Arrivals(ArrivalSpec{Kind: "poisson", Rate: 1}).
		Nodes(n).
		Hops(1).
		Faults(0, 0.002).
		FabricRoutings(RouteNone, RouteDOR).
		Shards(k)
}

// normalizeShards erases the per-point shard metadata and wall-clock so
// renderer output can be byte-compared across shard counts — Shards is a
// pure execution knob, so after normalization every rendering must be
// identical.
func normalizeShards(rs Results) {
	for i := range rs {
		rs[i].Point.Shards = 1
		rs[i].Wall = 0
	}
}

// TestSweepShardInvariance: the sweep-level half of the tentpole contract
// — a mixed 16-node sweep (faulty, congested and service points) renders
// byte-identical Format, CSV and JSON at every shard count once the shard
// metadata column is normalized away. This is the user-visible guarantee
// behind racksim -shards: the flag changes wall-clock, never output.
func TestSweepShardInvariance(t *testing.T) {
	cfg := shardStudyCfg()
	const n = 16
	base, err := shardStudySweep(cfg, n, 1).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 8 {
		t.Fatalf("baseline points=%d, want 8 (2 kinds x 2 drop rates x 2 fabrics)", len(base))
	}
	normalizeShards(base)
	wantFmt, wantCSV := base.Format(), base.CSV()
	wantJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(wantFmt, "shards") {
		t.Fatalf("normalized baseline still renders a shards column:\n%s", wantFmt)
	}
	ks := []int{2, 4, 8}
	if testing.Short() {
		ks = []int{4}
	}
	for _, k := range ks {
		res, err := shardStudySweep(cfg, n, k).Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-normalization the shard axis must be visible metadata on the
		// shardable points.
		if !strings.Contains(res.Format(), "shards") {
			t.Fatalf("k=%d result set missing its shards column:\n%s", k, res.Format())
		}
		normalizeShards(res)
		for i := range res {
			if !reflect.DeepEqual(res[i].WL, base[i].WL) || !reflect.DeepEqual(res[i].SVC, base[i].SVC) {
				t.Fatalf("k=%d point %d (%s) diverged from single-engine", k, i, res[i].Point.label())
			}
		}
		if got := res.Format(); got != wantFmt {
			t.Fatalf("k=%d Format diverged:\n%s\nvs\n%s", k, got, wantFmt)
		}
		if got := res.CSV(); got != wantCSV {
			t.Fatalf("k=%d CSV diverged", k)
		}
		got, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(wantJSON) {
			t.Fatalf("k=%d JSON diverged:\n%s\nvs\n%s", k, got, wantJSON)
		}
	}
}

// TestSweepShardInvariance64: the same contract at rack scale — a 64-node
// faulty kv point is bit-identical on 1 and 4 engines. One point per
// sweep: 64-node runs are the repo's most expensive, and the full mixed
// variety is covered at 16 nodes above.
func TestSweepShardInvariance64(t *testing.T) {
	if testing.Short() {
		t.Skip("64-node shard equivalence skipped in -short")
	}
	cfg := shardStudyCfg()
	var want Results
	for _, k := range []int{1, 4} {
		res, err := NewSweep(cfg).Designs(NISplit).Workloads("kv").
			Nodes(64).Hops(1).Faults(0.002).Shards(k).Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 {
			t.Fatalf("k=%d points=%d, want 1", k, len(res))
		}
		normalizeShards(res)
		if k == 1 {
			want = res
			if res[0].WL == nil || !res[0].WL.AllExhausted {
				t.Fatalf("64-node baseline did not drain: %+v", res[0].WL)
			}
			continue
		}
		if !reflect.DeepEqual(res[0].WL, want[0].WL) {
			t.Fatalf("k=%d 64-node workload diverged:\n%+v\nvs\n%+v", k, res[0].WL, want[0].WL)
		}
		if res.Format() != want.Format() {
			t.Fatalf("k=%d 64-node Format diverged", k)
		}
	}
}

// TestShardedSweepParallelMatchesSerial: sharded points on a worker pool —
// engines inside each point racing goroutines, points racing each other —
// render byte-identically to a serial run. Wired into the CI race job: it
// is the only test where both layers of the repo's concurrency (the sweep
// pool and the per-cluster shard barrier) run at once.
func TestShardedSweepParallelMatchesSerial(t *testing.T) {
	cfg := shardStudyCfg()
	sweep := NewSweep(cfg).Designs(NISplit).Workloads("kv").
		Nodes(8).Hops(1).Faults(0, 0.002).Shards(2)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Format() != par.Format() {
		t.Fatalf("Format differs under parallelism:\nserial:\n%s\nparallel:\n%s",
			serial.Format(), par.Format())
	}
	if serial.CSV() != par.CSV() {
		t.Fatalf("CSV differs under parallelism")
	}
}
