package rackni_test

import (
	"fmt"
	"log"

	"rackni"
)

// A closed-loop key-value client on every fourth core: each GET waits for
// its completion, spends think time on the value, then issues the next —
// and the result carries deterministic p50/p95/p99 tail latencies (print
// res.P50/res.P95/res.P99 for the cycle values; the Output below asserts
// only the timing-independent facts so the example keeps passing as the
// timing model is tuned).
func ExampleNode_RunApp() {
	cfg := rackni.QuickConfig()
	n, err := rackni.NewNode(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := n.RunApp(func(core int) rackni.App {
		if core%4 != 0 {
			return nil
		}
		return rackni.NewKVClient(100, 256, 100_000, 0.99, 300, cfg.Seed+uint64(core))
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d GETs by %d clients, drained=%v, tail ordered=%v\n",
		res.Completed, len(res.PerCore), res.AllExhausted,
		res.P50 <= res.P95 && res.P95 <= res.P99)
	// Output: 1600 GETs by 16 clients, drained=true, tail ordered=true
}

// A custom closed-loop App: chase eight dependent pointers per lookup.
// Each read's address comes from the previously fetched object (delivered
// through OnComplete), which an open-loop workload cannot express.
func ExampleNewPointerChase() {
	cfg := rackni.QuickConfig()
	n, err := rackni.NewNode(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	chase := rackni.NewPointerChase(8, 32, 64, 1<<16, cfg.Seed)
	res, err := n.RunApp(func(core int) rackni.App {
		if core != 27 {
			return nil
		}
		return chase
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single read %.0f cycles, 8-deep chase %.0f cycles\n",
		res.MeanLatency, chase.ChaseLat.Mean())
}

// Named scenarios cross against every other sweep axis: here the library's
// kv and pointerchase workloads run for two NI designs, in parallel, with
// tail percentiles carried through the structured renderers.
func ExampleSweep_Workloads() {
	results, err := rackni.NewSweep(rackni.QuickConfig()).
		Designs(rackni.NIEdge, rackni.NISplit).
		Workloads("kv", "pointerchase").
		Run(rackni.Options{Parallel: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(results.Format())
	fmt.Print(results.CSV())
}

// A fault-injected scenario run: the fabric drops 2% of messages on every
// inter-node leg (deterministically — the schedule is a pure function of
// the spec's seed), the request timeout arms bounded retransmission, and
// the closed-loop kv clients still drain every operation. Retries and
// permanent failures surface in the aggregate result; with a timeout
// armed and a retry budget sized for the loss rate, nothing fails
// permanently.
func ExampleCluster_SetFaults() {
	cfg := rackni.QuickConfig()
	cfg.ReqTimeout = 2_000 // cycles before a lost block retransmits
	cfg.MaxRetries = 6     // budget sized so 2% loss never exhausts a block
	cl, err := rackni.NewCluster(cfg, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.SetFaults(&rackni.FaultSpec{Seed: cfg.Seed, DropProb: 0.02}); err != nil {
		log.Fatal(err)
	}
	sc, err := rackni.ParseScenario("kv")
	if err != nil {
		log.Fatal(err)
	}
	res, err := cl.RunScenario(sc, 0)
	if err != nil {
		log.Fatal(err)
	}
	agg := res.Aggregate
	fmt.Printf("%d GETs, drained=%v, recovered by retry=%v, failed=%d\n",
		agg.Completed, agg.AllExhausted, agg.Retries > 0, agg.Failed)
	// Output: 4096 GETs, drained=true, recovered by retry=true, failed=0
}

// The tail-at-scale study in miniature: the open-loop replicated KV
// service on a small rack whose fabric suffers rare transient hiccups,
// with hedging off and on. Hedged requests rescue hiccup-delayed GETs —
// the hedged run's p99.9 drops well below the hiccup latency while only a
// small fraction of requests hedge (print the points' P999/Hedged for the
// cycle values; the Output asserts only timing-independent facts).
func ExampleRunServiceCurve() {
	cfg := rackni.QuickConfig()
	cfg.MeshWidth = 4 // the reduced study chip: the fabric dominates
	cfg.MeshHeight = 2
	cfg.LLCSizeBytes = 2 << 20
	cfg.MaxCycles = 2_000_000
	res, err := rackni.RunServiceCurve(cfg, 4, []float64{0.5}, []int64{0, 2400}, []rackni.RoutePolicy{rackni.RouteDOR})
	if err != nil {
		log.Fatal(err)
	}
	plain, hedged := res.Points[0], res.Points[1]
	fmt.Printf("%d nodes x %d clients, drained=%v\n", res.Nodes, res.Clients,
		plain.Drained && hedged.Drained)
	fmt.Printf("hedging wins=%v, cuts p99.9=%v\n",
		hedged.HedgeWins > 0, hedged.P999 < plain.P999/2)
	// Output:
	// 4 nodes x 2 clients, drained=true
	// hedging wins=true, cuts p99.9=true
}

// The Nodes axis crosses a real multi-node cluster against the same
// points run on the paper's emulated rack: Nodes(1) mirrors outgoing
// traffic back at one detailed node, Nodes(2) simulates both ends and
// routes every block through the inter-node fabric. In the symmetric
// arrangement the two are two views of the same system — hop-delay
// accounting is bit-identical and mean latency agrees within 1%.
func ExampleSweep_Nodes() {
	cfg := rackni.QuickConfig()
	cfg.MeasureReqs = 8
	cfg.WarmupRequests = 2
	results, err := rackni.NewSweep(cfg).
		Designs(rackni.NISplit).
		Modes(rackni.Latency).
		Sizes(64).
		Hops(3).
		Nodes(1, 2).
		Run(rackni.Options{})
	if err != nil {
		log.Fatal(err)
	}
	emu, cluster := results[0].Sync, results[1].Sync
	agree := func(a, b float64) bool { return a > 0.99*b && a < 1.01*b }
	fmt.Printf("hop legs identical: %v\n",
		emu.Breakdown.NetOut == cluster.Breakdown.NetOut &&
			emu.Breakdown.NetBack == cluster.Breakdown.NetBack)
	fmt.Printf("latency agrees within 1%%: %v\n", agree(cluster.MeanNS, emu.MeanNS))
	// Output:
	// hop legs identical: true
	// latency agrees within 1%: true
}
