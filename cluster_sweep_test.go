package rackni

import (
	"reflect"
	"strings"
	"testing"
)

// quickClusterCfg keeps multi-node sweep tests fast.
func quickClusterCfg() Config {
	cfg := QuickConfig()
	cfg.MeasureReqs = 8
	cfg.WarmupRequests = 2
	return cfg
}

// TestClusterSweepParallelMatchesSerial: multi-node points are
// independent simulations like any other, so a sweep spanning the Nodes
// axis must produce byte-identical Results — Format and CSV — serially
// and on a worker pool. Wired into the CI race job: the cluster is the
// repo's largest single simulation, and this exercises it under -race.
func TestClusterSweepParallelMatchesSerial(t *testing.T) {
	sweep := NewSweep(quickClusterCfg()).
		Designs(NISplit).
		Modes(Latency).
		Workloads("kv").
		Sizes(64).
		Nodes(1, 2).
		Hops(2)
	serial, err := sweep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := sweep.Run(Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 || len(par) != 4 {
		t.Fatalf("point counts: serial %d, parallel %d, want 4", len(serial), len(par))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Point, par[i].Point) {
			t.Fatalf("point %d metadata differs under parallelism", i)
		}
		if !reflect.DeepEqual(serial[i].Sync, par[i].Sync) ||
			!reflect.DeepEqual(serial[i].WL, par[i].WL) {
			t.Fatalf("point %d results differ under parallelism", i)
		}
	}
	if serial.Format() != par.Format() {
		t.Fatalf("Format differs:\nserial:\n%s\nparallel:\n%s", serial.Format(), par.Format())
	}
	if serial.CSV() != par.CSV() {
		t.Fatalf("CSV differs:\nserial:\n%s\nparallel:\n%s", serial.CSV(), par.CSV())
	}
}

// TestNodesAxisRenderers: the nodes column appears exactly when a result
// set contains multi-node points, keeping single-node output
// byte-identical to its pre-cluster form.
func TestNodesAxisRenderers(t *testing.T) {
	cfg := quickClusterCfg()
	single, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(single.Format(), "nodes") || strings.Contains(single.CSV(), "nodes") {
		t.Fatalf("single-node result set grew a nodes column:\n%s", single.Format())
	}
	blob, err := single.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), `"nodes"`) {
		t.Fatalf("single-node JSON carries a nodes field:\n%s", blob)
	}

	multi, err := NewSweep(cfg).Designs(NISplit).Modes(Latency).Sizes(64).Nodes(2).Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(multi.Format(), "nodes") || !strings.Contains(multi.CSV(), "nodes,") {
		t.Fatalf("multi-node result set missing its nodes column:\n%s", multi.Format())
	}
	blob, err = multi.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"nodes": 2`) {
		t.Fatalf("multi-node JSON missing nodes field:\n%s", blob)
	}
}

// TestClusterScenarioCrossNode: a >=3-node scenario run shards each
// node's keyspace across its peers — the interconnect's traffic matrix
// must show every off-diagonal flow and an empty diagonal.
func TestClusterScenarioCrossNode(t *testing.T) {
	cfg := quickClusterCfg()
	c, err := NewCluster(cfg, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario("mixed")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.RunScenario(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aggregate.AllExhausted {
		t.Fatal("scenario did not drain")
	}
	traffic := c.Interconnect().Traffic
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				if traffic[i][j] != 0 {
					t.Errorf("node %d sent %d blocks to itself", i, traffic[i][j])
				}
			} else if traffic[i][j] == 0 {
				t.Errorf("no traffic from node %d to node %d: sharding inactive", i, j)
			}
		}
	}
	// Per-node decorrelation: nodes must not issue identical streams.
	if reflect.DeepEqual(res.PerNode[0], res.PerNode[1]) {
		t.Error("nodes 0 and 1 produced identical results; per-node seeds not decorrelated")
	}
}
